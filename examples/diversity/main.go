// On-chip diversity (Chapter 5, Figs. 5-2/5-3): the same acoustic
// beamforming application runs on three communication architectures —
// a flat 8×8 gossip mesh, four gossip clusters bridged by a crossbar
// router (hierarchical NoC), and the same clusters bridged by a
// serializing shared bus — and the trade-offs of the thesis appear:
// flat wins latency, hierarchical wins transmissions (power), and the
// bus-connected hybrid trails on both.
//
// Run with: go run ./examples/diversity
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	stochnoc "repro"
)

func main() {
	log.SetFlags(0)

	results, err := stochnoc.CompareDiversity(stochnoc.DiversityConfig{Seed: 9})
	if err != nil {
		log.Fatal(err)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "architecture\tlatency [rounds]\tmessage transmissions\tcompleted")
	for _, r := range results {
		fmt.Fprintf(w, "%v\t%d\t%d\t%v\n", r.Kind, r.LatencyRounds, r.Transmissions, r.Completed)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nreading the table (thesis Fig. 5-3):")
	fmt.Println(" - the flat NoC has the best latency (short mesh paths everywhere);")
	fmt.Println(" - the hierarchical NoC moves the fewest messages (the router confines")
	fmt.Println("   gossip to the source and destination clusters) => lowest power;")
	fmt.Println(" - the shared-bus hybrid serializes inter-cluster traffic and loses on both.")
}
