// Parallel 2-D FFT (§4.1.2, Fig. 4-3): a root tile distributes the rows
// of a 16×16 image to four worker IPs over the stochastic NoC, collects
// the row transforms, redistributes the columns, and assembles the full
// 2-D spectrum — which is then checked against a serial transform.
//
// Run with: go run ./examples/fft2d
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	stochnoc "repro"
)

func main() {
	log.SetFlags(0)

	// A deterministic 16×16 "image": two crossing spatial frequencies.
	const size = 16
	img := make([][]complex128, size)
	for y := range img {
		img[y] = make([]complex128, size)
		for x := range img[y] {
			v := math.Sin(2*math.Pi*3*float64(x)/size) +
				0.5*math.Cos(2*math.Pi*5*float64(y)/size)
			img[y][x] = complex(v, 0)
		}
	}

	grid := stochnoc.NewGrid(4, 4)
	net, err := stochnoc.New(stochnoc.Config{
		Topo: grid, P: 0.6, TTL: stochnoc.DefaultTTL, MaxRounds: 300, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	root := grid.ID(0, 0)
	workers := [][]stochnoc.TileID{
		{grid.ID(1, 0)}, {grid.ID(2, 1)}, {grid.ID(1, 2)}, {grid.ID(3, 3)},
	}
	app, err := stochnoc.SetupFFT2(net, root, workers, img)
	if err != nil {
		log.Fatal(err)
	}

	res := net.Run()
	fmt.Printf("completed: %v after %d rounds\n", res.Completed, res.Rounds)
	if !res.Completed {
		log.Fatal("transform incomplete")
	}
	spectrum, err := app.Root.Result()
	if err != nil {
		log.Fatal(err)
	}

	// The two tones dominate bins (3,0) and (0,5) (plus mirrors).
	fmt.Println("strongest spectrum bins:")
	type peak struct {
		x, y int
		mag  float64
	}
	var peaks []peak
	for y := range spectrum {
		for x := range spectrum[y] {
			if m := cmplx.Abs(spectrum[y][x]); m > 1 {
				peaks = append(peaks, peak{x, y, m})
			}
		}
	}
	for _, p := range peaks {
		fmt.Printf("  |X[%2d,%2d]| = %.1f\n", p.x, p.y, p.mag)
	}
	fmt.Printf("traffic: %d transmissions over %d rounds\n",
		res.Counters.Energy.Transmissions, res.Rounds)
}
