// Master–Slave π computation (§4.1.1, Fig. 4-2): a master on the center
// tile of a 5×5 NoC splits the quadrature of ∫₀¹ 4/(1+x²) dx over eight
// slaves — each duplicated for crash tolerance — and assembles the
// partial sums that gossip back. Two random tiles are crashed; the
// duplicated slaves keep the computation alive.
//
// Run with: go run ./examples/masterslave
package main

import (
	"fmt"
	"log"
	"math"

	stochnoc "repro"
)

func main() {
	log.SetFlags(0)

	grid := stochnoc.NewGrid(5, 5)
	master := grid.ID(2, 2)
	net, err := stochnoc.New(stochnoc.Config{
		Topo: grid, P: 0.75, TTL: stochnoc.DefaultTTL, MaxRounds: 200, Seed: 42,
		Fault: stochnoc.FaultModel{
			DeadTiles: 2,                         // two random tiles crash...
			Protect:   []stochnoc.TileID{master}, // ...but never the master
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Eight slaves, each duplicated on two tiles (§4.1.1).
	var free []stochnoc.TileID
	for i := 0; i < grid.Tiles(); i++ {
		if stochnoc.TileID(i) != master {
			free = append(free, stochnoc.TileID(i))
		}
	}
	var slaves [][]stochnoc.TileID
	for k := 0; k < 8; k++ {
		slaves = append(slaves, []stochnoc.TileID{free[2*k], free[2*k+1]})
	}

	const intervals = 100000
	app, err := stochnoc.SetupPi(net, master, slaves, intervals)
	if err != nil {
		log.Fatal(err)
	}

	res := net.Run()
	fmt.Printf("completed: %v after %d rounds (%d tiles dead)\n",
		res.Completed, res.Rounds, net.Injector().DeadTileCount())
	if !res.Completed {
		log.Fatal("both replicas of some slave were killed — rerun with another seed")
	}
	pi, err := app.Master.Pi()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed π estimate: %.10f\n", pi)
	fmt.Printf("serial reference:       %.10f\n", stochnoc.ReferencePi(intervals))
	fmt.Printf("|error| vs math.Pi:     %.3g\n", math.Abs(pi-math.Pi))
	fmt.Printf("traffic: %d transmissions for %d useful payload bits\n",
		res.Counters.Energy.Transmissions, res.Counters.DeliveredPayloadBits)
}
