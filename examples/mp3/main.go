// MP3-encoder pipeline on a NoC (§4.2, Fig. 4-7): the six encoder stages
// — Signal Acquisition, Psychoacoustic Model, MDCT, Iterative Encoding,
// Bit Reservoir, Output — each live on their own tile of a 4×4 NoC and
// stream audio frames through the stochastic network while 40 % of the
// packets are dropped by buffer overflows. The output bit-rate holds.
//
// Run with: go run ./examples/mp3
package main

import (
	"fmt"
	"log"

	stochnoc "repro"
)

func main() {
	log.SetFlags(0)

	grid := stochnoc.NewGrid(4, 4)
	net, err := stochnoc.New(stochnoc.Config{
		Topo: grid, P: 0.75, TTL: 20, MaxRounds: 2000, Seed: 11,
		Fault: stochnoc.FaultModel{
			POverflow: 0.4, // 40% of receptions lost to buffer overflow
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	const frames = 24
	pipe, err := stochnoc.SetupMP3(net, stochnoc.DefaultMP3Tiles(),
		stochnoc.EncoderConfig{BitrateBps: 128000},
		stochnoc.DefaultProgram(), frames)
	if err != nil {
		log.Fatal(err)
	}

	res := net.Run()
	out := pipe.Output()
	fmt.Printf("completed: %v after %d rounds\n", res.Completed, res.Rounds)
	fmt.Printf("frames at output: %d/%d\n", out.FramesReceived, out.Expected)
	fmt.Printf("sustained output bit-rate: %.0f b/s (target 128000)\n", out.BitrateBps())
	fmt.Printf("output jitter: %.2f rounds\n", out.JitterRounds())
	c := res.Counters
	fmt.Printf("the network dropped %d packets to overflow — gossip redundancy absorbed it\n",
		c.OverflowDrops)
	fmt.Printf("traffic: %d transmissions, %.3g J on 0.25µm links\n",
		c.Energy.Transmissions, c.Energy.EnergyJ(stochnoc.NoCLink025))
}
