// Periodic data acquisition from non-critical sensors — the third
// application class the thesis names for stochastic communication. Six
// sensor IPs sample a slowly varying field every four rounds and gossip
// the readings to a monitor while the network drops 40 % of all packets
// to buffer overflow. Lost samples merely age the monitor's view; the
// next period refreshes it — the loss-tolerant regime gossip fits best.
//
// Run with: go run ./examples/sensors
package main

import (
	"fmt"
	"log"

	stochnoc "repro"
)

func main() {
	log.SetFlags(0)

	grid := stochnoc.NewGrid(4, 4)
	net, err := stochnoc.New(stochnoc.Config{
		Topo: grid, P: 0.75, TTL: 10, MaxRounds: 200, Seed: 5,
		Fault: stochnoc.FaultModel{POverflow: 0.4},
	})
	if err != nil {
		log.Fatal(err)
	}

	field := &stochnoc.SensorField{Base: 21.5, Amp: 4, Period: 50}
	monitorTile := grid.ID(0, 0)
	monitor, err := stochnoc.NewSensorMonitor(6)
	if err != nil {
		log.Fatal(err)
	}
	net.Attach(monitorTile, monitor)
	sensorTiles := []stochnoc.TileID{
		grid.ID(3, 0), grid.ID(0, 3), grid.ID(3, 3),
		grid.ID(2, 1), grid.ID(1, 2), grid.ID(2, 2),
	}
	for i, tile := range sensorTiles {
		net.Attach(tile, &stochnoc.Sensor{
			Index: i, Monitor: monitorTile, Field: field, Interval: 4,
		})
	}

	const rounds = 100
	for i := 0; i < rounds; i++ {
		net.Step()
	}

	fmt.Printf("after %d rounds with 40%% packet drops:\n", rounds)
	fmt.Printf("coverage: %.0f%% of sensors reporting\n", 100*monitor.Coverage())
	fmt.Printf("worst staleness: %d rounds\n", monitor.MaxStaleness(rounds))
	for i := range sensorTiles {
		r, ok := monitor.Latest(i)
		if !ok {
			fmt.Printf("  sensor %d: NO DATA\n", i)
			continue
		}
		fmt.Printf("  sensor %d: %.2f (sampled round %d, received round %d)\n",
			i, r.Value, r.SampledAt, r.ReceivedAt)
	}
	c := net.Counters()
	fmt.Printf("the fabric dropped %d packets; periodic resampling hid it\n", c.OverflowDrops)
}
