// Parallel SAT solving on a NoC — the first application class the thesis
// names for stochastic communication. A master tile splits a random
// 3-SAT instance into 8 assumption cubes, farms them out to six worker
// IPs over the gossip network (with two random tiles crashed), and
// combines the verdicts. Reassignment of unanswered cubes makes the
// solve end-to-end fault tolerant.
//
// Run with: go run ./examples/sat
package main

import (
	"fmt"
	"log"

	stochnoc "repro"
)

func main() {
	log.SetFlags(0)

	// A satisfiable instance (ratio 2, below the ~4.27 phase transition).
	formula := stochnoc.Random3SAT(20, 40, 42)
	serial, err := stochnoc.SolveSAT(formula, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serial DPLL verdict: sat=%v (%d decisions)\n", serial.Sat, serial.Decisions)

	grid := stochnoc.NewGrid(4, 4)
	master := grid.ID(1, 1)
	net, err := stochnoc.New(stochnoc.Config{
		Topo: grid, P: 0.75, TTL: stochnoc.DefaultTTL, MaxRounds: 2000, Seed: 7,
		Fault: stochnoc.FaultModel{
			DeadTiles: 2,
			Protect:   []stochnoc.TileID{master},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	workers := []stochnoc.TileID{
		grid.ID(0, 0), grid.ID(3, 0), grid.ID(0, 3),
		grid.ID(3, 3), grid.ID(2, 1), grid.ID(1, 2),
	}
	app, err := stochnoc.SetupSAT(net, master, workers, formula, 3) // 8 cubes
	if err != nil {
		log.Fatal(err)
	}

	res := net.Run()
	fmt.Printf("distributed solve: completed=%v after %d rounds (%d tiles dead)\n",
		res.Completed, res.Rounds, net.Injector().DeadTileCount())
	if !res.Completed {
		log.Fatal("solve wedged")
	}
	verdict, err := app.Master.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distributed verdict: sat=%v (matches serial: %v)\n",
		verdict.Sat, verdict.Sat == serial.Sat)
	if verdict.Sat {
		fmt.Printf("model verified against the formula: %v\n", formula.Satisfies(verdict.Model))
	}
	fmt.Printf("cube reassignments due to faults: %d\n", app.Master.Reassignments)
}
