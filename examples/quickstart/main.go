// Quickstart: the thesis' Producer–Consumer example (§3.2.1, Fig. 3-3).
//
// A Producer on tile 5 of a 4×4 NoC streams ten messages to a Consumer on
// tile 11 without knowing where it is; the stochastic communication layer
// gossips every message there w.h.p. — even while 30 % of transmissions
// are scrambled by data upsets.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	stochnoc "repro"
)

func main() {
	log.SetFlags(0)

	grid := stochnoc.NewGrid(4, 4)
	net, err := stochnoc.New(stochnoc.Config{
		Topo:      grid,
		P:         0.65, // forwarding probability per port
		TTL:       16,   // message lifetime in rounds
		MaxRounds: 300,
		Seed:      1,
		Fault: stochnoc.FaultModel{
			PUpset:        0.3,  // 30% of transmissions scrambled...
			LiteralUpsets: true, // ...by real bit flips, caught by each tile's CRC
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	const messages = 10
	consumer := stochnoc.NewConsumer(messages)
	net.Attach(5, &stochnoc.Producer{Dst: 11, Count: messages})
	net.Attach(11, consumer)

	res := net.Run()
	fmt.Printf("completed: %v after %d rounds\n", res.Completed, res.Rounds)
	fmt.Printf("consumer received %d/%d messages (loss %.0f%%)\n",
		consumer.Received(), messages, 100*consumer.Loss())
	for seq := 0; seq < messages; seq++ {
		fmt.Printf("  message %d arrived in round %d\n", seq, consumer.GotRound[seq])
	}
	c := res.Counters
	fmt.Printf("traffic: %d transmissions; %d data upsets detected and discarded by CRC\n",
		c.Energy.Transmissions, c.UpsetsDetected)
	fmt.Printf("communication energy (0.25µm links): %.3g J\n",
		c.Energy.EnergyJ(stochnoc.NoCLink025))
}
