// Command figures regenerates every figure of the thesis' evaluation and
// prints the corresponding tables. EXPERIMENTS.md records one full run.
//
// Usage:
//
//	figures [-fig all|3-1|3-3|4-4|4-5|4-6|4-8|4-9|4-10|4-11|5-3|scaling|smc]
//	        [-runs N] [-seed S] [-workers W] [-shards K] [-quick]
//	        [-metrics FILE] [-cpuprofile FILE] [-memprofile FILE]
//	        [-checkpoint-every N -checkpoint-dir DIR] [-resume-from DIR]
//
// -quick shrinks sweep resolutions for a fast smoke run. -workers sets
// the Monte Carlo replica pool (0 = GOMAXPROCS); results are identical
// for every worker count — replicas are seeded by index, not by
// scheduling order. -shards sets the intra-replica shard count for the
// `-fig scaling` study (0 auto-picks from idle cores); engine results
// are bit-identical at any shard count. The scaling study prints
// machine-dependent wall-clock, so it is excluded from -fig all (whose
// output is diffed against figures_output.txt) and must be requested
// explicitly.
//
// -fig smc runs the statistical-model-checking cross-validation
// (docs/SMC.md): SPRT verdicts against exactly known trajectory
// probabilities on complete meshes and small grids, plus the
// fixed-effort rare-event splitting estimate against the exact flood
// law. Replica counts are chosen by the SPRT itself, so the study is
// excluded from the golden -fig all output like the scaling study.
//
// -metrics FILE additionally runs the canonical instrumented broadcast
// (the Fig. 3-3 walkthrough on the 8×8 microbench mesh, -runs replicas)
// and writes its per-round cross-replica series — transmissions, CRC
// rejects, overflow drops, TTL expiries, deliveries, aware-tile
// fraction, energy — to FILE as JSONL (or CSV if FILE ends in .csv).
// The file's per-round sums reconcile exactly with the engine's
// core.Counters totals and are byte-identical at any -workers setting;
// nothing is added to stdout, so the figures golden diff is unaffected.
// See docs/OBSERVABILITY.md.
//
// -checkpoint-every N -checkpoint-dir DIR (with -metrics) checkpoint
// every replica of the metrics study to DIR/replica-NNNN.ckpt every N
// rounds; -resume-from DIR resumes replicas from those files (replicas
// without a file start fresh). Checkpoint/resume is bit-identical —
// the exported series match an uninterrupted run byte for byte (see
// README.md, "Checkpoint/resume").
//
// -cpuprofile and -memprofile write pprof profiles of the regeneration
// (inspect with `go tool pprof`); the figure harness is the realistic
// end-to-end workload for profiling the round engine. The memory profile
// is written at exit and reflects allocations across the whole run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
)

var (
	figFlag     = flag.String("fig", "all", "figure to regenerate (e.g. 4-4, ext-robustness) or 'all'")
	runsFlag    = flag.Int("runs", 10, "repeated simulations per configuration")
	seedFlag    = flag.Uint64("seed", 2003, "master seed")
	workersFlag = flag.Int("workers", 0, "parallel replica workers (0 = GOMAXPROCS)")
	quick       = flag.Bool("quick", false, "reduced sweep resolution")
	shardsFlag  = flag.Int("shards", 0, "engine shards per replica for the scaling study (0 = auto from idle cores)")
	metricsOut  = flag.String("metrics", "", "write per-round series of the canonical 8x8 broadcast to this file (JSONL; .csv suffix selects CSV)")
	cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile  = flag.String("memprofile", "", "write a heap profile to this file at exit")
	ckptEvery   = flag.Int("checkpoint-every", 0, "with -metrics: checkpoint each replica every N rounds (0 = off; needs -checkpoint-dir)")
	ckptDir     = flag.String("checkpoint-dir", "", "with -metrics: directory for per-replica checkpoint files")
	resumeFrom  = flag.String("resume-from", "", "with -metrics: resume replicas from checkpoint files in this directory")
)

// mc builds the sim.Config for a figure that wants `runs` replicas per
// configuration.
func mc(runs int) sim.Config {
	return sim.Config{Replicas: runs, Workers: *workersFlag, Seed: *seedFlag}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	runners := []struct {
		name string
		run  func() error
		// skipInAll excludes machine-dependent output (wall-clock tables)
		// from -fig all, which is diffed against figures_output.txt.
		skipInAll bool
	}{
		{name: "3-1", run: fig31},
		{name: "3-3", run: fig33},
		{name: "4-4", run: fig44},
		{name: "4-5", run: fig45},
		{name: "4-6", run: fig46},
		{name: "4-8", run: fig48},
		{name: "4-9", run: fig49},
		{name: "4-10", run: fig410},
		{name: "4-11", run: fig411},
		{name: "5-3", run: fig53},
		{name: "ext-robustness", run: extRobustness},
		{name: "ext-mapping", run: extMapping},
		{name: "ext-spread", run: extSpread},
		{name: "ext-bimodal", run: extBimodal},
		{name: "ext-ttl", run: extTTL},
		{name: "ext-fec", run: extFEC},
		{name: "scaling", run: extScaling, skipInAll: true},
		// smc prints SPRT-chosen replica counts, which are a property of
		// the statistics rather than of the protocol tables the golden
		// file pins; kept out of -fig all like the scaling study.
		{name: "smc", run: figSMC, skipInAll: true},
	}
	ran := false
	for _, r := range runners {
		if *figFlag == "all" && r.skipInAll {
			continue
		}
		if *figFlag != "all" && *figFlag != r.name {
			continue
		}
		ran = true
		fmt.Printf("==== Figure %s ====\n", r.name)
		if err := r.run(); err != nil {
			log.Fatalf("figure %s: %v", r.name, err)
		}
		fmt.Println()
	}
	if !ran {
		log.Fatalf("unknown figure %q", *figFlag)
	}

	if *metricsOut != "" {
		if err := exportMetrics(*metricsOut); err != nil {
			log.Fatalf("metrics: %v", err)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
	}
}

// exportMetrics runs the canonical instrumented broadcast and writes its
// merged per-round series to path (CSV for a .csv suffix, JSONL
// otherwise). It writes only to the file — stdout stays byte-identical
// to an un-instrumented run.
func exportMetrics(path string) error {
	ck := experiments.BroadcastCheckpoints{
		Save:      sim.Checkpointer{Dir: *ckptDir, Every: *ckptEvery},
		ResumeDir: *resumeFrom,
	}
	if (*ckptEvery > 0) != (*ckptDir != "") {
		return fmt.Errorf("-checkpoint-every and -checkpoint-dir must be set together")
	}
	agg, err := experiments.BroadcastMetricsCheckpointed(mc(*runsFlag), ck)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = metrics.WriteCSV(f, agg)
	} else {
		err = metrics.WriteJSONL(f, agg)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func table(header string, rows func(w *tabwriter.Writer)) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	rows(w)
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}

func fig31() error {
	rows, err := experiments.Fig31(mc(*runsFlag * 10))
	if err != nil {
		return err
	}
	fmt.Println("Message spreading, 1000-node fully connected network (Fig. 3-1)")
	table("round\ttheory I(t)\tsimulated mean", func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%.1f\t%.1f\n", r.Round, r.Theory, r.SimMean)
		}
	})
	return nil
}

func fig33() error {
	res, err := experiments.Fig33(*seedFlag)
	if err != nil {
		return err
	}
	fmt.Println("Producer–Consumer on a 4x4 NoC, p=0.5 (Fig. 3-3)")
	fmt.Printf("Manhattan distance:  %d hops\n", res.ManhattanDistance)
	fmt.Printf("delivered in round:  %d\n", res.DeliveryRound)
	table("round\ttiles aware", func(w *tabwriter.Writer) {
		for i, n := range res.AwarePerRound {
			fmt.Fprintf(w, "%d\t%d\n", i+1, n)
			if n >= 16 {
				break
			}
		}
	})
	return nil
}

func fig44() error {
	dead := []int{0, 1, 2, 3, 4}
	if *quick {
		dead = []int{0, 2}
	}
	for _, app := range []experiments.CaseApp{experiments.FFT2, experiments.MasterSlave} {
		rows, err := experiments.Fig44(app, dead, mc(*runsFlag))
		if err != nil {
			return err
		}
		fmt.Printf("Latency & energy vs tile crash failures — %s (Fig. 4-4)\n", app)
		table("p\tdead tiles\tlatency [rounds]\tenergy [J/bit]\tcompletion", func(w *tabwriter.Writer) {
			for _, r := range rows {
				fmt.Fprintf(w, "%.2f\t%d\t%.1f ±%.1f\t%.3g\t%.0f%%\n",
					r.P, r.DeadTiles, r.Result.Rounds.Mean, r.Result.Rounds.StdDev,
					r.Result.EnergyPerBit.Mean, 100*r.Result.CompletionRate)
			}
		})
		fmt.Println()
	}
	return nil
}

func fig45() error {
	dead := []int{0, 2, 4, 6}
	upsets := []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9}
	if *quick {
		dead = []int{0, 4}
		upsets = []float64{0, 0.5, 0.9}
	}
	cells, err := experiments.Fig45(dead, upsets, mc(*runsFlag))
	if err != nil {
		return err
	}
	fmt.Println("Master–Slave latency surface: dead tiles x data upsets, p=0.5 (Fig. 4-5)")
	table("dead tiles\tp_upset\tlatency [rounds]\tcompletion", func(w *tabwriter.Writer) {
		for _, c := range cells {
			fmt.Fprintf(w, "%d\t%.2f\t%.1f ±%.1f\t%.0f%%\n",
				c.DeadTiles, c.PUpset, c.Result.Rounds.Mean, c.Result.Rounds.StdDev,
				100*c.Result.CompletionRate)
		}
	})
	return nil
}

func fig46() error {
	res, err := experiments.Fig46(mc(3))
	if err != nil {
		return err
	}
	fmt.Println("Stochastic NoC vs shared bus, 0.25um parameters (Fig. 4-6)")
	table("implementation\tlatency [µs]\tenergy [J/bit]\tenergy×delay [J·s/bit]", func(w *tabwriter.Writer) {
		for i, r := range res.Runs {
			fmt.Fprintf(w, "NoC run %d\t%.2f\t%.3g\t%.3g\n",
				i+1, 1e6*r.LatencySeconds, r.EnergyPerBitJ, r.EnergyDelayJsPB)
		}
		fmt.Fprintf(w, "NoC average\t%.2f\t%.3g\t%.3g\n",
			1e6*res.NoCAvg.LatencySeconds, res.NoCAvg.EnergyPerBitJ, res.NoCAvg.EnergyDelayJsPB)
		fmt.Fprintf(w, "Bus\t%.2f\t%.3g\t%.3g\n",
			1e6*res.Bus.LatencySeconds, res.Bus.EnergyPerBitJ, res.Bus.EnergyDelayJsPB)
	})
	fmt.Printf("bus/NoC latency ratio: %.1fx (thesis: 11x)\n", res.LatencyRatio)
	fmt.Printf("NoC/bus energy ratio:  %.2fx (thesis: 1.05x; see EXPERIMENTS.md)\n", res.EnergyRatio)
	return nil
}

func fig48() error {
	ps := []float64{0.25, 0.4, 0.55, 0.7, 0.85, 1}
	upsets := []float64{0, 0.2, 0.4, 0.6, 0.8}
	if *quick {
		ps = []float64{0.5, 1}
		upsets = []float64{0, 0.6}
	}
	cells, err := experiments.Fig48(ps, upsets, mc(*runsFlag/2+1))
	if err != nil {
		return err
	}
	fmt.Printf("MP3 latency over (p, p_upset), %d frames (Fig. 4-8)\n", experiments.MP3Frames)
	table("p\tp_upset\tlatency [rounds]\tcompletion", func(w *tabwriter.Writer) {
		for _, c := range cells {
			lat := "DNF"
			if c.Latency.N > 0 {
				lat = fmt.Sprintf("%.0f ±%.0f", c.Latency.Mean, c.Latency.StdDev)
			}
			fmt.Fprintf(w, "%.2f\t%.2f\t%s\t%.0f%%\n", c.P, c.PUpset, lat, 100*c.CompletionRate)
		}
	})
	return nil
}

func fig49() error {
	ps := []float64{0.25, 0.4, 0.55, 0.7, 0.85, 1}
	if *quick {
		ps = []float64{0.25, 0.5, 1}
	}
	rows, err := experiments.Fig49(ps, mc(*runsFlag/2+1))
	if err != nil {
		return err
	}
	fmt.Println("MP3 communication energy vs forwarding probability p (Fig. 4-9)")
	table("p\tenergy [J]", func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%.2f\t%.3g ±%.2g\n", r.P, r.EnergyJ.Mean, r.EnergyJ.StdDev)
		}
	})
	return nil
}

func fig410() error {
	drops := []float64{0, 0.2, 0.4, 0.6, 0.8, 0.9}
	sigmas := []float64{0, 0.5, 1, 1.5, 2}
	if *quick {
		drops = []float64{0, 0.4, 0.9}
		sigmas = []float64{0, 1.5}
	}
	over, err := experiments.Fig410Overflow(drops, mc(*runsFlag/2+1))
	if err != nil {
		return err
	}
	fmt.Println("MP3 latency vs dropped packets (Fig. 4-10 left; 'point A' = completion collapse)")
	table("dropped\tlatency [rounds]\tcompletion", func(w *tabwriter.Writer) {
		for _, r := range over {
			lat := "DNF"
			if r.Latency.N > 0 {
				lat = fmt.Sprintf("%.0f ±%.0f", r.Latency.Mean, r.Latency.StdDev)
			}
			fmt.Fprintf(w, "%.0f%%\t%s\t%.0f%%\n", 100*r.X, lat, 100*r.CompletionRate)
		}
	})
	syncRows, err := experiments.Fig410Sync(sigmas, mc(*runsFlag/2+1))
	if err != nil {
		return err
	}
	fmt.Println("\nMP3 latency vs synchronization error σ (Fig. 4-10 right)")
	table("σ/T_R\tlatency [rounds]\tcompletion", func(w *tabwriter.Writer) {
		for _, r := range syncRows {
			fmt.Fprintf(w, "%.0f%%\t%.0f ±%.0f\t%.0f%%\n",
				100*r.X, r.Latency.Mean, r.Latency.StdDev, 100*r.CompletionRate)
		}
	})
	return nil
}

func fig411() error {
	drops := []float64{0, 0.2, 0.4, 0.6, 0.8}
	sigmas := []float64{0, 0.5, 1, 1.5, 2}
	if *quick {
		drops = []float64{0, 0.5}
		sigmas = []float64{0, 1.5}
	}
	over, err := experiments.Fig411Overflow(drops, mc(*runsFlag/2+1))
	if err != nil {
		return err
	}
	fmt.Println("MP3 output bit-rate vs dropped packets (Fig. 4-11 left)")
	table("dropped\tbit-rate [b/s]\tjitter [rounds]", func(w *tabwriter.Writer) {
		for _, r := range over {
			fmt.Fprintf(w, "%.0f%%\t%.0f\t%.2f\n", 100*r.X, r.BitrateBps.Mean, r.JitterRounds.Mean)
		}
	})
	syncRows, err := experiments.Fig411Sync(sigmas, mc(*runsFlag/2+1))
	if err != nil {
		return err
	}
	fmt.Println("\nMP3 output bit-rate vs synchronization error σ (Fig. 4-11 right)")
	table("σ/T_R\tbit-rate [b/s]\tjitter [rounds]", func(w *tabwriter.Writer) {
		for _, r := range syncRows {
			fmt.Fprintf(w, "%.0f%%\t%.0f\t%.2f\n", 100*r.X, r.BitrateBps.Mean, r.JitterRounds.Mean)
		}
	})
	return nil
}

func fig53() error {
	rows, err := experiments.Fig53(mc(*runsFlag/2 + 1))
	if err != nil {
		return err
	}
	fmt.Println("On-chip diversity: beamforming on three architectures (Fig. 5-3)")
	table("architecture\tlatency [rounds]\tmessage transmissions\tcompleted", func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%v\t%.1f ±%.1f\t%.0f ±%.0f\t%v\n",
				r.Arch, r.Latency.Mean, r.Latency.StdDev,
				r.Transmissions.Mean, r.Transmissions.StdDev, r.CompletedAll)
		}
	})
	return nil
}

func extRobustness() error {
	rows, err := experiments.RobustnessStudy([]int{0, 1, 2, 3, 4}, mc(*runsFlag*2))
	if err != nil {
		return err
	}
	fmt.Println("Extension: delivery robustness, gossip vs directed gossip vs XY routing (6x6, corner-to-corner)")
	table("protocol\tdead tiles\tdelivery rate\tlatency [rounds]", func(w *tabwriter.Writer) {
		for _, r := range rows {
			lat := "-"
			if r.Latency.N > 0 {
				lat = fmt.Sprintf("%.1f ±%.1f", r.Latency.Mean, r.Latency.StdDev)
			}
			fmt.Fprintf(w, "%s\t%d\t%.0f%%\t%s\n", r.Protocol, r.DeadTiles, 100*r.DeliveryRate, lat)
		}
	})
	return nil
}

func extMapping() error {
	rows, err := experiments.MappingStudy(mc(*runsFlag))
	if err != nil {
		return err
	}
	fmt.Println("Extension: mapping sensitivity of the Master-Slave workload (§4.1.3 / [21])")
	table("placement\tcomm cost [vol×hops]\tlatency [rounds]", func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%.1f ±%.1f\n", r.Strategy, r.CommCost, r.Latency.Mean, r.Latency.StdDev)
		}
	})
	return nil
}

func extSpread() error {
	rows, err := experiments.GridSpread(6, 0.75, mc(*runsFlag*2))
	if err != nil {
		return err
	}
	fmt.Println("Extension: broadcast dissemination on a 6x6 mesh, p=0.75 (grid counterpart of Fig. 3-1)")
	table("round\ttiles aware (mean)", func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%.1f\n", r.Round, r.AwareMean)
			if r.AwareMean >= 36 {
				break
			}
		}
	})
	return nil
}

func extBimodal() error {
	rows, err := experiments.BimodalStudy(0.40, mc(*runsFlag*30))
	if err != nil {
		return err
	}
	fmt.Println("Extension: bimodal delivery near the percolation threshold (Birman et al. [4]; crash p=0.40)")
	table("coverage of surviving tiles\tfraction of runs", func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%.0f%%-%.0f%%\t%.1f%%\n", 100*r.CoverageLo, 100*r.CoverageHi, 100*r.Fraction)
		}
	})
	return nil
}

func extTTL() error {
	rows, err := experiments.TTLStudy([]uint8{4, 6, 8, 12, 16, 24, 32}, mc(*runsFlag*3))
	if err != nil {
		return err
	}
	fmt.Println("Extension: the TTL bandwidth knob (§3.3.1) — 8-hop unicast on a 5x5 grid, p=0.5")
	table("TTL\tdelivery rate\ttransmissions\tlatency [rounds]", func(w *tabwriter.Writer) {
		for _, r := range rows {
			lat := "-"
			if r.Latency.N > 0 {
				lat = fmt.Sprintf("%.1f", r.Latency.Mean)
			}
			fmt.Fprintf(w, "%d\t%.0f%%\t%.0f\t%s\n", r.TTL, 100*r.DeliveryRate, r.Transmissions.Mean, lat)
		}
	})
	return nil
}

func extScaling() error {
	sides := []int{16, 32, 64}
	if *quick {
		sides = []int{16, 32}
	}
	rows, err := experiments.GridScaling(sides, *shardsFlag, *seedFlag)
	if err != nil {
		return err
	}
	fmt.Println("Extension: sequential vs sharded engine, center broadcast to full awareness (p=0.5, TTL=255)")
	fmt.Printf("GOMAXPROCS: %d\n", runtime.GOMAXPROCS(0))
	table("mesh\tshards\trounds to full\ttransmissions\tseq [ms]\tsharded [ms]\tspeedup", func(w *tabwriter.Writer) {
		for _, r := range rows {
			full := ""
			if !r.FullyAware {
				full = " (died early)"
			}
			fmt.Fprintf(w, "%dx%d\t%d\t%d%s\t%d\t%.1f\t%.1f\t%.2fx\n",
				r.Side, r.Side, r.Shards, r.RoundsToFull, full, r.Transmissions,
				1e3*r.SeqSeconds, 1e3*r.ShardSeconds, r.Speedup)
		}
	})
	fmt.Println("(wall-clock is machine-dependent; protocol columns are bit-identical at any shard count)")

	// Mega-mesh churn: sustained injection with ID recycling, the memory
	// half of the scaling story. Full mode drives the 512×512 fabric
	// through a 10k-message workload (2500 rounds × 4 injections).
	megaSides, megaRounds := []int{128, 256, 512}, 2500
	if *quick {
		megaSides, megaRounds = []int{64, 128}, 400
	}
	mrows, err := experiments.MegaChurn(megaSides, 4, megaRounds, *shardsFlag, *seedFlag)
	if err != nil {
		return err
	}
	fmt.Println("Mega-mesh churn: sustained injection with ID recycling (p=0.5, TTL=16, 4 msgs/round)")
	table("mesh\tshards\tmsgs\tretired\tslots mid/end\tlive\tB/tile\trounds/sec", func(w *tabwriter.Writer) {
		for _, r := range mrows {
			fmt.Fprintf(w, "%dx%d\t%d\t%d\t%d\t%d/%d\t%d\t%.1f\t%.0f\n",
				r.Side, r.Side, r.Shards, r.Injected, r.Retired,
				r.MidSlots, r.EndSlots, r.LiveEnd, r.BytesPerTile, r.RoundsPerSec)
		}
	})
	fmt.Println("(equal mid/end slot counts show table memory bounded by the live population, not messages issued)")
	return nil
}

func figSMC() error {
	rows, err := experiments.SMCStudy(mc(*runsFlag))
	if err != nil {
		return err
	}
	fmt.Println("Statistical model checking: SPRT verdicts vs exact trajectory probabilities (docs/SMC.md)")
	table("fabric\tproperty\texact P\tθ low\tverdict\treplicas\tθ high\tverdict\treplicas\tfixed-N\tagree", func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%.4f\t%.2f\t%v\t%d\t%.2f\t%v\t%d\t%d\t%v\n",
				r.Fabric, r.Property, r.Truth,
				r.Low.Theta, r.Low.Verdict, r.Low.Replicas,
				r.High.Theta, r.High.Verdict, r.High.Replicas,
				r.Low.FixedN, r.Agree())
		}
	})

	res, truth, err := experiments.SMCSplitStudy(*seedFlag)
	if err != nil {
		return err
	}
	fmt.Println("\nRare-event splitting: full awareness of a complete 16-mesh within 6 rounds, p=0.025")
	table("estimator\tprobability\ttrajectories", func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "exact (flood law)\t%.3e\t-\n", truth)
		fmt.Fprintf(w, "fixed-effort splitting\t%.3e\t%d\n", res.Probability, res.Trajectories)
	})
	fmt.Printf("per-level conditional crossing fractions: %.3v\n", res.Conditional)
	return nil
}

func extFEC() error {
	rows, err := experiments.FECStudy([]float64{0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.08},
		mc(*runsFlag*300))
	if err != nil {
		return err
	}
	fmt.Println("Extension: CRC-discard vs Hamming SEC-DED FEC on a random-bit-error channel (Ch. 3 ARQ/FEC discussion)")
	table("p_bit\tCRC frame survival\tFEC frame survival\tFEC silent miscorrections [per block]", func(w *tabwriter.Writer) {
		for _, r := range rows {
			fmt.Fprintf(w, "%.4f\t%.1f%%\t%.1f%%\t%.2e\n",
				r.Pb, 100*r.CRCSurvival, 100*r.FECSurvival, r.FECMiscorrect)
		}
	})
	return nil
}
