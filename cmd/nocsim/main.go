// Command nocsim runs one ad-hoc stochastic-communication simulation from
// the command line: a single message gossiped from a source tile to a
// destination tile under a configurable fault model, reporting the spread
// trace, latency and energy.
//
// Usage:
//
//	nocsim [-width W -height H] [-src T -dst T] [-p P] [-ttl N]
//	       [-seed S] [-shards K] [-payload BYTES] [-max-rounds N]
//	       [-dead-tiles N] [-dead-links N] [-upset P] [-overflow P]
//	       [-sigma S] [-literal-upsets]
//	       [-trace] [-viz] [-metrics FILE]
//	       [-checkpoint-every N -checkpoint-file FILE] [-resume-from FILE]
//	       [-check "PROPERTY" [-theta θ] [-delta δ] [-alpha α] [-beta β]
//	        [-max-replicas N] [-workers W]]
//
// Example — the thesis' Producer-Consumer walkthrough under 30% upsets:
//
//	nocsim -width 4 -height 4 -src 5 -dst 11 -p 0.5 -upset 0.3
//
// -shards splits each round's per-tile work across K parallel lanes;
// results are bit-identical at any shard count, so it is purely a
// wall-clock knob for large grids (see DESIGN.md, "Sharded engine").
//
// -metrics FILE records the run through the internal/metrics per-round
// recorder and writes the series (transmissions, CRC rejects, drops,
// expiries, deliveries, aware fraction, energy per round) as JSONL, or
// CSV when FILE ends in .csv. See docs/OBSERVABILITY.md.
//
// -checkpoint-every N -checkpoint-file FILE snapshot the complete run
// state to FILE every N rounds (atomically — an interrupted save never
// leaves a torn file); -resume-from FILE continues an interrupted run
// from its last checkpoint. The resumed run is bit-identical to the
// uninterrupted one, provided every other flag matches the original
// invocation (verified via a config digest embedded in the file). The
// -trace timeline cannot span a resume (events before the checkpoint are
// gone), so -trace and -resume-from are mutually exclusive.
//
// -check "PROPERTY" switches from simulating once to statistical model
// checking (internal/smc): does the configured run satisfy PROPERTY
// with probability at least -theta? Replicas of the fabric run under
// seeds derived from -seed until Wald's sequential test settles with
// error bounds -alpha/-beta (indifference half-width -delta), printing
// the verdict, the consumed replica count and the equal-error fixed-N
// baseline. The exit status encodes the verdict — 0 ACCEPT, 1 REJECT,
// 2 UNDECIDED (replica budget -max-replicas exhausted) — so checks can
// gate scripts. The property language ("aware(0.9) within 32",
// "delivered by 16 and transmissions <= 4000", ...) is documented in
// docs/SMC.md. -check applies to the same single src→dst message the
// plain mode simulates; per-run flags (-trace, -viz, -metrics,
// checkpointing) cannot combine with it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/smc"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/viz"
)

var (
	width      = flag.Int("width", 4, "grid width")
	height     = flag.Int("height", 4, "grid height")
	src        = flag.Int("src", 5, "source tile")
	dst        = flag.Int("dst", 11, "destination tile")
	p          = flag.Float64("p", 0.5, "forwarding probability")
	ttl        = flag.Int("ttl", core.DefaultTTL, "message TTL in rounds")
	seed       = flag.Uint64("seed", 1, "simulation seed")
	shards     = flag.Int("shards", 0, "engine shards (0/1 = sequential; results identical at any count)")
	deadT      = flag.Int("dead-tiles", 0, "tiles to crash")
	deadL      = flag.Int("dead-links", 0, "links to crash")
	upset      = flag.Float64("upset", 0, "per-transmission data-upset probability")
	overflow   = flag.Float64("overflow", 0, "per-reception buffer-overflow probability")
	sigma      = flag.Float64("sigma", 0, "synchronization error σ/T_R")
	literal    = flag.Bool("literal-upsets", false, "flip real bits and let the CRC catch them")
	maxR       = flag.Int("max-rounds", 200, "round budget")
	payload    = flag.Int("payload", 16, "payload size in bytes")
	showTrace  = flag.Bool("trace", false, "print the message's full event timeline")
	showViz    = flag.Bool("viz", false, "render the spread as an ASCII grid each round")
	metricsOut = flag.String("metrics", "", "write the run's per-round series to this file (JSONL; .csv suffix selects CSV)")
	ckptEvery  = flag.Int("checkpoint-every", 0, "checkpoint the run to -checkpoint-file every N rounds (0 = off)")
	ckptFile   = flag.String("checkpoint-file", "", "checkpoint file path (needed with -checkpoint-every)")
	resumeFrom = flag.String("resume-from", "", "resume the run from this checkpoint file (flags must match the original run)")
	checkProp  = flag.String("check", "", "statistically check a property of the run instead of simulating once (spec language: docs/SMC.md)")
	theta      = flag.Float64("theta", 0.9, "with -check: probability threshold θ — test P[property] >= θ")
	delta      = flag.Float64("delta", 0.02, "with -check: SPRT indifference half-width δ around θ")
	alpha      = flag.Float64("alpha", 0.01, "with -check: false-accept probability bound α")
	beta       = flag.Float64("beta", 0.01, "with -check: false-reject probability bound β")
	maxReps    = flag.Int("max-replicas", 100000, "with -check: replica budget before reporting UNDECIDED")
	workers    = flag.Int("workers", 0, "with -check: replica worker pool (0 = GOMAXPROCS; verdict is worker-count independent)")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocsim: ")
	flag.Parse()

	grid := topology.NewGrid(*width, *height)
	if *src < 0 || *src >= grid.Tiles() || *dst < 0 || *dst >= grid.Tiles() {
		log.Fatalf("src/dst out of range for a %dx%d grid", *width, *height)
	}
	if *checkProp != "" {
		runCheck(grid)
		return
	}
	deliveryRound := -1
	cfg := core.Config{
		Topo: grid, P: *p, TTL: uint8(*ttl), MaxRounds: *maxR, Seed: *seed,
		Shards: *shards,
		Fault: fault.Model{
			DeadTiles: *deadT, DeadLinks: *deadL,
			PUpset: *upset, POverflow: *overflow, SigmaSync: *sigma,
			LiteralUpsets: *literal,
			Protect:       []packet.TileID{packet.TileID(*src), packet.TileID(*dst)},
		},
		OnDeliver: func(t packet.TileID, pk *packet.Packet, round int) {
			if t == packet.TileID(*dst) && deliveryRound < 0 {
				deliveryRound = round
			}
		},
	}
	col := &trace.Collector{}
	if *showTrace {
		cfg.OnEvent = col.Hook()
	}
	var rec *metrics.Recorder
	if *metricsOut != "" {
		rec = metrics.NewRecorder(metrics.Config{Rounds: *maxR, Tech: energy.NoCLink025})
		rec.Install(&cfg)
	}
	if *ckptEvery > 0 && *ckptFile == "" {
		log.Fatal("-checkpoint-every needs -checkpoint-file")
	}
	if *resumeFrom != "" && *showTrace {
		log.Fatal("-trace cannot span a resume; drop one of -trace / -resume-from")
	}
	meta := sim.CheckpointMeta{Replica: 0, Seed: *seed}
	var net *core.Network
	var id packet.MsgID
	deliveredBeforeResume := false
	if *resumeFrom != "" {
		f, err := os.Open(*resumeFrom)
		if err != nil {
			log.Fatalf("resume: %v", err)
		}
		net, _, err = sim.ReadCheckpoint(f, cfg, rec)
		f.Close()
		if err != nil {
			log.Fatalf("resume %s: %v", *resumeFrom, err)
		}
		// nocsim injects exactly one message before round 1, so the
		// checkpointed run's message is always ID 1. A delivery that
		// happened before the checkpoint is visible as destination
		// awareness, but its round is not replayed.
		id = 1
		deliveredBeforeResume = net.AwareAt(id, packet.TileID(*dst))
	} else {
		var err error
		net, err = core.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		id, err = net.Inject(packet.TileID(*src), packet.TileID(*dst), 1, make([]byte, *payload))
		if err != nil {
			log.Fatal(err)
		}
		if rec != nil {
			rec.Watch(id)
		}
	}

	fmt.Printf("gossiping tile %d -> tile %d on a %dx%d NoC (p=%.2f, TTL=%d, Manhattan=%d)\n",
		*src, *dst, *width, *height, *p, *ttl, grid.Manhattan(packet.TileID(*src), packet.TileID(*dst)))
	if net.Round() > 0 {
		fmt.Printf("resumed from %s at round %d\n", *resumeFrom, net.Round())
	}
	if *showViz {
		fmt.Println(viz.Legend())
	}
	for net.Round() < *maxR && deliveryRound < 0 && !deliveredBeforeResume {
		net.Step()
		fmt.Printf("round %3d: %2d/%d tiles aware\n", net.Round(), net.Aware(id), grid.Tiles())
		if *showViz {
			fmt.Print(viz.Frame(net, grid, id, packet.TileID(*src), packet.TileID(*dst)))
		}
		if *ckptEvery > 0 && net.Round()%*ckptEvery == 0 {
			if err := saveCheckpoint(*ckptFile, meta, net, rec); err != nil {
				log.Fatalf("checkpoint: %v", err)
			}
		}
		if net.Quiescent() {
			break
		}
	}
	c := net.Counters()
	switch {
	case deliveredBeforeResume:
		fmt.Println("result: delivered before the resume point (round not replayed)")
	case deliveryRound < 0:
		fmt.Println("result: NOT DELIVERED (every copy was lost or expired)")
	default:
		fmt.Printf("result: delivered in round %d\n", deliveryRound)
	}
	fmt.Printf("traffic: %d transmissions, %d bits\n", c.Energy.Transmissions, c.Energy.Bits)
	fmt.Printf("energy (0.25um link): %.3g J\n", c.Energy.EnergyJ(energy.NoCLink025))
	fmt.Printf("faults: %d upsets detected, %d overflow drops, %d slipped deliveries\n",
		c.UpsetsDetected, c.OverflowDrops, c.SlippedDeliveries)
	if *showTrace {
		fmt.Print(col.Timeline(id))
		if v := col.CheckInvariants(); len(v) > 0 {
			log.Fatalf("trace invariant violations: %v", v)
		}
	}
	if rec != nil {
		if err := writeMetrics(*metricsOut, rec); err != nil {
			log.Fatalf("metrics: %v", err)
		}
		fmt.Printf("metrics: per-round series written to %s\n", *metricsOut)
	}
}

// runCheck is the -check mode: instead of simulating the src→dst
// gossip once, it asks whether the run satisfies the given property
// with probability at least θ, replicating the configured fabric under
// derived seeds until Wald's SPRT settles (internal/smc; the spec
// language, decision procedure and error guarantees are documented in
// docs/SMC.md). The verdict maps onto the exit status — 0 ACCEPT,
// 1 REJECT, 2 UNDECIDED — so properties can gate scripts and CI.
func runCheck(grid *topology.Grid) {
	for name, set := range map[string]bool{
		"-trace":            *showTrace,
		"-viz":              *showViz,
		"-metrics":          *metricsOut != "",
		"-checkpoint-every": *ckptEvery > 0,
		"-resume-from":      *resumeFrom != "",
	} {
		if set {
			log.Fatalf("%s applies to a single simulated run and cannot combine with -check", name)
		}
	}
	prop, err := smc.Parse(*checkProp)
	if err != nil {
		log.Fatal(err)
	}
	model := smc.Model{
		Config: core.Config{
			Topo: grid, P: *p, TTL: uint8(*ttl), MaxRounds: *maxR,
			Shards: *shards,
			Fault: fault.Model{
				DeadTiles: *deadT, DeadLinks: *deadL,
				PUpset: *upset, POverflow: *overflow, SigmaSync: *sigma,
				LiteralUpsets: *literal,
				Protect:       []packet.TileID{packet.TileID(*src), packet.TileID(*dst)},
			},
		},
		Source:       packet.TileID(*src),
		Dest:         packet.TileID(*dst),
		Tech:         energy.NoCLink025,
		PayloadBytes: *payload,
	}
	rep, err := smc.Check(prop, model.Replica(prop), smc.CheckConfig{
		Theta: *theta, Delta: *delta, Alpha: *alpha, Beta: *beta,
		MaxReplicas: *maxReps, Workers: *workers, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checking P[%s] >= %g on a %dx%d NoC (tile %d -> tile %d, p=%.2f, TTL=%d)\n",
		rep.Property, rep.Theta, *width, *height, *src, *dst, *p, *ttl)
	fmt.Println(rep)
	switch rep.Verdict {
	case smc.Accepted:
		os.Exit(0)
	case smc.Rejected:
		os.Exit(1)
	default:
		os.Exit(2)
	}
}

// saveCheckpoint atomically writes the run's state — engine plus the
// metrics recorder, when one is attached — to path (tmp + rename, so an
// interruption mid-save never leaves a torn file).
func saveCheckpoint(path string, meta sim.CheckpointMeta, net *core.Network, rec *metrics.Recorder) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	err = sim.WriteCheckpoint(tmp, meta, net, rec)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// writeMetrics exports the single run's series (a one-replica merge, so
// mean = the run's value and n = 1 per round).
func writeMetrics(path string, rec *metrics.Recorder) error {
	agg, err := metrics.Merge([]*metrics.TimeSeries{rec.Series()})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = metrics.WriteCSV(f, agg)
	} else {
		err = metrics.WriteJSONL(f, agg)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
