// Command nocsim runs one ad-hoc stochastic-communication simulation from
// the command line: a single message gossiped from a source tile to a
// destination tile under a configurable fault model, reporting the spread
// trace, latency and energy.
//
// Example — the thesis' Producer-Consumer walkthrough under 30% upsets:
//
//	nocsim -width 4 -height 4 -src 5 -dst 11 -p 0.5 -upset 0.3
//
// -metrics FILE records the run through the internal/metrics per-round
// recorder and writes the series (transmissions, CRC rejects, drops,
// expiries, deliveries, aware fraction, energy per round) as JSONL, or
// CSV when FILE ends in .csv. See docs/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/viz"
)

var (
	width      = flag.Int("width", 4, "grid width")
	height     = flag.Int("height", 4, "grid height")
	src        = flag.Int("src", 5, "source tile")
	dst        = flag.Int("dst", 11, "destination tile")
	p          = flag.Float64("p", 0.5, "forwarding probability")
	ttl        = flag.Int("ttl", core.DefaultTTL, "message TTL in rounds")
	seed       = flag.Uint64("seed", 1, "simulation seed")
	shards     = flag.Int("shards", 0, "engine shards (0/1 = sequential; results identical at any count)")
	deadT      = flag.Int("dead-tiles", 0, "tiles to crash")
	deadL      = flag.Int("dead-links", 0, "links to crash")
	upset      = flag.Float64("upset", 0, "per-transmission data-upset probability")
	overflow   = flag.Float64("overflow", 0, "per-reception buffer-overflow probability")
	sigma      = flag.Float64("sigma", 0, "synchronization error σ/T_R")
	literal    = flag.Bool("literal-upsets", false, "flip real bits and let the CRC catch them")
	maxR       = flag.Int("max-rounds", 200, "round budget")
	payload    = flag.Int("payload", 16, "payload size in bytes")
	showTrace  = flag.Bool("trace", false, "print the message's full event timeline")
	showViz    = flag.Bool("viz", false, "render the spread as an ASCII grid each round")
	metricsOut = flag.String("metrics", "", "write the run's per-round series to this file (JSONL; .csv suffix selects CSV)")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocsim: ")
	flag.Parse()

	grid := topology.NewGrid(*width, *height)
	if *src < 0 || *src >= grid.Tiles() || *dst < 0 || *dst >= grid.Tiles() {
		log.Fatalf("src/dst out of range for a %dx%d grid", *width, *height)
	}
	deliveryRound := -1
	cfg := core.Config{
		Topo: grid, P: *p, TTL: uint8(*ttl), MaxRounds: *maxR, Seed: *seed,
		Shards: *shards,
		Fault: fault.Model{
			DeadTiles: *deadT, DeadLinks: *deadL,
			PUpset: *upset, POverflow: *overflow, SigmaSync: *sigma,
			LiteralUpsets: *literal,
			Protect:       []packet.TileID{packet.TileID(*src), packet.TileID(*dst)},
		},
		OnDeliver: func(t packet.TileID, pk *packet.Packet, round int) {
			if t == packet.TileID(*dst) && deliveryRound < 0 {
				deliveryRound = round
			}
		},
	}
	col := &trace.Collector{}
	if *showTrace {
		cfg.OnEvent = col.Hook()
	}
	var rec *metrics.Recorder
	if *metricsOut != "" {
		rec = metrics.NewRecorder(metrics.Config{Rounds: *maxR, Tech: energy.NoCLink025})
		rec.Install(&cfg)
	}
	net, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	id, err := net.Inject(packet.TileID(*src), packet.TileID(*dst), 1, make([]byte, *payload))
	if err != nil {
		log.Fatal(err)
	}
	if rec != nil {
		rec.Watch(id)
	}

	fmt.Printf("gossiping tile %d -> tile %d on a %dx%d NoC (p=%.2f, TTL=%d, Manhattan=%d)\n",
		*src, *dst, *width, *height, *p, *ttl, grid.Manhattan(packet.TileID(*src), packet.TileID(*dst)))
	if *showViz {
		fmt.Println(viz.Legend())
	}
	for round := 1; round <= *maxR && deliveryRound < 0; round++ {
		net.Step()
		fmt.Printf("round %3d: %2d/%d tiles aware\n", round, net.Aware(id), grid.Tiles())
		if *showViz {
			fmt.Print(viz.Frame(net, grid, id, packet.TileID(*src), packet.TileID(*dst)))
		}
		if net.Quiescent() {
			break
		}
	}
	c := net.Counters()
	if deliveryRound < 0 {
		fmt.Println("result: NOT DELIVERED (every copy was lost or expired)")
	} else {
		fmt.Printf("result: delivered in round %d\n", deliveryRound)
	}
	fmt.Printf("traffic: %d transmissions, %d bits\n", c.Energy.Transmissions, c.Energy.Bits)
	fmt.Printf("energy (0.25um link): %.3g J\n", c.Energy.EnergyJ(energy.NoCLink025))
	fmt.Printf("faults: %d upsets detected, %d overflow drops, %d slipped deliveries\n",
		c.UpsetsDetected, c.OverflowDrops, c.SlippedDeliveries)
	if *showTrace {
		fmt.Print(col.Timeline(id))
		if v := col.CheckInvariants(); len(v) > 0 {
			log.Fatalf("trace invariant violations: %v", v)
		}
	}
	if rec != nil {
		if err := writeMetrics(*metricsOut, rec); err != nil {
			log.Fatalf("metrics: %v", err)
		}
		fmt.Printf("metrics: per-round series written to %s\n", *metricsOut)
	}
}

// writeMetrics exports the single run's series (a one-replica merge, so
// mean = the run's value and n = 1 per round).
func writeMetrics(path string, rec *metrics.Recorder) error {
	agg, err := metrics.Merge([]*metrics.TimeSeries{rec.Series()})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = metrics.WriteCSV(f, agg)
	} else {
		err = metrics.WriteJSONL(f, agg)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
