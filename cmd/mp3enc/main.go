// Command mp3enc demonstrates the perceptual audio encoder two ways:
// serially (the reference pipeline of internal/audio/encoder) and mapped
// onto a stochastically-communicating NoC (the §4.2 experimental setup),
// then reports bit-rates, reconstruction SNR, and the NoC run's latency
// and fault counters.
//
// Usage:
//
//	mp3enc [-frames N] [-bitrate BPS] [-p P] [-upset PU] [-overflow PO]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/apps/mp3"
	"repro/internal/audio/encoder"
	"repro/internal/audio/signal"
	"repro/internal/audio/wav"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/topology"
)

var (
	frames   = flag.Int("frames", 24, "number of audio frames to encode")
	bitrate  = flag.Int("bitrate", 128000, "target bit-rate [b/s]")
	p        = flag.Float64("p", 0.75, "gossip forwarding probability")
	upset    = flag.Float64("upset", 0, "data-upset probability")
	overflow = flag.Float64("overflow", 0, "buffer-overflow probability")
	seed     = flag.Uint64("seed", 1, "simulation seed")
	wavRef   = flag.String("wav-ref", "", "write the reference program material to this WAV file")
	wavOut   = flag.String("wav-out", "", "write the decoded reconstruction to this WAV file")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mp3enc: ")
	flag.Parse()

	src := signal.DefaultProgram()
	cfg := encoder.Config{BitrateBps: *bitrate}

	// Reference: the serial pipeline.
	enc, err := encoder.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stream, err := enc.EncodeStream(src, *frames)
	if err != nil {
		log.Fatal(err)
	}
	recon, err := encoder.Decode(stream)
	if err != nil {
		log.Fatal(err)
	}
	m := enc.Config().M
	ref, err := src.Samples(0, m*(*frames+1))
	if err != nil {
		log.Fatal(err)
	}
	if *wavRef != "" {
		if err := writeWAV(*wavRef, ref, enc.Config().SampleRate); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote reference audio to %s\n", *wavRef)
	}
	if *wavOut != "" {
		if err := writeWAV(*wavOut, recon, enc.Config().SampleRate); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote decoded audio to %s\n", *wavOut)
	}
	fmt.Println("== serial reference encoder ==")
	fmt.Printf("frames:        %d (%d samples each, %.1f ms of audio)\n",
		*frames, m, 1e3*float64(*frames)*enc.FrameDuration())
	fmt.Printf("bit-rate:      %.0f b/s (target %d)\n", stream.BitrateBps(), *bitrate)
	fmt.Printf("reconstruction SNR: %.1f dB\n",
		signal.SNRdB(ref[m:*frames*m], recon[m:*frames*m]))

	// The same pipeline streamed over a 4x4 stochastic NoC.
	net, err := core.New(core.Config{
		Topo: topology.NewGrid(4, 4), P: *p, TTL: 20, MaxRounds: 3000, Seed: *seed,
		Fault: fault.Model{PUpset: *upset, POverflow: *overflow},
	})
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := mp3.Setup(net, mp3.DefaultTiles(), cfg, src, *frames)
	if err != nil {
		log.Fatal(err)
	}
	res := net.Run()
	out := pipe.Output()
	fmt.Println("\n== NoC pipeline (Fig. 4-7 mapping) ==")
	fmt.Printf("completed:     %v (%d rounds)\n", res.Completed, res.Rounds)
	fmt.Printf("frames at output: %d/%d\n", out.FramesReceived, out.Expected)
	fmt.Printf("sustained bit-rate: %.0f b/s\n", out.BitrateBps())
	fmt.Printf("output jitter: %.2f rounds\n", out.JitterRounds())
	c := res.Counters
	fmt.Printf("traffic: %d transmissions; %d upsets detected; %d overflow drops\n",
		c.Energy.Transmissions, c.UpsetsDetected, c.OverflowDrops)
}

// writeWAV saves mono samples to path.
func writeWAV(path string, samples []float64, rate int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := wav.Write(f, samples, rate, 1); err != nil {
		return err
	}
	return f.Close()
}
