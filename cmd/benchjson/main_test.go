package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStepGrid8x8        	  148022	      8331 ns/op	       0 B/op	       0 allocs/op
BenchmarkStepGrid8x8Sync-4  	   79009	     15708 ns/op	     560 B/op	       2 allocs/op
BenchmarkAblationTTL12      	     500	   2150000 ns/op	          1234 transmissions
PASS
ok  	repro/internal/core	5.334s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(doc.Results), doc.Results)
	}
	r := doc.Results[0]
	if r.Name != "BenchmarkStepGrid8x8" || r.Iterations != 148022 || r.NsPerOp != 8331 {
		t.Fatalf("first result mismatch: %+v", r)
	}
	if r.Procs != 0 {
		t.Fatalf("suffix-less benchmark parsed procs %d", r.Procs)
	}
	r = doc.Results[1]
	if r.Procs != 4 || r.Name != "BenchmarkStepGrid8x8Sync" {
		t.Fatalf("-N suffix not split: %+v", r)
	}
	if r.BytesPerOp != 560 || r.AllocsPerOp != 2 {
		t.Fatalf("benchmem fields mismatch: %+v", r)
	}
	r = doc.Results[2]
	if r.Metrics["transmissions"] != 1234 {
		t.Fatalf("ReportMetric extra lost: %+v", r)
	}
	if doc.Context["goos"] != "linux" || doc.Context["cpu"] == "" {
		t.Fatalf("context header lost: %+v", doc.Context)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	noise := `# repro/internal/foo
FAIL	repro/internal/foo [build failed]
Benchmark	garbage line
BenchmarkNoIters	abc	1 ns/op
--- BENCH: BenchmarkX
    bench_test.go:10: log line
`
	doc, err := Parse(strings.NewReader(noise))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Results) != 0 {
		t.Fatalf("noise produced results: %+v", doc.Results)
	}
}

func TestParseBenchLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  	repro	1.2s",
		"BenchmarkX 100", // no measurements
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Fatalf("parsed %q as a result", line)
		}
	}
}
