// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON document, for CI artifacts and cross-run
// comparison.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson [-o FILE]
//
// It scans stdin for benchmark result lines, e.g.
//
//	BenchmarkName-8   123   456 ns/op  78 B/op  9 allocs/op  1.5 extra-metric
//
// and writes a JSON array of the parsed results to -o (default stdout).
// Lines that are not benchmark results — build noise, PASS/ok footers —
// are ignored, so the tool can sit at the end of a pipe without fragile
// filtering.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line. Iterations and NsPerOp are always
// present; the remaining fields appear when -benchmem or ReportMetric
// added them (zero-valued and omitted otherwise).
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"` // the -N suffix, if any
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds ReportMetric extras, keyed by unit (e.g.
	// "transmissions").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the top-level JSON document.
type Doc struct {
	// Context lines: the goos/goarch/pkg/cpu header go test prints.
	Context map[string]string `json:"context,omitempty"`
	Results []Result          `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc, err := Parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
	if len(doc.Results) == 0 {
		log.Print("warning: no benchmark lines found in input")
	}
}

// Parse reads go-test bench output from r and extracts the results.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if key, val, ok := contextLine(line); ok {
			doc.Context[key] = val
			continue
		}
		if res, ok := parseBenchLine(line); ok {
			doc.Results = append(doc.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading input: %w", err)
	}
	if len(doc.Context) == 0 {
		doc.Context = nil
	}
	return doc, nil
}

// contextLine recognizes the goos/goarch/pkg/cpu header lines.
func contextLine(line string) (key, val string, ok bool) {
	for _, k := range []string{"goos", "goarch", "pkg", "cpu"} {
		if rest, found := strings.CutPrefix(line, k+": "); found {
			return k, strings.TrimSpace(rest), true
		}
	}
	return "", "", false
}

// parseBenchLine parses one "BenchmarkX-N  iters  v unit  v unit ..."
// line. The value/unit pairing is positional, exactly as the testing
// package emits it.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := fields[0]
	procs := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Procs: procs, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = val
			seen = true
		case "B/op":
			res.BytesPerOp = val
		case "allocs/op":
			res.AllocsPerOp = val
		case "MB/s":
			// throughput is a standard extra; keep it with the metrics
			fallthrough
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = val
		}
	}
	if !seen {
		return Result{}, false
	}
	return res, true
}
