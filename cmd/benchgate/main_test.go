package main

import (
	"regexp"
	"strings"
	"testing"
)

func doc(results ...Result) Doc { return Doc{Results: results} }

func TestCompareGatesGrowth(t *testing.T) {
	baseline := doc(
		Result{Name: "BenchmarkStepGrid256x256", BytesPerOp: 1000},
		Result{Name: "BenchmarkStepGrid8x8", BytesPerOp: 10},
	)
	current := doc(
		Result{Name: "BenchmarkStepGrid256x256", BytesPerOp: 1099}, // within 10%
		Result{Name: "BenchmarkStepGrid8x8", BytesPerOp: 12},       // 20% over
	)
	vs, _ := Compare(baseline, current, nil, "bytes_per_op", 0.10, 0)
	if len(vs) != 2 {
		t.Fatalf("got %d verdicts, want 2", len(vs))
	}
	byName := map[string]Verdict{}
	for _, v := range vs {
		byName[v.Name] = v
	}
	if byName["BenchmarkStepGrid256x256"].Regresses {
		t.Error("1099 vs 1000 at 10% tolerance flagged as regression")
	}
	if !byName["BenchmarkStepGrid8x8"].Regresses {
		t.Error("12 vs 10 at 10% tolerance not flagged")
	}
}

func TestCompareImprovementPasses(t *testing.T) {
	vs, _ := Compare(
		doc(Result{Name: "B", BytesPerOp: 1000}),
		doc(Result{Name: "B", BytesPerOp: 1}),
		nil, "bytes_per_op", 0.10, 0)
	if len(vs) != 1 || vs[0].Regresses {
		t.Fatalf("improvement flagged: %+v", vs)
	}
}

func TestCompareZeroBaselineGatesAbsolutely(t *testing.T) {
	vs, _ := Compare(
		doc(Result{Name: "B", BytesPerOp: 0}),
		doc(Result{Name: "B", BytesPerOp: 5}),
		nil, "bytes_per_op", 0.10, 0)
	if len(vs) != 1 || !vs[0].Regresses {
		t.Fatalf("growth from a zero baseline not flagged: %+v", vs)
	}
}

func TestCompareSkipsUnsharedAndFiltered(t *testing.T) {
	baseline := doc(
		Result{Name: "Shared", BytesPerOp: 10},
		Result{Name: "BaselineOnly", BytesPerOp: 10},
	)
	current := doc(
		Result{Name: "Shared", BytesPerOp: 10},
		Result{Name: "CurrentOnly", BytesPerOp: 99999},
	)
	vs, missing := Compare(baseline, current, nil, "bytes_per_op", 0.10, 0)
	if len(vs) != 1 || vs[0].Name != "Shared" {
		t.Fatalf("unshared benchmarks gated: %+v", vs)
	}
	if len(missing) != 1 || missing[0] != "BaselineOnly" {
		t.Fatalf("baseline-only benchmark not reported missing: %v", missing)
	}
	vs, missing = Compare(baseline, current, regexp.MustCompile("^NoMatch"), "bytes_per_op", 0.10, 0)
	if len(vs) != 0 {
		t.Fatalf("filtered benchmarks gated: %+v", vs)
	}
	if len(missing) != 0 {
		t.Fatalf("filtered-out baseline entries reported missing: %v", missing)
	}
}

// TestCompareMissingBaselineBenchmark pins the lost-coverage check: a
// baseline entry whose benchmark is absent from the current run is
// named in the missing list (so the gate errors instead of silently
// passing), but only when it matches the -bench filter and carries the
// gated metric — entries that never gated cannot be "lost".
func TestCompareMissingBaselineBenchmark(t *testing.T) {
	baseline := doc(
		Result{Name: "Gone", NsPerOp: 100},
		Result{Name: "GoneButFiltered", NsPerOp: 100},
		Result{Name: "GoneNoMetric", Metrics: map[string]float64{"other": 1}},
		Result{Name: "Here", NsPerOp: 100},
	)
	current := doc(Result{Name: "Here", Iterations: 100, NsPerOp: 100})
	vs, missing := Compare(baseline, current, regexp.MustCompile("^Gone$|^Here$"), "ns_per_op", 0.10, 0)
	if len(vs) != 1 || vs[0].Name != "Here" {
		t.Fatalf("surviving benchmark not gated: %+v", vs)
	}
	if len(missing) != 1 || missing[0] != "Gone" {
		t.Fatalf("missing = %v, want exactly [Gone]", missing)
	}
	// Gating a custom metric: baseline entries without it never gated, so
	// their absence is not lost coverage.
	_, missing = Compare(baseline, current, nil, "other", 0.10, 0)
	if len(missing) != 1 || missing[0] != "GoneNoMetric" {
		t.Fatalf("custom-metric missing list = %v, want exactly [GoneNoMetric]", missing)
	}
}

func TestCompareCustomMetric(t *testing.T) {
	baseline := doc(Result{Name: "B", Metrics: map[string]float64{"rounds/sec": 100}})
	current := doc(Result{Name: "B", Metrics: map[string]float64{"rounds/sec": 150}})
	vs, _ := Compare(baseline, current, nil, "rounds/sec", 0.10, 0)
	if len(vs) != 1 || !vs[0].Regresses {
		t.Fatalf("custom metric not gated: %+v", vs)
	}
	// Missing metric on either side: skipped, not a false failure.
	if vs, _ := Compare(baseline, current, nil, "missing_metric", 0.10, 0); len(vs) != 0 {
		t.Fatalf("missing metric produced verdicts: %+v", vs)
	}
}

// TestCompareMinIters pins the timing-gate sanity floor: a benchmark
// measured with too few iterations — in either document — is reported
// LowIters and never flagged, however bad its numbers look; at or above
// the floor it gates normally, and a zero floor gates everything.
func TestCompareMinIters(t *testing.T) {
	baseline := doc(
		Result{Name: "Noisy", Iterations: 3, NsPerOp: 100},
		Result{Name: "Solid", Iterations: 500, NsPerOp: 100},
		Result{Name: "BaseStarved", Iterations: 2, NsPerOp: 100},
	)
	current := doc(
		Result{Name: "Noisy", Iterations: 4, NsPerOp: 900},       // 9x over, but under floor
		Result{Name: "Solid", Iterations: 500, NsPerOp: 130},     // over tol, well measured
		Result{Name: "BaseStarved", Iterations: 500, NsPerOp: 1}, // baseline under floor
	)
	vs, _ := Compare(baseline, current, nil, "ns_per_op", 0.10, 10)
	if len(vs) != 3 {
		t.Fatalf("got %d verdicts, want 3: %+v", len(vs), vs)
	}
	byName := map[string]Verdict{}
	for _, v := range vs {
		byName[v.Name] = v
	}
	if v := byName["Noisy"]; !v.LowIters || v.Regresses {
		t.Errorf("under-iterated benchmark gated: %+v", v)
	}
	if v := byName["BaseStarved"]; !v.LowIters || v.Regresses {
		t.Errorf("under-iterated baseline gated: %+v", v)
	}
	if v := byName["Solid"]; v.LowIters || !v.Regresses {
		t.Errorf("well-measured regression missed: %+v", v)
	}
	// Exactly at the floor gates; zero floor gates even one iteration.
	vs, _ = Compare(
		doc(Result{Name: "B", Iterations: 10, NsPerOp: 100}),
		doc(Result{Name: "B", Iterations: 10, NsPerOp: 200}),
		nil, "ns_per_op", 0.10, 10)
	if len(vs) != 1 || vs[0].LowIters || !vs[0].Regresses {
		t.Fatalf("at-floor benchmark not gated: %+v", vs)
	}
	vs, _ = Compare(
		doc(Result{Name: "B", Iterations: 1, NsPerOp: 100}),
		doc(Result{Name: "B", Iterations: 1, NsPerOp: 200}),
		nil, "ns_per_op", 0.10, 0)
	if len(vs) != 1 || vs[0].LowIters || !vs[0].Regresses {
		t.Fatalf("zero floor skipped a benchmark: %+v", vs)
	}
}

func TestReadDoc(t *testing.T) {
	d, err := readDoc(strings.NewReader(`{"results":[{"name":"B","bytes_per_op":42}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Results) != 1 || d.Results[0].BytesPerOp != 42 {
		t.Fatalf("parsed %+v", d)
	}
	if _, err := readDoc(strings.NewReader("not json")); err == nil {
		t.Fatal("bad input parsed without error")
	}
}
