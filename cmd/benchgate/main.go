// Command benchgate compares a fresh benchjson document against a
// committed baseline and fails when a gated metric regresses beyond a
// tolerance. It is the teeth behind the CI regression gates: the bench
// jobs convert a -benchmem run to JSON with benchjson, then benchgate
// holds its bytes_per_op (memory gate, BENCH_6.json) or ns_per_op (CPU
// gate, BENCH_7.json) against the checked-in baseline.
//
// Usage:
//
//	benchgate -baseline BENCH_7.json [-bench REGEXP] [-metric ns_per_op] [-tol 0.10] [-min-iters N] < current.json
//
// Only upward movement fails (more bytes or nanoseconds is a regression;
// fewer is an improvement and prints as such). A benchmark present only
// in the current run does not gate — a new benchmark should not break CI
// until its baseline is committed. The reverse is an error (exit 2): a
// baseline entry whose benchmark no longer appears in the run means the
// gate silently lost coverage — a renamed or deleted benchmark must be
// renamed or deleted in the baseline too, not skipped.
//
// -min-iters is the timing-gate sanity check: a benchmark measured with
// fewer iterations than the floor (in either document) is skipped rather
// than gated, because single-digit iteration counts of a timing metric
// measure scheduler noise. If the floor skips every shared benchmark the
// run exits 2 — a gate that measured nothing must not read as green.
//
// Exit status: 0 when every compared benchmark is within tolerance,
// 1 on regression, 2 on usage or input errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
)

// Result mirrors the benchjson result schema; fields irrelevant to
// gating are left to json.RawMessage-free omission.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics"`
}

// Doc mirrors the benchjson top-level document.
type Doc struct {
	Results []Result `json:"results"`
}

// metric extracts the gated metric from a result. The three standard
// columns have dedicated names; anything else is looked up in the
// ReportMetric extras.
func (r *Result) metric(name string) (float64, bool) {
	switch name {
	case "ns_per_op":
		return r.NsPerOp, true
	case "bytes_per_op":
		return r.BytesPerOp, true
	case "allocs_per_op":
		return r.AllocsPerOp, true
	}
	v, ok := r.Metrics[name]
	return v, ok
}

// Verdict is the outcome of comparing one benchmark between documents.
// LowIters marks a benchmark whose measured run fell below the -min-iters
// floor: its timing is too noisy to gate, so Regresses is never set and
// the caller reports it as skipped instead of passed.
type Verdict struct {
	Name      string
	Base      float64
	Current   float64
	Regresses bool
	LowIters  bool
}

// Compare gates every benchmark matching pick that appears in both
// documents: metric values may grow by at most tol (fractional, e.g.
// 0.10) over the baseline before the verdict flags a regression. A
// baseline of zero gates absolutely — any nonzero current value beyond
// zero tolerance regresses, since a relative bound on zero is vacuous.
//
// minIters is the sanity floor for timing metrics: a benchmark whose
// current run (or whose baseline) executed fewer iterations is reported
// with LowIters set and never flagged — a handful of iterations of a
// millisecond benchmark measures scheduler luck, not the code. Zero
// disables the floor (right for -benchmem byte counts, which are exact
// at any iteration count).
//
// The second return value names baseline benchmarks that match pick and
// carry the gated metric but are absent from the current run: each one
// is a gate that stopped measuring anything, which the caller must treat
// as an error, not a pass.
func Compare(baseline, current Doc, pick *regexp.Regexp, metricName string, tol float64, minIters int64) ([]Verdict, []string) {
	seen := map[string]bool{}
	for _, r := range current.Results {
		seen[r.Name] = true
	}
	base := map[string]Result{}
	var missing []string
	for _, r := range baseline.Results {
		base[r.Name] = r
		if _, ok := r.metric(metricName); !ok {
			continue
		}
		if pick != nil && !pick.MatchString(r.Name) {
			continue
		}
		if !seen[r.Name] {
			missing = append(missing, r.Name)
		}
	}
	var out []Verdict
	for _, cur := range current.Results {
		if pick != nil && !pick.MatchString(cur.Name) {
			continue
		}
		b, ok := base[cur.Name]
		if !ok {
			continue
		}
		bv, bok := b.metric(metricName)
		cv, cok := cur.metric(metricName)
		if !bok || !cok {
			continue
		}
		if minIters > 0 && (cur.Iterations < minIters || b.Iterations < minIters) {
			out = append(out, Verdict{Name: cur.Name, Base: bv, Current: cv, LowIters: true})
			continue
		}
		limit := bv * (1 + tol)
		out = append(out, Verdict{
			Name: cur.Name, Base: bv, Current: cv,
			Regresses: cv > limit,
		})
	}
	return out, missing
}

func readDoc(r io.Reader) (Doc, error) {
	var d Doc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return Doc{}, err
	}
	return d, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	baselinePath := flag.String("baseline", "", "committed benchjson baseline (required)")
	benchPat := flag.String("bench", "", "regexp of benchmark names to gate (default: all shared)")
	metricName := flag.String("metric", "bytes_per_op", "metric column to gate")
	tol := flag.Float64("tol", 0.10, "allowed fractional growth over baseline")
	minIters := flag.Int64("min-iters", 0, "skip benchmarks measured with fewer iterations (0 = gate all)")
	flag.Parse()

	if *baselinePath == "" {
		log.Println("-baseline is required")
		flag.Usage()
		os.Exit(2)
	}
	var pick *regexp.Regexp
	if *benchPat != "" {
		var err error
		if pick, err = regexp.Compile(*benchPat); err != nil {
			log.Printf("bad -bench pattern: %v", err)
			os.Exit(2)
		}
	}
	bf, err := os.Open(*baselinePath)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	baseline, err := readDoc(bf)
	bf.Close()
	if err != nil {
		log.Printf("parsing %s: %v", *baselinePath, err)
		os.Exit(2)
	}
	current, err := readDoc(os.Stdin)
	if err != nil {
		log.Printf("parsing stdin: %v", err)
		os.Exit(2)
	}

	verdicts, missing := Compare(baseline, current, pick, *metricName, *tol, *minIters)
	if len(missing) > 0 {
		for _, name := range missing {
			log.Printf("baseline benchmark %q did not run — the gate lost it; rename or drop the baseline entry if that is intended", name)
		}
		os.Exit(2)
	}
	if len(verdicts) == 0 {
		log.Printf("no shared benchmarks to gate (metric %s)", *metricName)
		os.Exit(2)
	}
	failed, gated := false, 0
	for _, v := range verdicts {
		status := "ok"
		switch {
		case v.LowIters:
			status = fmt.Sprintf("skipped (under %d iterations — raise -benchtime)", *minIters)
		case v.Regresses:
			status = "REGRESSION"
			failed = true
			gated++
		default:
			gated++
		}
		fmt.Printf("%-40s %s: %.1f -> %.1f (limit %.1f) %s\n",
			v.Name, *metricName, v.Base, v.Current, v.Base*(1+*tol), status)
	}
	if gated == 0 {
		// Every shared benchmark was under-iterated: the gate measured
		// nothing, which is a CI configuration error, not a pass.
		log.Printf("every benchmark ran under %d iterations; nothing gated", *minIters)
		os.Exit(2)
	}
	if failed {
		os.Exit(1)
	}
}
