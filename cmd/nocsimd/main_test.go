package main

import (
	"flag"
	"os"
	"strings"
	"testing"
)

// flagNames collects every flag registered on the default FlagSet —
// the package-level flag.Xxx declarations in main.go.
func flagNames() []string {
	var names []string
	flag.CommandLine.VisitAll(func(f *flag.Flag) {
		if strings.HasPrefix(f.Name, "test.") { // the test binary's own flags
			return
		}
		names = append(names, f.Name)
	})
	return names
}

// docComment returns main.go's package doc comment (everything before
// the `package main` line) — the text `go doc` and the README quote.
func docComment(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatalf("read main.go: %v", err)
	}
	text := string(src)
	idx := strings.Index(text, "\npackage main")
	if idx < 0 {
		t.Fatal("main.go has no package clause")
	}
	return text[:idx]
}

// TestDocCommentListsEveryFlag pins the daemon's usage text to the
// actual flag set: adding a flag without documenting it in the doc
// comment fails here, which is how the usage block stays current.
func TestDocCommentListsEveryFlag(t *testing.T) {
	doc := docComment(t)
	for _, name := range flagNames() {
		if !strings.Contains(doc, "-"+name) {
			t.Errorf("flag -%s is not mentioned in the main.go doc comment", name)
		}
	}
}

// TestREADMEFlagTableListsEveryFlag pins the README's nocsimd flag
// table (the marker-delimited block) to the actual flag set.
func TestREADMEFlagTableListsEveryFlag(t *testing.T) {
	const (
		readme = "../../README.md"
		begin  = "<!-- nocsimd-flags:begin -->"
		end    = "<!-- nocsimd-flags:end -->"
	)
	src, err := os.ReadFile(readme)
	if err != nil {
		t.Fatalf("read %s: %v", readme, err)
	}
	text := string(src)
	lo := strings.Index(text, begin)
	hi := strings.Index(text, end)
	if lo < 0 || hi < 0 || hi < lo {
		t.Fatalf("%s is missing the %s / %s markers", readme, begin, end)
	}
	table := text[lo+len(begin) : hi]
	for _, name := range flagNames() {
		if !strings.Contains(table, "`-"+name+"`") {
			t.Errorf("flag -%s is missing from the README nocsimd flag table", name)
		}
	}
}

// TestServiceDocExists pins the doc comment's pointer: docs/SERVICE.md
// must exist as long as main.go references it.
func TestServiceDocExists(t *testing.T) {
	if !strings.Contains(docComment(t), "docs/SERVICE.md") {
		t.Skip("doc comment no longer references docs/SERVICE.md")
	}
	if _, err := os.Stat("../../docs/SERVICE.md"); err != nil {
		t.Fatalf("main.go references docs/SERVICE.md: %v", err)
	}
}
