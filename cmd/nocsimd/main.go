// Command nocsimd serves stochastic-communication simulations over
// HTTP: a long-running daemon accepting job configs, running them on a
// bounded worker fleet with admission control, streaming per-round
// metric series live, preempting long batch jobs at round barriers
// (checkpointed, resumed bit-identically) when interactive traffic
// waits, and caching results on disk so identical submissions are
// served without re-simulating. The API and its invariants are
// documented in docs/SERVICE.md.
//
// Usage:
//
//	nocsimd [-addr HOST:PORT] [-workers N] [-queue N]
//	        [-cache-dir DIR] [-ckpt-dir DIR] [-ckpt-retain DUR]
//	        [-max-job-rounds N] [-max-tiles N]
//	nocsimd -loadtest [-load-duration DUR] [-load-clients N]
//	        [-load-batch FRAC] [-load-seeds N] [-load-report FILE]
//
// Plain mode listens on -addr until SIGINT/SIGTERM, then drains
// gracefully: new submissions are rejected with 503 while every
// already-accepted job runs to completion.
//
// -workers bounds the simulation fleet (0 = GOMAXPROCS); -queue is the
// admission bound — submissions past it get a structured 429. -cache-dir
// enables the on-disk result cache (off when empty). -ckpt-dir holds
// preemption checkpoints (a temporary directory when empty) and
// -ckpt-retain is the stale-checkpoint GC window. -max-job-rounds and
// -max-tiles cap what a single job may ask for.
//
// -loadtest switches to self-test mode: the daemon starts in-process,
// drives itself with mixed interactive+batch traffic for -load-duration
// using -load-clients concurrent clients (-load-batch is the batch
// fraction, -load-seeds the per-client seed variety exercising the
// cache and singleflight), drains, and audits the service invariants —
// bounded fleet, admission control under saturation, zero accepted jobs
// lost. The report prints to stdout, is also written as JSON to
// -load-report when set, and any violation makes the exit status 1 so
// the mode can gate CI.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

var (
	addr         = flag.String("addr", "localhost:8070", "HTTP listen address")
	workers      = flag.Int("workers", 0, "simulation worker fleet bound (0 = GOMAXPROCS)")
	queue        = flag.Int("queue", 64, "admission bound: max jobs waiting for a worker")
	cacheDir     = flag.String("cache-dir", "", "on-disk result cache directory (empty = caching off)")
	ckptDir      = flag.String("ckpt-dir", "", "preemption checkpoint directory (empty = a temp dir)")
	ckptRetain   = flag.Duration("ckpt-retain", time.Hour, "GC window for checkpoints orphaned by a crash")
	maxJobRounds = flag.Int("max-job-rounds", 100000, "cap on a single job's round budget")
	maxTiles     = flag.Int("max-tiles", 1<<16, "cap on a single job's fabric size in tiles")
	loadtest     = flag.Bool("loadtest", false, "run the self-load-test instead of serving (exit 1 on invariant violations)")
	loadDuration = flag.Duration("load-duration", 2*time.Second, "with -loadtest: traffic phase length")
	loadClients  = flag.Int("load-clients", 4, "with -loadtest: concurrent submitting clients")
	loadBatch    = flag.Float64("load-batch", 0.25, "with -loadtest: fraction of batch-priority submissions")
	loadSeeds    = flag.Int("load-seeds", 16, "with -loadtest: distinct seeds per client (repeats exercise the cache)")
	loadReport   = flag.String("load-report", "", "with -loadtest: also write the report as JSON to this file")
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocsimd: ")
	flag.Parse()

	srv, err := service.New(service.Options{
		Workers:          *workers,
		QueueCap:         *queue,
		CacheDir:         *cacheDir,
		CheckpointDir:    *ckptDir,
		CheckpointRetain: *ckptRetain,
		MaxJobRounds:     *maxJobRounds,
		MaxTiles:         *maxTiles,
	})
	if err != nil {
		log.Fatal(err)
	}

	if *loadtest {
		os.Exit(runLoadtest(srv))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	log.Printf("serving on http://%s (workers=%d, queue=%d, cache=%s)",
		ln.Addr(), srv.Stats().Workers, *queue, cacheOrOff(*cacheDir))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("draining: rejecting new jobs, finishing accepted ones")
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("drain: %v", err)
	}
	httpSrv.Shutdown(context.Background())
	srv.Close()
	log.Print("drained; bye")
}

// cacheOrOff renders the cache flag for the startup banner.
func cacheOrOff(dir string) string {
	if dir == "" {
		return "off"
	}
	return dir
}

// runLoadtest is the -loadtest mode: serve in-process on a loopback
// port, hammer it, audit, report. Returns the process exit code.
func runLoadtest(srv *service.Server) int {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Print(err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer func() {
		httpSrv.Shutdown(context.Background())
		srv.Close()
	}()

	rep, err := service.RunLoad(srv, "http://"+ln.Addr().String(), service.LoadConfig{
		Duration:      *loadDuration,
		Clients:       *loadClients,
		BatchFraction: *loadBatch,
		SeedSpread:    *loadSeeds,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	fmt.Print(rep)
	if *loadReport != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err == nil {
			err = os.WriteFile(*loadReport, append(raw, '\n'), 0o644)
		}
		if err != nil {
			log.Printf("report: %v", err)
			return 1
		}
		log.Printf("report written to %s", *loadReport)
	}
	if v := rep.Violations(); len(v) > 0 {
		log.Printf("FAIL: %d invariant violations", len(v))
		return 1
	}
	return 0
}
