// Package stochnoc is an open-source reproduction of "On-Chip Stochastic
// Communication" (Dumitraş & Mărculescu, DATE 2003 / CMU MS thesis 2003):
// a fault-tolerant communication paradigm for networks-on-chip in which
// tiles disseminate packets with a randomized gossip protocol instead of
// routing them.
//
// The package is a facade over the implementation packages:
//
//   - a deterministic round-based NoC simulator running the thesis'
//     gossip algorithm (Fig. 3-4) with the full Chapter 2 failure model
//     (tile/link crashes, CRC-detected data upsets, buffer overflows,
//     mixed-clock synchronization errors);
//   - a goroutine-per-tile asynchronous engine (GALS-style);
//   - the evaluation workloads: Producer–Consumer, Master–Slave π,
//     parallel 2-D FFT, a six-stage perceptual (MP3-like) audio encoder
//     pipeline, and acoustic beamforming;
//   - a shared-bus baseline and the Chapter 5 on-chip-diversity
//     architectures;
//   - per-figure experiment harnesses (see cmd/figures and
//     EXPERIMENTS.md).
//
// # Quick start
//
//	grid := stochnoc.NewGrid(4, 4)
//	net, err := stochnoc.New(stochnoc.Config{
//	        Topo: grid, P: 0.5, TTL: stochnoc.DefaultTTL, Seed: 1,
//	})
//	if err != nil { ... }
//	net.Attach(5, myProducer)   // any stochnoc.Process
//	net.Attach(11, myConsumer)
//	result := net.Run()
//
// See examples/ for complete programs.
package stochnoc

import (
	"repro/internal/async"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Core protocol types (package internal/core).
type (
	// Config parameterizes a stochastic-communication network.
	Config = core.Config
	// Network is a simulated stochastically-communicating NoC.
	Network = core.Network
	// Process is an IP core mapped onto a tile.
	Process = core.Process
	// Ctx is the per-round view a Process has of its tile.
	Ctx = core.Ctx
	// Completer marks Processes that detect application completion.
	Completer = core.Completer
	// Receiver marks Processes that take deliveries at arrival instant.
	Receiver = core.Receiver
	// Result summarizes a run.
	Result = core.Result
	// Counters aggregates a run's observable events.
	Counters = core.Counters
)

// Packet-level types (package internal/packet).
type (
	// Packet is one message traveling the NoC.
	Packet = packet.Packet
	// TileID identifies a tile.
	TileID = packet.TileID
	// MsgID is a network-unique message identity.
	MsgID = packet.MsgID
	// Kind tags a packet with an application message class.
	Kind = packet.Kind
)

// Fault model (package internal/fault).
type (
	// FaultModel is the Chapter 2 failure model.
	FaultModel = fault.Model
)

// Topology types (package internal/topology).
type (
	// Topology describes an interconnect fabric.
	Topology = topology.Topology
	// Grid is the rectangular tile mesh of Fig. 1-1.
	Grid = topology.Grid
	// Graph is a general adjacency-list fabric.
	Graph = topology.Graph
)

// Energy types (package internal/energy).
type (
	// Technology holds electrical parameters of an interconnect.
	Technology = energy.Technology
	// Accounting accumulates a run's traffic for Eq. 3.
	Accounting = energy.Accounting
)

// Asynchronous (goroutine-per-tile) engine types.
type (
	// AsyncConfig parameterizes the GALS engine.
	AsyncConfig = async.Config
	// AsyncNetwork is a goroutine-per-tile NoC.
	AsyncNetwork = async.Network
	// AsyncProcess is an IP core on an asynchronous tile.
	AsyncProcess = async.Process
	// AsyncCtx is the asynchronous tile-local context.
	AsyncCtx = async.Ctx
	// AsyncStats summarizes an asynchronous run.
	AsyncStats = async.Stats
)

// Monte Carlo runner types (package internal/sim). The runner executes
// independent replicas over a bounded worker pool; replica seeds derive
// from the master seed by index, so results are identical for every
// worker count.
type (
	// SimConfig sizes a Monte Carlo batch (Replicas, Workers, Seed).
	SimConfig = sim.Config
	// SimCounts tallies the observable per-replica events.
	SimCounts = sim.Counts
	// SimCollector is a reusable OnEvent hook feeding SimCounts.
	SimCollector = sim.Collector
	// ReplicaMetrics is one replica's standard measurement record.
	ReplicaMetrics = sim.Metrics
	// SimAggregate summarizes ReplicaMetrics across a batch.
	SimAggregate = sim.Aggregate
)

// MonteCarlo runs body once per replica across the configured worker
// pool and returns the results in replica order. The replica index — not
// the scheduling order — selects both the derived seed and the result
// slot, so output is bit-identical for any Workers setting.
func MonteCarlo[T any](cfg SimConfig, body func(replica int, seed uint64) (T, error)) ([]T, error) {
	return sim.Run(cfg, body)
}

// MonteCarloMetrics is MonteCarlo specialized to the standard metrics
// record, aggregated into mean/stddev/CI summaries.
func MonteCarloMetrics(cfg SimConfig, body func(replica int, seed uint64) (ReplicaMetrics, error)) (SimAggregate, error) {
	return sim.RunMetrics(cfg, body)
}

// SimSeeds returns the n per-replica seeds the runner derives from a
// master seed (prefix-stable: growing n never changes earlier seeds).
func SimSeeds(master uint64, n int) []uint64 { return sim.Seeds(master, n) }

// Broadcast addresses a message to every tile.
const Broadcast = packet.Broadcast

// DefaultTTL is a reasonable message lifetime for 4x4/5x5 grids.
const DefaultTTL = core.DefaultTTL

// Published 0.25 µm technology parameters (§4.1.4).
var (
	// NoCLink025 is a tile-to-tile link: 381 MHz, 2.4e-10 J/bit.
	NoCLink025 = energy.NoCLink025
	// Bus025 is the chip-length shared bus: 43 MHz, 21.6e-10 J/bit.
	Bus025 = energy.Bus025
)

// New builds a synchronous stochastic-communication network.
func New(cfg Config) (*Network, error) { return core.New(cfg) }

// NewAsync builds a goroutine-per-tile network.
func NewAsync(cfg AsyncConfig) (*AsyncNetwork, error) { return async.New(cfg) }

// NewGrid returns a width×height tile mesh.
func NewGrid(width, height int) *Grid { return topology.NewGrid(width, height) }

// NewTorus returns a mesh with wraparound links.
func NewTorus(width, height int) *Grid { return topology.NewTorus(width, height) }

// NewFullyConnected returns the complete graph on n tiles (§3.1).
func NewFullyConnected(n int) *Graph { return topology.NewFullyConnected(n) }

// NewRing returns a cycle on n tiles.
func NewRing(n int) *Graph { return topology.NewRing(n) }
