package stochnoc

import (
	"repro/internal/apps/beamform"
	"repro/internal/apps/fft2d"
	"repro/internal/apps/mp3"
	"repro/internal/apps/pisum"
	"repro/internal/apps/prodcons"
	"repro/internal/apps/psat"
	"repro/internal/apps/sensors"
	"repro/internal/audio/encoder"
	"repro/internal/audio/signal"
	"repro/internal/directed"
	"repro/internal/diversity"
	"repro/internal/reliable"
	"repro/internal/rng"
	"repro/internal/sat"
	"repro/internal/xyrouting"
)

// Case-study applications (thesis Chapter 4) and the Chapter 5
// architecture comparison, re-exported so example programs and downstream
// users can run the evaluation workloads through the public API.

// Producer–Consumer (§3.2.1).
type (
	// Producer streams sequence-numbered messages to a destination tile.
	Producer = prodcons.Producer
	// Consumer counts distinct received messages.
	Consumer = prodcons.Consumer
)

// NewConsumer returns a Consumer expecting `expect` messages.
func NewConsumer(expect int) *Consumer { return prodcons.NewConsumer(expect) }

// Master–Slave π computation (§4.1.1).
type (
	// PiApp is a wired Master–Slave instance.
	PiApp = pisum.App
)

// SetupPi attaches a π master at masterTile plus the given slave replica
// sets; intervals is the quadrature resolution.
func SetupPi(net *Network, masterTile TileID, slaveTiles [][]TileID, intervals int) (*PiApp, error) {
	return pisum.Setup(net, masterTile, slaveTiles, intervals)
}

// ReferencePi computes the same quadrature serially.
func ReferencePi(intervals int) float64 { return pisum.ReferencePi(intervals) }

// Parallel 2-D FFT (§4.1.2).
type (
	// FFT2App is a wired distributed-FFT2 instance.
	FFT2App = fft2d.App
)

// SetupFFT2 attaches an FFT2 root and its worker replicas; input must be
// a power-of-two matrix.
func SetupFFT2(net *Network, rootTile TileID, workers [][]TileID, input [][]complex128) (*FFT2App, error) {
	return fft2d.Setup(net, rootTile, workers, input)
}

// MP3 encoder pipeline (§4.2).
type (
	// MP3Tiles assigns the six pipeline stages to tiles.
	MP3Tiles = mp3.Tiles
	// MP3Pipeline is a wired six-stage encoder.
	MP3Pipeline = mp3.Pipeline
	// MP3Output is the output stage's measurements.
	MP3Output = mp3.Output
	// EncoderConfig parameterizes the perceptual audio encoder.
	EncoderConfig = encoder.Config
	// AudioSynth generates deterministic PCM program material.
	AudioSynth = signal.Synth
	// AudioTone is one sinusoidal component of an AudioSynth.
	AudioTone = signal.Tone
)

// DefaultMP3Tiles is the standard 4×4 stage placement of the experiments.
func DefaultMP3Tiles() MP3Tiles { return mp3.DefaultTiles() }

// SetupMP3 attaches the six-stage encoder pipeline to net.
func SetupMP3(net *Network, tiles MP3Tiles, cfg EncoderConfig, src *AudioSynth, frames int) (*MP3Pipeline, error) {
	return mp3.Setup(net, tiles, cfg, src, frames)
}

// DefaultProgram is the standard synthetic audio used by the experiments.
func DefaultProgram() *AudioSynth { return signal.DefaultProgram() }

// Acoustic beamforming (Chapter 5 workload).
type (
	// BeamformApp is a wired sensor-array instance.
	BeamformApp = beamform.App
)

// SetupBeamforming attaches a delay-and-sum array: sensor i (delayed by
// delays[i] samples, with selfNoise front-end noise) streams `blocks`
// blocks of blockLen samples to aggTile, pacing one block per `pace`
// rounds.
func SetupBeamforming(net *Network, aggTile TileID, sensorTiles []TileID,
	delays []int, src *AudioSynth, selfNoise float64, blockLen, blocks, pace int) (*BeamformApp, error) {
	return beamform.Setup(net, aggTile, sensorTiles, delays, src, selfNoise, blockLen, blocks, pace)
}

// Parallel SAT solving (named in Ch. 4's applications).
type (
	// SATFormula is a CNF formula.
	SATFormula = sat.Formula
	// SATClause is a disjunction of literals.
	SATClause = sat.Clause
	// SATLit is a literal (±variable).
	SATLit = sat.Lit
	// SATResult is a solver verdict.
	SATResult = sat.Result
	// SATApp is a wired distributed solve.
	SATApp = psat.App
)

// SolveSAT runs the serial DPLL solver.
func SolveSAT(f *SATFormula, assumptions []SATLit) (*SATResult, error) {
	return sat.Solve(f, assumptions)
}

// Random3SAT generates a uniform random 3-SAT instance from a seed.
func Random3SAT(vars, clauses int, seed uint64) *SATFormula {
	return sat.Random3SAT(vars, clauses, rng.New(seed))
}

// SetupSAT attaches a cube-and-conquer master (splitting on the first
// splitVars variables) and its workers to net.
func SetupSAT(net *Network, masterTile TileID, workerTiles []TileID, f *SATFormula, splitVars int) (*SATApp, error) {
	return psat.Setup(net, masterTile, workerTiles, f, splitVars)
}

// On-chip diversity (Chapter 5).
type (
	// DiversityKind names one of the Fig. 5-2 architectures.
	DiversityKind = diversity.Kind
	// DiversityResult is one architecture's measured outcome.
	DiversityResult = diversity.Result
	// DiversityConfig parameterizes the comparison.
	DiversityConfig = diversity.CompareConfig
)

// The three compared architectures.
const (
	FlatNoC          = diversity.FlatNoC
	HierarchicalNoC  = diversity.HierarchicalNoC
	BusConnectedNoCs = diversity.BusConnectedNoCs
)

// CompareDiversity runs the beamforming workload on all three
// architectures (Fig. 5-3).
func CompareDiversity(cfg DiversityConfig) ([]*DiversityResult, error) {
	return diversity.Compare(cfg)
}

// Periodic sensor data acquisition (named in Ch. 4's applications).
type (
	// SensorField is the synthetic physical quantity sensors sample.
	SensorField = sensors.Field
	// Sensor periodically broadcasts readings of a SensorField.
	Sensor = sensors.Sensor
	// SensorMonitor keeps the freshest reading per sensor.
	SensorMonitor = sensors.Monitor
)

// NewSensorMonitor returns a monitor for the given sensor count.
func NewSensorMonitor(count int) (*SensorMonitor, error) { return sensors.NewMonitor(count) }

// Reliable transport (§4.2.3's "higher level protocol").
type (
	// ReliableEndpoint adds ACK + retransmission on top of gossip,
	// upgrading w.h.p. delivery to exactly-once delivery.
	ReliableEndpoint = reliable.Endpoint
	// ReliableDelivery is an application payload surfaced by the layer.
	ReliableDelivery = reliable.Delivery
)

// NewReliableEndpoint returns an endpoint with default retry timing.
func NewReliableEndpoint() *ReliableEndpoint { return reliable.NewEndpoint() }

// GridBias returns a Config.PortWeight skewing forwarding toward each
// packet's destination (destination-biased gossip; bias in [0, 1]).
func GridBias(g *Grid, bias float64) (func(from, to TileID, p *Packet) float64, error) {
	return directed.GridBias(g, bias)
}

// InstallXYRouting turns every tile of a grid network into a
// deterministic dimension-ordered router — the brittle static-routing
// baseline the paper's introduction argues against.
func InstallXYRouting(net *Network) error { return xyrouting.Install(net) }
