package stochnoc_test

import (
	"testing"

	stochnoc "repro"
)

// facadeProducer exercises the public API exactly as the README shows.
type facadeProducer struct {
	dst  stochnoc.TileID
	sent bool
}

func (p *facadeProducer) Init(*stochnoc.Ctx) {}
func (p *facadeProducer) Round(ctx *stochnoc.Ctx) {
	if !p.sent {
		ctx.Send(p.dst, 1, []byte("facade"))
		p.sent = true
	}
}

type facadeConsumer struct{ got bool }

func (c *facadeConsumer) Init(*stochnoc.Ctx)  {}
func (c *facadeConsumer) Round(*stochnoc.Ctx) {}
func (c *facadeConsumer) Done() bool          { return c.got }
func (c *facadeConsumer) Receive(ctx *stochnoc.Ctx, p *stochnoc.Packet) {
	c.got = true
}

func TestFacadeQuickstart(t *testing.T) {
	grid := stochnoc.NewGrid(4, 4)
	net, err := stochnoc.New(stochnoc.Config{
		Topo: grid, P: 0.5, TTL: stochnoc.DefaultTTL, MaxRounds: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cons := &facadeConsumer{}
	net.Attach(5, &facadeProducer{dst: 11})
	net.Attach(11, cons)
	res := net.Run()
	if !res.Completed || !cons.got {
		t.Fatalf("facade quickstart failed: %+v", res)
	}
}

func TestFacadeFaultModel(t *testing.T) {
	net, err := stochnoc.New(stochnoc.Config{
		Topo: stochnoc.NewGrid(3, 3), P: 1, TTL: 8, MaxRounds: 50, Seed: 2,
		Fault: stochnoc.FaultModel{PUpset: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Inject(0, stochnoc.Broadcast, 0, []byte("x"))
	for i := 0; i < 10; i++ {
		net.Step()
	}
	if net.Counters().UpsetsDetected == 0 {
		t.Fatal("fault model not reachable through facade")
	}
}

func TestFacadeTopologies(t *testing.T) {
	if stochnoc.NewTorus(4, 4).Tiles() != 16 {
		t.Fatal("torus")
	}
	if stochnoc.NewFullyConnected(10).Tiles() != 10 {
		t.Fatal("complete graph")
	}
	if stochnoc.NewRing(5).Tiles() != 5 {
		t.Fatal("ring")
	}
}

func TestFacadeTechnologyConstants(t *testing.T) {
	if stochnoc.NoCLink025.LinkHz != 381e6 || stochnoc.Bus025.LinkHz != 43e6 {
		t.Fatal("§4.1.4 constants wrong")
	}
}

type facadeAsyncSink struct{}

func (facadeAsyncSink) Round(ctx *stochnoc.AsyncCtx) {
	if len(ctx.Delivered()) > 0 {
		ctx.Finish()
	}
}

type facadeAsyncSource struct{ sent bool }

func (s *facadeAsyncSource) Round(ctx *stochnoc.AsyncCtx) {
	if !s.sent {
		ctx.Send(3, 1, nil)
		s.sent = true
	}
}

func TestFacadeAsync(t *testing.T) {
	net, err := stochnoc.NewAsync(stochnoc.AsyncConfig{
		Topo: stochnoc.NewGrid(2, 2), P: 1, TTL: 8, Seed: 3, MaxLocalRounds: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Attach(0, &facadeAsyncSource{})
	net.Attach(3, facadeAsyncSink{})
	if st := net.Run(); !st.Completed {
		t.Fatalf("async facade run failed: %+v", st)
	}
}

func TestFacadeDirectedAndXY(t *testing.T) {
	grid := stochnoc.NewGrid(4, 4)
	w, err := stochnoc.GridBias(grid, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	net, err := stochnoc.New(stochnoc.Config{
		Topo: grid, P: 0.5, TTL: 16, MaxRounds: 100, Seed: 4, PortWeight: w,
	})
	if err != nil {
		t.Fatal(err)
	}
	cons := stochnoc.NewConsumer(1)
	net.Attach(0, &stochnoc.Producer{Dst: 15, Count: 1})
	net.Attach(15, cons)
	if !net.Run().Completed {
		t.Fatal("directed gossip via facade failed")
	}

	xyNet, err := stochnoc.New(stochnoc.Config{
		Topo: grid, P: 0, TTL: 16, MaxRounds: 60, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := stochnoc.InstallXYRouting(xyNet); err != nil {
		t.Fatal(err)
	}
	cons2 := stochnoc.NewConsumer(1)
	xyNet.Attach(0, &stochnoc.Producer{Dst: 15, Count: 1})
	xyNet.Attach(15, cons2)
	if !xyNet.Run().Completed {
		t.Fatal("XY routing via facade failed")
	}
}

func TestFacadeSensors(t *testing.T) {
	mon, err := stochnoc.NewSensorMonitor(3)
	if err != nil {
		t.Fatal(err)
	}
	if mon.Coverage() != 0 {
		t.Fatal("fresh monitor has coverage")
	}
	if stochnoc.NewReliableEndpoint().Outstanding() != 0 {
		t.Fatal("fresh reliable endpoint has pending messages")
	}
}
