// Package bus models the traditional shared-bus interconnect the thesis
// compares against in §4.1.4: all IP modules hang off one chip-length bus
// with an arbiter enforcing mutual exclusion.
//
// The published 0.25 µm parameters are used: the bus runs at 43 MHz and
// dissipates 21.6e-10 J per transmitted bit (the NoC link, by contrast,
// runs at 381 MHz at 2.4e-10 J/bit because it is short). Arbitration
// overhead is ignored, as in the thesis ("usually ... negligible when
// compared to the time and the power needed by the data transmissions").
//
// Because the bus is a broadcast medium, each logical message is
// transmitted exactly once — the bus' energy advantage — but every
// transfer serializes behind every other — its latency disadvantage,
// which grows with module count (the contention wall motivating NoCs).
package bus

import (
	"errors"
	"sort"

	"repro/internal/energy"
)

// Message is one bus transfer request.
type Message struct {
	// Src is the requesting module (used for round-robin fairness).
	Src int
	// Bits is the transfer size, including framing.
	Bits int
	// Ready is the time (seconds) at which the message enters Src's
	// output queue.
	Ready float64
}

// Result summarizes one bus simulation.
type Result struct {
	// Makespan is the time the last transfer completes.
	Makespan float64
	// AvgLatency and MaxLatency are per-message queueing + transfer
	// latencies.
	AvgLatency, MaxLatency float64
	// EnergyJ is total transmission energy.
	EnergyJ float64
	// Bits is the total bits moved.
	Bits int
	// Utilization is the busy fraction of the bus over the makespan.
	Utilization float64
}

// ErrNoMessages is returned by Simulate for an empty workload.
var ErrNoMessages = errors.New("bus: empty workload")

// Simulate runs the workload over a single shared bus of technology tech
// with round-robin arbitration and returns the timing/energy summary.
func Simulate(msgs []Message, tech energy.Technology) (Result, error) {
	if len(msgs) == 0 {
		return Result{}, ErrNoMessages
	}
	if tech.LinkHz <= 0 {
		return Result{}, errors.New("bus: technology frequency must be positive")
	}

	// Per-module FIFO queues, stably sorted by ready time.
	maxMod := 0
	for _, m := range msgs {
		if m.Src < 0 {
			return Result{}, errors.New("bus: negative module index")
		}
		if m.Src > maxMod {
			maxMod = m.Src
		}
	}
	queues := make([][]Message, maxMod+1)
	for _, m := range msgs {
		queues[m.Src] = append(queues[m.Src], m)
	}
	for i := range queues {
		q := queues[i]
		sort.SliceStable(q, func(a, b int) bool { return q[a].Ready < q[b].Ready })
	}

	var (
		now       float64
		busy      float64
		latSum    float64
		latMax    float64
		bits      int
		remaining = len(msgs)
		rr        int // round-robin pointer
	)
	for remaining > 0 {
		// Find the next module, in round-robin order from rr, with a
		// message ready at `now`. If none, advance time to the earliest
		// ready instant.
		granted := -1
		for off := 0; off < len(queues); off++ {
			mod := (rr + off) % len(queues)
			if len(queues[mod]) > 0 && queues[mod][0].Ready <= now {
				granted = mod
				break
			}
		}
		if granted < 0 {
			earliest := -1.0
			for _, q := range queues {
				if len(q) > 0 && (earliest < 0 || q[0].Ready < earliest) {
					earliest = q[0].Ready
				}
			}
			now = earliest
			continue
		}
		m := queues[granted][0]
		queues[granted] = queues[granted][1:]
		rr = (granted + 1) % len(queues)

		dur := float64(m.Bits) / tech.LinkHz
		done := now + dur
		lat := done - m.Ready
		latSum += lat
		if lat > latMax {
			latMax = lat
		}
		busy += dur
		bits += m.Bits
		now = done
		remaining--
	}

	res := Result{
		Makespan:   now,
		AvgLatency: latSum / float64(len(msgs)),
		MaxLatency: latMax,
		EnergyJ:    float64(bits) * tech.JoulePerBit,
		Bits:       bits,
	}
	if now > 0 {
		res.Utilization = busy / now
	}
	return res, nil
}

// UniformWorkload builds the synthetic workload used by the Fig. 4-6
// comparison: count messages of bits size each, issued by modules 0..mods-1
// round-robin, all ready at t = 0 (the worst-case burst a parallel
// application presents to a shared medium).
func UniformWorkload(count, mods, bits int) []Message {
	msgs := make([]Message, count)
	for i := range msgs {
		msgs[i] = Message{Src: i % mods, Bits: bits}
	}
	return msgs
}
