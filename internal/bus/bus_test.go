package bus

import (
	"errors"
	"math"
	"testing"

	"repro/internal/energy"
)

func TestSingleTransfer(t *testing.T) {
	msgs := []Message{{Src: 0, Bits: 430}}
	res, err := Simulate(msgs, energy.Bus025)
	if err != nil {
		t.Fatal(err)
	}
	want := 430.0 / 43e6 // 10 µs
	if math.Abs(res.Makespan-want) > 1e-12 {
		t.Fatalf("Makespan = %v, want %v", res.Makespan, want)
	}
	if math.Abs(res.AvgLatency-want) > 1e-12 {
		t.Fatalf("AvgLatency = %v", res.AvgLatency)
	}
	if math.Abs(res.EnergyJ-430*21.6e-10) > 1e-15 {
		t.Fatalf("EnergyJ = %v", res.EnergyJ)
	}
	if math.Abs(res.Utilization-1) > 1e-9 {
		t.Fatalf("Utilization = %v", res.Utilization)
	}
}

func TestSerialization(t *testing.T) {
	// Two simultaneous requests serialize: the second waits for the first.
	msgs := []Message{{Src: 0, Bits: 43}, {Src: 1, Bits: 43}}
	res, err := Simulate(msgs, energy.Bus025)
	if err != nil {
		t.Fatal(err)
	}
	per := 43.0 / 43e6
	if math.Abs(res.Makespan-2*per) > 1e-12 {
		t.Fatalf("Makespan = %v, want %v", res.Makespan, 2*per)
	}
	if math.Abs(res.MaxLatency-2*per) > 1e-12 {
		t.Fatalf("MaxLatency = %v, want %v (head-of-line blocking)", res.MaxLatency, 2*per)
	}
}

func TestLatencyGrowsWithContention(t *testing.T) {
	// The §1 motivation: performance decreases drastically as module
	// count grows, because of contention for the shared medium.
	small, err := Simulate(UniformWorkload(4, 4, 256), energy.Bus025)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Simulate(UniformWorkload(64, 64, 256), energy.Bus025)
	if err != nil {
		t.Fatal(err)
	}
	if large.AvgLatency <= small.AvgLatency*4 {
		t.Fatalf("contention wall absent: %v vs %v", large.AvgLatency, small.AvgLatency)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	// Three modules each with one message at t=0: all three get service
	// within 3 slots; max latency is exactly 3 transfer times.
	msgs := []Message{{Src: 0, Bits: 100}, {Src: 1, Bits: 100}, {Src: 2, Bits: 100}}
	res, err := Simulate(msgs, energy.Bus025)
	if err != nil {
		t.Fatal(err)
	}
	per := 100.0 / 43e6
	if math.Abs(res.MaxLatency-3*per) > 1e-12 {
		t.Fatalf("MaxLatency = %v, want %v", res.MaxLatency, 3*per)
	}
}

func TestIdleGapAdvancesTime(t *testing.T) {
	msgs := []Message{
		{Src: 0, Bits: 43, Ready: 0},
		{Src: 0, Bits: 43, Ready: 1.0}, // 1s later: bus idles in between
	}
	res, err := Simulate(msgs, energy.Bus025)
	if err != nil {
		t.Fatal(err)
	}
	per := 43.0 / 43e6
	if math.Abs(res.Makespan-(1.0+per)) > 1e-9 {
		t.Fatalf("Makespan = %v", res.Makespan)
	}
	if res.Utilization > 0.01 {
		t.Fatalf("Utilization = %v, want tiny", res.Utilization)
	}
	// No queueing: both messages see pure transfer latency.
	if math.Abs(res.MaxLatency-per) > 1e-12 {
		t.Fatalf("MaxLatency = %v, want %v", res.MaxLatency, per)
	}
}

func TestEmptyWorkload(t *testing.T) {
	if _, err := Simulate(nil, energy.Bus025); !errors.Is(err, ErrNoMessages) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadTechnology(t *testing.T) {
	if _, err := Simulate([]Message{{Bits: 1}}, energy.Technology{}); err == nil {
		t.Fatal("zero-frequency technology accepted")
	}
}

func TestNegativeModuleRejected(t *testing.T) {
	if _, err := Simulate([]Message{{Src: -1, Bits: 1}}, energy.Bus025); err == nil {
		t.Fatal("negative module accepted")
	}
}

func TestUniformWorkloadShape(t *testing.T) {
	msgs := UniformWorkload(10, 3, 128)
	if len(msgs) != 10 {
		t.Fatalf("len = %d", len(msgs))
	}
	for i, m := range msgs {
		if m.Src != i%3 || m.Bits != 128 || m.Ready != 0 {
			t.Fatalf("msg %d = %+v", i, m)
		}
	}
}

func TestEnergyIndependentOfContention(t *testing.T) {
	// Energy is per-bit: the same bits cost the same regardless of
	// scheduling.
	a, _ := Simulate(UniformWorkload(10, 1, 64), energy.Bus025)
	b, _ := Simulate(UniformWorkload(10, 10, 64), energy.Bus025)
	if a.EnergyJ != b.EnergyJ {
		t.Fatalf("energy differs with contention: %v vs %v", a.EnergyJ, b.EnergyJ)
	}
}
