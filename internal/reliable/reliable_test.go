package reliable

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/topology"
)

// relSender pushes `count` payloads reliably to dst.
type relSender struct {
	ep    *Endpoint
	dst   packet.TileID
	count int
	sent  int
}

func newRelSender(dst packet.TileID, count int) *relSender {
	return &relSender{ep: NewEndpoint(), dst: dst, count: count}
}

func (s *relSender) Init(*core.Ctx) {}
func (s *relSender) Round(ctx *core.Ctx) {
	if s.sent < s.count {
		s.ep.Send(ctx, s.dst, 7, []byte{byte(s.sent)})
		s.sent++
	}
	s.ep.Tick(ctx)
}
func (s *relSender) Receive(ctx *core.Ctx, p *packet.Packet) {
	_, _ = s.ep.HandlePacket(ctx, p)
}
func (s *relSender) Done() bool {
	return s.sent == s.count && s.ep.Outstanding() == 0
}

// relReceiver records exactly-once deliveries.
type relReceiver struct {
	ep       *Endpoint
	got      map[uint64][]byte
	multiple bool
}

func newRelReceiver() *relReceiver {
	return &relReceiver{ep: NewEndpoint(), got: map[uint64][]byte{}}
}

func (r *relReceiver) Init(*core.Ctx)      {}
func (r *relReceiver) Round(ctx *core.Ctx) { r.ep.Tick(ctx) }
func (r *relReceiver) Receive(ctx *core.Ctx, p *packet.Packet) {
	d, err := r.ep.HandlePacket(ctx, p)
	if err != nil || d == nil {
		return
	}
	if _, dup := r.got[d.Seq]; dup {
		r.multiple = true
	}
	r.got[d.Seq] = d.Payload
}

func runScenario(t *testing.T, cfg core.Config, count int) (*relSender, *relReceiver, core.Result) {
	t.Helper()
	net, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snd := newRelSender(15, count)
	rcv := newRelReceiver()
	net.Attach(0, snd)
	net.Attach(15, rcv)
	res := net.Run()
	return snd, rcv, res
}

func TestReliableCleanNetwork(t *testing.T) {
	g := topology.NewGrid(4, 4)
	snd, rcv, res := runScenario(t, core.Config{
		Topo: g, P: 0.6, TTL: 12, MaxRounds: 300, Seed: 1,
	}, 5)
	if !res.Completed {
		t.Fatalf("not all messages acked: %d outstanding", snd.ep.Outstanding())
	}
	if len(rcv.got) != 5 {
		t.Fatalf("receiver has %d/5 messages", len(rcv.got))
	}
	for seq := uint64(0); seq < 5; seq++ {
		if !bytes.Equal(rcv.got[seq], []byte{byte(seq)}) {
			t.Fatalf("payload for seq %d corrupted: %v", seq, rcv.got[seq])
		}
	}
	if rcv.multiple {
		t.Fatal("application saw a duplicate delivery")
	}
}

func TestReliableSurvivesLethalOverflow(t *testing.T) {
	// Near Fig. 4-10's point A, plain one-shot gossip messages regularly
	// die outright (all copies lost before reaching the destination).
	// The reliable layer re-injects with fresh TTLs until every message
	// lands — the §4.2.3 guarantee. First find a seed where the plain
	// protocol demonstrably loses at least one of 10 messages, then show
	// the reliable layer delivers all of them under the same seed.
	const drop = 0.7
	g := topology.NewGrid(4, 4)
	lossySeed := uint64(0)
	found := false
	for seed := uint64(0); seed < 20 && !found; seed++ {
		net, err := core.New(core.Config{
			Topo: g, P: 0.75, TTL: 16, MaxRounds: 300, Seed: seed,
			Fault: fault.Model{POverflow: drop},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			net.Inject(0, 15, 1, []byte{byte(i)})
		}
		net.Drain(300)
		if net.Counters().Deliveries < 10 {
			lossySeed, found = seed, true
		}
	}
	if !found {
		t.Fatalf("no seed lost a plain message at %.0f%% drops — scenario too gentle", 100*drop)
	}

	snd, rcv, res := runScenario(t, core.Config{
		Topo: g, P: 0.75, TTL: 16, MaxRounds: 6000, Seed: lossySeed,
		Fault: fault.Model{POverflow: drop},
	}, 10)
	if !res.Completed {
		t.Fatalf("reliable layer failed at %.0f%% drops: %d outstanding after %d rounds",
			100*drop, snd.ep.Outstanding(), res.Rounds)
	}
	if len(rcv.got) != 10 || rcv.multiple {
		t.Fatalf("delivery set broken: %d msgs, dup=%v", len(rcv.got), rcv.multiple)
	}
	retrans, _, _ := snd.ep.Stats()
	if retrans == 0 {
		t.Fatalf("%.0f%% drops required no retransmissions — overflow model inert?", 100*drop)
	}
}

func TestReliableSurvivesHeavyUpsets(t *testing.T) {
	g := topology.NewGrid(4, 4)
	_, rcv, res := runScenario(t, core.Config{
		Topo: g, P: 0.75, TTL: 16, MaxRounds: 4000, Seed: 5,
		Fault: fault.Model{PUpset: 0.8},
	}, 3)
	if !res.Completed || len(rcv.got) != 3 {
		t.Fatalf("reliable layer failed at 80%% upsets: got %d/3", len(rcv.got))
	}
}

func TestDuplicateSuppressionCountsOverhead(t *testing.T) {
	// Gossip naturally delivers each data message once (engine-level
	// dedup), but retransmissions create NEW messages with the same seq;
	// the layer must suppress those too.
	g := topology.NewGrid(4, 4)
	snd, rcv, res := runScenario(t, core.Config{
		Topo: g, P: 0.6, TTL: 12, MaxRounds: 2000, Seed: 7,
		Fault: fault.Model{POverflow: 0.4},
	}, 4)
	if !res.Completed {
		t.Fatal("incomplete")
	}
	if rcv.multiple {
		t.Fatal("application saw duplicates despite retransmissions")
	}
	_, dups, acks := rcv.ep.Stats()
	retrans, _, _ := snd.ep.Stats()
	if retrans > 0 && dups == 0 && acks <= 4 {
		t.Log("note: no retransmitted copy reached the receiver twice (possible but rare)")
	}
}

func TestMaxRetriesGivesUp(t *testing.T) {
	// Destination unreachable (its only neighbors dead): the endpoint
	// reports failure instead of retrying forever.
	g := topology.NewGrid(3, 1) // line 0-1-2; kill 1
	net, err := core.New(core.Config{
		Topo: g, P: 1, TTL: 6, MaxRounds: 300, Seed: 1,
		Fault: fault.Model{DeadTiles: 1, Protect: []packet.TileID{0, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	snd := newRelSender(2, 1)
	snd.ep.MaxRetries = 3
	net.Attach(0, snd)
	net.Attach(2, newRelReceiver())
	res := net.Run()
	if res.Completed {
		t.Fatal("completed despite a partitioned destination")
	}
	if failed := snd.ep.Failed(); len(failed) != 1 || failed[0] != 0 {
		t.Fatalf("Failed() = %v, want [0]", failed)
	}
}

func TestHandlePacketForeignKind(t *testing.T) {
	ep := NewEndpoint()
	if _, err := ep.HandlePacket(nil, &packet.Packet{Kind: 9}); err != ErrNotReliable {
		t.Fatalf("err = %v, want ErrNotReliable", err)
	}
}

func TestMalformedFramesIgnored(t *testing.T) {
	g := topology.NewGrid(2, 1)
	net, err := core.New(core.Config{Topo: g, P: 1, TTL: 6, MaxRounds: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rcv := newRelReceiver()
	net.Attach(1, rcv)
	net.Inject(0, 1, KindData, []byte{1, 2}) // too short for (seq, kind)
	net.Inject(0, 1, KindAck, []byte{9})     // too short for seq
	for i := 0; i < 10; i++ {
		net.Step()
	}
	if len(rcv.got) != 0 {
		t.Fatal("malformed data surfaced to the application")
	}
}

func TestAckedQuery(t *testing.T) {
	g := topology.NewGrid(2, 1)
	net, err := core.New(core.Config{Topo: g, P: 1, TTL: 10, MaxRounds: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	snd := newRelSender(1, 1)
	net.Attach(0, snd)
	net.Attach(1, newRelReceiver())
	if !net.Run().Completed {
		t.Fatal("incomplete")
	}
	if !snd.ep.Acked(0) {
		t.Fatal("Acked(0) false after completion")
	}
	if snd.ep.Acked(99) {
		t.Fatal("Acked(99) true for unknown seq")
	}
}
