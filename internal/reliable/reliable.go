// Package reliable implements the thesis' §4.2.3 remark as a real
// protocol: "If the application requires strong reliability guarantees,
// these can be implemented by a higher level protocol built on top of the
// stochastic communication."
//
// The layer is a sequence-numbered, acknowledged, retransmitting
// endpoint. Each data message carries (source, sequence); the receiver
// acknowledges every sequence it has seen and suppresses duplicates, so
// the application observes exactly-once delivery; the sender re-injects a
// fresh gossip message — with a fresh TTL — for every sequence that is
// not acknowledged within a retry window. Gossip remains the only
// transport: the layer needs no routing, only patience, and it converts
// the w.h.p. guarantee of the stochastic layer into a sure one (for any
// failure pattern that leaves source and destination connected).
package reliable

import (
	"errors"

	"repro/internal/core"
	"repro/internal/packet"

	"repro/internal/apps/codec"
)

// Wire kinds used by the layer. Applications multiplex their own payload
// kind inside the data header, so a single pair suffices.
const (
	KindData packet.Kind = 250
	KindAck  packet.Kind = 251
)

// DefaultRetryRounds is the default ACK wait before retransmission.
const DefaultRetryRounds = 12

// Endpoint is one tile's reliable-transport state. Embed it in a
// core.Process: call HandlePacket from Receive, Tick from Round, and Send
// instead of ctx.Send.
type Endpoint struct {
	// RetryRounds is the ACK timeout (defaults to DefaultRetryRounds).
	RetryRounds int
	// MaxRetries bounds retransmissions per message (0 = unlimited).
	MaxRetries int

	nextSeq  uint64
	pending  map[uint64]*pendingMsg
	acked    map[uint64]bool
	seen     map[msgKey]bool
	retrans  int
	duplica  int
	acksSent int
}

type msgKey struct {
	src packet.TileID
	seq uint64
}

type pendingMsg struct {
	dst      packet.TileID
	kind     packet.Kind
	payload  []byte
	lastSent int
	retries  int
}

// NewEndpoint returns an Endpoint with default timing.
func NewEndpoint() *Endpoint {
	return &Endpoint{
		RetryRounds: DefaultRetryRounds,
		pending:     map[uint64]*pendingMsg{},
		acked:       map[uint64]bool{},
		seen:        map[msgKey]bool{},
	}
}

// encodeData wraps (seq, innerKind, payload).
func encodeData(seq uint64, kind packet.Kind, payload []byte) []byte {
	return codec.NewWriter(9 + len(payload)).
		U64(seq).U16(uint16(kind)).Raw(payload).Bytes()
}

// Send transmits payload reliably to dst. The inner kind is preserved and
// handed back to the receiver by HandlePacket. It returns the sequence
// number for tracking.
func (e *Endpoint) Send(ctx *core.Ctx, dst packet.TileID, kind packet.Kind, payload []byte) uint64 {
	seq := e.nextSeq
	e.nextSeq++
	e.pending[seq] = &pendingMsg{
		dst: dst, kind: kind,
		payload:  append([]byte(nil), payload...),
		lastSent: ctx.Round(),
	}
	ctx.Send(dst, KindData, encodeData(seq, kind, payload))
	return seq
}

// Tick retransmits every unacknowledged message whose retry window has
// expired. Call it once per Round.
func (e *Endpoint) Tick(ctx *core.Ctx) {
	retry := e.RetryRounds
	if retry <= 0 {
		retry = DefaultRetryRounds
	}
	for seq, pm := range e.pending {
		if ctx.Round()-pm.lastSent < retry {
			continue
		}
		if e.MaxRetries > 0 && pm.retries >= e.MaxRetries {
			continue // exhausted; Failed() reports it
		}
		pm.retries++
		pm.lastSent = ctx.Round()
		e.retrans++
		ctx.Send(pm.dst, KindData, encodeData(seq, pm.kind, pm.payload))
	}
}

// Delivery is an application payload surfaced by HandlePacket.
type Delivery struct {
	Src     packet.TileID
	Seq     uint64
	Kind    packet.Kind
	Payload []byte
}

// ErrNotReliable is returned by HandlePacket for packets that do not
// belong to this layer; the caller should process them itself.
var ErrNotReliable = errors.New("reliable: not a reliable-layer packet")

// HandlePacket processes one delivered packet. For data it acknowledges
// and, on first sight, returns the Delivery; duplicates return (nil,
// nil). For ACKs it settles the pending message and returns (nil, nil).
// Non-layer packets return ErrNotReliable.
func (e *Endpoint) HandlePacket(ctx *core.Ctx, p *packet.Packet) (*Delivery, error) {
	switch p.Kind {
	case KindData:
		r := codec.NewReader(p.Payload)
		seq := r.U64()
		innerKind := packet.Kind(r.U16())
		payload := r.Rest()
		if r.Err() != nil {
			return nil, nil // malformed: ignore, sender will retry
		}
		// Always (re-)acknowledge, even duplicates: the ACK itself may
		// have been lost.
		ack := codec.NewWriter(8).U64(seq).Bytes()
		ctx.Send(p.Src, KindAck, ack)
		e.acksSent++
		key := msgKey{src: p.Src, seq: seq}
		if e.seen[key] {
			e.duplica++
			return nil, nil
		}
		e.seen[key] = true
		return &Delivery{Src: p.Src, Seq: seq, Kind: innerKind, Payload: payload}, nil
	case KindAck:
		r := codec.NewReader(p.Payload)
		seq := r.U64()
		if r.Err() != nil {
			return nil, nil
		}
		if _, ok := e.pending[seq]; ok {
			delete(e.pending, seq)
			e.acked[seq] = true
		}
		return nil, nil
	default:
		return nil, ErrNotReliable
	}
}

// Acked reports whether sequence seq has been acknowledged.
func (e *Endpoint) Acked(seq uint64) bool { return e.acked[seq] }

// Outstanding returns the number of unacknowledged messages.
func (e *Endpoint) Outstanding() int { return len(e.pending) }

// Failed returns the sequences that exhausted MaxRetries.
func (e *Endpoint) Failed() []uint64 {
	if e.MaxRetries == 0 {
		return nil
	}
	var out []uint64
	for seq, pm := range e.pending {
		if pm.retries >= e.MaxRetries {
			out = append(out, seq)
		}
	}
	return out
}

// Stats returns (retransmissions, duplicate receptions, acks sent) for
// overhead analysis.
func (e *Endpoint) Stats() (retransmissions, duplicates, acks int) {
	return e.retrans, e.duplica, e.acksSent
}
