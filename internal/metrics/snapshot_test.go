package metrics

import (
	"reflect"
	"testing"

	"repro/internal/snapshot"
)

// buildRecorder records a small synthetic workload: a few rounds of
// custom-series writes, so every mutable field of the Recorder is
// non-zero before the round trip.
func buildRecorder(reg *Registry, custom IntID) *Recorder {
	r := NewRecorder(Config{Rounds: 16, Registry: reg})
	r.Watch(42)
	r.prevBits = 1234
	r.tiles = 64
	for round := 0; round <= 9; round++ {
		r.AddInt(Created, round, int64(round))
		r.AddInt(custom, round, int64(-round)) // negative: two's complement path
		r.SetFloat(EnergyJ, round, float64(round)*0.5)
	}
	return r
}

func TestRecorderStateRoundTrip(t *testing.T) {
	mkReg := func() (*Registry, IntID) {
		reg := NewRegistry()
		return reg, reg.AddInt("custom_counter")
	}
	reg, custom := mkReg()
	orig := buildRecorder(reg, custom)

	w := snapshot.NewWriter()
	orig.EncodeState(w)

	reg2, custom2 := mkReg()
	got := NewRecorder(Config{Rounds: 16, Registry: reg2})
	if err := got.RestoreState(snapshot.NewReader(w.Bytes())); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if got.last != orig.last || got.watch != orig.watch ||
		got.prevBits != orig.prevBits || got.tiles != orig.tiles {
		t.Fatalf("scalar state did not round-trip: got last=%d watch=%d prevBits=%d tiles=%d",
			got.last, got.watch, got.prevBits, got.tiles)
	}
	if !reflect.DeepEqual(got.Series(), orig.Series()) {
		t.Fatal("series did not round-trip")
	}
	if got.Total(custom2) != orig.Total(custom) {
		t.Fatal("custom (negative) series total did not round-trip")
	}
}

func TestRecorderRestoreClearsStaleRounds(t *testing.T) {
	reg, custom := NewRegistry(), IntID(0)
	_ = custom
	short := NewRecorder(Config{Rounds: 16, Registry: reg})
	short.AddInt(Created, 3, 7) // last = 3

	w := snapshot.NewWriter()
	short.EncodeState(w)

	// Restore into a recorder that already holds data beyond round 3:
	// those rounds must come back zero, not survive as ghosts.
	dirty := NewRecorder(Config{Rounds: 16, Registry: NewRegistry()})
	dirty.AddInt(Created, 10, 99)
	if err := dirty.RestoreState(snapshot.NewReader(w.Bytes())); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if dirty.last != 3 {
		t.Fatalf("last = %d, want 3", dirty.last)
	}
	if got := dirty.ints[Created][10]; got != 0 {
		t.Fatalf("stale round survived restore: ints[Created][10] = %d", got)
	}
}

func TestRecorderRestoreRejectsShapeMismatch(t *testing.T) {
	reg := NewRegistry()
	reg.AddInt("extra")
	orig := NewRecorder(Config{Rounds: 8, Registry: reg})
	w := snapshot.NewWriter()
	orig.EncodeState(w)

	plain := NewRecorder(Config{Rounds: 8}) // built-in registry only
	if err := plain.RestoreState(snapshot.NewReader(w.Bytes())); err == nil {
		t.Fatal("restore into a recorder with fewer series succeeded")
	}
}

func TestRecorderRestoreRejectsOversizedRoundClaim(t *testing.T) {
	// A payload claiming more recorded rounds than its bytes can hold
	// must fail before ensure() sizes tables from the claim.
	w := snapshot.NewWriter()
	w.Int(payloadVersion)
	w.Int(numBuiltinInts)
	w.Int(numBuiltinFloats)
	w.Int(1 << 40) // last
	w.Uvarint(0)
	w.Int(0)
	w.Int(0)
	r := NewRecorder(Config{Rounds: 8})
	if err := r.RestoreState(snapshot.NewReader(w.Bytes())); err == nil {
		t.Fatal("implausible round count accepted")
	}
}
