package metrics

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/snapshot"
)

// Checkpoint support: a Recorder's partial series are part of a run's
// resumable state (interrupting a replica must not cost the rounds
// already recorded), so the Recorder serializes into the same container
// files as the engine — its payload rides in snapshot.SecMetrics next to
// the engine's SecCore. The registry itself is not serialized: it is
// configuration, re-created by the caller; the payload pins only the
// series *counts* so a checkpoint cannot silently restore into a
// recorder with a different shape.

// payloadVersion versions the SecMetrics payload layout.
const payloadVersion = 1

// EncodeState writes the recorder's mutable state — watched message,
// energy accumulator, and every series over the recorded rounds
// [0, Rounds()] — as a SecMetrics payload. Unrecorded rounds beyond
// Rounds() are omitted: they are zero by construction on both sides.
func (r *Recorder) EncodeState(w *snapshot.Writer) {
	w.Int(payloadVersion)
	w.Int(r.reg.NumInt())
	w.Int(r.reg.NumFloat())
	w.Int(r.last)
	w.Uvarint(uint64(r.watch))
	w.Int(r.prevBits)
	w.Int(r.tiles)
	n := r.last + 1
	for _, s := range r.ints {
		for _, v := range s[:n] {
			w.U64(uint64(v)) // two's complement: custom series may go negative
		}
	}
	for _, s := range r.floats {
		for _, v := range s[:n] {
			w.F64(v)
		}
	}
}

// RestoreState overwrites the recorder's state with one captured by
// EncodeState. The receiver must be freshly built from the same Config —
// in particular the same registry shape (validated) and Technology (not
// serialized; it is configuration, like the engine's Config). The reader
// is fully consumed.
func (r *Recorder) RestoreState(sec *snapshot.Reader) error {
	if v := sec.Int(); sec.Err() == nil && v != payloadVersion {
		return fmt.Errorf("metrics: checkpoint payload version %d, this build reads %d", v, payloadVersion)
	}
	nInts := sec.Int()
	nFloats := sec.Int()
	if sec.Err() == nil && (nInts != r.reg.NumInt() || nFloats != r.reg.NumFloat()) {
		return fmt.Errorf("metrics: checkpoint holds %d int + %d float series, registry defines %d + %d",
			nInts, nFloats, r.reg.NumInt(), r.reg.NumFloat())
	}
	last := sec.Int()
	// Each recorded round contributes 8 bytes to every series; bounding
	// last by the remaining payload keeps a hostile value from sizing a
	// huge allocation in ensure.
	if perRound := (nInts + nFloats) * 8; sec.Err() == nil && perRound > 0 &&
		uint64(last) > uint64(sec.Remaining())/uint64(perRound) {
		return fmt.Errorf("metrics: checkpoint claims %d rounds, payload holds %d bytes", last, sec.Remaining())
	}
	watch := sec.Uvarint()
	prevBits := sec.Int()
	tiles := sec.Int()
	if err := sec.Err(); err != nil {
		return err
	}

	r.ensure(last)
	r.last = last
	r.watch = packet.MsgID(watch)
	r.prevBits = prevBits
	r.tiles = tiles
	n := last + 1
	for _, s := range r.ints {
		for i := 0; i < n; i++ {
			s[i] = int64(sec.U64())
		}
		for i := n; i < len(s); i++ {
			s[i] = 0
		}
	}
	for _, s := range r.floats {
		for i := 0; i < n; i++ {
			s[i] = sec.F64()
		}
		for i := n; i < len(s); i++ {
			s[i] = 0
		}
	}
	return sec.Finish()
}
