package metrics_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite the exporter golden files under testdata/")

// TestMetricsExportGolden pins the exporter bytes two ways: the JSONL
// and CSV renderings of the canonical 8×8 broadcast study must be
// byte-identical across -workers 1/4/16 (worker count must never leak
// into artifacts), and must match the checked-in golden files (so a
// format change is a deliberate, reviewed diff — regenerate with
// `go test ./internal/metrics/ -run TestMetricsExportGolden -update`).
func TestMetricsExportGolden(t *testing.T) {
	mc := sim.Config{Replicas: 6, Seed: 2003}
	var firstJSON, firstCSV []byte
	for _, workers := range []int{1, 4, 16} {
		mc.Workers = workers
		agg, err := experiments.BroadcastMetrics(mc)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var j, c bytes.Buffer
		if err := metrics.WriteJSONL(&j, agg); err != nil {
			t.Fatalf("workers=%d: WriteJSONL: %v", workers, err)
		}
		if err := metrics.WriteCSV(&c, agg); err != nil {
			t.Fatalf("workers=%d: WriteCSV: %v", workers, err)
		}
		if firstJSON == nil {
			firstJSON, firstCSV = j.Bytes(), c.Bytes()
			continue
		}
		if !bytes.Equal(j.Bytes(), firstJSON) {
			t.Errorf("JSONL export differs between workers=1 and workers=%d", workers)
		}
		if !bytes.Equal(c.Bytes(), firstCSV) {
			t.Errorf("CSV export differs between workers=1 and workers=%d", workers)
		}
	}
	checkGolden(t, "broadcast_runs6_seed2003.jsonl", firstJSON)
	checkGolden(t, "broadcast_runs6_seed2003.csv", firstCSV)
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: export bytes differ from golden file; if the format change is intended, regenerate with -update", name)
	}
}
