package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// This file holds the exporters. Both formats are byte-stable: series
// appear in registry order (never map order), floats are rendered with
// strconv.FormatFloat(v, 'g', -1, 64) (the shortest round-tripping
// form), and the merged input is itself deterministic in (Replicas,
// Seed) — so a JSONL/CSV artifact regenerates byte-identically at any
// worker count (pinned by TestMetricsExportGolden).

// fmtF renders a float byte-stably.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteJSONL writes a as JSON Lines: one object per round,
//
//	{"round":R,"replicas":N,"series":{"<name>":{"n":…,"sum":…,"mean":…,"min":…,"max":…,"ci95":…},…}}
//
// with integer series first, then float series, each in registry order.
// The per-round "sum" fields of the event-count series reconcile
// exactly, summed over rounds, with the core.Counters totals summed
// over replicas.
func WriteJSONL(w io.Writer, a *Aggregate) error {
	bw := bufio.NewWriter(w)
	for r := 0; r <= a.Rounds; r++ {
		fmt.Fprintf(bw, `{"round":%d,"replicas":%d,"series":{`, r, a.Replicas)
		first := true
		for id := range a.Ints {
			writeJSONStat(bw, &first, a.Reg.IntName(IntID(id)), a.Ints[id][r])
		}
		for id := range a.Floats {
			writeJSONStat(bw, &first, a.Reg.FloatName(FloatID(id)), a.Floats[id][r])
		}
		if _, err := bw.WriteString("}}\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeJSONStat emits one `"name":{...}` member.
func writeJSONStat(bw *bufio.Writer, first *bool, name string, s RoundStat) {
	if !*first {
		bw.WriteByte(',')
	}
	*first = false
	fmt.Fprintf(bw, `"%s":{"n":%d,"sum":%s,"mean":%s,"min":%s,"max":%s,"ci95":%s}`,
		name, s.N, fmtF(s.Sum), fmtF(s.Mean), fmtF(s.Min), fmtF(s.Max), fmtF(s.CI95))
}

// WriteCSV writes a in long form, one row per (round, series):
//
//	round,series,n,sum,mean,min,max,ci95
//
// with integer series first, then float series, each in registry order
// within every round.
func WriteCSV(w io.Writer, a *Aggregate) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("round,series,n,sum,mean,min,max,ci95\n"); err != nil {
		return err
	}
	for r := 0; r <= a.Rounds; r++ {
		for id := range a.Ints {
			writeCSVStat(bw, r, a.Reg.IntName(IntID(id)), a.Ints[id][r])
		}
		for id := range a.Floats {
			writeCSVStat(bw, r, a.Reg.FloatName(FloatID(id)), a.Floats[id][r])
		}
	}
	return bw.Flush()
}

// writeCSVStat emits one CSV row.
func writeCSVStat(bw *bufio.Writer, round int, name string, s RoundStat) {
	fmt.Fprintf(bw, "%d,%s,%d,%s,%s,%s,%s,%s\n",
		round, name, s.N, fmtF(s.Sum), fmtF(s.Mean), fmtF(s.Min), fmtF(s.Max), fmtF(s.CI95))
}
