package metrics

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/topology"
)

// TestStreamerMatchesBatchExport pins the streaming/batch equivalence
// the service's result cache depends on: the concatenation of
// Streamer.RoundLine(0..Rounds), taken incrementally after every Step,
// must be byte-identical to WriteJSONL over the finished run's
// one-replica merge. A client that watched the live stream holds the
// same file a later client fetches from the cache.
func TestStreamerMatchesBatchExport(t *testing.T) {
	rec := NewRecorder(Config{Rounds: 64, Tech: energy.NoCLink025})
	cfg := core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.55, TTL: 8, MaxRounds: 64, Seed: 909,
		Fault: fault.Model{PUpset: 0.1},
	}
	rec.Install(&cfg)
	net, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := net.Inject(0, packet.Broadcast, 0, []byte("stream"))
	if err != nil {
		t.Fatal(err)
	}
	rec.Watch(id)

	var streamed bytes.Buffer
	str := NewStreamer(rec)
	streamed.Write(str.RoundLine(0)) // pre-run injections live in round 0
	for !net.Quiescent() && net.Round() < 64 {
		net.Step()
		streamed.Write(str.RoundLine(net.Round()))
	}

	agg, err := Merge([]*TimeSeries{rec.Series()})
	if err != nil {
		t.Fatal(err)
	}
	var batch bytes.Buffer
	if err := WriteJSONL(&batch, agg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), batch.Bytes()) {
		t.Fatalf("streamed JSONL differs from batch export:\nstreamed:\n%s\nbatch:\n%s",
			streamed.Bytes(), batch.Bytes())
	}
}

// TestStreamerLineReuse documents that RoundLine reuses its buffer:
// retaining a line requires a copy.
func TestStreamerLineReuse(t *testing.T) {
	rec := NewRecorder(Config{Rounds: 8})
	rec.AddInt(Created, 0, 1)
	rec.AddInt(Created, 1, 2)
	str := NewStreamer(rec)
	l0 := append([]byte(nil), str.RoundLine(0)...)
	l1 := str.RoundLine(1)
	if bytes.Equal(l0, l1) {
		t.Fatal("distinct rounds rendered identical lines")
	}
	if !bytes.Equal(l0, str.RoundLine(0)) {
		t.Fatal("re-rendering a round changed its bytes")
	}
}

// TestStreamerRejectsUnrecordedRound pins the contract that only
// recorded rounds ([0, Rounds()]) can be rendered.
func TestStreamerRejectsUnrecordedRound(t *testing.T) {
	rec := NewRecorder(Config{Rounds: 8})
	rec.AddInt(Created, 2, 1)
	str := NewStreamer(rec)
	for _, r := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RoundLine(%d) did not panic", r)
				}
			}()
			str.RoundLine(r)
		}()
	}
}
