package metrics

import (
	"fmt"
	"strconv"
)

// Incremental export: the simulation service streams a running
// replica's series to subscribers round by round, while the run is
// still executing, and later serves the finished artifact from a
// byte-addressed cache. Those two paths must agree byte for byte —
// a client that watched the stream and a client that fetched the
// cached result must hold identical files — so the Streamer renders
// each round's line with exactly the bytes the batch exporter
// (WriteJSONL over a one-replica Merge) would emit for that round.
// The equivalence is pinned by TestStreamerMatchesBatchExport.

// Streamer incrementally renders one replica's recorded series as
// JSON Lines. RoundLine(r) returns the identical bytes line r of
// WriteJSONL(Merge([rec.Series()])) will hold once the run finishes:
// a single-replica round statistic (n=1, sum=mean=min=max=value,
// ci95=0) per series, in registry order, floats in the shortest
// round-tripping form. A round's values are final at its round
// barrier — the engine only ever writes into the current round — so
// streaming a line after each core.Network.Step is safe.
type Streamer struct {
	rec *Recorder
	buf []byte
}

// NewStreamer returns a Streamer over rec's recorded series.
func NewStreamer(rec *Recorder) *Streamer {
	return &Streamer{rec: rec}
}

// RoundLine renders round's JSONL line (newline-terminated). round
// must not exceed rec.Rounds(). The returned slice is reused by the
// next call; copy it to retain.
func (s *Streamer) RoundLine(round int) []byte {
	if round < 0 || round > s.rec.last {
		panic(fmt.Sprintf("metrics: Streamer.RoundLine(%d) outside recorded rounds [0, %d]", round, s.rec.last))
	}
	b := s.buf[:0]
	b = append(b, `{"round":`...)
	b = strconv.AppendInt(b, int64(round), 10)
	b = append(b, `,"replicas":1,"series":{`...)
	first := true
	for id, vals := range s.rec.ints {
		b = appendSingleStat(b, &first, s.rec.reg.IntName(IntID(id)), float64(vals[round]))
	}
	for id, vals := range s.rec.floats {
		b = appendSingleStat(b, &first, s.rec.reg.FloatName(FloatID(id)), vals[round])
	}
	b = append(b, "}}\n"...)
	s.buf = b
	return b
}

// appendSingleStat appends one `"name":{...}` member holding the n=1
// statistic of value v — the RoundStat a one-replica Merge produces
// (sum = mean = min = max = v, ci95 = 0), rendered with the batch
// exporter's float formatting.
func appendSingleStat(b []byte, first *bool, name string, v float64) []byte {
	if !*first {
		b = append(b, ',')
	}
	*first = false
	b = append(b, '"')
	b = append(b, name...)
	b = append(b, `":{"n":1,"sum":`...)
	f := strconv.AppendFloat(nil, v, 'g', -1, 64)
	b = append(b, f...)
	b = append(b, `,"mean":`...)
	b = append(b, f...)
	b = append(b, `,"min":`...)
	b = append(b, f...)
	b = append(b, `,"max":`...)
	b = append(b, f...)
	b = append(b, `,"ci95":0}`...)
	return b
}
