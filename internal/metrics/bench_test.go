package metrics_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/topology"
)

// recorderNet mirrors internal/core's stepNet microbench fixture (8×8
// broadcast steady state, TTL 255) with a Recorder installed, so
// BenchmarkStepGrid8x8Recorder reads directly against the engine's
// BenchmarkStepGrid8x8 baseline: the delta is the observability tax.
func recorderNet(tb testing.TB) *core.Network {
	tb.Helper()
	cfg := core.Config{
		Topo: topology.NewGrid(8, 8), P: 0.5, TTL: 255, MaxRounds: 100000, Seed: 1,
	}
	rec := metrics.NewRecorder(metrics.Config{Rounds: 100000, Tech: energy.NoCLink025})
	rec.Install(&cfg)
	n, err := core.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	id, _ := n.Inject(0, packet.Broadcast, 0, make([]byte, 16))
	rec.Watch(id)
	for i := 0; i < 60; i++ {
		n.Step()
	}
	return n
}

// BenchmarkStepGrid8x8Recorder is the instrumented twin of the engine
// hot-loop microbench: one steady-state Step with the per-round recorder
// counting every event and flushing every round. The acceptance bar is
// 0 allocs/op and ≤5% latency over the bare engine (EXPERIMENTS.md
// keeps the before/after table).
func BenchmarkStepGrid8x8Recorder(b *testing.B) {
	n := recorderNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n.Round() >= 220 {
			// The broadcast dies when its TTL runs out; restart the
			// steady state outside the timer.
			b.StopTimer()
			n = recorderNet(b)
			b.StartTimer()
		}
		n.Step()
	}
}
