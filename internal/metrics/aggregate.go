package metrics

import (
	"errors"
	"fmt"
	"math"
)

// RoundStat is the cross-replica statistic of one series at one round.
// Units follow the series (counts for integer series, fractions or
// joules for the float series); CI95 is the half-width of the
// normal-approximation 95% confidence interval on the mean.
type RoundStat struct {
	// N is how many replicas contributed a value at this round (runs
	// stop at different rounds, so N can shrink along the tail).
	N int
	// Sum is the exact total over the contributing replicas — the
	// field that reconciles against core.Counters totals (for integer
	// series it is an integer-valued float64).
	Sum float64
	// Mean, Min, Max summarize the contributing replicas.
	Mean, Min, Max float64
	// CI95 is the 95% confidence half-width on Mean (0 for N < 2).
	CI95 float64
}

// Aggregate is the deterministic cross-replica merge of per-round
// series: for every series and every round, the mean/min/max/CI over the
// Monte Carlo replicas that reached that round. Produced by Merge
// (usually via sim.RunSeries) and consumed by the exporters.
type Aggregate struct {
	// Reg names the series.
	Reg *Registry
	// Replicas is how many runs were merged.
	Replicas int
	// Rounds is the longest run's highest round; every series has
	// Rounds+1 entries.
	Rounds int
	// Ints holds the merged integer series, indexed [IntID][round].
	Ints [][]RoundStat
	// Floats holds the merged float series, indexed [FloatID][round].
	Floats [][]RoundStat
}

// Int returns one merged integer series (length Rounds+1, index=round).
func (a *Aggregate) Int(id IntID) []RoundStat { return a.Ints[id] }

// Float returns one merged float series (length Rounds+1, index=round).
func (a *Aggregate) Float(id FloatID) []RoundStat { return a.Floats[id] }

// Merge folds replicas' TimeSeries into per-round cross-replica
// statistics. All runs must share one registry definition (same series,
// same order). The fold visits replicas in slice order, so the result is
// a pure function of the input slice — the internal/sim runner hands
// replicas over in replica-index order, making the merged output
// invariant under worker count and scheduling (Welford accumulation is
// order-sensitive in its float rounding, so the fixed order is what
// makes the bytes reproducible).
func Merge(runs []*TimeSeries) (*Aggregate, error) {
	if len(runs) == 0 {
		return nil, errors.New("metrics: Merge of zero runs")
	}
	reg := runs[0].Reg
	rounds := 0
	for i, ts := range runs {
		if !reg.same(ts.Reg) {
			return nil, fmt.Errorf("metrics: Merge: replica %d recorded a different series registry", i)
		}
		if ts.Rounds > rounds {
			rounds = ts.Rounds
		}
	}
	a := &Aggregate{
		Reg:      reg,
		Replicas: len(runs),
		Rounds:   rounds,
		Ints:     make([][]RoundStat, reg.NumInt()),
		Floats:   make([][]RoundStat, reg.NumFloat()),
	}
	for id := range a.Ints {
		a.Ints[id] = make([]RoundStat, rounds+1)
		for r := 0; r <= rounds; r++ {
			var w welford
			for _, ts := range runs {
				if r <= ts.Rounds {
					w.add(float64(ts.Ints[id][r]))
				}
			}
			a.Ints[id][r] = w.stat()
		}
	}
	for id := range a.Floats {
		a.Floats[id] = make([]RoundStat, rounds+1)
		for r := 0; r <= rounds; r++ {
			var w welford
			for _, ts := range runs {
				if r <= ts.Rounds {
					w.add(ts.Floats[id][r])
				}
			}
			a.Floats[id][r] = w.stat()
		}
	}
	return a, nil
}

// welford is a minimal order-deterministic mean/variance accumulator
// (same algorithm as internal/stats.Online; duplicated here to keep the
// RoundStat fold self-contained and the Sum field exact).
type welford struct {
	n             int
	mean, m2, sum float64
	min, max      float64
}

func (w *welford) add(x float64) {
	w.n++
	w.sum += x
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
	if w.n == 1 || x < w.min {
		w.min = x
	}
	if w.n == 1 || x > w.max {
		w.max = x
	}
}

func (w *welford) stat() RoundStat {
	s := RoundStat{N: w.n, Sum: w.sum, Mean: w.mean, Min: w.min, Max: w.max}
	if w.n >= 2 {
		sd := math.Sqrt(w.m2 / float64(w.n-1))
		s.CI95 = 1.96 * sd / math.Sqrt(float64(w.n))
	}
	return s
}
