// Package metrics is the per-round time-series observability layer of
// the simulator. The thesis' whole argument is trajectory-shaped —
// fraction of aware tiles, packet transmissions and energy *per round*
// (§3.3, Figs. 3-3…3-6) — so the Recorder turns the engine's protocol
// events (core.Config.OnEvent) and end-of-round state
// (core.Config.OnRoundEnd) into dense per-round series, one slot per
// round, preallocated up front so that recording costs zero allocations
// in the engine's steady state (the same discipline as the flat tables
// of internal/core).
//
// Data flow:
//
//	core.Event ──OnEvent──▶ Recorder ──Series()──▶ TimeSeries (one replica)
//	                 │                                   │
//	         OnRoundEnd flush                     Merge() across replicas
//	    (aware tiles, energy ΔJ)                         │
//	                                              Aggregate ──WriteJSONL/WriteCSV──▶ files
//
// Cross-replica aggregation is driven by the internal/sim Monte Carlo
// runner (sim.RunSeries), which guarantees the merge is deterministic in
// (Replicas, Seed) alone — never in worker count or scheduling. See
// docs/OBSERVABILITY.md for a worked example.
package metrics

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/packet"
)

// IntID names one integer-valued per-round series in a Registry.
// Integer series are counters: events per round (transmissions,
// deliveries, ...) or end-of-round gauges (aware tiles).
type IntID int

// FloatID names one float-valued per-round series in a Registry
// (fractions, joules).
type FloatID int

// The built-in integer series, in registry order. All are per-round
// event counts except AwareTiles, an end-of-round gauge.
const (
	// Created counts messages entering their origin tile's send buffer
	// (core.EvCreated) in each round.
	Created IntID = iota
	// Transmissions counts copies driven onto links (core.EvTransmit)
	// in each round — the N_packets input of the Eq. 3 energy model.
	Transmissions
	// CRCRejects counts receptions discarded as scrambled
	// (core.EvUpset) in each round.
	CRCRejects
	// OverflowDrops counts messages lost to buffer overflow
	// (core.EvOverflow) in each round.
	OverflowDrops
	// Deliveries counts first-time deliveries to addressed tiles
	// (core.EvDeliver) in each round.
	Deliveries
	// TTLExpiries counts buffered copies garbage-collected at TTL zero
	// (core.EvExpire) in each round.
	TTLExpiries
	// AwareTiles is an end-of-round gauge: how many tiles know the
	// watched message (Recorder.Watch) after the round — the shaded
	// tiles of the Fig. 3-3 walkthrough. Zero when nothing is watched.
	AwareTiles

	numBuiltinInts = int(AwareTiles) + 1
)

// The built-in float series, in registry order. Both are end-of-round
// values written by the OnRoundEnd flush.
const (
	// AwareFraction is AwareTiles divided by the tile count — the
	// dissemination trajectory of Fig. 3-3 as a fraction in [0, 1].
	AwareFraction FloatID = iota
	// EnergyJ is the communication energy dissipated during the round,
	// in joules: the round's transmitted bits × the technology's
	// J/bit constant (Eq. 3 applied per round). Zero when the Recorder
	// was built without a Technology.
	EnergyJ

	numBuiltinFloats = int(EnergyJ) + 1
)

// Registry names the series a Recorder records. NewRegistry preloads the
// built-in series above; AddInt/AddFloat extend it with custom series
// (register everything before building the Recorder — a Recorder sizes
// its tables from the registry at construction). Names must be unique;
// they key the exporter output, so keep them lower_snake_case.
type Registry struct {
	ints   []string
	floats []string
}

// NewRegistry returns a registry holding exactly the built-in series.
func NewRegistry() *Registry {
	return &Registry{
		ints: []string{
			"created", "transmissions", "crc_rejects", "overflow_drops",
			"deliveries", "ttl_expiries", "aware_tiles",
		},
		floats: []string{"aware_fraction", "energy_j"},
	}
}

// AddInt registers a custom integer series and returns its handle.
func (g *Registry) AddInt(name string) IntID {
	g.ints = append(g.ints, name)
	return IntID(len(g.ints) - 1)
}

// AddFloat registers a custom float series and returns its handle.
func (g *Registry) AddFloat(name string) FloatID {
	g.floats = append(g.floats, name)
	return FloatID(len(g.floats) - 1)
}

// NumInt returns the number of integer series.
func (g *Registry) NumInt() int { return len(g.ints) }

// NumFloat returns the number of float series.
func (g *Registry) NumFloat() int { return len(g.floats) }

// IntName returns the name of integer series id.
func (g *Registry) IntName(id IntID) string { return g.ints[id] }

// FloatName returns the name of float series id.
func (g *Registry) FloatName(id FloatID) string { return g.floats[id] }

// same reports whether two registries define identical series — the
// precondition for merging their recorders' output.
func (g *Registry) same(o *Registry) bool {
	if len(g.ints) != len(o.ints) || len(g.floats) != len(o.floats) {
		return false
	}
	for i, n := range g.ints {
		if o.ints[i] != n {
			return false
		}
	}
	for i, n := range g.floats {
		if o.floats[i] != n {
			return false
		}
	}
	return true
}

// Config parameterizes one Recorder.
type Config struct {
	// Rounds is the preallocation bound: the recorder allocates every
	// series dense over [0, Rounds] up front, so recording within that
	// window allocates nothing. Size it like the engine's own tables —
	// from core.Config.MaxRounds plus any draining margin. 0 defaults
	// to 256; exceeding the bound grows the tables (amortized doubling,
	// off the steady state), never drops data.
	Rounds int
	// Tech supplies the J/bit constant for the EnergyJ series (e.g.
	// energy.NoCLink025). The zero value records zero joules.
	Tech energy.Technology
	// Registry names the recorded series; nil uses NewRegistry().
	// Register custom series before handing the registry over.
	Registry *Registry
}

// Recorder accumulates dense per-round series from one network run.
// Install wires it into a core.Config; one Recorder per network —
// replicas must not share one (the round engine is single-threaded, and
// so is the Recorder). In the engine's steady state (rounds within the
// Config.Rounds bound) recording performs no allocation: every series
// slot exists before the run starts.
type Recorder struct {
	reg      *Registry
	ints     [][]int64   // [IntID][round]
	floats   [][]float64 // [FloatID][round]
	span     int         // allocated rounds: series cover [0, span)
	last     int         // highest round recorded so far
	watch    packet.MsgID
	jPerBit  float64
	prevBits int
	tiles    int // topology size, cached on first OnRoundEnd
}

// NewRecorder builds a Recorder with every series preallocated over
// [0, cfg.Rounds].
func NewRecorder(cfg Config) *Recorder {
	reg := cfg.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	rounds := cfg.Rounds
	if rounds <= 0 {
		rounds = 256
	}
	r := &Recorder{
		reg:     reg,
		ints:    make([][]int64, reg.NumInt()),
		floats:  make([][]float64, reg.NumFloat()),
		span:    rounds + 1,
		jPerBit: cfg.Tech.JoulePerBit,
	}
	for i := range r.ints {
		r.ints[i] = make([]int64, r.span)
	}
	for i := range r.floats {
		r.floats[i] = make([]float64, r.span)
	}
	return r
}

// Registry returns the recorder's series registry.
func (r *Recorder) Registry() *Registry { return r.reg }

// Watch selects the message whose awareness trajectory the AwareTiles /
// AwareFraction series record (typically the broadcast under study).
// Call it right after Inject/Send returns the ID; with nothing watched
// both series stay zero.
func (r *Recorder) Watch(id packet.MsgID) { r.watch = id }

// Install wires the recorder into cfg's OnEvent and OnRoundEnd hooks,
// chaining (not replacing) any hooks already set. Call before core.New.
func (r *Recorder) Install(cfg *core.Config) {
	if prev := cfg.OnEvent; prev != nil {
		cfg.OnEvent = func(e core.Event) { prev(e); r.OnEvent(e) }
	} else {
		cfg.OnEvent = r.OnEvent
	}
	if prev := cfg.OnRoundEnd; prev != nil {
		cfg.OnRoundEnd = func(round int, n *core.Network) { prev(round, n); r.OnRoundEnd(round, n) }
	} else {
		cfg.OnRoundEnd = r.OnRoundEnd
	}
}

// ensure grows every series to cover round (amortized doubling). Within
// the preallocated span it is two comparisons and inlines into the
// recording hot path; only the out-of-span grow is a real call.
func (r *Recorder) ensure(round int) {
	if round > r.last {
		r.last = round
	}
	if round >= r.span {
		r.grow(round)
	}
}

// grow doubles every series until it covers round. Off the steady-state
// path by construction (Config.Rounds sizes the tables for the run);
// kept out of line so the recording fast path stays a handful of
// instructions.
//
//go:noinline
func (r *Recorder) grow(round int) {
	span := r.span
	for span <= round {
		span *= 2
	}
	for i, s := range r.ints {
		grown := make([]int64, span)
		copy(grown, s)
		r.ints[i] = grown
	}
	for i, s := range r.floats {
		grown := make([]float64, span)
		copy(grown, s)
		r.floats[i] = grown
	}
	r.span = span
}

// The recorder maps event kinds onto the built-in series by value: the
// two enums are declared in the same order, so the translation on the
// hot path is a bounds guard plus an index. These compile-time
// assertions pin the alignment — reordering either enum fails the build
// here instead of silently corrupting the series.
var (
	_ = [1]struct{}{}[IntID(core.EvCreated)-Created]
	_ = [1]struct{}{}[IntID(core.EvTransmit)-Transmissions]
	_ = [1]struct{}{}[IntID(core.EvUpset)-CRCRejects]
	_ = [1]struct{}{}[IntID(core.EvOverflow)-OverflowDrops]
	_ = [1]struct{}{}[IntID(core.EvDeliver)-Deliveries]
	_ = [1]struct{}{}[IntID(core.EvExpire)-TTLExpiries]
)

// OnEvent counts one protocol event into its per-round series. It has
// the core.Config.OnEvent signature and runs once per protocol event —
// the recorder's hottest code. The mapping covers every core.EventKind;
// an unknown kind is a programming error (a new event kind added to the
// engine without a series mapping) and panics so it cannot silently
// undercount.
func (r *Recorder) OnEvent(e core.Event) {
	if e.Kind > core.EvExpire {
		badKind(e)
	}
	if e.Round >= r.span {
		r.grow(e.Round)
	}
	if e.Round > r.last {
		r.last = e.Round
	}
	r.ints[e.Kind][e.Round]++
}

// badKind reports an event kind with no series mapping; split out so the
// formatting machinery stays off OnEvent's fast path.
//
//go:noinline
func badKind(e core.Event) {
	panic(fmt.Sprintf("metrics: Recorder.OnEvent: unhandled core.EventKind %v", e.Kind))
}

// OnRoundEnd is the per-round flush: it samples end-of-round state into
// the gauge series (aware tiles/fraction of the watched message, the
// round's energy in joules). It has the core.Config.OnRoundEnd
// signature.
func (r *Recorder) OnRoundEnd(round int, n *core.Network) {
	r.ensure(round)
	aware := 0
	if r.watch != 0 {
		aware = n.Aware(r.watch)
	}
	r.ints[AwareTiles][round] = int64(aware)
	if r.tiles == 0 {
		r.tiles = n.Topology().Tiles()
	}
	if r.tiles > 0 {
		r.floats[AwareFraction][round] = float64(aware) / float64(r.tiles)
	}
	bits := n.Counters().Energy.Bits
	r.floats[EnergyJ][round] = float64(bits-r.prevBits) * r.jPerBit
	r.prevBits = bits
}

// AddInt adds delta to a custom integer series at round (and to its
// cumulative total). Use it from an Observer or application hook for
// workload-specific counters.
func (r *Recorder) AddInt(id IntID, round int, delta int64) {
	r.ensure(round)
	r.ints[id][round] += delta
}

// SetFloat sets a custom float series at round.
func (r *Recorder) SetFloat(id FloatID, round int, v float64) {
	r.ensure(round)
	r.floats[id][round] = v
}

// Total returns the cumulative value of an integer series over the whole
// run (the per-round values summed on demand — the hot path records only
// the per-round slot). For the event-count series these reconcile
// exactly with the engine's core.Counters totals (Transmissions ↔
// Counters.Energy.Transmissions, CRCRejects ↔ UpsetsDetected, and so on
// — pinned by TestMetricsRecorderTotalsMatchCounters). For the
// AwareTiles gauge the cumulative value is meaningless; read its
// trajectory from Series().
func (r *Recorder) Total(id IntID) int64 {
	var sum int64
	for _, v := range r.ints[id][:r.last+1] {
		sum += v
	}
	return sum
}

// Rounds returns the highest round recorded so far (0 before any event).
func (r *Recorder) Rounds() int { return r.last }

// Series snapshots the recorded data as an immutable TimeSeries covering
// rounds [0, Rounds()]. It copies (one allocation per series) so the
// snapshot survives further recording; call it once, after the run.
func (r *Recorder) Series() *TimeSeries {
	n := r.last + 1
	ts := &TimeSeries{
		Reg:    r.reg,
		Rounds: r.last,
		Ints:   make([][]int64, len(r.ints)),
		Floats: make([][]float64, len(r.floats)),
	}
	for i, s := range r.ints {
		ts.Ints[i] = append([]int64(nil), s[:n]...)
	}
	for i, s := range r.floats {
		ts.Floats[i] = append([]float64(nil), s[:n]...)
	}
	return ts
}

// TimeSeries is one replica's recorded per-round series: every series is
// dense over rounds [0, Rounds] (index = round; round 0 holds pre-run
// injections).
type TimeSeries struct {
	// Reg names the series.
	Reg *Registry
	// Rounds is the highest recorded round; every series has
	// Rounds+1 entries.
	Rounds int
	// Ints holds the integer series, indexed [IntID][round].
	Ints [][]int64
	// Floats holds the float series, indexed [FloatID][round].
	Floats [][]float64
}

// Int returns one integer series (length Rounds+1, index = round).
func (ts *TimeSeries) Int(id IntID) []int64 { return ts.Ints[id] }

// Float returns one float series (length Rounds+1, index = round).
func (ts *TimeSeries) Float(id FloatID) []float64 { return ts.Floats[id] }
