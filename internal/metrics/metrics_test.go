package metrics_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/topology"
)

// faultyBroadcast runs a faulty 8×8 broadcast to quiescence with a
// Recorder installed, plus an independently chained OnEvent hook that
// tallies every event kind on its own, and returns all three ledgers.
func faultyBroadcast(t *testing.T, seed uint64) (*metrics.Recorder, core.Counters, map[core.EventKind]int) {
	t.Helper()
	g := topology.NewGrid(8, 8)
	center := g.ID(4, 4)
	rec := metrics.NewRecorder(metrics.Config{Rounds: 72, Tech: energy.NoCLink025})
	independent := map[core.EventKind]int{}
	cfg := core.Config{
		Topo: g, P: 0.5, TTL: 32, MaxRounds: 72, Seed: seed,
		Fault:   fault.Model{PUpset: 0.1, POverflow: 0.05, Protect: []packet.TileID{center}},
		OnEvent: func(e core.Event) { independent[e.Kind]++ },
	}
	rec.Install(&cfg)
	net, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := net.Inject(center, packet.Broadcast, 0, make([]byte, 16))
	rec.Watch(id)
	net.Drain(72)
	return rec, net.Counters(), independent
}

// TestMetricsRecorderTotalsMatchCounters pins the reconciliation
// invariant: on a faulty 8×8 broadcast the recorder's cumulative event
// totals equal the engine's own core.Counters tallies exactly, and each
// total equals the sum of its per-round series.
func TestMetricsRecorderTotalsMatchCounters(t *testing.T) {
	rec, cnt, independent := faultyBroadcast(t, 7)

	if got, want := rec.Total(metrics.Transmissions), int64(cnt.Energy.Transmissions); got != want {
		t.Errorf("transmissions: recorder %d, core.Counters %d", got, want)
	}
	if got, want := rec.Total(metrics.CRCRejects), int64(cnt.UpsetsDetected); got != want {
		t.Errorf("crc_rejects: recorder %d, core.Counters.UpsetsDetected %d", got, want)
	}
	if got, want := rec.Total(metrics.OverflowDrops), int64(cnt.OverflowDrops); got != want {
		t.Errorf("overflow_drops: recorder %d, core.Counters %d", got, want)
	}
	if got, want := rec.Total(metrics.Deliveries), int64(cnt.Deliveries); got != want {
		t.Errorf("deliveries: recorder %d, core.Counters %d", got, want)
	}
	// Created and TTLExpiries have no core.Counters field; reconcile them
	// (and every other series) against the independently chained hook.
	for id, kind := range map[metrics.IntID]core.EventKind{
		metrics.Created:       core.EvCreated,
		metrics.Transmissions: core.EvTransmit,
		metrics.CRCRejects:    core.EvUpset,
		metrics.OverflowDrops: core.EvOverflow,
		metrics.Deliveries:    core.EvDeliver,
		metrics.TTLExpiries:   core.EvExpire,
	} {
		if got, want := rec.Total(id), int64(independent[kind]); got != want {
			t.Errorf("%s: recorder %d, independent hook %d",
				rec.Registry().IntName(id), got, want)
		}
	}
	if rec.Total(metrics.Transmissions) == 0 || rec.Total(metrics.CRCRejects) == 0 ||
		rec.Total(metrics.OverflowDrops) == 0 || rec.Total(metrics.TTLExpiries) == 0 {
		t.Fatalf("degenerate run: some series never fired (totals %v %v %v %v)",
			rec.Total(metrics.Transmissions), rec.Total(metrics.CRCRejects),
			rec.Total(metrics.OverflowDrops), rec.Total(metrics.TTLExpiries))
	}

	// Per-round sums reconcile with the totals, and the per-round energy
	// series sums to the engine's Eq. 3 total.
	ts := rec.Series()
	for id := metrics.Created; id <= metrics.TTLExpiries; id++ {
		var sum int64
		for _, v := range ts.Int(id) {
			sum += v
		}
		if sum != rec.Total(id) {
			t.Errorf("%s: per-round sum %d != total %d", rec.Registry().IntName(id), sum, rec.Total(id))
		}
	}
	var joules float64
	for _, v := range ts.Float(metrics.EnergyJ) {
		joules += v
	}
	want := cnt.Energy.EnergyJ(energy.NoCLink025)
	if math.Abs(joules-want) > 1e-12*want {
		t.Errorf("energy_j: per-round sum %g J != core total %g J", joules, want)
	}
}

// TestMetricsOnEventUnknownKindPanics pins the exhaustive-switch
// contract: an event kind with no series mapping is a programming error,
// not a silent undercount.
func TestMetricsOnEventUnknownKindPanics(t *testing.T) {
	rec := metrics.NewRecorder(metrics.Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("Recorder.OnEvent swallowed an unknown core.EventKind")
		}
	}()
	rec.OnEvent(core.Event{Kind: core.EventKind(250), Round: 1})
}

// TestMetricsInstallChains verifies Install composes with hooks the
// application already set, rather than replacing them.
func TestMetricsInstallChains(t *testing.T) {
	g := topology.NewGrid(2, 2)
	appEvents, appRounds := 0, 0
	cfg := core.Config{
		Topo: g, P: 1, TTL: 4, MaxRounds: 16, Seed: 1,
		OnEvent:    func(core.Event) { appEvents++ },
		OnRoundEnd: func(int, *core.Network) { appRounds++ },
	}
	rec := metrics.NewRecorder(metrics.Config{Rounds: 16})
	rec.Install(&cfg)
	net, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Inject(0, packet.Broadcast, 0, nil)
	for i := 0; i < 3; i++ {
		net.Step()
	}
	if appEvents == 0 {
		t.Error("application OnEvent hook lost after Install")
	}
	if appRounds != 3 {
		t.Errorf("application OnRoundEnd hook called %d times, want 3", appRounds)
	}
	if rec.Total(metrics.Transmissions) == 0 {
		t.Error("recorder saw no transmissions through the chained hook")
	}
	if rec.Rounds() != 3 {
		t.Errorf("recorder highest round %d, want 3", rec.Rounds())
	}
}

// flatSeries builds a TimeSeries whose Transmissions series is vals and
// every other series is zero, for exercising Merge arithmetic directly.
func flatSeries(reg *metrics.Registry, vals []int64) *metrics.TimeSeries {
	ts := &metrics.TimeSeries{
		Reg:    reg,
		Rounds: len(vals) - 1,
		Ints:   make([][]int64, reg.NumInt()),
		Floats: make([][]float64, reg.NumFloat()),
	}
	for i := range ts.Ints {
		ts.Ints[i] = make([]int64, len(vals))
	}
	for i := range ts.Floats {
		ts.Floats[i] = make([]float64, len(vals))
	}
	copy(ts.Ints[metrics.Transmissions], vals)
	return ts
}

// TestMetricsMergeStats checks the per-round fold: N, exact Sum,
// mean/min/max, the CI half-width, and the ragged-tail rule (replicas
// that stopped early drop out of later rounds' statistics).
func TestMetricsMergeStats(t *testing.T) {
	reg := metrics.NewRegistry()
	a, err := metrics.Merge([]*metrics.TimeSeries{
		flatSeries(reg, []int64{0, 2, 4}),
		flatSeries(reg, []int64{0, 4, 8, 6}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Replicas != 2 || a.Rounds != 3 {
		t.Fatalf("Replicas %d Rounds %d, want 2 and 3", a.Replicas, a.Rounds)
	}
	tx := a.Int(metrics.Transmissions)
	r1 := tx[1]
	if r1.N != 2 || r1.Sum != 6 || r1.Mean != 3 || r1.Min != 2 || r1.Max != 4 {
		t.Errorf("round 1 stat %+v, want N=2 Sum=6 Mean=3 Min=2 Max=4", r1)
	}
	// sd of {2, 4} is sqrt(2); CI95 = 1.96*sqrt(2)/sqrt(2) = 1.96.
	if math.Abs(r1.CI95-1.96) > 1e-12 {
		t.Errorf("round 1 CI95 %g, want 1.96", r1.CI95)
	}
	// Round 3 exists only in the longer replica: a one-sample tail.
	r3 := tx[3]
	if r3.N != 1 || r3.Sum != 6 || r3.Mean != 6 || r3.CI95 != 0 {
		t.Errorf("ragged-tail stat %+v, want N=1 Sum=6 Mean=6 CI95=0", r3)
	}
}

// TestMetricsMergeValidation checks Merge rejects empty input and
// replicas recorded under different registry definitions.
func TestMetricsMergeValidation(t *testing.T) {
	if _, err := metrics.Merge(nil); err == nil {
		t.Error("Merge(nil) succeeded, want error")
	}
	other := metrics.NewRegistry()
	other.AddInt("retries")
	_, err := metrics.Merge([]*metrics.TimeSeries{
		flatSeries(metrics.NewRegistry(), []int64{0, 1}),
		flatSeries(other, []int64{0, 1}),
	})
	if err == nil {
		t.Error("Merge across mismatched registries succeeded, want error")
	}
}

// TestMetricsCustomSeries exercises registry extension and the manual
// AddInt/SetFloat recording path.
func TestMetricsCustomSeries(t *testing.T) {
	reg := metrics.NewRegistry()
	retries := reg.AddInt("retries")
	load := reg.AddFloat("load")
	if reg.IntName(retries) != "retries" || reg.FloatName(load) != "load" {
		t.Fatalf("registry names %q/%q, want retries/load",
			reg.IntName(retries), reg.FloatName(load))
	}
	rec := metrics.NewRecorder(metrics.Config{Rounds: 8, Registry: reg})
	rec.AddInt(retries, 3, 2)
	rec.AddInt(retries, 5, 1)
	rec.SetFloat(load, 5, 0.75)
	if rec.Total(retries) != 3 {
		t.Errorf("custom series total %d, want 3", rec.Total(retries))
	}
	ts := rec.Series()
	if ts.Rounds != 5 {
		t.Fatalf("recorded rounds %d, want 5", ts.Rounds)
	}
	if got := ts.Int(retries); got[3] != 2 || got[5] != 1 {
		t.Errorf("custom int series %v, want 2 at round 3 and 1 at round 5", got)
	}
	if got := ts.Float(load)[5]; got != 0.75 {
		t.Errorf("custom float series at round 5 = %g, want 0.75", got)
	}
}

// TestMetricsRecorderGrowth checks recording past the preallocated bound
// grows the tables instead of dropping data.
func TestMetricsRecorderGrowth(t *testing.T) {
	rec := metrics.NewRecorder(metrics.Config{Rounds: 4})
	rec.OnEvent(core.Event{Kind: core.EvTransmit, Round: 100})
	if rec.Rounds() != 100 {
		t.Fatalf("recorded rounds %d, want 100", rec.Rounds())
	}
	if got := rec.Series().Int(metrics.Transmissions)[100]; got != 1 {
		t.Fatalf("series value after growth %d, want 1", got)
	}
}

// TestRecorderStepAllocs pins the tentpole's zero-allocation acceptance
// criterion: with a Recorder installed and its tables preallocated to
// cover the run, the steady-state Step still allocates nothing (the same
// bar core's TestStepAllocsSteadyState sets for the bare engine).
// Deliberately NOT named TestMetrics*: the CI race gate runs the
// TestMetrics* set, and race instrumentation skews allocation counts.
func TestRecorderStepAllocs(t *testing.T) {
	g := topology.NewGrid(8, 8)
	cfg := core.Config{Topo: g, P: 0.5, TTL: 255, MaxRounds: 100000, Seed: 1}
	rec := metrics.NewRecorder(metrics.Config{Rounds: 2048, Tech: energy.NoCLink025})
	rec.Install(&cfg)
	n, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := n.Inject(0, packet.Broadcast, 0, make([]byte, 16))
	rec.Watch(id)
	for i := 0; i < 60; i++ {
		n.Step()
	}
	if got := n.Aware(id); got != g.Tiles() {
		t.Fatalf("steady state not reached: %d/%d tiles aware", got, g.Tiles())
	}
	if allocs := testing.AllocsPerRun(100, n.Step); allocs > 2 {
		t.Fatalf("instrumented steady-state Step allocates %v per round, want <= 2", allocs)
	}
}
