package core

// Property tests for epoch-based MsgID recycling (Config.Recycle). The
// shard/diff suites pin that recycling never breaks determinism; this
// file pins the lifecycle semantics themselves, randomized over the same
// topology × fault population:
//
//   - a retired-and-reissued slot never resurrects the old message's
//     awareness (Aware frozen at the ledger value, AwareAt empty, the
//     reissued ID distinct from every retired one);
//   - wire frames carrying a stale generation are dropped as ghosts and
//     counted, never decoded into the slot's new tenant;
//   - under continuous churn the slot table is bounded by the peak live
//     population, not by the number of messages ever issued.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

// recycleMasterSeed roots the recycling case generator, independent of
// the diff population.
const recycleMasterSeed = 0x4ec1c1e

const (
	recycleCases      = 60
	recycleCasesShort = 10
)

// genRecycleCase builds one randomized recycling scenario: like genCase
// but with Recycle enabled, a longer run, a denser injection schedule and
// TTLs short enough that messages actually die and retire mid-run.
func genRecycleCase(idx int) diffConfig {
	g := rng.New(recycleMasterSeed).Split(uint64(idx))
	topo := genTopology(g)
	tiles := topo.Tiles()

	cfgTemplate := Config{
		Topo:                 topo,
		P:                    0.2 + 0.8*g.Float64(),
		TTL:                  uint8(3 + g.Intn(6)),
		MaxRounds:            1000,
		Seed:                 g.Uint64(),
		Fault:                genFault(g, tiles),
		DisableDedup:         g.Bool(0.15),
		StopSpreadOnDelivery: g.Bool(0.15),
		Recycle:              true,
	}
	if cfgTemplate.DisableDedup || g.Bool(0.2) {
		cfgTemplate.BufferCap = 1 + g.Intn(4)
	}

	rounds := 30 + g.Intn(30)
	var injections []injection
	for i, k := 0, 6+g.Intn(8); i < k; i++ {
		in := injection{
			beforeRound: g.Intn(rounds - 5),
			src:         packet.TileID(g.Intn(tiles)),
			dst:         packet.TileID(g.Intn(tiles)),
			kind:        packet.Kind(g.Intn(3)),
		}
		if g.Bool(0.5) {
			in.dst = packet.Broadcast
		}
		if g.Bool(0.6) {
			in.payload = fmt.Sprintf("recycle-%d-%d", idx, i)
		}
		injections = append(injections, in)
	}

	sc := shardScenario{
		name:   fmt.Sprintf("recycle-%03d", idx),
		cfg:    func() Config { return cfgTemplate },
		inject: injections,
		rounds: rounds,
	}
	return diffConfig{sc: sc, resumeK: 1 + g.Intn(rounds-1)}
}

// TestRecycleDifferentialRandomConfigs extends the differential contract
// to recycling runs: sequential, sharded (2 and 5) and snapshot-resumed
// executions of every generated case must produce identical records —
// retirement order, slot reuse and the IDs of late-injected messages
// included (IDs are sampled into the record via Aware/AwareAt). The
// population must actually retire messages, or the pass proves nothing;
// the aggregate check at the end guards against that going stale.
func TestRecycleDifferentialRandomConfigs(t *testing.T) {
	cases := recycleCases
	if testing.Short() {
		cases = recycleCasesShort
	}
	totalRetired := 0
	for idx := 0; idx < cases; idx++ {
		dc := genRecycleCase(idx)
		t.Run(dc.sc.name, func(t *testing.T) {
			want := runShardScenario(t, dc.sc, 1)
			totalRetired += want.cnt.Retired
			for _, shards := range []int{2, 5} {
				got := runShardScenario(t, dc.sc, shards)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d diverged from sequential: %s",
						shards, firstEventDiff(want.events, got.events))
				}
			}
			got, _ := runResumedScenario(t, dc.sc, dc.resumeK, 1, 1)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("snapshot-resume at k=%d diverged from straight run: %s",
					dc.resumeK, firstEventDiff(want.events, got.events))
			}
		})
	}
	if totalRetired == 0 {
		t.Fatal("no generated case retired a single message — the population no longer exercises recycling")
	}
}

// TestRecycleNoResurrection is the lifecycle property pass: stepping
// randomized recycling runs round by round, it watches the slot table for
// generation bumps (= retirements) and asserts, for every retired ID at
// every later round, that Aware stays frozen at the ledger value, that no
// tile reports awareness, and that no later-issued ID ever equals a
// retired one.
func TestRecycleNoResurrection(t *testing.T) {
	cases := 20
	if testing.Short() {
		cases = 5
	}
	for idx := 0; idx < cases; idx++ {
		dc := genRecycleCase(idx)
		t.Run(dc.sc.name, func(t *testing.T) {
			cfg := dc.sc.cfg()
			n := mustNet(t, cfg)
			tiles := n.Topology().Tiles()

			lastGen := map[uint32]uint32{}
			frozen := map[packet.MsgID]int{} // retired ID -> Aware at retirement
			var issued []packet.MsgID

			for round := 0; round < dc.sc.rounds; round++ {
				for _, in := range dc.sc.inject {
					if in.beforeRound != round {
						continue
					}
					var payload []byte
					if in.payload != "" {
						payload = []byte(in.payload)
					}
					id := mustInject(t, n, in.src, in.dst, in.kind, payload)
					if _, wasRetired := frozen[id]; wasRetired {
						t.Fatalf("round %d: reissued ID %d equals a retired ID", round, id)
					}
					issued = append(issued, id)
					if g := msgGen(id); g != lastGen[msgSlot(id)] {
						t.Fatalf("round %d: ID %d issued under generation %d, slot is at %d",
							round, id, g, lastGen[msgSlot(id)])
					}
					lastGen[msgSlot(id)] = msgGen(id)
				}
				n.Step()

				// Detect retirements: a slot whose generation moved past the
				// last issue binds no message; the old packed ID is dead.
				for s := uint32(1); s <= uint32(n.issuedSlots()); s++ {
					if g := n.tbl.gens[s]; g > lastGen[s] {
						old := packMsgID(s, lastGen[s])
						frozen[old] = n.Aware(old)
						lastGen[s] = g
					}
				}
				for id, want := range frozen {
					if got := n.Aware(id); got != want {
						t.Fatalf("round %d: retired message %d Aware moved %d -> %d",
							round, id, want, got)
					}
					for ti := 0; ti < tiles; ti++ {
						if n.AwareAt(id, packet.TileID(ti)) {
							t.Fatalf("round %d: retired message %d resurrected awareness at tile %d",
								round, id, ti)
						}
					}
				}
			}
			if n.Counters().Retired != len(frozen) {
				t.Fatalf("Counters.Retired = %d, observed %d generation bumps",
					n.Counters().Retired, len(frozen))
			}
			// Every frozen value must match the ledger (absent = 0).
			for id, want := range frozen {
				if got := int(n.tbl.retired[id]); got != want {
					t.Fatalf("retired ledger holds %d for message %d, Aware froze at %d", got, id, want)
				}
			}
			_ = issued
		})
	}
}

// TestRecycleStaleGenerationGhostFrame pins the ghost path end to end: a
// well-formed wire frame whose ID names a retired generation of a live
// slot must be discarded as a detected upset, counted in GhostFrames, and
// must not touch the slot's new tenant.
func TestRecycleStaleGenerationGhostFrame(t *testing.T) {
	cfg := Config{
		Topo: topology.NewGrid(2, 1), P: 1, TTL: 2, MaxRounds: 1000, Seed: 7,
		Fault:   fault.Model{LiteralUpsets: true},
		Recycle: true,
	}
	var events []Event
	cfg.OnEvent = func(ev Event) { events = append(events, ev) }
	n := mustNet(t, cfg)

	first, err := n.Inject(0, packet.Broadcast, 0, []byte("gen-0"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8 && n.current(first); i++ {
		n.Step()
	}
	if n.current(first) {
		t.Fatal("first message never retired; cannot build a stale-generation frame")
	}
	second, err := n.Inject(0, packet.Broadcast, 0, []byte("gen-1"))
	if err != nil {
		t.Fatal(err)
	}
	if msgSlot(second) != msgSlot(first) || second == first {
		t.Fatalf("slot not recycled: first ID %d, second ID %d", first, second)
	}

	ghost := &packet.Packet{ID: first, Src: 0, Dst: 1, TTL: 30}
	frame, err := packet.Encode(ghost)
	if err != nil {
		t.Fatal(err)
	}
	base := n.Counters()
	events = nil
	n.tiles[1].ring.schedule(n.Round(), n.Round()+1, arrival{frame: frame, pkt: packet.Packet{ID: first}}, nil)
	n.rebuildOccupancy() // white-box ring injection bypasses the occupancy upkeep
	n.Step()

	c := n.Counters()
	if c.UpsetsDetected != base.UpsetsDetected+1 {
		t.Fatalf("UpsetsDetected = %d, want %d (stale generation)", c.UpsetsDetected, base.UpsetsDetected+1)
	}
	if c.GhostFrames != base.GhostFrames+1 {
		t.Fatalf("GhostFrames = %d, want %d", c.GhostFrames, base.GhostFrames+1)
	}
	// The retired message must stay dead: no tile aware of it, no copy of
	// it buffered anywhere (the new tenant's organic traffic is fine).
	for ti := 0; ti < 2; ti++ {
		if n.AwareAt(first, packet.TileID(ti)) {
			t.Fatalf("ghost frame resurrected awareness of retired message %d at tile %d", first, ti)
		}
	}
	for _, p := range n.tiles[1].sendBuf {
		if p.ID == first {
			t.Fatalf("ghost frame buffered a copy of retired message %d", first)
		}
	}
	found := false
	for _, ev := range events {
		if ev.Kind == EvUpset && ev.Tile == 1 && ev.Msg == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no EvUpset(Msg=0) emitted for the stale-generation frame; events: %+v", events)
	}
}

// TestRecycleBoundedSlots is the tentpole's memory claim in miniature:
// under continuous churn (fresh injections every round, short TTL) the
// slot table stops growing once it covers the peak live population, while
// the same workload with recycling off grows the table by every message
// ever issued.
func TestRecycleBoundedSlots(t *testing.T) {
	const rounds, perRound = 300, 4
	churn := func(recycle bool) *Network {
		cfg := Config{
			Topo: topology.NewGrid(8, 8), P: 0.6, TTL: 5,
			MaxRounds: 10000, Seed: 99, Recycle: recycle,
		}
		n := mustNet(t, cfg)
		for round := 0; round < rounds; round++ {
			for i := 0; i < perRound; i++ {
				src := packet.TileID((round*perRound + i) % 64)
				if _, err := n.Inject(src, packet.Broadcast, 0, nil); err != nil {
					t.Fatal(err)
				}
			}
			n.Step()
		}
		return n
	}

	off := churn(false)
	if got := off.issuedSlots(); got != rounds*perRound {
		t.Fatalf("recycle off: %d slots for %d messages", got, rounds*perRound)
	}

	on := churn(true)
	// TTL 5 bounds a message's life to ~6 rounds, so the live population
	// is O(perRound × TTL); 4× that is a generous ceiling that the old
	// O(ever-issued) representation exceeds 15-fold.
	const bound = 4 * perRound * 6
	if got := on.issuedSlots(); got > bound {
		t.Fatalf("recycle on: slot table grew to %d under churn, want <= %d", got, bound)
	}
	if retired := on.Counters().Retired; retired < rounds*perRound/2 {
		t.Fatalf("only %d of %d churned messages retired", retired, rounds*perRound)
	}
}
