package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/snapshot"
	"repro/internal/topology"
)

// This file pins the checkpoint/resume contract (ISSUE 5 acceptance
// criteria): Restore(Snapshot(run to round k)) → run to round n is
// bit-identical to an uninterrupted n-round run — same event sequence,
// same deliveries, same counters, same aware tables — for any k, any
// shard count on either side of the checkpoint, and any fault-knob
// combination. Two oracles enforce it: the observable record compared
// with reflect.DeepEqual, and whole-state equality via the snapshot
// bytes both runs produce at round n (two states that serialize
// identically under a deterministic encoder ARE identical, in-flight
// arrivals and RNG streams included).

// everythingScenario enables every fault knob at once — literal upsets
// with a burst error model, overflow, link and tile crashes with a
// protect list, synchronization skew — plus a buffer cap, so a resumed
// run has to replay every code path the engine has.
func everythingScenario() shardScenario {
	return shardScenario{
		name: "everything",
		cfg: func() Config {
			return Config{
				Topo: topology.NewGrid(6, 6), P: 0.55, TTL: 10,
				BufferCap: 4, MaxRounds: 1000, Seed: 99,
				Fault: fault.Model{
					PUpset: 0.12, POverflow: 0.06, PLinkCrash: 0.04,
					DeadTiles: 2, SigmaSync: 0.8,
					LiteralUpsets: true, ErrorModel: packet.RandomBitError,
					Protect: []packet.TileID{0, 21, 35},
				},
			}
		},
		inject: []injection{
			{beforeRound: 0, src: 0, dst: packet.Broadcast, payload: "kickoff"},
			{beforeRound: 5, src: 35, dst: 0, kind: 1, payload: "mid-run unicast"},
			{beforeRound: 11, src: 21, dst: packet.Broadcast, payload: "late wave"},
		},
		rounds: 24,
	}
}

// resumableScenarios is the shard-invariance scenario set minus the one
// with attached Processes: IP-core state is the application's to
// checkpoint (see the snapshot.go file comment), so process scenarios
// cannot round-trip through Restore.
func resumableScenarios(tb testing.TB) []shardScenario {
	var out []shardScenario
	for _, sc := range shardScenarios(tb) {
		if sc.name == "grid-processes-receiver" {
			continue
		}
		out = append(out, sc)
	}
	return append(out, everythingScenario())
}

// snapshotBytes serializes n and fails the test on error.
func snapshotBytes(tb testing.TB, n *Network) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := n.Snapshot(&buf); err != nil {
		tb.Fatalf("Snapshot: %v", err)
	}
	return buf.Bytes()
}

// runResumedScenario replays sc but interrupts it: it runs shardsBefore-
// sharded to round k, snapshots, restores the snapshot into a fresh
// shardsAfter-sharded network, and finishes the run there. The returned
// record spans the whole run (events recorded on both sides of the
// checkpoint concatenate), plus the final-state snapshot bytes for the
// whole-state oracle.
func runResumedScenario(tb testing.TB, sc shardScenario, k, shardsBefore, shardsAfter int) (shardSnapshot, []byte) {
	tb.Helper()
	var snap shardSnapshot
	hook := func(cfg *Config) {
		cfg.OnEvent = func(ev Event) { snap.events = append(snap.events, ev) }
		cfg.OnDeliver = func(tl packet.TileID, p *packet.Packet, round int) {
			snap.delivers = append(snap.delivers, deliverRec{
				tile: tl, round: round, id: p.ID, payload: string(p.Payload),
			})
		}
	}
	inject := func(n *Network, round int, ids []packet.MsgID) []packet.MsgID {
		for _, in := range sc.inject {
			if in.beforeRound != round {
				continue
			}
			var payload []byte
			if in.payload != "" {
				payload = []byte(in.payload)
			}
			ids = append(ids, mustInject(tb, n, in.src, in.dst, in.kind, payload))
		}
		return ids
	}

	cfg := sc.cfg()
	cfg.Shards = shardsBefore
	hook(&cfg)
	n, err := New(cfg)
	if err != nil {
		tb.Fatalf("%s: New: %v", sc.name, err)
	}
	if sc.setup != nil {
		sc.setup(n)
	}
	var ids []packet.MsgID
	for round := 0; round < k; round++ {
		ids = inject(n, round, ids)
		n.Step()
	}

	ckpt := snapshotBytes(tb, n)

	cfg2 := sc.cfg()
	cfg2.Shards = shardsAfter
	hook(&cfg2)
	n2, err := Restore(bytes.NewReader(ckpt), cfg2)
	if err != nil {
		tb.Fatalf("%s: Restore at k=%d: %v", sc.name, k, err)
	}
	if sc.setup != nil {
		sc.setup(n2) // routers and forward limits are the caller's to re-apply
	}
	if n2.Round() != k {
		tb.Fatalf("%s: restored network at round %d, want %d", sc.name, n2.Round(), k)
	}
	for round := k; round < sc.rounds; round++ {
		ids = inject(n2, round, ids)
		n2.Step()
	}

	snap.cnt = n2.Counters()
	snap.rounds = n2.Round()
	tiles := n2.Topology().Tiles()
	for _, id := range ids {
		snap.aware = append(snap.aware, n2.Aware(id))
		for ti := 0; ti < tiles; ti++ {
			snap.awareAt = append(snap.awareAt, n2.AwareAt(id, packet.TileID(ti)))
		}
	}
	return snap, snapshotBytes(tb, n2)
}

// compareRuns asserts two full-run records are identical.
func compareRuns(tb testing.TB, label string, want, got shardSnapshot) {
	tb.Helper()
	if !reflect.DeepEqual(got.events, want.events) {
		tb.Fatalf("%s: event log diverged: %s", label, firstEventDiff(want.events, got.events))
	}
	if !reflect.DeepEqual(got.delivers, want.delivers) {
		tb.Fatalf("%s: delivery log diverged\nstraight: %v\nresumed:  %v",
			label, want.delivers, got.delivers)
	}
	if got.cnt != want.cnt {
		tb.Fatalf("%s: counters diverged\nstraight: %+v\nresumed:  %+v", label, want.cnt, got.cnt)
	}
	if !reflect.DeepEqual(got.aware, want.aware) {
		tb.Fatalf("%s: Aware counts diverged\nstraight: %v\nresumed:  %v",
			label, want.aware, got.aware)
	}
	if !reflect.DeepEqual(got.awareAt, want.awareAt) {
		tb.Fatalf("%s: AwareAt tables diverged", label)
	}
	if got.rounds != want.rounds {
		tb.Fatalf("%s: rounds %d != %d", label, got.rounds, want.rounds)
	}
}

// TestSnapshotResumeBitIdentity is the acceptance-criteria test: for
// every resumable scenario — including the everything scenario with all
// fault knobs enabled — interrupting at k ∈ {1, mid, n−1} and resuming
// at shard counts {1, 4} (both sides of the checkpoint) reproduces the
// straight-through run exactly, down to the final snapshot bytes.
func TestSnapshotResumeBitIdentity(t *testing.T) {
	for _, sc := range resumableScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			straight := runShardScenario(t, sc, 1)
			if len(straight.events) == 0 {
				t.Fatal("scenario produced no events — not a meaningful resume check")
			}
			// Final-state bytes of the uninterrupted run, for the
			// whole-state oracle.
			wantBytes := func() []byte {
				cfg := sc.cfg()
				n, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if sc.setup != nil {
					sc.setup(n)
				}
				for round := 0; round < sc.rounds; round++ {
					for _, in := range sc.inject {
						if in.beforeRound != round {
							continue
						}
						var payload []byte
						if in.payload != "" {
							payload = []byte(in.payload)
						}
						mustInject(t, n, in.src, in.dst, in.kind, payload)
					}
					n.Step()
				}
				return snapshotBytes(t, n)
			}()
			for _, k := range []int{1, sc.rounds / 2, sc.rounds - 1} {
				for _, shards := range [][2]int{{1, 1}, {1, 4}, {4, 1}, {4, 4}} {
					got, gotBytes := runResumedScenario(t, sc, k, shards[0], shards[1])
					label := sprintLabel(sc.name, k, shards)
					compareRuns(t, label, straight, got)
					if !bytes.Equal(gotBytes, wantBytes) {
						t.Fatalf("%s: final snapshot bytes differ from straight run", label)
					}
				}
				if testing.Short() {
					break // one k per scenario keeps -short fast
				}
			}
		})
	}
}

func sprintLabel(name string, k int, shards [2]int) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteString("/k=")
	writeInt(&b, k)
	b.WriteString("/shards=")
	writeInt(&b, shards[0])
	b.WriteString("→")
	writeInt(&b, shards[1])
	return b.String()
}

func writeInt(b *strings.Builder, v int) {
	if v >= 10 {
		writeInt(b, v/10)
	}
	b.WriteByte(byte('0' + v%10))
}

// TestSnapshotDeterministic pins the whole-state oracle's premise: two
// networks in identical states must serialize to identical bytes.
func TestSnapshotDeterministic(t *testing.T) {
	sc := everythingScenario()
	run := func() []byte {
		n, err := New(sc.cfg())
		if err != nil {
			t.Fatal(err)
		}
		mustInject(t, n, 0, packet.Broadcast, 0, []byte("det"))
		for i := 0; i < 12; i++ {
			n.Step()
		}
		return snapshotBytes(t, n)
	}
	if a, b := run(), run(); !bytes.Equal(a, b) {
		t.Fatal("identical runs produced different snapshot bytes")
	}
}

// TestRestoreRejectsDifferentConfig pins the digest guard: a checkpoint
// must not resume under a configuration that would change behavior.
func TestRestoreRejectsDifferentConfig(t *testing.T) {
	base := Config{Topo: topology.NewGrid(4, 4), P: 0.5, TTL: 8, MaxRounds: 100, Seed: 7}
	n, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	mustInject(t, n, 0, packet.Broadcast, 0, nil)
	for i := 0; i < 5; i++ {
		n.Step()
	}
	ckpt := snapshotBytes(t, n)

	mutations := map[string]func(*Config){
		"seed":     func(c *Config) { c.Seed = 8 },
		"p":        func(c *Config) { c.P = 0.6 },
		"ttl":      func(c *Config) { c.TTL = 9 },
		"topology": func(c *Config) { c.Topo = topology.NewGrid(4, 5) },
		"fault":    func(c *Config) { c.Fault.PUpset = 0.1 },
		"dedup":    func(c *Config) { c.DisableDedup = true },
	}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		if _, err := Restore(bytes.NewReader(ckpt), cfg); err == nil {
			t.Errorf("restore under mutated config %q succeeded, want digest error", name)
		}
	}

	// Shards and function fields are deliberately outside the digest.
	cfg := base
	cfg.Shards = 4
	cfg.OnEvent = func(Event) {}
	if _, err := Restore(bytes.NewReader(ckpt), cfg); err != nil {
		t.Errorf("restore with different Shards/hooks failed: %v", err)
	}
}

// TestRestoreRejectsInconsistentState pins the post-CRC validation: a
// structurally valid container whose payload violates engine invariants
// must be rejected, not trusted. Each mutation re-encodes a legitimate
// payload with one field broken and re-seals it in a fresh container, so
// only RestoreSection's own checks can catch it.
func TestRestoreRejectsInconsistentState(t *testing.T) {
	cfg := Config{Topo: topology.NewGrid(3, 3), P: 0.6, TTL: 6, MaxRounds: 100, Seed: 5}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustInject(t, n, 0, packet.Broadcast, 0, []byte("x"))
	for i := 0; i < 3; i++ {
		n.Step()
	}

	reseal := func(payload []byte) []byte {
		var buf bytes.Buffer
		enc := snapshot.NewEncoder(&buf)
		w := enc.Section(snapshot.SecCore)
		w.WriteRaw(payload)
		if err := enc.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	good := func() []byte {
		w := snapshot.NewWriter()
		n.EncodeState(w)
		return w.Bytes()
	}()

	if _, err := Restore(bytes.NewReader(reseal(good)), cfg); err != nil {
		t.Fatalf("resealed unmodified payload rejected: %v", err)
	}

	// The digest lives at bytes [offset, offset+4) after the uvarint
	// payload version; flipping it must fail even though the container
	// CRC is valid.
	bad := append([]byte(nil), good...)
	bad[1] ^= 0xff // first digest byte (version 1 encodes as one byte)
	if _, err := Restore(bytes.NewReader(reseal(bad)), cfg); err == nil {
		t.Error("corrupted digest accepted")
	}

	// Truncated payload: a valid container whose core section ends
	// mid-structure.
	if _, err := Restore(bytes.NewReader(reseal(good[:len(good)-3])), cfg); err == nil {
		t.Error("truncated payload accepted")
	}

	// Trailing garbage after a complete payload.
	if _, err := Restore(bytes.NewReader(reseal(append(append([]byte(nil), good...), 1, 2, 3))), cfg); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// TestSnapshotOfQuiescentAndFreshNetworks covers the edges: a network
// that has never stepped, and one that has fully quiesced.
func TestSnapshotOfQuiescentAndFreshNetworks(t *testing.T) {
	cfg := Config{Topo: topology.NewGrid(3, 3), P: 1, TTL: 4, MaxRounds: 100, Seed: 2}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh: round 0, nothing injected.
	n2, err := Restore(bytes.NewReader(snapshotBytes(t, n)), cfg)
	if err != nil {
		t.Fatalf("restore of fresh network: %v", err)
	}
	mustInject(t, n2, 0, packet.Broadcast, 0, nil)
	rounds := n2.Drain(50)

	// The same run without the checkpoint detour must agree.
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustInject(t, m, 0, packet.Broadcast, 0, nil)
	if want := m.Drain(50); rounds != want || m.Counters() != n2.Counters() {
		t.Fatalf("fresh-restore run diverged: %d rounds vs %d, %+v vs %+v",
			rounds, want, n2.Counters(), m.Counters())
	}

	// Quiescent: everything expired, ring empty, buffers empty.
	q, err := Restore(bytes.NewReader(snapshotBytes(t, m)), cfg)
	if err != nil {
		t.Fatalf("restore of quiescent network: %v", err)
	}
	if !q.Quiescent() || q.Round() != m.Round() || q.Counters() != m.Counters() {
		t.Fatal("quiescent state did not round-trip")
	}
}
