// Package core implements on-chip stochastic communication — the thesis'
// primary contribution (Chapter 3).
//
// Every tile of the NoC runs the gossip algorithm of Fig. 3-4 once per
// broadcast round:
//
//	send_buffer ← send_buffer ∪ {m received | CRC_OK(m)}   (deduplicated)
//	∀ m ∈ send_buffer: m.TTL ← m.TTL − 1
//	send_buffer ← send_buffer \ {m | m.TTL = 0}             (garbage collect)
//	for all m ∈ send_buffer, for each output port:
//	        send m on the port with probability p
//
// The engine is a synchronous round-based simulator: deterministic under a
// seed, with the Chapter 2 fault model (package fault) layered onto every
// transmission and reception. Tiles host application logic through the
// Process interface; the IP core is fully decoupled from the communication
// fabric, which is the architectural point of the thesis ("separation
// between computation and communication").
//
// The round engine is the hot path of every Monte Carlo replica, so its
// steady state allocates (almost) nothing: per-message state lives in
// slot-major bitset tables indexed by the slot half of the MsgID
// (table.go), in-flight copies travel by value through small per-tile
// arrival rings (ring.go), and per-tile contexts and neighbor lists are
// built once at New. With Config.Recycle the tables are additionally
// bounded by the *live* message population — expired-everywhere messages
// are retired at round barriers and their IDs recycled under a fresh
// generation tag — which is what lets the engine sustain mega-meshes
// (512×512 and beyond). See DESIGN.md, "Engine internals & performance"
// and "Message-state lifecycle".
package core

import (
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Process is the IP core mapped onto one tile. Implementations receive a
// Ctx giving access to the tile's mailbox and send port. Round is invoked
// once per gossip round, after delivery; a Process on a crashed tile is
// never invoked.
type Process interface {
	// Init is called once before round 0.
	Init(ctx *Ctx)
	// Round is called once per gossip round.
	Round(ctx *Ctx)
}

// Completer is optionally implemented by Processes that know when the
// application has finished (e.g. the Master after collecting all partial
// sums). The network reports completion when every Completer is done.
type Completer interface {
	Done() bool
}

// Receiver is optionally implemented by Processes that want messages
// pushed at the instant of delivery (within the round the packet arrives)
// instead of polling Delivered on their next Round. Latency-sensitive
// completion detection should use Receive: the round in which the last
// result arrives is the application latency the thesis reports.
type Receiver interface {
	Receive(ctx *Ctx, p *packet.Packet)
}

// Config parameterizes one stochastic-communication network.
type Config struct {
	// Topo is the interconnect fabric (required).
	Topo topology.Topology
	// Fault is the Chapter 2 failure model (zero value = fault free).
	Fault fault.Model
	// P is the per-port forwarding probability; p = 1 degenerates to
	// flooding (latency-optimal, energy-worst).
	P float64
	// TTL is the initial time-to-live of newly created messages, in
	// rounds: each buffered copy ages once per round and is
	// garbage-collected at zero (§3.2.2).
	TTL uint8
	// BufferCap bounds the send buffer; 0 means unbounded. On overflow
	// the oldest buffered message is dropped (§4.2).
	BufferCap int
	// MaxRounds is the round budget: a run that has not completed after
	// this many rounds is aborted (defaults to 10000).
	MaxRounds int
	// Seed makes the run reproducible.
	Seed uint64
	// Shards partitions the tiles into this many contiguous shards and
	// runs the per-tile phases of every round shard-parallel; 0 or 1
	// selects the sequential engine. Results are bit-identical at any
	// shard count (see DESIGN.md, "Sharded engine") — Shards is purely a
	// wall-clock knob for large meshes. Counts above the tile count are
	// clamped. One behavioural caveat: observer hooks (OnEvent,
	// OnDeliver) fire after the phase barrier instead of mid-phase, so a
	// hook that reads network state (Aware, Counters) sees end-of-phase
	// values; hooks that only record their arguments — every hook in
	// this repository — are unaffected. PortWeight and SetRouter
	// functions must be pure (they already must be) and are called
	// concurrently when Shards > 1.
	Shards int
	// Recycle bounds the message tables by the live message population
	// instead of the ever-issued one: a message whose buffered copies have
	// all expired and whose in-flight copies have drained is retired at
	// the next round barrier, and its table slot is reissued to a later
	// message under a fresh generation tag (see table.go). Long
	// continuous-injection workloads on mega-meshes need it; the default
	// (off) preserves the historical dense ID sequence, keeps Aware and
	// AwareAt answerable for the whole run, and is byte-identical to
	// engines that predate recycling. The observable difference when on:
	// MsgIDs of later messages reuse slots (so event logs differ from a
	// recycle-off run), and per-tile awareness of retired messages is
	// forgotten (AwareAt reports false; Aware still reports the final
	// count, from the retired ledger).
	Recycle bool
	// BatchDraws selects the batched forwarding-draw kernel (off by
	// default, like Recycle): on the default-router, nil-PortWeight path,
	// the per-(message, port) Bernoulli draws of phase 3 are replaced by
	// one 64-bit port mask per buffered message (degree ≤ 4) or, when
	// p·trials is small, geometric skip-sampling straight to the next
	// forwarded copy (batch.go). The kernel changes the RNG *realization*
	// — a run with the knob on consumes different random numbers than the
	// default path, so event logs differ draw for draw — but not the
	// distribution: every (message, port) pair still forwards
	// independently with probability P (exactly for the skip sampler, to
	// within 2^-17 for the mask lanes; validated against the closed-form
	// flooding recursion in internal/gossip). Tiles with a router, and
	// every tile when PortWeight is set, use the default per-port draws
	// regardless. Sharding invariance and checkpoint/resume hold under
	// the kernel; the snapshot payload records the choice and Restore
	// refuses a mismatch.
	BatchDraws bool
	// DisableDedup turns off duplicate suppression in the send buffer,
	// for the ablation study (the thesis keeps exactly one copy).
	DisableDedup bool
	// StopSpreadOnDelivery garbage-collects a unicast message everywhere
	// once its destination has received it — the idealized spread
	// termination §3.2.2 alludes to ("the spread could be terminated even
	// earlier in order to reduce the number of messages"). It models a
	// chip-wide kill signal and is used by the energy-focused
	// experiments; the default (false) is the pure TTL-bounded protocol.
	StopSpreadOnDelivery bool
	// PortWeight, if set, scales the forwarding probability per
	// (tile, port, message): the effective probability becomes
	// clamp(P·weight, 0, 1). It enables directed-gossip variants (see
	// package directed) without touching the protocol loop; nil keeps
	// the thesis' uniform ports.
	PortWeight func(from, to packet.TileID, p *packet.Packet) float64
	// OnDeliver, if set, observes every first-time delivery of a message
	// to a tile that it addresses (or any tile, for broadcasts).
	OnDeliver func(t packet.TileID, p *packet.Packet, round int)
	// OnEvent, if set, receives every protocol event (message creation,
	// transmissions, CRC rejections, overflow drops, deliveries, TTL
	// expiries) — the hook packages trace and metrics build timelines and
	// per-round series on. Leaving it nil costs nothing.
	OnEvent func(Event)
	// Observer, if set, is called at the end of every round. It is the
	// application-level hook (completion predicates, ad-hoc probes);
	// instrumentation should use OnRoundEnd so both can coexist.
	Observer func(round int, n *Network)
	// OnRoundEnd, if set, is called as the very last action of every
	// Step, after Observer — the per-round flush hook the metrics
	// recorder samples end-of-round state on (aware-tile counts, energy
	// deltas). round is the 1-based index of the round that just
	// executed. Leaving it nil costs nothing.
	OnRoundEnd func(round int, n *Network)
}

// EventKind classifies a protocol event.
type EventKind uint8

// The protocol events, in rough lifecycle order.
const (
	// EvCreated: a new message entered its origin tile's send buffer.
	EvCreated EventKind = iota
	// EvTransmit: a copy was driven onto the link Tile->Peer.
	EvTransmit
	// EvUpset: a reception was discarded as scrambled (CRC failure).
	EvUpset
	// EvOverflow: a message was lost to buffer overflow at Tile.
	EvOverflow
	// EvDeliver: first-time delivery to an addressed tile.
	EvDeliver
	// EvExpire: a buffered copy's TTL reached zero at Tile.
	EvExpire
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvCreated:
		return "created"
	case EvTransmit:
		return "transmit"
	case EvUpset:
		return "upset"
	case EvOverflow:
		return "overflow"
	case EvDeliver:
		return "deliver"
	case EvExpire:
		return "expire"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one protocol occurrence. Msg is zero for events that cannot
// name a message (an upset-scrambled frame no longer has a trustworthy
// ID).
type Event struct {
	// Round is the 1-based gossip round the event occurred in; round 0
	// identifies pre-run injections (Network.Inject before the first
	// Step).
	Round int
	// Kind classifies the event (creation, transmission, ...).
	Kind EventKind
	// Tile is where the event happened.
	Tile packet.TileID
	// Peer is the far end of the link for EvTransmit, and the source
	// tile for EvDeliver; for other kinds it repeats Tile.
	Peer packet.TileID
	// Msg names the message, or 0 when the ID is untrustworthy (a
	// CRC-rejected frame).
	Msg packet.MsgID
}

// DefaultTTL is a reasonable message lifetime for 4x4/5x5 grids: enough
// rounds for a gossip broadcast to cross the network several times over.
const DefaultTTL = 12

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Topo == nil {
		return errors.New("core: Config.Topo is required")
	}
	if c.P < 0 || c.P > 1 {
		return fmt.Errorf("core: P = %v out of [0,1]", c.P)
	}
	if c.TTL == 0 {
		return errors.New("core: TTL must be >= 1")
	}
	if c.BufferCap < 0 {
		return errors.New("core: negative BufferCap")
	}
	if c.Shards < 0 {
		return errors.New("core: negative Shards")
	}
	// The literal path serializes every transmission into a Chapter 2
	// wire frame, whose addresses are 16 bits: fabrics beyond that run on
	// the analytic path only (identical behaviour up to the CRC's
	// undetected-error probability; see fault.Model.LiteralUpsets).
	if c.Fault.LiteralUpsets && c.Topo.Tiles() > int(packet.MaxWireTile)+1 {
		return fmt.Errorf("core: LiteralUpsets needs wire-addressable tiles (%d > %d)",
			c.Topo.Tiles(), int(packet.MaxWireTile)+1)
	}
	return c.Fault.Validate()
}

// Counters aggregates the observable events of one run.
type Counters struct {
	// Transmissions and bit counts (the Eq. 3 inputs).
	Energy energy.Accounting
	// UpsetsInjected counts transmissions scrambled in flight.
	UpsetsInjected int
	// UpsetsDetected counts receptions discarded by the CRC check (on the
	// analytic path this equals the injected upsets that reached a live
	// receiver).
	UpsetsDetected int
	// OverflowDrops counts messages lost to buffer overflow.
	OverflowDrops int
	// SlippedDeliveries counts receptions delayed by synchronization
	// skew.
	SlippedDeliveries int
	// Deliveries counts first-time deliveries to addressed tiles.
	Deliveries int
	// DeliveredPayloadBits is the useful payload delivered, for the
	// J-per-useful-bit metric.
	DeliveredPayloadBits int
	// Duplicates counts received copies suppressed by dedup.
	Duplicates int
	// Retired counts messages whose table slot was reclaimed by ID
	// recycling (Config.Recycle); always 0 with recycling off.
	Retired int
	// GhostFrames counts CRC-escaped wire frames that decoded cleanly but
	// named a message generation that no longer (or never) existed — the
	// stale-ID aliases the generation tag exists to catch. Each is also a
	// detected upset.
	GhostFrames int
}

// tile is the per-tile runtime state: the Fig. 3-5 hardware interface.
// All hot-path state is flat: the send buffer owns its packets by value,
// dedup and the delivery-once filter are bit flags indexed by MsgID, and
// in-flight copies sit in a per-tile arrival ring keyed by arrival round.
type tile struct {
	id      packet.TileID
	alive   bool            // inj.TileAlive(id), cached at New (crash state is immutable)
	sendBuf []packet.Packet // live copies, owned by value
	ring    arrivalRing     // in-flight copies keyed by arrival round
	proc    Process
	rnd     rng.Stream // forwarding decisions + app randomness (by value: hot state stays on the tile's cache lines)
	mailbox []*packet.Packet
	nbrs    []packet.TileID // topo.Neighbors(id), cached at New
	// nbrAlive caches inj.LinkAlive(id, nbrs[i]) per port: the per-copy
	// link-liveness test in transmit is a slice load instead of a map
	// lookup. Valid for the network's lifetime — crash faults are sampled
	// once, before round 0.
	nbrAlive []bool
	ctx      Ctx // reusable context handed to the Process

	fwdLimit  int // max messages forwarded per round; 0 = unlimited
	fwdCursor int // round-robin position for rate-limited forwarding
	router    func(p *packet.Packet) []packet.TileID
}

// Network is one simulated stochastically-communicating NoC.
type Network struct {
	cfg    Config
	topo   topology.Topology
	inj    *fault.Injector
	tiles  []*tile
	round  int
	nextID packet.MsgID // last issued packed ID (slot | generation<<32)
	cnt    Counters
	tbl    msgTable // per-message state, slot-indexed (table.go)
	// pThresh is cfg.P in 53-bit fixed point, precomputed once so the
	// innermost forwarding draw is a single integer compare —
	// decision-identical to the former Float64() < P (see rng.MakeThreshold).
	pThresh rng.Threshold
	// upsetT/overflowT mirror the injector's fixed-point thresholds: the
	// per-transmission and per-reception draws are then direct BoolT
	// calls the compiler inlines (the injector methods are equivalent but
	// sit behind a call).
	upsetT    rng.Threshold
	overflowT rng.Threshold
	// recycle caches cfg.Recycle for the hot paths (inflight/copy
	// accounting and the per-Step retirement barrier run only under it).
	recycle bool
	// batch caches cfg.BatchDraws; batchT16 and invLn1mP are the mask
	// threshold and skip-sampler constant precomputed for it (batch.go).
	batch    bool
	batchT16 uint32
	invLn1mP float64

	// bufOcc/rcvOcc are the two-level per-tile occupancy bitmaps the
	// phase loops iterate instead of sweeping every tile (occupancy.go).
	// Exact at round barriers; bufOcc bit set ⇔ send buffer non-empty,
	// rcvOcc bit set ⇔ arrival ring non-empty; the summary level (one
	// bit per 64-tile word) is the frontier the sweeps walk.
	bufOcc occMap
	rcvOcc occMap
	// procTiles lists the tiles with an attached Process, rebuilt from
	// procsDirty, so phase 1 visits only them.
	procTiles []*tile

	// seqLane is the direct execution lane covering every tile: the
	// whole sequential engine runs on it, and in sharded mode so do
	// phase 1 and the order-dependent phase-4 fallback (shard.go).
	seqLane lane
	// lanes holds one lane per shard; empty for the sequential engine.
	lanes []lane
	// par is true while shard goroutines are live; per-message
	// aware-count updates switch to atomics under it. It is only
	// written by the stepping goroutine between barriers.
	par bool
	// alignedLanes is true when every lane boundary falls on a 64-tile
	// word boundary (initLanes): no two lanes then share any word of the
	// tile bitmaps (message rows, occupancy), and the bit flips skip
	// their CAS loops even while shard goroutines are live.
	alignedLanes bool
	// laneBase/laneRem record the initLanes partition arithmetic (span
	// units per lane, in words when aligned, tiles otherwise) so laneFor
	// can invert tile→lane without a lookup table.
	laneBase, laneRem int
	// hasReceiver caches whether any attached process implements
	// Receiver (recomputed when procsDirty; consulted by stepShards).
	hasReceiver bool
	procsDirty  bool

	started bool
}

// New builds a network from cfg. Tile crash failures are sampled here,
// deterministically from cfg.Seed.
func New(cfg Config) (*Network, error) {
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 10000
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	master := rng.New(cfg.Seed)
	inj, err := fault.NewInjector(cfg.Topo, cfg.Fault, master.Split(0xfa017))
	if err != nil {
		return nil, err
	}
	n := &Network{
		cfg: cfg, topo: cfg.Topo, inj: inj, recycle: cfg.Recycle,
		procsDirty: true, pThresh: rng.MakeThreshold(cfg.P),
		upsetT: inj.UpsetThreshold(), overflowT: inj.OverflowThreshold(),
		batch: cfg.BatchDraws, batchT16: maskThreshold16(cfg.P),
		invLn1mP: skipConstant(cfg.P),
	}
	n.bufOcc.initOcc(cfg.Topo.Tiles())
	n.rcvOcc.initOcc(cfg.Topo.Tiles())
	n.tbl.initTable(cfg.Topo.Tiles())
	if n.recycle {
		n.tbl.copies = make([]int32, 1, 8)
		n.tbl.inflight = make([]int32, 1, 8)
	}
	// Without synchronization skew every copy arrives in the round it was
	// sent, so one recycled arrival bucket per tile covers all traffic.
	ringLen := 1
	if cfg.Fault.SigmaSync > 0 {
		ringLen = ringInitLen
	}
	// One contiguous backing array for all tiles: the per-round phases
	// sweep every tile, and sequential layout is what lets the hardware
	// prefetcher hide that sweep on mega-meshes (a per-tile heap object
	// costs a cache miss per tile per phase). Tiles are only ever accessed
	// through the stable n.tiles pointers, never copied.
	backing := make([]tile, cfg.Topo.Tiles())
	n.tiles = make([]*tile, cfg.Topo.Tiles())
	for i := range n.tiles {
		t := &backing[i]
		t.id = packet.TileID(i)
		t.alive = inj.TileAlive(t.id)
		t.rnd = *master.Split(uint64(i) + 1)
		t.nbrs = cfg.Topo.Neighbors(packet.TileID(i))
		t.nbrAlive = make([]bool, len(t.nbrs))
		for j, nb := range t.nbrs {
			t.nbrAlive[j] = inj.LinkAlive(t.id, nb)
		}
		t.ring.initLen = ringLen
		t.ctx = Ctx{net: n, tile: t}
		n.tiles[i] = t
	}
	n.seqLane = lane{net: n, lo: 0, hi: len(n.tiles), direct: true, cnt: &n.cnt}
	if s := cfg.Shards; s > 1 {
		if s > len(n.tiles) {
			s = len(n.tiles)
		}
		if s > 1 {
			n.initLanes(s)
		}
	}
	return n, nil
}

// Attach maps proc onto tile t. It panics if t is out of range (a mapping
// bug, not a runtime condition).
func (n *Network) Attach(t packet.TileID, proc Process) {
	n.tiles[t].proc = proc
	n.procsDirty = true
}

// refreshProcs rebuilds the process-bearing tile list (and the Receiver
// flag stepShards consults) when Attach has run since the last rebuild.
// Phase 1 and Completed iterate procTiles instead of the whole mesh — on
// a mega-mesh with a handful of processes that is the difference between
// a few pointer loads and a quarter-million per round. Attachments made
// mid-round (from Init or Round) take effect at the next rebuild point,
// the start of the following Step.
func (n *Network) refreshProcs() {
	if !n.procsDirty {
		return
	}
	n.procsDirty = false
	n.procTiles = n.procTiles[:0]
	n.hasReceiver = false
	for _, t := range n.tiles {
		if t.proc == nil {
			continue
		}
		n.procTiles = append(n.procTiles, t)
		if _, ok := t.proc.(Receiver); ok {
			n.hasReceiver = true
		}
	}
}

// SetForwardLimit caps how many distinct messages tile t may forward per
// round (0 = unlimited, the default). A limit of 1 models a serializing
// shared-bus bridge in the Chapter 5 hybrid architectures: excess
// messages stay buffered — and keep aging — until the bus frees up.
func (n *Network) SetForwardLimit(t packet.TileID, limit int) {
	n.tiles[t].fwdLimit = limit
}

// SetRouter makes tile t a deterministic router: instead of gossiping
// every buffered message over every port with probability P, it forwards
// each message exactly once per round to the ports route returns. This is
// how the Chapter 5 hybrid architectures bridge gossip clusters — the
// bridge knows cluster addressing and confines traffic to the source and
// destination clusters. route must be pure; returning nil drops nothing
// (the message just stays buffered and ages).
func (n *Network) SetRouter(t packet.TileID, route func(p *packet.Packet) []packet.TileID) {
	n.tiles[t].router = route
}

// Aware returns how many tiles know message id — they hold a copy now or
// have held one (the shaded tiles of the Fig. 3-3 walkthrough). The count
// is maintained incrementally as flags flip, so polling it every round
// (as the dissemination experiments do) is O(1), not a scan of the mesh.
// Under Config.Recycle a retired message answers with its final count,
// kept in the retired ledger.
func (n *Network) Aware(id packet.MsgID) int {
	if n.current(id) {
		return int(n.tbl.aware[msgSlot(id)])
	}
	return int(n.tbl.retired[id])
}

// AwareAt reports whether tile t knows message id (holds or has held a
// copy). Per-tile awareness of a message retired by Config.Recycle is
// forgotten with its slot: AwareAt then reports false even if Aware still
// reports the ledgered count.
func (n *Network) AwareAt(id packet.MsgID, t packet.TileID) bool {
	if int(t) >= len(n.tiles) {
		return false
	}
	return n.tiles[t].flagsOf(id) != 0
}

// Quiescent reports whether no tile holds a live message and nothing is
// in flight — the network has drained. Energy comparisons step until
// quiescence so that every transmission a workload causes is billed.
// The occupancy bitmaps are exact at round barriers (occupancy.go), so
// the check is O(tiles/4096) summary compares plus one word load per
// active word.
func (n *Network) Quiescent() bool {
	return n.bufOcc.empty() && n.rcvOcc.empty()
}

// Drain steps the network until it is quiescent or maxRounds more rounds
// elapse, returning the number of extra rounds taken.
func (n *Network) Drain(maxRounds int) int {
	for i := 0; i < maxRounds; i++ {
		if n.Quiescent() {
			return i
		}
		n.Step()
	}
	return maxRounds
}

// Process returns the process attached to tile t, or nil.
func (n *Network) Process(t packet.TileID) Process { return n.tiles[t].proc }

// Injector exposes the sampled fault state (read-only use).
func (n *Network) Injector() *fault.Injector { return n.inj }

// Round returns the index of the round about to execute (or just
// executed, from within an Observer).
func (n *Network) Round() int { return n.round }

// Counters returns a snapshot of the run's counters.
func (n *Network) Counters() Counters { return n.cnt }

// Topology returns the fabric.
func (n *Network) Topology() topology.Topology { return n.topo }

// Inject creates a new message originating at tile src before the
// simulation starts (or between rounds), bypassing any Process. It is the
// entry point for pure-dissemination experiments.
//
// A payload longer than packet.MaxPayload cannot be framed, so Inject
// rejects it up front with packet.ErrTooLarge — no message is created and
// no ID is consumed. This is the only error Inject returns.
//
// Contract for a crashed source: a dead tile cannot talk, so the message
// is silently dropped — but the returned MsgID is still consumed from the
// ID space (IDs identify injection attempts, not successful ones).
// The caller cannot distinguish the no-op from the return value alone;
// check Injector().TileAlive(src) beforehand, or observe that Aware(id)
// stays 0 — a live injection always has Aware(id) >= 1 (the originator
// knows its own rumor).
func (n *Network) Inject(src, dst packet.TileID, kind packet.Kind, payload []byte) (packet.MsgID, error) {
	if len(payload) > packet.MaxPayload {
		return 0, packet.ErrTooLarge
	}
	id := n.newMsgID()
	if !n.inj.TileAlive(src) {
		return id, nil
	}
	// The originator knows its own rumor: never deliver it back to src.
	n.setSeen(n.tiles[src], id)
	n.emit(EvCreated, src, src, id)
	n.enqueue(&n.seqLane, n.tiles[src], &packet.Packet{
		ID: id, Src: src, Dst: dst, Kind: kind, TTL: n.cfg.TTL, Payload: payload,
	})
	return id, nil
}

// emit publishes a protocol event if a listener is attached.
func (n *Network) emit(kind EventKind, tile, peer packet.TileID, msg packet.MsgID) {
	if n.cfg.OnEvent != nil {
		n.cfg.OnEvent(Event{Round: n.round, Kind: kind, Tile: tile, Peer: peer, Msg: msg})
	}
}

// enqueue inserts *p into t's send buffer, enforcing dedup and capacity.
// The packet is copied by value; the caller keeps ownership of *p. Counts
// and events go through the executing lane.
func (n *Network) enqueue(ln *lane, t *tile, p *packet.Packet) {
	if s := msgSlot(p.ID); !n.cfg.DisableDedup && n.rowBit(&n.tbl.present[s], s, t.id) {
		ln.cnt.Duplicates++
		return
	}
	if n.cfg.BufferCap > 0 && len(t.sendBuf) >= n.cfg.BufferCap {
		// Hard overflow: oldest dropped first (§4.2).
		if len(t.sendBuf) > 0 {
			ln.emit(EvOverflow, t.id, t.id, t.sendBuf[0].ID)
		}
		n.dropOldest(t)
		ln.cnt.OverflowDrops++
	}
	if ln.borrowed == p {
		ln.unshare(p)
	}
	if t.sendBuf == nil {
		t.sendBuf = ln.bufs.get() // re-arm a cold tile from the lane pool
	}
	t.sendBuf = append(t.sendBuf, *p)
	if len(t.sendBuf) == 1 {
		n.occSet(&n.bufOcc, uint32(t.id)) // buffer went non-empty
	}
	if n.recycle {
		n.addCopies(msgSlot(p.ID), 1)
	}
	n.setPresent(t, p.ID)
}

func (n *Network) dropOldest(t *tile) {
	if len(t.sendBuf) == 0 {
		return
	}
	id := t.sendBuf[0].ID
	copy(t.sendBuf, t.sendBuf[1:])
	t.sendBuf[len(t.sendBuf)-1] = packet.Packet{}
	t.sendBuf = t.sendBuf[:len(t.sendBuf)-1]
	if n.recycle {
		n.addCopies(msgSlot(id), -1)
	}
	n.clearPresent(t, id)
}

// deliver hands *p to t's IP mailbox if it addresses t and has not been
// delivered here before. The mailbox takes a heap copy, so the ring slot
// or buffer entry backing *p can be recycled freely afterwards. On a
// non-direct lane the OnDeliver callback is staged for the post-barrier
// flush; Receiver processes never reach a non-direct lane (their presence
// forces the sequential phase-4 fallback in stepShards).
func (n *Network) deliver(ln *lane, t *tile, p *packet.Packet) {
	if p.Dst != t.id && p.Dst != packet.Broadcast {
		return
	}
	if s := msgSlot(p.ID); n.rowBit(&n.tbl.seen[s], s, t.id) {
		return
	}
	n.setSeen(t, p.ID)
	if n.cfg.StopSpreadOnDelivery && p.Dst == t.id {
		n.markDead(p.ID)
	}
	if ln.borrowed == p {
		ln.unshare(p)
	}
	q := ln.pkts.get() // arena-carved heap copy, mailbox lifetime
	*q = *p
	if t.mailbox == nil {
		t.mailbox = ln.mail.carve()
	}
	t.mailbox = append(t.mailbox, q)
	ln.cnt.Deliveries++
	ln.cnt.DeliveredPayloadBits += 8 * len(p.Payload)
	ln.emit(EvDeliver, t.id, p.Src, p.ID)
	if ln.direct {
		if n.cfg.OnDeliver != nil {
			n.cfg.OnDeliver(t.id, q, n.round)
		}
		if rcv, ok := t.proc.(Receiver); ok {
			rcv.Receive(&t.ctx, q)
		}
		return
	}
	if n.cfg.OnDeliver != nil {
		ln.actions = append(ln.actions, action{
			ev:  Event{Round: n.round, Kind: EvDeliver, Tile: t.id, Peer: p.Src, Msg: p.ID},
			pkt: q,
		})
	}
}

// Step executes one full gossip round across all tiles. Rounds are
// numbered from 1; a message forwarded during round r arrives at the far
// end of the link within round r (one hop per round), so under flooding a
// message is delivered at round = Manhattan distance, matching the
// Fig. 3-3 walkthrough.
//
// The round body is split into phase functions so the sequential engine
// and the sharded engine (shard.go) share one implementation: sequential
// mode runs phases 2-4 on the network-wide direct lane; sharded mode runs
// them per-shard between barriers. Phase 1 always runs sequentially — it
// allocates message IDs, whose order is observable.
func (n *Network) Step() {
	if !n.started {
		n.started = true
		for _, t := range n.tiles {
			if t.proc != nil && t.alive {
				t.proc.Init(&t.ctx)
			}
		}
	}
	n.refreshProcs()
	n.round++

	n.phaseCompute()
	if len(n.lanes) > 0 {
		n.stepShards()
	} else {
		n.phaseAge(&n.seqLane)
		n.phaseForward(&n.seqLane)
		n.phaseReceive(&n.seqLane)
	}
	if n.recycle {
		// Round barrier: no phase is executing and nothing is staged, so
		// expired-everywhere messages can be retired before observers
		// sample the round (they see ledgered Aware counts, same values).
		n.retireExpired()
	}
	// Promote sparse rows that crossed the density threshold this round.
	// Barrier-only, so tier membership is stable during phases and driven
	// purely by shard-count-independent cardinalities.
	n.tbl.promoteDue()

	if n.cfg.Observer != nil {
		n.cfg.Observer(n.round, n)
	}
	if n.cfg.OnRoundEnd != nil {
		n.cfg.OnRoundEnd(n.round, n)
	}
}

// phaseCompute is phase 1 — computation: run the IP cores; they read the
// mailbox filled during the previous round and may create new messages.
// Only the process-bearing tiles (refreshProcs) are visited.
func (n *Network) phaseCompute() {
	for _, t := range n.procTiles {
		if !t.alive {
			continue
		}
		t.ctx.delivered = t.mailbox
		t.proc.Round(&t.ctx)
		t.ctx.delivered = nil
		for i := range t.mailbox {
			t.mailbox[i] = nil
		}
		t.mailbox = t.mailbox[:0]
	}
}

// phaseAge is phase 2 — aging: decrement TTLs, garbage-collect expired
// messages, for the occupied tiles of the lane's range. The word loops of
// phases 2-4 are hand-inlined copies of forOccupied (occupancy.go): the
// three sweeps are the engine's innermost frames and an indirect visit
// call per occupied tile is measurable on dense small meshes. Each sweep
// is two-level — the lane walks the set summary bits of its frontier
// segment and only loads the tile words under them — so a lane whose
// range is idle costs O(range/4096) summary loads, not a word scan.
func (n *Network) phaseAge(ln *lane) {
	unaligned := n.par && !n.alignedLanes
	// markDead is the only writer of the tombstone bits and it is gated on
	// StopSpreadOnDelivery, so with the flag off no packet can be dead and
	// the per-packet slot lookup below is pure waste — on a dense mesh the
	// aging sweep touches every live copy every round, and skipping the
	// lookup is worth ~an eighth of the whole phase.
	checkDead := n.cfg.StopSpreadOnDelivery
	w0, w1 := ln.lo>>6, (ln.hi+63)>>6
	s0, s1 := w0>>6, (w1+63)>>6
	for si := s0; si < s1; si++ {
		var sw uint64
		if n.par {
			// Summary words can span lanes even under an aligned
			// partition; other lanes CAS their bits mid-phase.
			sw = atomic.LoadUint64(&n.bufOcc.sum[si])
		} else {
			sw = n.bufOcc.sum[si]
		}
		if si == s0 {
			sw &^= (uint64(1) << (uint(w0) & 63)) - 1
		}
		for ; sw != 0; sw &= sw - 1 {
			wi := si<<6 + bits.TrailingZeros64(sw)
			if wi >= w1 {
				break
			}
			var w uint64
			if unaligned {
				// Another lane may CAS its own bits of a shared boundary
				// word mid-phase; even a discarded plain read is a race.
				w = atomic.LoadUint64(&n.bufOcc.bits[wi])
			} else {
				w = n.bufOcc.bits[wi]
			}
			if wi == w0 {
				w &^= (uint64(1) << (uint(ln.lo) & 63)) - 1
			}
			for ; w != 0; w &= w - 1 {
				ti := wi<<6 + bits.TrailingZeros64(w)
				if ti >= ln.hi {
					break
				}
				t := n.tiles[ti]
				if !t.alive {
					continue
				}
				// Age in place first: in the steady state nothing expires,
				// and the compaction pass below (which copies every
				// surviving packet) is pure overhead then. isDead cannot
				// change during phase 2, so both passes agree on who
				// expires.
				dropped := false
				for i := range t.sendBuf {
					p := &t.sendBuf[i]
					p.TTL--
					if p.TTL == 0 || (checkDead && n.isDead(p.ID)) {
						dropped = true
					}
				}
				if !dropped {
					continue
				}
				kept := t.sendBuf[:0]
				for i := range t.sendBuf {
					p := &t.sendBuf[i]
					if p.TTL == 0 || (checkDead && n.isDead(p.ID)) {
						if n.recycle {
							n.addCopies(msgSlot(p.ID), -1)
						}
						n.clearPresent(t, p.ID)
						ln.emit(EvExpire, t.id, t.id, p.ID)
						continue
					}
					kept = append(kept, *p)
				}
				// Zero the compaction tail so expired payloads can be
				// collected.
				for i := len(kept); i < len(t.sendBuf); i++ {
					t.sendBuf[i] = packet.Packet{}
				}
				t.sendBuf = kept
				if len(kept) == 0 {
					n.occClear(&n.bufOcc, uint32(ti)) // buffer drained
					ln.bufs.put(t.sendBuf)
					t.sendBuf = nil
				}
			}
		}
	}
}

// phaseForward is phase 3 — forwarding: every buffered message goes out
// on each port independently with probability P; skew-free copies arrive
// within this round, skewed ones slip to later rounds.
func (n *Network) phaseForward(ln *lane) {
	// The lane's outbox was fully merged at the end of the previous round;
	// clearing it here (instead of behind a dedicated barrier) is what
	// keeps the sharded round at three barriers.
	clearOutbox(ln)
	unaligned := n.par && !n.alignedLanes
	batch := n.batch && n.cfg.PortWeight == nil
	w0, w1 := ln.lo>>6, (ln.hi+63)>>6
	s0, s1 := w0>>6, (w1+63)>>6
	for si := s0; si < s1; si++ {
		var sw uint64
		if n.par {
			// Summary words can span lanes even under an aligned
			// partition; other lanes CAS their bits mid-phase.
			sw = atomic.LoadUint64(&n.bufOcc.sum[si])
		} else {
			sw = n.bufOcc.sum[si]
		}
		if si == s0 {
			sw &^= (uint64(1) << (uint(w0) & 63)) - 1
		}
		for ; sw != 0; sw &= sw - 1 {
			wi := si<<6 + bits.TrailingZeros64(sw)
			if wi >= w1 {
				break
			}
			var w uint64
			if unaligned {
				// Another lane may CAS its own bits of a shared boundary
				// word mid-phase; even a discarded plain read is a race.
				w = atomic.LoadUint64(&n.bufOcc.bits[wi])
			} else {
				w = n.bufOcc.bits[wi]
			}
			if wi == w0 {
				w &^= (uint64(1) << (uint(ln.lo) & 63)) - 1
			}
			for ; w != 0; w &= w - 1 {
				ti := wi<<6 + bits.TrailingZeros64(w)
				if ti >= ln.hi {
					break
				}
				t := n.tiles[ti]
				if !t.alive {
					continue
				}
				buffered := len(t.sendBuf)
				if buffered == 0 {
					continue
				}
				count := buffered
				if t.fwdLimit > 0 && count > t.fwdLimit {
					count = t.fwdLimit // serializing bridge: TDM slots this round
				}
				// Round-robin over the buffer so a long-lived message cannot
				// hog a rate-limited bridge. The cursor is normalized once
				// (the buffer may have shrunk since last round) and then
				// advanced with wrap-on-overflow subtractions: this inner
				// loop runs per buffered message per round, and a `%` per
				// iteration is measurably slower than a
				// compare-and-subtract.
				cur := t.fwdCursor % buffered
				if batch && t.router == nil {
					n.forwardBatch(ln, t, cur, count, buffered)
					cur += count
					if cur >= buffered {
						cur -= buffered
					}
					t.fwdCursor = cur
					continue
				}
				for i := 0; i < count; i++ {
					idx := cur + i
					if idx >= buffered {
						idx -= buffered // i < count <= buffered: one wrap at most
					}
					p := &t.sendBuf[idx]
					if t.router != nil {
						for _, nb := range t.router(p) {
							n.transmit(ln, t, nb, p, n.inj.LinkAlive(t.id, nb))
						}
						continue
					}
					if n.cfg.PortWeight != nil {
						for pi, nb := range t.nbrs {
							prob := n.cfg.P * n.cfg.PortWeight(t.id, nb, p)
							// MakeThreshold+BoolT ≡ Bool(prob), draw for draw.
							if !t.rnd.BoolT(rng.MakeThreshold(prob)) {
								continue
							}
							n.transmit(ln, t, nb, p, t.nbrAlive[pi])
						}
						continue
					}
					for pi, nb := range t.nbrs {
						if !t.rnd.BoolT(n.pThresh) {
							continue
						}
						n.transmit(ln, t, nb, p, t.nbrAlive[pi])
					}
				}
				cur += count
				if cur >= buffered {
					cur -= buffered // count <= buffered: one wrap at most
				}
				t.fwdCursor = cur
			}
		}
	}
}

// phaseReceive is phase 4 — reception: consume the arrivals scheduled for
// this round, CRC-check them, merge survivors into the send buffer,
// deliver.
func (n *Network) phaseReceive(ln *lane) {
	unaligned := n.par && !n.alignedLanes
	w0, w1 := ln.lo>>6, (ln.hi+63)>>6
	s0, s1 := w0>>6, (w1+63)>>6
	for si := s0; si < s1; si++ {
		var sw uint64
		if n.par {
			// Summary words can span lanes even under an aligned
			// partition; other lanes CAS their bits mid-phase.
			sw = atomic.LoadUint64(&n.rcvOcc.sum[si])
		} else {
			sw = n.rcvOcc.sum[si]
		}
		if si == s0 {
			sw &^= (uint64(1) << (uint(w0) & 63)) - 1
		}
		for ; sw != 0; sw &= sw - 1 {
			wi := si<<6 + bits.TrailingZeros64(sw)
			if wi >= w1 {
				break
			}
			var w uint64
			if unaligned {
				// Another lane may CAS its own bits of a shared boundary
				// word mid-phase; even a discarded plain read is a race.
				w = atomic.LoadUint64(&n.rcvOcc.bits[wi])
			} else {
				w = n.rcvOcc.bits[wi]
			}
			if wi == w0 {
				w &^= (uint64(1) << (uint(ln.lo) & 63)) - 1
			}
			for ; w != 0; w &= w - 1 {
				ti := wi<<6 + bits.TrailingZeros64(w)
				if ti >= ln.hi {
					break
				}
				t := n.tiles[ti]
				if !t.alive {
					continue
				}
				bucket := t.ring.take(n.round)
				for i := range bucket {
					a := &bucket[i]
					if n.recycle {
						// The arrival is consumed this round whatever its
						// fate; a.pkt.ID still holds the originating ID even
						// on the literal path (stashed by transmit, before
						// any decode).
						n.addInflight(msgSlot(a.pkt.ID), -1)
					}
					var p *packet.Packet
					switch {
					case a.frame != nil:
						if p = n.decodeArrival(ln, t, a); p == nil {
							continue // frame already recycled
						}
						ln.borrowed = p // payload still aliases the pooled frame
					case a.upset:
						ln.cnt.UpsetsDetected++
						ln.emit(EvUpset, t.id, t.id, a.pkt.ID)
						continue
					default:
						p = &a.pkt
					}
					if !n.isDead(p.ID) {
						// Analytic overflow: with probability POverflow the
						// incoming packet finds no buffer space and is lost —
						// the "% dropped packets" swept by Figs. 4-10/4-11.
						// (Oldest-first eviction applies on the hard-capacity
						// path in enqueue, per §4.2.)
						if t.rnd.BoolT(n.overflowT) {
							ln.cnt.OverflowDrops++
							ln.emit(EvOverflow, t.id, t.id, p.ID)
						} else {
							n.deliver(ln, t, p)
							n.enqueue(ln, t, p)
						}
					}
					if a.frame != nil {
						// Consumed (any stored payload was cloned by
						// unshare): the frame can go back to the pool.
						ln.pool.put(a.frame)
						a.frame = nil
						ln.borrowed = nil
					}
				}
				t.ring.release(n.round)
				if t.ring.count == 0 {
					n.occClear(&n.rcvOcc, uint32(ti)) // nothing left in flight here
					ln.rings.detach(&t.ring)
				}
			}
		}
	}
}

// decodeArrival decodes a literal-path wire frame into the arrival's ring
// slot, applying the CRC check. On success the decoded payload still
// aliases a.frame (DecodeInto is zero-copy), so the phase-4 loop recycles
// the frame only after the arrival is fully consumed; on failure the
// frame is recycled here and nil is returned. A decoded ID the network
// never issued — a slot the table doesn't cover, or a generation the slot
// is not currently bound to — is proof of corruption too: a CRC escape
// (~2^-16 per scrambled frame) can smuggle a frame past the checksum, and
// rejecting impossible IDs keeps the tables bounded by the real message
// count. With recycling on, the generation check is also what keeps a
// stale frame from aliasing the slot's next tenant; those near-misses
// (structurally valid slot, wrong tenant) are tallied as GhostFrames.
func (n *Network) decodeArrival(ln *lane, t *tile, a *arrival) *packet.Packet {
	err := packet.DecodeInto(&a.pkt, a.frame)
	if err != nil || !n.current(a.pkt.ID) {
		if err == nil {
			if s := msgSlot(a.pkt.ID); s != 0 && int(s) <= n.issuedSlots() {
				ln.cnt.GhostFrames++
			}
		}
		a.pkt.Payload = nil // drop the alias before pooling the frame
		ln.pool.put(a.frame)
		a.frame = nil
		ln.cnt.UpsetsDetected++
		// A scrambled frame's ID is untrustworthy: report Msg 0.
		ln.emit(EvUpset, t.id, t.id, 0)
		return nil
	}
	return &a.pkt
}

// transmit sends one copy of *p from tile t toward neighbor nb, applying
// the transient fault model. The energy of driving the link is spent even
// when the copy is lost downstream. The copy travels by value (analytic
// path) or as a pooled encoded frame (literal path); either way the
// steady state allocates nothing per transmission. The arrival reaches
// the destination ring through ln.send: directly on a direct lane, via
// the post-phase outbox merge otherwise. linkUp is the cached
// inj.LinkAlive(t.id, nb) verdict — precomputed per port at New on the
// gossip paths, looked up per call on the (cold) router path.
func (n *Network) transmit(ln *lane, t *tile, nb packet.TileID, p *packet.Packet, linkUp bool) {
	ln.cnt.Energy.AddTransmission(p.SizeBits())
	ln.emit(EvTransmit, t.id, nb, p.ID)
	if !linkUp {
		return // crashed link or dead far-end tile: copy vanishes
	}
	slip := n.inj.SyncSlip(&t.rnd)
	if slip > 0 {
		ln.cnt.SlippedDeliveries++
	}
	when := n.round + slip

	if n.cfg.Fault.LiteralUpsets {
		frame := ln.pool.get(packet.EncodedLen(len(p.Payload)))
		if err := packet.EncodeTo(frame, p); err != nil {
			// Oversized payloads are caught at Inject/Send time; an
			// encode failure here is a programming error.
			panic(fmt.Sprintf("core: encode failed in flight: %v", err))
		}
		if t.rnd.BoolT(n.upsetT) {
			n.inj.CorruptFrame(frame, &t.rnd)
			ln.cnt.UpsetsInjected++
		}
		// The arrival's by-value packet is unused on the literal path, so
		// its ID field carries the originating message for the in-flight
		// accounting — the frame itself may be corrupted beyond trust.
		ln.send(nb, when, arrival{frame: frame, pkt: packet.Packet{ID: p.ID}})
	} else {
		a := arrival{pkt: *p}
		if t.rnd.BoolT(n.upsetT) {
			a.upset = true
			ln.cnt.UpsetsInjected++
		}
		ln.send(nb, when, a)
	}
}

// Reseed re-derives every tile's random stream from seed, exactly as New
// does from Config.Seed (tile i gets Split(i+1) of a fresh master
// stream). It exists for trajectory forking: rare-event importance
// splitting (internal/smc) restores several networks from one snapshot —
// which, by the checkpoint contract, would replay identical futures —
// and Reseeds each fork so their continuations are independent while
// staying deterministic in the fork seed. It must be called at a round
// barrier, like Snapshot. The sampled crash set and the issued message
// IDs are untouched: only the forward-looking randomness (forwarding
// draws, upset/overflow/skew draws, application randomness) changes.
func (n *Network) Reseed(seed uint64) {
	master := rng.New(seed)
	for i, t := range n.tiles {
		t.rnd = *master.Split(uint64(i) + 1)
	}
}

// Completed reports whether every live Completer process is done. With no
// Completer attached it returns false (run to MaxRounds).
func (n *Network) Completed() bool {
	n.refreshProcs()
	any := false
	for _, t := range n.procTiles {
		if !t.alive {
			continue
		}
		c, ok := t.proc.(Completer)
		if !ok {
			continue
		}
		any = true
		if !c.Done() {
			return false
		}
	}
	return any
}

// Result summarizes one run.
type Result struct {
	// Rounds is the number of rounds executed when the run stopped.
	Rounds int
	// Completed reports whether the application-level completion
	// predicate was satisfied (false = the MaxRounds guillotine fired,
	// the thesis' "application failed completely" outcome).
	Completed bool
	// Counters holds traffic and fault statistics.
	Counters Counters
}

// Run steps the network until completion or cfg.MaxRounds.
func (n *Network) Run() Result {
	for n.round < n.cfg.MaxRounds {
		n.Step()
		if n.Completed() {
			return Result{Rounds: n.round, Completed: true, Counters: n.cnt}
		}
	}
	return Result{Rounds: n.round, Completed: false, Counters: n.cnt}
}

// RunWhile steps the network until cond returns false or MaxRounds is
// reached; it reports Completed = !cond at exit. Used by dissemination
// experiments with external termination conditions.
func (n *Network) RunWhile(cond func(*Network) bool) Result {
	for n.round < n.cfg.MaxRounds {
		if !cond(n) {
			return Result{Rounds: n.round, Completed: true, Counters: n.cnt}
		}
		n.Step()
	}
	return Result{Rounds: n.round, Completed: !cond(n), Counters: n.cnt}
}

// Ctx is the per-round view a Process has of its tile: the hardware
// interface of Fig. 3-5 from the IP core's side of the buffers. The
// engine reuses one Ctx per tile across rounds, so a Process must use the
// Ctx only within the Init/Round/Receive call that handed it over, and
// must not retain the Delivered slice past the Round call (the mailbox is
// recycled).
type Ctx struct {
	net       *Network
	tile      *tile
	delivered []*packet.Packet
}

// Self returns the hosting tile's ID. A zero Ctx (as unit tests hand to
// Receive implementations directly) reports tile 0.
func (c *Ctx) Self() packet.TileID {
	if c.tile == nil {
		return 0
	}
	return c.tile.id
}

// Round returns the current round index (0 for a zero Ctx).
func (c *Ctx) Round() int {
	if c.net == nil {
		return 0
	}
	return c.net.round
}

// Delivered returns the messages addressed to this tile that arrived since
// the previous round, each delivered exactly once.
func (c *Ctx) Delivered() []*packet.Packet { return c.delivered }

// Send creates a new message and hands it to the communication fabric.
// The IP core neither knows nor cares where dst is — locating it is the
// gossip layer's job. A payload longer than packet.MaxPayload cannot be
// framed: Send rejects it with packet.ErrTooLarge, consuming no message
// ID — the only error Send returns. Processes that only ever send small
// fixed payloads may ignore the error.
func (c *Ctx) Send(dst packet.TileID, kind packet.Kind, payload []byte) (packet.MsgID, error) {
	if len(payload) > packet.MaxPayload {
		return 0, packet.ErrTooLarge
	}
	id := c.net.newMsgID()
	// The originator knows its own rumor: never deliver it back.
	c.net.setSeen(c.tile, id)
	c.net.emit(EvCreated, c.tile.id, c.tile.id, id)
	// Send only runs on the stepping goroutine (phase 1, or a Receiver
	// during the sequential phase-4 fallback), so the direct lane is
	// always the executing lane here.
	c.net.enqueue(&c.net.seqLane, c.tile, &packet.Packet{
		ID: id, Src: c.tile.id, Dst: dst, Kind: kind,
		TTL: c.net.cfg.TTL, Payload: payload,
	})
	return id, nil
}

// Broadcast creates a message addressed to every tile. It propagates
// Send's packet.ErrTooLarge for oversized payloads.
func (c *Ctx) Broadcast(kind packet.Kind, payload []byte) (packet.MsgID, error) {
	return c.Send(packet.Broadcast, kind, payload)
}

// Rand returns the tile-local random stream for application use (e.g.
// randomized workloads); consuming it does not perturb other tiles.
func (c *Ctx) Rand() *rng.Stream { return &c.tile.rnd }
