package core

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/packet"
)

// This file holds the per-message state tables of the engine: which tiles
// currently buffer a copy of each message (present), which have taken
// delivery or originated it (seen), the incremental aware counts, the
// spread-stop tombstones — and the slot allocator that bounds all of it.
//
// Representation. A MsgID packs a table slot in its low 32 bits and a
// generation (epoch) tag in its high 32 bits. Per-slot state is slot-major:
// one tile-membership row per slot for the present flags and one for the
// seen flags, so dedup, the delivery-once filter, AwareAt and the
// spread-stop check are all single-row lookups, awareness cross-checks
// are row scans, and retiring a message frees one row pair instead of
// touching a byte in every tile's private array (the former per-tile
// []uint8 layout, whose memory was O(tiles × ever-issued)).
//
// Two-tier rows. On small meshes a row is a dense []uint64 tile bitmap,
// as before. On meshes of sparseMinTiles tiles and up, a row starts life
// as a sorted sparse tile list ([]uint32): a sub-TTL message that dies
// after 16 hops touches ~1k of the 262k tiles of a 512×512 mesh, and a
// dense row would spend 32 KiB (and O(tiles/64) clearing work at
// retirement) to record it. A sparse row costs 4 bytes per aware tile
// and retires in O(aware). When a row's cardinality crosses the
// promotion threshold (promoteAt ≈ the density where the list stops
// being cheaper), the row is promoted to the dense bitmap — at the next
// round barrier, never mid-phase, so the decision depends only on
// barrier state (the row's cardinality), which is shard-count
// independent: sequential, sharded and snapshot-resumed runs promote the
// same rows at the same rounds and their checkpoints stay byte-equal.
// Rows never demote while their message lives; retirement resets the
// slot to the sparse tier (pooling the dense bitmap) for its next
// tenant.
//
// Concurrency. Dense-row bit flips follow the occupancy discipline:
// lane-private words use plain ops, shared boundary words CAS (see
// rowSet). A sparse row is one shared structure — inserts move memory —
// so while shard goroutines are live every sparse-row operation takes
// the slot's stripe lock. Tier membership itself (bits == nil) only
// changes at barriers, so the tier check needs no synchronization.
//
// Lifecycle. Without Config.Recycle the allocator only ever appends:
// generations stay 0, packed IDs coincide numerically with the former
// dense sequence 1, 2, 3, ..., and every byte of observable behaviour is
// unchanged. With Recycle enabled, a message whose buffered copies have
// all expired and whose in-flight copies have drained is retired at the
// next round barrier (retireExpired): its final aware count moves to the
// retired ledger, its rows are cleared, its slot's generation increments
// and the slot joins a FIFO free list for the next newMsgID. Memory is
// then bounded by the peak number of concurrently-live messages. A wire
// frame that decodes to a stale generation names a message that no longer
// exists ("ghost"): it is discarded as a detected upset and counted in
// Counters.GhostFrames, so a recycled slot can never alias old traffic.
//
// The retired ledger itself is bounded: entries live in a FIFO ring of
// retiredLedgerCap messages, and when the ring is full the oldest
// retiree is forgotten entirely (Aware reports 0 for it, exactly as for
// a never-issued ID). Retirement order is deterministic, so eviction —
// and the ledger bytes a snapshot serializes, in ring order — is too.

// Per-tile message flags, as reported by tile.flagsOf.
const (
	flagPresent uint8 = 1 << 0 // a copy is in the tile's send buffer
	flagSeen    uint8 = 1 << 1 // the message was delivered here (or originated here)
)

// MsgID packing: low 32 bits select the table slot, high 32 bits carry
// the slot's generation at issue time. Slot 0 is the unused sentinel
// (MsgID 0 means "no message"), so generation-0 packed IDs are exactly
// the dense IDs the engine issued before recycling existed.
const msgGenShift = 32

// packMsgID composes a MsgID from a slot and its generation.
func packMsgID(slot, gen uint32) packet.MsgID {
	return packet.MsgID(gen)<<msgGenShift | packet.MsgID(slot)
}

// msgSlot extracts the table slot of id.
func msgSlot(id packet.MsgID) uint32 { return uint32(id) }

// msgGen extracts the generation tag of id.
func msgGen(id packet.MsgID) uint32 { return uint32(id >> msgGenShift) }

// msgRow is one tile-membership row: which tiles hold (present) or have
// held (seen) a copy of the slot's message. Exactly one tier is active:
// dense (bits != nil, one bit per tile) or sparse (bits == nil, list is
// the sorted tile set). Small meshes are born dense; sparse-enabled
// meshes promote per row at round barriers (promoteDue).
type msgRow struct {
	bits []uint64 // dense tile bitmap; nil while the row is sparse
	list []uint32 // sorted tile list; active only while bits == nil
}

// msgTable is the network-wide message-state store. All per-slot slices
// are indexed by slot; index 0 is the unused sentinel. Scalar state
// (generation, aware count, tombstone, occupancy) is parallel-array; the
// present/seen flags are two-tier rows (dense rows come from the row
// arena).
type msgTable struct {
	words  int // words per dense tile bitmap (ceil(tiles/64))
	stride int // allocation stride of a dense row, >= words (cache-line padding)
	tiles  int // mesh size, for sparse-row validation
	arena  []uint64

	// sparse enables the sparse row tier (meshes of sparseMinTiles and
	// up); promoteAt is the list cardinality at which a row promotes to
	// the dense tier.
	sparse    bool
	promoteAt int

	gens     []uint32 // generation currently bound to each slot
	aware    []int32  // tiles aware (present|seen non-empty); atomic under par
	copies   []int32  // buffered copies network-wide (recycle only); atomic under par
	inflight []int32  // copies scheduled in arrival rings (recycle only); atomic under par
	dead     []bool   // spread-stop tombstone
	occ      []bool   // slot currently bound to a live message
	present  []msgRow // per-slot row: a copy is buffered at tile
	seen     []msgRow // per-slot row: delivered at / originated by tile

	// promoteCand flags slots whose sparse rows crossed promoteAt
	// mid-round; promoteDue visits exactly these at the barrier. One bit
	// per slot, CASed while shard goroutines are live.
	promoteCand []uint64

	// rowMu stripes the sparse-row operations: all accesses to a sparse
	// row of slot s lock rowMu[s % rowMuStripes] while shard goroutines
	// are live. Dense rows never take it.
	rowMu [rowMuStripes]sync.Mutex

	// freeRows pools the dense bitmaps of retired promoted slots for the
	// next promotion (barrier-only access).
	freeRows [][]uint64

	// FIFO free list of retired slots: freed at freeTail-side append,
	// reused from freeHead. FIFO (not LIFO) keeps slot reuse order
	// independent of retirement batching, and maximizes the gap between a
	// slot's retirement and its reuse.
	free     []uint32
	freeHead int

	// retired maps a retired message's full packed ID to its final aware
	// count, so Aware stays answerable (and the metrics recorder's
	// awareness series stays frozen, not zeroed) after the slot moved on.
	// Entries are tile-independent and bounded by the ring: retRing holds
	// the same IDs in retirement order, retHead indexing the oldest, and
	// an insertion into a full ring evicts that oldest entry from both
	// structures. Zero-aware retirees are not stored (absent means 0).
	retired map[packet.MsgID]int32
	retRing []packet.MsgID
	retHead int
	// retCap is the ring bound — retiredLedgerCap, overridable by tests.
	retCap int

	live     int // occupied slots
	peakLive int // high-water mark of live
}

// tableStridePadTiles is the mesh size from which dense rows are padded
// to whole 64-byte cache lines: shard lanes CAS adjacent words of
// adjacent rows concurrently, and on meshes large enough to shard,
// padding keeps two rows from false-sharing a line. Below it (rows
// shorter than a line) padding would multiply the table's memory for
// meshes where sharding is pointless anyway.
const tableStridePadTiles = 512

// tableArenaRows is how many dense rows a fresh arena block carves: row
// allocation costs one make per tableArenaRows rows instead of one
// each, and keeps rows of consecutive slots contiguous.
const tableArenaRows = 32

// sparseMinTiles is the mesh size from which rows start in the sparse
// tier. Below it a dense row is at most 64 words and the two-tier
// bookkeeping would cost more than it saves; at and above it (64×64 and
// up) a sub-TTL message's row is orders of magnitude smaller than the
// mesh.
const sparseMinTiles = 4096

// sparseMaxLen caps the promotion threshold: beyond ~1k entries the
// insertion memmove of the sorted list costs more than the dense row's
// memory saves, whatever the mesh size.
const sparseMaxLen = 1024

// rowMuStripes is the sparse-row lock striping; must be a power of two.
const rowMuStripes = 64

// retiredLedgerCap bounds the retired-awareness ledger. 65536 retirees
// cover every realistic polling window (the metrics recorder samples a
// message's awareness within rounds of its retirement, not 64k messages
// later) while pinning the ledger to ~1.5 MiB worst case.
const retiredLedgerCap = 1 << 16

// initTable sizes the table for a tiles-tile network.
func (tb *msgTable) initTable(tiles int) {
	tb.words = (tiles + 63) / 64
	tb.stride = tb.words
	tb.tiles = tiles
	if tiles >= tableStridePadTiles {
		tb.stride = (tb.words + 7) &^ 7
	}
	if tiles >= sparseMinTiles {
		tb.sparse = true
		tb.promoteAt = tiles / 32
		if tb.promoteAt > sparseMaxLen {
			tb.promoteAt = sparseMaxLen
		}
	}
	tb.retCap = retiredLedgerCap
	tb.gens = make([]uint32, 1, 8)
	tb.aware = make([]int32, 1, 8)
	tb.dead = make([]bool, 1, 8)
	tb.occ = make([]bool, 1, 8)
	tb.present = make([]msgRow, 1, 8)
	tb.seen = make([]msgRow, 1, 8)
}

// row carves one zeroed dense tile bitmap from the arena.
func (tb *msgTable) row() []uint64 {
	if len(tb.arena) < tb.stride {
		tb.arena = make([]uint64, tb.stride*tableArenaRows)
	}
	r := tb.arena[:tb.words:tb.stride]
	tb.arena = tb.arena[tb.stride:]
	return r
}

// denseRow returns a zeroed dense bitmap for a promotion, preferring the
// pool of retired promoted rows over a fresh arena carve. Barrier only.
func (tb *msgTable) denseRow() []uint64 {
	if k := len(tb.freeRows) - 1; k >= 0 {
		r := tb.freeRows[k]
		tb.freeRows[k] = nil
		tb.freeRows = tb.freeRows[:k]
		return r
	}
	return tb.row()
}

// appendSlot extends every parallel array by one slot and returns its
// index. Slices double via append, so issuing m messages reallocates
// each array O(log m) times over a run. On dense meshes rows come from
// the arena; on sparse-enabled meshes a fresh slot's rows are empty
// sparse lists that grow with the message's actual spread.
func (tb *msgTable) appendSlot() uint32 {
	s := uint32(len(tb.gens))
	tb.gens = append(tb.gens, 0)
	tb.aware = append(tb.aware, 0)
	tb.dead = append(tb.dead, false)
	tb.occ = append(tb.occ, false)
	if tb.sparse {
		tb.present = append(tb.present, msgRow{})
		tb.seen = append(tb.seen, msgRow{})
		if int(s)>>6 >= len(tb.promoteCand) {
			tb.promoteCand = append(tb.promoteCand, 0)
		}
	} else {
		tb.present = append(tb.present, msgRow{bits: tb.row()})
		tb.seen = append(tb.seen, msgRow{bits: tb.row()})
	}
	if tb.copies != nil {
		tb.copies = append(tb.copies, 0)
		tb.inflight = append(tb.inflight, 0)
	}
	return s
}

// slots returns how many slots the table holds (excluding the sentinel).
func (tb *msgTable) slots() int { return len(tb.gens) - 1 }

// issuedSlots returns how many message slots the network's table covers —
// with recycling off, exactly how many messages were ever issued.
func (n *Network) issuedSlots() int { return n.tbl.slots() }

// newMsgID binds a slot to a new message and returns its packed ID: a
// retired slot from the free list when recycling, a fresh slot otherwise.
func (n *Network) newMsgID() packet.MsgID {
	tb := &n.tbl
	var s uint32
	if tb.freeHead < len(tb.free) {
		s = tb.free[tb.freeHead]
		tb.freeHead++
		if tb.freeHead == len(tb.free) {
			clear(tb.free)
			tb.free = tb.free[:0]
			tb.freeHead = 0
		}
	} else {
		s = tb.appendSlot()
	}
	tb.occ[s] = true
	tb.live++
	if tb.live > tb.peakLive {
		tb.peakLive = tb.live
	}
	id := packMsgID(s, tb.gens[s])
	n.nextID = id
	return id
}

// retireExpired runs at the round barrier of every Step when recycling is
// enabled: a live message with no buffered copy anywhere and nothing in
// flight can never be heard from again, so its slot is reclaimed. The
// ascending-slot scan and the FIFO free list make retirement — and every
// ID issued after it — deterministic and shard-count independent. Scan
// cost is O(slots), bounded by the peak live population, plus the row
// reset of each retiree — O(aware) for sparse rows, O(tiles/64) for
// dense ones.
func (n *Network) retireExpired() {
	tb := &n.tbl
	for s := 1; s < len(tb.occ); s++ {
		if !tb.occ[s] || tb.copies[s] != 0 || tb.inflight[s] != 0 {
			continue
		}
		if a := tb.aware[s]; a > 0 {
			tb.ledgerAdd(packMsgID(uint32(s), tb.gens[s]), a)
		}
		tb.gens[s]++
		tb.occ[s] = false
		tb.dead[s] = false
		tb.aware[s] = 0
		tb.resetRow(&tb.present[s])
		tb.resetRow(&tb.seen[s])
		if tb.sparse {
			tb.promoteCand[s>>6] &^= 1 << (uint(s) & 63)
		}
		tb.free = append(tb.free, uint32(s))
		tb.live--
		n.cnt.Retired++
	}
}

// ledgerAdd records a retiree's final aware count, evicting the oldest
// ledger entry once the ring is full. Barrier only.
func (tb *msgTable) ledgerAdd(id packet.MsgID, aware int32) {
	if tb.retCap <= 0 {
		return
	}
	if tb.retired == nil {
		tb.retired = make(map[packet.MsgID]int32)
	}
	if len(tb.retRing) < tb.retCap {
		tb.retRing = append(tb.retRing, id)
	} else {
		delete(tb.retired, tb.retRing[tb.retHead])
		tb.retRing[tb.retHead] = id
		tb.retHead++
		if tb.retHead == len(tb.retRing) {
			tb.retHead = 0
		}
	}
	tb.retired[id] = aware
}

// ledgerEach calls visit for every ledger entry, oldest first — the
// deterministic order snapshots serialize.
func (tb *msgTable) ledgerEach(visit func(id packet.MsgID, aware int32)) {
	for i := 0; i < len(tb.retRing); i++ {
		j := tb.retHead + i
		if j >= len(tb.retRing) {
			j -= len(tb.retRing)
		}
		id := tb.retRing[j]
		visit(id, tb.retired[id])
	}
}

// resetRow clears a retired slot's row back to an empty sparse list (on
// sparse-enabled meshes, pooling a promoted bitmap for the next
// promotion) or to a zeroed dense bitmap (dense meshes). Barrier only.
func (tb *msgTable) resetRow(r *msgRow) {
	if r.bits != nil {
		clear(r.bits)
		if tb.sparse {
			tb.freeRows = append(tb.freeRows, r.bits)
			r.bits = nil
		}
	}
	r.list = r.list[:0]
}

// promoteDue promotes, at the round barrier, every flagged sparse row
// whose cardinality still meets the threshold. Promotion is driven by
// barrier cardinality alone — a shard-count-independent quantity — so
// sequential, sharded and resumed runs agree on every row's tier, which
// keeps their checkpoints byte-identical.
func (tb *msgTable) promoteDue() {
	if !tb.sparse {
		return
	}
	for wi := range tb.promoteCand {
		w := tb.promoteCand[wi]
		if w == 0 {
			continue
		}
		tb.promoteCand[wi] = 0
		for ; w != 0; w &= w - 1 {
			s := wi<<6 + bits.TrailingZeros64(w)
			if s >= len(tb.occ) || !tb.occ[s] {
				continue
			}
			tb.promoteRow(&tb.present[s])
			tb.promoteRow(&tb.seen[s])
		}
	}
}

// promoteRow moves one sparse row to the dense tier if its cardinality
// reached the threshold; rows that shrank back below it (overflow drops,
// expiries) stay sparse and will be re-flagged if they cross again.
func (tb *msgTable) promoteRow(r *msgRow) {
	if r.bits != nil || len(r.list) < tb.promoteAt {
		return
	}
	dense := tb.denseRow()
	for _, t := range r.list {
		dense[t>>6] |= 1 << (t & 63)
	}
	r.bits = dense
	r.list = nil
}

// markPromote flags slot s for the barrier promotion pass. Called with
// the stripe lock held; the candidate word is shared across stripes, so
// it is CASed while shard goroutines are live.
func (tb *msgTable) markPromote(s uint32, par bool) {
	w := &tb.promoteCand[s>>6]
	mask := uint64(1) << (s & 63)
	if !par {
		*w |= mask
		return
	}
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 || atomic.CompareAndSwapUint64(w, old, old|mask) {
			return
		}
	}
}

// current reports whether id names the message its slot is bound to right
// now — the generation check that turns recycled-slot aliases into
// ghosts. Only externally-supplied IDs need it (Aware, AwareAt, decoded
// wire frames, restored packets): IDs reaching the internal hot paths
// ride on live copies, whose existence blocks retirement of their slot.
func (n *Network) current(id packet.MsgID) bool {
	s := msgSlot(id)
	return s != 0 && uint64(s) < uint64(len(n.tbl.gens)) &&
		n.tbl.occ[s] && n.tbl.gens[s] == msgGen(id)
}

// markDead tombstones a delivered unicast under StopSpreadOnDelivery.
func (n *Network) markDead(id packet.MsgID) { n.tbl.dead[msgSlot(id)] = true }

// isDead reports whether id was tombstoned by spread termination. Out of
// range IDs (never issued) are never dead.
func (n *Network) isDead(id packet.MsgID) bool {
	s := msgSlot(id)
	if uint64(s) >= uint64(len(n.tbl.dead)) {
		return false
	}
	return n.tbl.dead[s]
}

// sparseIndex returns the insertion index of t in the sorted list and
// whether t is already there. Hand-rolled (not sort.Search): this runs
// on every sparse-row membership test of the hot phases, and the closure
// call per probe is measurable there.
func sparseIndex(list []uint32, t uint32) (int, bool) {
	lo, hi := 0, len(list)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(list) && list[lo] == t
}

// rowBit reads tile t's membership in slot s's row. Dense rows follow
// the occupancy discipline: while shard goroutines are live (n.par) word
// loads are atomic — lanes only flip bits of their own tiles, but tiles
// of several lanes can share a 64-tile word — unless the lane partition
// is word-aligned (n.alignedLanes), in which case every word is
// lane-private and plain accesses are race-free. Sparse rows take the
// slot's stripe lock under par: concurrent inserts move the backing
// array.
func (n *Network) rowBit(r *msgRow, s uint32, t packet.TileID) bool {
	if r.bits != nil {
		w := &r.bits[t>>6]
		var v uint64
		if n.par && !n.alignedLanes {
			v = atomic.LoadUint64(w)
		} else {
			v = *w
		}
		return v&(1<<(t&63)) != 0
	}
	if n.par {
		mu := &n.tbl.rowMu[s&(rowMuStripes-1)]
		mu.Lock()
		_, found := sparseIndex(r.list, uint32(t))
		mu.Unlock()
		return found
	}
	_, found := sparseIndex(r.list, uint32(t))
	return found
}

// rowSet sets tile t's membership in slot s's row and reports whether it
// was already set. Dense rows CAS shared words under n.par (atomic Or
// lands in Go 1.23; this module builds on 1.22): bit transitions of
// distinct tiles commute, so the final words are exactly the sequential
// engine's regardless of interleaving. Sparse inserts keep the list
// sorted — so its content is the tile set, order-independent — and flag
// the slot for barrier promotion when the cardinality crosses the
// threshold.
func (n *Network) rowSet(r *msgRow, s uint32, t packet.TileID) bool {
	if r.bits != nil {
		w := &r.bits[t>>6]
		mask := uint64(1) << (t & 63)
		if n.par && !n.alignedLanes {
			for {
				old := atomic.LoadUint64(w)
				if old&mask != 0 {
					return true
				}
				if atomic.CompareAndSwapUint64(w, old, old|mask) {
					return false
				}
			}
		}
		old := *w
		*w = old | mask
		return old&mask != 0
	}
	if n.par {
		mu := &n.tbl.rowMu[s&(rowMuStripes-1)]
		mu.Lock()
		was := n.tbl.sparseSet(r, s, uint32(t), true)
		mu.Unlock()
		return was
	}
	return n.tbl.sparseSet(r, s, uint32(t), false)
}

// sparseSet inserts t into the sorted list, reporting prior membership.
func (tb *msgTable) sparseSet(r *msgRow, s, t uint32, par bool) bool {
	i, found := sparseIndex(r.list, t)
	if found {
		return true
	}
	r.list = append(r.list, 0)
	copy(r.list[i+1:], r.list[i:])
	r.list[i] = t
	if len(r.list) >= tb.promoteAt {
		tb.markPromote(s, par)
	}
	return false
}

// rowClear clears tile t's membership in slot s's row and reports
// whether it was set.
func (n *Network) rowClear(r *msgRow, s uint32, t packet.TileID) bool {
	if r.bits != nil {
		w := &r.bits[t>>6]
		mask := uint64(1) << (t & 63)
		if n.par && !n.alignedLanes {
			for {
				old := atomic.LoadUint64(w)
				if old&mask == 0 {
					return false
				}
				if atomic.CompareAndSwapUint64(w, old, old&^mask) {
					return true
				}
			}
		}
		old := *w
		*w = old &^ mask
		return old&mask != 0
	}
	if n.par {
		mu := &n.tbl.rowMu[s&(rowMuStripes-1)]
		mu.Lock()
		was := sparseClear(r, uint32(t))
		mu.Unlock()
		return was
	}
	return sparseClear(r, uint32(t))
}

// sparseClear removes t from the sorted list, reporting prior membership.
func sparseClear(r *msgRow, t uint32) bool {
	i, found := sparseIndex(r.list, t)
	if !found {
		return false
	}
	copy(r.list[i:], r.list[i+1:])
	r.list = r.list[:len(r.list)-1]
	return true
}

// flagsOf returns t's flags for id, zero if the tile never touched it (or
// if id names a retired generation — per-tile history dies with the slot;
// only the aggregate count survives in the retired ledger).
func (t *tile) flagsOf(id packet.MsgID) uint8 {
	n := t.ctx.net
	if !n.current(id) {
		return 0
	}
	s := msgSlot(id)
	var f uint8
	if n.rowBit(&n.tbl.present[s], s, t.id) {
		f |= flagPresent
	}
	if n.rowBit(&n.tbl.seen[s], s, t.id) {
		f |= flagSeen
	}
	return f
}

// addAware adjusts slot s's aware count by delta (always ±1). The bits
// guarding the transitions are tile-local, but the count itself is shared
// across tiles: while shard goroutines are live (n.par) the update is
// atomic. The ±1 transitions commute, so the end-of-phase counts are
// exactly the sequential engine's regardless of interleaving; n.par flips
// only on the stepping goroutine, and the goroutine-spawn / WaitGroup
// barrier orders the flip against every shard's accesses.
func (n *Network) addAware(s uint32, delta int32) {
	if n.par {
		atomic.AddInt32(&n.tbl.aware[s], delta)
		return
	}
	n.tbl.aware[s] += delta
}

// addCopies adjusts the buffered-copy count of slot s; recycle only.
// Unlike the present flag (one bit per tile however many copies the
// no-dedup ablation buffers), this counts actual send-buffer entries, so
// a slot retires only when no copy exists anywhere.
func (n *Network) addCopies(s uint32, delta int32) {
	if n.tbl.copies == nil {
		return
	}
	if n.par {
		atomic.AddInt32(&n.tbl.copies[s], delta)
		return
	}
	n.tbl.copies[s] += delta
}

// addInflight adjusts the in-flight count of slot s; recycle only.
// Incremented when a transmission is committed to an arrival ring (or
// staged for the outbox merge that will schedule it), decremented when
// phase 4 consumes the arrival — whatever its fate.
func (n *Network) addInflight(s uint32, delta int32) {
	if n.tbl.inflight == nil {
		return
	}
	if n.par {
		atomic.AddInt32(&n.tbl.inflight[s], delta)
		return
	}
	n.tbl.inflight[s] += delta
}

// setPresent marks a buffered copy of id at t, updating the aware count
// on the unaware -> aware transition.
func (n *Network) setPresent(t *tile, id packet.MsgID) {
	s := msgSlot(id)
	if n.rowSet(&n.tbl.present[s], s, t.id) {
		return
	}
	if !n.rowBit(&n.tbl.seen[s], s, t.id) {
		n.addAware(s, 1)
	}
}

// clearPresent removes the buffered-copy mark, decrementing the aware
// count if the tile has also never taken delivery — the same instant the
// scanning Aware() stopped counting the tile.
func (n *Network) clearPresent(t *tile, id packet.MsgID) {
	s := msgSlot(id)
	if !n.rowClear(&n.tbl.present[s], s, t.id) {
		return
	}
	if !n.rowBit(&n.tbl.seen[s], s, t.id) {
		n.addAware(s, -1)
	}
}

// setSeen marks id as delivered at (or originated by) t.
func (n *Network) setSeen(t *tile, id packet.MsgID) {
	s := msgSlot(id)
	if n.rowSet(&n.tbl.seen[s], s, t.id) {
		return
	}
	if !n.rowBit(&n.tbl.present[s], s, t.id) {
		n.addAware(s, 1)
	}
}

// MemStats summarizes the message-table footprint of a Network — the
// state whose growth the mega-mesh refactor bounds. All byte figures are
// computed from the table's own geometry (rows, parallel arrays, free
// list, retired ledger), not from runtime heap statistics, so they are
// deterministic and comparable across runs.
type MemStats struct {
	// Slots is the table's slot count — with recycling, bounded by the
	// peak live population; without, the number of messages ever issued.
	Slots int
	// Live is the number of currently occupied slots.
	Live int
	// PeakLive is the high-water mark of Live over the run.
	PeakLive int
	// DenseRows counts rows currently in the dense tier (including
	// pooled retired bitmaps); on dense meshes, always 2×Slots.
	DenseRows int
	// RetiredLedger is the number of entries in the retired-awareness
	// ledger (tile-independent, bounded by the ledger ring).
	RetiredLedger int
	// TableBytes is the message table's total footprint: both rows per
	// slot (dense words or sparse entries) plus every parallel array,
	// the free list and an estimate (two words per map entry plus the
	// ring) of the retired ledger.
	TableBytes int
}

// Mem returns the current message-table footprint. Divide TableBytes by
// the tile count for the bytes-per-tile figure the scaling experiments
// report.
func (n *Network) Mem() MemStats {
	tb := &n.tbl
	slots := tb.slots()
	dense := len(tb.freeRows)
	rowBytes := len(tb.freeRows) * tb.stride * 8
	for s := 1; s <= slots; s++ {
		for _, r := range []*msgRow{&tb.present[s], &tb.seen[s]} {
			if r.bits != nil {
				dense++
				rowBytes += tb.stride * 8
			} else {
				rowBytes += cap(r.list) * 4
			}
		}
	}
	bytes := rowBytes +
		len(tb.gens)*4 + len(tb.aware)*4 + len(tb.dead) + len(tb.occ) +
		len(tb.copies)*4 + len(tb.inflight)*4 + len(tb.promoteCand)*8 +
		len(tb.free)*4 + len(tb.retired)*16 + len(tb.retRing)*8
	return MemStats{
		Slots:         slots,
		Live:          tb.live,
		PeakLive:      tb.peakLive,
		DenseRows:     dense,
		RetiredLedger: len(tb.retired),
		TableBytes:    bytes,
	}
}

// awareScan recomputes slot s's aware count from its rows — the
// cardinality of present ∪ seen, on whatever tier each row is. Restore
// uses it to cross-check the serialized counts; it is the slow-path
// truth the incremental count must always equal. Barrier only.
func (tb *msgTable) awareScan(s uint32) int32 {
	p, q := &tb.present[s], &tb.seen[s]
	switch {
	case p.bits != nil && q.bits != nil:
		var c int
		for i := range p.bits {
			c += bits.OnesCount64(p.bits[i] | q.bits[i])
		}
		return int32(c)
	case p.bits == nil && q.bits == nil:
		return int32(unionLen(p.list, q.list))
	default:
		dense, sparse := p, q
		if dense.bits == nil {
			dense, sparse = q, p
		}
		var c int
		for _, w := range dense.bits {
			c += bits.OnesCount64(w)
		}
		for _, t := range sparse.list {
			if dense.bits[t>>6]&(1<<(t&63)) == 0 {
				c++
			}
		}
		return int32(c)
	}
}

// unionLen counts the union of two sorted lists.
func unionLen(a, b []uint32) int {
	c, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		c++
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return c + (len(a) - i) + (len(b) - j)
}
