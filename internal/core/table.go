package core

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/packet"
)

// This file holds the per-message state tables of the engine: which tiles
// currently buffer a copy of each message (present), which have taken
// delivery or originated it (seen), the incremental aware counts, the
// spread-stop tombstones — and the slot allocator that bounds all of it.
//
// Representation. A MsgID packs a table slot in its low 32 bits and a
// generation (epoch) tag in its high 32 bits. Per-slot state is slot-major:
// one []uint64 tile bitmap per slot for the present flags and one for the
// seen flags, so dedup, the delivery-once filter, AwareAt and the
// spread-stop check are all single word loads, awareness cross-checks are
// word-wise popcounts, and retiring a message frees O(tiles/64) words
// instead of touching a byte in every tile's private array (the former
// per-tile []uint8 layout, whose memory was O(tiles × ever-issued)).
//
// Lifecycle. Without Config.Recycle the allocator only ever appends:
// generations stay 0, packed IDs coincide numerically with the former
// dense sequence 1, 2, 3, ..., and every byte of observable behaviour is
// unchanged. With Recycle enabled, a message whose buffered copies have
// all expired and whose in-flight copies have drained is retired at the
// next round barrier (retireExpired): its final aware count moves to the
// retired ledger, its rows are cleared, its slot's generation increments
// and the slot joins a FIFO free list for the next newMsgID. Memory is
// then bounded by the peak number of concurrently-live messages. A wire
// frame that decodes to a stale generation names a message that no longer
// exists ("ghost"): it is discarded as a detected upset and counted in
// Counters.GhostFrames, so a recycled slot can never alias old traffic.

// Per-tile message flags, as reported by tile.flagsOf.
const (
	flagPresent uint8 = 1 << 0 // a copy is in the tile's send buffer
	flagSeen    uint8 = 1 << 1 // the message was delivered here (or originated here)
)

// MsgID packing: low 32 bits select the table slot, high 32 bits carry
// the slot's generation at issue time. Slot 0 is the unused sentinel
// (MsgID 0 means "no message"), so generation-0 packed IDs are exactly
// the dense IDs the engine issued before recycling existed.
const msgGenShift = 32

// packMsgID composes a MsgID from a slot and its generation.
func packMsgID(slot, gen uint32) packet.MsgID {
	return packet.MsgID(gen)<<msgGenShift | packet.MsgID(slot)
}

// msgSlot extracts the table slot of id.
func msgSlot(id packet.MsgID) uint32 { return uint32(id) }

// msgGen extracts the generation tag of id.
func msgGen(id packet.MsgID) uint32 { return uint32(id >> msgGenShift) }

// msgTable is the network-wide message-state store. All per-slot slices
// are indexed by slot; index 0 is the unused sentinel. Scalar state
// (generation, aware count, tombstone, occupancy) is parallel-array; the
// present/seen flags are tile bitmaps handed out by the row arena.
type msgTable struct {
	words  int // words per tile bitmap (ceil(tiles/64))
	stride int // allocation stride of a row, >= words (cache-line padding)
	arena  []uint64

	gens     []uint32   // generation currently bound to each slot
	aware    []int32    // tiles aware (present|seen non-empty); atomic under par
	copies   []int32    // buffered copies network-wide (recycle only); atomic under par
	inflight []int32    // copies scheduled in arrival rings (recycle only); atomic under par
	dead     []bool     // spread-stop tombstone
	occ      []bool     // slot currently bound to a live message
	present  [][]uint64 // per-slot tile bitmap: a copy is buffered at tile
	seen     [][]uint64 // per-slot tile bitmap: delivered at / originated by tile

	// FIFO free list of retired slots: freed at freeTail-side append,
	// reused from freeHead. FIFO (not LIFO) keeps slot reuse order
	// independent of retirement batching, and maximizes the gap between a
	// slot's retirement and its reuse.
	free     []uint32
	freeHead int

	// retired maps a retired message's full packed ID to its final aware
	// count, so Aware stays answerable (and the metrics recorder's
	// awareness series stays frozen, not zeroed) after the slot moved on.
	// Entries are O(retired messages) but tile-independent: they are the
	// price of keeping history without per-tile state. Zero-aware retirees
	// are not stored (absent means 0).
	retired map[packet.MsgID]int32

	live     int // occupied slots
	peakLive int // high-water mark of live
}

// tableStridePadTiles is the mesh size from which rows are padded to
// whole 64-byte cache lines: shard lanes CAS adjacent words of adjacent
// rows concurrently, and on meshes large enough to shard, padding keeps
// two rows from false-sharing a line. Below it (rows shorter than a
// line) padding would multiply the table's memory for meshes where
// sharding is pointless anyway.
const tableStridePadTiles = 512

// tableArenaRows is how many rows a fresh arena block carves: row
// allocation costs one make per tableArenaRows slots instead of one
// each, and keeps rows of consecutive slots contiguous.
const tableArenaRows = 32

// initTable sizes the table for a tiles-tile network.
func (tb *msgTable) initTable(tiles int) {
	tb.words = (tiles + 63) / 64
	tb.stride = tb.words
	if tiles >= tableStridePadTiles {
		tb.stride = (tb.words + 7) &^ 7
	}
	tb.gens = make([]uint32, 1, 8)
	tb.aware = make([]int32, 1, 8)
	tb.dead = make([]bool, 1, 8)
	tb.occ = make([]bool, 1, 8)
	tb.present = make([][]uint64, 1, 8)
	tb.seen = make([][]uint64, 1, 8)
}

// row carves one zeroed tile bitmap from the arena.
func (tb *msgTable) row() []uint64 {
	if len(tb.arena) < tb.stride {
		tb.arena = make([]uint64, tb.stride*tableArenaRows)
	}
	r := tb.arena[:tb.words:tb.stride]
	tb.arena = tb.arena[tb.stride:]
	return r
}

// appendSlot extends every parallel array by one slot and returns its
// index. Slices double via append, so issuing m messages reallocates
// each array O(log m) times over a run; rows come from the arena.
func (tb *msgTable) appendSlot() uint32 {
	s := uint32(len(tb.gens))
	tb.gens = append(tb.gens, 0)
	tb.aware = append(tb.aware, 0)
	tb.dead = append(tb.dead, false)
	tb.occ = append(tb.occ, false)
	tb.present = append(tb.present, tb.row())
	tb.seen = append(tb.seen, tb.row())
	if tb.copies != nil {
		tb.copies = append(tb.copies, 0)
		tb.inflight = append(tb.inflight, 0)
	}
	return s
}

// slots returns how many slots the table holds (excluding the sentinel).
func (tb *msgTable) slots() int { return len(tb.gens) - 1 }

// issuedSlots returns how many message slots the network's table covers —
// with recycling off, exactly how many messages were ever issued.
func (n *Network) issuedSlots() int { return n.tbl.slots() }

// newMsgID binds a slot to a new message and returns its packed ID: a
// retired slot from the free list when recycling, a fresh slot otherwise.
func (n *Network) newMsgID() packet.MsgID {
	tb := &n.tbl
	var s uint32
	if tb.freeHead < len(tb.free) {
		s = tb.free[tb.freeHead]
		tb.freeHead++
		if tb.freeHead == len(tb.free) {
			clear(tb.free)
			tb.free = tb.free[:0]
			tb.freeHead = 0
		}
	} else {
		s = tb.appendSlot()
	}
	tb.occ[s] = true
	tb.live++
	if tb.live > tb.peakLive {
		tb.peakLive = tb.live
	}
	id := packMsgID(s, tb.gens[s])
	n.nextID = id
	return id
}

// retireExpired runs at the round barrier of every Step when recycling is
// enabled: a live message with no buffered copy anywhere and nothing in
// flight can never be heard from again, so its slot is reclaimed. The
// ascending-slot scan and the FIFO free list make retirement — and every
// ID issued after it — deterministic and shard-count independent. Scan
// cost is O(slots), bounded by the peak live population, plus
// O(tiles/64) to clear the rows of each retiree.
func (n *Network) retireExpired() {
	tb := &n.tbl
	for s := 1; s < len(tb.occ); s++ {
		if !tb.occ[s] || tb.copies[s] != 0 || tb.inflight[s] != 0 {
			continue
		}
		if a := tb.aware[s]; a > 0 {
			if tb.retired == nil {
				tb.retired = make(map[packet.MsgID]int32)
			}
			tb.retired[packMsgID(uint32(s), tb.gens[s])] = a
		}
		tb.gens[s]++
		tb.occ[s] = false
		tb.dead[s] = false
		tb.aware[s] = 0
		clear(tb.present[s])
		clear(tb.seen[s])
		tb.free = append(tb.free, uint32(s))
		tb.live--
		n.cnt.Retired++
	}
}

// current reports whether id names the message its slot is bound to right
// now — the generation check that turns recycled-slot aliases into
// ghosts. Only externally-supplied IDs need it (Aware, AwareAt, decoded
// wire frames, restored packets): IDs reaching the internal hot paths
// ride on live copies, whose existence blocks retirement of their slot.
func (n *Network) current(id packet.MsgID) bool {
	s := msgSlot(id)
	return s != 0 && uint64(s) < uint64(len(n.tbl.gens)) &&
		n.tbl.occ[s] && n.tbl.gens[s] == msgGen(id)
}

// markDead tombstones a delivered unicast under StopSpreadOnDelivery.
func (n *Network) markDead(id packet.MsgID) { n.tbl.dead[msgSlot(id)] = true }

// isDead reports whether id was tombstoned by spread termination. Out of
// range IDs (never issued) are never dead.
func (n *Network) isDead(id packet.MsgID) bool {
	s := msgSlot(id)
	if uint64(s) >= uint64(len(n.tbl.dead)) {
		return false
	}
	return n.tbl.dead[s]
}

// rowBit reads tile t's bit of row. While shard goroutines are live
// (n.par) word loads are atomic: lanes only flip bits of their own tiles,
// but tiles of several lanes can share a 64-tile word — unless the lane
// partition is word-aligned (n.alignedLanes), in which case every word
// is lane-private and plain accesses are race-free.
func (n *Network) rowBit(row []uint64, t packet.TileID) bool {
	w := &row[t>>6]
	var v uint64
	if n.par && !n.alignedLanes {
		v = atomic.LoadUint64(w)
	} else {
		v = *w
	}
	return v&(1<<(t&63)) != 0
}

// rowSet sets tile t's bit of row and reports whether it was already set.
// Under n.par the word update is a CAS loop (atomic Or lands in Go 1.23;
// this module builds on 1.22): bit transitions of distinct tiles commute,
// so the final words are exactly the sequential engine's regardless of
// interleaving.
func (n *Network) rowSet(row []uint64, t packet.TileID) bool {
	w := &row[t>>6]
	mask := uint64(1) << (t & 63)
	if n.par && !n.alignedLanes {
		for {
			old := atomic.LoadUint64(w)
			if old&mask != 0 {
				return true
			}
			if atomic.CompareAndSwapUint64(w, old, old|mask) {
				return false
			}
		}
	}
	old := *w
	*w = old | mask
	return old&mask != 0
}

// rowClear clears tile t's bit of row and reports whether it was set.
func (n *Network) rowClear(row []uint64, t packet.TileID) bool {
	w := &row[t>>6]
	mask := uint64(1) << (t & 63)
	if n.par && !n.alignedLanes {
		for {
			old := atomic.LoadUint64(w)
			if old&mask == 0 {
				return false
			}
			if atomic.CompareAndSwapUint64(w, old, old&^mask) {
				return true
			}
		}
	}
	old := *w
	*w = old &^ mask
	return old&mask != 0
}

// flagsOf returns t's flags for id, zero if the tile never touched it (or
// if id names a retired generation — per-tile history dies with the slot;
// only the aggregate count survives in the retired ledger).
func (t *tile) flagsOf(id packet.MsgID) uint8 {
	n := t.ctx.net
	if !n.current(id) {
		return 0
	}
	s := msgSlot(id)
	var f uint8
	if n.rowBit(n.tbl.present[s], t.id) {
		f |= flagPresent
	}
	if n.rowBit(n.tbl.seen[s], t.id) {
		f |= flagSeen
	}
	return f
}

// addAware adjusts slot s's aware count by delta (always ±1). The bits
// guarding the transitions are tile-local, but the count itself is shared
// across tiles: while shard goroutines are live (n.par) the update is
// atomic. The ±1 transitions commute, so the end-of-phase counts are
// exactly the sequential engine's regardless of interleaving; n.par flips
// only on the stepping goroutine, and the goroutine-spawn / WaitGroup
// barrier orders the flip against every shard's accesses.
func (n *Network) addAware(s uint32, delta int32) {
	if n.par {
		atomic.AddInt32(&n.tbl.aware[s], delta)
		return
	}
	n.tbl.aware[s] += delta
}

// addCopies adjusts the buffered-copy count of slot s; recycle only.
// Unlike the present flag (one bit per tile however many copies the
// no-dedup ablation buffers), this counts actual send-buffer entries, so
// a slot retires only when no copy exists anywhere.
func (n *Network) addCopies(s uint32, delta int32) {
	if n.tbl.copies == nil {
		return
	}
	if n.par {
		atomic.AddInt32(&n.tbl.copies[s], delta)
		return
	}
	n.tbl.copies[s] += delta
}

// addInflight adjusts the in-flight count of slot s; recycle only.
// Incremented when a transmission is committed to an arrival ring (or
// staged for the outbox merge that will schedule it), decremented when
// phase 4 consumes the arrival — whatever its fate.
func (n *Network) addInflight(s uint32, delta int32) {
	if n.tbl.inflight == nil {
		return
	}
	if n.par {
		atomic.AddInt32(&n.tbl.inflight[s], delta)
		return
	}
	n.tbl.inflight[s] += delta
}

// setPresent marks a buffered copy of id at t, updating the aware count
// on the unaware -> aware transition.
func (n *Network) setPresent(t *tile, id packet.MsgID) {
	s := msgSlot(id)
	if n.rowSet(n.tbl.present[s], t.id) {
		return
	}
	if !n.rowBit(n.tbl.seen[s], t.id) {
		n.addAware(s, 1)
	}
}

// clearPresent removes the buffered-copy mark, decrementing the aware
// count if the tile has also never taken delivery — the same instant the
// scanning Aware() stopped counting the tile.
func (n *Network) clearPresent(t *tile, id packet.MsgID) {
	s := msgSlot(id)
	if !n.rowClear(n.tbl.present[s], t.id) {
		return
	}
	if !n.rowBit(n.tbl.seen[s], t.id) {
		n.addAware(s, -1)
	}
}

// setSeen marks id as delivered at (or originated by) t.
func (n *Network) setSeen(t *tile, id packet.MsgID) {
	s := msgSlot(id)
	if n.rowSet(n.tbl.seen[s], t.id) {
		return
	}
	if !n.rowBit(n.tbl.present[s], t.id) {
		n.addAware(s, 1)
	}
}

// MemStats summarizes the message-table footprint of a Network — the
// state whose growth the mega-mesh refactor bounds. All byte figures are
// computed from the table's own geometry (rows, parallel arrays, free
// list, retired ledger), not from runtime heap statistics, so they are
// deterministic and comparable across runs.
type MemStats struct {
	// Slots is the table's slot count — with recycling, bounded by the
	// peak live population; without, the number of messages ever issued.
	Slots int
	// Live is the number of currently occupied slots.
	Live int
	// PeakLive is the high-water mark of Live over the run.
	PeakLive int
	// RetiredLedger is the number of entries in the retired-awareness
	// ledger (tile-independent, O(retired messages with nonzero aware)).
	RetiredLedger int
	// TableBytes is the message table's total footprint: both tile-bitmap
	// rows per slot plus every parallel array, the free list and an
	// estimate (two words per entry) of the retired ledger.
	TableBytes int
}

// Mem returns the current message-table footprint. Divide TableBytes by
// the tile count for the bytes-per-tile figure the scaling experiments
// report.
func (n *Network) Mem() MemStats {
	tb := &n.tbl
	slots := tb.slots()
	bytes := slots*tb.stride*8*2 + // present + seen rows
		len(tb.gens)*4 + len(tb.aware)*4 + len(tb.dead) + len(tb.occ) +
		len(tb.copies)*4 + len(tb.inflight)*4 +
		len(tb.free)*4 + len(tb.retired)*16
	return MemStats{
		Slots:         slots,
		Live:          tb.live,
		PeakLive:      tb.peakLive,
		RetiredLedger: len(tb.retired),
		TableBytes:    bytes,
	}
}

// awareScan recomputes slot s's aware count word-wise from its rows —
// the popcount of present|seen. Restore uses it to cross-check the
// serialized counts; it is the slow-path truth the incremental count
// must always equal.
func (tb *msgTable) awareScan(s uint32) int32 {
	var c int
	p, q := tb.present[s], tb.seen[s]
	for i := range p {
		c += bits.OnesCount64(p[i] | q[i])
	}
	return int32(c)
}
