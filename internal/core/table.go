package core

import (
	"sync/atomic"

	"repro/internal/packet"
)

// This file holds the flat per-message state tables that replace the
// engine's former hash maps (per-tile present/seen sets and the
// network-wide spread-stop set). MsgIDs are issued densely from 1 by
// newMsgID, so a message's state lives at slice index ID: dedup, the
// delivery-once filter, Aware/AwareAt and the spread-stop check are all
// O(1) loads with no hashing, and the aware count per message is
// maintained incrementally instead of being recomputed by scanning every
// tile each round.

// Per-tile message flags.
const (
	flagPresent uint8 = 1 << 0 // a copy is in the tile's send buffer
	flagSeen    uint8 = 1 << 1 // the message was delivered here (or originated here)
)

// msgState is the network-wide per-message record, indexed by MsgID.
type msgState struct {
	// aware counts tiles whose flags for this message are non-zero —
	// exactly the tiles the scanning Aware() used to count.
	aware int32
	// dead marks a delivered unicast under StopSpreadOnDelivery. Folding
	// the tombstone into this table (instead of the former dedicated map)
	// bounds its memory to the message table that must exist anyway.
	dead bool
}

// stateOf returns the state record for id, which must have been issued by
// newMsgID (the engine validates decoded IDs before using them).
func (n *Network) stateOf(id packet.MsgID) *msgState { return &n.msgs[id] }

// isDead reports whether id was tombstoned by spread termination. Out of
// range IDs (never issued) are never dead.
func (n *Network) isDead(id packet.MsgID) bool {
	if uint64(id) >= uint64(len(n.msgs)) {
		return false
	}
	return n.msgs[id].dead
}

// flagsOf returns t's flags for id, zero if the tile never touched it.
func (t *tile) flagsOf(id packet.MsgID) uint8 {
	if uint64(id) >= uint64(len(t.flags)) {
		return 0
	}
	return t.flags[id]
}

// growFlags extends t.flags to cover id. Growth doubles, so a tile that
// touches m messages reallocates O(log m) times over a whole run.
func (t *tile) growFlags(id packet.MsgID) {
	need := int(id) + 1
	if need <= len(t.flags) {
		return
	}
	if need <= cap(t.flags) {
		n := len(t.flags)
		t.flags = t.flags[:need]
		for i := n; i < need; i++ {
			t.flags[i] = 0
		}
		return
	}
	grown := make([]uint8, need, 2*need)
	copy(grown, t.flags)
	t.flags = grown
}

// addAware adjusts id's aware count by delta (always ±1). The flags
// guarding the transitions are tile-local, but the count itself is shared
// across tiles: while shard goroutines are live (n.par) the update is
// atomic. The ±1 transitions commute, so the end-of-phase counts are
// exactly the sequential engine's regardless of interleaving; n.par flips
// only on the stepping goroutine, and the goroutine-spawn / WaitGroup
// barrier orders the flip against every shard's accesses.
func (n *Network) addAware(id packet.MsgID, delta int32) {
	if n.par {
		atomic.AddInt32(&n.msgs[id].aware, delta)
		return
	}
	n.msgs[id].aware += delta
}

// setPresent marks a buffered copy of id at t, updating the aware count on
// the 0 -> aware transition.
func (n *Network) setPresent(t *tile, id packet.MsgID) {
	f := t.flagsOf(id)
	if f&flagPresent != 0 {
		return
	}
	t.growFlags(id)
	t.flags[id] = f | flagPresent
	if f == 0 {
		n.addAware(id, 1)
	}
}

// clearPresent removes the buffered-copy mark, decrementing the aware
// count if the tile has also never taken delivery — the same instant the
// scanning Aware() stopped counting the tile.
func (n *Network) clearPresent(t *tile, id packet.MsgID) {
	f := t.flagsOf(id)
	if f&flagPresent == 0 {
		return
	}
	t.flags[id] = f &^ flagPresent
	if f == flagPresent {
		n.addAware(id, -1)
	}
}

// setSeen marks id as delivered at (or originated by) t.
func (n *Network) setSeen(t *tile, id packet.MsgID) {
	f := t.flagsOf(id)
	if f&flagSeen != 0 {
		return
	}
	t.growFlags(id)
	t.flags[id] = f | flagSeen
	if f == 0 {
		n.addAware(id, 1)
	}
}
