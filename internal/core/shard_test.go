package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/topology"
)

// This file pins the sharded engine's one hard promise: Config.Shards is
// bit-identical to the sequential engine at any shard count. Every
// scenario below runs once sequentially and once per shard count, and the
// complete observable record — event sequence, delivery sequence,
// counters, aware tables — must match exactly.

// deliverRec is one OnDeliver invocation, payload included so a sharded
// run cannot get away with delivering the right ID with a corrupted body.
type deliverRec struct {
	tile    packet.TileID
	round   int
	id      packet.MsgID
	payload string
}

// shardSnapshot is the full observable outcome of one run.
type shardSnapshot struct {
	events   []Event
	delivers []deliverRec
	cnt      Counters
	aware    []int
	awareAt  []bool
	rounds   int
}

// injection schedules one Inject call immediately before a given round.
type injection struct {
	beforeRound int
	src, dst    packet.TileID
	kind        packet.Kind
	payload     string
}

// shardScenario is one engine configuration to replay at several shard
// counts. cfg must return a fresh Config each call (hooks are attached
// per run); setup attaches processes, routers and forward limits.
type shardScenario struct {
	name   string
	cfg    func() Config
	setup  func(n *Network)
	inject []injection
	rounds int
}

// clusterTopo builds the Chapter 5 style two-cluster fabric used by the
// router scenario: two 3x3 gossip grids (tiles 0-8 and 9-17) joined by a
// single bridge link 8<->9.
func clusterTopo(tb testing.TB) *topology.Graph {
	tb.Helper()
	g := topology.NewGraph(18)
	link := func(a, b int) {
		if err := g.AddLink(packet.TileID(a), packet.TileID(b)); err != nil {
			tb.Fatalf("AddLink(%d,%d): %v", a, b, err)
		}
	}
	for c := 0; c < 2; c++ {
		base := c * 9
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				id := base + y*3 + x
				if x < 2 {
					link(id, id+1)
				}
				if y < 2 {
					link(id, id+3)
				}
			}
		}
	}
	link(8, 9)
	return g
}

func shardScenarios(tb testing.TB) []shardScenario {
	return []shardScenario{
		{
			// Analytic fault mix on a grid: upsets, overflows, crashed
			// tiles and links all change counters and RNG consumption.
			name: "grid-analytic-faults",
			cfg: func() Config {
				return Config{
					Topo: topology.NewGrid(6, 6), P: 0.45, TTL: 8,
					MaxRounds: 1000, Seed: 11,
					Fault: fault.Model{
						PUpset: 0.1, POverflow: 0.05, PLinkCrash: 0.05,
						DeadTiles: 3, Protect: []packet.TileID{0, 14, 35},
					},
				}
			},
			inject: []injection{
				{beforeRound: 0, src: 0, dst: packet.Broadcast},
				{beforeRound: 4, src: 35, dst: 14, kind: 1, payload: "mid-run"},
			},
			rounds: 40,
		},
		{
			// Synchronization skew: SyncSlip spreads arrivals over future
			// rounds, exercising the arrival-ring merge across rounds.
			name: "grid-sync-skew",
			cfg: func() Config {
				return Config{
					Topo: topology.NewGrid(5, 5), P: 0.6, TTL: 10,
					MaxRounds: 1000, Seed: 7,
					Fault: fault.Model{SigmaSync: 1.2},
				}
			},
			inject: []injection{
				{beforeRound: 0, src: 12, dst: packet.Broadcast, payload: "skewed"},
			},
			rounds: 40,
		},
		{
			// Literal upsets: wire frames, CRC rejections and the
			// per-lane frame pools (frames migrate between shards).
			name: "grid-literal-upsets",
			cfg: func() Config {
				return Config{
					Topo: topology.NewGrid(5, 5), P: 0.7, TTL: 9,
					MaxRounds: 1000, Seed: 21,
					Fault: fault.Model{LiteralUpsets: true, PUpset: 0.15},
				}
			},
			inject: []injection{
				{beforeRound: 0, src: 0, dst: packet.Broadcast, payload: "literal payload"},
				{beforeRound: 3, src: 24, dst: 0, kind: 2, payload: "return traffic"},
			},
			rounds: 40,
		},
		{
			// PortWeight biasing plus a hard buffer cap: overflow events
			// and weighted RNG draws must replay exactly.
			name: "torus-portweight-bufcap",
			cfg: func() Config {
				return Config{
					Topo: topology.NewTorus(4, 4), P: 0.8, TTL: 12,
					BufferCap: 2, MaxRounds: 1000, Seed: 5,
					PortWeight: func(from, to packet.TileID, p *packet.Packet) float64 {
						if to < from {
							return 0.5
						}
						return 1.0
					},
				}
			},
			inject: []injection{
				{beforeRound: 0, src: 0, dst: packet.Broadcast},
				{beforeRound: 1, src: 5, dst: packet.Broadcast},
				{beforeRound: 2, src: 10, dst: packet.Broadcast},
			},
			rounds: 30,
		},
		{
			// Dedup disabled: duplicate copies accumulate, stressing the
			// aging and overflow paths with larger buffers.
			name: "grid-dedup-off",
			cfg: func() Config {
				return Config{
					Topo: topology.NewGrid(4, 4), P: 0.5, TTL: 5,
					BufferCap: 3, DisableDedup: true, MaxRounds: 1000, Seed: 3,
				}
			},
			inject: []injection{
				{beforeRound: 0, src: 0, dst: packet.Broadcast},
				{beforeRound: 0, src: 15, dst: packet.Broadcast},
			},
			rounds: 25,
		},
		{
			// 256 tiles: the smallest mesh the invariance shard counts
			// split both ways — word-aligned lanes at 2 and 4 shards
			// (lane-private bitmap words, plain bit flips) and the
			// unaligned CAS fallback at 7. The fault mix keeps occupancy
			// bits churning at the lane-boundary words.
			name: "grid16-aligned-lanes",
			cfg: func() Config {
				return Config{
					Topo: topology.NewGrid(16, 16), P: 0.5, TTL: 9,
					MaxRounds: 1000, Seed: 41,
					Fault: fault.Model{PUpset: 0.05, SigmaSync: 0.8},
				}
			},
			inject: []injection{
				{beforeRound: 0, src: 0, dst: packet.Broadcast, payload: "aligned"},
				{beforeRound: 2, src: 255, dst: 0, kind: 1, payload: "far corner"},
				{beforeRound: 6, src: 128, dst: packet.Broadcast},
			},
			rounds: 35,
		},
		{
			// Batch kernel, mask-lane sampler: P >= 1/16 on a degree-4
			// grid draws one 64-bit mask per message. Faults keep the
			// downstream transmit/receive draws in the mix.
			name: "grid-batch-mask",
			cfg: func() Config {
				return Config{
					Topo: topology.NewGrid(6, 6), P: 0.4, TTL: 9,
					MaxRounds: 1000, Seed: 51, BatchDraws: true,
					Fault: fault.Model{PUpset: 0.08, SigmaSync: 0.6},
				}
			},
			inject: []injection{
				{beforeRound: 0, src: 0, dst: packet.Broadcast, payload: "mask"},
				{beforeRound: 3, src: 35, dst: 2, kind: 1},
			},
			rounds: 35,
		},
		{
			// Batch kernel, geometric-skip sampler: P below the mask
			// floor with several buffered messages per tile (broadcasts
			// from four corners, long TTL) makes the flattened-trial
			// skip path the cost winner; thin tiles fall back to the
			// exact per-port draws, so both batch branches run.
			name: "grid-batch-skip",
			cfg: func() Config {
				return Config{
					Topo: topology.NewGrid(6, 6), P: 0.03, TTL: 14,
					MaxRounds: 1000, Seed: 52, BatchDraws: true,
				}
			},
			inject: []injection{
				{beforeRound: 0, src: 0, dst: packet.Broadcast, payload: "skip-a"},
				{beforeRound: 0, src: 5, dst: packet.Broadcast, payload: "skip-b"},
				{beforeRound: 0, src: 30, dst: packet.Broadcast, payload: "skip-c"},
				{beforeRound: 1, src: 35, dst: packet.Broadcast, payload: "skip-d"},
				{beforeRound: 2, src: 14, dst: packet.Broadcast, payload: "skip-e"},
			},
			rounds: 40,
		},
		{
			// Two gossip clusters bridged by deterministic routers with a
			// serializing forward limit — the round-robin cursor path.
			name: "cluster-routers-fwdlimit",
			cfg: func() Config {
				return Config{
					Topo: clusterTopo(tb), P: 0.6, TTL: 10,
					MaxRounds: 1000, Seed: 13,
				}
			},
			setup: func(n *Network) {
				n.SetRouter(8, func(p *packet.Packet) []packet.TileID {
					return []packet.TileID{9, 7, 5}
				})
				n.SetRouter(9, func(p *packet.Packet) []packet.TileID {
					return []packet.TileID{8, 10, 12}
				})
				n.SetForwardLimit(8, 1)
				n.SetForwardLimit(9, 1)
			},
			inject: []injection{
				{beforeRound: 0, src: 0, dst: 17, kind: 1, payload: "cross-cluster"},
				{beforeRound: 2, src: 13, dst: 4, kind: 1, payload: "backhaul"},
				{beforeRound: 5, src: 2, dst: packet.Broadcast},
			},
			rounds: 50,
		},
		{
			// StopSpreadOnDelivery writes cross-tile tombstones mid-phase,
			// which forces the sequential phase-4 fallback — the result
			// must still be identical.
			name: "stop-spread-on-delivery",
			cfg: func() Config {
				return Config{
					Topo: topology.NewGrid(5, 5), P: 0.7, TTL: 12,
					StopSpreadOnDelivery: true, MaxRounds: 1000, Seed: 17,
				}
			},
			inject: []injection{
				{beforeRound: 0, src: 0, dst: 24, kind: 1, payload: "killed early"},
				{beforeRound: 1, src: 20, dst: 4, kind: 1},
			},
			rounds: 30,
		},
		{
			// Attached processes, including a Receiver (which also forces
			// the sequential phase-4 fallback) and a mid-run Broadcast.
			name: "grid-processes-receiver",
			cfg: func() Config {
				return Config{
					Topo: topology.NewGrid(4, 4), P: 0.6, TTL: 10,
					MaxRounds: 1000, Seed: 29,
				}
			},
			setup: func(n *Network) {
				n.Attach(0, &senderProc{dst: 15, payload: []byte("to sink")})
				n.Attach(15, &sinkProc{})
				n.Attach(5, &broadcastOnce{})
			},
			rounds: 30,
		},
	}
}

// runShardScenario executes one scenario at the given shard count and
// returns the full observable record.
func runShardScenario(tb testing.TB, sc shardScenario, shards int) shardSnapshot {
	tb.Helper()
	var snap shardSnapshot
	cfg := sc.cfg()
	cfg.Shards = shards
	cfg.OnEvent = func(ev Event) { snap.events = append(snap.events, ev) }
	cfg.OnDeliver = func(tl packet.TileID, p *packet.Packet, round int) {
		snap.delivers = append(snap.delivers, deliverRec{
			tile: tl, round: round, id: p.ID, payload: string(p.Payload),
		})
	}
	n, err := New(cfg)
	if err != nil {
		tb.Fatalf("%s/shards=%d: %v", sc.name, shards, err)
	}
	if sc.setup != nil {
		sc.setup(n)
	}
	var ids []packet.MsgID
	for round := 0; round < sc.rounds; round++ {
		for _, in := range sc.inject {
			if in.beforeRound != round {
				continue
			}
			var payload []byte
			if in.payload != "" {
				payload = []byte(in.payload)
			}
			ids = append(ids, mustInject(tb, n, in.src, in.dst, in.kind, payload))
		}
		n.Step()
	}
	snap.cnt = n.Counters()
	snap.rounds = n.Round()
	tiles := n.Topology().Tiles()
	for _, id := range ids {
		snap.aware = append(snap.aware, n.Aware(id))
		for ti := 0; ti < tiles; ti++ {
			snap.awareAt = append(snap.awareAt, n.AwareAt(id, packet.TileID(ti)))
		}
	}
	return snap
}

// TestShardCountInvariance is the sharded engine's contract test: for
// every scenario, runs at shard counts 2, 4 and 7 must be bit-identical
// to the sequential run — same event sequence, same delivery sequence
// (payloads included), same counters, same aware tables, round by round.
// CI runs this test under -race, which also exercises the engine's
// synchronization claims (tile-local writes, atomic aware counts, barrier
// ordering).
func TestShardCountInvariance(t *testing.T) {
	for _, sc := range shardScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			want := runShardScenario(t, sc, 1)
			if len(want.events) == 0 {
				t.Fatalf("scenario produced no events — not a meaningful invariance check")
			}
			for _, shards := range []int{2, 4, 7} {
				got := runShardScenario(t, sc, shards)
				if !reflect.DeepEqual(got.events, want.events) {
					t.Fatalf("shards=%d: event log diverged: %s",
						shards, firstEventDiff(want.events, got.events))
				}
				if !reflect.DeepEqual(got.delivers, want.delivers) {
					t.Fatalf("shards=%d: delivery log diverged\nseq: %v\npar: %v",
						shards, want.delivers, got.delivers)
				}
				if got.cnt != want.cnt {
					t.Fatalf("shards=%d: counters diverged\nseq: %+v\npar: %+v",
						shards, want.cnt, got.cnt)
				}
				if !reflect.DeepEqual(got.aware, want.aware) {
					t.Fatalf("shards=%d: Aware counts diverged\nseq: %v\npar: %v",
						shards, want.aware, got.aware)
				}
				if !reflect.DeepEqual(got.awareAt, want.awareAt) {
					t.Fatalf("shards=%d: AwareAt tables diverged", shards)
				}
				if got.rounds != want.rounds {
					t.Fatalf("shards=%d: rounds %d != %d", shards, got.rounds, want.rounds)
				}
			}
		})
	}
}

// firstEventDiff renders the first position where two event logs differ.
func firstEventDiff(seq, par []Event) string {
	n := len(seq)
	if len(par) < n {
		n = len(par)
	}
	for i := 0; i < n; i++ {
		if seq[i] != par[i] {
			return fmt.Sprintf("index %d: seq %+v != par %+v", i, seq[i], par[i])
		}
	}
	return fmt.Sprintf("lengths differ: seq %d, par %d", len(seq), len(par))
}

// TestShardsClampedToTiles pins the clamp: more shards than tiles must
// behave (and the run must still match the sequential engine).
func TestShardsClampedToTiles(t *testing.T) {
	sc := shardScenario{
		name: "clamp",
		cfg: func() Config {
			return Config{Topo: topology.NewGrid(2, 2), P: 1, TTL: 4, MaxRounds: 100, Seed: 1}
		},
		inject: []injection{{beforeRound: 0, src: 0, dst: packet.Broadcast}},
		rounds: 8,
	}
	want := runShardScenario(t, sc, 1)
	got := runShardScenario(t, sc, 64) // 64 shards, 4 tiles
	if !reflect.DeepEqual(got.events, want.events) || got.cnt != want.cnt {
		t.Fatal("over-sharded run diverged from sequential")
	}
}
