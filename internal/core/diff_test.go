package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Randomized differential testing: the scenario tables in shard_test.go
// and snapshot_test.go pin the engine's invariance promises on
// hand-picked configurations; this file hammers the same promises across
// a few hundred machine-generated ones. Every generated Config — random
// topology, protocol knobs, fault mix, routers, forward limits, workload
// — is executed three ways and the complete observable record must
// agree:
//
//	sequential  ==  sharded (2 and 5 shards)  ==  snapshot-resumed
//
// The generator is seeded (diffMasterSeed) and splits one stream per
// case, so every case is reproducible from its index alone: a failure
// report names the case number, and re-running the test replays it.

// diffMasterSeed roots the config generator. Changing it trades the
// whole generated population for a fresh one — fine, but do it on
// purpose, not accidentally.
const diffMasterSeed = 0x5eed5

// diffCases is the population size; -short runs a prefix (the cases are
// index-seeded, so the subset is stable too).
const (
	diffCases      = 200
	diffCasesShort = 30
)

// diffConfig is one generated test case: a scenario plus the rounds to
// run and the checkpoint round for the resume leg.
type diffConfig struct {
	sc      shardScenario
	resumeK int
}

// genTopology picks a random fabric. Small sizes on purpose: divergence
// bugs are about phase ordering and RNG stream discipline, not scale,
// and 200 cases must stay inside tier-1 time.
func genTopology(g *rng.Stream) topology.Topology {
	switch g.Intn(5) {
	case 0:
		return topology.NewGrid(2+g.Intn(5), 2+g.Intn(5))
	case 1:
		return topology.NewTorus(3+g.Intn(3), 3+g.Intn(3))
	case 2:
		return topology.NewFullyConnected(4 + g.Intn(12))
	case 3:
		return topology.NewRing(4 + g.Intn(12))
	default:
		// Two small grid clusters joined by one bridge link — the
		// Chapter 5 shape, where routers and forward limits matter.
		side := 2 + g.Intn(2)
		tiles := side * side
		gr := topology.NewGraph(2 * tiles)
		link := func(a, b int) {
			if err := gr.AddLink(packet.TileID(a), packet.TileID(b)); err != nil {
				panic(err)
			}
		}
		for c := 0; c < 2; c++ {
			base := c * tiles
			for y := 0; y < side; y++ {
				for x := 0; x < side; x++ {
					id := base + y*side + x
					if x < side-1 {
						link(id, id+1)
					}
					if y < side-1 {
						link(id, id+side)
					}
				}
			}
		}
		link(tiles-1, tiles)
		return gr
	}
}

// genFault rolls the full Chapter 2 knob set. Each knob is enabled
// independently, so the population covers both isolated knobs and the
// all-at-once mixes; crash knobs leave tile 0 protected so workloads are
// not stillborn.
func genFault(g *rng.Stream, tiles int) fault.Model {
	var m fault.Model
	if g.Bool(0.5) {
		m.PUpset = 0.05 + 0.3*g.Float64()
		if g.Bool(0.4) {
			m.LiteralUpsets = true
			m.ErrorModel = packet.ErrorModel(g.Intn(3))
		}
	}
	if g.Bool(0.4) {
		m.POverflow = 0.05 + 0.2*g.Float64()
	}
	if g.Bool(0.3) {
		m.PLinkCrash = 0.1 * g.Float64()
	}
	if g.Bool(0.3) {
		m.DeadTiles = g.Intn(tiles / 4)
	} else if g.Bool(0.2) {
		m.PTileCrash = 0.1 * g.Float64()
	}
	if g.Bool(0.3) {
		m.SigmaSync = 1.5 * g.Float64()
	}
	m.Protect = []packet.TileID{0}
	return m
}

// genCase builds test case idx. All randomness derives from the
// per-case stream, so cases are independent and index-stable.
func genCase(idx int) diffConfig {
	g := rng.New(diffMasterSeed).Split(uint64(idx))
	topo := genTopology(g)
	tiles := topo.Tiles()

	cfgTemplate := Config{
		Topo:                 topo,
		P:                    0.2 + 0.8*g.Float64(),
		TTL:                  uint8(3 + g.Intn(14)),
		MaxRounds:            1000,
		Seed:                 g.Uint64(),
		Fault:                genFault(g, tiles),
		DisableDedup:         g.Bool(0.15),
		StopSpreadOnDelivery: g.Bool(0.15),
		// A third of the population runs the batch forwarding kernel, so
		// its samplers (mask lanes, geometric skip, high-degree fallback
		// — which one runs depends on the fabric's degree and P) face
		// the same seq == sharded == resumed oracle as the default path.
		BatchDraws: g.Bool(0.35),
	}
	if g.Bool(0.2) {
		cfgTemplate.BufferCap = 1 + g.Intn(4)
	}
	// Without dedup, copies multiply by ~degree·P per round; on the
	// high-fan-out fabrics an uncapped buffer and a long TTL make the
	// copy population (and the event log) grow geometrically. Keep those
	// cases finite: they still exercise the no-dedup code paths, just
	// not at astronomical copy counts.
	if cfgTemplate.DisableDedup {
		if cfgTemplate.BufferCap == 0 {
			cfgTemplate.BufferCap = 1 + g.Intn(4)
		}
		if cfgTemplate.TTL > 6 {
			cfgTemplate.TTL = 3 + cfgTemplate.TTL%4
		}
	}

	// Routers and forward limits on a few random tiles. The route tables
	// are generated here as plain data so the setup closure, which runs
	// once per engine instance, replays identically.
	type routerSpec struct {
		tile  packet.TileID
		ports []packet.TileID
		limit int
	}
	var routers []routerSpec
	if g.Bool(0.3) {
		for i, n := 0, 1+g.Intn(2); i < n; i++ {
			t := packet.TileID(g.Intn(tiles))
			nbrs := topo.Neighbors(t)
			if len(nbrs) == 0 {
				continue
			}
			spec := routerSpec{tile: t, limit: g.Intn(3)} // 0 = unlimited
			for _, nb := range nbrs {
				if g.Bool(0.7) {
					spec.ports = append(spec.ports, nb)
				}
			}
			routers = append(routers, spec)
		}
	}

	var injections []injection
	rounds := 10 + g.Intn(30)
	for i, n := 0, 1+g.Intn(4); i < n; i++ {
		in := injection{
			beforeRound: g.Intn(rounds * 3 / 4),
			src:         packet.TileID(g.Intn(tiles)),
			dst:         packet.TileID(g.Intn(tiles)),
			kind:        packet.Kind(g.Intn(3)),
		}
		if g.Bool(0.5) {
			in.dst = packet.Broadcast
		}
		if g.Bool(0.6) {
			in.payload = fmt.Sprintf("diff-%d-%d", idx, i)
		}
		injections = append(injections, in)
	}

	sc := shardScenario{
		name:   fmt.Sprintf("case-%03d", idx),
		cfg:    func() Config { return cfgTemplate },
		inject: injections,
		rounds: rounds,
	}
	if len(routers) > 0 {
		sc.setup = func(n *Network) {
			for _, r := range routers {
				ports := r.ports
				n.SetRouter(r.tile, func(*packet.Packet) []packet.TileID { return ports })
				if r.limit > 0 {
					n.SetForwardLimit(r.tile, r.limit)
				}
			}
		}
	}
	return diffConfig{sc: sc, resumeK: 1 + g.Intn(rounds-1)}
}

// TestDifferentialRandomConfigs is the randomized differential pass. For
// each generated case the sequential run is the reference; sharded runs
// (2 and 5 shards) and a snapshot-resumed run (interrupt at a random
// round, resume, finish) must reproduce it event-for-event. CI runs this
// under -race as well, which turns every case into a concurrency probe
// of the sharded engine.
func TestDifferentialRandomConfigs(t *testing.T) {
	cases := diffCases
	if testing.Short() {
		cases = diffCasesShort
	}
	for idx := 0; idx < cases; idx++ {
		dc := genCase(idx)
		t.Run(dc.sc.name, func(t *testing.T) {
			want := runShardScenario(t, dc.sc, 1)
			for _, shards := range []int{2, 5} {
				got := runShardScenario(t, dc.sc, shards)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d diverged from sequential: %s",
						shards, firstEventDiff(want.events, got.events))
				}
			}
			got, _ := runResumedScenario(t, dc.sc, dc.resumeK, 1, 1)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("snapshot-resume at k=%d diverged from straight run: %s",
					dc.resumeK, firstEventDiff(want.events, got.events))
			}
		})
	}
}
