package core

import (
	"sync"

	"repro/internal/packet"
)

// This file holds the sharded execution mode of the round engine
// (Config.Shards > 1): tiles are partitioned into contiguous shards and
// the per-tile phases of Step run shard-parallel between barriers,
// bit-identical to the sequential engine at any shard count. See
// DESIGN.md, "Sharded engine".
//
// The determinism argument, in one paragraph: every source of randomness
// is a per-tile stream consumed only by phases running on that tile's
// shard, so parallel execution draws exactly the sequential values. The
// only cross-tile writes are (a) phase-3 transmissions into destination
// arrival rings — staged in per-shard outboxes and merged in
// sending-tile-ID order, reproducing the sequential insertion order of
// every ring; (b) the per-message aware counters — commutative ±1
// transitions applied atomically, so the final counts are
// order-independent; (c) Counters — integer deltas accumulated per lane
// and summed after the barrier; and (d) observer callbacks — staged per
// lane in per-tile order and flushed in tile-ID order after the barrier,
// replaying the sequential callback sequence. Message-ID allocation is
// the one operation whose *order* is observable and non-commutative
// (IDs index the flat tables and appear in events), so the phases that
// can create messages — phase 1 always, phase 4 when a Receiver or
// StopSpreadOnDelivery is present — run sequentially.

// lane is one execution context of the round engine. The sequential
// engine (and phase 1, and the sequential phase-4 fallback) runs on the
// network's direct lane, which covers every tile, fires callbacks
// inline, and counts straight into Network.cnt. Sharded mode adds one
// non-direct lane per shard, each owning a contiguous tile range, a
// private Counters delta, a private frame pool, a staged-callback buffer
// and a transmission outbox; everything a lane stages is merged or
// flushed in lane order (= tile-ID order) after the phase barrier.
type lane struct {
	net    *Network
	idx    int  // position in Network.lanes (outbox bucket index)
	lo, hi int  // tile-index range [lo, hi) this lane executes
	direct bool // fire callbacks inline and write rings/counters directly

	cnt   *Counters // direct: &net.cnt; sharded: &delta
	delta Counters  // per-phase counter deltas (sharded lanes only)

	pool framePool // recycled wire frames for the literal-upset path

	// Frontier recycling: on a large mesh the active pocket wanders, so
	// first-touch allocations (a fresh tile's arrival-ring buckets, its
	// send buffer, the heap copy a delivery leaves in the mailbox) happen
	// every round somewhere new — a steady allocation rate whose GC marks
	// the whole mesh's pointer graph, an O(mesh) round cost in disguise.
	// Per-lane recycling makes the steady state allocation-free: rings
	// and buffers detach to the pools when they drain, mailbox copies are
	// carved from a chunked arena. All three are behavior-invisible
	// (capacity and address reuse only) and contention-free (used only by
	// the lane executing the owning tile).
	rings ringPool
	bufs  bufPool
	pkts  pktArena
	mail  mailSlab

	// borrowed points at the in-processing literal arrival whose payload
	// still aliases its pooled frame; deliver/enqueue clone the payload
	// (once, shared) the moment that packet is stored. Nil otherwise.
	borrowed *packet.Packet

	actions []action     // staged callbacks, flushed post-barrier in lane order
	outbox  [][]outbound // staged transmissions, bucketed by destination lane
}

// action is one staged observer callback: an OnEvent emission, or (when
// pkt is non-nil) an OnDeliver invocation for the delivered copy pkt.
// Staging preserves the exact sequential callback order because each
// lane appends in per-tile order and lanes flush in tile-ID order.
type action struct {
	ev  Event
	pkt *packet.Packet
}

// outbound is one phase-3 transmission staged in a lane's outbox bucket:
// the in-flight arrival plus its destination tile and consumption round.
// Buckets are keyed by the destination tile's lane, so the phase-4 merge
// reads exactly the entries bound for its own rings instead of filtering
// every lane's full outbox — O(own arrivals), not O(lanes × arrivals).
type outbound struct {
	dst  packet.TileID
	when int
	a    arrival
}

// framePoolCap bounds how many recycled wire frames a pool retains.
// Frames are returned to the receiving lane's pool at a burst's peak
// in-flight count; without the cap a single bursty round would pin that
// peak memory for the rest of the run. Beyond the cap, put drops the
// frame for the GC. 256 frames cover the steady-state fan-in of meshes
// well past 64×64 (pinned by TestFramePoolBounded).
const framePoolCap = 256

// framePool recycles encoded wire frames on the literal-upset path.
// Pools are per-lane, so get/put never contend; frames migrate between
// pools (drawn by the sending lane, recycled by the receiving lane),
// which is fine — they are interchangeable buffers.
type framePool struct {
	frames [][]byte
}

// get returns a frame of the given size, reusing a pooled buffer when
// one is large enough; too-small pooled frames are discarded.
func (fp *framePool) get(size int) []byte {
	for len(fp.frames) > 0 {
		last := len(fp.frames) - 1
		f := fp.frames[last]
		fp.frames[last] = nil
		fp.frames = fp.frames[:last]
		if cap(f) >= size {
			return f[:size]
		}
	}
	return make([]byte, size)
}

// put recycles a consumed frame, dropping it once the pool is full.
func (fp *framePool) put(f []byte) {
	if len(fp.frames) >= framePoolCap {
		return
	}
	fp.frames = append(fp.frames, f)
}

// bufPoolCap bounds the send-buffer slices a lane pool retains.
const bufPoolCap = 256

// bufPool recycles drained send-buffer slices: phase 2 detaches a
// tile's buffer when its last copy expires, enqueue re-arms the next
// cold tile from the pool. Pooled slices are empty with their tail
// zeroed (every truncation in the engine zeroes what it cuts), so reuse
// is behavior-free.
type bufPool struct {
	free [][]packet.Packet
}

// get returns a recycled empty buffer, or nil when the pool is dry (the
// caller's append then allocates as before).
func (bp *bufPool) get() []packet.Packet {
	l := len(bp.free)
	if l == 0 {
		return nil
	}
	b := bp.free[l-1]
	bp.free[l-1] = nil
	bp.free = bp.free[:l-1]
	return b
}

// put retains an empty buffer's capacity for the next cold tile.
func (bp *bufPool) put(b []packet.Packet) {
	if cap(b) == 0 || len(bp.free) >= bufPoolCap {
		return
	}
	bp.free = append(bp.free, b[:0])
}

// pktArenaChunk is how many mailbox packet copies a lane carves from one
// allocation.
const pktArenaChunk = 256

// pktArena hands out heap copies for delivered packets in chunks: the
// copies live as long as the mailbox references them either way, so
// carving them from a block only divides the allocation count (and the
// GC's object count) by the chunk size.
type pktArena struct {
	chunk []packet.Packet
}

// get returns a pointer to a zeroed packet with arena lifetime.
func (a *pktArena) get() *packet.Packet {
	if len(a.chunk) == 0 {
		a.chunk = make([]packet.Packet, pktArenaChunk)
	}
	p := &a.chunk[0]
	a.chunk = a.chunk[1:]
	return p
}

// mailSlabCarve is the capacity of a carved cold-tile mailbox; slabs are
// carved in mailSlabCarve*pktArenaChunk-pointer blocks.
const mailSlabCarve = 2

// mailSlab carves initial mailbox slices for cold tiles. Most tiles of a
// sub-TTL pocket take one or two deliveries in their lifetime, so a
// capacity-2 carve absorbs the whole mailbox of the common case; a tile
// that outgrows it falls back to ordinary append growth. Full-slice
// expressions keep neighbors from growing into each other.
type mailSlab struct {
	block []*packet.Packet
}

// carve returns an empty capacity-mailSlabCarve mailbox slice.
func (m *mailSlab) carve() []*packet.Packet {
	if len(m.block) < mailSlabCarve {
		m.block = make([]*packet.Packet, mailSlabCarve*pktArenaChunk)
	}
	s := m.block[:0:mailSlabCarve]
	m.block = m.block[mailSlabCarve:]
	return s
}

// emit publishes a protocol event: immediately on a direct lane, staged
// for the post-barrier flush otherwise.
func (ln *lane) emit(kind EventKind, tile, peer packet.TileID, msg packet.MsgID) {
	n := ln.net
	if ln.direct {
		n.emit(kind, tile, peer, msg)
		return
	}
	if n.cfg.OnEvent == nil {
		return
	}
	ln.actions = append(ln.actions, action{
		ev: Event{Round: n.round, Kind: kind, Tile: tile, Peer: peer, Msg: msg},
	})
}

// send hands one in-flight arrival to its destination tile: directly
// into the arrival ring on a direct lane, staged in the destination
// lane's outbox bucket (merged in sending-tile order after the phase-3
// barrier) otherwise. Either way the copy is now committed to arrive, so
// the in-flight count of its message rises here — exactly once per
// arrival, since every staged outbound is scheduled by the merge.
func (ln *lane) send(dst packet.TileID, when int, a arrival) {
	if ln.net.recycle {
		ln.net.addInflight(msgSlot(a.pkt.ID), 1)
	}
	if ln.direct {
		ln.net.tiles[dst].ring.schedule(ln.net.round, when, a, &ln.rings)
		ln.net.occSet(&ln.net.rcvOcc, uint32(dst))
		return
	}
	d := ln.net.laneFor(dst)
	ln.outbox[d] = append(ln.outbox[d], outbound{dst: dst, when: when, a: a})
}

// unshare replaces a frame-aliased payload with a private copy at the
// moment a literal-path packet is first stored; clearing borrowed lets
// deliver and enqueue share that one copy, exactly as Decode used to
// provide. Steady-state duplicates never reach this point, so they cost
// no payload copy at all.
func (ln *lane) unshare(p *packet.Packet) {
	if len(p.Payload) > 0 {
		owned := make([]byte, len(p.Payload))
		copy(owned, p.Payload)
		p.Payload = owned
	}
	ln.borrowed = nil
}

// initLanes partitions the tiles into shards contiguous tile-ID ranges
// and builds their lanes. shards is already clamped to [2, tiles].
//
// Meshes with at least 64 tiles per shard get a *word-aligned* partition:
// every lane boundary falls on a multiple of 64 tiles, so no two lanes
// share any 64-bit word of the tile bitmaps (message present/seen rows,
// occupancy) and the per-bit flips skip their CAS loops even while shard
// goroutines are live (n.alignedLanes). The partition choice is invisible
// to results — sharding is bit-identical at any lane geometry.
func (n *Network) initLanes(shards int) {
	n.lanes = make([]lane, shards)
	tiles := len(n.tiles)
	lo := 0
	if tiles >= shards*64 {
		n.alignedLanes = true
		words := occWords(tiles)
		n.laneBase, n.laneRem = words/shards, words%shards
		for i := range n.lanes {
			spanW := n.laneBase
			if i < n.laneRem {
				spanW++
			}
			hi := lo + spanW*64
			if hi > tiles {
				hi = tiles // only the last word can be partial
			}
			ln := &n.lanes[i]
			ln.net = n
			ln.idx = i
			ln.lo, ln.hi = lo, hi
			ln.cnt = &ln.delta
			ln.outbox = make([][]outbound, shards)
			lo = hi
		}
		return
	}
	n.laneBase, n.laneRem = tiles/shards, tiles%shards
	for i := range n.lanes {
		span := n.laneBase
		if i < n.laneRem {
			span++
		}
		ln := &n.lanes[i]
		ln.net = n
		ln.idx = i
		ln.lo, ln.hi = lo, lo+span
		ln.cnt = &ln.delta
		ln.outbox = make([][]outbound, shards)
		lo += span
	}
}

// laneFor maps a tile to the index of the lane owning it, inverting the
// initLanes partition arithmetically: the first laneRem lanes span
// laneBase+1 units, the rest laneBase (units are 64-tile words on an
// aligned partition, single tiles otherwise).
func (n *Network) laneFor(t packet.TileID) int {
	x := int(t)
	if n.alignedLanes {
		x >>= 6
	}
	if wide := n.laneRem * (n.laneBase + 1); x < wide {
		return x / (n.laneBase + 1)
	} else {
		return n.laneRem + (x-wide)/n.laneBase
	}
}

// runShards executes phase once per lane, concurrently, and waits for
// the barrier. Lane 0 runs on the stepping goroutine itself — one fewer
// goroutine handoff per barrier, which is most of the sharding overhead
// on small meshes. Per-message aware-count updates switch to atomics
// while shard goroutines are live (n.par); everything else a phase
// touches is tile-local, lane-local, or read-only (see the file comment).
func (n *Network) runShards(phase func(*lane)) {
	n.par = true
	var wg sync.WaitGroup
	wg.Add(len(n.lanes) - 1)
	for i := 1; i < len(n.lanes); i++ {
		ln := &n.lanes[i]
		go func() {
			defer wg.Done()
			phase(ln)
		}()
	}
	phase(&n.lanes[0])
	wg.Wait()
	n.par = false
}

// stepShards is the sharded-mode body of Step for phases 2-4: phase 1
// (computation) already ran sequentially — it allocates message IDs,
// whose order is observable. Barrier order matters: counters merge and
// staged callbacks flush before the next phase so that an observer sees
// the same event sequence, phase by phase, as the sequential engine;
// outboxes merge before phase 4 so every arrival ring holds its
// sequential contents in sequential order.
func (n *Network) stepShards() {
	n.refreshProcs()

	// Phase 2 — aging (tile-local; expiry events staged).
	n.runShards(n.phaseAge)
	n.flushActions()

	// Phase 3 — forwarding into private outboxes. Each lane clears its
	// own (already merged) outbox of the previous round at entry, which
	// is what lets the dedicated clearing barrier disappear.
	n.runShards(n.phaseForward)
	n.mergeLaneCounters()
	n.flushActions()

	// Phase 4 — reception, fused with the outbox merge: every lane drains
	// its own bucket of each outbox in lane order and schedules those
	// arrivals (each ring is written only by its owner shard, in
	// sending-tile-ID order — the sequential insertion order), then
	// immediately consumes its own rings. No barrier is needed between
	// the two halves because a lane merges only into rings it alone
	// reads, and other lanes' outboxes are read-only after the phase-3
	// barrier. A Receiver process can create messages at delivery time
	// and StopSpreadOnDelivery writes cross-tile tombstones that later
	// tiles of the same round must observe; both are order-dependent, so
	// reception then falls back to the sequential direct lane (the merge
	// still runs shard-parallel).
	if n.cfg.StopSpreadOnDelivery || n.hasReceiver {
		n.runShards(n.mergeInbound)
		n.phaseReceive(&n.seqLane)
		return
	}
	n.runShards(n.mergeAndReceive)
	n.mergeLaneCounters()
	n.flushActions()
}

// mergeAndReceive is the fused barrier body of phase 4: merge the staged
// transmissions bound for this lane's tiles, then receive them.
func (n *Network) mergeAndReceive(ln *lane) {
	n.mergeInbound(ln)
	n.phaseReceive(ln)
}

// mergeInbound schedules, into this lane's own arrival rings, every
// staged transmission whose destination falls in the lane's tile range —
// exactly the contents of this lane's bucket in every outbox. Scanning
// sender lanes in order preserves the sequential per-ring insertion
// order: within a bucket entries sit in sending-tile order (phase 3
// walks tiles ascending), and all entries for any one ring share a
// bucket, so their relative order matches the unbucketed filter scan.
func (n *Network) mergeInbound(ln *lane) {
	for li := range n.lanes {
		out := n.lanes[li].outbox[ln.idx]
		for i := range out {
			o := &out[i]
			n.tiles[o.dst].ring.schedule(n.round, o.when, o.a, &ln.rings)
			n.occSet(&n.rcvOcc, uint32(o.dst))
		}
	}
}

// clearOutbox zeroes and truncates the lane's outbox buckets at the
// start of the next phaseForward — by then the merge barrier has
// consumed them (zeroing drops payload/frame references for the GC; the
// slice capacities are kept, so steady-state staging allocates nothing).
func clearOutbox(ln *lane) {
	for b, out := range ln.outbox {
		for i := range out {
			out[i] = outbound{}
		}
		ln.outbox[b] = out[:0]
	}
}

// flushActions replays the staged observer callbacks in lane order
// (= tile-ID order), reproducing the sequential callback sequence.
// Callbacks run on the stepping goroutine, after the barrier: state
// reads from a hook therefore see end-of-phase state, not the mid-phase
// snapshots a sequential run would show (the documented Shards caveat).
func (n *Network) flushActions() {
	for li := range n.lanes {
		ln := &n.lanes[li]
		for i := range ln.actions {
			a := &ln.actions[i]
			if a.pkt == nil {
				n.cfg.OnEvent(a.ev)
			} else if n.cfg.OnDeliver != nil {
				n.cfg.OnDeliver(a.ev.Tile, a.pkt, a.ev.Round)
			}
			ln.actions[i] = action{}
		}
		ln.actions = ln.actions[:0]
	}
}

// mergeLaneCounters folds every lane's counter delta into the network
// totals. All fields are integer sums, so the result is exactly the
// sequential engine's counters regardless of execution order.
func (n *Network) mergeLaneCounters() {
	for i := range n.lanes {
		d := &n.lanes[i].delta
		n.cnt.add(d)
		*d = Counters{}
	}
}

// add accumulates the fields of d into c.
func (c *Counters) add(d *Counters) {
	c.Energy.Merge(d.Energy)
	c.UpsetsInjected += d.UpsetsInjected
	c.UpsetsDetected += d.UpsetsDetected
	c.OverflowDrops += d.OverflowDrops
	c.SlippedDeliveries += d.SlippedDeliveries
	c.Deliveries += d.Deliveries
	c.DeliveredPayloadBits += d.DeliveredPayloadBits
	c.Duplicates += d.Duplicates
	c.Retired += d.Retired
	c.GhostFrames += d.GhostFrames
}
