package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/topology"
)

// senderProc emits one message to Dst at round 0.
type senderProc struct {
	dst     packet.TileID
	payload []byte
	sent    bool
}

func (s *senderProc) Init(*Ctx) {}
func (s *senderProc) Round(ctx *Ctx) {
	if !s.sent {
		ctx.Send(s.dst, 1, s.payload)
		s.sent = true
	}
}

// sinkProc records the round of first delivery via the Receiver hook,
// which fires at the delivery instant.
type sinkProc struct {
	gotRound int
	got      bool
}

func (s *sinkProc) Init(*Ctx)  {}
func (s *sinkProc) Round(*Ctx) {}
func (s *sinkProc) Done() bool { return s.got }
func (s *sinkProc) Receive(ctx *Ctx, _ *packet.Packet) {
	if !s.got {
		s.got = true
		s.gotRound = ctx.Round()
	}
}

func mustNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func mustInject(tb testing.TB, n *Network, src, dst packet.TileID, kind packet.Kind, payload []byte) packet.MsgID {
	tb.Helper()
	id, err := n.Inject(src, dst, kind, payload)
	if err != nil {
		tb.Fatalf("Inject: %v", err)
	}
	return id
}

func baseCfg(topo topology.Topology, p float64) Config {
	return Config{Topo: topo, P: p, TTL: DefaultTTL, MaxRounds: 200, Seed: 1}
}

func TestFloodingLatencyIsManhattan(t *testing.T) {
	// With p = 1 the algorithm is a deterministic flood; a message
	// traverses exactly the Manhattan distance in rounds (§4, "optimal
	// with respect to latency").
	g := topology.NewGrid(4, 4)
	src, dst := g.ID(1, 1), g.ID(3, 2) // the thesis' Producer/Consumer tiles
	cfg := baseCfg(g, 1)
	n := mustNet(t, cfg)
	n.Attach(src, &senderProc{dst: dst, payload: []byte("hello")})
	sink := &sinkProc{}
	n.Attach(dst, sink)
	res := n.Run()
	if !res.Completed {
		t.Fatal("flood did not complete")
	}
	want := g.Manhattan(src, dst)
	if sink.gotRound != want {
		t.Fatalf("flood delivery at round %d, want Manhattan distance %d", sink.gotRound, want)
	}
}

func TestFloodingReachesEveryTile(t *testing.T) {
	g := topology.NewGrid(5, 5)
	reached := map[packet.TileID]int{}
	cfg := baseCfg(g, 1)
	cfg.OnDeliver = func(tl packet.TileID, p *packet.Packet, round int) { reached[tl] = round }
	n := mustNet(t, cfg)
	n.Inject(g.ID(0, 0), packet.Broadcast, 0, []byte("b"))
	for i := 0; i < 10; i++ {
		n.Step()
	}
	// Broadcast reaches all tiles except the origin (which never
	// "receives" its own message).
	if len(reached) != g.Tiles()-1 {
		t.Fatalf("broadcast reached %d tiles, want %d", len(reached), g.Tiles()-1)
	}
	for tl, round := range reached {
		if want := g.Manhattan(g.ID(0, 0), tl); round != want {
			t.Fatalf("tile %d reached at round %d, want %d", tl, round, want)
		}
	}
}

func TestGossipDeliversWHP(t *testing.T) {
	// p = 0.5 on a 4x4 grid: the thesis reports 5-9 round latencies.
	// Across seeds, delivery must virtually always happen well within TTL.
	g := topology.NewGrid(4, 4)
	delivered := 0
	for seed := uint64(0); seed < 50; seed++ {
		cfg := baseCfg(g, 0.5)
		cfg.Seed = seed
		n := mustNet(t, cfg)
		n.Attach(g.ID(1, 1), &senderProc{dst: g.ID(3, 2), payload: []byte("x")})
		sink := &sinkProc{}
		n.Attach(g.ID(3, 2), sink)
		if res := n.Run(); res.Completed {
			delivered++
			if sink.gotRound < g.Manhattan(g.ID(1, 1), g.ID(3, 2)) {
				t.Fatalf("delivery faster than Manhattan distance: %d", sink.gotRound)
			}
		}
	}
	if delivered < 48 {
		t.Fatalf("p=0.5 delivered only %d/50", delivered)
	}
}

func TestPZeroNeverDelivers(t *testing.T) {
	g := topology.NewGrid(4, 4)
	cfg := baseCfg(g, 0)
	cfg.MaxRounds = 50
	n := mustNet(t, cfg)
	n.Attach(0, &senderProc{dst: 15, payload: []byte("x")})
	sink := &sinkProc{}
	n.Attach(15, sink)
	res := n.Run()
	if res.Completed || sink.got {
		t.Fatal("p=0 delivered a message")
	}
	if res.Counters.Energy.Transmissions != 0 {
		t.Fatalf("p=0 transmitted %d packets", res.Counters.Energy.Transmissions)
	}
}

func TestTTLExpiryStopsSpread(t *testing.T) {
	// TTL 2: the message lives two rounds in each buffer; with flooding it
	// can travel at most ~2 hops before every copy expires.
	g := topology.NewGrid(6, 1)
	cfg := baseCfg(g, 1)
	cfg.TTL = 2
	reached := map[packet.TileID]bool{}
	cfg.OnDeliver = func(tl packet.TileID, p *packet.Packet, r int) { reached[tl] = true }
	n := mustNet(t, cfg)
	n.Inject(0, packet.Broadcast, 0, nil)
	for i := 0; i < 30; i++ {
		n.Step()
	}
	if reached[5] || reached[4] || reached[3] {
		t.Fatalf("TTL=2 message traveled too far: %v", reached)
	}
	if !reached[1] {
		t.Fatal("TTL=2 message did not reach the adjacent tile")
	}
}

func TestTTLBoundsBufferLifetime(t *testing.T) {
	g := topology.NewGrid(2, 1)
	cfg := baseCfg(g, 0) // never forward: message just ages in place
	cfg.TTL = 3
	n := mustNet(t, cfg)
	n.Inject(0, 1, 0, nil)
	for i := 0; i < 5; i++ {
		n.Step()
	}
	if got := len(n.tiles[0].sendBuf); got != 0 {
		t.Fatalf("buffer holds %d messages after TTL expiry", got)
	}
	if n.tiles[0].flagsOf(1)&flagPresent != 0 {
		t.Fatal("present flag not cleaned after GC")
	}
}

func TestDedupSuppressesDuplicates(t *testing.T) {
	g := topology.NewGrid(3, 3)
	cfg := baseCfg(g, 1)
	n := mustNet(t, cfg)
	n.Inject(g.ID(1, 1), packet.Broadcast, 0, nil)
	for i := 0; i < 8; i++ {
		n.Step()
	}
	if n.Counters().Duplicates == 0 {
		t.Fatal("flooding a grid produced no duplicate receptions")
	}
}

func TestDisableDedupIncreasesTraffic(t *testing.T) {
	run := func(disable bool) int {
		g := topology.NewGrid(3, 3)
		cfg := baseCfg(g, 1)
		cfg.TTL = 5
		cfg.DisableDedup = disable
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Inject(0, packet.Broadcast, 0, nil)
		for i := 0; i < 6; i++ {
			n.Step()
		}
		return n.Counters().Energy.Transmissions
	}
	with := run(false)
	without := run(true)
	if without <= with {
		t.Fatalf("dedup off (%d tx) not more traffic than on (%d tx)", without, with)
	}
}

func TestDeadTileBlocksLine(t *testing.T) {
	// 0-1-2: tile 1 dead => 2 unreachable no matter how long we run.
	g := topology.NewGrid(3, 1)
	cfg := baseCfg(g, 1)
	cfg.MaxRounds = 60
	cfg.Fault = fault.Model{DeadTiles: 1, Protect: []packet.TileID{0, 2}}
	n := mustNet(t, cfg)
	if n.Injector().TileAlive(1) {
		t.Fatal("middle tile should be dead")
	}
	n.Attach(0, &senderProc{dst: 2, payload: []byte("x")})
	sink := &sinkProc{}
	n.Attach(2, sink)
	if res := n.Run(); res.Completed {
		t.Fatal("message crossed a dead tile")
	}
}

func TestDeadTileToleratedByAlternatePaths(t *testing.T) {
	// On a 4x4 grid with one dead interior tile, gossip routes around it.
	g := topology.NewGrid(4, 4)
	delivered := 0
	for seed := uint64(0); seed < 30; seed++ {
		cfg := baseCfg(g, 0.75)
		cfg.Seed = seed
		cfg.Fault = fault.Model{DeadTiles: 1, Protect: []packet.TileID{g.ID(0, 0), g.ID(3, 3)}}
		n := mustNet(t, cfg)
		n.Attach(g.ID(0, 0), &senderProc{dst: g.ID(3, 3), payload: []byte("x")})
		sink := &sinkProc{}
		n.Attach(g.ID(3, 3), sink)
		if n.Run().Completed {
			delivered++
		}
	}
	if delivered < 28 {
		t.Fatalf("only %d/30 runs tolerated one dead tile", delivered)
	}
}

func TestUpsetsAllScrambledBlocksDelivery(t *testing.T) {
	g := topology.NewGrid(4, 4)
	cfg := baseCfg(g, 1)
	cfg.MaxRounds = 40
	cfg.Fault = fault.Model{PUpset: 1}
	n := mustNet(t, cfg)
	n.Attach(0, &senderProc{dst: 15, payload: []byte("x")})
	sink := &sinkProc{}
	n.Attach(15, sink)
	res := n.Run()
	if res.Completed {
		t.Fatal("delivery with 100% upsets")
	}
	if res.Counters.UpsetsDetected == 0 {
		t.Fatal("no upsets detected despite PUpset=1")
	}
}

func TestLiteralUpsetsDetectedByCRC(t *testing.T) {
	g := topology.NewGrid(3, 3)
	cfg := baseCfg(g, 1)
	cfg.MaxRounds = 30
	cfg.Fault = fault.Model{PUpset: 0.5, LiteralUpsets: true}
	n := mustNet(t, cfg)
	n.Attach(0, &senderProc{dst: 8, payload: []byte("payload")})
	sink := &sinkProc{}
	n.Attach(8, sink)
	res := n.Run()
	if !res.Completed {
		t.Fatal("50% upsets prevented delivery under flooding")
	}
	c := res.Counters
	if c.UpsetsInjected == 0 || c.UpsetsDetected == 0 {
		t.Fatalf("literal upsets not exercised: %+v", c)
	}
	// CRC-16 may miss a scrambled frame with probability ~2^-16; in a
	// short run every injected upset that reached a live tile must be
	// caught.
	if c.UpsetsDetected > c.UpsetsInjected {
		t.Fatalf("detected %d > injected %d", c.UpsetsDetected, c.UpsetsInjected)
	}
}

func TestBufferCapDropsOldest(t *testing.T) {
	g := topology.NewGrid(2, 1)
	cfg := baseCfg(g, 0)
	cfg.BufferCap = 2
	cfg.TTL = 100
	n := mustNet(t, cfg)
	id1, _ := n.Inject(0, 1, 0, []byte("a"))
	n.Inject(0, 1, 0, []byte("b"))
	n.Inject(0, 1, 0, []byte("c"))
	if got := len(n.tiles[0].sendBuf); got != 2 {
		t.Fatalf("buffer holds %d, cap 2", got)
	}
	if n.tiles[0].flagsOf(id1)&flagPresent != 0 {
		t.Fatal("oldest message not the one dropped")
	}
	if n.Counters().OverflowDrops != 1 {
		t.Fatalf("OverflowDrops = %d", n.Counters().OverflowDrops)
	}
}

func TestAnalyticOverflowCountsDrops(t *testing.T) {
	g := topology.NewGrid(3, 3)
	cfg := baseCfg(g, 1)
	cfg.MaxRounds = 20
	cfg.Fault = fault.Model{POverflow: 1}
	n := mustNet(t, cfg)
	n.Inject(0, packet.Broadcast, 0, nil)
	for i := 0; i < 10; i++ {
		n.Step()
	}
	if n.Counters().OverflowDrops == 0 {
		t.Fatal("POverflow=1 produced no overflow drops")
	}
}

func TestSyncSlipDelaysDelivery(t *testing.T) {
	g := topology.NewGrid(2, 1)
	var withSlip, without int
	for seed := uint64(0); seed < 40; seed++ {
		for _, sigma := range []float64{0, 3} {
			cfg := baseCfg(g, 1)
			cfg.Seed = seed
			cfg.TTL = 30
			cfg.Fault = fault.Model{SigmaSync: sigma}
			n := mustNet(t, cfg)
			n.Attach(0, &senderProc{dst: 1, payload: nil})
			sink := &sinkProc{}
			n.Attach(1, sink)
			if !n.Run().Completed {
				t.Fatalf("sync error prevented termination (σ=%v)", sigma)
			}
			if sigma == 0 {
				without += sink.gotRound
			} else {
				withSlip += sink.gotRound
			}
		}
	}
	if withSlip <= without {
		t.Fatalf("σ=3 total latency %d not above σ=0 latency %d", withSlip, without)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		g := topology.NewGrid(4, 4)
		cfg := baseCfg(g, 0.5)
		cfg.Seed = 77
		cfg.Fault = fault.Model{DeadTiles: 2, PUpset: 0.2, Protect: []packet.TileID{0, 15}}
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n.Attach(0, &senderProc{dst: 15, payload: []byte("d")})
		sink := &sinkProc{}
		n.Attach(15, sink)
		return n.Run()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	tx := map[int]bool{}
	for seed := uint64(0); seed < 5; seed++ {
		g := topology.NewGrid(4, 4)
		cfg := baseCfg(g, 0.5)
		cfg.Seed = seed
		n := mustNet(t, cfg)
		n.Attach(0, &senderProc{dst: 15, payload: []byte("d")})
		sink := &sinkProc{}
		n.Attach(15, sink)
		tx[n.Run().Counters.Energy.Transmissions] = true
	}
	if len(tx) < 2 {
		t.Fatal("five seeds produced identical traffic — RNG not wired through")
	}
}

func TestEnergyAccountingConsistent(t *testing.T) {
	g := topology.NewGrid(3, 3)
	cfg := baseCfg(g, 1)
	n := mustNet(t, cfg)
	n.Inject(0, packet.Broadcast, 0, []byte("abc"))
	for i := 0; i < 6; i++ {
		n.Step()
	}
	c := n.Counters()
	sizeBits := (&packet.Packet{Payload: []byte("abc")}).SizeBits()
	if c.Energy.Bits != c.Energy.Transmissions*sizeBits {
		t.Fatalf("bits %d != transmissions %d × size %d", c.Energy.Bits, c.Energy.Transmissions, sizeBits)
	}
}

func TestRunWhile(t *testing.T) {
	g := topology.NewGrid(4, 4)
	reached := map[packet.TileID]bool{}
	cfg := baseCfg(g, 1)
	cfg.OnDeliver = func(tl packet.TileID, p *packet.Packet, r int) { reached[tl] = true }
	n := mustNet(t, cfg)
	n.Inject(0, packet.Broadcast, 0, nil)
	res := n.RunWhile(func(*Network) bool { return len(reached) < g.Tiles()-1 })
	if !res.Completed {
		t.Fatal("RunWhile did not complete")
	}
	if res.Rounds != 6 { // diameter of 4x4 grid
		t.Fatalf("full broadcast took %d rounds, want 6 (diameter)", res.Rounds)
	}
}

func TestMaxRoundsGuillotine(t *testing.T) {
	g := topology.NewGrid(2, 2)
	cfg := baseCfg(g, 0.5)
	cfg.MaxRounds = 7
	n := mustNet(t, cfg)
	res := n.RunWhile(func(*Network) bool { return true })
	if res.Completed || res.Rounds != 7 {
		t.Fatalf("guillotine: %+v", res)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	g := topology.NewGrid(2, 2)
	bad := []Config{
		{Topo: nil, P: 0.5, TTL: 5},
		{Topo: g, P: -1, TTL: 5},
		{Topo: g, P: 2, TTL: 5},
		{Topo: g, P: 0.5, TTL: 0},
		{Topo: g, P: 0.5, TTL: 5, BufferCap: -1},
		{Topo: g, P: 0.5, TTL: 5, Fault: fault.Model{PUpset: 3}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestInjectFromDeadTileIgnored(t *testing.T) {
	g := topology.NewGrid(2, 1)
	cfg := baseCfg(g, 1)
	cfg.Fault = fault.Model{DeadTiles: 1, Protect: []packet.TileID{1}}
	n := mustNet(t, cfg)
	n.Inject(0, 1, 0, nil) // tile 0 is dead
	for i := 0; i < 5; i++ {
		n.Step()
	}
	if n.Counters().Energy.Transmissions != 0 {
		t.Fatal("dead tile transmitted")
	}
}

func TestDeadProcessNeverRuns(t *testing.T) {
	g := topology.NewGrid(2, 1)
	cfg := baseCfg(g, 1)
	cfg.Fault = fault.Model{DeadTiles: 1, Protect: []packet.TileID{1}}
	cfg.MaxRounds = 5
	n := mustNet(t, cfg)
	s := &senderProc{dst: 1}
	n.Attach(0, s)
	n.Run()
	if s.sent {
		t.Fatal("process on dead tile executed")
	}
}

func TestDeliveryExactlyOnce(t *testing.T) {
	g := topology.NewGrid(3, 3)
	count := map[packet.MsgID]int{}
	cfg := baseCfg(g, 1)
	cfg.TTL = 20
	cfg.OnDeliver = func(tl packet.TileID, p *packet.Packet, r int) {
		if tl == 8 {
			count[p.ID]++
		}
	}
	n := mustNet(t, cfg)
	n.Inject(0, 8, 0, nil)
	for i := 0; i < 25; i++ {
		n.Step()
	}
	for id, c := range count {
		if c != 1 {
			t.Fatalf("message %d delivered %d times", id, c)
		}
	}
	if len(count) != 1 {
		t.Fatalf("expected 1 delivered message, got %d", len(count))
	}
}

func TestObserverCalledEveryRound(t *testing.T) {
	g := topology.NewGrid(2, 2)
	calls := 0
	cfg := baseCfg(g, 0.5)
	cfg.Observer = func(round int, n *Network) {
		calls++
		if round != calls {
			t.Fatalf("observer round %d on call %d", round, calls)
		}
	}
	n := mustNet(t, cfg)
	for i := 0; i < 4; i++ {
		n.Step()
	}
	if calls != 4 {
		t.Fatalf("observer called %d times", calls)
	}
}

func TestOnRoundEndCalledEveryRound(t *testing.T) {
	g := topology.NewGrid(2, 2)
	calls := 0
	cfg := baseCfg(g, 0.5)
	order := []string{}
	cfg.Observer = func(round int, n *Network) { order = append(order, "observer") }
	cfg.OnRoundEnd = func(round int, n *Network) {
		calls++
		if round != calls {
			t.Fatalf("OnRoundEnd round %d on call %d", round, calls)
		}
		order = append(order, "roundEnd")
	}
	n := mustNet(t, cfg)
	for i := 0; i < 4; i++ {
		n.Step()
	}
	if calls != 4 {
		t.Fatalf("OnRoundEnd called %d times", calls)
	}
	// OnRoundEnd is the very last action of Step: it must run after the
	// application-level Observer every round.
	for i := 0; i < len(order); i += 2 {
		if order[i] != "observer" || order[i+1] != "roundEnd" {
			t.Fatalf("hook order %v: want Observer then OnRoundEnd each round", order)
		}
	}
}

func TestBroadcastHelper(t *testing.T) {
	g := topology.NewGrid(2, 2)
	n := mustNet(t, baseCfg(g, 1))
	got := map[packet.TileID]bool{}
	n.cfg.OnDeliver = func(tl packet.TileID, p *packet.Packet, r int) { got[tl] = true }

	bcast := &broadcastOnce{}
	n.Attach(0, bcast)
	for i := 0; i < 5; i++ {
		n.Step()
	}
	if len(got) != 3 {
		t.Fatalf("Broadcast reached %d tiles, want 3", len(got))
	}
}

type broadcastOnce struct{ sent bool }

func (b *broadcastOnce) Init(*Ctx) {}
func (b *broadcastOnce) Round(ctx *Ctx) {
	if !b.sent {
		ctx.Broadcast(2, []byte("all"))
		b.sent = true
	}
}

func TestCompletedFalseWithoutCompleters(t *testing.T) {
	g := topology.NewGrid(2, 2)
	n := mustNet(t, baseCfg(g, 0.5))
	n.Attach(0, &senderProc{dst: 1})
	if n.Completed() {
		t.Fatal("Completed true with no Completer attached")
	}
}

func TestStopSpreadOnDelivery(t *testing.T) {
	run := func(stop bool) (tx int, delivered bool) {
		g := topology.NewGrid(5, 5)
		gotIt := false
		cfg := baseCfg(g, 0.75)
		cfg.TTL = 20
		cfg.StopSpreadOnDelivery = stop
		cfg.OnDeliver = func(tl packet.TileID, p *packet.Packet, r int) {
			if tl == g.ID(4, 4) {
				gotIt = true
			}
		}
		n := mustNet(t, cfg)
		n.Inject(0, g.ID(4, 4), 0, nil)
		for i := 0; i < 60 && !n.Quiescent(); i++ {
			n.Step()
		}
		return n.Counters().Energy.Transmissions, gotIt
	}
	txOff, okOff := run(false)
	txOn, okOn := run(true)
	if !okOff || !okOn {
		t.Fatalf("delivery failed: off=%v on=%v", okOff, okOn)
	}
	if txOn >= txOff {
		t.Fatalf("spread termination saved nothing: %d vs %d transmissions", txOn, txOff)
	}
}

func TestQuiescentAndDrain(t *testing.T) {
	g := topology.NewGrid(3, 3)
	n := mustNet(t, baseCfg(g, 1))
	if !n.Quiescent() {
		t.Fatal("fresh network not quiescent")
	}
	n.Inject(0, packet.Broadcast, 0, nil)
	if n.Quiescent() {
		t.Fatal("network with a buffered message quiescent")
	}
	extra := n.Drain(100)
	if !n.Quiescent() {
		t.Fatal("Drain did not reach quiescence")
	}
	// The message lives TTL rounds; drain takes about that long.
	if extra == 0 || extra > DefaultTTL+3 {
		t.Fatalf("drain took %d rounds", extra)
	}
}

func TestRouterForwardsDeterministically(t *testing.T) {
	// Line 0-1-2 where tile 1 is a router always pushing toward tile 2.
	g := topology.NewGrid(3, 1)
	cfg := baseCfg(g, 0) // gossip probability 0: only the router moves data
	cfg.TTL = 10
	n := mustNet(t, cfg)
	n.SetRouter(1, func(p *packet.Packet) []packet.TileID {
		return []packet.TileID{2}
	})
	// Hand tile 1 the message directly (Inject places it at the source).
	n.Inject(1, 2, 0, nil)
	sink := &sinkProc{}
	n.Attach(2, sink)
	res := n.Run()
	if !res.Completed {
		t.Fatal("router did not deliver")
	}
	if sink.gotRound != 1 {
		t.Fatalf("router delivery at round %d, want 1", sink.gotRound)
	}
}

func TestForwardLimitSerializes(t *testing.T) {
	// A tile holding many messages with limit 1 emits at most one
	// message's copies per round.
	g := topology.NewGrid(2, 1)
	cfg := baseCfg(g, 1)
	cfg.TTL = 30
	n := mustNet(t, cfg)
	n.SetForwardLimit(0, 1)
	for i := 0; i < 5; i++ {
		n.Inject(0, 1, 0, nil)
	}
	n.Step()
	// One message, one port => exactly 1 transmission in round 1.
	if tx := n.Counters().Energy.Transmissions; tx != 1 {
		t.Fatalf("limited tile transmitted %d in one round", tx)
	}
	// Round-robin: across 5 rounds, all 5 distinct messages get a slot.
	for i := 0; i < 4; i++ {
		n.Step()
	}
	seen := 0
	for id := packet.MsgID(1); id <= n.nextID; id++ {
		if n.tiles[1].flagsOf(id)&flagSeen != 0 {
			seen++
		}
	}
	if seen != 5 {
		t.Fatalf("round-robin delivered %d/5 distinct messages", seen)
	}
}
