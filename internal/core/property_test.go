package core

import (
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/topology"
)

// TestQuickDeliveryRequiresReachability fuzzes random grids, crash sets
// and forwarding probabilities: a message must never be delivered to a
// destination that is unreachable over the surviving subgraph, and with
// flooding and a generous TTL it must always be delivered to a reachable
// one.
func TestQuickDeliveryRequiresReachability(t *testing.T) {
	f := func(seed uint64, wSel, hSel, deadSel uint8) bool {
		w, h := int(wSel%4)+2, int(hSel%4)+2
		g := topology.NewGrid(w, h)
		src, dst := packet.TileID(0), packet.TileID(g.Tiles()-1)
		dead := int(deadSel) % (g.Tiles() / 2)
		cfg := Config{
			Topo: g, P: 1, TTL: uint8(4 * (w + h)), MaxRounds: 200, Seed: seed,
			Fault: fault.Model{DeadTiles: dead, Protect: []packet.TileID{src, dst}},
		}
		delivered := false
		cfg.OnDeliver = func(tl packet.TileID, p *packet.Packet, r int) {
			if tl == dst {
				delivered = true
			}
		}
		n, err := New(cfg)
		if err != nil {
			return false
		}
		n.Inject(src, dst, 1, nil)
		n.Drain(200)
		alive, linkAlive := n.Injector().AliveFuncs()
		reachable := topology.Reachable(g, src, dst, alive, linkAlive)
		return delivered == reachable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickCountersConsistent fuzzes fault mixes: bits always equal
// transmissions × frame size; deliveries never exceed the number of
// messages; upsets detected never exceed upsets injected (analytic path).
func TestQuickCountersConsistent(t *testing.T) {
	f := func(seed uint64, pupSel, povSel uint8) bool {
		g := topology.NewGrid(4, 4)
		cfg := Config{
			Topo: g, P: 0.7, TTL: 10, MaxRounds: 100, Seed: seed,
			Fault: fault.Model{
				PUpset:    float64(pupSel%80) / 100,
				POverflow: float64(povSel%80) / 100,
			},
		}
		n, err := New(cfg)
		if err != nil {
			return false
		}
		const msgs = 3
		for i := 0; i < msgs; i++ {
			n.Inject(packet.TileID(i), packet.TileID(15-i), 1, []byte("abc"))
		}
		n.Drain(100)
		c := n.Counters()
		size := (&packet.Packet{Payload: []byte("abc")}).SizeBits()
		if c.Energy.Bits != c.Energy.Transmissions*size {
			return false
		}
		if c.Deliveries > msgs {
			return false
		}
		if c.UpsetsDetected > c.UpsetsInjected {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickAwareMonotone: the aware count of any message never decreases
// and never exceeds the tile count.
func TestQuickAwareMonotone(t *testing.T) {
	f := func(seed uint64, pSel uint8) bool {
		g := topology.NewGrid(4, 4)
		p := 0.2 + float64(pSel%80)/100
		n, err := New(Config{Topo: g, P: p, TTL: 12, MaxRounds: 60, Seed: seed})
		if err != nil {
			return false
		}
		id, _ := n.Inject(5, packet.Broadcast, 0, nil)
		prev := 0
		for i := 0; i < 40; i++ {
			n.Step()
			aware := n.Aware(id)
			if aware < prev || aware > g.Tiles() {
				return false
			}
			prev = aware
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickLiteralAnalyticAgreement: over many seeds, the literal
// bit-flip path and the analytic drop path produce statistically similar
// delivery behaviour (they are the same model up to CRC's 2^-16 escape).
func TestQuickLiteralAnalyticAgreement(t *testing.T) {
	deliveryRate := func(literal bool) float64 {
		delivered := 0
		const runs = 60
		for seed := uint64(0); seed < runs; seed++ {
			g := topology.NewGrid(4, 4)
			got := false
			cfg := Config{
				Topo: g, P: 0.75, TTL: 12, MaxRounds: 80, Seed: seed,
				Fault: fault.Model{PUpset: 0.5, LiteralUpsets: literal},
				OnDeliver: func(tl packet.TileID, p *packet.Packet, r int) {
					if tl == 15 {
						got = true
					}
				},
			}
			n, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			n.Inject(0, 15, 1, []byte("equivalence"))
			n.Drain(80)
			if got {
				delivered++
			}
		}
		return float64(delivered) / runs
	}
	lit, ana := deliveryRate(true), deliveryRate(false)
	if diff := lit - ana; diff < -0.2 || diff > 0.2 {
		t.Fatalf("literal (%.2f) and analytic (%.2f) upset paths diverge", lit, ana)
	}
}
