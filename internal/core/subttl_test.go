package core

// Sub-TTL regime tests: meshes whose diameter dwarfs the TTL, so every
// message dies long before reaching most tiles — the workload the
// frontier scheduler and the two-tier (sparse/dense) message rows exist
// for. The differential scenarios extend the seq == sharded ==
// snapshot-resumed contract onto meshes large enough that the sparse
// tier, the summary-level frontier and row promotion are all active;
// the property tests pin the promotion lifecycle and the bounded
// retired ledger directly.

import (
	"reflect"
	"testing"

	"repro/internal/packet"
	"repro/internal/topology"
)

// subTTLScenarios builds the differential cases: 64×64 (sparse tier
// active, promoteAt = 128) and 256×256 (promoteAt = 1024, multi-word
// summary level) grids with TTL ≪ diameter, broadcast churn from
// scattered sources, and recycling on so retirement, slot reuse and
// sparse-row resets all happen under shards.
func subTTLScenarios() []shardScenario {
	inject := func(tiles, count, stride int) []injection {
		var ins []injection
		for i := 0; i < count; i++ {
			in := injection{
				beforeRound: (i * 3) % 12,
				src:         packet.TileID((i*stride + 7) % tiles),
				dst:         packet.Broadcast,
			}
			if i%3 == 0 {
				in.dst = packet.TileID((i*stride + tiles/2) % tiles)
			}
			ins = append(ins, in)
		}
		return ins
	}
	return []shardScenario{
		{
			// Diameter 126, TTL 10: each broadcast touches a few hundred of
			// the 4096 tiles, crossing the 128-entry promotion threshold.
			name: "subttl-64x64",
			cfg: func() Config {
				return Config{
					Topo: topology.NewGrid(64, 64), P: 0.9, TTL: 10,
					MaxRounds: 1000, Seed: 0x5bb0, Recycle: true,
				}
			},
			inject: inject(64*64, 10, 641),
			rounds: 30,
		},
		{
			// Diameter 510, TTL 24: the spread diamond (~1200 tiles) crosses
			// the 1024-entry promotion threshold on a mesh whose summary
			// level spans 16 words.
			name: "subttl-256x256",
			cfg: func() Config {
				return Config{
					Topo: topology.NewGrid(256, 256), P: 1, TTL: 24,
					MaxRounds: 1000, Seed: 0xb16, Recycle: true,
				}
			},
			inject: inject(256*256, 6, 9241),
			rounds: 30,
		},
	}
}

// TestSubTTLDifferential runs each sub-TTL scenario sequentially, at
// shard counts 2 and 5, and snapshot-resumed mid-spread, and requires
// the full observable record — events, deliveries, counters, aware
// tables — to be identical. This is the shard-invariance and
// resume-identity contract on the mesh sizes where the sparse tier and
// the frontier scheduler actually engage.
func TestSubTTLDifferential(t *testing.T) {
	scenarios := subTTLScenarios()
	if testing.Short() {
		scenarios = scenarios[:1]
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			want := runShardScenario(t, sc, 1)
			if want.cnt.Retired == 0 {
				t.Fatal("scenario retired nothing — sub-TTL churn is not exercising recycling")
			}
			for _, shards := range []int{2, 5} {
				got := runShardScenario(t, sc, shards)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d diverged from sequential: %s",
						shards, firstEventDiff(want.events, got.events))
				}
			}
			// Resume at round 8: mid-spread, with sparse and promoted rows
			// both live in the checkpoint, restoring into a sharded engine.
			got, _ := runResumedScenario(t, sc, 8, 1, 2)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("snapshot-resume diverged from straight run: %s",
					firstEventDiff(want.events, got.events))
			}
		})
	}
}

// TestSparseRowPromotionLifecycle pins the two-tier row lifecycle on one
// message: rows are born sparse on a sparse-enabled mesh, promote to the
// dense tier at the barrier after their cardinality crosses the
// threshold, reset to empty sparse lists when the message retires, and
// the recycled slot's next tenant starts sparse with no trace of the old
// tenant (no resurrection).
func TestSparseRowPromotionLifecycle(t *testing.T) {
	cfg := Config{
		Topo: topology.NewGrid(64, 64), P: 1, TTL: 12,
		MaxRounds: 1000, Seed: 4242, Recycle: true,
	}
	n := mustNet(t, cfg)
	tb := &n.tbl
	if !tb.sparse {
		t.Fatal("64x64 mesh did not enable the sparse tier")
	}

	id := mustInject(t, n, 64*32+32, packet.Broadcast, 0, []byte("promote me"))
	s := msgSlot(id)
	if tb.present[s].bits != nil || tb.seen[s].bits != nil {
		t.Fatal("fresh slot's rows are not sparse")
	}

	promoted := -1
	for r := 0; r < 40 && n.current(id); r++ {
		sparseLen := len(tb.seen[s].list)
		n.Step()
		if promoted < 0 && tb.seen[s].bits != nil {
			promoted = n.Round()
			// Promotion must be cardinality-driven: the pre-step sparse
			// list, plus this round's growth, had to reach the threshold.
			if aware := int(tb.aware[s]); aware < tb.promoteAt {
				t.Fatalf("seen row promoted at %d aware tiles, threshold is %d (pre-step list %d)",
					aware, tb.promoteAt, sparseLen)
			}
		}
		// Whatever the tier, the incremental aware count must match a row
		// scan — the invariant that makes the tier invisible to behavior.
		if n.current(id) {
			if scan := tb.awareScan(s); scan != tb.aware[s] {
				t.Fatalf("round %d: aware %d != row scan %d", n.Round(), tb.aware[s], scan)
			}
		}
	}
	if promoted < 0 {
		t.Fatal("TTL-12 full-P broadcast never promoted its seen row past 128 tiles")
	}
	if n.current(id) {
		t.Fatal("message never retired; lifecycle not closed")
	}
	finalAware := n.Aware(id)
	if finalAware < tb.promoteAt {
		t.Fatalf("ledgered aware %d below promotion threshold %d — promotion can't have happened", finalAware, tb.promoteAt)
	}

	// Retirement must reset both rows to empty sparse lists and pool the
	// promoted bitmaps.
	if tb.present[s].bits != nil || tb.seen[s].bits != nil {
		t.Fatal("retired slot's rows still dense")
	}
	if len(tb.present[s].list) != 0 || len(tb.seen[s].list) != 0 {
		t.Fatal("retired slot's rows not empty")
	}
	if len(tb.freeRows) == 0 {
		t.Fatal("promoted bitmap not pooled at retirement")
	}

	// The recycled slot's next tenant must start from nothing.
	id2 := mustInject(t, n, 0, 63, 0, []byte("new tenant"))
	if msgSlot(id2) != s || id2 == id {
		t.Fatalf("slot not recycled: first ID %d (slot %d), second ID %d (slot %d)", id, s, id2, msgSlot(id2))
	}
	if tb.seen[s].bits != nil {
		t.Fatal("recycled slot resurrected a dense row")
	}
	if got := n.Aware(id2); got != 1 {
		t.Fatalf("new tenant Aware = %d, want 1 (source only)", got)
	}
	if got := n.Aware(id); got != finalAware {
		t.Fatalf("retired message's ledgered Aware moved %d -> %d after slot reuse", finalAware, got)
	}
	for ti := 0; ti < 64*64; ti++ {
		if n.AwareAt(id, packet.TileID(ti)) {
			t.Fatalf("retired message resurrected awareness at tile %d", ti)
		}
	}
}

// TestAwareScanMixedTiers cross-checks awareScan over all tier
// combinations of the present/seen pair against a brute-force per-tile
// union count.
func TestAwareScanMixedTiers(t *testing.T) {
	cfg := Config{Topo: topology.NewGrid(64, 64), P: 1, TTL: 3, MaxRounds: 10, Seed: 1}
	n := mustNet(t, cfg)
	tb := &n.tbl
	tiles := 64 * 64

	brute := func(s uint32) int32 {
		var c int32
		for ti := 0; ti < tiles; ti++ {
			p := n.rowBit(&tb.present[s], s, packet.TileID(ti))
			q := n.rowBit(&tb.seen[s], s, packet.TileID(ti))
			if p || q {
				c++
			}
		}
		return c
	}
	fill := func(r *msgRow, s uint32, tilesIn []int) {
		for _, ti := range tilesIn {
			n.rowSet(r, s, packet.TileID(ti))
		}
	}

	a := []int{0, 5, 63, 64, 100, 4095}
	b := []int{5, 64, 65, 200, 2048}
	for _, denseP := range []bool{false, true} {
		for _, denseS := range []bool{false, true} {
			s := tb.appendSlot()
			tb.occ[s] = true
			if denseP {
				tb.forceDense(&tb.present[s])
			}
			if denseS {
				tb.forceDense(&tb.seen[s])
			}
			fill(&tb.present[s], s, a)
			fill(&tb.seen[s], s, b)
			if got, want := tb.awareScan(s), brute(s); got != want {
				t.Fatalf("denseP=%v denseS=%v: awareScan = %d, brute force = %d", denseP, denseS, got, want)
			}
			// Clears must hold the scan equality too.
			n.rowClear(&tb.present[s], s, 64)
			n.rowClear(&tb.seen[s], s, 65)
			if got, want := tb.awareScan(s), brute(s); got != want {
				t.Fatalf("denseP=%v denseS=%v after clears: awareScan = %d, brute force = %d", denseP, denseS, got, want)
			}
		}
	}
}

// TestRetiredLedgerBounded pins the ledger's memory bound: under churn
// that retires far more messages than the ring holds, the map and ring
// stay pinned at the cap, the survivors are exactly the most recent
// retirees (eviction is oldest-first and deterministic), and an evicted
// message answers Aware = 0 like a never-issued one.
func TestRetiredLedgerBounded(t *testing.T) {
	const ringCap = 8
	run := func() (*Network, []packet.MsgID) {
		cfg := Config{
			Topo: topology.NewGrid(8, 8), P: 0.7, TTL: 3,
			MaxRounds: 10000, Seed: 31337, Recycle: true,
		}
		n := mustNet(t, cfg)
		n.tbl.retCap = ringCap

		// Track retirement order via generation bumps, like the engine does.
		lastGen := map[uint32]uint32{}
		var retireOrder []packet.MsgID
		for round := 0; round < 120; round++ {
			for i := 0; i < 2; i++ {
				src := packet.TileID((round*2 + i*31) % 64)
				mustInject(t, n, src, packet.Broadcast, 0, nil)
			}
			n.Step()
			for s := uint32(1); s <= uint32(n.issuedSlots()); s++ {
				for g := lastGen[s]; g < n.tbl.gens[s]; g++ {
					retireOrder = append(retireOrder, packMsgID(s, g))
				}
				lastGen[s] = n.tbl.gens[s]
			}
		}
		return n, retireOrder
	}

	n, retireOrder := run()
	tb := &n.tbl
	if len(retireOrder) <= 2*ringCap {
		t.Fatalf("only %d retirements over the run; need well over %d to exercise eviction", len(retireOrder), ringCap)
	}
	if len(tb.retRing) > ringCap {
		t.Fatalf("ledger ring grew to %d entries, cap is %d", len(tb.retRing), ringCap)
	}
	if len(tb.retired) != len(tb.retRing) {
		t.Fatalf("ledger map holds %d entries, ring %d — they must stay in lockstep", len(tb.retired), len(tb.retRing))
	}

	// Survivors must be a suffix of the retirement order (zero-aware
	// retirees never enter the ledger, so walk the suffix permissively),
	// in order.
	var ringOrder []packet.MsgID
	tb.ledgerEach(func(id packet.MsgID, _ int32) { ringOrder = append(ringOrder, id) })
	j := len(ringOrder) - 1
	for i := len(retireOrder) - 1; i >= 0 && j >= 0; i-- {
		if retireOrder[i] == ringOrder[j] {
			j--
		}
	}
	if j >= 0 {
		t.Fatalf("ledger ring %v is not an ordered suffix of the retirement order", ringOrder)
	}

	// Early retirees were evicted: Aware answers 0, exactly like a
	// never-issued ID.
	inRing := map[packet.MsgID]bool{}
	for _, id := range ringOrder {
		inRing[id] = true
	}
	evictedChecked := 0
	for _, id := range retireOrder[:ringCap] {
		if inRing[id] {
			continue
		}
		if got := n.Aware(id); got != 0 {
			t.Fatalf("evicted retiree %d still answers Aware = %d", id, got)
		}
		evictedChecked++
	}
	if evictedChecked == 0 {
		t.Fatal("no early retiree was evicted — churn too light for the test to mean anything")
	}

	// Determinism: the same run evicts the same entries in the same order.
	n2, _ := run()
	var ringOrder2 []packet.MsgID
	n2.tbl.ledgerEach(func(id packet.MsgID, _ int32) { ringOrder2 = append(ringOrder2, id) })
	if !reflect.DeepEqual(ringOrder, ringOrder2) {
		t.Fatalf("ledger eviction not deterministic:\nrun1: %v\nrun2: %v", ringOrder, ringOrder2)
	}
}
