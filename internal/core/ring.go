package core

import "repro/internal/packet"

// arrival is a packet copy in flight toward a tile, scheduled to be
// consumed at a specific round. On the analytic path the packet travels by
// value (the header is a few words; the payload rides along as a shared
// pointer), so a transmission costs no heap allocation. On the literal
// path the copy is the encoded wire frame, drawn from the network's frame
// pool.
type arrival struct {
	// pkt is the copy itself on the fast path. When frame is set only
	// pkt.ID is meaningful: it names the originating message for the
	// in-flight accounting of ID recycling (the frame's own ID field may
	// be corrupted beyond trust).
	pkt   packet.Packet
	frame []byte // literal path: encoded, possibly corrupted
	upset bool   // fast path: transmission was scrambled
}

// ringInitLen is the initial bucket count of an arrivalRing. It must be a
// power of two and covers sync slips of up to ringInitLen-1 rounds before
// the ring has to grow; at the σ_synchr values the experiments sweep
// (≤ 2·T_R) slips beyond 7 rounds are ≈4σ events.
const ringInitLen = 8

// ringInitCap is the arrival capacity pre-carved per bucket at first use,
// sized for the common per-round fan-in of a mesh tile (4 ports); buckets
// that overflow it grow individually by append.
const ringInitCap = 4

// arrivalRing schedules in-flight arrivals by absolute round. It replaces
// the per-tile pending map: because a copy transmitted in round r arrives
// in round r+slip and σ_synchr bounds how far slips reach, at most
// maxSlip+1 consecutive rounds are ever in flight, so a small power-of-two
// ring of buckets indexed by round&mask covers them without hashing.
// Consumed buckets are truncated in place and reused when the ring wraps,
// so steady-state scheduling allocates nothing.
type arrivalRing struct {
	buckets [][]arrival // power-of-two length; bucket for round x is x&mask
	count   int         // arrivals in flight across all buckets
	// initLen is the bucket count allocated at first use (0 means
	// ringInitLen). A skew-free fault model never slips an arrival, so its
	// networks start with a single recycled bucket; grow covers the rest.
	initLen int
}

// schedule enqueues a for consumption at absolute round when. now is the
// round currently executing; when >= now always holds (slips are never
// negative), and the ring grows if the slip outruns its span. pool, when
// non-nil, supplies recycled bucket arrays for a cold ring (lazyInit)
// instead of fresh allocations.
func (r *arrivalRing) schedule(now, when int, a arrival, pool *ringPool) {
	if r.buckets == nil {
		r.lazyInit(pool)
	}
	if when-now >= len(r.buckets) {
		r.grow(now, when-now+1)
	}
	i := when & (len(r.buckets) - 1)
	r.buckets[i] = append(r.buckets[i], a)
	r.count++
}

// lazyInit populates the buckets on a cold ring: from the pool when it
// has a detached bucket array (the steady state of a wandering frontier —
// rings drain and re-arm constantly, so recycling keeps first-touch cost
// allocation-free and bounds ring memory by the active tiles, not by
// every tile ever touched), otherwise the bucket array plus one backing
// block carved into per-bucket slices of capacity ringInitCap, so warming
// a ring costs two allocations instead of a cascade of small append
// growths. Full-slice expressions keep the carved buckets from growing
// into each other. A pooled array may be larger than initLen (it may have
// grown in its previous tenancy); schedule's mask arithmetic works at any
// power-of-two length, so the size is behavior-invisible.
func (r *arrivalRing) lazyInit(pool *ringPool) {
	if pool != nil {
		if l := len(pool.free); l > 0 {
			r.buckets = pool.free[l-1]
			pool.free[l-1] = nil
			pool.free = pool.free[:l-1]
			return
		}
	}
	n := r.initLen
	if n == 0 {
		n = ringInitLen
	}
	r.buckets = make([][]arrival, n)
	backing := make([]arrival, n*ringInitCap)
	for i := range r.buckets {
		r.buckets[i] = backing[i*ringInitCap : i*ringInitCap : (i+1)*ringInitCap]
	}
}

// grow rebuilds the ring with at least span buckets. In-flight arrivals
// occupy the absolute rounds [now, now+len-1]; each old bucket is moved to
// the slot its round maps to under the new mask (collision-free because
// the new length is a strictly larger power of two).
func (r *arrivalRing) grow(now, span int) {
	newLen := len(r.buckets) * 2
	for newLen < span {
		newLen *= 2
	}
	nb := make([][]arrival, newLen)
	for o := range r.buckets {
		ro := now + o
		nb[ro&(newLen-1)] = r.buckets[ro&(len(r.buckets)-1)]
	}
	r.buckets = nb
}

// take returns the bucket scheduled for round now. The caller iterates it
// and then calls release(now); the slice stays owned by the ring.
func (r *arrivalRing) take(now int) []arrival {
	if r.buckets == nil {
		return nil
	}
	return r.buckets[now&(len(r.buckets)-1)]
}

// release recycles round now's bucket after consumption: entries are
// zeroed (dropping payload and frame references for the GC) and the slice
// is truncated in place, keeping its capacity for the round that wraps
// onto this slot.
func (r *arrivalRing) release(now int) {
	if r.buckets == nil {
		return
	}
	i := now & (len(r.buckets) - 1)
	b := r.buckets[i]
	r.count -= len(b)
	for j := range b {
		b[j] = arrival{}
	}
	r.buckets[i] = b[:0]
}

// ringPoolCap bounds how many detached bucket arrays a pool retains;
// beyond it, drained rings drop their buckets for the GC. It comfortably
// covers the per-lane active-tile churn of the sub-TTL workloads.
const ringPoolCap = 256

// ringPool recycles the bucket arrays of drained arrival rings. Pools
// are per-lane: a ring is detached by the lane that consumed its last
// arrival (phase 4) and re-armed by whichever lane next schedules into
// the tile, so get/put never contend and the exchange is behavior-free —
// every pooled bucket is empty and zeroed (release truncates and zeroes
// before detach is possible).
type ringPool struct {
	free [][][]arrival
}

// detach moves a fully-drained ring's buckets into the pool (or drops
// them when the pool is full), returning the ring to its never-touched
// state. Caller must ensure r.count == 0.
func (rp *ringPool) detach(r *arrivalRing) {
	if r.buckets == nil {
		return
	}
	if len(rp.free) < ringPoolCap {
		rp.free = append(rp.free, r.buckets)
	}
	r.buckets = nil
}
