package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/topology"
)

// stepNet builds an 8x8 broadcast network in the steady state the engine
// spends most of its time in: every tile is aware of the message and holds
// a live copy, so each round is pure forwarding + duplicate-suppressed
// reception, with no application logic attached. TTL 255 keeps the copies
// alive for the whole measurement window.
func stepNet(tb testing.TB, cfg Config) *Network {
	tb.Helper()
	g := topology.NewGrid(8, 8)
	cfg.Topo = g
	cfg.TTL = 255
	cfg.MaxRounds = 100000
	n, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	n.Inject(0, packet.Broadcast, 0, make([]byte, 16))
	// Warm up past the spread transient so every tile holds a copy and
	// internal buffers have reached their steady capacity.
	for i := 0; i < 60; i++ {
		n.Step()
	}
	return n
}

// BenchmarkStepGrid8x8 is the engine hot-loop microbench: one Step of an
// 8x8 grid in broadcast steady state. This is the kernel every Monte Carlo
// replica spends its time in; run with -benchmem to see the allocation
// profile the zero-allocation refactor targets.
func BenchmarkStepGrid8x8(b *testing.B) {
	n := stepNet(b, Config{P: 0.5, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n.round >= 220 {
			// The broadcast dies when its TTL runs out; restart the
			// steady state outside the timer.
			b.StopTimer()
			n = stepNet(b, Config{P: 0.5, Seed: 1})
			b.StartTimer()
		}
		n.Step()
	}
}

// BenchmarkStepGrid8x8Sync is the same kernel under synchronization slip,
// exercising the multi-round arrival scheduling path.
func BenchmarkStepGrid8x8Sync(b *testing.B) {
	n := stepNet(b, Config{P: 0.5, Seed: 1, Fault: fault.Model{SigmaSync: 1.5}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n.round >= 220 {
			b.StopTimer()
			n = stepNet(b, Config{P: 0.5, Seed: 1, Fault: fault.Model{SigmaSync: 1.5}})
			b.StartTimer()
		}
		n.Step()
	}
}

// BenchmarkStepGrid8x8Literal measures the hardware-faithful path: every
// transmission is encoded to a wire frame and CRC-checked at reception.
func BenchmarkStepGrid8x8Literal(b *testing.B) {
	cfg := Config{P: 0.5, Seed: 1, Fault: fault.Model{PUpset: 0.1, LiteralUpsets: true}}
	n := stepNet(b, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n.round >= 220 {
			b.StopTimer()
			n = stepNet(b, cfg)
			b.StartTimer()
		}
		n.Step()
	}
}
