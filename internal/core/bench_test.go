package core

import (
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/topology"
)

// stepNet builds an 8x8 broadcast network in the steady state the engine
// spends most of its time in: every tile is aware of the message and holds
// a live copy, so each round is pure forwarding + duplicate-suppressed
// reception, with no application logic attached. TTL 255 keeps the copies
// alive for the whole measurement window.
func stepNet(tb testing.TB, cfg Config) *Network {
	tb.Helper()
	g := topology.NewGrid(8, 8)
	cfg.Topo = g
	cfg.TTL = 255
	cfg.MaxRounds = 100000
	n, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	n.Inject(0, packet.Broadcast, 0, make([]byte, 16))
	// Warm up past the spread transient so every tile holds a copy and
	// internal buffers have reached their steady capacity.
	for i := 0; i < 60; i++ {
		n.Step()
	}
	return n
}

// scaleNet is the large-mesh fixture of the sharded-engine benchmarks: a
// side×side grid with a *center* broadcast (a corner broadcast would need
// ~2× the rounds to cover the mesh, eating into the TTL-bounded
// measurement window), warmed up until every tile holds a live copy.
func scaleNet(tb testing.TB, side int, cfg Config) *Network {
	tb.Helper()
	g := topology.NewGrid(side, side)
	cfg.Topo = g
	cfg.TTL = 255
	cfg.MaxRounds = 100000
	n, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	n.Inject(g.ID(side/2, side/2), packet.Broadcast, 0, make([]byte, 16))
	// A p=0.5 center broadcast reaches the whole mesh in a little over
	// side rounds (~0.8 hops/round over side/2..side hops); side+30
	// rounds leave a wide steady-state window before the TTL guillotine.
	for i := 0; i < side+30; i++ {
		n.Step()
	}
	return n
}

// BenchmarkStepGrid8x8 is the engine hot-loop microbench: one Step of an
// 8x8 grid in broadcast steady state. This is the kernel every Monte Carlo
// replica spends its time in; run with -benchmem to see the allocation
// profile the zero-allocation refactor targets.
func BenchmarkStepGrid8x8(b *testing.B) {
	n := stepNet(b, Config{P: 0.5, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n.round >= 220 {
			// The broadcast dies when its TTL runs out; restart the
			// steady state outside the timer.
			b.StopTimer()
			n = stepNet(b, Config{P: 0.5, Seed: 1})
			b.StartTimer()
		}
		n.Step()
	}
}

// BenchmarkStepGrid8x8Sync is the same kernel under synchronization slip,
// exercising the multi-round arrival scheduling path.
func BenchmarkStepGrid8x8Sync(b *testing.B) {
	n := stepNet(b, Config{P: 0.5, Seed: 1, Fault: fault.Model{SigmaSync: 1.5}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n.round >= 220 {
			b.StopTimer()
			n = stepNet(b, Config{P: 0.5, Seed: 1, Fault: fault.Model{SigmaSync: 1.5}})
			b.StartTimer()
		}
		n.Step()
	}
}

// benchStepShards measures one Step of a side×side grid in broadcast
// steady state at the given shard count (1 = the sequential engine).
func benchStepShards(b *testing.B, side, shards int) {
	cfg := Config{P: 0.5, Seed: 1, Shards: shards}
	n := scaleNet(b, side, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n.round >= 230 {
			// The broadcast dies when its TTL runs out; restart the
			// steady state outside the timer.
			b.StopTimer()
			n = scaleNet(b, side, cfg)
			b.StartTimer()
		}
		n.Step()
	}
}

// BenchmarkStepGrid32x32 compares the sequential engine against the
// sharded engine on a 1024-tile mesh — the scaling kernel of the
// EXPERIMENTS.md wall-clock table. The shards=1 case is the sequential
// baseline; speedup is meaningful only with GOMAXPROCS >= shards.
func BenchmarkStepGrid32x32(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchStepShards(b, 32, shards)
		})
	}
}

// BenchmarkStepGrid64x64 is the same comparison on a 4096-tile mesh,
// where per-round work is large enough to amortize the phase barriers.
func BenchmarkStepGrid64x64(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchStepShards(b, 64, shards)
		})
	}
}

// benchChurn measures one inject+Step round of a side×side recycling mesh
// under sustained unicast churn — the mega-mesh workload of the memory
// refactor. Unlike the broadcast fixtures above, the live message
// population turns over every TTL rounds, so this kernel exercises slot
// retirement, free-list reuse and the bitset row clears alongside
// forwarding. B/op is the gate metric: at steady state the table is
// warm and a round should allocate only delivery mailbox entries and
// retired-ledger accretion, independent of mesh size.
func benchChurn(b *testing.B, side, perRound, shards int) {
	g := topology.NewGrid(side, side)
	cfg := Config{
		Topo: g, P: 0.5, TTL: 8, MaxRounds: 1 << 30, Seed: 0xE5CA1A,
		Recycle: true, Shards: shards,
	}
	n, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tiles := side * side
	round := 0
	churnRound := func() {
		for i := 0; i < perRound; i++ {
			src := packet.TileID((round*perRound*2654435761 + i*40503) % tiles)
			if _, err := n.Inject(src, src^1, 0, nil); err != nil {
				b.Fatal(err)
			}
		}
		n.Step()
		round++
	}
	for round < 30 { // warm up: slot table and rings reach steady capacity
		churnRound()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		churnRound()
	}
}

// BenchmarkStepGrid256x256 is the 65536-tile churn kernel — the smallest
// mesh the AutoShards mega heuristic treats as a mega-mesh, and the mesh
// the CI memory gate benchmarks with -benchmem against the committed
// baseline.
func BenchmarkStepGrid256x256(b *testing.B) {
	benchChurn(b, 256, 8, 8)
}

// BenchmarkStepGrid512x512 is the tentpole 262144-tile churn kernel.
func BenchmarkStepGrid512x512(b *testing.B) {
	benchChurn(b, 512, 8, 8)
}

// benchDenseBroadcast measures one inject+Step round of a 64×64 mesh
// saturated with low-p broadcast traffic — the draw-dominated workload
// the batch kernel (Config.BatchDraws) exists for. Every round injects
// perRound fresh broadcasts; with TTL 192 the steady state holds ~37k
// live copies, so phase 3 faces ~150k Bernoulli(0.001) trials per
// round of which only a couple hundred fire. The default kernel pays
// one draw per trial; the batch kernel geometric-skips straight to the
// successes.
func benchDenseBroadcast(b *testing.B, batch bool) {
	const side, perRound = 64, 192
	g := topology.NewGrid(side, side)
	cfg := Config{
		Topo: g, P: 0.001, TTL: 192, MaxRounds: 1 << 30, Seed: 0xDE45E,
		Recycle: true, BatchDraws: batch,
	}
	n, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tiles := side * side
	round := 0
	denseRound := func() {
		for i := 0; i < perRound; i++ {
			src := packet.TileID((round*perRound*2654435761 + i*40503) % tiles)
			if _, err := n.Inject(src, packet.Broadcast, 0, nil); err != nil {
				b.Fatal(err)
			}
		}
		n.Step()
		round++
	}
	// Warm up well past TTL so the slot pool, free list and rings reach
	// their steady sizes and no measured round grows the tables.
	for round < 400 {
		denseRound()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		denseRound()
	}
}

// BenchmarkStepGrid64x64DenseBcast is the default-kernel baseline of the
// dense-broadcast workload.
func BenchmarkStepGrid64x64DenseBcast(b *testing.B) {
	benchDenseBroadcast(b, false)
}

// BenchmarkStepGrid64x64DenseBcastBatch is the same workload under the
// batch forwarding kernel — the ≥2× acceptance target of the kernel.
func BenchmarkStepGrid64x64DenseBcastBatch(b *testing.B) {
	benchDenseBroadcast(b, true)
}

// activeTiles counts the tiles currently on the engine's frontier (send
// buffer or arrival ring non-empty) — the quantity the frontier
// scheduler makes each round's cost proportional to.
func activeTiles(n *Network) int {
	c := 0
	seen := make(map[int]bool)
	forOccupied(&n.bufOcc, 0, len(n.tiles), false, func(ti int) {
		if !seen[ti] {
			seen[ti] = true
			c++
		}
	})
	forOccupied(&n.rcvOcc, 0, len(n.tiles), false, func(ti int) {
		if !seen[ti] {
			seen[ti] = true
			c++
		}
	})
	return c
}

// benchSubTTL measures one inject+Step round of a side×side recycling
// mesh under sub-TTL broadcast churn: every broadcast dies TTL hops from
// its source, so only a pocket of the mesh is ever active and per-round
// cost should track the active-tile count, not the mesh size — the
// workload the frontier scheduler and the sparse row tier exist for.
// The live population turns over continuously, exercising retirement,
// sparse-row resets and (when the spread pocket outgrows the promotion
// threshold) the two-tier promotion path. The steady-state active-tile
// count is attached to the result as the active_tiles metric.
func benchSubTTL(b *testing.B, side int, ttl uint8, perRound, shards int) {
	g := topology.NewGrid(side, side)
	cfg := Config{
		Topo: g, P: 0.5, TTL: ttl, MaxRounds: 1 << 30, Seed: 0x5bb7,
		Recycle: true, Shards: shards,
	}
	n, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	tiles := side * side
	round := 0
	churnRound := func() {
		for i := 0; i < perRound; i++ {
			src := packet.TileID((round*perRound*2654435761 + i*40503) % tiles)
			if _, err := n.Inject(src, packet.Broadcast, 0, nil); err != nil {
				b.Fatal(err)
			}
		}
		n.Step()
		round++
	}
	// Warm up well past TTL so the live population, slot pool and rings
	// reach their steady sizes.
	for round < int(ttl)*2+30 {
		churnRound()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		churnRound()
	}
	b.StopTimer()
	b.ReportMetric(float64(activeTiles(n)), "active_tiles")
}

// BenchmarkStepGrid512x512SubTTL is the tentpole target workload: a
// 262144-tile mesh where TTL-16 broadcasts keep a few thousand tiles
// active. CI gates both ns/op and B/op against BENCH_8.json.
func BenchmarkStepGrid512x512SubTTL(b *testing.B) {
	benchSubTTL(b, 512, 16, 4, 8)
}

// BenchmarkStepGrid256x256SubTTL is the same workload on the 65536-tile
// mesh, also gated against BENCH_8.json.
func BenchmarkStepGrid256x256SubTTL(b *testing.B) {
	benchSubTTL(b, 256, 16, 4, 8)
}

// BenchmarkStepGrid512x512SparsePocket is the frontier scheduler's
// limiting case: one TTL-4 broadcast per round keeps a few dozen of the
// 262144 tiles active, so nearly the entire round cost is scheduling —
// the part a mesh-proportional sweep dominates and a frontier walk
// makes O(active). Sequential on purpose: barrier handoffs would
// otherwise drown the quantity under test.
func BenchmarkStepGrid512x512SparsePocket(b *testing.B) {
	benchSubTTL(b, 512, 4, 1, 1)
}

// BenchmarkSubTTLScaling sweeps the TTL on a fixed 64×64 mesh for the
// EXPERIMENTS.md scaling table: round cost should grow with the TTL's
// active-tile pocket while the mesh stays constant. The ttl=inf variant
// (saturated single broadcast, every tile holding a live copy — the
// scaleNet fixture, whose TTL-255 window comfortably covers this mesh)
// is the full-mesh limit the frontier engine degrades to.
func BenchmarkSubTTLScaling(b *testing.B) {
	for _, ttl := range []uint8{8, 16, 32} {
		b.Run(fmt.Sprintf("ttl=%d", ttl), func(b *testing.B) {
			benchSubTTL(b, 64, ttl, 4, 8)
		})
	}
	b.Run("ttl=inf", func(b *testing.B) {
		cfg := Config{P: 0.5, Seed: 1, Shards: 8}
		n := scaleNet(b, 64, cfg)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if n.round >= 230 {
				b.StopTimer()
				n = scaleNet(b, 64, cfg)
				b.StartTimer()
			}
			n.Step()
		}
		b.StopTimer()
		b.ReportMetric(float64(activeTiles(n)), "active_tiles")
	})
}

// BenchmarkStepGrid8x8Literal measures the hardware-faithful path: every
// transmission is encoded to a wire frame and CRC-checked at reception.
func BenchmarkStepGrid8x8Literal(b *testing.B) {
	cfg := Config{P: 0.5, Seed: 1, Fault: fault.Model{PUpset: 0.1, LiteralUpsets: true}}
	n := stepNet(b, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n.round >= 220 {
			b.StopTimer()
			n = stepNet(b, cfg)
			b.StartTimer()
		}
		n.Step()
	}
}
