package core

import (
	"math/bits"
	"sync/atomic"
)

// This file holds the per-tile occupancy bitmaps of the round engine.
//
// The phase loops of Step sweep the mesh once per phase, and on a
// mega-mesh almost every tile they visit is idle: a 512×512 churn
// workload keeps a few hundred messages live across 262144 tiles, so the
// sweeps were >95% of the round's wall-clock — three cache misses per
// idle tile per round just to discover there is nothing to do. The
// engine therefore tracks, in two dense bitmaps, which tiles can
// possibly have work:
//
//   - bufOcc: tile's send buffer is non-empty (phases 2 and 3 visit it);
//   - rcvOcc: tile's arrival ring holds in-flight copies (phase 4
//     visits it — a tile whose arrivals are all scheduled for future
//     rounds is revisited each round until they drain, which is cheap
//     and keeps the bit maintenance trivial).
//
// Each bitmap carries a summary level on top — one summary bit per
// 64-tile word, set while the word is non-zero — so the phase sweeps are
// two-level: walk the set summary bits, then the set tile bits under
// them. A sub-TTL workload on a 512×512 mesh touches a few dozen of the
// 4096 tile words; the summary collapses the idle remainder to 64 word
// loads per phase, making the sweep O(active words + tiles/4096) instead
// of O(tiles/64). This is the frontier the scheduler iterates: a tile
// enters it the instant a copy is buffered or scheduled to arrive, and
// leaves when its buffer and ring drain.
//
// Both levels are exact at every round barrier (enqueue sets a tile's
// bufOcc bit when its buffer goes non-empty, aging clears it when the
// buffer empties; scheduling sets rcvOcc, phase 4 clears it when the
// ring drains; word-level transitions mirror into the summary), which is
// what lets Quiescent answer from the bitmaps alone. Iteration is in
// ascending tile order — the same order the full sweeps used — so
// skipping idle tiles is invisible to the event log, the RNG streams and
// every golden.
//
// Concurrency: a tile's bit is only ever flipped by the lane that owns
// the tile, but tiles of several lanes can share a 64-tile word when
// lane boundaries are unaligned (meshes too small for word-aligned
// sharding, see initLanes). Tile-bit flips then go through a CAS loop
// and iteration reads the words atomically; with word-aligned lanes —
// and always on the sequential engine — plain loads and stores suffice.
// The summary level is one notch more shared: even under an aligned
// partition a summary word covers 64 tile words that may span several
// lanes, so while shard goroutines are live every summary flip is a CAS
// and every summary read an atomic load. That stays cheap because
// summary bits only flip on a word's empty↔non-empty transitions — at
// most once per active word per phase, not once per transmission. Under
// an unaligned partition a tile word itself is shared, and a drain by
// one lane can race a fill by another on the same summary bit; clearing
// would lose the fill, so unaligned parallel clears leave the summary
// bit set. The summary is then a conservative superset — iteration
// reads a zero tile word and moves on — and the next sequential or
// exclusive-owner clear tidies it. Unaligned partitions only occur on
// meshes with fewer than 64 tiles per shard, where the whole summary is
// one word.

// occMap is one two-level occupancy bitmap: bits holds one bit per tile,
// sum one bit per word of bits (set while the word is non-zero — exactly
// at barriers, a superset mid-phase under unaligned parallel clears).
type occMap struct {
	bits []uint64
	sum  []uint64
}

// empty reports whether no bit of m is set, walking only the words the
// summary names. A stale summary bit (unaligned parallel clears, see the
// file comment) is verified against its word, so a superset summary
// never yields a false non-empty verdict. Barrier use only.
func (m *occMap) empty() bool {
	for si, sw := range m.sum {
		for sw != 0 {
			wi := si<<6 + bits.TrailingZeros64(sw)
			sw &= sw - 1
			if m.bits[wi] != 0 {
				return false
			}
		}
	}
	return true
}

// occWords returns the bitmap length for a tiles-tile mesh.
func occWords(tiles int) int { return (tiles + 63) / 64 }

// initOcc sizes the map for a tiles-tile mesh.
func (m *occMap) initOcc(tiles int) {
	m.bits = make([]uint64, occWords(tiles))
	m.sum = make([]uint64, occWords(len(m.bits)))
}

// reset zeroes both levels (restore path).
func (m *occMap) reset() {
	clear(m.bits)
	clear(m.sum)
}

// setBarrier sets bit ti with no concurrency discipline — only for use
// at barriers (rebuildOccupancy), where no shard goroutine is live.
func (m *occMap) setBarrier(ti int) {
	wi := ti >> 6
	m.bits[wi] |= 1 << (uint(ti) & 63)
	m.sum[wi>>6] |= 1 << (uint(wi) & 63)
}

// occSet sets bit ti of m. Safe under parallel phases: unaligned lanes
// CAS the shared tile word, aligned lanes own their tile words outright;
// the summary word is CASed whenever shard goroutines are live (it can
// span lanes even under an aligned partition). The CAS loops live in
// separate functions so that occSet/occClear stay leaf calls the
// compiler inlines into the per-transmission hot path.
func (n *Network) occSet(m *occMap, ti uint32) {
	if n.par && !n.alignedLanes {
		occSetAtomic(m, ti)
		return
	}
	wi := ti >> 6
	old := m.bits[wi]
	m.bits[wi] = old | 1<<(ti&63)
	if old == 0 {
		// Word went live: publish it in the summary.
		if n.par {
			sumSetAtomic(m.sum, wi)
		} else {
			m.sum[wi>>6] |= 1 << (wi & 63)
		}
	}
}

func occSetAtomic(m *occMap, ti uint32) {
	w := &m.bits[ti>>6]
	mask := uint64(1) << (ti & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			if old == 0 {
				sumSetAtomic(m.sum, ti>>6)
			}
			return
		}
	}
}

// occClear clears bit ti of m, under the same discipline as occSet. A
// word drained by an unaligned parallel clear keeps its summary bit (see
// the file comment: clearing could lose a concurrent fill of the shared
// word); everywhere else the summary tracks the word exactly.
func (n *Network) occClear(m *occMap, ti uint32) {
	if n.par && !n.alignedLanes {
		occClearAtomic(m, ti)
		return
	}
	wi := ti >> 6
	w := m.bits[wi] &^ (1 << (ti & 63))
	m.bits[wi] = w
	if w == 0 {
		if n.par {
			sumClearAtomic(m.sum, wi)
		} else {
			m.sum[wi>>6] &^= 1 << (wi & 63)
		}
	}
}

func occClearAtomic(m *occMap, ti uint32) {
	w := &m.bits[ti>>6]
	mask := uint64(1) << (ti & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask == 0 || atomic.CompareAndSwapUint64(w, old, old&^mask) {
			return
		}
	}
}

// sumSetAtomic sets summary bit wi (one bit per tile word) with a CAS:
// summary words can span lanes even when tile words do not.
func sumSetAtomic(sum []uint64, wi uint32) {
	w := &sum[wi>>6]
	mask := uint64(1) << (wi & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 || atomic.CompareAndSwapUint64(w, old, old|mask) {
			return
		}
	}
}

// sumClearAtomic clears summary bit wi. Only called while the clearing
// lane exclusively owns tile word wi (aligned partitions), so no
// concurrent fill of that word can race the clear.
func sumClearAtomic(sum []uint64, wi uint32) {
	w := &sum[wi>>6]
	mask := uint64(1) << (wi & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask == 0 || atomic.CompareAndSwapUint64(w, old, old&^mask) {
			return
		}
	}
}

// forOccupied calls visit for every set bit of m in [lo, hi), in
// ascending tile order — the sequential sweep order, minus the idle
// tiles. Iteration is two-level: set summary bits select the tile words
// to load, so idle stretches cost one summary word per 4096 tiles.
// atomicLoad selects atomic word reads, needed while another lane may
// CAS its own bits of a shared boundary word.
func forOccupied(m *occMap, lo, hi int, atomicLoad bool, visit func(ti int)) {
	if lo >= hi {
		return
	}
	w0, w1 := lo>>6, (hi+63)>>6
	s0, s1 := w0>>6, (w1+63)>>6
	for si := s0; si < s1; si++ {
		var sw uint64
		if atomicLoad {
			sw = atomic.LoadUint64(&m.sum[si])
		} else {
			sw = m.sum[si]
		}
		if si == s0 {
			sw &^= (uint64(1) << (uint(w0) & 63)) - 1 // mask words below w0
		}
		for sw != 0 {
			wi := si<<6 + bits.TrailingZeros64(sw)
			sw &= sw - 1
			if wi >= w1 {
				break
			}
			var w uint64
			if atomicLoad {
				w = atomic.LoadUint64(&m.bits[wi])
			} else {
				w = m.bits[wi]
			}
			if wi == w0 {
				w &^= (uint64(1) << (uint(lo) & 63)) - 1 // mask bits below lo
			}
			for w != 0 {
				ti := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				if ti >= hi {
					return
				}
				visit(ti)
			}
		}
	}
}

// rebuildOccupancy recomputes both bitmaps from the tiles' actual state.
// Restore uses it: the checkpoint serializes buffers and rings, and the
// bitmaps (both levels) are derived state.
func (n *Network) rebuildOccupancy() {
	n.bufOcc.reset()
	n.rcvOcc.reset()
	for i, t := range n.tiles {
		if len(t.sendBuf) > 0 {
			n.bufOcc.setBarrier(i)
		}
		if t.ring.count > 0 {
			n.rcvOcc.setBarrier(i)
		}
	}
}
