package core

import (
	"math/bits"
	"sync/atomic"
)

// This file holds the per-tile occupancy bitmaps of the round engine.
//
// The phase loops of Step sweep the mesh once per phase, and on a
// mega-mesh almost every tile they visit is idle: a 512×512 churn
// workload keeps a few hundred messages live across 262144 tiles, so the
// sweeps were >95% of the round's wall-clock — three cache misses per
// idle tile per round just to discover there is nothing to do. The
// engine therefore tracks, in two dense bitmaps, which tiles can
// possibly have work:
//
//   - bufOcc: tile's send buffer is non-empty (phases 2 and 3 visit it);
//   - rcvOcc: tile's arrival ring holds in-flight copies (phase 4
//     visits it — a tile whose arrivals are all scheduled for future
//     rounds is revisited each round until they drain, which is cheap
//     and keeps the bit maintenance trivial).
//
// Both bitmaps are exact at every round barrier (enqueue sets a tile's
// bufOcc bit when its buffer goes non-empty, aging clears it when the
// buffer empties; scheduling sets rcvOcc, phase 4 clears it when the
// ring drains), which is what lets Quiescent answer from the bitmaps
// alone. Iteration is in ascending tile order — the same order the
// full sweeps used — so skipping idle tiles is invisible to the event
// log, the RNG streams and every golden.
//
// Concurrency: a tile's bit is only ever flipped by the lane that owns
// the tile, but tiles of several lanes can share a 64-tile word when
// lane boundaries are unaligned (meshes too small for word-aligned
// sharding, see initLanes). Flips then go through a CAS loop and
// iteration reads the words atomically; with word-aligned lanes — and
// always on the sequential engine — plain loads and stores suffice.

// occWords returns the bitmap length for a tiles-tile mesh.
func occWords(tiles int) int { return (tiles + 63) / 64 }

// occSet sets bit ti of occ. Safe under parallel phases: unaligned lanes
// CAS the shared word, aligned lanes own their words outright. The CAS
// loops live in separate functions so that occSet/occClear stay leaf
// calls the compiler inlines into the per-transmission hot path.
func (n *Network) occSet(occ []uint64, ti uint32) {
	if n.par && !n.alignedLanes {
		occSetAtomic(occ, ti)
		return
	}
	occ[ti>>6] |= 1 << (ti & 63)
}

func occSetAtomic(occ []uint64, ti uint32) {
	w := &occ[ti>>6]
	mask := uint64(1) << (ti & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 || atomic.CompareAndSwapUint64(w, old, old|mask) {
			return
		}
	}
}

// occClear clears bit ti of occ, under the same discipline as occSet.
func (n *Network) occClear(occ []uint64, ti uint32) {
	if n.par && !n.alignedLanes {
		occClearAtomic(occ, ti)
		return
	}
	occ[ti>>6] &^= 1 << (ti & 63)
}

func occClearAtomic(occ []uint64, ti uint32) {
	w := &occ[ti>>6]
	mask := uint64(1) << (ti & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask == 0 || atomic.CompareAndSwapUint64(w, old, old&^mask) {
			return
		}
	}
}

// forOccupied calls visit for every set bit of occ in [lo, hi), in
// ascending tile order — the sequential sweep order, minus the idle
// tiles. atomicLoad selects atomic word reads, needed while another
// lane may CAS its own bits of a shared boundary word.
func forOccupied(occ []uint64, lo, hi int, atomicLoad bool, visit func(ti int)) {
	if lo >= hi {
		return
	}
	w0, w1 := lo>>6, (hi+63)>>6
	for wi := w0; wi < w1; wi++ {
		var w uint64
		if atomicLoad {
			w = atomic.LoadUint64(&occ[wi])
		} else {
			w = occ[wi]
		}
		if wi == w0 {
			w &^= (uint64(1) << (uint(lo) & 63)) - 1 // mask bits below lo
		}
		for w != 0 {
			ti := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			if ti >= hi {
				return
			}
			visit(ti)
		}
	}
}

// rebuildOccupancy recomputes both bitmaps from the tiles' actual state.
// Restore uses it: the checkpoint serializes buffers and rings, and the
// bitmaps are derived state.
func (n *Network) rebuildOccupancy() {
	clear(n.bufOcc)
	clear(n.rcvOcc)
	for i, t := range n.tiles {
		if len(t.sendBuf) > 0 {
			n.bufOcc[i>>6] |= 1 << (uint(i) & 63)
		}
		if t.ring.count > 0 {
			n.rcvOcc[i>>6] |= 1 << (uint(i) & 63)
		}
	}
}
