package core

import (
	"fmt"
	"io"
	"math"

	"repro/internal/crc"
	"repro/internal/packet"
	"repro/internal/snapshot"
)

// This file implements checkpoint/resume for the round engine: Snapshot
// serializes the complete simulation state at a round barrier, Restore
// rebuilds a Network that continues bit-identically — same events, same
// counters, same RNG draws, same final state — as if the run had never
// stopped. The headline guarantee, pinned by TestSnapshotResume* and the
// randomized differential suite (diff_test.go):
//
//	Restore(Snapshot(run to round k)) → run to round n
//
// equals an uninterrupted n-round run byte for byte, for any k, any
// shard count on either side, and any fault-knob combination.
//
// What the snapshot covers: the per-tile RNG streams, send buffers,
// message-flag tables, forward cursors and limits, mailboxes, in-flight
// arrivals (by-value copies and literal wire frames alike, with their
// scheduled rounds), the network-wide message table (aware counts and
// spread-stop tombstones), the dense ID allocator, the round counter and
// the run Counters. What it deliberately does not cover: the Config
// itself (function hooks cannot be serialized — Restore takes the
// original Config from the caller and verifies a digest of its
// deterministic fields), attached Process state (the IP cores are the
// application's to checkpoint; re-Attach them after Restore), and
// SetRouter functions (re-apply them; forward limits ARE captured).
//
// The fault injector is not serialized either, on purpose: permanent
// failures are sampled deterministically from Config.Seed at New, so the
// rebuilt Network re-derives the exact crash set — one more reason the
// digest pins the seed and fault model.

// corePayloadVersion versions the SecCore payload layout independently of
// the container version. Version 4 (the two-tier row engine) prefixes
// every stored row with a tier byte — dense rows serialize their words as
// before, sparse rows a strictly-ascending tile list — and writes the
// retired ledger in ring (retirement) order, the order the bounded ledger
// itself keeps. Version 3 added the forwarding-kernel flag
// (Config.BatchDraws) next to the recycle flag — the kernel changes the
// RNG realization, so resuming under the wrong one must be refused, like
// a Recycle mismatch. Version 2 (the bitset/recycling engine) encodes
// the message table slot-major — generations, occupancy, tile bitmaps,
// the free list and the retired ledger — and stamps every in-flight wire
// frame with its originating ID; version 1 (the dense per-tile-flags
// engine) is still decoded, for checkpoints written before the refactor
// (restoreV1). All older versions stay readable: their all-dense rows
// restore onto whichever tier discipline the mesh uses (forceDense), and
// versions below 3, lacking the kernel flag, restore only into
// BatchDraws=false networks.
const corePayloadVersion = 4

// corePayloadVersionV3 is the pre-two-tier (all-dense rows) layout.
const corePayloadVersionV3 = 3

// corePayloadVersionV2 is the pre-batch-kernel layout, kept readable.
const corePayloadVersionV2 = 2

// corePayloadVersionV1 is the pre-recycling payload layout, kept readable.
const corePayloadVersionV1 = 1

// arrival discriminants in the in-flight encoding.
const (
	arrValue uint8 = iota // by-value copy, clean
	arrUpset              // by-value copy, scrambled in flight (analytic path)
	arrFrame              // literal path: encoded, possibly corrupted wire frame
)

// ConfigDigest returns a checksum over cfg's deterministic,
// behavior-defining fields and the full topology wiring. A snapshot
// embeds the digest of the run that produced it; Restore refuses a cfg
// whose digest differs, catching the classic checkpoint bug — resuming
// under a subtly different configuration — before it can corrupt a
// campaign. Shards is excluded (the sharded engine is bit-identical, so
// a checkpoint may be resumed at any shard count), as are the function
// fields (hooks, PortWeight), which the caller must re-supply unchanged.
func ConfigDigest(cfg *Config) uint32 {
	w := snapshot.NewWriter()
	// Tile IDs widened to 32 bits with the mega-mesh work, but digests of
	// pre-existing checkpoints hash 16-bit IDs; meshes that fit keep the
	// narrow hashing so those digests stay verifiable.
	tileW := func(t packet.TileID) { w.U16(uint16(t)) }
	if cfg.Topo.Tiles() > int(packet.MaxWireTile) {
		tileW = func(t packet.TileID) { w.U32(uint32(t)) }
	}
	w.Int(cfg.Topo.Tiles())
	for i := 0; i < cfg.Topo.Tiles(); i++ {
		nbrs := cfg.Topo.Neighbors(packet.TileID(i))
		w.Int(len(nbrs))
		for _, nb := range nbrs {
			tileW(nb)
		}
	}
	w.F64(cfg.P)
	w.U8(cfg.TTL)
	w.Int(cfg.BufferCap)
	w.Int(cfg.MaxRounds)
	w.U64(cfg.Seed)
	w.Bool(cfg.DisableDedup)
	w.Bool(cfg.StopSpreadOnDelivery)
	f := &cfg.Fault
	w.F64(f.PTileCrash)
	w.Int(f.DeadTiles)
	w.F64(f.PLinkCrash)
	w.Int(f.DeadLinks)
	w.F64(f.PUpset)
	w.F64(f.POverflow)
	w.F64(f.SigmaSync)
	w.Bool(f.LiteralUpsets)
	w.Int(int(f.ErrorModel))
	w.Int(len(f.Protect))
	for _, t := range f.Protect {
		tileW(t)
	}
	return crc.Checksum32(w.Bytes())
}

// Snapshot serializes the network's complete simulation state to w as a
// single-section checkpoint container. It must be called at a round
// barrier — between Steps, where no phase is executing and nothing is
// staged in a lane — which is the only place single-threaded callers can
// call it anyway. The snapshot is deterministic: two networks in
// identical states produce identical bytes, which the differential suite
// exploits as a whole-state equality oracle.
func (n *Network) Snapshot(w io.Writer) error {
	enc := snapshot.NewEncoder(w)
	n.EncodeState(enc.Section(snapshot.SecCore))
	return enc.Close()
}

// EncodeState writes the engine state as a SecCore payload. It is the
// composable form of Snapshot, for callers (package sim) that assemble
// containers with additional sections (metrics series, replica
// metadata).
func (n *Network) EncodeState(w *snapshot.Writer) {
	w.Int(corePayloadVersion)
	w.U32(ConfigDigest(&n.cfg))
	// The recycle and batch-kernel flags live in the payload, not the
	// digest (so older digests stay valid); restore still refuses a
	// mismatch with cfg.Recycle/cfg.BatchDraws — the retirement barrier
	// and the draw kernel are both behavior-defining.
	w.Bool(n.recycle)
	w.Bool(n.batch)
	w.Int(n.round)
	w.Uvarint(uint64(n.nextID))
	w.Bool(n.started)

	// Counters.
	w.Int(n.cnt.Energy.Transmissions)
	w.Int(n.cnt.Energy.Bits)
	w.Int(n.cnt.UpsetsInjected)
	w.Int(n.cnt.UpsetsDetected)
	w.Int(n.cnt.OverflowDrops)
	w.Int(n.cnt.SlippedDeliveries)
	w.Int(n.cnt.Deliveries)
	w.Int(n.cnt.DeliveredPayloadBits)
	w.Int(n.cnt.Duplicates)
	w.Int(n.cnt.Retired)
	w.Int(n.cnt.GhostFrames)

	// Message table, slot-major (slot 0 is the unused sentinel). Rows are
	// only stored for occupied slots — a retired slot's rows are zero by
	// construction. Buffered-copy and in-flight counts are not stored:
	// restore recomputes them from the send buffers and arrival rings
	// they summarize.
	tb := &n.tbl
	w.Int(tb.slots())
	for s := 1; s <= tb.slots(); s++ {
		w.U32(tb.gens[s])
		var bits uint8
		if tb.occ[s] {
			bits |= slotOccupied
		}
		if tb.dead[s] {
			bits |= slotDead
		}
		w.U8(bits)
		if tb.occ[s] {
			w.Int(int(tb.aware[s]))
			encodeRow(w, &tb.present[s])
			encodeRow(w, &tb.seen[s])
		}
	}
	// Free list, in FIFO order — slot reuse order is observable through
	// the IDs a resumed run issues, so it must survive the round trip.
	w.Int(len(tb.free) - tb.freeHead)
	for _, s := range tb.free[tb.freeHead:] {
		w.U32(s)
	}
	// Retired ledger, in ring (retirement) order — the order the bounded
	// ledger evicts in, which a resumed run must share for its future
	// evictions (and its future snapshots) to stay byte-identical.
	// Retirement order is deterministic, so so are these bytes.
	w.Int(len(tb.retired))
	tb.ledgerEach(func(id packet.MsgID, aware int32) {
		w.Uvarint(uint64(id))
		w.Int(int(aware))
	})

	// Per-tile state.
	w.Int(len(n.tiles))
	for _, t := range n.tiles {
		for _, s := range t.rnd.State() {
			w.U64(s)
		}
		w.Int(t.fwdCursor)
		w.Int(t.fwdLimit)
		w.Int(len(t.sendBuf))
		for i := range t.sendBuf {
			encodePacket(w, &t.sendBuf[i])
		}
		w.Int(len(t.mailbox))
		for _, p := range t.mailbox {
			encodePacket(w, p)
		}
		encodeRing(w, &t.ring, n.round)
	}
}

// Message-table slot state bits in the version-2 payload.
const (
	slotOccupied uint8 = 1 << 0
	slotDead     uint8 = 1 << 1
)

// encodePacket writes one packet. Tile IDs are 32 bits in the version-2
// payload (version-1 payloads carried 16; restoreV1 widens on read).
func encodePacket(w *snapshot.Writer, p *packet.Packet) {
	w.Uvarint(uint64(p.ID))
	w.U32(uint32(p.Src))
	w.U32(uint32(p.Dst))
	w.U8(uint8(p.Kind))
	w.U8(p.TTL)
	w.WriteBytes(p.Payload)
}

// encodeRing writes a tile's in-flight arrivals in consumption order. At
// a round barrier every live arrival is scheduled for a round in
// (round, round+len(buckets)]; each non-empty bucket index maps to
// exactly one round in that window, so arrivals are emitted ordered by
// (scheduled round, insertion order) — the order a resumed engine must
// reproduce.
func encodeRing(w *snapshot.Writer, r *arrivalRing, round int) {
	w.Int(r.count)
	for d := 1; d <= len(r.buckets); d++ {
		when := round + d
		bucket := r.buckets[when&(len(r.buckets)-1)]
		for i := range bucket {
			a := &bucket[i]
			w.Int(d)
			switch {
			case a.frame != nil:
				w.U8(arrFrame)
				// The originating ID rides along (see arrival): the
				// in-flight accounting of ID recycling needs it, and the
				// frame bytes may be corrupted beyond trust. Zero only in
				// networks restored from version-1 checkpoints, which
				// cannot run with recycling anyway.
				w.Uvarint(uint64(a.pkt.ID))
				w.WriteBytes(a.frame)
			case a.upset:
				w.U8(arrUpset)
				encodePacket(w, &a.pkt)
			default:
				w.U8(arrValue)
				encodePacket(w, &a.pkt)
			}
		}
	}
}

// Restore reads a checkpoint container written by Snapshot and rebuilds
// the network mid-run. cfg must be the configuration of the run that
// produced the snapshot — same topology, seed, fault model and protocol
// knobs (verified against the embedded digest) — though Shards and the
// function fields may differ; see EncodeState's file comment for what
// the caller must re-apply (processes, routers). The returned network
// continues from the snapshotted round exactly as the original would
// have.
func Restore(r io.Reader, cfg Config) (*Network, error) {
	dec, err := snapshot.NewDecoder(r)
	if err != nil {
		return nil, err
	}
	sec, err := dec.Section(snapshot.SecCore)
	if err != nil {
		return nil, err
	}
	return RestoreSection(sec, cfg)
}

// RestoreSection rebuilds a network from a decoded SecCore payload — the
// composable form of Restore used by package sim's multi-section
// checkpoint files. The reader must be positioned at the start of the
// payload and is fully consumed.
func RestoreSection(sec *snapshot.Reader, cfg Config) (*Network, error) {
	n, err := New(cfg)
	if err != nil {
		return nil, err
	}
	v := sec.Int()
	if sec.Err() == nil && (v < corePayloadVersionV1 || v > corePayloadVersion) {
		return nil, fmt.Errorf("core: checkpoint payload version %d, this build reads %d through %d",
			v, corePayloadVersionV1, corePayloadVersion)
	}
	if d := sec.U32(); sec.Err() == nil && d != ConfigDigest(&n.cfg) {
		return nil, fmt.Errorf("core: checkpoint was taken under a different configuration (digest %08x != %08x)", d, ConfigDigest(&n.cfg))
	}
	if v < corePayloadVersion && n.batch && sec.Err() == nil {
		return nil, fmt.Errorf("core: version-%d checkpoint predates the batch-draw kernel; resume with BatchDraws=false", v)
	}
	if v == corePayloadVersionV1 && sec.Err() == nil {
		return restoreV1(sec, n)
	}
	if recycle := sec.Bool(); sec.Err() == nil && recycle != n.recycle {
		return nil, fmt.Errorf("core: checkpoint written with Recycle=%v, config says %v", recycle, n.recycle)
	}
	// v2 predates the batch kernel: those runs drew per port, so they may
	// only resume under the default kernel.
	batch := false
	if v >= corePayloadVersionV3 {
		batch = sec.Bool()
	}
	if sec.Err() == nil && batch != n.batch {
		return nil, fmt.Errorf("core: checkpoint written with BatchDraws=%v, config says %v", batch, n.batch)
	}
	n.round = sec.Int()
	id := sec.Uvarint()
	n.started = sec.Bool()

	n.cnt.Energy.Transmissions = sec.Int()
	n.cnt.Energy.Bits = sec.Int()
	n.cnt.UpsetsInjected = sec.Int()
	n.cnt.UpsetsDetected = sec.Int()
	n.cnt.OverflowDrops = sec.Int()
	n.cnt.SlippedDeliveries = sec.Int()
	n.cnt.Deliveries = sec.Int()
	n.cnt.DeliveredPayloadBits = sec.Int()
	n.cnt.Duplicates = sec.Int()
	n.cnt.Retired = sec.Int()
	n.cnt.GhostFrames = sec.Int()

	// Message table. Each slot costs at least 5 bytes (generation + state
	// bits), which bounds a hostile count before anything is allocated.
	tb := &n.tbl
	nslots := sec.Count(5)
	for s := 1; s <= nslots; s++ {
		tb.appendSlot()
		tb.gens[s] = sec.U32()
		bits := sec.U8()
		if sec.Err() != nil {
			return nil, sec.Err()
		}
		if bits&^(slotOccupied|slotDead) != 0 {
			return nil, fmt.Errorf("core: slot %d has unknown state bits %#x", s, bits)
		}
		if !n.recycle && (bits&slotOccupied == 0 || tb.gens[s] != 0) {
			return nil, fmt.Errorf("core: slot %d retired or generation-tagged in a non-recycling checkpoint", s)
		}
		if bits&slotOccupied == 0 {
			if bits&slotDead != 0 {
				return nil, fmt.Errorf("core: slot %d dead but not occupied", s)
			}
			continue
		}
		tb.occ[s] = true
		tb.dead[s] = bits&slotDead != 0
		tb.live++
		aware := sec.Int()
		if sec.Err() == nil && (aware < 0 || aware > len(n.tiles)) {
			return nil, fmt.Errorf("core: slot %d aware count %d out of [0, %d]", s, aware, len(n.tiles))
		}
		tb.aware[s] = int32(aware)
		if err := decodeRowVersioned(sec, tb, &tb.present[s], len(n.tiles), v); err != nil {
			return nil, fmt.Errorf("core: slot %d present row: %w", s, err)
		}
		if err := decodeRowVersioned(sec, tb, &tb.seen[s], len(n.tiles), v); err != nil {
			return nil, fmt.Errorf("core: slot %d seen row: %w", s, err)
		}
	}
	tb.peakLive = tb.live
	if nfree := sec.Count(4); sec.Err() == nil {
		if nfree != nslots-tb.live {
			return nil, fmt.Errorf("core: free list holds %d slots, table has %d retired", nfree, nslots-tb.live)
		}
		listed := make([]bool, nslots+1)
		for i := 0; i < nfree; i++ {
			s := sec.U32()
			if sec.Err() != nil {
				break
			}
			if s == 0 || int(s) > nslots || tb.occ[s] || listed[s] {
				return nil, fmt.Errorf("core: free list entry %d invalid (slot %d)", i, s)
			}
			listed[s] = true
			tb.free = append(tb.free, s)
		}
	}
	// Retired ledger. v4 stores it in ring (retirement) order and the ring
	// is bounded; v2/v3 stored it sorted by ID — restored in read order,
	// which is deterministic, so the rebuilt ring (and every future
	// eviction) is too. Duplicate entries are impossible in either order:
	// the map insert below would shrink the ledger against its count,
	// caught by the length check.
	nret := sec.Count(2)
	if sec.Err() == nil && nret > tb.retCap {
		return nil, fmt.Errorf("core: retired ledger holds %d entries, cap is %d", nret, tb.retCap)
	}
	var prev packet.MsgID
	for i := 0; i < nret; i++ {
		rid := packet.MsgID(sec.Uvarint())
		aware := sec.Int()
		if sec.Err() != nil {
			break
		}
		if v < corePayloadVersion {
			if i > 0 && rid <= prev {
				return nil, fmt.Errorf("core: retired ledger not sorted at entry %d", i)
			}
			prev = rid
		}
		s := msgSlot(rid)
		if s == 0 || int(s) > nslots || msgGen(rid) >= tb.gens[s] {
			return nil, fmt.Errorf("core: retired ledger names impossible message %d", rid)
		}
		if aware < 1 || aware > len(n.tiles) {
			return nil, fmt.Errorf("core: retired message %d aware count %d out of [1, %d]", rid, aware, len(n.tiles))
		}
		if tb.retired == nil {
			tb.retired = make(map[packet.MsgID]int32, nret)
		}
		tb.retired[rid] = int32(aware)
		tb.retRing = append(tb.retRing, rid)
	}
	if sec.Err() == nil && len(tb.retired) != len(tb.retRing) {
		return nil, fmt.Errorf("core: retired ledger repeats an ID")
	}

	// nextID must name the table's coordinates: its slot in range, its
	// generation no later than the slot's current binding.
	if sec.Err() == nil {
		if nslots == 0 && id != 0 {
			return nil, fmt.Errorf("core: checkpoint nextID %d but empty message table", id)
		}
		if nslots > 0 {
			nid := packet.MsgID(id)
			if s := msgSlot(nid); s == 0 || int(s) > nslots || msgGen(nid) > tb.gens[s] {
				return nil, fmt.Errorf("core: checkpoint nextID %d implausible", id)
			}
		}
		n.nextID = packet.MsgID(id)
	}

	if err := restoreTiles(sec, n); err != nil {
		return nil, err
	}
	if err := sec.Finish(); err != nil {
		return nil, err
	}
	return n, n.finishRestore()
}

// restoreV1 decodes the pre-recycling payload (dense per-message records
// plus per-tile flag byte arrays) into the bitset tables. Recycling
// cannot resume from it: version 1 predates the generation tags and
// in-flight stamps retirement depends on.
func restoreV1(sec *snapshot.Reader, n *Network) (*Network, error) {
	if n.recycle {
		return nil, fmt.Errorf("core: version-1 checkpoint predates ID recycling; resume with Config.Recycle disabled")
	}
	n.round = sec.Int()
	id := sec.Uvarint()
	if id > math.MaxUint32 { // v1 IDs were dense counters; 2^32 is far past any real run
		return nil, fmt.Errorf("core: checkpoint nextID %d implausible", id)
	}
	n.nextID = packet.MsgID(id)
	n.started = sec.Bool()

	n.cnt.Energy.Transmissions = sec.Int()
	n.cnt.Energy.Bits = sec.Int()
	n.cnt.UpsetsInjected = sec.Int()
	n.cnt.UpsetsDetected = sec.Int()
	n.cnt.OverflowDrops = sec.Int()
	n.cnt.SlippedDeliveries = sec.Int()
	n.cnt.Deliveries = sec.Int()
	n.cnt.DeliveredPayloadBits = sec.Int()
	n.cnt.Duplicates = sec.Int()

	tb := &n.tbl
	nmsgs := sec.Count(2)
	if sec.Err() == nil && uint64(nmsgs) != uint64(n.nextID) {
		return nil, fmt.Errorf("core: checkpoint message table holds %d entries, allocator says %d", nmsgs, n.nextID)
	}
	for s := 1; s <= nmsgs; s++ {
		tb.appendSlot()
		aware := sec.Int()
		if sec.Err() == nil && (aware < 0 || aware > len(n.tiles)) {
			return nil, fmt.Errorf("core: message %d aware count %d out of [0, %d]", s, aware, len(n.tiles))
		}
		tb.occ[s] = true
		tb.live++
		tb.aware[s] = int32(aware)
		tb.dead[s] = sec.Bool()
	}
	tb.peakLive = tb.live

	if tiles := sec.Count(1); sec.Err() == nil && tiles != len(n.tiles) {
		return nil, fmt.Errorf("core: checkpoint holds %d tiles, topology has %d", tiles, len(n.tiles))
	}
	for _, t := range n.tiles {
		if err := restoreTileScalars(sec, t); err != nil {
			return nil, err
		}
		// The per-tile flag bytes of the old layout become row bits.
		flags := sec.ReadBytes()
		if uint64(len(flags)) > uint64(n.nextID)+1 {
			return nil, fmt.Errorf("core: tile %d flag table covers %d messages, only %d exist", t.id, len(flags), n.nextID)
		}
		for id := 1; id < len(flags); id++ {
			f := flags[id]
			if f&^(flagPresent|flagSeen) != 0 {
				return nil, fmt.Errorf("core: tile %d has unknown flag bits %#x for message %d", t.id, f, id)
			}
			// The ascending outer tile loop makes these sparse-tier inserts
			// (big meshes) amortized O(1) appends; small meshes are dense.
			if f&flagPresent != 0 {
				n.rowSet(&tb.present[id], uint32(id), t.id)
			}
			if f&flagSeen != 0 {
				n.rowSet(&tb.seen[id], uint32(id), t.id)
			}
		}
		if err := restoreTileTraffic(sec, n, t, true); err != nil {
			return nil, err
		}
	}
	if err := sec.Finish(); err != nil {
		return nil, err
	}
	return n, n.finishRestore()
}

// finishRestore recomputes the derived state a checkpoint does not carry
// — the occupancy bitmaps the phase loops iterate, and the promotion
// candidates (a sparse row at or past the threshold was flagged in the
// original run but not yet promoted: injections between the last Step
// and the snapshot can do that; re-deriving the flags from the row
// lengths makes the resumed run promote at its next barrier exactly as
// the original would) — then runs the awareness cross-check against the
// serialized counts.
func (n *Network) finishRestore() error {
	n.rebuildOccupancy()
	tb := &n.tbl
	if tb.sparse {
		for s := 1; s <= tb.slots(); s++ {
			if !tb.occ[s] {
				continue
			}
			if p := &tb.present[s]; p.bits == nil && len(p.list) >= tb.promoteAt {
				tb.markPromote(uint32(s), false)
			} else if q := &tb.seen[s]; q.bits == nil && len(q.list) >= tb.promoteAt {
				tb.markPromote(uint32(s), false)
			}
		}
	}
	return n.crossCheckAware()
}

// restoreTiles decodes the version-2 per-tile array.
func restoreTiles(sec *snapshot.Reader, n *Network) error {
	if tiles := sec.Count(1); sec.Err() == nil && tiles != len(n.tiles) {
		return fmt.Errorf("core: checkpoint holds %d tiles, topology has %d", tiles, len(n.tiles))
	}
	for _, t := range n.tiles {
		if err := restoreTileScalars(sec, t); err != nil {
			return err
		}
		if err := restoreTileTraffic(sec, n, t, false); err != nil {
			return err
		}
	}
	return nil
}

// restoreTileScalars decodes a tile's RNG state and forwarding cursor.
func restoreTileScalars(sec *snapshot.Reader, t *tile) error {
	var st [4]uint64
	for i := range st {
		st[i] = sec.U64()
	}
	if sec.Err() == nil {
		if err := t.rnd.SetState(st); err != nil {
			return fmt.Errorf("core: tile %d: %w", t.id, err)
		}
	}
	t.fwdCursor = sec.Int()
	t.fwdLimit = sec.Int()
	return nil
}

// restoreTileTraffic decodes a tile's send buffer, mailbox and arrival
// ring, recomputing the buffered-copy counts recycling retires on. v1
// selects the legacy ring layout, whose wire frames carry no originating
// ID.
func restoreTileTraffic(sec *snapshot.Reader, n *Network, t *tile, v1 bool) error {
	nbuf := sec.Count(1)
	t.sendBuf = make([]packet.Packet, 0, nbuf)
	for i := 0; i < nbuf; i++ {
		p, err := decodePacket(sec, n, false, v1)
		if err != nil {
			return fmt.Errorf("core: tile %d send buffer: %w", t.id, err)
		}
		t.sendBuf = append(t.sendBuf, p)
		if n.recycle {
			n.addCopies(msgSlot(p.ID), 1)
		}
	}
	nmail := sec.Count(1)
	t.mailbox = make([]*packet.Packet, 0, nmail)
	for i := 0; i < nmail; i++ {
		// Mailbox copies await phase-1 consumption and do not hold their
		// message live: the ID may already name a retired generation.
		p, err := decodePacket(sec, n, true, v1)
		if err != nil {
			return fmt.Errorf("core: tile %d mailbox: %w", t.id, err)
		}
		t.mailbox = append(t.mailbox, &p)
	}
	if err := decodeRing(sec, n, t, v1); err != nil {
		return fmt.Errorf("core: tile %d arrival ring: %w", t.id, err)
	}
	return nil
}

// Row tier discriminants in the version-4 payload.
const (
	rowDense  uint8 = 0
	rowSparse uint8 = 1
)

// encodeRow writes one tile-membership row: a tier byte, then the dense
// words or the sparse list (count + strictly-ascending tiles). The tier
// rides along so a resumed run continues with the exact row
// representations of the original — promotion state included.
func encodeRow(w *snapshot.Writer, r *msgRow) {
	if r.bits != nil {
		w.U8(rowDense)
		for _, word := range r.bits {
			w.U64(word)
		}
		return
	}
	w.U8(rowSparse)
	w.Int(len(r.list))
	for _, t := range r.list {
		w.U32(t)
	}
}

// decodeRowVersioned reads one row. Versions below 4 stored bare dense
// words; version 4 prefixes a tier byte. Either way the row ends up on
// the serialized tier: pre-v4 checkpoints restore all-dense even on
// sparse-enabled meshes (their engines were all-dense; the rows retire
// back to sparse normally).
func decodeRowVersioned(sec *snapshot.Reader, tb *msgTable, r *msgRow, tiles, v int) error {
	tier := rowDense
	if v >= corePayloadVersion {
		tier = sec.U8()
	}
	switch tier {
	case rowDense:
		tb.forceDense(r)
		return decodeRow(sec, r.bits, tiles)
	case rowSparse:
		if !tb.sparse {
			return fmt.Errorf("sparse row on a %d-tile mesh (dense-only)", tiles)
		}
		nt := sec.Count(4)
		prev := -1
		for i := 0; i < nt; i++ {
			t := sec.U32()
			if sec.Err() != nil {
				break
			}
			if int(t) >= tiles || int(t) <= prev {
				return fmt.Errorf("sparse row entry %d (tile %d) out of order or out of range", i, t)
			}
			prev = int(t)
			r.list = append(r.list, t)
		}
		return sec.Err()
	default:
		if sec.Err() != nil {
			return sec.Err()
		}
		return fmt.Errorf("unknown row tier %d", tier)
	}
}

// forceDense moves an (empty) sparse row to the dense tier before a
// dense decode; dense rows pass through.
func (tb *msgTable) forceDense(r *msgRow) {
	if r.bits == nil {
		r.bits = tb.denseRow()
		r.list = nil
	}
}

// decodeRow reads one tile bitmap (fixed word count) and rejects set bits
// beyond the last tile — phantom tiles would corrupt the popcount
// cross-check and every word-wise scan downstream.
func decodeRow(sec *snapshot.Reader, row []uint64, tiles int) error {
	for i := range row {
		row[i] = sec.U64()
	}
	if err := sec.Err(); err != nil {
		return err
	}
	if tail := tiles & 63; tail != 0 {
		if row[len(row)-1]&^(uint64(1)<<tail-1) != 0 {
			return fmt.Errorf("bits set beyond tile %d", tiles-1)
		}
	}
	return nil
}

// crossCheckAware verifies every occupied slot's serialized aware count
// against the popcount of its rows: an inconsistency means a
// corrupt-but-CRC-colliding payload or an encoder bug, and either must
// not reach a run. Word-wise, so the check is O(slots × tiles/64).
func (n *Network) crossCheckAware() error {
	tb := &n.tbl
	for s := 1; s <= tb.slots(); s++ {
		if !tb.occ[s] {
			continue
		}
		if scan := tb.awareScan(uint32(s)); scan != tb.aware[s] {
			return fmt.Errorf("core: slot %d aware count %d inconsistent with its rows (%d)", s, tb.aware[s], scan)
		}
	}
	return nil
}

// decodePacket reads one packet, validating every field against the
// restored network's bounds: IDs must name the current tenant of their
// slot (live copies pin their message), tile IDs must exist (Dst may also
// be Broadcast), and buffered TTLs must be alive — values a snapshot of a
// consistent engine can never contain otherwise. allowStale admits IDs of
// already-retired generations, which only mailbox copies may carry. v1
// payloads carried 16-bit tile IDs with the all-ones broadcast sentinel;
// version 2 stores the in-memory 32-bit IDs directly.
func decodePacket(sec *snapshot.Reader, n *Network, allowStale, v1 bool) (packet.Packet, error) {
	var p packet.Packet
	p.ID = packet.MsgID(sec.Uvarint())
	if v1 {
		readTile := func() packet.TileID {
			raw := sec.U16()
			if raw == 0xffff {
				return packet.Broadcast
			}
			return packet.TileID(raw)
		}
		p.Src = readTile()
		p.Dst = readTile()
	} else {
		p.Src = packet.TileID(sec.U32())
		p.Dst = packet.TileID(sec.U32())
	}
	p.Kind = packet.Kind(sec.U8())
	p.TTL = sec.U8()
	payload := sec.ReadBytes()
	if len(payload) > 0 {
		p.Payload = payload
	}
	if err := sec.Err(); err != nil {
		return p, err
	}
	if !n.validRestoredID(p.ID, allowStale) {
		return p, fmt.Errorf("packet names message %d, which the table does not hold", p.ID)
	}
	if int(p.Src) >= len(n.tiles) {
		return p, fmt.Errorf("packet source tile %d out of range", p.Src)
	}
	if p.Dst != packet.Broadcast && int(p.Dst) >= len(n.tiles) {
		return p, fmt.Errorf("packet destination tile %d out of range", p.Dst)
	}
	if p.TTL == 0 {
		return p, fmt.Errorf("packet with expired TTL")
	}
	if len(payload) > packet.MaxPayload {
		return p, fmt.Errorf("payload of %d bytes exceeds MaxPayload", len(payload))
	}
	return p, nil
}

// validRestoredID reports whether a deserialized MsgID is admissible:
// current always, a retired generation of an issued slot when allowStale.
func (n *Network) validRestoredID(id packet.MsgID, allowStale bool) bool {
	if n.current(id) {
		return true
	}
	if !allowStale {
		return false
	}
	s := msgSlot(id)
	return s != 0 && uint64(s) < uint64(len(n.tbl.gens)) && msgGen(id) < n.tbl.gens[s]
}

// maxRestoredSlip bounds how far ahead a restored arrival may be
// scheduled. Slips are ⌊|N(0, σ_synchr)|⌋ draws; at the σ values the
// experiments sweep (≤ 2·T_R) a slip anywhere near this bound is a
// >10000σ event, so any payload claiming one is corrupt — and the bound
// keeps a hostile delta from forcing the arrival ring to grow without
// limit during restore.
const maxRestoredSlip = 1 << 16

// decodeRing rebuilds t's in-flight arrivals by rescheduling them in the
// serialized (consumption) order, which reconstructs both the ring
// geometry and each bucket's insertion order. Every rescheduled arrival
// raises its message's in-flight count (the mirror of lane.send), which
// is what keeps retirement from freeing a slot whose frames are still in
// the air. v1 payloads predate the per-frame originating ID; frames read
// from them carry ID zero, admissible only because a v1 restore never
// recycles.
func decodeRing(sec *snapshot.Reader, n *Network, t *tile, v1 bool) error {
	count := sec.Count(3) // delta + kind + at least one payload byte
	for i := 0; i < count; i++ {
		d := sec.Int()
		if sec.Err() == nil && (d < 1 || d > maxRestoredSlip) {
			return fmt.Errorf("arrival slip %d out of range [1, %d]", d, maxRestoredSlip)
		}
		var a arrival
		switch kind := sec.U8(); kind {
		case arrFrame:
			if !v1 {
				a.pkt.ID = packet.MsgID(sec.Uvarint())
				if sec.Err() == nil && a.pkt.ID == 0 && n.recycle {
					return fmt.Errorf("in-flight frame without originating ID in a recycling checkpoint")
				}
				if sec.Err() == nil && a.pkt.ID != 0 && !n.current(a.pkt.ID) {
					return fmt.Errorf("in-flight frame originates from message %d, which the table does not hold", a.pkt.ID)
				}
			}
			a.frame = sec.ReadBytes()
			if sec.Err() == nil && len(a.frame) < packet.EncodedLen(0) {
				return fmt.Errorf("wire frame of %d bytes shorter than a header", len(a.frame))
			}
		case arrUpset, arrValue:
			p, err := decodePacket(sec, n, false, v1)
			if err != nil {
				return err
			}
			a.pkt = p
			a.upset = kind == arrUpset
		default:
			if sec.Err() != nil {
				return sec.Err()
			}
			return fmt.Errorf("unknown arrival kind %d", kind)
		}
		if err := sec.Err(); err != nil {
			return err
		}
		if n.recycle {
			n.addInflight(msgSlot(a.pkt.ID), 1)
		}
		t.ring.schedule(n.round, n.round+d, a, nil)
	}
	return nil
}
