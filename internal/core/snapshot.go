package core

import (
	"fmt"
	"io"
	"math"

	"repro/internal/crc"
	"repro/internal/packet"
	"repro/internal/snapshot"
)

// This file implements checkpoint/resume for the round engine: Snapshot
// serializes the complete simulation state at a round barrier, Restore
// rebuilds a Network that continues bit-identically — same events, same
// counters, same RNG draws, same final state — as if the run had never
// stopped. The headline guarantee, pinned by TestSnapshotResume* and the
// randomized differential suite (diff_test.go):
//
//	Restore(Snapshot(run to round k)) → run to round n
//
// equals an uninterrupted n-round run byte for byte, for any k, any
// shard count on either side, and any fault-knob combination.
//
// What the snapshot covers: the per-tile RNG streams, send buffers,
// message-flag tables, forward cursors and limits, mailboxes, in-flight
// arrivals (by-value copies and literal wire frames alike, with their
// scheduled rounds), the network-wide message table (aware counts and
// spread-stop tombstones), the dense ID allocator, the round counter and
// the run Counters. What it deliberately does not cover: the Config
// itself (function hooks cannot be serialized — Restore takes the
// original Config from the caller and verifies a digest of its
// deterministic fields), attached Process state (the IP cores are the
// application's to checkpoint; re-Attach them after Restore), and
// SetRouter functions (re-apply them; forward limits ARE captured).
//
// The fault injector is not serialized either, on purpose: permanent
// failures are sampled deterministically from Config.Seed at New, so the
// rebuilt Network re-derives the exact crash set — one more reason the
// digest pins the seed and fault model.

// corePayloadVersion versions the SecCore payload layout independently of
// the container version.
const corePayloadVersion = 1

// arrival discriminants in the in-flight encoding.
const (
	arrValue uint8 = iota // by-value copy, clean
	arrUpset              // by-value copy, scrambled in flight (analytic path)
	arrFrame              // literal path: encoded, possibly corrupted wire frame
)

// ConfigDigest returns a checksum over cfg's deterministic,
// behavior-defining fields and the full topology wiring. A snapshot
// embeds the digest of the run that produced it; Restore refuses a cfg
// whose digest differs, catching the classic checkpoint bug — resuming
// under a subtly different configuration — before it can corrupt a
// campaign. Shards is excluded (the sharded engine is bit-identical, so
// a checkpoint may be resumed at any shard count), as are the function
// fields (hooks, PortWeight), which the caller must re-supply unchanged.
func ConfigDigest(cfg *Config) uint32 {
	w := snapshot.NewWriter()
	w.Int(cfg.Topo.Tiles())
	for i := 0; i < cfg.Topo.Tiles(); i++ {
		nbrs := cfg.Topo.Neighbors(packet.TileID(i))
		w.Int(len(nbrs))
		for _, nb := range nbrs {
			w.U16(uint16(nb))
		}
	}
	w.F64(cfg.P)
	w.U8(cfg.TTL)
	w.Int(cfg.BufferCap)
	w.Int(cfg.MaxRounds)
	w.U64(cfg.Seed)
	w.Bool(cfg.DisableDedup)
	w.Bool(cfg.StopSpreadOnDelivery)
	f := &cfg.Fault
	w.F64(f.PTileCrash)
	w.Int(f.DeadTiles)
	w.F64(f.PLinkCrash)
	w.Int(f.DeadLinks)
	w.F64(f.PUpset)
	w.F64(f.POverflow)
	w.F64(f.SigmaSync)
	w.Bool(f.LiteralUpsets)
	w.Int(int(f.ErrorModel))
	w.Int(len(f.Protect))
	for _, t := range f.Protect {
		w.U16(uint16(t))
	}
	return crc.Checksum32(w.Bytes())
}

// Snapshot serializes the network's complete simulation state to w as a
// single-section checkpoint container. It must be called at a round
// barrier — between Steps, where no phase is executing and nothing is
// staged in a lane — which is the only place single-threaded callers can
// call it anyway. The snapshot is deterministic: two networks in
// identical states produce identical bytes, which the differential suite
// exploits as a whole-state equality oracle.
func (n *Network) Snapshot(w io.Writer) error {
	enc := snapshot.NewEncoder(w)
	n.EncodeState(enc.Section(snapshot.SecCore))
	return enc.Close()
}

// EncodeState writes the engine state as a SecCore payload. It is the
// composable form of Snapshot, for callers (package sim) that assemble
// containers with additional sections (metrics series, replica
// metadata).
func (n *Network) EncodeState(w *snapshot.Writer) {
	w.Int(corePayloadVersion)
	w.U32(ConfigDigest(&n.cfg))
	w.Int(n.round)
	w.Uvarint(uint64(n.nextID))
	w.Bool(n.started)

	// Counters.
	w.Int(n.cnt.Energy.Transmissions)
	w.Int(n.cnt.Energy.Bits)
	w.Int(n.cnt.UpsetsInjected)
	w.Int(n.cnt.UpsetsDetected)
	w.Int(n.cnt.OverflowDrops)
	w.Int(n.cnt.SlippedDeliveries)
	w.Int(n.cnt.Deliveries)
	w.Int(n.cnt.DeliveredPayloadBits)
	w.Int(n.cnt.Duplicates)

	// Per-message table ([0] is the unused sentinel slot).
	w.Int(len(n.msgs) - 1)
	for _, m := range n.msgs[1:] {
		w.Int(int(m.aware))
		w.Bool(m.dead)
	}

	// Per-tile state.
	w.Int(len(n.tiles))
	for _, t := range n.tiles {
		for _, s := range t.rnd.State() {
			w.U64(s)
		}
		w.Int(t.fwdCursor)
		w.Int(t.fwdLimit)
		w.WriteBytes(t.flags)
		w.Int(len(t.sendBuf))
		for i := range t.sendBuf {
			encodePacket(w, &t.sendBuf[i])
		}
		w.Int(len(t.mailbox))
		for _, p := range t.mailbox {
			encodePacket(w, p)
		}
		encodeRing(w, &t.ring, n.round)
	}
}

// encodePacket writes one packet.
func encodePacket(w *snapshot.Writer, p *packet.Packet) {
	w.Uvarint(uint64(p.ID))
	w.U16(uint16(p.Src))
	w.U16(uint16(p.Dst))
	w.U8(uint8(p.Kind))
	w.U8(p.TTL)
	w.WriteBytes(p.Payload)
}

// encodeRing writes a tile's in-flight arrivals in consumption order. At
// a round barrier every live arrival is scheduled for a round in
// (round, round+len(buckets)]; each non-empty bucket index maps to
// exactly one round in that window, so arrivals are emitted ordered by
// (scheduled round, insertion order) — the order a resumed engine must
// reproduce.
func encodeRing(w *snapshot.Writer, r *arrivalRing, round int) {
	w.Int(r.count)
	for d := 1; d <= len(r.buckets); d++ {
		when := round + d
		bucket := r.buckets[when&(len(r.buckets)-1)]
		for i := range bucket {
			a := &bucket[i]
			w.Int(d)
			switch {
			case a.frame != nil:
				w.U8(arrFrame)
				w.WriteBytes(a.frame)
			case a.upset:
				w.U8(arrUpset)
				encodePacket(w, &a.pkt)
			default:
				w.U8(arrValue)
				encodePacket(w, &a.pkt)
			}
		}
	}
}

// Restore reads a checkpoint container written by Snapshot and rebuilds
// the network mid-run. cfg must be the configuration of the run that
// produced the snapshot — same topology, seed, fault model and protocol
// knobs (verified against the embedded digest) — though Shards and the
// function fields may differ; see EncodeState's file comment for what
// the caller must re-apply (processes, routers). The returned network
// continues from the snapshotted round exactly as the original would
// have.
func Restore(r io.Reader, cfg Config) (*Network, error) {
	dec, err := snapshot.NewDecoder(r)
	if err != nil {
		return nil, err
	}
	sec, err := dec.Section(snapshot.SecCore)
	if err != nil {
		return nil, err
	}
	return RestoreSection(sec, cfg)
}

// RestoreSection rebuilds a network from a decoded SecCore payload — the
// composable form of Restore used by package sim's multi-section
// checkpoint files. The reader must be positioned at the start of the
// payload and is fully consumed.
func RestoreSection(sec *snapshot.Reader, cfg Config) (*Network, error) {
	n, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if v := sec.Int(); sec.Err() == nil && v != corePayloadVersion {
		return nil, fmt.Errorf("core: checkpoint payload version %d, this build reads %d", v, corePayloadVersion)
	}
	if d := sec.U32(); sec.Err() == nil && d != ConfigDigest(&n.cfg) {
		return nil, fmt.Errorf("core: checkpoint was taken under a different configuration (digest %08x != %08x)", d, ConfigDigest(&n.cfg))
	}
	n.round = sec.Int()
	id := sec.Uvarint()
	if id > math.MaxUint64/2 { // absurd allocator value ⇒ corrupt payload
		return nil, fmt.Errorf("core: checkpoint nextID %d implausible", id)
	}
	n.nextID = packet.MsgID(id)
	n.started = sec.Bool()

	n.cnt.Energy.Transmissions = sec.Int()
	n.cnt.Energy.Bits = sec.Int()
	n.cnt.UpsetsInjected = sec.Int()
	n.cnt.UpsetsDetected = sec.Int()
	n.cnt.OverflowDrops = sec.Int()
	n.cnt.SlippedDeliveries = sec.Int()
	n.cnt.Deliveries = sec.Int()
	n.cnt.DeliveredPayloadBits = sec.Int()
	n.cnt.Duplicates = sec.Int()

	nmsgs := sec.Count(2)
	if sec.Err() == nil && uint64(nmsgs) != uint64(n.nextID) {
		return nil, fmt.Errorf("core: checkpoint message table holds %d entries, allocator says %d", nmsgs, n.nextID)
	}
	n.msgs = make([]msgState, nmsgs+1)
	for i := 1; i <= nmsgs; i++ {
		aware := sec.Int()
		if aware > len(n.tiles) {
			return nil, fmt.Errorf("core: message %d aware count %d exceeds %d tiles", i, aware, len(n.tiles))
		}
		n.msgs[i] = msgState{aware: int32(aware), dead: sec.Bool()}
	}

	if tiles := sec.Count(1); sec.Err() == nil && tiles != len(n.tiles) {
		return nil, fmt.Errorf("core: checkpoint holds %d tiles, topology has %d", tiles, len(n.tiles))
	}
	for _, t := range n.tiles {
		var st [4]uint64
		for i := range st {
			st[i] = sec.U64()
		}
		if sec.Err() == nil {
			if err := t.rnd.SetState(st); err != nil {
				return nil, fmt.Errorf("core: tile %d: %w", t.id, err)
			}
		}
		t.fwdCursor = sec.Int()
		t.fwdLimit = sec.Int()
		t.flags = sec.ReadBytes()
		if uint64(len(t.flags)) > uint64(n.nextID)+1 {
			return nil, fmt.Errorf("core: tile %d flag table covers %d messages, only %d exist", t.id, len(t.flags), n.nextID)
		}
		nbuf := sec.Count(1)
		t.sendBuf = make([]packet.Packet, 0, nbuf)
		for i := 0; i < nbuf; i++ {
			p, err := decodePacket(sec, n)
			if err != nil {
				return nil, fmt.Errorf("core: tile %d send buffer: %w", t.id, err)
			}
			t.sendBuf = append(t.sendBuf, p)
		}
		nmail := sec.Count(1)
		t.mailbox = make([]*packet.Packet, 0, nmail)
		for i := 0; i < nmail; i++ {
			p, err := decodePacket(sec, n)
			if err != nil {
				return nil, fmt.Errorf("core: tile %d mailbox: %w", t.id, err)
			}
			t.mailbox = append(t.mailbox, &p)
		}
		if err := decodeRing(sec, n, t); err != nil {
			return nil, fmt.Errorf("core: tile %d arrival ring: %w", t.id, err)
		}
	}
	if err := sec.Finish(); err != nil {
		return nil, err
	}
	// Cross-check the restored aware counts against the flag tables they
	// summarize: an inconsistency means a corrupt-but-CRC-colliding
	// payload or an encoder bug, and either must not reach a run.
	for id := packet.MsgID(1); id <= n.nextID; id++ {
		aware := int32(0)
		for _, t := range n.tiles {
			if t.flagsOf(id) != 0 {
				aware++
			}
		}
		if aware != n.msgs[id].aware {
			return nil, fmt.Errorf("core: message %d aware count %d inconsistent with flag tables (%d)", id, n.msgs[id].aware, aware)
		}
	}
	return n, nil
}

// decodePacket reads one packet, validating every field against the
// restored network's bounds: IDs must have been issued, tile IDs must
// exist (Dst may also be Broadcast), and buffered TTLs must be alive —
// values a snapshot of a consistent engine can never contain otherwise.
func decodePacket(sec *snapshot.Reader, n *Network) (packet.Packet, error) {
	var p packet.Packet
	p.ID = packet.MsgID(sec.Uvarint())
	p.Src = packet.TileID(sec.U16())
	p.Dst = packet.TileID(sec.U16())
	p.Kind = packet.Kind(sec.U8())
	p.TTL = sec.U8()
	payload := sec.ReadBytes()
	if len(payload) > 0 {
		p.Payload = payload
	}
	if err := sec.Err(); err != nil {
		return p, err
	}
	if p.ID == 0 || p.ID > n.nextID {
		return p, fmt.Errorf("packet names message %d, only %d issued", p.ID, n.nextID)
	}
	if int(p.Src) >= len(n.tiles) {
		return p, fmt.Errorf("packet source tile %d out of range", p.Src)
	}
	if p.Dst != packet.Broadcast && int(p.Dst) >= len(n.tiles) {
		return p, fmt.Errorf("packet destination tile %d out of range", p.Dst)
	}
	if p.TTL == 0 {
		return p, fmt.Errorf("packet with expired TTL")
	}
	if len(payload) > packet.MaxPayload {
		return p, fmt.Errorf("payload of %d bytes exceeds MaxPayload", len(payload))
	}
	return p, nil
}

// maxRestoredSlip bounds how far ahead a restored arrival may be
// scheduled. Slips are ⌊|N(0, σ_synchr)|⌋ draws; at the σ values the
// experiments sweep (≤ 2·T_R) a slip anywhere near this bound is a
// >10000σ event, so any payload claiming one is corrupt — and the bound
// keeps a hostile delta from forcing the arrival ring to grow without
// limit during restore.
const maxRestoredSlip = 1 << 16

// decodeRing rebuilds t's in-flight arrivals by rescheduling them in the
// serialized (consumption) order, which reconstructs both the ring
// geometry and each bucket's insertion order.
func decodeRing(sec *snapshot.Reader, n *Network, t *tile) error {
	count := sec.Count(3) // delta + kind + at least one payload byte
	for i := 0; i < count; i++ {
		d := sec.Int()
		if sec.Err() == nil && (d < 1 || d > maxRestoredSlip) {
			return fmt.Errorf("arrival slip %d out of range [1, %d]", d, maxRestoredSlip)
		}
		var a arrival
		switch kind := sec.U8(); kind {
		case arrFrame:
			a.frame = sec.ReadBytes()
			if sec.Err() == nil && len(a.frame) < packet.EncodedLen(0) {
				return fmt.Errorf("wire frame of %d bytes shorter than a header", len(a.frame))
			}
		case arrUpset, arrValue:
			p, err := decodePacket(sec, n)
			if err != nil {
				return err
			}
			a.pkt = p
			a.upset = kind == arrUpset
		default:
			if sec.Err() != nil {
				return sec.Err()
			}
			return fmt.Errorf("unknown arrival kind %d", kind)
		}
		if err := sec.Err(); err != nil {
			return err
		}
		t.ring.schedule(n.round, n.round+d, a)
	}
	return nil
}
