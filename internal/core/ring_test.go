package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/topology"
)

// ---- arrivalRing unit tests ----

func mkArrival(id packet.MsgID) arrival {
	return arrival{pkt: packet.Packet{ID: id, TTL: 5}}
}

func TestRingScheduleTakeRelease(t *testing.T) {
	var r arrivalRing
	if got := r.take(0); got != nil {
		t.Fatalf("take on empty ring = %v", got)
	}
	r.schedule(10, 10, mkArrival(1), nil) // same-round arrival
	r.schedule(10, 12, mkArrival(2), nil) // slipped by 2
	r.schedule(10, 10, mkArrival(3), nil)
	if r.count != 3 {
		t.Fatalf("count = %d, want 3", r.count)
	}
	b := r.take(10)
	if len(b) != 2 || b[0].pkt.ID != 1 || b[1].pkt.ID != 3 {
		t.Fatalf("round 10 bucket = %+v, want IDs 1,3 in schedule order", b)
	}
	r.release(10)
	if r.count != 1 {
		t.Fatalf("count after release = %d, want 1", r.count)
	}
	if got := len(r.take(11)); got != 0 {
		t.Fatalf("round 11 bucket has %d arrivals, want 0", got)
	}
	r.release(11)
	b = r.take(12)
	if len(b) != 1 || b[0].pkt.ID != 2 {
		t.Fatalf("round 12 bucket = %+v, want the slipped ID 2", b)
	}
	r.release(12)
	if r.count != 0 {
		t.Fatalf("count after draining = %d, want 0", r.count)
	}
}

func TestRingGrowPreservesSchedule(t *testing.T) {
	var r arrivalRing
	// Fill several future rounds, then slip one arrival far beyond the
	// initial span so the ring must grow mid-flight.
	for slip := 0; slip < ringInitLen; slip++ {
		r.schedule(100, 100+slip, mkArrival(packet.MsgID(slip+1)), nil)
	}
	far := 100 + 3*ringInitLen
	r.schedule(100, far, mkArrival(999), nil)
	if len(r.buckets) <= ringInitLen {
		t.Fatalf("ring did not grow: len = %d", len(r.buckets))
	}
	// Every arrival must still come out at exactly its scheduled round.
	for slip := 0; slip < ringInitLen; slip++ {
		b := r.take(100 + slip)
		if len(b) != 1 || b[0].pkt.ID != packet.MsgID(slip+1) {
			t.Fatalf("round %d bucket = %+v after grow", 100+slip, b)
		}
		r.release(100 + slip)
	}
	for round := 100 + ringInitLen; round < far; round++ {
		if len(r.take(round)) != 0 {
			t.Fatalf("phantom arrival at round %d after grow", round)
		}
		r.release(round)
	}
	b := r.take(far)
	if len(b) != 1 || b[0].pkt.ID != 999 {
		t.Fatalf("far bucket = %+v, want ID 999", b)
	}
	r.release(far)
	if r.count != 0 {
		t.Fatalf("count = %d after draining grown ring", r.count)
	}
}

func TestRingRecyclesBuckets(t *testing.T) {
	var r arrivalRing
	// Warm one wrap of the ring so every bucket has capacity.
	for round := 0; round < 2*ringInitLen; round++ {
		for k := 0; k < ringInitCap; k++ {
			r.schedule(round, round, mkArrival(1), nil)
		}
		r.take(round)
		r.release(round)
	}
	round := 2 * ringInitLen
	allocs := testing.AllocsPerRun(100, func() {
		for k := 0; k < ringInitCap; k++ {
			r.schedule(round, round, mkArrival(1), nil)
		}
		r.take(round)
		r.release(round)
		round++
	})
	if allocs != 0 {
		t.Fatalf("warmed schedule/take/release allocates %v per round, want 0", allocs)
	}
}

// ---- engine integration under sync slip ----

// muteTile turns tile id into a sink: a router that never forwards.
func muteTile(n *Network, id packet.TileID) {
	n.SetRouter(id, func(*packet.Packet) []packet.TileID { return nil })
}

// TestSlippedCopiesArriveInLaterRounds drives a two-tile line with p = 1
// and heavy synchronization skew. Every transmitted copy must eventually
// be received (slip delays, never destroys), slipped receptions must be
// observed, and the run must be reproducible.
func TestSlippedCopiesArriveInLaterRounds(t *testing.T) {
	run := func() (Counters, int, int) {
		g := topology.NewGrid(2, 1)
		cfg := baseCfg(g, 1)
		cfg.TTL = 100
		cfg.MaxRounds = 1000
		cfg.Fault = fault.Model{SigmaSync: 3}
		deliverRound := -1
		cfg.OnDeliver = func(tl packet.TileID, p *packet.Packet, round int) {
			deliverRound = round
		}
		expiresAtSink := 0
		cfg.OnEvent = func(ev Event) {
			if ev.Kind == EvExpire && ev.Tile == 1 {
				expiresAtSink++
			}
		}
		n := mustNet(t, cfg)
		muteTile(n, 1) // tile 1 only receives, so all traffic is 0 -> 1
		n.Inject(0, 1, 0, []byte("x"))
		if left := n.Drain(cfg.MaxRounds); left >= cfg.MaxRounds {
			t.Fatal("network did not drain")
		}
		return n.Counters(), deliverRound, expiresAtSink
	}

	c, deliverRound, expires := run()
	if c.SlippedDeliveries == 0 {
		t.Fatal("σ_synchr = 3 produced no slipped receptions")
	}
	// Conservation: tile 1 never forwards and nothing is corrupted, so
	// every transmitted copy must come back out of the arrival ring and be
	// received. Each reception is either a duplicate (a copy already
	// buffered) or an enqueue — and every enqueue at the muted sink later
	// expires there, so receptions = Duplicates + expiries at tile 1.
	if got := c.Duplicates + expires; got != c.Energy.Transmissions {
		t.Fatalf("received %d of %d transmissions: slipped copies lost in the ring",
			got, c.Energy.Transmissions)
	}
	if c.Deliveries != 1 {
		t.Fatalf("Deliveries = %d, want 1", c.Deliveries)
	}
	if deliverRound < 1 {
		t.Fatalf("delivery round = %d", deliverRound)
	}

	// Determinism: the same seed reproduces the same slips and counters.
	c2, r2, e2 := run()
	if c2 != c || r2 != deliverRound || e2 != expires {
		t.Fatalf("rerun diverged:\n  first  %+v (round %d)\n  second %+v (round %d)",
			c, deliverRound, c2, r2)
	}
}

// TestSlipDelaysUnicastBeyondDistance checks the slip actually shifts the
// arrival round: with p = 1 on a 2-tile line the skew-free delivery round
// is exactly 1, so under heavy skew a later first delivery is proof the
// copy rode the ring across rounds.
func TestSlipDelaysUnicastBeyondDistance(t *testing.T) {
	// Find a seed whose first copy slips: deterministic, so the seed is
	// fixed once found and the test stays stable.
	for seed := uint64(1); seed < 50; seed++ {
		g := topology.NewGrid(2, 1)
		cfg := baseCfg(g, 1)
		cfg.Seed = seed
		cfg.TTL = 50
		cfg.MaxRounds = 500
		cfg.Fault = fault.Model{SigmaSync: 4}
		deliverRound := -1
		cfg.OnDeliver = func(tl packet.TileID, p *packet.Packet, round int) {
			deliverRound = round
		}
		n := mustNet(t, cfg)
		muteTile(n, 1)
		n.Inject(0, 1, 0, nil)
		n.Drain(cfg.MaxRounds)
		if deliverRound > 1 {
			return // a slipped first copy arrived in a strictly later round
		}
	}
	t.Fatal("no seed in 50 produced a slipped first delivery at σ = 4")
}

// ---- allocation regression (the tentpole's acceptance criterion) ----

// TestStepAllocsSteadyState pins the zero-allocation property: once an
// 8×8 broadcast reaches steady state (every tile aware and holding a live
// copy — the state Monte Carlo replicas spend their time in), Step must
// run allocation-free. The threshold 2 leaves headroom for incidental
// runtime noise; the measured value is 0.
func TestStepAllocsSteadyState(t *testing.T) {
	g := topology.NewGrid(8, 8)
	n := mustNet(t, Config{Topo: g, P: 0.5, TTL: 255, MaxRounds: 100000, Seed: 1})
	id, _ := n.Inject(0, packet.Broadcast, 0, make([]byte, 16))
	for i := 0; i < 60; i++ {
		n.Step()
	}
	if got := n.Aware(id); got != g.Tiles() {
		t.Fatalf("steady state not reached: %d/%d tiles aware", got, g.Tiles())
	}
	if allocs := testing.AllocsPerRun(100, n.Step); allocs > 2 {
		t.Fatalf("steady-state Step allocates %v per round, want <= 2", allocs)
	}
}

// Same regression for the literal-upset path: frames are pooled and
// payloads cloned only on first store, so the hardware-faithful mode is
// allocation-free in steady state too.
func TestStepAllocsSteadyStateLiteral(t *testing.T) {
	g := topology.NewGrid(8, 8)
	n := mustNet(t, Config{
		Topo: g, P: 0.5, TTL: 255, MaxRounds: 100000, Seed: 1,
		Fault: fault.Model{PUpset: 0.1, LiteralUpsets: true},
	})
	n.Inject(0, packet.Broadcast, 0, make([]byte, 16))
	for i := 0; i < 60; i++ {
		n.Step()
	}
	if allocs := testing.AllocsPerRun(100, n.Step); allocs > 2 {
		t.Fatalf("literal-path Step allocates %v per round, want <= 2", allocs)
	}
}

// ---- crashed-source injection contract (documented on Inject) ----

func TestInjectCrashedSourceContract(t *testing.T) {
	g := topology.NewGrid(2, 1)
	cfg := baseCfg(g, 1)
	// Exactly one dead tile, and it cannot be tile 1 — so tile 0 is dead.
	cfg.Fault = fault.Model{DeadTiles: 1, Protect: []packet.TileID{1}}
	n := mustNet(t, cfg)
	if n.Injector().TileAlive(0) {
		t.Fatal("fault setup broken: tile 0 should be dead")
	}

	id, _ := n.Inject(0, 1, 0, []byte("lost"))
	if id == 0 {
		t.Fatal("Inject returned the zero MsgID")
	}
	// The no-op still burns the ID: the next injection gets a fresh one.
	id2, _ := n.Inject(1, 0, 0, nil)
	if id2 != id+1 {
		t.Fatalf("dead-source injection did not consume its MsgID: got %d then %d", id, id2)
	}
	// The dropped message never existed as far as the network can tell.
	if got := n.Aware(id); got != 0 {
		t.Fatalf("Aware(%d) = %d for a dead-source injection, want 0", id, got)
	}
	if n.AwareAt(id, 0) || n.AwareAt(id, 1) {
		t.Fatal("a tile claims awareness of a message a dead tile injected")
	}
	for i := 0; i < 10; i++ {
		n.Step()
	}
	if got := n.Aware(id); got != 0 {
		t.Fatalf("dead-source message spread: Aware = %d", got)
	}
}

// ---- decoded-ID hardening on the literal path ----

// TestGhostIDRejectedAsUpset feeds a tile a well-formed frame whose
// message ID was never issued by this network (the observable signature
// of a CRC escape). The engine must discard it as a detected upset
// instead of growing its flat tables around the ghost.
func TestGhostIDRejectedAsUpset(t *testing.T) {
	g := topology.NewGrid(2, 1)
	cfg := baseCfg(g, 0) // no organic traffic
	cfg.Fault = fault.Model{LiteralUpsets: true}
	var events []Event
	cfg.OnEvent = func(ev Event) { events = append(events, ev) }
	n := mustNet(t, cfg)

	ghost := &packet.Packet{ID: 99, Src: 0, Dst: 1, TTL: 30}
	frame, err := packet.Encode(ghost)
	if err != nil {
		t.Fatal(err)
	}
	n.tiles[1].ring.schedule(0, 1, arrival{frame: frame}, nil)
	n.rebuildOccupancy() // white-box ring injection bypasses the occupancy upkeep
	n.Step()

	c := n.Counters()
	if c.UpsetsDetected != 1 {
		t.Fatalf("UpsetsDetected = %d, want 1 (ghost ID)", c.UpsetsDetected)
	}
	if c.Deliveries != 0 || len(n.tiles[1].sendBuf) != 0 {
		t.Fatal("ghost-ID frame was accepted")
	}
	if n.issuedSlots() != 0 {
		t.Fatalf("message table grew to %d slots on a ghost ID", n.issuedSlots())
	}
	found := false
	for _, ev := range events {
		if ev.Kind == EvUpset && ev.Tile == 1 && ev.Msg == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no EvUpset(Msg=0) emitted for the ghost frame; events: %+v", events)
	}
}

// ---- incremental aware-count consistency ----

// TestAwareMatchesScan cross-checks the O(1) incremental Aware count
// against a brute-force AwareAt scan, every round of a mixed
// broadcast/unicast run with TTL expiry, dedup and spread-stop all in
// play.
func TestAwareMatchesScan(t *testing.T) {
	g := topology.NewGrid(4, 4)
	cfg := baseCfg(g, 0.4)
	cfg.TTL = 6 // short TTL so copies expire mid-test and counts go down
	cfg.StopSpreadOnDelivery = true
	cfg.MaxRounds = 300
	n := mustNet(t, cfg)

	var ids []packet.MsgID
	check := func(round int) {
		for _, id := range ids {
			scan := 0
			for tl := 0; tl < g.Tiles(); tl++ {
				if n.AwareAt(id, packet.TileID(tl)) {
					scan++
				}
			}
			if got := n.Aware(id); got != scan {
				t.Fatalf("round %d msg %d: incremental Aware = %d, scan = %d",
					round, id, got, scan)
			}
		}
	}

	for round := 0; round < 40; round++ {
		switch round {
		case 0:
			ids = append(ids, mustInject(t, n, 0, packet.Broadcast, 0, nil))
		case 3:
			ids = append(ids, mustInject(t, n, 5, g.ID(3, 3), 0, []byte("u")))
		case 7:
			ids = append(ids, mustInject(t, n, 15, g.ID(0, 0), 0, nil))
			ids = append(ids, mustInject(t, n, 2, packet.Broadcast, 0, nil))
		}
		n.Step()
		check(round)
	}
	// After the drain every count must still agree, and the gossip must
	// have spread beyond the injection points (the counts are not stuck).
	n.Drain(cfg.MaxRounds)
	check(-1)
	if got := n.Aware(ids[0]); got < 2 {
		t.Fatalf("broadcast reached only %d tiles", got)
	}
}
