package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/gossip"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/snapshot"
	"repro/internal/topology"
)

// Statistical validation of the batch forwarding kernel (batch.go). The
// kernel changes which random numbers back the forwarding decisions, so
// bit-identity against the default path is not the contract — matching
// the protocol's *distribution* is. On a fully connected fabric the
// spread of a broadcast has a closed-form mean-field curve
// (gossip.TheoreticalFloodSpread); both kernels must track it, and each
// other, within Monte Carlo noise.

// awareCurve runs one replica and returns the aware-tile count after
// each of the first `rounds` rounds.
func awareCurve(t *testing.T, n, rounds int, p float64, seed uint64, batch bool) []int {
	t.Helper()
	cfg := Config{
		Topo: topology.NewFullyConnected(n), P: p,
		TTL: uint8(rounds + 2), MaxRounds: rounds + 1,
		Seed: seed, BatchDraws: batch,
	}
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id := mustInject(t, net, 0, packet.Broadcast, 0, nil)
	curve := make([]int, rounds)
	for r := 0; r < rounds; r++ {
		net.Step()
		curve[r] = net.Aware(id)
	}
	return curve
}

// meanCurves averages `reps` replica curves per kernel, with replica
// seeds split from one master so the test is fully deterministic.
func meanCurves(t *testing.T, n, rounds, reps int, p float64, master uint64) (def, batch []float64) {
	t.Helper()
	g := rng.New(master)
	def = make([]float64, rounds)
	batch = make([]float64, rounds)
	for i := 0; i < reps; i++ {
		seed := g.Split(uint64(i)).Uint64()
		for r, v := range awareCurve(t, n, rounds, p, seed, false) {
			def[r] += float64(v)
		}
		for r, v := range awareCurve(t, n, rounds, p, seed, true) {
			batch[r] += float64(v)
		}
	}
	for r := 0; r < rounds; r++ {
		def[r] /= float64(reps)
		batch[r] /= float64(reps)
	}
	return def, batch
}

// TestBatchKernelMatchesFloodRecursion is the gossip-recursion
// statistical cross-check: on fully connected fabrics the mean aware
// curve of R independent replicas must track I(t+1) = n − (n−I)(1−p)^I
// for BOTH kernels, and the two kernels' means must agree with each
// other even more tightly (same distribution, independent noise). The
// two sub-cases pin the two batch samplers:
//
//   - K5 at p = 0.3: degree 4, p ≥ 1/16 — the 16-bit mask-lane path
//     (with a threshold that does NOT fall on the 2^-16 grid, so the
//     quantization is live and must stay statistically invisible);
//   - K48 at p = 0.02: degree 47, p·trials small — the geometric
//     skip-sampling path.
func TestBatchKernelMatchesFloodRecursion(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		p      float64
		rounds int
		reps   int
	}{
		{"mask-K5-p0.3", 5, 0.3, 6, 1500},
		{"skip-K48-p0.02", 48, 0.02, 10, 300},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			reps := c.reps
			if testing.Short() {
				reps /= 5
			}
			def, batch := meanCurves(t, c.n, c.rounds, reps, c.p, 0xF100D)
			theory := gossip.TheoreticalFloodSpread(c.n, c.p, c.rounds)
			// Mean-field drops the fluctuation terms, and by Jensen
			// (I ↦ (1−p)^I is convex) it overestimates the spread at the
			// exponential-growth knee — the K48 curves sit ~11% of n
			// below the recursion there, for BOTH kernels. The theory
			// tolerance covers that structural bias; the kernel-vs-kernel
			// tolerance is the sharp check — a CLT bound (per-round std
			// is at most ~n/2, so 6·(n/2)/√(2·reps) never flags
			// same-distribution noise) that a percent-level p bias on
			// the steep rounds would trip.
			tolTheory := 0.15 * float64(c.n)
			tolKernel := 6 * (float64(c.n) / 2) / math.Sqrt(2*float64(reps))
			for r := 0; r < c.rounds; r++ {
				if d := math.Abs(batch[r] - theory[r+1]); d > tolTheory {
					t.Errorf("round %d: batch mean %v vs recursion %v (|Δ|=%.2f > %.2f)",
						r+1, batch[r], theory[r+1], d, tolTheory)
				}
				if d := math.Abs(def[r] - theory[r+1]); d > tolTheory {
					t.Errorf("round %d: default mean %v vs recursion %v (|Δ|=%.2f > %.2f)",
						r+1, def[r], theory[r+1], d, tolTheory)
				}
				if d := math.Abs(batch[r] - def[r]); d > tolKernel {
					t.Errorf("round %d: batch mean %v vs default mean %v (|Δ|=%.2f > %.2f)",
						r+1, batch[r], def[r], d, tolKernel)
				}
			}
		})
	}
}

// TestBatchKernelEdgeProbabilities pins the draw-free edges: p = 1 floods
// every port (identically to the default kernel, which also skips the
// draws there) and p = 0 never forwards.
func TestBatchKernelEdgeProbabilities(t *testing.T) {
	for _, p := range []float64{0, 1} {
		var curves [2][]int
		for k, batch := range []bool{false, true} {
			curves[k] = awareCurve(t, 12, 4, p, 7, batch)
		}
		// No interior draws exist at the edges, so the kernels must agree
		// exactly, not just in distribution.
		for r := range curves[0] {
			if curves[0][r] != curves[1][r] {
				t.Fatalf("p=%v round %d: default %d vs batch %d aware tiles",
					p, r+1, curves[0][r], curves[1][r])
			}
		}
		want := 1
		if p == 1 {
			want = 12
		}
		if got := curves[1][len(curves[1])-1]; got != want {
			t.Fatalf("p=%v: %d aware tiles after flood window, want %d", p, got, want)
		}
	}
}

// TestSnapshotPreservesBatchKernel pins the checkpoint contract of the
// kernel knob: a BatchDraws run snapshots and resumes bit-identically
// under the same knob, and a restore under the opposite knob — either
// direction — is refused before it can silently change the realization.
func TestSnapshotPreservesBatchKernel(t *testing.T) {
	cfg := Config{
		Topo: topology.NewGrid(6, 6), P: 0.35, TTL: 10,
		MaxRounds: 100, Seed: 0xBA7C4, BatchDraws: true,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustInject(t, n, 3, packet.Broadcast, 0, []byte("batch"))
	for i := 0; i < 5; i++ {
		n.Step()
	}
	ckpt := snapshotBytes(t, n)

	// Same-knob restore: continues exactly as the original.
	r1, err := Restore(bytes.NewReader(ckpt), cfg)
	if err != nil {
		t.Fatalf("same-kernel restore: %v", err)
	}
	for i := 0; i < 8; i++ {
		n.Step()
		r1.Step()
	}
	if !bytes.Equal(snapshotBytes(t, n), snapshotBytes(t, r1)) {
		t.Fatal("batch-kernel resume diverged from the uninterrupted run")
	}

	// Kernel-mismatch restores are refused, both directions.
	off := cfg
	off.BatchDraws = false
	if _, err := Restore(bytes.NewReader(ckpt), off); err == nil ||
		!strings.Contains(err.Error(), "BatchDraws") {
		t.Fatalf("restore under BatchDraws=false accepted a batch checkpoint (err=%v)", err)
	}
	nOff, err := New(off)
	if err != nil {
		t.Fatal(err)
	}
	mustInject(t, nOff, 3, packet.Broadcast, 0, []byte("batch"))
	nOff.Step()
	ckptOff := snapshotBytes(t, nOff)
	if _, err := Restore(bytes.NewReader(ckptOff), cfg); err == nil ||
		!strings.Contains(err.Error(), "BatchDraws") {
		t.Fatalf("restore under BatchDraws=true accepted a default checkpoint (err=%v)", err)
	}
}

// TestV1CheckpointRejectedUnderBatchKernel: pre-kernel checkpoints carry
// no kernel flag and were drawn per port; resuming them with BatchDraws
// set must fail loudly instead of quietly switching realization.
func TestV1CheckpointRejectedUnderBatchKernel(t *testing.T) {
	ckpt := readCompatFile(t, "v1_grid6x6.ckpt")
	cfg := compatCfg()
	cfg.BatchDraws = true
	_, err := RestoreSection(snapshot.NewReader(ckpt), cfg)
	if err == nil || !strings.Contains(err.Error(), "BatchDraws") {
		t.Fatalf("v1 checkpoint accepted under the batch kernel (err=%v)", err)
	}
}
