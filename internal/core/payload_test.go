package core

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/topology"
)

// TestInjectOversizedPayload pins the MaxPayload guard at the injection
// boundary: an unframeable payload is rejected with packet.ErrTooLarge
// before a message ID is consumed, and the exact-limit payload passes.
func TestInjectOversizedPayload(t *testing.T) {
	n := mustNet(t, baseCfg(topology.NewGrid(2, 2), 1))
	id, err := n.Inject(0, 1, 0, make([]byte, packet.MaxPayload+1))
	if !errors.Is(err, packet.ErrTooLarge) {
		t.Fatalf("oversized Inject: err = %v, want packet.ErrTooLarge", err)
	}
	if id != 0 {
		t.Fatalf("oversized Inject returned MsgID %d, want 0", id)
	}
	// The failed injection must not have burned an ID.
	id, err = n.Inject(0, 1, 0, make([]byte, packet.MaxPayload))
	if err != nil {
		t.Fatalf("exact-limit Inject: %v", err)
	}
	if id != 1 {
		t.Fatalf("first successful Inject got MsgID %d, want 1", id)
	}
}

// oversizeSender tries an unframeable Send at round 0 and records the
// outcome, then sends a normal message.
type oversizeSender struct {
	done     bool
	bigID    packet.MsgID
	bigErr   error
	smallID  packet.MsgID
	smallErr error
	broadErr error
}

func (s *oversizeSender) Init(*Ctx) {}
func (s *oversizeSender) Round(ctx *Ctx) {
	if s.done {
		return
	}
	s.done = true
	s.bigID, s.bigErr = ctx.Send(1, 0, make([]byte, packet.MaxPayload+1))
	_, s.broadErr = ctx.Broadcast(0, make([]byte, packet.MaxPayload+1))
	s.smallID, s.smallErr = ctx.Send(1, 0, []byte("fits"))
}

// TestSendOversizedPayload pins the same guard on the Process-facing API:
// Ctx.Send and Ctx.Broadcast reject unframeable payloads with
// packet.ErrTooLarge, consume no ID, and leave the fabric working.
func TestSendOversizedPayload(t *testing.T) {
	n := mustNet(t, baseCfg(topology.NewGrid(2, 2), 1))
	proc := &oversizeSender{}
	n.Attach(0, proc)
	n.Step()
	if !errors.Is(proc.bigErr, packet.ErrTooLarge) {
		t.Fatalf("oversized Send: err = %v, want packet.ErrTooLarge", proc.bigErr)
	}
	if proc.bigID != 0 {
		t.Fatalf("oversized Send returned MsgID %d, want 0", proc.bigID)
	}
	if !errors.Is(proc.broadErr, packet.ErrTooLarge) {
		t.Fatalf("oversized Broadcast: err = %v, want packet.ErrTooLarge", proc.broadErr)
	}
	if proc.smallErr != nil {
		t.Fatalf("small Send after rejection: %v", proc.smallErr)
	}
	if proc.smallID != 1 {
		t.Fatalf("small Send got MsgID %d, want 1 (rejected sends must not burn IDs)", proc.smallID)
	}
	n.Drain(20)
	// After the drain only the originator and the addressee stay aware
	// (transit copies expire, clearing their present flags).
	if n.Aware(proc.smallID) != 2 {
		t.Fatalf("small message known at %d tiles, want 2", n.Aware(proc.smallID))
	}
	if n.Counters().Deliveries != 1 {
		t.Fatalf("Deliveries = %d, want 1", n.Counters().Deliveries)
	}
}

// TestFramePoolBounded pins framePoolCap: put drops frames once the pool
// is full, and get pops (discarding too-small frames) without growing it.
func TestFramePoolBounded(t *testing.T) {
	var fp framePool
	for i := 0; i < framePoolCap+50; i++ {
		fp.put(make([]byte, 32))
	}
	if len(fp.frames) != framePoolCap {
		t.Fatalf("pool retained %d frames, want cap %d", len(fp.frames), framePoolCap)
	}
	if f := fp.get(16); len(f) != 16 {
		t.Fatalf("get(16) returned len %d", len(f))
	}
	if len(fp.frames) != framePoolCap-1 {
		t.Fatalf("get did not pop exactly one frame: %d left", len(fp.frames))
	}
	// Every remaining pooled frame is too small for this request: get
	// discards them all and allocates fresh.
	if f := fp.get(64); len(f) != 64 {
		t.Fatalf("get(64) returned len %d", len(f))
	}
	if len(fp.frames) != 0 {
		t.Fatalf("too-small frames not discarded: %d left", len(fp.frames))
	}
}

// TestNetworkFramePoolCapEndToEnd drives a literal-upset burst whose peak
// in-flight frame count far exceeds framePoolCap and checks the engine's
// pool did not retain the peak.
func TestNetworkFramePoolCapEndToEnd(t *testing.T) {
	cfg := Config{
		Topo: topology.NewGrid(6, 6), P: 1, TTL: 4, MaxRounds: 1000, Seed: 9,
		Fault: fault.Model{LiteralUpsets: true},
	}
	n := mustNet(t, cfg)
	for i := 0; i < 300; i++ {
		mustInject(t, n, packet.TileID(i%36), packet.Broadcast, 0, nil)
	}
	n.Drain(100)
	if got := len(n.seqLane.pool.frames); got > framePoolCap {
		t.Fatalf("sequential lane pool holds %d frames, cap is %d", got, framePoolCap)
	}
}
