package core

// Mega-mesh memory and scale tests: the tentpole promise of the bitset /
// recycling refactor is that a 512×512 fabric runs a sustained 10k+
// message workload with per-tile memory flat at steady state, and that a
// 1024×1024 mesh at least completes rounds. The allocation-growth tests
// pin the slot-table growth behaviour (O(log m) reallocations of the
// parallel arrays) and the zero-allocation steady state of churn.

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/topology"
)

// TestSlotTableGrowthReallocations issues m messages on a growing table
// and counts how often each parallel array actually reallocated (its
// capacity changed). append doubles capacities, so the count must stay
// O(log m) — the regression this pins is accidental per-issue
// reallocation (the old per-tile growFlags pattern re-grown per message).
func TestSlotTableGrowthReallocations(t *testing.T) {
	const m = 1 << 14
	cfg := Config{Topo: topology.NewGrid(4, 4), P: 0, TTL: 255, MaxRounds: 10, Seed: 1}
	n := mustNet(t, cfg)

	reallocs := 0
	lastCap := cap(n.tbl.gens)
	arenaMakes := 0
	lastArena := len(n.tbl.arena)
	for i := 0; i < m; i++ {
		if _, err := n.Inject(0, packet.Broadcast, 0, nil); err != nil {
			t.Fatal(err)
		}
		if c := cap(n.tbl.gens); c != lastCap {
			reallocs++
			lastCap = c
		}
		if a := len(n.tbl.arena); a > lastArena {
			arenaMakes++
		}
		lastArena = len(n.tbl.arena)
	}
	// 2^14 messages from a starting capacity of 8: ~11 doublings. Allow
	// headroom for append's size-class rounding, not for linear growth.
	if reallocs > 20 {
		t.Fatalf("parallel arrays reallocated %d times for %d messages, want O(log m)", reallocs, m)
	}
	// Each slot carves TWO arena rows (present + seen), so a block of
	// tableArenaRows rows serves tableArenaRows/2 slots.
	if want := 2 * m / tableArenaRows; arenaMakes > want+1 {
		t.Fatalf("row arena allocated %d blocks for %d messages, want <= %d", arenaMakes, m, want+1)
	}
}

// TestChurnSteadyStateAllocs pins the zero-allocation steady state of a
// recycling churn workload: once the slot table has covered the live
// population and the free list cycles, a round of inject+step+retire
// performs no per-message heap allocation.
func TestChurnSteadyStateAllocs(t *testing.T) {
	cfg := Config{
		Topo: topology.NewGrid(16, 16), P: 0.6, TTL: 4,
		MaxRounds: 100000, Seed: 3, Recycle: true,
	}
	n := mustNet(t, cfg)
	round := 0
	churnRound := func() {
		for i := 0; i < 4; i++ {
			// Unicast to a neighbor: a first-time delivery allocates its
			// mailbox entry by design, so broadcast traffic would put ~1
			// alloc per reached tile on every round. Unicast keeps the
			// delivery count fixed (4/round) and leaves the forwarding,
			// dedup and recycling machinery as the measured surface.
			src := packet.TileID((round*4 + i) % 256)
			if _, err := n.Inject(src, src^1, 0, nil); err != nil {
				t.Fatal(err)
			}
		}
		n.Step()
		round++
	}
	for round < 60 { // warm up: table, rings and buffers reach capacity
		churnRound()
	}
	slotsBefore := n.issuedSlots()
	avg := testing.AllocsPerRun(100, churnRound)
	if n.issuedSlots() != slotsBefore {
		t.Fatalf("slot table grew %d -> %d during steady-state churn", slotsBefore, n.issuedSlots())
	}
	// Observed floor is ~7: four mailbox entries (one per delivery) plus
	// retired-ledger map inserts as it accretes entries. The regression
	// this catches is per-copy or per-hop allocation, which shows up as
	// dozens per round.
	if avg > 12 {
		t.Fatalf("steady-state churn round allocates %.1f times, want <= 12", avg)
	}
}

// megaChurn drives a side×side recycling mesh with perRound fresh
// broadcasts per round for the given number of rounds, returning the
// network for inspection.
func megaChurn(tb testing.TB, side, perRound, rounds int, shards int) *Network {
	tb.Helper()
	g := topology.NewGrid(side, side)
	cfg := Config{
		Topo: g, P: 0.5, TTL: 16, MaxRounds: 1 << 30, Seed: 0xE5CA1A,
		Recycle: true, Shards: shards,
	}
	n, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	tiles := side * side
	for round := 0; round < rounds; round++ {
		for i := 0; i < perRound; i++ {
			src := packet.TileID((round*perRound*2654435761 + i*40503) % tiles)
			if _, err := n.Inject(src, packet.Broadcast, 0, nil); err != nil {
				tb.Fatal(err)
			}
		}
		n.Step()
	}
	return n
}

// TestMegaMesh512Churn is the tentpole acceptance test: a 512×512 fabric
// under sustained injection. The slot table must be bounded by the live
// population (flat once warm), not by the number of messages issued, and
// the bytes-per-tile figure must hold steady between the half-way point
// and the end of the run.
func TestMegaMesh512Churn(t *testing.T) {
	if testing.Short() {
		t.Skip("mega-mesh churn is seconds of work; skipped under -short")
	}
	const side, perRound = 512, 8
	n := megaChurn(t, side, perRound, 60, 8)
	mid := n.Mem()
	// Continue the same workload: the table must not grow further.
	tiles := side * side
	for round := 60; round < 120; round++ {
		for i := 0; i < perRound; i++ {
			src := packet.TileID((round*perRound*2654435761 + i*40503) % tiles)
			if _, err := n.Inject(src, packet.Broadcast, 0, nil); err != nil {
				t.Fatal(err)
			}
		}
		n.Step()
	}
	end := n.Mem()
	if end.Slots > mid.Slots {
		t.Fatalf("slot table grew %d -> %d between rounds 60 and 120 of steady churn", mid.Slots, end.Slots)
	}
	if retired := n.Counters().Retired; retired < 200 {
		t.Fatalf("only %d messages retired over 120 churn rounds", retired)
	}
	perTile := float64(end.TableBytes) / float64(tiles)
	// One slot's bitmap pair costs 2 rows × 4096 words × 8 B = 64 KiB,
	// i.e. 0.25 B/tile. The live population is ~perRound × (TTL+1) ≈ 136
	// slots (~34 B/tile); a dense table for the 960 messages issued would
	// cost 960 × 64 KiB ≈ 60 MB ≈ 235 B/tile. Allow modest headroom over
	// the live population, far under the dense cost.
	if perTile > 48 {
		t.Fatalf("message table costs %.1f B/tile at steady state, want < 48", perTile)
	}
}

// TestMegaMesh1024Smoke steps a million-tile fabric a few rounds — the
// existence proof that nothing in the engine is quadratic in tiles or
// sized by ever-issued messages.
func TestMegaMesh1024Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("million-tile smoke run; skipped under -short")
	}
	n := megaChurn(t, 1024, 4, 8, 8)
	if n.Round() != 8 {
		t.Fatalf("round = %d, want 8", n.Round())
	}
	m := n.Mem()
	if m.Slots != 32 {
		t.Fatalf("slot table holds %d slots for 32 issued messages", m.Slots)
	}
	// 32 slots × 2 rows × 16384 words × 8 B = 8 MiB — exactly 8 B/tile;
	// bound just above that so padding changes surface but the design
	// point passes.
	if perTile := float64(m.TableBytes) / float64(1024*1024); perTile > 8.5 {
		t.Fatalf("message table costs %.1f B/tile on the megamesh, want <= 8.5", perTile)
	}
}
