package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/topology"
)

// TestForOccupiedIteration pins the iterator contract the phase loops
// hand-inline: ascending order, bits below lo masked, bits at/after hi
// never visited, empty ranges visit nothing. The map under test spans
// several summary bits so the two-level walk is exercised too.
func TestForOccupiedIteration(t *testing.T) {
	var m occMap
	m.initOcc(200) // 4 words
	set := []int{0, 1, 63, 64, 100, 127, 128, 199}
	for _, ti := range set {
		m.setBarrier(ti)
	}
	collect := func(lo, hi int) []int {
		var got []int
		forOccupied(&m, lo, hi, false, func(ti int) { got = append(got, ti) })
		return got
	}
	cases := []struct {
		lo, hi int
		want   []int
	}{
		{0, 200, []int{0, 1, 63, 64, 100, 127, 128, 199}},
		{1, 128, []int{1, 63, 64, 100, 127}}, // lo mid-word, hi on a word edge
		{64, 100, []int{64}},                 // hi mid-word excludes 100
		{65, 100, nil},                       // nothing in (64, 100)
		{199, 200, []int{199}},               // final partial word
		{50, 50, nil},                        // empty range
	}
	for _, c := range cases {
		got := collect(c.lo, c.hi)
		if len(got) != len(c.want) {
			t.Fatalf("forOccupied[%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("forOccupied[%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
			}
		}
	}
	// A stale summary bit over a zero word (the unaligned-parallel clear
	// leaves these) must not surface phantom tiles, and empty() must see
	// through it.
	var stale occMap
	stale.initOcc(200)
	stale.sum[0] = 1 << 2 // word 2 flagged, but no tile bit set
	forOccupied(&stale, 0, 200, false, func(ti int) {
		t.Fatalf("stale summary bit visited tile %d", ti)
	})
	if !stale.empty() {
		t.Fatal("empty() = false on a map with only a stale summary bit")
	}
}

// TestOccupancySummaryExact checks that the summary level mirrors the
// word level exactly at round barriers: a summary bit is set iff its
// 64-tile word is non-zero.
func checkSummaryExact(t *testing.T, name string, m *occMap, round int) {
	t.Helper()
	for wi, w := range m.bits {
		got := m.sum[wi>>6]&(1<<(uint(wi)&63)) != 0
		if got != (w != 0) {
			t.Fatalf("round %d %s word %d = %#x but summary bit = %v", round, name, wi, w, got)
		}
	}
}

// TestOccupancyTracksTileState steps a small network and checks, at every
// round barrier, that the occupancy bitmaps exactly mirror the tiles'
// buffer and ring state — the invariant Quiescent and the phase sweeps
// rely on — and that the summary level mirrors the words.
func TestOccupancyTracksTileState(t *testing.T) {
	cfg := Config{
		Topo: topology.NewGrid(5, 5), P: 0.5, TTL: 6, MaxRounds: 100, Seed: 9,
		// Skewed arrivals keep rings non-empty across round boundaries.
		Fault: fault.Model{SigmaSync: 1.0},
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Quiescent() {
		t.Fatal("fresh network not quiescent")
	}
	mustInject(t, n, 12, packet.Broadcast, 0, []byte("occ"))
	checkExact := func(round int) {
		for i, tl := range n.tiles {
			wantBuf := len(tl.sendBuf) > 0
			gotBuf := n.bufOcc.bits[i>>6]&(1<<(uint(i)&63)) != 0
			if wantBuf != gotBuf {
				t.Fatalf("round %d tile %d: bufOcc = %v, buffer len %d", round, i, gotBuf, len(tl.sendBuf))
			}
			wantRcv := tl.ring.count > 0
			gotRcv := n.rcvOcc.bits[i>>6]&(1<<(uint(i)&63)) != 0
			if wantRcv != gotRcv {
				t.Fatalf("round %d tile %d: rcvOcc = %v, ring count %d", round, i, gotRcv, tl.ring.count)
			}
		}
		checkSummaryExact(t, "bufOcc", &n.bufOcc, round)
		checkSummaryExact(t, "rcvOcc", &n.rcvOcc, round)
	}
	quiet := false
	for r := 0; r < 40; r++ {
		n.Step()
		checkExact(r + 1)
		if n.Quiescent() {
			quiet = true
			break
		}
	}
	if !quiet {
		t.Fatal("TTL-6 broadcast never drained in 40 rounds")
	}
	// Quiescence via bitmaps must agree with the ground truth.
	for _, tl := range n.tiles {
		if len(tl.sendBuf) > 0 || tl.ring.count > 0 {
			t.Fatalf("Quiescent() true but tile %d holds state", tl.id)
		}
	}
	// rebuildOccupancy (the restore path) must reproduce the live bitmaps.
	bufBefore := append([]uint64(nil), n.bufOcc.bits...)
	rcvBefore := append([]uint64(nil), n.rcvOcc.bits...)
	n.rebuildOccupancy()
	for i := range bufBefore {
		if n.bufOcc.bits[i] != bufBefore[i] || n.rcvOcc.bits[i] != rcvBefore[i] {
			t.Fatalf("rebuildOccupancy diverged from incrementally-maintained bitmaps at word %d", i)
		}
	}
	checkSummaryExact(t, "bufOcc", &n.bufOcc, -1)
	checkSummaryExact(t, "rcvOcc", &n.rcvOcc, -1)
}

// TestOccupancySummaryLargeMesh runs a sub-TTL broadcast on a mesh large
// enough for multi-word summaries (128×128 = 256 tile words = 4 summary
// words) and checks barrier exactness of both levels every round — the
// regime the frontier sweep exists for.
func TestOccupancySummaryLargeMesh(t *testing.T) {
	cfg := Config{
		Topo: topology.NewGrid(128, 128), P: 1, TTL: 9, MaxRounds: 100, Seed: 77,
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mustInject(t, n, 128*64+64, packet.Broadcast, 0, []byte("f"))
	for r := 0; r < 16; r++ {
		n.Step()
		checkSummaryExact(t, "bufOcc", &n.bufOcc, r+1)
		checkSummaryExact(t, "rcvOcc", &n.rcvOcc, r+1)
	}
	if !n.Quiescent() {
		t.Fatal("TTL-9 flood not drained after 16 rounds")
	}
}
