package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/topology"
)

// TestForOccupiedIteration pins the iterator contract the phase loops
// hand-inline: ascending order, bits below lo masked, bits at/after hi
// never visited, empty ranges visit nothing.
func TestForOccupiedIteration(t *testing.T) {
	occ := make([]uint64, occWords(200)) // 4 words
	set := []int{0, 1, 63, 64, 100, 127, 128, 199}
	for _, ti := range set {
		occ[ti>>6] |= 1 << (uint(ti) & 63)
	}
	collect := func(lo, hi int) []int {
		var got []int
		forOccupied(occ, lo, hi, false, func(ti int) { got = append(got, ti) })
		return got
	}
	cases := []struct {
		lo, hi int
		want   []int
	}{
		{0, 200, []int{0, 1, 63, 64, 100, 127, 128, 199}},
		{1, 128, []int{1, 63, 64, 100, 127}}, // lo mid-word, hi on a word edge
		{64, 100, []int{64}},                 // hi mid-word excludes 100
		{65, 100, nil},                       // nothing in (64, 100)
		{199, 200, []int{199}},               // final partial word
		{50, 50, nil},                        // empty range
	}
	for _, c := range cases {
		got := collect(c.lo, c.hi)
		if len(got) != len(c.want) {
			t.Fatalf("forOccupied[%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("forOccupied[%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
			}
		}
	}
}

// TestOccupancyTracksTileState steps a small network and checks, at every
// round barrier, that the occupancy bitmaps exactly mirror the tiles'
// buffer and ring state — the invariant Quiescent and the phase sweeps
// rely on.
func TestOccupancyTracksTileState(t *testing.T) {
	cfg := Config{
		Topo: topology.NewGrid(5, 5), P: 0.5, TTL: 6, MaxRounds: 100, Seed: 9,
		// Skewed arrivals keep rings non-empty across round boundaries.
		Fault: fault.Model{SigmaSync: 1.0},
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Quiescent() {
		t.Fatal("fresh network not quiescent")
	}
	mustInject(t, n, 12, packet.Broadcast, 0, []byte("occ"))
	checkExact := func(round int) {
		for i, tl := range n.tiles {
			wantBuf := len(tl.sendBuf) > 0
			gotBuf := n.bufOcc[i>>6]&(1<<(uint(i)&63)) != 0
			if wantBuf != gotBuf {
				t.Fatalf("round %d tile %d: bufOcc = %v, buffer len %d", round, i, gotBuf, len(tl.sendBuf))
			}
			wantRcv := tl.ring.count > 0
			gotRcv := n.rcvOcc[i>>6]&(1<<(uint(i)&63)) != 0
			if wantRcv != gotRcv {
				t.Fatalf("round %d tile %d: rcvOcc = %v, ring count %d", round, i, gotRcv, tl.ring.count)
			}
		}
	}
	quiet := false
	for r := 0; r < 40; r++ {
		n.Step()
		checkExact(r + 1)
		if n.Quiescent() {
			quiet = true
			break
		}
	}
	if !quiet {
		t.Fatal("TTL-6 broadcast never drained in 40 rounds")
	}
	// Quiescence via bitmaps must agree with the ground truth.
	for _, tl := range n.tiles {
		if len(tl.sendBuf) > 0 || tl.ring.count > 0 {
			t.Fatalf("Quiescent() true but tile %d holds state", tl.id)
		}
	}
	// rebuildOccupancy (the restore path) must reproduce the live bitmaps.
	bufBefore := append([]uint64(nil), n.bufOcc...)
	rcvBefore := append([]uint64(nil), n.rcvOcc...)
	n.rebuildOccupancy()
	for i := range bufBefore {
		if n.bufOcc[i] != bufBefore[i] || n.rcvOcc[i] != rcvBefore[i] {
			t.Fatalf("rebuildOccupancy diverged from incrementally-maintained bitmaps at word %d", i)
		}
	}
}
