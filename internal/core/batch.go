package core

import (
	"math"

	"repro/internal/rng"
)

// This file holds the batched forwarding-draw kernel (Config.BatchDraws).
//
// Phase 3's default path pays one RNG draw per buffered message per port.
// On draw-dominated workloads — dense buffers, small forwarding p — the
// draws themselves are most of the round, and two classic samplers cut
// them down without changing what the protocol does:
//
//   - Mask lanes (forwardMask): one 64-bit draw per message, split into
//     four 16-bit uniform lanes, one lane compared per port. Replaces d
//     draws with one for degree ≤ 4 (every grid/torus tile). The lane
//     compare quantizes p to the nearest multiple of 2^-16 (≤ 2^-17
//     absolute error, exact whenever p·2^16 is integral — p = 0.5, 0.25,
//     ...); to keep the *relative* error below ~10^-4 the mask is only
//     used for p ≥ 1/16, smaller p being the skip sampler's territory.
//   - Geometric skip (forwardSkip): flatten the tile's (message, port)
//     trials into one sequence and jump straight to the next success
//     with rng.GeometricSkip — one draw per transmission instead of one
//     per trial, exactly Bernoulli(p)-distributed (inverse-CDF sampling;
//     see the rng doc for the proof sketch).
//
// Which sampler runs is a per-tile, per-round cost decision on exact
// integer state (buffered count, degree) plus config constants, so it is
// identical across the sequential engine, any shard count, and a
// snapshot-resumed run — the differential suite holds the kernel to
// that. Event ordering is unchanged: trials are visited in the same
// ascending (message, port) order the default loop uses, only the draws
// backing the decisions differ. The kernel never runs for tiles with a
// router or when PortWeight is set (those paths keep per-port draws),
// and p ≤ 0 / p ≥ 1 are decided without consuming randomness, exactly
// like rng.BoolT at the never/always thresholds.

// maskMaxDegree is the widest fan-out the 16-bit mask lanes cover.
const maskMaxDegree = 4

// maskMinP is the smallest p the mask path handles: below it the 2^-17
// absolute lane quantization would exceed ~10^-4 of p itself.
const maskMinP = 1.0 / 16

// maskLaneBits is the width of one port's uniform lane in the mask draw.
const maskLaneBits = 16

// skipDrawCost is the cost of one GeometricSkip draw (a Float64 and a
// math.Log) in units of one threshold-compare draw, for the kernel
// choice. Approximate by design — it only steers which sampler runs,
// never what is sampled.
const skipDrawCost = 8

// maskThreshold16 converts p to the 16-bit lane threshold: a lane
// forwards iff its 16 uniform bits are < the threshold. Round to
// nearest, so the quantization error is at most 2^-17 in either
// direction; 1<<16 means "always" (a 16-bit lane is always below it).
func maskThreshold16(p float64) uint32 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1 << maskLaneBits
	}
	return uint32(math.Floor(p*(1<<maskLaneBits) + 0.5))
}

// skipConstant returns 1/ln(1−p), the precomputed constant
// rng.GeometricSkip consumes, or 0 when p is outside (0, 1) and the
// skip sampler can never run.
func skipConstant(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return 1 / math.Log1p(-p)
}

// forwardBatch forwards one tile's round under the batch kernel: count
// messages starting at ring-buffer position cur (the same round-robin
// window the default path walks). Caller guarantees t.router == nil and
// cfg.PortWeight == nil.
func (n *Network) forwardBatch(ln *lane, t *tile, cur, count, buffered int) {
	d := len(t.nbrs)
	if d == 0 || n.pThresh == 0 {
		return
	}
	if n.pThresh >= rng.ThresholdAlways {
		// Flooding: every port, no draws — same as BoolT(ThresholdAlways).
		for i := 0; i < count; i++ {
			idx := cur + i
			if idx >= buffered {
				idx -= buffered
			}
			p := &t.sendBuf[idx]
			for pi, nb := range t.nbrs {
				n.transmit(ln, t, nb, p, t.nbrAlive[pi])
			}
		}
		return
	}
	// Expected draw cost: the skip sampler pays ~skipDrawCost per
	// transmission plus one priming draw; the alternative pays one cheap
	// draw per trial, or per message if the mask lanes apply.
	trials := count * d
	alt := trials
	maskOK := d <= maskMaxDegree && n.cfg.P >= maskMinP
	if maskOK {
		alt = count
	}
	if float64(skipDrawCost)*(1+float64(trials)*n.cfg.P) < float64(alt) {
		n.forwardSkip(ln, t, cur, count, buffered, d)
		return
	}
	if maskOK {
		n.forwardMask(ln, t, cur, count, buffered)
		return
	}
	// High-degree tile (or tiny p with dense fan-out): the exact
	// per-port draws, same as the default path.
	for i := 0; i < count; i++ {
		idx := cur + i
		if idx >= buffered {
			idx -= buffered
		}
		p := &t.sendBuf[idx]
		for pi, nb := range t.nbrs {
			if !t.rnd.BoolT(n.pThresh) {
				continue
			}
			n.transmit(ln, t, nb, p, t.nbrAlive[pi])
		}
	}
}

// forwardMask draws one 64-bit mask per message and decides each port
// from its own 16-bit lane.
func (n *Network) forwardMask(ln *lane, t *tile, cur, count, buffered int) {
	for i := 0; i < count; i++ {
		idx := cur + i
		if idx >= buffered {
			idx -= buffered
		}
		p := &t.sendBuf[idx]
		mask := t.rnd.Uint64()
		for pi, nb := range t.nbrs {
			lane16 := uint32(mask>>(uint(pi)*maskLaneBits)) & (1<<maskLaneBits - 1)
			if lane16 >= n.batchT16 {
				continue
			}
			n.transmit(ln, t, nb, p, t.nbrAlive[pi])
		}
	}
}

// forwardSkip flattens the tile's trials — trial j is port j%d of the
// window's message j/d — and geometric-skips from success to success.
func (n *Network) forwardSkip(ln *lane, t *tile, cur, count, buffered, d int) {
	trials := count * d
	j := t.rnd.GeometricSkip(n.invLn1mP)
	for j < trials {
		idx := cur + j/d
		if idx >= buffered {
			idx -= buffered
		}
		pi := j % d
		n.transmit(ln, t, t.nbrs[pi], &t.sendBuf[idx], t.nbrAlive[pi])
		j += 1 + t.rnd.GeometricSkip(n.invLn1mP)
	}
}
