package smc

import (
	"bytes"
	"fmt"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/rng"
)

// Score maps a running trajectory to its progress toward the rare
// event, evaluated at round barriers. Splitting requires the score to
// be monotone along a trajectory in expectation (awareness counts,
// cumulative deliveries, cumulative transmissions all qualify) — the
// level thresholds of SplitConfig.Levels are crossings of this
// function. msg is the injected message under study.
type Score func(n *core.Network, msg packet.MsgID) float64

// AwareScore scores a trajectory by the fraction of tiles aware of the
// message — the natural score for rare dissemination events ("the
// broadcast reaches 99% of a faulty fabric").
func AwareScore(n *core.Network, msg packet.MsgID) float64 {
	return float64(n.Aware(msg)) / float64(n.Topology().Tiles())
}

// SplitConfig parameterizes one fixed-effort importance-splitting
// estimation.
type SplitConfig struct {
	// Levels are the intermediate score thresholds, strictly
	// increasing; the last level is the rare event itself. Level design
	// guidance is in docs/SMC.md — aim for conditional crossing
	// probabilities of roughly 0.1…0.5 per stage.
	Levels []float64
	// Effort is the number of trajectories simulated per level. 0
	// defaults to 128.
	Effort int
	// Horizon is the round budget per trajectory; a trajectory that
	// neither crosses the next level nor can still progress (quiescent)
	// within it counts as a miss. 0 defaults to the model's MaxRounds.
	Horizon int
	// Seed is the master seed. The estimate is deterministic in Seed
	// and the configuration: stage seeds and fork seeds all derive from
	// it by index.
	Seed uint64
}

// SplitResult is the outcome of one Split estimation.
type SplitResult struct {
	// Probability is the fixed-effort estimate of P[score reaches the
	// last level within the horizon]: the product of the per-level
	// conditional crossing fractions. Zero if any stage recorded no
	// crossing (the estimator cannot continue past an empty level).
	Probability float64
	// Conditional holds the per-level crossing fractions
	// Hits[l] / Effort, one per configured level.
	Conditional []float64
	// Hits holds the raw per-level crossing counts.
	Hits []int
	// Trajectories is the total number of (partial) trajectories
	// simulated across all stages.
	Trajectories int
}

// String renders the estimate with its per-level breakdown.
func (r SplitResult) String() string {
	return fmt.Sprintf("P ≈ %.3g  (conditional %v over %d trajectories)",
		r.Probability, r.Conditional, r.Trajectories)
}

// branch is one stored level-crossing: enough state to fork
// continuations from it. Restore validates its ConfigDigest, which
// includes the seed of the root trajectory this branch descends from —
// hence rootSeed rides along with the serialized state.
type branch struct {
	state    []byte
	rootSeed uint64
	msg      packet.MsgID
}

// Split estimates the probability of a rare trajectory event by
// fixed-effort importance splitting (a RESTART-family estimator): stage
// 0 runs Effort fresh trajectories from round 0 and snapshots each at
// the round barrier where its score first reaches Levels[0]; every
// later stage l restores the previous stage's crossing snapshots
// round-robin (core.Restore), re-derives the per-tile RNG streams from
// a fresh fork seed (core.Network.Reseed — without this every fork
// would replay its parent's exact future), and runs each continuation
// until it crosses Levels[l] or exhausts the horizon. The estimate is
// the product of the per-stage conditional crossing fractions, which
// reaches probabilities far below what cfg.Effort direct Monte Carlo
// trajectories could resolve (a 1e-6 event needs ~1e7 plain replicas
// for a single expected hit; splitting reaches it with a few hundred).
//
// Stages run sequentially and trajectories within a stage in index
// order, so the result is deterministic in (model, cfg) alone.
func Split(model Model, score Score, cfg SplitConfig) (SplitResult, error) {
	if len(cfg.Levels) == 0 {
		return SplitResult{}, fmt.Errorf("smc: Split needs at least one level")
	}
	for i := 1; i < len(cfg.Levels); i++ {
		if cfg.Levels[i] <= cfg.Levels[i-1] {
			return SplitResult{}, fmt.Errorf("smc: Split levels must be strictly increasing, got %v", cfg.Levels)
		}
	}
	effort := cfg.Effort
	if effort <= 0 {
		effort = 128
	}
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = model.Config.MaxRounds
	}
	if horizon <= 0 {
		horizon = 10000
	}

	res := SplitResult{
		Probability: 1,
		Conditional: make([]float64, len(cfg.Levels)),
		Hits:        make([]int, len(cfg.Levels)),
	}
	root := rng.New(cfg.Seed)
	var parents []branch
	for l, level := range cfg.Levels {
		stage := root.Split(uint64(l) + 1)
		var crossed []branch
		for j := 0; j < effort; j++ {
			seed := stage.Split(uint64(j) + 1).Uint64()
			var (
				b   branch
				hit bool
				err error
			)
			if l == 0 {
				b, hit, err = model.rootTrajectory(seed, score, level, horizon)
			} else {
				b, hit, err = model.forkTrajectory(parents[j%len(parents)], seed, score, level, horizon)
			}
			if err != nil {
				return SplitResult{}, err
			}
			res.Trajectories++
			if hit {
				crossed = append(crossed, b)
			}
		}
		res.Hits[l] = len(crossed)
		res.Conditional[l] = float64(len(crossed)) / float64(effort)
		res.Probability *= res.Conditional[l]
		if len(crossed) == 0 {
			res.Probability = 0
			return res, nil
		}
		parents = crossed
	}
	return res, nil
}

// rootTrajectory starts a fresh stage-0 trajectory under seed and runs
// it toward level.
func (m Model) rootTrajectory(seed uint64, sc Score, level float64, horizon int) (branch, bool, error) {
	cfg := m.Config
	cfg.Seed = seed
	net, err := core.New(cfg)
	if err != nil {
		return branch{}, false, fmt.Errorf("smc: split: %w", err)
	}
	payload := m.PayloadBytes
	if payload <= 0 {
		payload = 16
	}
	msg, err := net.Inject(m.Source, m.Dest, 0, make([]byte, payload))
	if err != nil {
		return branch{}, false, fmt.Errorf("smc: split: %w", err)
	}
	return m.advance(net, branch{rootSeed: seed, msg: msg}, level, horizon, sc)
}

// forkTrajectory restores a parent crossing and continues it under a
// fresh fork seed toward level.
func (m Model) forkTrajectory(parent branch, forkSeed uint64, sc Score, level float64, horizon int) (branch, bool, error) {
	cfg := m.Config
	cfg.Seed = parent.rootSeed
	net, err := core.Restore(bytes.NewReader(parent.state), cfg)
	if err != nil {
		return branch{}, false, fmt.Errorf("smc: split: restore fork: %w", err)
	}
	net.Reseed(forkSeed)
	return m.advance(net, branch{rootSeed: parent.rootSeed, msg: parent.msg}, level, horizon, sc)
}

// advance steps net until its score reaches level (snapshotting the
// crossing state into b) or the horizon/quiescence ends the trajectory.
func (m Model) advance(net *core.Network, b branch, level float64, horizon int, sc Score) (branch, bool, error) {
	if sc == nil {
		sc = AwareScore
	}
	for {
		if sc(net, b.msg) >= level {
			var buf bytes.Buffer
			if err := net.Snapshot(&buf); err != nil {
				return branch{}, false, fmt.Errorf("smc: split: snapshot: %w", err)
			}
			b.state = buf.Bytes()
			return b, true, nil
		}
		if net.Round() >= horizon || net.Quiescent() {
			return branch{}, false, nil
		}
		net.Step()
	}
}
