package smc

import (
	"fmt"

	"repro/internal/sim"
)

// Replica evaluates the checked property on one independent replica:
// it simulates the system under seed and reports whether the property
// held on that trajectory. replica is the global replica index (useful
// for diagnostics); seed fully determines the trajectory. Model.Replica
// builds one from a core.Config and a Property.
type Replica func(replica int, seed uint64) (bool, error)

// CheckConfig parameterizes one sequential property check.
type CheckConfig struct {
	// Theta is the probability threshold under test: the check decides
	// P[φ] ≥ Theta against P[φ] < Theta.
	Theta float64
	// Delta is the indifference half-width: trajectory probabilities
	// inside (Theta−Delta, Theta+Delta) may settle either way. 0
	// defaults to 0.01. Theta±Delta must stay inside (0, 1).
	Delta float64
	// Alpha bounds the false-accept probability (accepting P ≥ θ when
	// the truth is ≤ θ−δ). 0 defaults to 0.01.
	Alpha float64
	// Beta bounds the false-reject probability. 0 defaults to 0.01.
	Beta float64
	// MaxReplicas caps the replicas the check may consume before giving
	// up Undecided (the SPRT terminates with probability 1, but a true p
	// deep inside the indifference region can take long). 0 defaults to
	// 100000.
	MaxReplicas int
	// Batch is the wave size: replicas are scheduled through the worker
	// pool Batch at a time and their outcomes consumed in replica-index
	// order, so at most Batch−1 replicas beyond the SPRT's stopping
	// point are simulated and discarded. 0 defaults to 64.
	Batch int
	// Workers bounds the worker pool (sim.Config.Workers semantics).
	Workers int
	// Seed is the master seed; replica r's seed is derived from it by
	// absolute index (sim.RunOffset), so the verdict is deterministic in
	// Seed and the test parameters alone — Batch and Workers can change
	// wall-clock time and wasted replicas, never the Report.
	Seed uint64
}

// Report is the outcome of one Check run.
type Report struct {
	// Property is the canonical text of the checked property.
	Property string
	// Verdict is the SPRT decision: Accepted (P[φ] ≥ θ), Rejected
	// (P[φ] < θ), or Undecided if MaxReplicas ran out first.
	Verdict Verdict
	// Replicas is the number of trajectory outcomes the SPRT consumed
	// before stopping (wave over-run beyond the stopping point is not
	// counted — it cannot influence the verdict).
	Replicas int
	// Successes is how many consumed trajectories satisfied the
	// property.
	Successes int
	// LLR is the final log-likelihood ratio.
	LLR float64
	// FixedN is the equal-error fixed-sample-size requirement (see
	// FixedN) — compare against Replicas for the sequential saving.
	FixedN int
	// Theta, Delta, Alpha, Beta echo the effective test parameters
	// (after defaulting).
	Theta, Delta, Alpha, Beta float64
}

// String renders the report as the one-line verdict summary the CLI
// prints.
func (r Report) String() string {
	return fmt.Sprintf("%s: %s  theta=%g delta=%g alpha=%g beta=%g  replicas=%d (fixed-N %d)  successes=%d  llr=%+.3f",
		r.Property, r.Verdict, r.Theta, r.Delta, r.Alpha, r.Beta, r.Replicas, r.FixedN, r.Successes, r.LLR)
}

// withDefaults resolves the zero-value defaults.
func (c CheckConfig) withDefaults() CheckConfig {
	if c.Delta == 0 {
		c.Delta = 0.01
	}
	if c.Alpha == 0 {
		c.Alpha = 0.01
	}
	if c.Beta == 0 {
		c.Beta = 0.01
	}
	if c.MaxReplicas <= 0 {
		c.MaxReplicas = 100000
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	return c
}

// Check sequentially tests P[φ] ≥ θ for the property φ evaluated by
// replica, scheduling trajectory replicas through the internal/sim
// worker pool in waves and feeding their outcomes — strictly in
// replica-index order — to a Wald SPRT until it settles or
// cfg.MaxReplicas is exhausted. The Report is deterministic in
// (cfg.Seed, cfg.Theta, cfg.Delta, cfg.Alpha, cfg.Beta) alone: replica
// seeds derive from the absolute replica index, and outcomes past the
// SPRT's stopping index are discarded, so neither the wave size nor the
// worker count can shift the verdict or the consumed-replica count.
func Check(prop Property, replica Replica, cfg CheckConfig) (Report, error) {
	cfg = cfg.withDefaults()
	test, err := NewSPRT(cfg.Theta, cfg.Delta, cfg.Alpha, cfg.Beta)
	if err != nil {
		return Report{}, err
	}
	for offset := 0; test.Verdict() == Undecided && offset < cfg.MaxReplicas; {
		wave := cfg.Batch
		if rest := cfg.MaxReplicas - offset; wave > rest {
			wave = rest
		}
		mc := sim.Config{Replicas: wave, Workers: cfg.Workers, Seed: cfg.Seed}
		outcomes, err := sim.RunOffset(mc, offset, replica)
		if err != nil {
			return Report{}, err
		}
		for _, ok := range outcomes {
			if test.Add(ok) != Undecided {
				break
			}
		}
		offset += wave
	}
	return Report{
		Property:  prop.String(),
		Verdict:   test.Verdict(),
		Replicas:  test.N(),
		Successes: test.Successes(),
		LLR:       test.LLR(),
		FixedN:    FixedN(cfg.Theta, cfg.Delta, cfg.Alpha, cfg.Beta),
		Theta:     cfg.Theta,
		Delta:     cfg.Delta,
		Alpha:     cfg.Alpha,
		Beta:      cfg.Beta,
	}, nil
}
