package smc

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/packet"
)

// Model describes the simulated system a property is checked against:
// one message injected into a configured fabric, its trajectory
// recorded round by round with a metrics.Recorder. Model.Replica turns
// it into the Replica function Check and the CLI drive.
type Model struct {
	// Config is the engine configuration shared by every replica. Its
	// Seed is ignored — each replica runs under its own derived seed —
	// and its hook fields must be nil (the model installs the metrics
	// recorder; replicas sharing user hooks would race).
	Config core.Config
	// Source is the tile the message is injected at.
	Source packet.TileID
	// Dest is the destination: packet.Broadcast for a broadcast (the
	// aware(f) predicates), or a concrete tile for unicast (the
	// delivered predicates).
	Dest packet.TileID
	// Tech supplies the J/bit constant for the energy predicate; the
	// zero value records zero joules.
	Tech energy.Technology
	// PayloadBytes sizes the injected payload; 0 defaults to 16 (the
	// canonical instrumented-broadcast payload).
	PayloadBytes int
}

// BroadcastModel is the common case: a broadcast injected at source
// into an otherwise default-hooked fabric.
func BroadcastModel(cfg core.Config, source packet.TileID, tech energy.Technology) Model {
	return Model{Config: cfg, Source: source, Dest: packet.Broadcast, Tech: tech}
}

// Replica builds the per-trajectory evaluator for prop: each call
// simulates one fresh network under the given seed up to the property's
// horizon (or to quiescence / Config.MaxRounds for unbounded
// properties) and evaluates prop on the recorded series. The returned
// function is safe for concurrent calls — every invocation builds its
// own network and recorder.
func (m Model) Replica(prop Property) Replica {
	horizon := prop.Horizon()
	return func(_ int, seed uint64) (bool, error) {
		ts, err := m.run(seed, horizon)
		if err != nil {
			return false, err
		}
		return prop.Eval(ts), nil
	}
}

// Run simulates a single trajectory under seed up to horizon rounds
// (NoHorizon: to quiescence or Config.MaxRounds) and returns its
// recorded series — the raw material Property.Eval consumes. Round 0 of
// every series is the pre-run state; the engine's rounds land at
// indices 1… .
func (m Model) Run(seed uint64, horizon int) (*metrics.TimeSeries, error) {
	return m.run(seed, horizon)
}

func (m Model) run(seed uint64, horizon int) (*metrics.TimeSeries, error) {
	cfg := m.Config
	cfg.Seed = seed
	bound := cfg.MaxRounds
	if bound <= 0 {
		bound = 10000 // the engine's own MaxRounds default
	}
	if horizon != NoHorizon && horizon < bound {
		bound = horizon
	}
	rec := metrics.NewRecorder(metrics.Config{Rounds: bound, Tech: m.Tech})
	rec.Install(&cfg)
	net, err := core.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("smc: model: %w", err)
	}
	payload := m.PayloadBytes
	if payload <= 0 {
		payload = 16
	}
	id, err := net.Inject(m.Source, m.Dest, 0, make([]byte, payload))
	if err != nil {
		return nil, fmt.Errorf("smc: model: %w", err)
	}
	rec.Watch(id)
	for net.Round() < bound && !net.Quiescent() {
		net.Step()
	}
	return rec.Series(), nil
}
