package smc

import (
	"fmt"
	"math"
	"strconv"
	"unicode"
)

// Parse builds a Property from its text form — the property-spec
// language of docs/SMC.md. The grammar (case-sensitive, whitespace
// between tokens free):
//
//	prop  := or
//	or    := and { "or" and }
//	and   := unary { "and" unary }
//	unary := "not" unary | "(" prop ")" | atom
//	atom  := "aware" "(" FLOAT ")" [ "within" INT ]
//	       | "delivered" [ "(" INT ")" ] [ "by" INT ]
//	       | "energy" "<=" FLOAT
//	       | "transmissions" "<=" INT
//
// FLOAT accepts anything strconv.ParseFloat does (including scientific
// notation); INT is a non-negative decimal. Parse and Property.String
// round-trip: Parse(p.String()) yields a property with the same
// canonical String.
func Parse(s string) (Property, error) {
	p := &parser{toks: lex(s)}
	prop, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if tok := p.peek(); tok != "" {
		return nil, fmt.Errorf("smc: unexpected %q after property", tok)
	}
	return prop, nil
}

// MustParse is Parse for compile-time-constant specs: it panics on
// error. Use it in tests and examples only.
func MustParse(s string) Property {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// lex splits the spec into tokens: parentheses, "<=", and maximal runs
// of non-space, non-paren characters.
func lex(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == '<' && i+1 < len(s) && s[i+1] == '=':
			toks = append(toks, "<=")
			i += 2
		default:
			j := i
			for j < len(s) && !unicode.IsSpace(rune(s[j])) &&
				s[j] != '(' && s[j] != ')' &&
				!(s[j] == '<' && j+1 < len(s) && s[j+1] == '=') {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks
}

// parser is a hand-rolled recursive-descent parser over the token list.
type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

// expect consumes the given token or fails.
func (p *parser) expect(tok string) error {
	if got := p.next(); got != tok {
		if got == "" {
			return fmt.Errorf("smc: expected %q, got end of property", tok)
		}
		return fmt.Errorf("smc: expected %q, got %q", tok, got)
	}
	return nil
}

func (p *parser) parseOr() (Property, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := []Property{first}
	for p.peek() == "or" {
		p.next()
		t, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	return Or(terms...), nil
}

func (p *parser) parseAnd() (Property, error) {
	first, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	terms := []Property{first}
	for p.peek() == "and" {
		p.next()
		t, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	return And(terms...), nil
}

func (p *parser) parseUnary() (Property, error) {
	switch p.peek() {
	case "not":
		p.next()
		t, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not(t), nil
	case "(":
		p.next()
		t, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return t, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (Property, error) {
	switch tok := p.next(); tok {
	case "aware":
		if err := p.expect("("); err != nil {
			return nil, err
		}
		frac, err := p.parseFloat()
		if err != nil {
			return nil, err
		}
		if frac < 0 || frac > 1 {
			return nil, fmt.Errorf("smc: aware fraction %v out of [0,1]", frac)
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		prop := AwareFraction(frac)
		if p.peek() == "within" {
			p.next()
			rounds, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			prop = prop.Within(rounds)
		}
		return prop, nil
	case "delivered":
		prop := Delivered()
		if p.peek() == "(" {
			p.next()
			count, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			if count < 1 {
				return nil, fmt.Errorf("smc: delivered count %d, need >= 1", count)
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			prop = Deliveries(int64(count))
		}
		if p.peek() == "by" {
			p.next()
			rounds, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			prop = prop.By(rounds)
		}
		return prop, nil
	case "energy":
		if err := p.expect("<="); err != nil {
			return nil, err
		}
		j, err := p.parseFloat()
		if err != nil {
			return nil, err
		}
		return EnergyBelow(j), nil
	case "transmissions":
		if err := p.expect("<="); err != nil {
			return nil, err
		}
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		return TransmissionsBelow(int64(n)), nil
	case "":
		return nil, fmt.Errorf("smc: expected a predicate, got end of property")
	default:
		return nil, fmt.Errorf("smc: unknown predicate %q", tok)
	}
}

func (p *parser) parseFloat() (float64, error) {
	tok := p.next()
	f, err := strconv.ParseFloat(tok, 64)
	if err != nil || !isFinite(f) {
		return 0, fmt.Errorf("smc: %q is not a finite number", tok)
	}
	return f, nil
}

func (p *parser) parseInt() (int, error) {
	tok := p.next()
	n, err := strconv.Atoi(tok)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("smc: %q is not a non-negative integer", tok)
	}
	return n, nil
}

// isFinite rejects NaN and ±Inf, which would make verdicts meaningless.
func isFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
