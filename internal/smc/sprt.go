package smc

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Verdict is the outcome of a sequential hypothesis test.
type Verdict int

// The three verdicts. Undecided means the test has not yet crossed
// either decision boundary (or hit its replica cap before doing so).
const (
	// Undecided: neither boundary crossed yet.
	Undecided Verdict = iota
	// Accepted: the evidence settled on H1 — P[φ] ≥ θ.
	Accepted
	// Rejected: the evidence settled on H0 — P[φ] < θ.
	Rejected
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Accepted:
		return "ACCEPT (P >= theta)"
	case Rejected:
		return "REJECT (P < theta)"
	case Undecided:
		return "UNDECIDED"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// SPRT is Wald's sequential probability ratio test for a Bernoulli
// success probability p, deciding between
//
//	H0: p ≤ θ − δ   (reject: the property's probability is below θ)
//	H1: p ≥ θ + δ   (accept: the probability is at least θ)
//
// with an indifference region of half-width δ around the threshold θ.
// After n outcomes with s successes the log-likelihood ratio is
//
//	Λ = s·ln(p1/p0) + (n−s)·ln((1−p1)/(1−p0)),  p0 = θ−δ, p1 = θ+δ,
//
// and the test stops at Λ ≥ ln((1−β)/α) (accept H1) or Λ ≤ ln(β/(1−α))
// (accept H0). Wald's bounds guarantee the realized error probabilities
// α′ (accepting with p ≤ p0) and β′ (rejecting with p ≥ p1) satisfy
// α′ ≤ α/(1−β), β′ ≤ β/(1−α) and α′+β′ ≤ α+β; inside the indifference
// region (θ−δ < p < θ+δ) either verdict is considered correct. The
// expected sample count is far below the equal-error fixed-N requirement
// (FixedN) whenever the true p is away from the boundaries.
type SPRT struct {
	p0, p1     float64 // H0/H1 design points
	upper      float64 // accept boundary ln((1−β)/α)
	lower      float64 // reject boundary ln(β/(1−α))
	winS, winF float64 // per-success / per-failure Λ increments
	llr        float64
	n          int
	successes  int
	verdict    Verdict
}

// NewSPRT builds the test for threshold θ, indifference half-width δ and
// error bounds α (false accept) and β (false reject). Requirements:
// 0 < α, β < 1, δ > 0, and the design points θ±δ must stay inside
// (0, 1) — an indifference region clipped at 0 or 1 has a degenerate
// likelihood ratio.
func NewSPRT(theta, delta, alpha, beta float64) (*SPRT, error) {
	p0, p1 := theta-delta, theta+delta
	switch {
	case !(alpha > 0 && alpha < 1) || !(beta > 0 && beta < 1):
		return nil, fmt.Errorf("smc: SPRT error bounds alpha=%v beta=%v out of (0,1)", alpha, beta)
	case !(delta > 0):
		return nil, fmt.Errorf("smc: SPRT indifference half-width delta=%v, need > 0", delta)
	case !(p0 > 0) || !(p1 < 1):
		return nil, fmt.Errorf("smc: SPRT design points theta±delta = %v, %v out of (0,1)", p0, p1)
	}
	return &SPRT{
		p0:    p0,
		p1:    p1,
		upper: math.Log((1 - beta) / alpha),
		lower: math.Log(beta / (1 - alpha)),
		winS:  math.Log(p1 / p0),
		winF:  math.Log((1 - p1) / (1 - p0)),
	}, nil
}

// Add feeds one Bernoulli outcome and returns the verdict so far. Once a
// verdict is reached further outcomes are ignored (the test has
// stopped); callers batching outcomes can keep feeding and read the
// settled verdict.
func (s *SPRT) Add(success bool) Verdict {
	if s.verdict != Undecided {
		return s.verdict
	}
	s.n++
	if success {
		s.successes++
		s.llr += s.winS
	} else {
		s.llr += s.winF
	}
	switch {
	case s.llr >= s.upper:
		s.verdict = Accepted
	case s.llr <= s.lower:
		s.verdict = Rejected
	}
	return s.verdict
}

// Verdict returns the verdict so far (Undecided until a boundary is
// crossed).
func (s *SPRT) Verdict() Verdict { return s.verdict }

// N returns the number of outcomes consumed by the test (outcomes fed
// after the verdict settled are not counted).
func (s *SPRT) N() int { return s.n }

// Successes returns how many consumed outcomes were successes.
func (s *SPRT) Successes() int { return s.successes }

// LLR returns the current log-likelihood ratio Λ.
func (s *SPRT) LLR() float64 { return s.llr }

// FixedN returns the replica count a fixed-sample-size test needs to
// separate H0: p = θ−δ from H1: p = θ+δ at the same error bounds — the
// baseline the SPRT's sequential stopping is measured against. It is the
// standard two-proportion normal-approximation size
//
//	n = ⌈( z_{1−α}·√(p0·q0) + z_{1−β}·√(p1·q1) )² / (p1−p0)² ⌉
//
// rounded up, never below 1. The SPRT's *expected* sample count beats
// this whenever the true p is away from the indifference region
// (Wald 1945, §4); the cross-validation table in EXPERIMENTS.md shows
// the measured ratio.
func FixedN(theta, delta, alpha, beta float64) int {
	p0, p1 := theta-delta, theta+delta
	za := stats.NormalQuantile(1 - alpha)
	zb := stats.NormalQuantile(1 - beta)
	num := za*math.Sqrt(p0*(1-p0)) + zb*math.Sqrt(p1*(1-p1))
	n := num * num / ((p1 - p0) * (p1 - p0))
	if !(n > 0) || math.IsInf(n, 0) {
		return 1
	}
	return int(math.Ceil(n))
}
