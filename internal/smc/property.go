// Package smc is the statistical model checker of the simulator: it
// answers probabilistic reliability queries — "does a broadcast reach
// ≥95% of tiles within 64 rounds with probability at least 0.99?" — by
// simulation, at fabric scales the probabilistic model checkers of the
// NoC-verification literature (Roberts et al. 2021, Waddoups et al.
// 2025; see PAPERS.md) cannot reach.
//
// The package has three layers:
//
//   - A property-specification layer: a Property is a predicate over one
//     replica's per-round metric series (internal/metrics), built from
//     the constructors below (AwareFraction(0.95).Within(64),
//     EnergyBelow(j), DeliveredBy(t), And/Or/Not) or parsed from the
//     documented text form ("aware(0.95) within 64"; see Parse and
//     docs/SMC.md). Evaluating a Property on a replica yields one
//     Bernoulli outcome.
//   - Wald's sequential probability ratio test (SPRT, sprt.go) decides
//     P[φ] ≥ θ against P[φ] < θ with configurable α/β error bounds,
//     consuming replicas only until the verdict is statistically
//     settled; Check (check.go) drives it through the internal/sim
//     worker pool, deterministically in the root seed.
//   - Fixed-effort importance splitting (split.go) estimates rare-event
//     probabilities (tails below ~1e-6 that fixed-N Monte Carlo cannot
//     see) by forking trajectories at level crossings via the engine's
//     checkpoint machinery (core.Snapshot / core.Restore / core.Reseed).
//
// Verdicts are cross-validated against the exact complete-fabric flood
// law (gossip.FloodSpreadDist) and exact one-round grid events; see
// docs/SMC.md for the property grammar, the statistical guarantees and
// the reproduction recipe.
package smc

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// NoHorizon is returned by Property.Horizon for properties that must
// observe the whole run (no "within"/"by" bound anywhere).
const NoHorizon = -1

// Property is one checkable claim about a replica: a predicate over the
// per-round metric series the replica recorded. Implementations are
// immutable values; String renders the canonical text form, which Parse
// round-trips (Parse(p.String()) is equivalent to p).
type Property interface {
	// Eval reports whether the property holds on one replica's series.
	Eval(ts *metrics.TimeSeries) bool
	// Horizon returns the last round index the property needs to
	// observe, or NoHorizon when it depends on the whole run. Drivers
	// may stop a replica once its horizon has been simulated.
	Horizon() int
	// String renders the property in the canonical spec-language form.
	String() string
}

// AwareProp asserts that the watched message's awareness reaches a
// fraction of the fabric, optionally within a round bound: the thesis'
// dissemination claims ("a broadcast reaches ≥95% of tiles within T
// rounds") as a checkable predicate over the aware_fraction series.
type AwareProp struct {
	// Frac is the awareness fraction that must be reached, in [0, 1].
	Frac float64
	// Rounds is the inclusive round bound, or NoHorizon for "ever".
	Rounds int
}

// AwareFraction returns the property "the watched message's awareness
// reaches at least frac at some recorded round". Chain Within to bound
// the rounds: AwareFraction(0.95).Within(64).
func AwareFraction(frac float64) AwareProp {
	return AwareProp{Frac: frac, Rounds: NoHorizon}
}

// Within bounds the awareness deadline: the fraction must be reached at
// some round ≤ rounds.
func (a AwareProp) Within(rounds int) AwareProp {
	a.Rounds = rounds
	return a
}

// Eval scans the aware_fraction series up to the bound. Awareness is
// monotone, but the scan tolerates non-monotone custom series too.
func (a AwareProp) Eval(ts *metrics.TimeSeries) bool {
	s := ts.Float(metrics.AwareFraction)
	last := lastRound(len(s)-1, a.Rounds)
	for t := 0; t <= last; t++ {
		if s[t] >= a.Frac {
			return true
		}
	}
	return false
}

// Horizon returns the Within bound, or NoHorizon when unbounded.
func (a AwareProp) Horizon() int { return a.Rounds }

// String renders "aware(F)" or "aware(F) within T".
func (a AwareProp) String() string {
	if a.Rounds == NoHorizon {
		return fmt.Sprintf("aware(%s)", formatFloat(a.Frac))
	}
	return fmt.Sprintf("aware(%s) within %d", formatFloat(a.Frac), a.Rounds)
}

// DeliveredProp asserts that a cumulative number of first-time
// deliveries has happened, optionally by a round bound — the unicast
// reliability claim ("the destination receives the message by round t").
type DeliveredProp struct {
	// Count is the number of deliveries required (≥ 1).
	Count int64
	// Rounds is the inclusive round bound, or NoHorizon for "ever".
	Rounds int
}

// Delivered returns the property "at least one delivery happens".
// Chain By to bound the round, or Deliveries for a higher count.
func Delivered() DeliveredProp {
	return DeliveredProp{Count: 1, Rounds: NoHorizon}
}

// Deliveries returns the property "at least count first-time deliveries
// happen" (count ≥ 1 is the caller's responsibility; Parse enforces it
// for the text form).
func Deliveries(count int64) DeliveredProp {
	return DeliveredProp{Count: count, Rounds: NoHorizon}
}

// DeliveredBy returns the property "at least one delivery happens by
// round `rounds`" — shorthand for Delivered().By(rounds).
func DeliveredBy(rounds int) DeliveredProp {
	return Delivered().By(rounds)
}

// By bounds the delivery deadline (inclusive round index).
func (d DeliveredProp) By(rounds int) DeliveredProp {
	d.Rounds = rounds
	return d
}

// Eval accumulates the deliveries series up to the bound.
func (d DeliveredProp) Eval(ts *metrics.TimeSeries) bool {
	s := ts.Int(metrics.Deliveries)
	last := lastRound(len(s)-1, d.Rounds)
	var sum int64
	for t := 0; t <= last; t++ {
		sum += s[t]
		if sum >= d.Count {
			return true
		}
	}
	return false
}

// Horizon returns the By bound, or NoHorizon when unbounded.
func (d DeliveredProp) Horizon() int { return d.Rounds }

// String renders "delivered", "delivered(K)", "delivered by T" or
// "delivered(K) by T".
func (d DeliveredProp) String() string {
	var b strings.Builder
	b.WriteString("delivered")
	if d.Count != 1 {
		fmt.Fprintf(&b, "(%d)", d.Count)
	}
	if d.Rounds != NoHorizon {
		fmt.Fprintf(&b, " by %d", d.Rounds)
	}
	return b.String()
}

// EnergyProp asserts that the replica's total communication energy stays
// at or below a budget in joules — the energy half of the latency/energy
// trade-off the thesis tunes with p and TTL.
type EnergyProp struct {
	// MaxJ is the inclusive energy budget, in joules.
	MaxJ float64
}

// EnergyBelow returns the property "total communication energy over the
// run is ≤ joules". It needs a replica recorded with an energy
// technology (metrics.Config.Tech), else the series is all zero and the
// property holds trivially.
func EnergyBelow(joules float64) EnergyProp {
	return EnergyProp{MaxJ: joules}
}

// Eval sums the per-round energy series over the whole run.
func (e EnergyProp) Eval(ts *metrics.TimeSeries) bool {
	var sum float64
	for _, v := range ts.Float(metrics.EnergyJ) {
		sum += v
	}
	return sum <= e.MaxJ
}

// Horizon returns NoHorizon: the budget covers the whole run.
func (e EnergyProp) Horizon() int { return NoHorizon }

// String renders "energy <= J".
func (e EnergyProp) String() string {
	return "energy <= " + formatFloat(e.MaxJ)
}

// TransmissionsProp asserts that the replica's total link transmissions
// stay at or below a budget — the technology-independent sibling of
// EnergyProp (Eq. 3 makes energy proportional to transmitted bits).
type TransmissionsProp struct {
	// Max is the inclusive transmission budget, in link transmissions.
	Max int64
}

// TransmissionsBelow returns the property "total link transmissions over
// the run are ≤ max".
func TransmissionsBelow(max int64) TransmissionsProp {
	return TransmissionsProp{Max: max}
}

// Eval sums the per-round transmissions series over the whole run.
func (p TransmissionsProp) Eval(ts *metrics.TimeSeries) bool {
	var sum int64
	for _, v := range ts.Int(metrics.Transmissions) {
		sum += v
	}
	return sum <= p.Max
}

// Horizon returns NoHorizon: the budget covers the whole run.
func (p TransmissionsProp) Horizon() int { return NoHorizon }

// String renders "transmissions <= N".
func (p TransmissionsProp) String() string {
	return fmt.Sprintf("transmissions <= %d", p.Max)
}

// AndProp is the conjunction of its terms (all must hold).
type AndProp struct {
	// Terms are the conjuncts, in source order (≥ 2).
	Terms []Property
}

// And returns the conjunction of the given properties. With fewer than
// two terms it degenerates: And() is unsatisfiable-free (trivially
// true), And(p) is p.
func And(terms ...Property) Property {
	if len(terms) == 1 {
		return terms[0]
	}
	return AndProp{Terms: terms}
}

// Eval evaluates every term (no short-circuit — Eval is pure and cheap).
func (a AndProp) Eval(ts *metrics.TimeSeries) bool {
	for _, t := range a.Terms {
		if !t.Eval(ts) {
			return false
		}
	}
	return true
}

// Horizon returns the largest term horizon (NoHorizon if any term is
// unbounded).
func (a AndProp) Horizon() int { return maxHorizon(a.Terms) }

// String joins the terms with "and", parenthesizing non-atomic terms.
func (a AndProp) String() string { return joinTerms(a.Terms, "and") }

// OrProp is the disjunction of its terms (at least one must hold).
type OrProp struct {
	// Terms are the disjuncts, in source order (≥ 2).
	Terms []Property
}

// Or returns the disjunction of the given properties; Or(p) is p.
func Or(terms ...Property) Property {
	if len(terms) == 1 {
		return terms[0]
	}
	return OrProp{Terms: terms}
}

// Eval evaluates every term.
func (o OrProp) Eval(ts *metrics.TimeSeries) bool {
	for _, t := range o.Terms {
		if t.Eval(ts) {
			return true
		}
	}
	return false
}

// Horizon returns the largest term horizon (NoHorizon if any term is
// unbounded).
func (o OrProp) Horizon() int { return maxHorizon(o.Terms) }

// String joins the terms with "or", parenthesizing non-atomic terms.
func (o OrProp) String() string { return joinTerms(o.Terms, "or") }

// NotProp is the negation of its term.
type NotProp struct {
	// Term is the negated property.
	Term Property
}

// Not returns the negation of p. Note that negating a bounded property
// keeps the bound as an observation horizon: "not aware(0.95) within 64"
// holds iff awareness has NOT reached 0.95 by round 64.
func Not(p Property) Property { return NotProp{Term: p} }

// Eval inverts the term.
func (n NotProp) Eval(ts *metrics.TimeSeries) bool { return !n.Term.Eval(ts) }

// Horizon returns the term's horizon.
func (n NotProp) Horizon() int { return n.Term.Horizon() }

// String renders "not <term>", parenthesizing non-atomic terms.
func (n NotProp) String() string {
	return "not " + parenthesize(n.Term)
}

// lastRound clamps a property's round bound to the recorded range:
// series index `have` is the last recorded round, `want` the bound (or
// NoHorizon). A bound beyond the recording simply scans what exists —
// the driver is responsible for simulating far enough (Check sizes the
// replica horizon from Property.Horizon).
func lastRound(have, want int) int {
	if want == NoHorizon || want > have {
		return have
	}
	if want < 0 {
		return -1
	}
	return want
}

// maxHorizon folds term horizons: unbounded wins, else the maximum.
func maxHorizon(terms []Property) int {
	h := 0
	for _, t := range terms {
		th := t.Horizon()
		if th == NoHorizon {
			return NoHorizon
		}
		if th > h {
			h = th
		}
	}
	return h
}

// joinTerms renders an n-ary combinator in canonical form.
func joinTerms(terms []Property, op string) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		parts[i] = parenthesize(t)
	}
	return strings.Join(parts, " "+op+" ")
}

// parenthesize wraps combinator terms in parentheses so the canonical
// form re-parses with the intended structure; atoms stay bare.
func parenthesize(p Property) string {
	switch p.(type) {
	case AndProp, OrProp, NotProp:
		return "(" + p.String() + ")"
	default:
		return p.String()
	}
}

// formatFloat renders a float in the shortest form that parses back to
// the same value, keeping String ∘ Parse lossless.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
