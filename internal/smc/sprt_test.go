package smc

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// runSPRT drives one test to a verdict on a seeded Bernoulli(p) stream
// and returns it with the consumed sample count. cap bounds runaway
// streams (p inside the indifference region can take long).
func runSPRT(t *testing.T, p float64, seed uint64, theta, delta, alpha, beta float64, cap int) (Verdict, int) {
	t.Helper()
	s, err := NewSPRT(theta, delta, alpha, beta)
	if err != nil {
		t.Fatalf("NewSPRT: %v", err)
	}
	r := rng.New(seed)
	for i := 0; i < cap; i++ {
		if s.Add(r.Bool(p)) != Undecided {
			break
		}
	}
	return s.Verdict(), s.N()
}

// The headline guarantee: over many seeded Bernoulli streams with the
// true p a full indifference width away from θ, the SPRT's error rate
// stays within Wald's bounds α′ ≤ α/(1−β), β′ ≤ β/(1−α).
func TestSPRTErrorRatesWithinWaldBounds(t *testing.T) {
	const (
		theta = 0.5
		delta = 0.05
		alpha = 0.01
		beta  = 0.01
		runs  = 400
	)
	for _, tc := range []struct {
		name string
		p    float64
		want Verdict
	}{
		{"pAboveTheta", theta + delta, Accepted},
		{"pBelowTheta", theta - delta, Rejected},
		{"pWellAbove", 0.7, Accepted},
		{"pWellBelow", 0.3, Rejected},
	} {
		t.Run(tc.name, func(t *testing.T) {
			wrong := 0
			for i := 0; i < runs; i++ {
				v, _ := runSPRT(t, tc.p, uint64(i)+1, theta, delta, alpha, beta, 1<<20)
				if v == Undecided {
					t.Fatalf("run %d: still undecided after 2^20 samples", i)
				}
				if v != tc.want {
					wrong++
				}
			}
			// Wald bound at the design point: error rate ≤ α/(1−β) ≈
			// 0.0101. With 400 runs the 99.9% binomial envelope around
			// that allows ~11 errors; away from the design point the
			// rate collapses, so the envelope holds a fortiori.
			bound := alpha / (1 - beta)
			limit := int(math.Ceil(float64(runs)*bound + 3*math.Sqrt(float64(runs)*bound*(1-bound))))
			if wrong > limit {
				t.Fatalf("p=%v: %d/%d wrong verdicts, envelope %d (Wald bound %v)",
					tc.p, wrong, runs, limit, bound)
			}
		})
	}
}

// At the boundary p = θ the truth is inside the indifference region:
// either verdict is acceptable, but the test must still terminate with
// probability 1 (the LLR is a random walk with nonzero step variance).
func TestSPRTTerminatesAtBoundary(t *testing.T) {
	const cap = 1 << 22
	for seed := uint64(1); seed <= 25; seed++ {
		v, n := runSPRT(t, 0.5, seed, 0.5, 0.05, 0.01, 0.01, cap)
		if v == Undecided {
			t.Fatalf("seed %d: undecided after %d samples at p = theta", seed, cap)
		}
		if n <= 0 || n > cap {
			t.Fatalf("seed %d: implausible sample count %d", seed, n)
		}
	}
}

// The point of being sequential: mean sample counts at the design
// points stay below the equal-error fixed-N requirement.
func TestSPRTBeatsFixedN(t *testing.T) {
	const (
		theta = 0.9
		delta = 0.05
		alpha = 0.01
		beta  = 0.01
		runs  = 200
	)
	fixed := FixedN(theta, delta, alpha, beta)
	if fixed < 100 {
		t.Fatalf("FixedN(%v,%v,%v,%v) = %d, implausibly small", theta, delta, alpha, beta, fixed)
	}
	for _, p := range []float64{theta - delta, theta + delta, 0.75, 0.99} {
		total := 0
		for i := 0; i < runs; i++ {
			_, n := runSPRT(t, p, uint64(i)+1, theta, delta, alpha, beta, 1<<20)
			total += n
		}
		mean := float64(total) / runs
		if mean >= float64(fixed) {
			t.Errorf("p=%v: mean SPRT samples %.1f >= fixed-N %d", p, mean, fixed)
		}
	}
}

// Add must freeze after the verdict settles: extra outcomes change
// nothing — that is what makes Check's wave over-run harmless.
func TestSPRTFrozenAfterVerdict(t *testing.T) {
	s, err := NewSPRT(0.5, 0.1, 0.05, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; s.Add(true) == Undecided; i++ {
		if i > 1000 {
			t.Fatal("all-success stream did not settle")
		}
	}
	v, n, llr := s.Verdict(), s.N(), s.LLR()
	if v != Accepted {
		t.Fatalf("all-success stream gave %v", v)
	}
	for i := 0; i < 100; i++ {
		s.Add(false)
	}
	if s.Verdict() != v || s.N() != n || s.LLR() != llr {
		t.Fatalf("settled test moved: %v/%d/%v -> %v/%d/%v", v, n, llr, s.Verdict(), s.N(), s.LLR())
	}
}

func TestNewSPRTRejectsBadParameters(t *testing.T) {
	for _, tc := range []struct{ theta, delta, alpha, beta float64 }{
		{0.5, 0, 0.01, 0.01},    // no indifference width
		{0.5, -0.1, 0.01, 0.01}, // negative width
		{0.05, 0.1, 0.01, 0.01}, // p0 ≤ 0
		{0.95, 0.1, 0.01, 0.01}, // p1 ≥ 1
		{0.5, 0.05, 0, 0.01},    // alpha out of range
		{0.5, 0.05, 0.01, 1},    // beta out of range
		{0.5, 0.05, math.NaN(), 0.01},
	} {
		if _, err := NewSPRT(tc.theta, tc.delta, tc.alpha, tc.beta); err == nil {
			t.Errorf("NewSPRT(%v, %v, %v, %v) accepted invalid parameters",
				tc.theta, tc.delta, tc.alpha, tc.beta)
		}
	}
}

func TestFixedNGrowsWithTighterErrors(t *testing.T) {
	loose := FixedN(0.5, 0.05, 0.05, 0.05)
	tight := FixedN(0.5, 0.05, 0.01, 0.01)
	if !(tight > loose) {
		t.Fatalf("FixedN not monotone in error bounds: alpha=0.01 gives %d, alpha=0.05 gives %d", tight, loose)
	}
	wide := FixedN(0.5, 0.1, 0.01, 0.01)
	if !(wide < tight) {
		t.Fatalf("FixedN not monotone in delta: delta=0.1 gives %d, delta=0.05 gives %d", wide, tight)
	}
}
