package smc

import (
	"strings"
	"testing"
)

// Canonical specs must round-trip exactly: Parse(s).String() == s.
func TestParseRoundTripsCanonicalForms(t *testing.T) {
	for _, s := range []string{
		"aware(0.95)",
		"aware(0.95) within 64",
		"aware(1) within 3",
		"aware(0)",
		"delivered",
		"delivered by 10",
		"delivered(3)",
		"delivered(3) by 10",
		"energy <= 1.5e-09",
		"energy <= 0.25",
		"transmissions <= 4000",
		"not aware(0.5)",
		"aware(0.9) within 32 and energy <= 1e-06",
		"delivered by 8 or aware(0.99) within 64",
		"aware(0.5) and aware(0.9) and aware(0.99)",
		"not (aware(0.5) and delivered)",
		"(aware(0.5) or delivered) and transmissions <= 100",
	} {
		p, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
			continue
		}
		if got := p.String(); got != s {
			t.Errorf("Parse(%q).String() = %q", s, got)
		}
	}
}

// Constructor-built properties parse back to equivalent values.
func TestParseMatchesConstructors(t *testing.T) {
	for _, p := range []Property{
		AwareFraction(0.95).Within(64),
		AwareFraction(0.5),
		Delivered(),
		DeliveredBy(10),
		Deliveries(7).By(3),
		EnergyBelow(1.5e-9),
		TransmissionsBelow(4000),
		And(AwareFraction(0.9).Within(32), EnergyBelow(1e-6)),
		Or(DeliveredBy(8), Not(AwareFraction(0.99))),
	} {
		got, err := Parse(p.String())
		if err != nil {
			t.Errorf("Parse(%q): %v", p.String(), err)
			continue
		}
		if got.String() != p.String() {
			t.Errorf("Parse(%q).String() = %q", p.String(), got.String())
		}
		if got.Horizon() != p.Horizon() {
			t.Errorf("%q: parsed horizon %d != constructed %d", p.String(), got.Horizon(), p.Horizon())
		}
	}
}

func TestParseRejectsMalformedSpecs(t *testing.T) {
	for _, s := range []string{
		"",
		"aware",
		"aware(",
		"aware()",
		"aware(2)",          // fraction out of [0,1]
		"aware(-0.1)",       // fraction out of [0,1]
		"aware(0.5) within", // missing bound
		"aware(0.5) within -1",
		"aware(0.5) within 1.5",
		"delivered(0)", // count must be ≥ 1
		"delivered(x)",
		"energy 1e-9", // missing <=
		"energy <= NaN",
		"energy <= Inf",
		"transmissions <= -5",
		"blah(0.5)",
		"aware(0.5) and",
		"not",
		"(aware(0.5)",
		"aware(0.5))",
		"aware(0.5) aware(0.6)",
	} {
		if p, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted malformed spec as %q", s, p)
		}
	}
}

func TestParseAcceptsFlexibleWhitespace(t *testing.T) {
	for in, want := range map[string]string{
		"aware( 0.95 )   within   64": "aware(0.95) within 64",
		"  delivered(3)by 10 ":        "delivered(3) by 10",
		"energy<=1e-9":                "energy <= 1e-09",
		"not(delivered)":              "not delivered",
	} {
		p, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		if got := p.String(); got != want {
			t.Errorf("Parse(%q).String() = %q, want %q", in, got, want)
		}
	}
}

func TestMustParsePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse accepted garbage without panicking")
		}
	}()
	MustParse("aware(")
}

// FuzzParse checks that no input panics the parser and that every
// accepted input reaches a stable canonical form: re-parsing String()
// must succeed and be idempotent.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"aware(0.95) within 64",
		"delivered(3) by 10",
		"energy <= 1.5e-09",
		"transmissions <= 4000",
		"not (aware(0.5) and delivered)",
		"(a or b) and c",
		"((((",
		"aware(0.5) or",
		"within within within",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := Parse(s)
		if err != nil {
			if p != nil {
				t.Fatalf("Parse(%q) returned both a property and error %v", s, err)
			}
			return
		}
		canon := p.String()
		if strings.TrimSpace(canon) == "" {
			t.Fatalf("Parse(%q) produced empty canonical form", s)
		}
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", canon, s, err)
		}
		if got := p2.String(); got != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q -> %q", s, canon, got)
		}
	})
}
