package smc

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/gossip"
	"repro/internal/packet"
	"repro/internal/topology"
)

// The rare event: full awareness of a 16-tile complete mesh within 6
// rounds at p = 0.025 — exact probability ≈ 1.8e-4 (FloodReachProb).
// The horizon leaves the level crossings spread over rounds, which
// splitting needs: a fork from a level crossed only at the horizon has
// no budget left to progress (that is the level-design lesson worked
// through in docs/SMC.md).
const (
	splitMeshN   = 16
	splitP       = 0.025
	splitHorizon = 6
)

func splitModel() Model {
	return completeMeshModel(splitMeshN, splitP, splitHorizon)
}

// Fixed-effort splitting must land within a small factor of the exact
// tail probability — the cross-validation that the fork machinery
// (Restore + Reseed) preserves the trajectory law level by level.
func TestSplitEstimatesRareTailWithinFactor(t *testing.T) {
	if testing.Short() {
		t.Skip("splitting estimation loop in -short mode")
	}
	truth := gossip.FloodReachProb(splitMeshN, splitP, splitMeshN, splitHorizon)
	if truth > 1e-3 || truth < 1e-5 {
		t.Fatalf("test point drifted: truth %.3e is no longer a ~1e-4 tail", truth)
	}
	res, err := Split(splitModel(), AwareScore, SplitConfig{
		Levels: []float64{3.0 / 16, 6.0 / 16, 9.0 / 16, 12.0 / 16, 14.0 / 16, 1},
		Effort: 512,
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probability <= 0 {
		t.Fatalf("splitting lost the event entirely: %+v", res)
	}
	if ratio := res.Probability / truth; ratio < 1.0/4 || ratio > 4 {
		t.Errorf("estimate %.3e vs exact %.3e (ratio %.2f) outside factor-4 band\n%s",
			res.Probability, truth, ratio, res)
	}
	// Direct Monte Carlo at the same trajectory budget expects under
	// one hit — the tail is out of plain-replica reach at this budget.
	if expected := truth * float64(res.Trajectories); expected > 1 {
		t.Errorf("event not rare at this budget: %d trajectories × %.1e = %.2f expected direct hits",
			res.Trajectories, truth, expected)
	}
}

// The estimate is deterministic in (model, config): two runs agree
// exactly.
func TestSplitDeterministic(t *testing.T) {
	cfg := SplitConfig{
		Levels: []float64{4.0 / 16, 8.0 / 16, 12.0 / 16},
		Effort: 64,
		Seed:   99,
	}
	a, err := Split(splitModel(), AwareScore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Split(splitModel(), AwareScore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Probability != b.Probability || a.Trajectories != b.Trajectories {
		t.Errorf("split not deterministic: %+v vs %+v", a, b)
	}
}

// Degenerate configurations fail loudly.
func TestSplitRejectsBadLevels(t *testing.T) {
	for _, levels := range [][]float64{
		nil,
		{},
		{0.5, 0.5},
		{0.5, 0.25},
	} {
		if _, err := Split(splitModel(), AwareScore, SplitConfig{Levels: levels, Effort: 4}); err == nil {
			t.Errorf("Split accepted levels %v", levels)
		}
	}
}

// An unreachable first level yields probability zero (and stops — no
// later stage can run without parents).
func TestSplitUnreachableLevelIsZero(t *testing.T) {
	res, err := Split(splitModel(), func(n *core.Network, msg packet.MsgID) float64 {
		return 0 // score never moves
	}, SplitConfig{Levels: []float64{0.5, 1}, Effort: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probability != 0 {
		t.Errorf("unreachable level gave probability %v", res.Probability)
	}
	if res.Hits[0] != 0 || res.Trajectories != 8 {
		t.Errorf("unexpected accounting for dead stage: %+v", res)
	}
}

// The fork primitive underneath splitting: restoring one snapshot twice
// with different Reseed values must diverge, while the same reseed
// value reproduces the identical continuation. Without Reseed every
// fork would replay its parent's future and splitting would multiply
// one trajectory, not explore the conditional distribution.
func TestReseedDivergesForkedTrajectories(t *testing.T) {
	g := topology.NewFullyConnected(splitMeshN)
	cfg := core.Config{Topo: g, P: 0.3, TTL: 64, MaxRounds: 32, Seed: 1234}
	net, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := net.Inject(0, packet.Broadcast, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	net.Step()
	var snap bytes.Buffer
	if err := net.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	run := func(reseed uint64, rounds int) []int {
		fork, err := core.Restore(bytes.NewReader(snap.Bytes()), cfg)
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		fork.Reseed(reseed)
		trace := make([]int, rounds)
		for i := range trace {
			fork.Step()
			trace[i] = fork.Aware(id)
		}
		return trace
	}

	a := run(111, 6)
	b := run(222, 6)
	c := run(111, 6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("same reseed diverged: %v vs %v", a, c)
		}
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Errorf("different reseeds replayed the identical trajectory %v — forks are not independent", a)
	}
}
