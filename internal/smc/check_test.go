package smc

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/gossip"
	"repro/internal/topology"
)

// completeMeshModel is the cross-validation fabric: a fully connected
// fault-free n-tile mesh broadcasting from tile 0, the topology where
// gossip.FloodSpreadDist is the engine's exact law (dedup on, TTL
// beyond the horizon).
func completeMeshModel(n int, p float64, maxRounds int) Model {
	return BroadcastModel(core.Config{
		Topo: topology.NewFullyConnected(n),
		P:    p, TTL: 64, MaxRounds: maxRounds,
	}, 0, energy.Technology{})
}

// gridModel broadcasts from the center of a side×side grid.
func gridModel(side int, p float64, maxRounds int) Model {
	g := topology.NewGrid(side, side)
	return BroadcastModel(core.Config{
		Topo: g, P: p, TTL: 64, MaxRounds: maxRounds,
	}, g.ID(side/2, side/2), energy.Technology{})
}

// checkAgainstTruth runs Check twice — θ below and above the exact
// trajectory probability — and demands the matching verdicts plus the
// sequential saving over fixed-N. margin is the distance of each θ from
// the truth (several indifference widths, so a wrong verdict would be a
// genuine SPRT failure, not an indifference-region coin flip).
func checkAgainstTruth(t *testing.T, model Model, prop Property, truth, margin float64, seed uint64) {
	t.Helper()
	replica := model.Replica(prop)
	for _, tc := range []struct {
		theta float64
		want  Verdict
	}{
		{truth - margin, Accepted},
		{truth + margin, Rejected},
	} {
		cfg := CheckConfig{
			Theta: tc.theta, Delta: 0.02, Alpha: 0.01, Beta: 0.01,
			Seed: seed,
		}
		rep, err := Check(prop, replica, cfg)
		if err != nil {
			t.Fatalf("Check(%q, theta=%v): %v", prop, tc.theta, err)
		}
		if rep.Verdict != tc.want {
			t.Errorf("Check(%q): truth %.4f, theta %.4f: got %v (replicas=%d successes=%d), want %v",
				prop, truth, tc.theta, rep.Verdict, rep.Replicas, rep.Successes, tc.want)
		}
		if rep.Replicas >= rep.FixedN {
			t.Errorf("Check(%q, theta=%v): consumed %d replicas, not below fixed-N %d",
				prop, tc.theta, rep.Replicas, rep.FixedN)
		}
	}
}

// The tentpole cross-validation: SPRT verdicts on the engine must agree
// with the exact complete-mesh flood law for thresholds on both sides
// of the true trajectory probability.
func TestCheckAgreesWithFloodLawCompleteMesh(t *testing.T) {
	for _, tc := range []struct {
		n, k, rounds int
		p            float64
	}{
		{16, 6, 2, 0.1},  // truth ≈ 0.467
		{12, 9, 3, 0.15}, // truth ≈ 0.639
	} {
		truth := gossip.FloodReachProb(tc.n, tc.p, tc.k, tc.rounds)
		if truth < 0.25 || truth > 0.8 {
			t.Fatalf("test point drifted: FloodReachProb(%d,%g,%d,%d) = %v no longer mid-range",
				tc.n, tc.p, tc.k, tc.rounds, truth)
		}
		model := completeMeshModel(tc.n, tc.p, tc.rounds+2)
		prop := AwareFraction(float64(tc.k) / float64(tc.n)).Within(tc.rounds)
		checkAgainstTruth(t, model, prop, truth, 0.12, 0x5eed+uint64(tc.n))
	}
}

// On a grid the one-round event is an exact binomial: from a center
// source with 4 neighbours, "5 tiles aware within 1 round" happens iff
// all four independent port draws fire — probability p⁴, fault free.
// The acceptance fabrics: 4×4 and 8×8 grids, θ on both sides.
func TestCheckAgreesWithBinomialLawOnGrids(t *testing.T) {
	const p = 0.8 // truth = 0.8^4 = 0.4096
	truth := math.Pow(p, 4)
	for _, side := range []int{4, 8} {
		model := gridModel(side, p, 4)
		prop := AwareFraction(5.0 / float64(side*side)).Within(1)
		checkAgainstTruth(t, model, prop, truth, 0.12, 0xbeef+uint64(side))
	}
}

// p = 1 degenerates to deterministic flooding: awareness grows by
// Manhattan distance, so full coverage of a 4×4 grid from the (2,2)
// source takes exactly 4 rounds (the farthest corner is 4 hops away).
// The SPRT must accept "within 4" against θ = 0.95 and reject
// "within 3" against θ = 0.05 — the degenerate endpoints of the law.
func TestCheckDeterministicFloodingEndpoints(t *testing.T) {
	model := gridModel(4, 1, 6)
	full := AwareFraction(1)

	rep, err := Check(full.Within(4), model.Replica(full.Within(4)), CheckConfig{
		Theta: 0.95, Delta: 0.02, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Accepted {
		t.Errorf("p=1 full coverage within 4: got %v, want Accepted (%s)", rep.Verdict, rep)
	}
	if rep.Successes != rep.Replicas {
		t.Errorf("p=1 flooding produced a failed trajectory: %d/%d", rep.Successes, rep.Replicas)
	}

	rep, err = Check(full.Within(3), model.Replica(full.Within(3)), CheckConfig{
		Theta: 0.05, Delta: 0.02, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Rejected {
		t.Errorf("p=1 full coverage within 3: got %v, want Rejected (%s)", rep.Verdict, rep)
	}
	if rep.Successes != 0 {
		t.Errorf("corner tile reached in under 4 rounds: %d successes", rep.Successes)
	}
}

// The Report must be deterministic in (Seed, test parameters) alone:
// wave size and worker count shift wall-clock work, never the verdict
// or the consumed-replica count.
func TestCheckDeterministicAcrossWorkersAndBatch(t *testing.T) {
	model := completeMeshModel(16, 0.1, 4)
	prop := AwareFraction(0.375).Within(2)
	replica := model.Replica(prop)
	base := CheckConfig{Theta: 0.35, Delta: 0.02, Seed: 42}

	var first Report
	for i, cfg := range []CheckConfig{
		base,
		{Theta: 0.35, Delta: 0.02, Seed: 42, Workers: 1, Batch: 16},
		{Theta: 0.35, Delta: 0.02, Seed: 42, Workers: 4, Batch: 250},
		{Theta: 0.35, Delta: 0.02, Seed: 42, Workers: 7, Batch: 3},
	} {
		rep, err := Check(prop, replica, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = rep
			if first.Verdict == Undecided {
				t.Fatalf("baseline check undecided: %s", first)
			}
			continue
		}
		if rep != first {
			t.Errorf("report depends on scheduling: %+v != %+v (cfg %+v)", rep, first, cfg)
		}
	}
}

// A check that cannot settle within MaxReplicas reports Undecided
// rather than erroring or spinning.
func TestCheckUndecidedAtReplicaCap(t *testing.T) {
	model := completeMeshModel(16, 0.1, 4)
	prop := AwareFraction(0.375).Within(2)
	truth := gossip.FloodReachProb(16, 0.1, 6, 2)
	rep, err := Check(prop, model.Replica(prop), CheckConfig{
		Theta: truth, // dead center of the indifference region
		Delta: 0.005, Seed: 3, MaxReplicas: 40, Batch: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != Undecided {
		// Not impossible for a short stream, but with θ at the truth and
		// only 40 replicas the LLR should still be wandering.
		t.Errorf("expected Undecided at tiny replica cap, got %s", rep)
	}
	if rep.Replicas > 40 {
		t.Errorf("consumed %d replicas past the cap of 40", rep.Replicas)
	}
}

// Parsed properties drive the same machinery: a parsed spec and its
// constructor twin yield identical reports.
func TestCheckParsedPropertyMatchesConstructor(t *testing.T) {
	model := completeMeshModel(12, 0.15, 5)
	parsed := MustParse("aware(0.75) within 3")
	built := AwareFraction(0.75).Within(3)
	cfg := CheckConfig{Theta: 0.5, Delta: 0.02, Seed: 11}

	repParsed, err := Check(parsed, model.Replica(parsed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	repBuilt, err := Check(built, model.Replica(built), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if repParsed != repBuilt {
		t.Errorf("parsed and constructed property disagree:\n  %+v\n  %+v", repParsed, repBuilt)
	}
}
