// Package docaudit is a test-only CI gate for documentation coverage:
// every exported identifier in the packages the observability layer
// spans (internal/core, internal/sim, internal/metrics, internal/trace)
// must carry a godoc comment. The repo's convention is that those
// comments state units (rounds, bits, joules) and cite the thesis
// section they reproduce; this gate can only enforce presence, so the
// units rule is enforced by review — but an undocumented export fails
// CI here rather than slipping through.
package docaudit

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// audited lists the packages under the godoc gate, relative to this
// directory.
var audited = []string{"../core", "../sim", "../metrics", "../trace"}

// TestExportedIdentifiersDocumented parses each audited package
// (non-test files only) and fails with a file:line list of every
// exported declaration that has no doc comment.
func TestExportedIdentifiersDocumented(t *testing.T) {
	for _, dir := range audited {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			for _, miss := range auditDir(t, dir) {
				t.Error(miss)
			}
		})
	}
}

// auditDir returns one "file:line: <what> is undocumented" string per
// exported declaration without a doc comment in dir.
func auditDir(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	var missing []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s is undocumented", p.Filename, p.Line, what))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedRecv(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), "func "+funcName(d))
					}
				case *ast.GenDecl:
					auditGenDecl(d, report)
				}
			}
		}
	}
	return missing
}

// auditGenDecl checks the specs of one const/var/type block. A doc
// comment on the block covers every spec in it (the grouped-const
// idiom); otherwise each exported spec needs its own.
func auditGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
		return
	}
	blockDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !blockDoc && s.Doc == nil {
				report(s.Pos(), "type "+s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
				auditFields(s.Name.Name, st, report)
			}
		case *ast.ValueSpec:
			if blockDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), d.Tok.String()+" "+name.Name)
				}
			}
		}
	}
}

// auditFields checks the exported fields of an exported struct type: a
// field needs a doc comment or an inline trailing comment (units live
// there).
func auditFields(typeName string, st *ast.StructType, report func(token.Pos, string)) {
	for _, f := range st.Fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, name := range f.Names {
			if name.IsExported() {
				report(name.Pos(), "field "+typeName+"."+name.Name)
			}
		}
	}
}

// exportedRecv reports whether a method's receiver type is exported
// (methods on unexported types are not part of the API surface).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr:
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// funcName renders "Name" or "(Recv).Name" for failure messages.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + id.Name + ")." + d.Name.Name
	}
	return d.Name.Name
}
