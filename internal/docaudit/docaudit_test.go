// Package docaudit is a test-only CI gate for documentation coverage:
// every exported identifier in the audited packages (the observability
// layer — internal/core, internal/sim, internal/metrics, internal/trace
// — plus the statistical stack internal/smc, internal/stats and
// internal/gossip) must carry a godoc comment, every audited package a
// package-level doc comment, and every identifier docs/SMC.md cites
// must actually exist. The repo's convention is that godoc comments
// state units (rounds, bits, joules) and cite the thesis section they
// reproduce; this gate can only enforce presence, so the units rule is
// enforced by review — but an undocumented export fails CI here rather
// than slipping through.
package docaudit

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// audited lists the packages under the godoc gate, relative to this
// directory.
var audited = []string{
	"../core", "../sim", "../metrics", "../trace",
	"../smc", "../stats", "../gossip", "../service",
}

// TestExportedIdentifiersDocumented parses each audited package
// (non-test files only) and fails with a file:line list of every
// exported declaration that has no doc comment.
func TestExportedIdentifiersDocumented(t *testing.T) {
	for _, dir := range audited {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			for _, miss := range auditDir(t, dir) {
				t.Error(miss)
			}
		})
	}
}

// TestPackagesHaveDocComment closes the gap the identifier audit used
// to skip: each audited package must have a package-level doc comment
// on at least one of its files (the `// Package x ...` block godoc
// renders as the package synopsis).
func TestPackagesHaveDocComment(t *testing.T) {
	for _, dir := range audited {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go")
			}, parser.ParseComments)
			if err != nil {
				t.Fatalf("parse %s: %v", dir, err)
			}
			for name, pkg := range pkgs {
				documented := false
				for _, file := range pkg.Files {
					if file.Doc != nil {
						documented = true
						break
					}
				}
				if !documented {
					t.Errorf("package %s (%s) has no package-level doc comment", name, dir)
				}
			}
		})
	}
}

// docIdentRe matches qualified identifier citations in the docs —
// `pkg.Exported` with an optional method or field selector.
var docIdentRe = regexp.MustCompile(`\b(core|sim|metrics|trace|smc|stats|gossip|rng|packet|topology|energy|fault|service)\.([A-Z][A-Za-z0-9]*)`)

// TestSMCDocReferencesExist cross-checks docs/SMC.md against the code:
// every `pkg.Identifier` the document cites must exist as an exported
// declaration of that package, so the reference cannot rot silently
// when an API is renamed.
func TestSMCDocReferencesExist(t *testing.T) {
	auditDocReferences(t, "../../docs/SMC.md")
}

// TestServiceDocReferencesExist applies the same link check to
// docs/SERVICE.md, the simulation-as-a-service daemon's reference.
func TestServiceDocReferencesExist(t *testing.T) {
	auditDocReferences(t, "../../docs/SERVICE.md")
}

// auditDocReferences fails for every `pkg.Identifier` citation in doc
// that does not exist as an exported declaration of internal/<pkg>.
func auditDocReferences(t *testing.T, doc string) {
	t.Helper()
	text, err := os.ReadFile(doc)
	if err != nil {
		t.Fatalf("read %s: %v", doc, err)
	}
	exports := map[string]map[string]bool{}
	for _, m := range docIdentRe.FindAllStringSubmatch(string(text), -1) {
		pkg, ident := m[1], m[2]
		if exports[pkg] == nil {
			exports[pkg] = exportedIdents(t, "../"+pkg)
		}
		if !exports[pkg][ident] {
			t.Errorf("%s references %s.%s, which does not exist in internal/%s", doc, pkg, ident, pkg)
		}
	}
	if len(exports) == 0 {
		t.Fatalf("%s cites no qualified identifiers — the link check is vacuous", doc)
	}
}

// exportedIdents collects the exported top-level identifiers (types,
// funcs, consts, vars) of the package in dir.
func exportedIdents(t *testing.T, dir string) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	out := map[string]bool{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Recv == nil && d.Name.IsExported() {
						out[d.Name.Name] = true
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() {
								out[s.Name.Name] = true
							}
						case *ast.ValueSpec:
							for _, name := range s.Names {
								if name.IsExported() {
									out[name.Name] = true
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// auditDir returns one "file:line: <what> is undocumented" string per
// exported declaration without a doc comment in dir.
func auditDir(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	var missing []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s is undocumented", p.Filename, p.Line, what))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !exportedRecv(d) {
						continue
					}
					if d.Doc == nil {
						report(d.Pos(), "func "+funcName(d))
					}
				case *ast.GenDecl:
					auditGenDecl(d, report)
				}
			}
		}
	}
	return missing
}

// auditGenDecl checks the specs of one const/var/type block. A doc
// comment on the block covers every spec in it (the grouped-const
// idiom); otherwise each exported spec needs its own.
func auditGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	if d.Tok != token.CONST && d.Tok != token.VAR && d.Tok != token.TYPE {
		return
	}
	blockDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !blockDoc && s.Doc == nil {
				report(s.Pos(), "type "+s.Name.Name)
			}
			if st, ok := s.Type.(*ast.StructType); ok && s.Name.IsExported() {
				auditFields(s.Name.Name, st, report)
			}
		case *ast.ValueSpec:
			if blockDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), d.Tok.String()+" "+name.Name)
				}
			}
		}
	}
}

// auditFields checks the exported fields of an exported struct type: a
// field needs a doc comment or an inline trailing comment (units live
// there).
func auditFields(typeName string, st *ast.StructType, report func(token.Pos, string)) {
	for _, f := range st.Fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, name := range f.Names {
			if name.IsExported() {
				report(name.Pos(), "field "+typeName+"."+name.Name)
			}
		}
	}
}

// exportedRecv reports whether a method's receiver type is exported
// (methods on unexported types are not part of the API surface).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr:
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// funcName renders "Name" or "(Recv).Name" for failure messages.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		t = s.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return "(" + id.Name + ")." + d.Name.Name
	}
	return d.Name.Name
}
