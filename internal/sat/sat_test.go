package sat

import (
	"testing"

	"repro/internal/rng"
)

func TestTrivialInstances(t *testing.T) {
	// (x1) ∧ (¬x1 ∨ x2): satisfiable with x1=x2=true.
	f := &Formula{NumVars: 2, Clauses: []Clause{{1}, {-1, 2}}}
	res, err := Solve(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sat || !f.Satisfies(res.Model) {
		t.Fatalf("result: %+v", res)
	}
	if res.Model[1] != true || res.Model[2] != true {
		t.Fatalf("model: %v", res.Model)
	}
}

func TestContradiction(t *testing.T) {
	f := &Formula{NumVars: 1, Clauses: []Clause{{1}, {-1}}}
	res, err := Solve(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sat {
		t.Fatal("x ∧ ¬x declared SAT")
	}
}

func TestAssumptions(t *testing.T) {
	f := &Formula{NumVars: 2, Clauses: []Clause{{1, 2}}}
	// Under ¬x1 ∧ ¬x2 the clause is falsified.
	res, err := Solve(f, []Lit{-1, -2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sat {
		t.Fatal("SAT under falsifying assumptions")
	}
	// Under ¬x1 alone, x2 must be true.
	res, err = Solve(f, []Lit{-1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Sat || res.Model[2] != true {
		t.Fatalf("result: %+v", res)
	}
}

func TestContradictoryAssumptions(t *testing.T) {
	f := &Formula{NumVars: 1, Clauses: []Clause{{1}}}
	res, err := Solve(f, []Lit{1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sat {
		t.Fatal("contradictory assumptions declared SAT")
	}
}

func TestValidation(t *testing.T) {
	bad := []*Formula{
		{NumVars: -1},
		{NumVars: 1, Clauses: []Clause{{}}},
		{NumVars: 1, Clauses: []Clause{{0}}},
		{NumVars: 1, Clauses: []Clause{{5}}},
	}
	for i, f := range bad {
		if _, err := Solve(f, nil); err == nil {
			t.Errorf("bad formula %d accepted", i)
		}
	}
	f := &Formula{NumVars: 1, Clauses: []Clause{{1}}}
	if _, err := Solve(f, []Lit{7}); err == nil {
		t.Error("out-of-range assumption accepted")
	}
}

func TestPigeonholeUnsat(t *testing.T) {
	for holes := 1; holes <= 4; holes++ {
		f := Pigeonhole(holes)
		res, err := Solve(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sat {
			t.Fatalf("PHP(%d+1,%d) declared SAT", holes, holes)
		}
	}
}

// bruteForce checks satisfiability by enumeration (reference oracle).
func bruteForce(f *Formula) bool {
	n := f.NumVars
	for bits := 0; bits < 1<<uint(n); bits++ {
		a := Assignment{}
		for v := 1; v <= n; v++ {
			a[v] = bits>>(uint(v)-1)&1 == 1
		}
		if f.Satisfies(a) {
			return true
		}
	}
	return false
}

func TestAgainstBruteForce(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 200; trial++ {
		vars := 3 + r.Intn(8) // 3..10 variables
		clauses := 2 + r.Intn(5*vars)
		f := Random3SAT(vars, clauses, r)
		res, err := Solve(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(f)
		if res.Sat != want {
			t.Fatalf("trial %d: DPLL=%v brute=%v for %+v", trial, res.Sat, want, f)
		}
		if res.Sat && !f.Satisfies(res.Model) {
			t.Fatalf("trial %d: SAT model does not satisfy", trial)
		}
	}
}

func TestRandom3SATPhases(t *testing.T) {
	r := rng.New(11)
	// Ratio 2: almost surely SAT.
	satLow := 0
	for i := 0; i < 20; i++ {
		res, err := Solve(Random3SAT(20, 40, r), nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sat {
			satLow++
		}
	}
	if satLow < 18 {
		t.Fatalf("ratio-2 instances SAT only %d/20", satLow)
	}
	// Ratio 7: almost surely UNSAT.
	satHigh := 0
	for i := 0; i < 20; i++ {
		res, err := Solve(Random3SAT(20, 140, r), nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sat {
			satHigh++
		}
	}
	if satHigh > 2 {
		t.Fatalf("ratio-7 instances SAT %d/20", satHigh)
	}
}

func TestDecisionsCounted(t *testing.T) {
	f := Pigeonhole(3)
	res, err := Solve(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions == 0 {
		t.Fatal("UNSAT proof without decisions?")
	}
}

func TestLitVar(t *testing.T) {
	if Lit(5).Var() != 5 || Lit(-7).Var() != 7 {
		t.Fatal("Lit.Var broken")
	}
}
