// Package sat is a compact DPLL satisfiability solver — the substrate of
// the parallel SAT workload the thesis names among stochastic
// communication's applications ("ranging from parallel SAT solvers and
// multimedia applications to periodic data acquisition...", Ch. 4).
//
// Formulas are in CNF; the solver does unit propagation, pure-literal
// elimination and deterministic first-unassigned branching, so identical
// inputs always explore identical trees — which the distributed cube-and-
// conquer app relies on for reproducibility.
package sat

import (
	"errors"
	"fmt"

	"repro/internal/rng"
)

// Lit is a literal: +v for variable v, −v for its negation. Variables are
// numbered from 1.
type Lit int

// Var returns the literal's variable.
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Clause is a disjunction of literals.
type Clause []Lit

// Formula is a conjunction of clauses over variables 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Validate reports structural errors.
func (f *Formula) Validate() error {
	if f.NumVars < 0 {
		return errors.New("sat: negative variable count")
	}
	for i, c := range f.Clauses {
		if len(c) == 0 {
			return fmt.Errorf("sat: clause %d is empty (trivially unsat input)", i)
		}
		for _, l := range c {
			if l == 0 || l.Var() > f.NumVars {
				return fmt.Errorf("sat: clause %d has invalid literal %d", i, l)
			}
		}
	}
	return nil
}

// Assignment maps variable -> value; missing variables are unassigned.
type Assignment map[int]bool

// Satisfies reports whether a (total or partial) assignment satisfies f:
// every clause has at least one true literal.
func (f *Formula) Satisfies(a Assignment) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			v, assigned := a[l.Var()]
			if assigned && v == (l > 0) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Result is a solver outcome.
type Result struct {
	Sat   bool
	Model Assignment // valid when Sat
	// Decisions counts branching nodes explored (work metric).
	Decisions int
}

// Solve runs DPLL under the given assumptions (which may be nil). The
// assumptions are unit-asserted before search; a conflict with them
// yields UNSAT.
func Solve(f *Formula, assumptions []Lit) (*Result, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	a := Assignment{}
	for _, l := range assumptions {
		if l == 0 || l.Var() > f.NumVars {
			return nil, fmt.Errorf("sat: invalid assumption %d", l)
		}
		want := l > 0
		if v, ok := a[l.Var()]; ok && v != want {
			return &Result{Sat: false}, nil // contradictory assumptions
		}
		a[l.Var()] = want
	}
	s := &solver{f: f}
	sat := s.dpll(a)
	res := &Result{Sat: sat, Decisions: s.decisions}
	if sat {
		res.Model = a
	}
	return res, nil
}

type solver struct {
	f         *Formula
	decisions int
}

// status classifies a clause under a partial assignment.
func clauseStatus(c Clause, a Assignment) (satisfied bool, unassigned []Lit) {
	for _, l := range c {
		v, ok := a[l.Var()]
		if !ok {
			unassigned = append(unassigned, l)
			continue
		}
		if v == (l > 0) {
			return true, nil
		}
	}
	return false, unassigned
}

// dpll searches destructively over a; on success a holds the model.
func (s *solver) dpll(a Assignment) bool {
	// Unit propagation to fixpoint.
	var trail []int
	for {
		progress := false
		for _, c := range s.f.Clauses {
			sat, open := clauseStatus(c, a)
			if sat {
				continue
			}
			switch len(open) {
			case 0:
				// Conflict: undo this propagation level's trail.
				for _, v := range trail {
					delete(a, v)
				}
				return false
			case 1:
				l := open[0]
				a[l.Var()] = l > 0
				trail = append(trail, l.Var())
				progress = true
			}
		}
		if !progress {
			break
		}
	}

	// Pick the first unassigned variable; none left means SAT.
	branch := 0
	for v := 1; v <= s.f.NumVars; v++ {
		if _, ok := a[v]; !ok {
			branch = v
			break
		}
	}
	if branch == 0 {
		return true
	}
	s.decisions++
	for _, val := range [2]bool{true, false} {
		a[branch] = val
		if s.dpll(a) {
			return true
		}
		delete(a, branch)
	}
	for _, v := range trail {
		delete(a, v)
	}
	return false
}

// Random3SAT generates a uniform random 3-SAT instance with the given
// variables and clauses. Clause/variable ratios well below the ~4.27
// phase transition are almost surely satisfiable; well above, almost
// surely not.
func Random3SAT(vars, clauses int, r *rng.Stream) *Formula {
	f := &Formula{NumVars: vars}
	for i := 0; i < clauses; i++ {
		var c Clause
		used := map[int]bool{}
		for len(c) < 3 {
			v := 1 + r.Intn(vars)
			if used[v] {
				continue
			}
			used[v] = true
			l := Lit(v)
			if r.Bool(0.5) {
				l = -l
			}
			c = append(c, l)
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// Pigeonhole returns the classic PHP(n+1, n) formula — n+1 pigeons into n
// holes — which is unsatisfiable. Variable p(i,j) = i*n + j + 1 means
// "pigeon i sits in hole j".
func Pigeonhole(holes int) *Formula {
	pigeons := holes + 1
	v := func(p, h int) Lit { return Lit(p*holes + h + 1) }
	f := &Formula{NumVars: pigeons * holes}
	// Every pigeon sits somewhere.
	for p := 0; p < pigeons; p++ {
		var c Clause
		for h := 0; h < holes; h++ {
			c = append(c, v(p, h))
		}
		f.Clauses = append(f.Clauses, c)
	}
	// No two pigeons share a hole.
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.Clauses = append(f.Clauses, Clause{-v(p1, h), -v(p2, h)})
			}
		}
	}
	return f
}
