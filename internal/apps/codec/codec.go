// Package codec provides the compact binary payload encodings the case
// study applications put inside NoC packets. All encodings are big-endian
// and fixed-width, as a hardware message format would be.
package codec

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrShort is returned when a payload is too short to decode.
var ErrShort = errors.New("codec: short payload")

// Writer appends fixed-width fields to a payload buffer.
type Writer struct{ buf []byte }

// NewWriter returns a Writer with capacity preallocated for n bytes.
func NewWriter(n int) *Writer { return &Writer{buf: make([]byte, 0, n)} }

// Bytes returns the accumulated payload.
func (w *Writer) Bytes() []byte { return w.buf }

// U16 appends a uint16.
func (w *Writer) U16(v uint16) *Writer {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
	return w
}

// U32 appends a uint32.
func (w *Writer) U32(v uint32) *Writer {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
	return w
}

// U64 appends a uint64.
func (w *Writer) U64(v uint64) *Writer {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
	return w
}

// F64 appends a float64 as its IEEE-754 bits.
func (w *Writer) F64(v float64) *Writer { return w.U64(math.Float64bits(v)) }

// Raw appends bytes verbatim; pair with Reader.Raw and an out-of-band
// length (or trailing position).
func (w *Writer) Raw(b []byte) *Writer {
	w.buf = append(w.buf, b...)
	return w
}

// C128 appends a complex128 as two float64s.
func (w *Writer) C128(v complex128) *Writer {
	return w.F64(real(v)).F64(imag(v))
}

// C128Slice appends a length-prefixed slice of complex128.
func (w *Writer) C128Slice(vs []complex128) *Writer {
	w.U32(uint32(len(vs)))
	for _, v := range vs {
		w.C128(v)
	}
	return w
}

// Reader consumes fixed-width fields from a payload.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps a payload.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decode error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrShort
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U16 reads a uint16 (0 after an error).
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Raw reads n bytes verbatim (nil after an error).
func (r *Reader) Raw(n int) []byte {
	b := r.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// Rest returns all remaining bytes.
func (r *Reader) Rest() []byte { return r.Raw(len(r.buf) - r.off) }

// C128 reads a complex128.
func (r *Reader) C128() complex128 {
	re := r.F64()
	im := r.F64()
	return complex(re, im)
}

// C128Slice reads a length-prefixed slice of complex128.
func (r *Reader) C128Slice() []complex128 {
	n := int(r.U32())
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+16*n > len(r.buf) {
		r.err = ErrShort
		return nil
	}
	out := make([]complex128, n)
	for i := range out {
		out[i] = r.C128()
	}
	return out
}
