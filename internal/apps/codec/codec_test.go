package codec

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestRoundTripScalars(t *testing.T) {
	w := NewWriter(32).U16(7).U32(1 << 20).U64(1 << 40).F64(3.14159)
	r := NewReader(w.Bytes())
	if r.U16() != 7 || r.U32() != 1<<20 || r.U64() != 1<<40 || r.F64() != 3.14159 {
		t.Fatal("scalar round trip failed")
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestRoundTripComplex(t *testing.T) {
	vs := []complex128{1 + 2i, -3.5 + 0i, 0 - 7i}
	w := NewWriter(0).C128Slice(vs)
	got := NewReader(w.Bytes()).C128Slice()
	if len(got) != len(vs) {
		t.Fatalf("len %d", len(got))
	}
	for i := range vs {
		if got[i] != vs[i] {
			t.Fatalf("element %d: %v vs %v", i, got[i], vs[i])
		}
	}
}

func TestShortPayload(t *testing.T) {
	r := NewReader([]byte{1})
	_ = r.U32()
	if !errors.Is(r.Err(), ErrShort) {
		t.Fatalf("err = %v", r.Err())
	}
	// Subsequent reads stay zero without panicking.
	if r.U64() != 0 || r.F64() != 0 {
		t.Fatal("reads after error not zero")
	}
}

func TestShortComplexSlice(t *testing.T) {
	w := NewWriter(0).U32(100) // claims 100 elements, provides none
	r := NewReader(w.Bytes())
	if r.C128Slice() != nil || !errors.Is(r.Err(), ErrShort) {
		t.Fatal("oversized slice claim accepted")
	}
}

func TestEmptySlice(t *testing.T) {
	w := NewWriter(0).C128Slice(nil)
	r := NewReader(w.Bytes())
	if got := r.C128Slice(); len(got) != 0 || r.Err() != nil {
		t.Fatalf("empty slice: %v, %v", got, r.Err())
	}
}

func TestQuickScalarRoundTrip(t *testing.T) {
	f := func(a uint16, b uint32, c uint64, d float64) bool {
		w := NewWriter(0).U16(a).U32(b).U64(c).F64(d)
		r := NewReader(w.Bytes())
		ra, rb, rc, rd := r.U16(), r.U32(), r.U64(), r.F64()
		if r.Err() != nil {
			return false
		}
		// NaN != NaN: compare bit patterns via re-encoding.
		dOK := rd == d || (d != d && rd != rd)
		return ra == a && rb == b && rc == c && dOK
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
