package fft2d

import (
	"math/cmplx"
	"testing"

	"repro/internal/core"
	"repro/internal/dsp/fft"
	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

func randomImage(rows, cols int, seed uint64) [][]complex128 {
	r := rng.New(seed)
	m := make([][]complex128, rows)
	for i := range m {
		m[i] = make([]complex128, cols)
		for j := range m[i] {
			m[i][j] = complex(r.Float64()*2-1, 0)
		}
	}
	return m
}

func clone(m [][]complex128) [][]complex128 {
	out := make([][]complex128, len(m))
	for i := range m {
		out[i] = append([]complex128(nil), m[i]...)
	}
	return out
}

// thesisSetup mirrors §4.1.2: a 4x4 NoC, root at a corner, four workers.
func thesisSetup(t *testing.T, cfg core.Config, img [][]complex128, replicate bool) (*core.Network, *App) {
	t.Helper()
	net, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	grid := cfg.Topo.(*topology.Grid)
	root := grid.ID(0, 0)
	var workers [][]packet.TileID
	if replicate {
		workers = [][]packet.TileID{
			{grid.ID(1, 0), grid.ID(3, 0)},
			{grid.ID(2, 1), grid.ID(0, 3)},
			{grid.ID(1, 2), grid.ID(3, 2)},
			{grid.ID(2, 3), grid.ID(0, 1)},
		}
	} else {
		workers = [][]packet.TileID{
			{grid.ID(1, 0)}, {grid.ID(2, 1)}, {grid.ID(1, 2)}, {grid.ID(3, 3)},
		}
	}
	app, err := Setup(net, root, workers, img)
	if err != nil {
		t.Fatal(err)
	}
	return net, app
}

func matricesEqual(a, b [][]complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if cmplx.Abs(a[i][j]-b[i][j]) > tol {
				return false
			}
		}
	}
	return true
}

func TestDistributedMatchesSerial(t *testing.T) {
	img := randomImage(8, 8, 1)
	want := clone(img)
	if err := fft.Forward2D(want); err != nil {
		t.Fatal(err)
	}
	net, app := thesisSetup(t, core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.5, TTL: core.DefaultTTL,
		MaxRounds: 150, Seed: 2,
	}, img, false)
	res := net.Run()
	if !res.Completed {
		t.Fatalf("FFT2 did not complete: %+v", res)
	}
	got, err := app.Root.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(got, want, 1e-9) {
		t.Fatal("distributed FFT2 differs from serial Forward2D")
	}
}

func TestFloodingLatencyEnvelope(t *testing.T) {
	img := randomImage(8, 8, 3)
	net, _ := thesisSetup(t, core.Config{
		Topo: topology.NewGrid(4, 4), P: 1, TTL: core.DefaultTTL,
		MaxRounds: 100, Seed: 5,
	}, img, false)
	res := net.Run()
	if !res.Completed {
		t.Fatal("incomplete")
	}
	// Four communication phases (rows out, rows back, cols out, cols
	// back) over ≤6-hop paths: flooding must finish well under 30 rounds
	// (the thesis quotes 4-8 round totals for its mapping).
	if res.Rounds > 30 {
		t.Fatalf("flooding FFT2 took %d rounds", res.Rounds)
	}
}

func TestReplicatedWorkersSurviveCrash(t *testing.T) {
	img := randomImage(8, 8, 7)
	want := clone(img)
	if err := fft.Forward2D(want); err != nil {
		t.Fatal(err)
	}
	completed := 0
	const runs = 20
	for seed := uint64(0); seed < runs; seed++ {
		grid := topology.NewGrid(4, 4)
		net, app := thesisSetup(t, core.Config{
			Topo: grid, P: 0.75, TTL: core.DefaultTTL, MaxRounds: 200, Seed: seed,
			Fault: fault.Model{DeadTiles: 1, Protect: []packet.TileID{grid.ID(0, 0)}},
		}, img, true)
		if net.Run().Completed {
			completed++
			got, err := app.Root.Result()
			if err != nil {
				t.Fatal(err)
			}
			if !matricesEqual(got, want, 1e-9) {
				t.Fatalf("seed %d: wrong spectrum under crash", seed)
			}
		}
	}
	if completed < runs*3/4 {
		t.Fatalf("only %d/%d replicated runs completed", completed, runs)
	}
}

func TestRejectsBadInputs(t *testing.T) {
	grid := topology.NewGrid(4, 4)
	mk := func() *core.Network {
		net, err := core.New(core.Config{Topo: grid, P: 0.5, TTL: 5, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	w := [][]packet.TileID{{1}, {2}}
	if _, err := Setup(mk(), 0, w, randomImage(6, 8, 1)); err == nil {
		t.Error("non-power-of-two rows accepted")
	}
	if _, err := Setup(mk(), 0, w, randomImage(8, 6, 1)); err == nil {
		t.Error("non-power-of-two cols accepted")
	}
	ragged := randomImage(4, 4, 1)
	ragged[2] = ragged[2][:2]
	if _, err := Setup(mk(), 0, w, ragged); err == nil {
		t.Error("ragged input accepted")
	}
	if _, err := Setup(mk(), 0, nil, randomImage(4, 4, 1)); err == nil {
		t.Error("zero workers accepted")
	}
	if _, err := Setup(mk(), 0, [][]packet.TileID{{0}}, randomImage(4, 4, 1)); err == nil {
		t.Error("worker on root tile accepted")
	}
	if _, err := Setup(mk(), 0, [][]packet.TileID{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}},
		randomImage(4, 4, 1)); err == nil {
		t.Error("more workers than rows accepted")
	}
}

func TestResultBeforeDoneErrors(t *testing.T) {
	root, err := NewRoot(randomImage(4, 4, 1), [][]packet.TileID{{1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root.Result(); err == nil {
		t.Fatal("Result() before completion did not error")
	}
}

func TestBlockCodecRoundTrip(t *testing.T) {
	vecs := [][]complex128{{1 + 2i, 3}, {4, 5 - 6i}}
	idx, got, err := decodeBlock(encodeBlock(3, vecs))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 3 || !matricesEqual(got, vecs, 0) {
		t.Fatalf("block codec: idx=%d %v", idx, got)
	}
}

func TestBlockCodecRejectsShort(t *testing.T) {
	payload := encodeBlock(0, [][]complex128{{1, 2}})
	if _, _, err := decodeBlock(payload[:len(payload)-4]); err == nil {
		t.Fatal("short block accepted")
	}
}

func TestUnevenBlockSplit(t *testing.T) {
	// 8 rows over 3 workers: blocks of 2/3/3.
	img := randomImage(8, 8, 9)
	want := clone(img)
	if err := fft.Forward2D(want); err != nil {
		t.Fatal(err)
	}
	grid := topology.NewGrid(4, 4)
	net, err := core.New(core.Config{Topo: grid, P: 1, TTL: core.DefaultTTL, MaxRounds: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	app, err := Setup(net, 0, [][]packet.TileID{{5}, {10}, {15}}, img)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Run().Completed {
		t.Fatal("uneven split incomplete")
	}
	got, err := app.Root.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(got, want, 1e-9) {
		t.Fatal("uneven split produced a wrong spectrum")
	}
}
