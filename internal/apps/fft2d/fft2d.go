// Package fft2d implements the thesis' parallel two-dimensional FFT case
// study (§4.1.2): a root IP distributes an image's rows to worker IPs over
// the stochastic NoC, collects the row transforms, redistributes the
// columns, and assembles the full 2-D spectrum. The two communication
// phases ("first, the initial message has to reach all of the leaf nodes,
// and second, the computed results have to come back to the root") are
// exactly the traffic pattern whose latency Fig. 4-4 sweeps.
//
// Workers may be replicated like the π slaves; the root keeps the first
// copy of each block result and ignores the rest.
package fft2d

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dsp/fft"
	"repro/internal/packet"

	"repro/internal/apps/codec"
)

// Message kinds.
const (
	KindRowTask   packet.Kind = 10 // root -> worker: a block of rows
	KindRowResult packet.Kind = 11 // worker -> root: transformed rows
	KindColTask   packet.Kind = 12 // root -> worker: a block of columns
	KindColResult packet.Kind = 13 // worker -> root: transformed columns
)

// encodeBlock serializes (blockIdx, vectorLen, vectors...).
func encodeBlock(blockIdx int, vecs [][]complex128) []byte {
	w := codec.NewWriter(4 + 16*len(vecs)*len(vecs[0]))
	w.U16(uint16(blockIdx))
	w.U16(uint16(len(vecs)))
	w.U32(uint32(len(vecs[0])))
	for _, v := range vecs {
		for _, c := range v {
			w.C128(c)
		}
	}
	return w.Bytes()
}

// decodeBlock inverts encodeBlock.
func decodeBlock(payload []byte) (blockIdx int, vecs [][]complex128, err error) {
	r := codec.NewReader(payload)
	blockIdx = int(r.U16())
	nvec := int(r.U16())
	vlen := int(r.U32())
	if r.Err() != nil {
		return 0, nil, r.Err()
	}
	vecs = make([][]complex128, nvec)
	for i := range vecs {
		vecs[i] = make([]complex128, vlen)
		for j := range vecs[i] {
			vecs[i][j] = r.C128()
		}
	}
	if err := r.Err(); err != nil {
		return 0, nil, err
	}
	return blockIdx, vecs, nil
}

// Root coordinates the distributed transform.
type Root struct {
	workers [][]packet.TileID
	input   [][]complex128
	rows    int
	cols    int

	rowBlocks   map[int][][]complex128 // collected row-phase results
	colBlocks   map[int][][]complex128 // collected column-phase results
	rowsStarted bool
	colsStarted bool
	// DoneRound is the round the last column block arrived in.
	DoneRound int
}

// NewRoot builds a root for input (rows×cols, both powers of two) over
// the given worker replica sets.
func NewRoot(input [][]complex128, workers [][]packet.TileID) (*Root, error) {
	rows := len(input)
	if rows == 0 || !fft.IsPowerOfTwo(rows) {
		return nil, fmt.Errorf("fft2d: rows = %d not a power of two", rows)
	}
	cols := len(input[0])
	for _, row := range input {
		if len(row) != cols {
			return nil, fmt.Errorf("fft2d: ragged input")
		}
	}
	if !fft.IsPowerOfTwo(cols) {
		return nil, fmt.Errorf("fft2d: cols = %d not a power of two", cols)
	}
	if len(workers) == 0 || len(workers) > rows || len(workers) > cols {
		return nil, fmt.Errorf("fft2d: %d workers for %dx%d input", len(workers), rows, cols)
	}
	return &Root{
		workers:   workers,
		input:     input,
		rows:      rows,
		cols:      cols,
		rowBlocks: map[int][][]complex128{},
		colBlocks: map[int][][]complex128{},
	}, nil
}

// Init implements core.Process.
func (r *Root) Init(*core.Ctx) {}

// Round implements core.Process: kick off the row phase once; the column
// phase starts from Receive when the last row block lands.
func (r *Root) Round(ctx *core.Ctx) {
	if r.rowsStarted {
		return
	}
	r.rowsStarted = true
	for b := range r.workers {
		lo, hi := r.blockRange(b, r.rows)
		r.sendToReplicas(ctx, b, KindRowTask, r.input[lo:hi])
	}
}

func (r *Root) blockRange(b, total int) (lo, hi int) {
	n := len(r.workers)
	return b * total / n, (b + 1) * total / n
}

func (r *Root) sendToReplicas(ctx *core.Ctx, blockIdx int, kind packet.Kind, vecs [][]complex128) {
	payload := encodeBlock(blockIdx, vecs)
	for _, tile := range r.workers[blockIdx] {
		ctx.Send(tile, kind, payload)
	}
}

// Receive implements core.Receiver: collect transformed blocks.
func (r *Root) Receive(ctx *core.Ctx, p *packet.Packet) {
	switch p.Kind {
	case KindRowResult:
		idx, vecs, err := decodeBlock(p.Payload)
		if err != nil || idx >= len(r.workers) {
			return
		}
		if _, dup := r.rowBlocks[idx]; dup {
			return
		}
		r.rowBlocks[idx] = vecs
		if len(r.rowBlocks) == len(r.workers) && !r.colsStarted {
			r.startColumnPhase(ctx)
		}
	case KindColResult:
		idx, vecs, err := decodeBlock(p.Payload)
		if err != nil || idx >= len(r.workers) {
			return
		}
		if _, dup := r.colBlocks[idx]; dup {
			return
		}
		r.colBlocks[idx] = vecs
		if len(r.colBlocks) == len(r.workers) {
			r.DoneRound = ctx.Round()
		}
	}
}

// startColumnPhase transposes the row-transformed matrix and ships column
// blocks out.
func (r *Root) startColumnPhase(ctx *core.Ctx) {
	r.colsStarted = true
	rowXform := r.assembleRows()
	for b := range r.workers {
		lo, hi := r.blockRange(b, r.cols)
		cols := make([][]complex128, hi-lo)
		for c := lo; c < hi; c++ {
			col := make([]complex128, r.rows)
			for i := 0; i < r.rows; i++ {
				col[i] = rowXform[i][c]
			}
			cols[c-lo] = col
		}
		r.sendToReplicas(ctx, b, KindColTask, cols)
	}
}

// assembleRows stitches the collected row blocks back into a matrix.
func (r *Root) assembleRows() [][]complex128 {
	out := make([][]complex128, 0, r.rows)
	for b := 0; b < len(r.workers); b++ {
		out = append(out, r.rowBlocks[b]...)
	}
	return out
}

// Done implements core.Completer.
func (r *Root) Done() bool { return len(r.colBlocks) == len(r.workers) }

// Result returns the assembled 2-D spectrum. Calling it before Done is an
// error.
func (r *Root) Result() ([][]complex128, error) {
	if !r.Done() {
		return nil, fmt.Errorf("fft2d: %d/%d column blocks collected",
			len(r.colBlocks), len(r.workers))
	}
	out := make([][]complex128, r.rows)
	for i := range out {
		out[i] = make([]complex128, r.cols)
	}
	for b := 0; b < len(r.workers); b++ {
		lo, _ := r.blockRange(b, r.cols)
		for j, col := range r.colBlocks[b] {
			for i := 0; i < r.rows; i++ {
				out[i][lo+j] = col[i]
			}
		}
	}
	return out, nil
}

// Worker transforms whatever block it is handed.
type Worker struct {
	root packet.TileID
}

// NewWorker returns a worker reporting to root.
func NewWorker(root packet.TileID) *Worker { return &Worker{root: root} }

// Init implements core.Process.
func (w *Worker) Init(*core.Ctx) {}

// Round implements core.Process (reactive only).
func (w *Worker) Round(*core.Ctx) {}

// Receive implements core.Receiver: FFT each vector of the block and send
// the result back.
func (w *Worker) Receive(ctx *core.Ctx, p *packet.Packet) {
	var replyKind packet.Kind
	switch p.Kind {
	case KindRowTask:
		replyKind = KindRowResult
	case KindColTask:
		replyKind = KindColResult
	default:
		return
	}
	idx, vecs, err := decodeBlock(p.Payload)
	if err != nil {
		return
	}
	for _, v := range vecs {
		if err := fft.Forward(v); err != nil {
			return // non-power-of-two block: drop (root validated sizes)
		}
	}
	ctx.Send(w.root, replyKind, encodeBlock(idx, vecs))
}

// App wires a complete FFT2 instance.
type App struct {
	Root     *Root
	RootTile packet.TileID
}

// Setup attaches a root and its workers to net.
func Setup(net *core.Network, rootTile packet.TileID, workers [][]packet.TileID, input [][]complex128) (*App, error) {
	root, err := NewRoot(input, workers)
	if err != nil {
		return nil, err
	}
	net.Attach(rootTile, root)
	for _, tiles := range workers {
		for _, tile := range tiles {
			if tile == rootTile {
				return nil, fmt.Errorf("fft2d: worker collides with root tile %d", rootTile)
			}
			net.Attach(tile, NewWorker(rootTile))
		}
	}
	return &App{Root: root, RootTile: rootTile}, nil
}
