package psat

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/sat"
	"repro/internal/topology"
)

func workerTiles(grid *topology.Grid, master packet.TileID, n int) []packet.TileID {
	var out []packet.TileID
	for i := 0; i < grid.Tiles() && len(out) < n; i++ {
		if packet.TileID(i) != master {
			out = append(out, packet.TileID(i))
		}
	}
	return out
}

func solveDistributed(t *testing.T, f *sat.Formula, cfg core.Config, splitVars int) (*sat.Result, *Master, core.Result) {
	t.Helper()
	grid := cfg.Topo.(*topology.Grid)
	master := grid.ID(1, 1)
	cfg.Fault.Protect = append(cfg.Fault.Protect, master)
	net, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	app, err := Setup(net, master, workerTiles(grid, master, 6), f, splitVars)
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run()
	if !res.Completed {
		t.Fatalf("distributed solve incomplete: %d cubes open after %d rounds",
			len(app.Master.unresolved), res.Rounds)
	}
	verdict, err := app.Master.Result()
	if err != nil {
		t.Fatal(err)
	}
	return verdict, app.Master, res
}

func TestDistributedMatchesSerialSAT(t *testing.T) {
	f := sat.Random3SAT(18, 36, rng.New(3)) // ratio 2: satisfiable
	serial, err := sat.Solve(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	verdict, _, _ := solveDistributed(t, f, core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.75, TTL: core.DefaultTTL,
		MaxRounds: 500, Seed: 1,
	}, 3)
	if verdict.Sat != serial.Sat {
		t.Fatalf("distributed %v != serial %v", verdict.Sat, serial.Sat)
	}
	if verdict.Sat && !f.Satisfies(verdict.Model) {
		t.Fatal("distributed model does not satisfy the formula")
	}
}

func TestDistributedMatchesSerialUNSAT(t *testing.T) {
	f := sat.Pigeonhole(3) // unsatisfiable
	verdict, _, _ := solveDistributed(t, f, core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.75, TTL: core.DefaultTTL,
		MaxRounds: 500, Seed: 2,
	}, 2)
	if verdict.Sat {
		t.Fatal("distributed solver declared PHP(4,3) SAT")
	}
}

func TestSurvivesDeadWorkers(t *testing.T) {
	// Two dead tiles may take out workers holding cubes; reassignment
	// must recover the verdict.
	f := sat.Pigeonhole(3)
	verdict, m, _ := solveDistributed(t, f, core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.75, TTL: core.DefaultTTL,
		MaxRounds: 2000, Seed: 5,
		Fault: fault.Model{DeadTiles: 2},
	}, 2)
	if verdict.Sat {
		t.Fatal("wrong verdict under crashes")
	}
	_ = m // reassignments depend on whether a loaded worker died
}

func TestReassignmentFiresWhenWorkerDies(t *testing.T) {
	// Force the situation: kill all but one worker so some cube
	// assignments are certainly lost.
	f := sat.Pigeonhole(2)
	grid := topology.NewGrid(3, 3)
	master := grid.ID(1, 1)
	// Workers on tiles 0..3 (skipping master); kill tiles 0 and 2.
	var protect []packet.TileID
	for i := 0; i < grid.Tiles(); i++ {
		if i != 0 && i != 2 {
			protect = append(protect, packet.TileID(i))
		}
	}
	net, err := core.New(core.Config{
		Topo: grid, P: 0.75, TTL: core.DefaultTTL, MaxRounds: 2000, Seed: 3,
		Fault: fault.Model{DeadTiles: 2, Protect: protect},
	})
	if err != nil {
		t.Fatal(err)
	}
	app, err := Setup(net, master, []packet.TileID{0, 2, 3, 5}, f, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run()
	if !res.Completed {
		t.Fatalf("solve wedged with dead workers after %d rounds", res.Rounds)
	}
	if app.Master.Reassignments == 0 {
		t.Fatal("no reassignments despite dead workers holding cubes")
	}
	verdict, err := app.Master.Result()
	if err != nil {
		t.Fatal(err)
	}
	if verdict.Sat {
		t.Fatal("wrong verdict")
	}
}

func TestSurvivesUpsets(t *testing.T) {
	f := sat.Random3SAT(15, 30, rng.New(9))
	serial, err := sat.Solve(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	verdict, _, _ := solveDistributed(t, f, core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.75, TTL: core.DefaultTTL,
		MaxRounds: 2000, Seed: 7,
		Fault: fault.Model{PUpset: 0.4, LiteralUpsets: true},
	}, 3)
	if verdict.Sat != serial.Sat {
		t.Fatalf("verdict flipped under upsets: %v vs %v", verdict.Sat, serial.Sat)
	}
	if verdict.Sat && !f.Satisfies(verdict.Model) {
		t.Fatal("model corrupted by upsets survived CRC + end-to-end check")
	}
}

func TestEarlyTerminationOnSAT(t *testing.T) {
	// A trivially satisfiable formula: the first SAT verdict completes
	// the app even though other cubes may still be outstanding.
	f := &sat.Formula{NumVars: 6, Clauses: []sat.Clause{{1, 2}, {3, 4}, {5, 6}}}
	verdict, m, _ := solveDistributed(t, f, core.Config{
		Topo: topology.NewGrid(4, 4), P: 1, TTL: core.DefaultTTL,
		MaxRounds: 200, Seed: 11,
	}, 4) // 16 cubes
	if !verdict.Sat {
		t.Fatal("satisfiable formula declared UNSAT")
	}
	if !f.Satisfies(verdict.Model) {
		t.Fatal("bad model")
	}
	_ = m
}

func TestSetupValidation(t *testing.T) {
	grid := topology.NewGrid(3, 3)
	mk := func() *core.Network {
		net, err := core.New(core.Config{Topo: grid, P: 0.5, TTL: 5, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	f := &sat.Formula{NumVars: 2, Clauses: []sat.Clause{{1, 2}}}
	if _, err := Setup(mk(), 0, nil, f, 1); err == nil {
		t.Error("no workers accepted")
	}
	if _, err := Setup(mk(), 0, []packet.TileID{0}, f, 1); err == nil {
		t.Error("worker on master tile accepted")
	}
	if _, err := Setup(mk(), 0, []packet.TileID{1}, f, 5); err == nil {
		t.Error("splitVars beyond NumVars accepted")
	}
	bad := &sat.Formula{NumVars: 1, Clauses: []sat.Clause{{}}}
	if _, err := Setup(mk(), 0, []packet.TileID{1}, bad, 0); err == nil {
		t.Error("invalid formula accepted")
	}
}

func TestResultBeforeDoneErrors(t *testing.T) {
	f := &sat.Formula{NumVars: 1, Clauses: []sat.Clause{{1}}}
	m, err := NewMaster(f, []packet.TileID{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Result(); err == nil {
		t.Fatal("Result before completion did not error")
	}
}

func TestSplitVarsZeroSingleCube(t *testing.T) {
	f := &sat.Formula{NumVars: 3, Clauses: []sat.Clause{{1}, {-1, 2}, {-2, 3}}}
	verdict, _, _ := solveDistributed(t, f, core.Config{
		Topo: topology.NewGrid(3, 3), P: 1, TTL: core.DefaultTTL,
		MaxRounds: 100, Seed: 13,
	}, 0)
	if !verdict.Sat || !f.Satisfies(verdict.Model) {
		t.Fatalf("single-cube solve failed: %+v", verdict)
	}
}
