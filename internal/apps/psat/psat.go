// Package psat is the parallel SAT solver the thesis names among the
// applications of stochastic communication (Ch. 4): a cube-and-conquer
// master/worker scheme on the NoC. The master splits the search space
// over the first k variables into 2^k cubes (assumption sets), farms the
// cubes out to worker IPs over the gossip network, and combines the
// verdicts — SAT the moment any worker finds a model (with early
// termination), UNSAT once every cube is refuted.
//
// The formula itself is configured into the worker IPs at design time
// (like firmware); only cubes and verdicts travel the network. Fault
// tolerance is end-to-end: the master re-issues cubes that stay
// unanswered — to a different worker — so crashed workers and lost
// messages delay but do not wedge the solve.
package psat

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/sat"

	"repro/internal/apps/codec"
)

// Message kinds.
const (
	KindCube   packet.Kind = 50 // master -> worker: assumption cube
	KindResult packet.Kind = 51 // worker -> master: verdict (+model)
)

// reassignAfter is how many rounds a cube may stay unanswered before the
// master re-issues it to the next worker.
const reassignAfter = 20

// encodeLits writes a length-prefixed literal list.
func encodeLits(w *codec.Writer, lits []sat.Lit) {
	w.U16(uint16(len(lits)))
	for _, l := range lits {
		w.U32(uint32(int32(l)))
	}
}

func decodeLits(r *codec.Reader) []sat.Lit {
	n := int(r.U16())
	out := make([]sat.Lit, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, sat.Lit(int32(r.U32())))
	}
	return out
}

// Master coordinates the solve.
type Master struct {
	formula *sat.Formula
	workers []packet.TileID
	cubes   [][]sat.Lit

	unresolved map[int]int // cube -> round of last issue
	nextWorker int
	started    bool
	sat        bool
	model      sat.Assignment
	done       bool
	// Reassignments counts re-issued cubes (fault-tolerance work).
	Reassignments int
	// DoneRound is when the verdict was reached.
	DoneRound int
}

// NewMaster builds a master splitting on the first splitVars variables.
func NewMaster(f *sat.Formula, workers []packet.TileID, splitVars int) (*Master, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if len(workers) == 0 {
		return nil, errors.New("psat: no workers")
	}
	if splitVars < 0 || splitVars > f.NumVars || splitVars > 16 {
		return nil, fmt.Errorf("psat: splitVars %d out of range", splitVars)
	}
	m := &Master{formula: f, workers: workers, unresolved: map[int]int{}}
	for bits := 0; bits < 1<<uint(splitVars); bits++ {
		var cube []sat.Lit
		for v := 1; v <= splitVars; v++ {
			l := sat.Lit(v)
			if bits>>(uint(v)-1)&1 == 0 {
				l = -l
			}
			cube = append(cube, l)
		}
		m.cubes = append(m.cubes, cube)
	}
	return m, nil
}

// Init implements core.Process.
func (m *Master) Init(*core.Ctx) {}

// Round implements core.Process: issue all cubes on round one, then
// re-issue stale ones.
func (m *Master) Round(ctx *core.Ctx) {
	if m.done {
		return
	}
	if !m.started {
		m.started = true
		for idx := range m.cubes {
			m.issue(ctx, idx)
		}
		return
	}
	for idx, since := range m.unresolved {
		if ctx.Round()-since >= reassignAfter {
			m.Reassignments++
			m.issue(ctx, idx)
		}
	}
}

func (m *Master) issue(ctx *core.Ctx, idx int) {
	w := codec.NewWriter(4 + 4*len(m.cubes[idx]))
	w.U16(uint16(idx))
	encodeLits(w, m.cubes[idx])
	ctx.Send(m.workers[m.nextWorker], KindCube, w.Bytes())
	m.nextWorker = (m.nextWorker + 1) % len(m.workers)
	m.unresolved[idx] = ctx.Round()
}

// Receive implements core.Receiver: collect verdicts.
func (m *Master) Receive(ctx *core.Ctx, p *packet.Packet) {
	if p.Kind != KindResult || m.done {
		return
	}
	r := codec.NewReader(p.Payload)
	idx := int(r.U16())
	satFlag := r.U16() == 1
	model := decodeLits(r)
	if r.Err() != nil || idx >= len(m.cubes) {
		return
	}
	if _, open := m.unresolved[idx]; !open {
		return // stale duplicate (reassignment raced the original)
	}
	if satFlag {
		a := sat.Assignment{}
		for _, l := range model {
			a[l.Var()] = l > 0
		}
		// End-to-end verification: never trust a verdict blindly.
		if !m.formula.Satisfies(a) {
			return // corrupted or bogus model; the cube stays unresolved
		}
		m.sat = true
		m.model = a
		m.done = true
		m.DoneRound = ctx.Round()
		return
	}
	delete(m.unresolved, idx)
	if len(m.unresolved) == 0 {
		m.done = true
		m.DoneRound = ctx.Round()
	}
}

// Done implements core.Completer.
func (m *Master) Done() bool { return m.done }

// Result returns the combined verdict. Calling it before Done errors.
func (m *Master) Result() (*sat.Result, error) {
	if !m.done {
		return nil, fmt.Errorf("psat: %d cubes unresolved", len(m.unresolved))
	}
	return &sat.Result{Sat: m.sat, Model: m.model}, nil
}

// Worker solves cubes against its configured formula.
type Worker struct {
	formula *sat.Formula
	master  packet.TileID
	// Solved counts cubes this worker resolved.
	Solved int
}

// NewWorker returns a worker for formula f reporting to master.
func NewWorker(f *sat.Formula, master packet.TileID) *Worker {
	return &Worker{formula: f, master: master}
}

// Init implements core.Process.
func (w *Worker) Init(*core.Ctx) {}

// Round implements core.Process (reactive only).
func (w *Worker) Round(*core.Ctx) {}

// Receive implements core.Receiver: solve and reply.
func (w *Worker) Receive(ctx *core.Ctx, p *packet.Packet) {
	if p.Kind != KindCube {
		return
	}
	r := codec.NewReader(p.Payload)
	idx := r.U16()
	cube := decodeLits(r)
	if r.Err() != nil {
		return
	}
	res, err := sat.Solve(w.formula, cube)
	if err != nil {
		return
	}
	w.Solved++
	out := codec.NewWriter(8)
	out.U16(idx)
	if res.Sat {
		out.U16(1)
		lits := make([]sat.Lit, 0, len(res.Model))
		for v := 1; v <= w.formula.NumVars; v++ {
			if val, ok := res.Model[v]; ok {
				l := sat.Lit(v)
				if !val {
					l = -l
				}
				lits = append(lits, l)
			}
		}
		encodeLits(out, lits)
	} else {
		out.U16(0)
		encodeLits(out, nil)
	}
	ctx.Send(w.master, KindResult, out.Bytes())
}

// App wires a complete distributed solve.
type App struct {
	Master     *Master
	MasterTile packet.TileID
}

// Setup attaches a master and one worker per workerTiles entry.
func Setup(net *core.Network, masterTile packet.TileID, workerTiles []packet.TileID,
	f *sat.Formula, splitVars int) (*App, error) {
	m, err := NewMaster(f, workerTiles, splitVars)
	if err != nil {
		return nil, err
	}
	net.Attach(masterTile, m)
	for _, tile := range workerTiles {
		if tile == masterTile {
			return nil, fmt.Errorf("psat: worker collides with master tile %d", masterTile)
		}
		net.Attach(tile, NewWorker(f, masterTile))
	}
	return &App{Master: m, MasterTile: masterTile}, nil
}
