package sensors

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/topology"
)

func build(t *testing.T, cfg core.Config, interval, samples int) (*core.Network, *Monitor, *Field) {
	t.Helper()
	grid := cfg.Topo.(*topology.Grid)
	net, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	field := &Field{Base: 20, Amp: 5, Period: 40}
	monitorTile := grid.ID(0, 0)
	mon, err := NewMonitor(6)
	if err != nil {
		t.Fatal(err)
	}
	net.Attach(monitorTile, mon)
	sensorTiles := []packet.TileID{
		grid.ID(3, 0), grid.ID(0, 3), grid.ID(3, 3),
		grid.ID(2, 1), grid.ID(1, 2), grid.ID(2, 2),
	}
	for i, tile := range sensorTiles {
		net.Attach(tile, &Sensor{
			Index: i, Monitor: monitorTile, Field: field,
			Interval: interval, Samples: samples,
		})
	}
	return net, mon, field
}

func TestAcquisitionCleanNetwork(t *testing.T) {
	net, mon, field := build(t, core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.75, TTL: 10, MaxRounds: 100, Seed: 1,
	}, 5, 4)
	for i := 0; i < 60; i++ {
		net.Step()
	}
	if mon.Coverage() != 1 {
		t.Fatalf("coverage = %v", mon.Coverage())
	}
	// Values must be genuine field samples.
	for i := 0; i < 6; i++ {
		r, ok := mon.Latest(i)
		if !ok {
			t.Fatalf("sensor %d missing", i)
		}
		if want := field.At(i, r.SampledAt); math.Abs(r.Value-want) > 1e-12 {
			t.Fatalf("sensor %d reading %v != field %v", i, r.Value, want)
		}
		if r.ReceivedAt < r.SampledAt {
			t.Fatalf("sensor %d received before sampled", i)
		}
	}
	if s := mon.MaxStaleness(60); s < 0 || s > 60 {
		t.Fatalf("staleness = %d", s)
	}
}

func TestFreshestWins(t *testing.T) {
	mon, err := NewMonitor(2)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(idx, round int, v float64) *packet.Packet {
		w := make([]byte, 0, 16)
		w = append(w, byte(idx>>8), byte(idx))
		w = append(w, byte(round>>24), byte(round>>16), byte(round>>8), byte(round))
		bits := math.Float64bits(v)
		for s := 56; s >= 0; s -= 8 {
			w = append(w, byte(bits>>uint(s)))
		}
		return &packet.Packet{Kind: KindReading, Payload: w}
	}
	ctx := &core.Ctx{}
	mon.Receive(ctx, mk(0, 10, 1.5))
	mon.Receive(ctx, mk(0, 5, 9.9)) // stale: must not overwrite
	r, ok := mon.Latest(0)
	if !ok || r.Value != 1.5 || r.SampledAt != 10 {
		t.Fatalf("stale reading overwrote fresh one: %+v", r)
	}
	if mon.Received != 1 {
		t.Fatalf("Received = %d", mon.Received)
	}
}

func TestLossToleranceUnderOverflow(t *testing.T) {
	// 50% drops: coverage still reaches 1 because sensors keep sampling
	// — the "non-critical sensors" regime.
	net, mon, _ := build(t, core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.75, TTL: 10, MaxRounds: 300, Seed: 2,
		Fault: fault.Model{POverflow: 0.5},
	}, 4, 0)
	for i := 0; i < 120; i++ {
		net.Step()
	}
	if mon.Coverage() != 1 {
		t.Fatalf("coverage under 50%% drops = %v", mon.Coverage())
	}
	// Staleness bounded: a fresh reading lands within a few sampling
	// intervals of the newest sample.
	if s := mon.MaxStaleness(120); s < 0 || s > 60 {
		t.Fatalf("staleness = %d", s)
	}
}

func TestDeadSensorDetectable(t *testing.T) {
	grid := topology.NewGrid(4, 4)
	var protect []packet.TileID
	for i := 0; i < grid.Tiles(); i++ {
		if packet.TileID(i) != grid.ID(3, 3) {
			protect = append(protect, packet.TileID(i))
		}
	}
	net, mon, _ := build(t, core.Config{
		Topo: grid, P: 0.75, TTL: 10, MaxRounds: 200, Seed: 3,
		Fault: fault.Model{DeadTiles: 1, Protect: protect},
	}, 4, 0)
	for i := 0; i < 80; i++ {
		net.Step()
	}
	// Sensor 2 sits on the dead tile (3,3): no readings, staleness -1.
	if _, ok := mon.Latest(2); ok {
		t.Fatal("dead sensor produced readings")
	}
	if mon.MaxStaleness(80) != -1 {
		t.Fatal("missing sensor not flagged by MaxStaleness")
	}
	// Every live sensor still covered.
	for _, i := range []int{0, 1, 3, 4, 5} {
		if _, ok := mon.Latest(i); !ok {
			t.Fatalf("live sensor %d missing", i)
		}
	}
}

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(0); err == nil {
		t.Fatal("zero sensors accepted")
	}
	mon, _ := NewMonitor(2)
	mon.Receive(&core.Ctx{}, &packet.Packet{Kind: 99})
	mon.Receive(&core.Ctx{}, &packet.Packet{Kind: KindReading, Payload: []byte{1}})
	if mon.Received != 0 {
		t.Fatal("garbage accepted")
	}
}

func TestSamplingInterval(t *testing.T) {
	// Interval 10, samples 3: exactly 3 messages created.
	grid := topology.NewGrid(2, 1)
	net, err := core.New(core.Config{Topo: grid, P: 1, TTL: 5, MaxRounds: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	field := &Field{Base: 1, Amp: 0, Period: 10}
	mon, _ := NewMonitor(1)
	net.Attach(0, mon)
	net.Attach(1, &Sensor{Index: 0, Monitor: 0, Field: field, Interval: 10, Samples: 3})
	for i := 0; i < 50; i++ {
		net.Step()
	}
	if mon.Received != 3 {
		t.Fatalf("monitor received %d readings, want 3", mon.Received)
	}
}
