// Package sensors implements the third application class the thesis
// names for stochastic communication: "periodic data acquisition from
// non-critical sensors" (Ch. 4). An array of sensor IPs sample a slowly
// varying physical quantity and broadcast readings every few rounds; a
// monitor IP maintains the freshest reading per sensor. "Non-critical"
// is the operative word: readings are idempotent state, so lost samples
// merely age the monitor's view — exactly the loss-tolerant,
// steady-throughput regime gossip protocols fit best (§1.2).
package sensors

import (
	"errors"
	"math"

	"repro/internal/core"
	"repro/internal/packet"

	"repro/internal/apps/codec"
)

// KindReading tags sensor samples.
const KindReading packet.Kind = 60

// Field is the synthetic physical quantity: a smooth spatial-temporal
// field the sensors sample, so tests can compare readings to ground
// truth.
type Field struct {
	// Base is the mean level; Amp the oscillation amplitude; Period the
	// temporal period in rounds.
	Base, Amp float64
	Period    int
}

// At returns the field value at sensor index i and round r.
func (f *Field) At(i, r int) float64 {
	phase := 2 * math.Pi * (float64(r)/float64(f.Period) + 0.13*float64(i))
	return f.Base + f.Amp*math.Sin(phase)
}

// Sensor periodically broadcasts its reading.
type Sensor struct {
	Index   int
	Monitor packet.TileID
	Field   *Field
	// Interval is the sampling period in rounds (>= 1).
	Interval int
	// Samples bounds how many readings to take (0 = forever).
	Samples int
	taken   int
}

// Init implements core.Process.
func (s *Sensor) Init(*core.Ctx) {}

// Round implements core.Process.
func (s *Sensor) Round(ctx *core.Ctx) {
	if s.Samples > 0 && s.taken >= s.Samples {
		return
	}
	iv := s.Interval
	if iv < 1 {
		iv = 1
	}
	if (ctx.Round()-1)%iv != 0 {
		return
	}
	v := s.Field.At(s.Index, ctx.Round())
	payload := codec.NewWriter(16).
		U16(uint16(s.Index)).
		U32(uint32(ctx.Round())).
		F64(v).
		Bytes()
	ctx.Send(s.Monitor, KindReading, payload)
	s.taken++
}

// Reading is one sample as seen by the monitor.
type Reading struct {
	Sensor     int
	SampledAt  int // round the sensor measured
	ReceivedAt int // round the monitor learned it
	Value      float64
}

// Monitor keeps the freshest reading per sensor.
type Monitor struct {
	Sensors int
	latest  map[int]Reading
	// Received counts total (non-stale) readings accepted.
	Received int
}

// NewMonitor returns a monitor for the given sensor count.
func NewMonitor(sensors int) (*Monitor, error) {
	if sensors <= 0 {
		return nil, errors.New("sensors: non-positive sensor count")
	}
	return &Monitor{Sensors: sensors, latest: map[int]Reading{}}, nil
}

// Init implements core.Process.
func (m *Monitor) Init(*core.Ctx) {}

// Round implements core.Process (reactive only).
func (m *Monitor) Round(*core.Ctx) {}

// Receive implements core.Receiver: keep the freshest sample per sensor;
// out-of-order stale samples are ignored (gossip does not guarantee
// ordering).
func (m *Monitor) Receive(ctx *core.Ctx, p *packet.Packet) {
	if p.Kind != KindReading {
		return
	}
	r := codec.NewReader(p.Payload)
	idx := int(r.U16())
	sampledAt := int(r.U32())
	value := r.F64()
	if r.Err() != nil || idx >= m.Sensors {
		return
	}
	if cur, ok := m.latest[idx]; ok && cur.SampledAt >= sampledAt {
		return // stale
	}
	m.latest[idx] = Reading{
		Sensor: idx, SampledAt: sampledAt, ReceivedAt: ctx.Round(), Value: value,
	}
	m.Received++
}

// Latest returns the freshest reading for sensor i, if any.
func (m *Monitor) Latest(i int) (Reading, bool) {
	r, ok := m.latest[i]
	return r, ok
}

// Coverage returns the fraction of sensors with at least one reading.
func (m *Monitor) Coverage() float64 {
	return float64(len(m.latest)) / float64(m.Sensors)
}

// MaxStaleness returns, at round `now`, the largest age (now − SampledAt)
// over all sensors with readings, or -1 if any sensor has none.
func (m *Monitor) MaxStaleness(now int) int {
	worst := 0
	for i := 0; i < m.Sensors; i++ {
		r, ok := m.latest[i]
		if !ok {
			return -1
		}
		if age := now - r.SampledAt; age > worst {
			worst = age
		}
	}
	return worst
}
