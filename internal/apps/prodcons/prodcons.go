// Package prodcons implements the thesis' introductory Producer–Consumer
// example (§3.2.1, Fig. 3-3): a Producer on one tile of a 4×4 NoC streams
// messages to a Consumer on another tile without knowing where the
// Consumer is; the gossip layer finds it w.h.p.
package prodcons

import (
	"repro/internal/core"
	"repro/internal/packet"

	"repro/internal/apps/codec"
)

// KindData tags Producer payload messages.
const KindData packet.Kind = 20

// Producer emits Count messages, one per round, each carrying a sequence
// number.
type Producer struct {
	Dst   packet.TileID
	Count int
	sent  int
}

// Init implements core.Process.
func (p *Producer) Init(*core.Ctx) {}

// Round implements core.Process.
func (p *Producer) Round(ctx *core.Ctx) {
	if p.sent < p.Count {
		payload := codec.NewWriter(4).U32(uint32(p.sent)).Bytes()
		ctx.Send(p.Dst, KindData, payload)
		p.sent++
	}
}

// Consumer records the sequence numbers it receives and the round each
// first arrived in.
type Consumer struct {
	Expect int
	// GotRound[seq] is the arrival round of sequence number seq.
	GotRound map[int]int
}

// NewConsumer returns a Consumer expecting expect messages.
func NewConsumer(expect int) *Consumer {
	return &Consumer{Expect: expect, GotRound: map[int]int{}}
}

// Init implements core.Process.
func (c *Consumer) Init(*core.Ctx) {}

// Round implements core.Process (reactive only).
func (c *Consumer) Round(*core.Ctx) {}

// Receive implements core.Receiver.
func (c *Consumer) Receive(ctx *core.Ctx, p *packet.Packet) {
	if p.Kind != KindData {
		return
	}
	r := codec.NewReader(p.Payload)
	seq := int(r.U32())
	if r.Err() != nil {
		return
	}
	if _, dup := c.GotRound[seq]; !dup {
		c.GotRound[seq] = ctx.Round()
	}
}

// Done implements core.Completer.
func (c *Consumer) Done() bool { return len(c.GotRound) >= c.Expect }

// Received returns how many distinct messages arrived.
func (c *Consumer) Received() int { return len(c.GotRound) }

// Loss returns the fraction of expected messages that never arrived.
func (c *Consumer) Loss() float64 {
	if c.Expect == 0 {
		return 0
	}
	return 1 - float64(len(c.GotRound))/float64(c.Expect)
}
