package prodcons

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/topology"
)

// The thesis example: Producer on (paper) tile 6, Consumer on tile 12 of
// a 4x4 grid; 0-based that is tiles 5 and 11.
func setup(t *testing.T, cfg core.Config, count int) (*core.Network, *Consumer) {
	t.Helper()
	net, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cons := NewConsumer(count)
	net.Attach(5, &Producer{Dst: 11, Count: count})
	net.Attach(11, cons)
	return net, cons
}

func TestStreamDelivered(t *testing.T) {
	net, cons := setup(t, core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.5, TTL: core.DefaultTTL,
		MaxRounds: 120, Seed: 1,
	}, 10)
	res := net.Run()
	if !res.Completed {
		t.Fatalf("stream incomplete: got %d/10", cons.Received())
	}
	if cons.Loss() != 0 {
		t.Fatalf("loss = %v", cons.Loss())
	}
}

func TestFloodingDeliveryAtDistance(t *testing.T) {
	net, cons := setup(t, core.Config{
		Topo: topology.NewGrid(4, 4), P: 1, TTL: core.DefaultTTL,
		MaxRounds: 60, Seed: 2,
	}, 1)
	if !net.Run().Completed {
		t.Fatal("incomplete")
	}
	// Producer sends in round 1; Manhattan(5, 11) = 3, so arrival in
	// round 3 — exactly the Fig. 3-3 walkthrough ("At the third gossip
	// round, the Consumer finally receives the packet").
	if got := cons.GotRound[0]; got != 3 {
		t.Fatalf("first message arrived in round %d, want 3", got)
	}
}

func TestSurvivesUpsets(t *testing.T) {
	net, cons := setup(t, core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.75, TTL: core.DefaultTTL,
		MaxRounds: 300, Seed: 3,
		Fault: fault.Model{PUpset: 0.5, LiteralUpsets: true},
	}, 5)
	if !net.Run().Completed {
		t.Fatalf("50%% upsets defeated the stream: %d/5", cons.Received())
	}
}

func TestConsumerIgnoresOtherKinds(t *testing.T) {
	cons := NewConsumer(1)
	cons.Receive(nil, &packet.Packet{Kind: 99, Payload: []byte{0, 0, 0, 0}})
	if cons.Received() != 0 {
		t.Fatal("foreign kind accepted")
	}
}

func TestLossAccounting(t *testing.T) {
	cons := NewConsumer(4)
	if cons.Loss() != 1 {
		t.Fatalf("initial loss = %v", cons.Loss())
	}
	cons.GotRound[0] = 1
	cons.GotRound[1] = 2
	if cons.Loss() != 0.5 {
		t.Fatalf("loss = %v", cons.Loss())
	}
	empty := NewConsumer(0)
	if empty.Loss() != 0 {
		t.Fatal("zero-expectation loss not 0")
	}
}
