// Package beamform implements the acoustic delay-and-sum beamforming
// application the thesis uses to compare on-chip diversity architectures
// (Chapter 5, after Zhang et al. [42]): an array of sensor IPs sample a
// plane wave with per-sensor propagation delays and stream their blocks
// to an aggregator IP, which time-aligns and sums them. Coherent summing
// reinforces the source by N while incoherent noise grows only by √N —
// the array gain the aggregator verifies.
//
// For the NoC experiments the interesting part is the traffic: an
// all-to-one streaming pattern with block-sized messages, spread across
// clusters in the hierarchical architectures.
package beamform

import (
	"errors"
	"fmt"

	"repro/internal/audio/signal"
	"repro/internal/core"
	"repro/internal/packet"

	"repro/internal/apps/codec"
)

// KindBlock tags sensor sample blocks.
const KindBlock packet.Kind = 40

// Sensor is one microphone IP: it samples the source with its own
// propagation delay and streams blocks to the aggregator.
type Sensor struct {
	Index      int
	DelaySamp  int
	Aggregator packet.TileID
	Src        *signal.Synth
	// SelfNoise is the amplitude of the sensor's own (independent)
	// front-end noise; it sums incoherently at the aggregator.
	SelfNoise float64
	BlockLen  int
	Blocks    int
	// Pace is the number of rounds between consecutive blocks (a real
	// array samples in real time); 0 or 1 streams one block per round.
	Pace int
	sent int
}

// Init implements core.Process.
func (s *Sensor) Init(*core.Ctx) {}

// Round implements core.Process: one block per round.
func (s *Sensor) Round(ctx *core.Ctx) {
	if s.sent >= s.Blocks {
		return
	}
	if s.Pace > 1 && ctx.Round() < 1+s.sent*s.Pace {
		return // hold until the block's real-time slot
	}
	// The wavefront reaches this sensor DelaySamp samples late
	// (r_i(t) = src(t − d_i)); the sensor applies the steering advance
	// before transmission by reading its own timeline at t + d_i, so the
	// wave delay cancels exactly: aligned_i(bB + j) = src(bB + j). Only
	// the sensor's private front-end noise remains at shifted positions,
	// which is what makes it sum incoherently downstream.
	samples, err := s.Src.Samples(s.sent*s.BlockLen, s.BlockLen)
	if err != nil {
		return
	}
	if s.SelfNoise > 0 {
		noise := &signal.Synth{
			SampleRate: s.Src.SampleRate,
			NoiseAmp:   s.SelfNoise,
			Seed:       0xbeaf0 + uint64(s.Index),
		}
		nv, err := noise.Samples(s.sent*s.BlockLen+s.DelaySamp, s.BlockLen)
		if err == nil {
			for i := range samples {
				samples[i] += nv[i]
			}
		}
	}
	w := codec.NewWriter(8 + 8*s.BlockLen).U16(uint16(s.Index)).U32(uint32(s.sent))
	for _, v := range samples {
		w.F64(v)
	}
	ctx.Send(s.Aggregator, KindBlock, w.Bytes())
	s.sent++
}

// Aggregator aligns and sums sensor blocks.
type Aggregator struct {
	Sensors  int
	BlockLen int
	Blocks   int
	Delays   []int // steering delays, one per sensor

	// got[block][sensor] marks arrivals; sum[block] accumulates aligned
	// samples.
	got  map[uint32]map[int]bool
	sums map[uint32][]float64
	// DoneRound is the round the last block completed in.
	DoneRound int
}

// NewAggregator returns an aggregator expecting `blocks` blocks from
// `sensors` sensors with the given steering delays.
func NewAggregator(sensors, blockLen, blocks int, delays []int) (*Aggregator, error) {
	if sensors <= 0 || blockLen <= 0 || blocks <= 0 {
		return nil, errors.New("beamform: non-positive geometry")
	}
	if len(delays) != sensors {
		return nil, fmt.Errorf("beamform: %d delays for %d sensors", len(delays), sensors)
	}
	return &Aggregator{
		Sensors: sensors, BlockLen: blockLen, Blocks: blocks, Delays: delays,
		got:  map[uint32]map[int]bool{},
		sums: map[uint32][]float64{},
	}, nil
}

// Init implements core.Process.
func (a *Aggregator) Init(*core.Ctx) {}

// Round implements core.Process (reactive only).
func (a *Aggregator) Round(*core.Ctx) {}

// Receive implements core.Receiver: align (the steering delay has already
// been applied physically at the sensor: a plane wave from the steered
// direction arrives with exactly Delays[i] lag, which the sensor's
// block-relative resampling undoes) and sum.
func (a *Aggregator) Receive(ctx *core.Ctx, p *packet.Packet) {
	if p.Kind != KindBlock {
		return
	}
	r := codec.NewReader(p.Payload)
	sensor := int(r.U16())
	block := r.U32()
	if r.Err() != nil || sensor >= a.Sensors || int(block) >= a.Blocks {
		return
	}
	samples := make([]float64, a.BlockLen)
	for i := range samples {
		samples[i] = r.F64()
	}
	if r.Err() != nil {
		return
	}
	if a.got[block] == nil {
		a.got[block] = map[int]bool{}
		a.sums[block] = make([]float64, a.BlockLen)
	}
	if a.got[block][sensor] {
		return
	}
	a.got[block][sensor] = true
	for i, v := range samples {
		a.sums[block][i] += v
	}
	if a.Completed() {
		a.DoneRound = ctx.Round()
	}
}

// Completed reports whether every block has every sensor's contribution.
func (a *Aggregator) Completed() bool {
	if len(a.got) < a.Blocks {
		return false
	}
	for _, sensors := range a.got {
		if len(sensors) < a.Sensors {
			return false
		}
	}
	return true
}

// Done implements core.Completer.
func (a *Aggregator) Done() bool { return a.Completed() }

// Beam returns the beamformed output of block b, scaled by 1/N.
func (a *Aggregator) Beam(b int) ([]float64, error) {
	sum, ok := a.sums[uint32(b)]
	if !ok || len(a.got[uint32(b)]) < a.Sensors {
		return nil, fmt.Errorf("beamform: block %d incomplete", b)
	}
	out := make([]float64, len(sum))
	for i, v := range sum {
		out[i] = v / float64(a.Sensors)
	}
	return out, nil
}

// App wires an array of sensors and one aggregator.
type App struct {
	Agg     *Aggregator
	AggTile packet.TileID
}

// Setup places sensors on sensorTiles (sensor i delayed by delays[i]
// samples) and the aggregator on aggTile. The wave source is src.
func Setup(net *core.Network, aggTile packet.TileID, sensorTiles []packet.TileID,
	delays []int, src *signal.Synth, selfNoise float64, blockLen, blocks, pace int) (*App, error) {
	agg, err := NewAggregator(len(sensorTiles), blockLen, blocks, delays)
	if err != nil {
		return nil, err
	}
	net.Attach(aggTile, agg)
	for i, tile := range sensorTiles {
		if tile == aggTile {
			return nil, fmt.Errorf("beamform: sensor %d collides with aggregator", i)
		}
		net.Attach(tile, &Sensor{
			Index: i, DelaySamp: delays[i], Aggregator: aggTile,
			Src: src, SelfNoise: selfNoise, BlockLen: blockLen, Blocks: blocks,
			Pace: pace,
		})
	}
	return &App{Agg: agg, AggTile: aggTile}, nil
}
