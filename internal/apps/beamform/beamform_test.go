package beamform

import (
	"math"
	"testing"

	"repro/internal/audio/signal"
	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/topology"
)

func wave() *signal.Synth {
	return &signal.Synth{
		SampleRate: 16000,
		Tones:      []signal.Tone{{Freq: 500, Amp: 0.5}},
	}
}

func setup(t *testing.T, cfg core.Config, selfNoise float64, blocks int) (*core.Network, *App) {
	t.Helper()
	net, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	grid := cfg.Topo.(*topology.Grid)
	agg := grid.ID(3, 3)
	sensors := []packet.TileID{
		grid.ID(0, 0), grid.ID(1, 0), grid.ID(2, 0), grid.ID(3, 0),
		grid.ID(0, 1), grid.ID(1, 1), grid.ID(2, 1), grid.ID(3, 1),
	}
	delays := []int{0, 3, 6, 9, 12, 15, 18, 21} // linear array, plane wave
	app, err := Setup(net, agg, sensors, delays, wave(), selfNoise, 64, blocks, 0)
	if err != nil {
		t.Fatal(err)
	}
	return net, app
}

func TestBeamformCompletes(t *testing.T) {
	net, app := setup(t, core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.75, TTL: core.DefaultTTL,
		MaxRounds: 300, Seed: 1,
	}, 0, 4)
	res := net.Run()
	if !res.Completed {
		t.Fatalf("beamforming incomplete: %+v", res)
	}
	if app.Agg.DoneRound == 0 {
		t.Fatal("DoneRound not recorded")
	}
}

func TestCoherentSumMatchesSource(t *testing.T) {
	// Without self-noise, the aligned average must equal the source
	// exactly (for samples where every sensor had wave data).
	net, app := setup(t, core.Config{
		Topo: topology.NewGrid(4, 4), P: 1, TTL: core.DefaultTTL,
		MaxRounds: 200, Seed: 2,
	}, 0, 3)
	if !net.Run().Completed {
		t.Fatal("incomplete")
	}
	// Block 1 (samples 64..128): all delays (≤21) have real data by then.
	beam, err := app.Agg.Beam(1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := wave().Samples(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range beam {
		if math.Abs(beam[i]-ref[i]) > 1e-12 {
			t.Fatalf("beam sample %d = %v, want %v", i, beam[i], ref[i])
		}
	}
}

func TestArrayGainSuppressesNoise(t *testing.T) {
	// With independent sensor noise, the beamformed output is closer to
	// the clean source than any single noisy sensor: SNR improves by
	// ≈10·log10(N) = 9 dB for 8 sensors.
	const noiseAmp = 0.2
	net, app := setup(t, core.Config{
		Topo: topology.NewGrid(4, 4), P: 1, TTL: core.DefaultTTL,
		MaxRounds: 200, Seed: 3,
	}, noiseAmp, 3)
	if !net.Run().Completed {
		t.Fatal("incomplete")
	}
	beam, err := app.Agg.Beam(1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := wave().Samples(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	// A single sensor's SNR: wave + one noise stream.
	noisy := make([]float64, 64)
	noise := &signal.Synth{SampleRate: 16000, NoiseAmp: noiseAmp, Seed: 0xbeaf0}
	nv, err := noise.Samples(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range noisy {
		noisy[i] = ref[i] + nv[i]
	}
	single := signal.SNRdB(ref, noisy)
	array := signal.SNRdB(ref, beam)
	if array < single+5 {
		t.Fatalf("array gain too small: single %.1f dB, array %.1f dB", single, array)
	}
}

func TestBeamIncompleteBlockErrors(t *testing.T) {
	agg, err := NewAggregator(4, 16, 2, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Beam(0); err == nil {
		t.Fatal("incomplete block returned a beam")
	}
}

func TestAggregatorValidation(t *testing.T) {
	if _, err := NewAggregator(0, 16, 1, nil); err == nil {
		t.Error("zero sensors accepted")
	}
	if _, err := NewAggregator(2, 16, 1, []int{0}); err == nil {
		t.Error("delay count mismatch accepted")
	}
}

func TestSetupRejectsCollision(t *testing.T) {
	net, err := core.New(core.Config{Topo: topology.NewGrid(2, 2), P: 0.5, TTL: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Setup(net, 0, []packet.TileID{0}, []int{0}, wave(), 0, 16, 1, 0); err == nil {
		t.Fatal("sensor on aggregator tile accepted")
	}
}

func TestDuplicateBlocksIgnored(t *testing.T) {
	agg, err := NewAggregator(2, 4, 1, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	// Hand-craft two deliveries of the same (sensor, block).
	mk := func() *packet.Packet {
		w := make([]byte, 0)
		w = append(w, 0, 0) // sensor 0
		w = append(w, 0, 0, 0, 0)
		for i := 0; i < 4; i++ {
			w = append(w, 0x3f, 0xf0, 0, 0, 0, 0, 0, 0) // 1.0
		}
		return &packet.Packet{Kind: KindBlock, Payload: w}
	}
	ctx := &core.Ctx{}
	agg.Receive(ctx, mk())
	agg.Receive(ctx, mk())
	if agg.sums[0][0] != 1.0 {
		t.Fatalf("duplicate block double-counted: %v", agg.sums[0][0])
	}
}
