// Package mp3 maps the perceptual audio encoder of package audio/encoder
// onto a stochastically-communicating NoC, reproducing the thesis' §4.2
// experimental setup (Fig. 4-7): six pipeline stages — Signal
// Acquisition, Psychoacoustic Model, MDCT, Iterative Encoding, Bit
// Reservoir, Output — each on its own tile, streaming frame-sized
// messages through the gossip network.
//
// The dataflow follows the figure:
//
//	Acquisition ──window──▶ Psycho ──window+mask──▶ MDCT
//	     MDCT ──coefficients+allowance──▶ Encoding
//	     Encoding ◀──grant/commit──▶ Bit Reservoir
//	     Encoding ──encoded frame──▶ Output
//
// Every arrow is a gossip unicast subject to the full Chapter 2 fault
// model. The Encoding stage falls back to its nominal budget if a grant
// is lost in the network for too long (a real-time encoder cannot stall),
// but losing a window, coefficient or frame message outright kills that
// frame — with enough overflow the encoding "will not be able to
// complete", the thesis' point A in Fig. 4-10.
package mp3

import (
	"errors"
	"fmt"

	"repro/internal/audio/encoder"
	"repro/internal/audio/quant"
	"repro/internal/audio/signal"
	"repro/internal/core"
	"repro/internal/packet"

	"repro/internal/apps/codec"
)

// Message kinds of the pipeline.
const (
	KindWindow    packet.Kind = 30 // Acquisition -> Psycho
	KindMasked    packet.Kind = 31 // Psycho -> MDCT (window + mask ratios)
	KindCoef      packet.Kind = 32 // MDCT -> Encoding (coefs + allowances)
	KindBudgetReq packet.Kind = 33 // Encoding -> Reservoir
	KindGrant     packet.Kind = 34 // Reservoir -> Encoding
	KindCommit    packet.Kind = 35 // Encoding -> Reservoir
	KindFrame     packet.Kind = 36 // Encoding -> Output
)

// grantTimeout is how many rounds the Encoding stage waits for a grant
// before falling back to the nominal budget.
const grantTimeout = 8

// Tiles assigns the six stages to NoC tiles.
type Tiles struct {
	Acquisition, Psycho, MDCT, Encoding, Reservoir, Output packet.TileID
}

// DefaultTiles is the standard 4×4 placement used by the experiments: the
// chain occupies a path so consecutive stages are 1-2 hops apart.
func DefaultTiles() Tiles {
	return Tiles{
		Acquisition: 0,  // (0,0)
		Psycho:      1,  // (1,0)
		MDCT:        6,  // (2,1)
		Encoding:    10, // (2,2)
		Reservoir:   9,  // (1,2)
		Output:      15, // (3,3)
	}
}

// Pipeline owns the six stage processes. The middle four stages (Psycho,
// MDCT, Encoding, Reservoir) may be replicated on mirror tiles for crash
// tolerance (the §4.1.1 duplication mechanism applied to the §4.2
// pipeline); every stage deduplicates by frame index, so replicas are
// transparent to correctness and only add traffic.
type Pipeline struct {
	Tiles  Tiles
	Frames int
	Enc    *encoder.Encoder

	psychoT, mdctT, encT, resT []packet.TileID

	out *outputStage
}

// Setup attaches the pipeline to net, encoding `frames` windows of src.
func Setup(net *core.Network, tiles Tiles, cfg encoder.Config, src *signal.Synth, frames int) (*Pipeline, error) {
	return setup(net, tiles, nil, cfg, src, frames)
}

// SetupReplicated attaches the pipeline with the four middle stages
// duplicated on the mirror tiles: either copy of a stage can carry a
// frame, so a single crashed stage tile no longer kills the encoding.
// The Acquisition and Output endpoints stay single (source and sink).
func SetupReplicated(net *core.Network, tiles, mirror Tiles, cfg encoder.Config, src *signal.Synth, frames int) (*Pipeline, error) {
	return setup(net, tiles, &mirror, cfg, src, frames)
}

func setup(net *core.Network, tiles Tiles, mirror *Tiles, cfg encoder.Config, src *signal.Synth, frames int) (*Pipeline, error) {
	if frames <= 0 {
		return nil, errors.New("mp3: frames must be positive")
	}
	enc, err := encoder.New(cfg)
	if err != nil {
		return nil, err
	}
	ids := []packet.TileID{tiles.Acquisition, tiles.Psycho, tiles.MDCT,
		tiles.Encoding, tiles.Reservoir, tiles.Output}
	if mirror != nil {
		ids = append(ids, mirror.Psycho, mirror.MDCT, mirror.Encoding, mirror.Reservoir)
	}
	seen := map[packet.TileID]bool{}
	for _, id := range ids {
		if int(id) >= net.Topology().Tiles() {
			return nil, fmt.Errorf("mp3: tile %d out of range", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("mp3: stage tiles must be distinct (tile %d reused)", id)
		}
		seen[id] = true
	}
	p := &Pipeline{Tiles: tiles, Frames: frames, Enc: enc}
	p.psychoT = []packet.TileID{tiles.Psycho}
	p.mdctT = []packet.TileID{tiles.MDCT}
	p.encT = []packet.TileID{tiles.Encoding}
	p.resT = []packet.TileID{tiles.Reservoir}
	if mirror != nil {
		p.psychoT = append(p.psychoT, mirror.Psycho)
		p.mdctT = append(p.mdctT, mirror.MDCT)
		p.encT = append(p.encT, mirror.Encoding)
		p.resT = append(p.resT, mirror.Reservoir)
	}
	p.out = &outputStage{expect: frames, frameDur: enc.FrameDuration()}
	net.Attach(tiles.Acquisition, &acquisitionStage{pipe: p, src: src})
	for _, t := range p.psychoT {
		net.Attach(t, &psychoStage{pipe: p})
	}
	for _, t := range p.mdctT {
		net.Attach(t, &mdctStage{pipe: p})
	}
	for _, t := range p.encT {
		net.Attach(t, &encodingStage{pipe: p})
	}
	for _, t := range p.resT {
		net.Attach(t, &reservoirStage{pipe: p, cap: enc.Config().ReservoirBits})
	}
	net.Attach(tiles.Output, p.out)
	return p, nil
}

// fanout sends one payload to every replica of a stage.
func fanout(ctx *core.Ctx, tiles []packet.TileID, kind packet.Kind, payload []byte) {
	for _, t := range tiles {
		ctx.Send(t, kind, payload)
	}
}

// Output exposes the output stage's measurements.
func (p *Pipeline) Output() *Output {
	return &Output{
		FramesReceived: len(p.out.bits),
		BitsReceived:   p.out.totalBits,
		ArrivalRounds:  append([]int(nil), p.out.arrivals...),
		FrameDuration:  p.out.frameDur,
		Expected:       p.out.expect,
	}
}

// Output is the measured result of one pipeline run.
type Output struct {
	FramesReceived int
	BitsReceived   int
	ArrivalRounds  []int
	FrameDuration  float64
	Expected       int
}

// BitrateBps is the sustained output bit-rate: bits received over the
// audio duration the input represents. Lost frames lower it — the
// Fig. 4-11 metric.
func (o *Output) BitrateBps() float64 {
	if o.Expected == 0 || o.FrameDuration == 0 {
		return 0
	}
	return float64(o.BitsReceived) / (float64(o.Expected) * o.FrameDuration)
}

// JitterRounds is the standard deviation of inter-arrival gaps at the
// output — the error bars of Fig. 4-11.
func (o *Output) JitterRounds() float64 {
	if len(o.ArrivalRounds) < 3 {
		return 0
	}
	gaps := make([]float64, 0, len(o.ArrivalRounds)-1)
	for i := 1; i < len(o.ArrivalRounds); i++ {
		gaps = append(gaps, float64(o.ArrivalRounds[i]-o.ArrivalRounds[i-1]))
	}
	var mean float64
	for _, g := range gaps {
		mean += g
	}
	mean /= float64(len(gaps))
	var ss float64
	for _, g := range gaps {
		ss += (g - mean) * (g - mean)
	}
	return sqrt(ss / float64(len(gaps)-1))
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	// Newton iterations suffice and avoid importing math for one call.
	x := v
	for i := 0; i < 40; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

// ---- Stage 1: Signal Acquisition ----

type acquisitionStage struct {
	pipe *Pipeline
	src  *signal.Synth
	next int
}

func (s *acquisitionStage) Init(*core.Ctx) {}

func (s *acquisitionStage) Round(ctx *core.Ctx) {
	if s.next >= s.pipe.Frames {
		return
	}
	m := s.pipe.Enc.Config().M
	window, err := s.src.Samples(s.next*m, 2*m)
	if err != nil {
		return // mis-configured source: starve rather than panic
	}
	w := codec.NewWriter(4 + 8*len(window)).U32(uint32(s.next))
	for _, v := range window {
		w.F64(v)
	}
	fanout(ctx, s.pipe.psychoT, KindWindow, w.Bytes())
	s.next++
}

// ---- Stage 2: Psychoacoustic Model ----

type psychoStage struct {
	pipe *Pipeline
	seen map[uint32]bool
}

func (s *psychoStage) Init(*core.Ctx)  { s.seen = map[uint32]bool{} }
func (s *psychoStage) Round(*core.Ctx) {}

func (s *psychoStage) Receive(ctx *core.Ctx, p *packet.Packet) {
	if p.Kind != KindWindow {
		return
	}
	cfg := s.pipe.Enc.Config()
	r := codec.NewReader(p.Payload)
	frame := r.U32()
	if s.seen[frame] {
		return // a replicated upstream already fed us this frame
	}
	s.seen[frame] = true
	window := make([]float64, 2*cfg.M)
	for i := range window {
		window[i] = r.F64()
	}
	if r.Err() != nil {
		return
	}
	an, err := s.pipe.Enc.Model.Analyze(window)
	if err != nil {
		return
	}
	// Forward the window plus per-band masking ratios threshold/energy.
	w := codec.NewWriter(4 + 8*len(window) + 8*cfg.Bands).U32(frame)
	for _, v := range window {
		w.F64(v)
	}
	for b := 0; b < cfg.Bands; b++ {
		e := an.Energy[b]
		if e < 1e-12 {
			e = 1e-12
		}
		w.F64(an.Threshold[b] / e)
	}
	fanout(ctx, s.pipe.mdctT, KindMasked, w.Bytes())
}

// ---- Stage 3: MDCT ----

type mdctStage struct {
	pipe *Pipeline
	seen map[uint32]bool
}

func (s *mdctStage) Init(*core.Ctx)  { s.seen = map[uint32]bool{} }
func (s *mdctStage) Round(*core.Ctx) {}

func (s *mdctStage) Receive(ctx *core.Ctx, p *packet.Packet) {
	if p.Kind != KindMasked {
		return
	}
	cfg := s.pipe.Enc.Config()
	r := codec.NewReader(p.Payload)
	frame := r.U32()
	if s.seen[frame] {
		return
	}
	s.seen[frame] = true
	window := make([]float64, 2*cfg.M)
	for i := range window {
		window[i] = r.F64()
	}
	ratios := make([]float64, cfg.Bands)
	for b := range ratios {
		ratios[b] = r.F64()
	}
	if r.Err() != nil {
		return
	}
	coef, err := s.pipe.Enc.MDCT.Forward(window)
	if err != nil {
		return
	}
	// Allowance in the coefficient domain: band energy × masking ratio.
	bands := s.pipe.Enc.Bands
	allowed := make([]float64, cfg.Bands)
	for b := 0; b < cfg.Bands; b++ {
		var e float64
		for i := bands.Edges[b]; i < bands.Edges[b+1]; i++ {
			e += coef[i] * coef[i]
		}
		allowed[b] = e * ratios[b]
		if allowed[b] < 1e-9 {
			allowed[b] = 1e-9
		}
	}
	w := codec.NewWriter(4 + 8*(len(coef)+len(allowed))).U32(frame)
	for _, v := range coef {
		w.F64(v)
	}
	for _, v := range allowed {
		w.F64(v)
	}
	fanout(ctx, s.pipe.encT, KindCoef, w.Bytes())
}

// ---- Stage 4: Iterative Encoding ----

type pendingFrame struct {
	coef    []float64
	allowed []float64
	since   int // round the coefficients arrived
}

type encodingStage struct {
	pipe    *Pipeline
	waiting map[uint32]*pendingFrame
	granted map[uint32]int
	done    map[uint32]bool
}

func (s *encodingStage) Init(*core.Ctx) {
	s.waiting = map[uint32]*pendingFrame{}
	s.granted = map[uint32]int{}
	s.done = map[uint32]bool{}
}

func (s *encodingStage) Receive(ctx *core.Ctx, p *packet.Packet) {
	cfg := s.pipe.Enc.Config()
	switch p.Kind {
	case KindCoef:
		r := codec.NewReader(p.Payload)
		frame := r.U32()
		coef := make([]float64, cfg.M)
		for i := range coef {
			coef[i] = r.F64()
		}
		allowed := make([]float64, cfg.Bands)
		for b := range allowed {
			allowed[b] = r.F64()
		}
		if r.Err() != nil || s.done[frame] || s.waiting[frame] != nil {
			return
		}
		s.waiting[frame] = &pendingFrame{coef: coef, allowed: allowed, since: ctx.Round()}
		// Ask the reservoir for this frame's budget.
		req := codec.NewWriter(4).U32(frame).Bytes()
		fanout(ctx, s.pipe.resT, KindBudgetReq, req)
	case KindGrant:
		r := codec.NewReader(p.Payload)
		frame := r.U32()
		budget := int(r.U32())
		if r.Err() != nil {
			return
		}
		s.granted[frame] = budget
		s.tryEncode(ctx, frame)
	}
}

func (s *encodingStage) Round(ctx *core.Ctx) {
	// Grant-timeout fallback: a real-time encoder cannot stall on a lost
	// grant; fall back to the nominal CBR budget.
	for frame, pf := range s.waiting {
		if _, ok := s.granted[frame]; !ok && ctx.Round()-pf.since > grantTimeout {
			s.granted[frame] = s.pipe.Enc.NominalFrameBits()
			s.tryEncode(ctx, frame)
		}
	}
}

func (s *encodingStage) tryEncode(ctx *core.Ctx, frame uint32) {
	pf := s.waiting[frame]
	budget, ok := s.granted[frame]
	if pf == nil || !ok || s.done[frame] {
		return
	}
	nominal := s.pipe.Enc.NominalFrameBits()
	if budget < nominal {
		budget = nominal // a grant can only add to CBR, never starve it
	}
	qf, err := quant.EncodeFrame(pf.coef, s.pipe.Enc.Bands, pf.allowed, budget)
	if err != nil {
		return
	}
	s.done[frame] = true
	delete(s.waiting, frame)
	delete(s.granted, frame)

	commit := codec.NewWriter(8).U32(frame).U32(uint32(qf.BitLen)).Bytes()
	fanout(ctx, s.pipe.resT, KindCommit, commit)

	out := codec.NewWriter(8 + len(qf.Bits)).U32(frame).U32(uint32(qf.BitLen)).Raw(qf.Bits)
	ctx.Send(s.pipe.Tiles.Output, KindFrame, out.Bytes())
}

// ---- Stage 5: Bit Reservoir ----

type reservoirStage struct {
	pipe      *Pipeline
	cap       int
	fill      int
	committed map[uint32]bool
}

func (s *reservoirStage) Init(*core.Ctx)  { s.committed = map[uint32]bool{} }
func (s *reservoirStage) Round(*core.Ctx) {}

func (s *reservoirStage) Receive(ctx *core.Ctx, p *packet.Packet) {
	nominal := s.pipe.Enc.NominalFrameBits()
	switch p.Kind {
	case KindBudgetReq:
		r := codec.NewReader(p.Payload)
		frame := r.U32()
		if r.Err() != nil {
			return
		}
		grant := nominal + s.fill
		reply := codec.NewWriter(8).U32(frame).U32(uint32(grant)).Bytes()
		// Reply to whichever Encoding replica asked.
		ctx.Send(p.Src, KindGrant, reply)
	case KindCommit:
		r := codec.NewReader(p.Payload)
		frame := r.U32()
		used := int(r.U32())
		if r.Err() != nil || s.committed[frame] {
			return // replicated Encoding: settle each frame once
		}
		s.committed[frame] = true
		s.fill += nominal - used
		if s.fill > s.cap {
			s.fill = s.cap
		}
		if s.fill < 0 {
			s.fill = 0
		}
	}
}

// ---- Stage 6: Output ----

type outputStage struct {
	expect    int
	frameDur  float64
	bits      map[uint32]int
	totalBits int
	arrivals  []int
}

func (s *outputStage) Init(*core.Ctx)  { s.bits = map[uint32]int{} }
func (s *outputStage) Round(*core.Ctx) {}

func (s *outputStage) Receive(ctx *core.Ctx, p *packet.Packet) {
	if p.Kind != KindFrame {
		return
	}
	r := codec.NewReader(p.Payload)
	frame := r.U32()
	bitLen := int(r.U32())
	if r.Err() != nil {
		return
	}
	if _, dup := s.bits[frame]; dup {
		return
	}
	s.bits[frame] = bitLen
	s.totalBits += bitLen
	s.arrivals = append(s.arrivals, ctx.Round())
}

// Done implements core.Completer: all frames delivered to the output.
func (s *outputStage) Done() bool { return len(s.bits) >= s.expect }
