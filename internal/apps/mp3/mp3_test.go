package mp3

import (
	"testing"

	"repro/internal/audio/encoder"
	"repro/internal/audio/signal"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/topology"
)

func build(t *testing.T, cfg core.Config, frames int) (*core.Network, *Pipeline) {
	t.Helper()
	net, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := Setup(net, DefaultTiles(), encoder.Config{}, signal.DefaultProgram(), frames)
	if err != nil {
		t.Fatal(err)
	}
	return net, pipe
}

func TestPipelineCompletesFaultFree(t *testing.T) {
	net, pipe := build(t, core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.6, TTL: core.DefaultTTL,
		MaxRounds: 400, Seed: 1,
	}, 12)
	res := net.Run()
	if !res.Completed {
		out := pipe.Output()
		t.Fatalf("pipeline incomplete: %d/%d frames after %d rounds",
			out.FramesReceived, out.Expected, res.Rounds)
	}
	out := pipe.Output()
	if out.FramesReceived != 12 {
		t.Fatalf("frames received = %d", out.FramesReceived)
	}
	if out.BitsReceived == 0 {
		t.Fatal("no bits at output")
	}
}

func TestPipelineBitrateNearTarget(t *testing.T) {
	net, pipe := build(t, core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.75, TTL: core.DefaultTTL,
		MaxRounds: 600, Seed: 2,
	}, 24)
	if !net.Run().Completed {
		t.Fatal("incomplete")
	}
	br := pipe.Output().BitrateBps()
	// Target 128 kb/s: CBR from below, within 45%.
	if br < 70000 || br > 130000 {
		t.Fatalf("sustained bitrate = %.0f b/s", br)
	}
}

func TestFloodingFasterThanSparseGossip(t *testing.T) {
	latency := func(p float64) int {
		net, _ := build(t, core.Config{
			Topo: topology.NewGrid(4, 4), P: p, TTL: core.DefaultTTL,
			MaxRounds: 1500, Seed: 5,
		}, 10)
		res := net.Run()
		if !res.Completed {
			t.Fatalf("p=%v incomplete", p)
		}
		return res.Rounds
	}
	flood, sparse := latency(1), latency(0.35)
	if flood >= sparse {
		t.Fatalf("flooding (%d rounds) not faster than p=0.35 (%d rounds)", flood, sparse)
	}
}

func TestSurvivesModerateOverflow(t *testing.T) {
	// Fig. 4-10/4-11: the pipeline absorbs substantial overflow because
	// gossip keeps many copies alive.
	net, pipe := build(t, core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.75, TTL: core.DefaultTTL,
		MaxRounds: 800, Seed: 3,
		Fault: fault.Model{POverflow: 0.3},
	}, 12)
	res := net.Run()
	if !res.Completed {
		out := pipe.Output()
		t.Fatalf("30%% overflow killed the pipeline: %d/%d frames", out.FramesReceived, out.Expected)
	}
}

func TestSyncErrorsOnlyAddJitter(t *testing.T) {
	net, pipe := build(t, core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.75, TTL: core.DefaultTTL,
		MaxRounds: 1200, Seed: 4,
		Fault: fault.Model{SigmaSync: 1.0},
	}, 12)
	res := net.Run()
	if !res.Completed {
		t.Fatalf("σ=100%% sync error prevented termination (rounds=%d, got %d/%d)",
			res.Rounds, pipe.Output().FramesReceived, pipe.Output().Expected)
	}
}

func TestExtremeOverflowFatal(t *testing.T) {
	// Point A of Fig. 4-10: very high overflow loses packets outright.
	completed := 0
	for seed := uint64(0); seed < 5; seed++ {
		net, _ := build(t, core.Config{
			Topo: topology.NewGrid(4, 4), P: 0.5, TTL: core.DefaultTTL,
			MaxRounds: 400, Seed: seed,
			Fault: fault.Model{POverflow: 0.97},
		}, 8)
		if net.Run().Completed {
			completed++
		}
	}
	if completed == 5 {
		t.Fatal("97% overflow never fatal — overflow model inert?")
	}
}

func TestSetupValidation(t *testing.T) {
	grid := topology.NewGrid(4, 4)
	mk := func() *core.Network {
		net, err := core.New(core.Config{Topo: grid, P: 0.5, TTL: 5, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	if _, err := Setup(mk(), DefaultTiles(), encoder.Config{}, signal.DefaultProgram(), 0); err == nil {
		t.Error("zero frames accepted")
	}
	dup := DefaultTiles()
	dup.Psycho = dup.Output
	if _, err := Setup(mk(), dup, encoder.Config{}, signal.DefaultProgram(), 4); err == nil {
		t.Error("duplicate stage tiles accepted")
	}
	oob := DefaultTiles()
	oob.MDCT = 99
	if _, err := Setup(mk(), oob, encoder.Config{}, signal.DefaultProgram(), 4); err == nil {
		t.Error("out-of-range tile accepted")
	}
}

func TestOutputMetrics(t *testing.T) {
	o := &Output{
		FramesReceived: 3,
		BitsReceived:   3000,
		ArrivalRounds:  []int{5, 10, 15, 22},
		FrameDuration:  0.01,
		Expected:       4,
	}
	// 3000 bits over 4 frames × 10 ms = 75 kb/s.
	if br := o.BitrateBps(); br != 75000 {
		t.Fatalf("bitrate = %v", br)
	}
	if j := o.JitterRounds(); j <= 0 {
		t.Fatalf("jitter = %v", j)
	}
	uniform := &Output{ArrivalRounds: []int{1, 2, 3, 4}, Expected: 1, FrameDuration: 1}
	if j := uniform.JitterRounds(); j != 0 {
		t.Fatalf("uniform arrivals jitter = %v", j)
	}
	empty := &Output{}
	if empty.BitrateBps() != 0 || empty.JitterRounds() != 0 {
		t.Fatal("empty output metrics nonzero")
	}
}

// mirrorTiles places the four middle-stage replicas on tiles unused by
// DefaultTiles (0,1,6,10,9,15 taken).
func mirrorTiles() Tiles {
	t := DefaultTiles()
	t.Psycho = 2
	t.MDCT = 5
	t.Encoding = 11
	t.Reservoir = 13
	return t
}

func TestReplicatedPipelineCompletes(t *testing.T) {
	net, err := core.New(core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.75, TTL: core.DefaultTTL,
		MaxRounds: 600, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := SetupReplicated(net, DefaultTiles(), mirrorTiles(),
		encoder.Config{}, signal.DefaultProgram(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !net.Run().Completed {
		t.Fatal("replicated pipeline incomplete")
	}
	out := pipe.Output()
	if out.FramesReceived != 10 {
		t.Fatalf("frames = %d", out.FramesReceived)
	}
	// Replication must not double-count frames or bits at the output.
	br := out.BitrateBps()
	if br < 70000 || br > 135000 {
		t.Fatalf("replicated bitrate = %.0f (double counting?)", br)
	}
}

func TestReplicationSurvivesStageCrash(t *testing.T) {
	// Kill the primary MDCT tile: the mirror copy carries the stream.
	kill := DefaultTiles().MDCT
	grid := topology.NewGrid(4, 4)
	var protect []packet.TileID
	for i := 0; i < grid.Tiles(); i++ {
		if packet.TileID(i) != kill {
			protect = append(protect, packet.TileID(i))
		}
	}
	net, err := core.New(core.Config{
		Topo: grid, P: 0.75, TTL: core.DefaultTTL, MaxRounds: 800, Seed: 22,
		Fault: fault.Model{DeadTiles: 1, Protect: protect},
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := SetupReplicated(net, DefaultTiles(), mirrorTiles(),
		encoder.Config{}, signal.DefaultProgram(), 8)
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run()
	if !res.Completed {
		out := pipe.Output()
		t.Fatalf("replicated pipeline died with one stage crashed: %d/%d frames",
			out.FramesReceived, out.Expected)
	}
}

func TestUnreplicatedStageCrashIsFatal(t *testing.T) {
	// The contrast case: the single-copy pipeline cannot survive its
	// MDCT tile dying.
	kill := DefaultTiles().MDCT
	grid := topology.NewGrid(4, 4)
	var protect []packet.TileID
	for i := 0; i < grid.Tiles(); i++ {
		if packet.TileID(i) != kill {
			protect = append(protect, packet.TileID(i))
		}
	}
	net, err := core.New(core.Config{
		Topo: grid, P: 0.75, TTL: core.DefaultTTL, MaxRounds: 300, Seed: 23,
		Fault: fault.Model{DeadTiles: 1, Protect: protect},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Setup(net, DefaultTiles(), encoder.Config{}, signal.DefaultProgram(), 4); err != nil {
		t.Fatal(err)
	}
	if net.Run().Completed {
		t.Fatal("pipeline completed without its only MDCT stage")
	}
}

func TestReplicatedSetupValidation(t *testing.T) {
	net, err := core.New(core.Config{Topo: topology.NewGrid(4, 4), P: 0.5, TTL: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	collide := mirrorTiles()
	collide.Psycho = DefaultTiles().Psycho // mirror collides with primary
	if _, err := SetupReplicated(net, DefaultTiles(), collide,
		encoder.Config{}, signal.DefaultProgram(), 4); err == nil {
		t.Fatal("colliding mirror accepted")
	}
}
