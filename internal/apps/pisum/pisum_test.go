package pisum

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/topology"
)

func TestPartialSumConverges(t *testing.T) {
	// Midpoint rule: error is O(1/n²).
	for _, n := range []int{100, 10000} {
		got := PartialSum(1, n+1, n)
		if err := math.Abs(got - math.Pi); err > 1.0/float64(n) {
			t.Fatalf("n=%d: π estimate %v off by %v", n, got, err)
		}
	}
}

func TestPartialSumsCompose(t *testing.T) {
	const n = 1000
	whole := PartialSum(1, n+1, n)
	parts := PartialSum(1, 251, n) + PartialSum(251, 501, n) +
		PartialSum(501, 751, n) + PartialSum(751, n+1, n)
	if math.Abs(whole-parts) > 1e-12 {
		t.Fatalf("partial sums do not compose: %v vs %v", whole, parts)
	}
}

// standardSetup mirrors the thesis: 5x5 grid, master at the center tile,
// 8 slaves each duplicated.
func standardSetup(t *testing.T, cfg core.Config) (*core.Network, *App) {
	t.Helper()
	net, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	grid := cfg.Topo.(*topology.Grid)
	master := grid.ID(2, 2)
	var slaves [][]packet.TileID
	free := []packet.TileID{}
	for i := 0; i < grid.Tiles(); i++ {
		if packet.TileID(i) != master {
			free = append(free, packet.TileID(i))
		}
	}
	for k := 0; k < 8; k++ {
		slaves = append(slaves, []packet.TileID{free[2*k], free[2*k+1]})
	}
	app, err := Setup(net, master, slaves, 8000)
	if err != nil {
		t.Fatal(err)
	}
	return net, app
}

func TestMasterSlaveFaultFree(t *testing.T) {
	grid := topology.NewGrid(5, 5)
	net, app := standardSetup(t, core.Config{
		Topo: grid, P: 0.5, TTL: core.DefaultTTL, MaxRounds: 100, Seed: 3,
	})
	res := net.Run()
	if !res.Completed {
		t.Fatalf("master-slave did not complete: %+v", res)
	}
	pi, err := app.Master.Pi()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi-ReferencePi(8000)) > 1e-12 {
		t.Fatalf("distributed π %v != serial %v", pi, ReferencePi(8000))
	}
	if Error(pi) > 1e-4 {
		t.Fatalf("π estimate %v too far from π", pi)
	}
	// The thesis reports 6-9 rounds for p=0.5 on this workload; allow a
	// wider envelope but catch pathological latencies.
	if res.Rounds < 2 || res.Rounds > 30 {
		t.Fatalf("latency %d rounds out of plausible envelope", res.Rounds)
	}
}

func TestMasterSlaveFlooding(t *testing.T) {
	grid := topology.NewGrid(5, 5)
	net, app := standardSetup(t, core.Config{
		Topo: grid, P: 1, TTL: core.DefaultTTL, MaxRounds: 100, Seed: 4,
	})
	res := net.Run()
	if !res.Completed {
		t.Fatal("flooding run incomplete")
	}
	// Flooding: assignments go out in round 1 and travel ≤ 4 hops (5x5,
	// master center => max Manhattan 4); replies the same. The thesis
	// quotes 4 rounds for flooding; our worst tile pair gives ≤ 9.
	if res.Rounds > 9 {
		t.Fatalf("flooding latency %d rounds", res.Rounds)
	}
	pi, err := app.Master.Pi()
	if err != nil {
		t.Fatal(err)
	}
	if Error(pi) > 1e-4 {
		t.Fatalf("π = %v", pi)
	}
}

func TestDuplicationToleratesDeadSlaves(t *testing.T) {
	// Kill 2 tiles (never the master): with every slave duplicated, the
	// computation must still complete in the vast majority of runs —
	// both replicas dying is the only fatal case.
	grid := topology.NewGrid(5, 5)
	completed := 0
	const runs = 30
	for seed := uint64(0); seed < runs; seed++ {
		net, err := core.New(core.Config{
			Topo: grid, P: 0.75, TTL: core.DefaultTTL, MaxRounds: 100, Seed: seed,
			Fault: fault.Model{DeadTiles: 2, Protect: []packet.TileID{grid.ID(2, 2)}},
		})
		if err != nil {
			t.Fatal(err)
		}
		master := grid.ID(2, 2)
		var slaves [][]packet.TileID
		var free []packet.TileID
		for i := 0; i < grid.Tiles(); i++ {
			if packet.TileID(i) != master {
				free = append(free, packet.TileID(i))
			}
		}
		for k := 0; k < 8; k++ {
			slaves = append(slaves, []packet.TileID{free[2*k], free[2*k+1]})
		}
		app, err := Setup(net, master, slaves, 800)
		if err != nil {
			t.Fatal(err)
		}
		if net.Run().Completed {
			completed++
			pi, err := app.Master.Pi()
			if err != nil {
				t.Fatal(err)
			}
			if Error(pi) > 1e-2 {
				t.Fatalf("seed %d: corrupted π %v", seed, pi)
			}
		}
	}
	if completed < runs*2/3 {
		t.Fatalf("only %d/%d duplicated runs completed", completed, runs)
	}
}

func TestReplicaResultsNotDoubleCounted(t *testing.T) {
	// Both replicas reply; the master must count each slave index once.
	grid := topology.NewGrid(5, 5)
	net, app := standardSetup(t, core.Config{
		Topo: grid, P: 1, TTL: core.DefaultTTL, MaxRounds: 60, Seed: 9,
	})
	if !net.Run().Completed {
		t.Fatal("incomplete")
	}
	pi, err := app.Master.Pi()
	if err != nil {
		t.Fatal(err)
	}
	// Double counting any partial sum would inflate π by ≥ π/8.
	if Error(pi) > 0.01 {
		t.Fatalf("π = %v: replica double-counted?", pi)
	}
}

func TestPiBeforeDoneErrors(t *testing.T) {
	m := NewMaster([][]packet.TileID{{1}}, 100)
	if _, err := m.Pi(); err == nil {
		t.Fatal("Pi() before completion did not error")
	}
}

func TestSetupValidation(t *testing.T) {
	grid := topology.NewGrid(3, 3)
	net, err := core.New(core.Config{Topo: grid, P: 0.5, TTL: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Setup(net, 0, nil, 100); err == nil {
		t.Error("no slaves accepted")
	}
	if _, err := Setup(net, 0, [][]packet.TileID{{1}, {2}, {3}}, 2); err == nil {
		t.Error("fewer intervals than slaves accepted")
	}
	if _, err := Setup(net, 0, [][]packet.TileID{{0}}, 100); err == nil {
		t.Error("slave on master tile accepted")
	}
}

func TestMalformedResultIgnored(t *testing.T) {
	m := NewMaster([][]packet.TileID{{1}}, 100)
	m.Receive(nil, &packet.Packet{Kind: KindResult, Payload: []byte{1}})
	if m.Done() {
		t.Fatal("malformed result accepted")
	}
}

func TestWithUpsets(t *testing.T) {
	// 30% upsets: gossip's retransmissions still complete the app.
	grid := topology.NewGrid(5, 5)
	net, app := standardSetup(t, core.Config{
		Topo: grid, P: 0.75, TTL: core.DefaultTTL, MaxRounds: 200, Seed: 11,
		Fault: fault.Model{PUpset: 0.3},
	})
	res := net.Run()
	if !res.Completed {
		t.Fatalf("30%% upsets defeated the app: %+v", res)
	}
	pi, err := app.Master.Pi()
	if err != nil {
		t.Fatal(err)
	}
	if Error(pi) > 1e-3 {
		t.Fatalf("π corrupted by upsets: %v (CRC should have caught them)", pi)
	}
}
