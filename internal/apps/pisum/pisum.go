// Package pisum implements the thesis' Master–Slave case study (§4.1.1):
// estimating π on a NoC by midpoint integration of ∫₀¹ 4/(1+x²) dx
// (Eq. 4). A master IP partitions the quadrature range over N slaves,
// sends each its summation limits through the stochastic network, and
// assembles the partial sums as they gossip back. Slaves may be
// replicated; replicas produce identical results and the master uses
// whichever copy arrives first, which is the thesis' computation-level
// fault-tolerance mechanism.
package pisum

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/packet"

	"repro/internal/apps/codec"
)

// Message kinds.
const (
	KindAssign packet.Kind = 1 // master -> slave: summation limits
	KindResult packet.Kind = 2 // slave -> master: partial sum
)

// PartialSum evaluates the Eq. 4 midpoint-rule sum over i ∈ [lo, hi):
//
//	Σ 4 / (1 + ((i − 1/2)/n)²) · (1/n)
func PartialSum(lo, hi, n int) float64 {
	sum := 0.0
	nf := float64(n)
	for i := lo; i < hi; i++ {
		x := (float64(i) - 0.5) / nf
		sum += 4 / (1 + x*x) / nf
	}
	return sum
}

// Master is the IP collecting partial sums.
type Master struct {
	slaveTiles [][]packet.TileID // per slave index, its replica tiles
	intervals  int
	results    map[int]float64
	assigned   bool
	// DoneRound is the round in which the last partial sum arrived.
	DoneRound int
}

// NewMaster returns a master coordinating len(slaveTiles) slaves, with
// the quadrature split into intervals points total.
func NewMaster(slaveTiles [][]packet.TileID, intervals int) *Master {
	return &Master{
		slaveTiles: slaveTiles,
		intervals:  intervals,
		results:    map[int]float64{},
	}
}

// Init implements core.Process.
func (m *Master) Init(*core.Ctx) {}

// Round implements core.Process: on the first round, the master starts
// its slaves by sending each replica its summation limits.
func (m *Master) Round(ctx *core.Ctx) {
	if m.assigned {
		return
	}
	m.assigned = true
	n := len(m.slaveTiles)
	for k, tiles := range m.slaveTiles {
		lo := 1 + k*m.intervals/n
		hi := 1 + (k+1)*m.intervals/n
		payload := codec.NewWriter(14).
			U16(uint16(k)).
			U32(uint32(lo)).U32(uint32(hi)).
			U32(uint32(m.intervals)).
			Bytes()
		for _, tile := range tiles {
			ctx.Send(tile, KindAssign, payload)
		}
	}
}

// Receive implements core.Receiver: collect partial sums at the instant
// of delivery.
func (m *Master) Receive(ctx *core.Ctx, p *packet.Packet) {
	if p.Kind != KindResult {
		return
	}
	r := codec.NewReader(p.Payload)
	k := int(r.U16())
	sum := r.F64()
	if r.Err() != nil || k >= len(m.slaveTiles) {
		return // malformed result: ignore (gossip will bring another copy)
	}
	if _, dup := m.results[k]; dup {
		return // a replica's identical copy: §4.1.1, take the first
	}
	m.results[k] = sum
	if len(m.results) == len(m.slaveTiles) {
		m.DoneRound = ctx.Round()
	}
}

// Done implements core.Completer.
func (m *Master) Done() bool { return len(m.results) == len(m.slaveTiles) }

// Pi returns the assembled estimate. Calling it before Done is an error.
func (m *Master) Pi() (float64, error) {
	if !m.Done() {
		return 0, fmt.Errorf("pisum: only %d/%d partial sums collected",
			len(m.results), len(m.slaveTiles))
	}
	total := 0.0
	for _, v := range m.results {
		total += v
	}
	return total, nil
}

// Slave computes a partial sum on demand.
type Slave struct {
	master packet.TileID
}

// NewSlave returns a slave that reports to the master tile.
func NewSlave(master packet.TileID) *Slave { return &Slave{master: master} }

// Init implements core.Process.
func (s *Slave) Init(*core.Ctx) {}

// Round implements core.Process (the slave is purely reactive).
func (s *Slave) Round(*core.Ctx) {}

// Receive implements core.Receiver: compute and reply.
func (s *Slave) Receive(ctx *core.Ctx, p *packet.Packet) {
	if p.Kind != KindAssign {
		return
	}
	r := codec.NewReader(p.Payload)
	k := r.U16()
	lo, hi, n := int(r.U32()), int(r.U32()), int(r.U32())
	if r.Err() != nil || n <= 0 || lo > hi {
		return
	}
	sum := PartialSum(lo, hi, n)
	reply := codec.NewWriter(10).U16(k).F64(sum).Bytes()
	ctx.Send(s.master, KindResult, reply)
}

// App wires a complete Master–Slave instance onto a network.
type App struct {
	Master     *Master
	MasterTile packet.TileID
	SlaveTiles [][]packet.TileID
}

// Setup attaches a master at masterTile and the given slave replicas to
// net. intervals is the total quadrature resolution.
func Setup(net *core.Network, masterTile packet.TileID, slaveTiles [][]packet.TileID, intervals int) (*App, error) {
	if len(slaveTiles) == 0 {
		return nil, fmt.Errorf("pisum: no slaves")
	}
	if intervals < len(slaveTiles) {
		return nil, fmt.Errorf("pisum: %d intervals for %d slaves", intervals, len(slaveTiles))
	}
	m := NewMaster(slaveTiles, intervals)
	net.Attach(masterTile, m)
	for _, tiles := range slaveTiles {
		for _, tile := range tiles {
			if tile == masterTile {
				return nil, fmt.Errorf("pisum: slave replica collides with master tile %d", masterTile)
			}
			net.Attach(tile, NewSlave(masterTile))
		}
	}
	return &App{Master: m, MasterTile: masterTile, SlaveTiles: slaveTiles}, nil
}

// ReferencePi returns the same quadrature computed serially, for
// validating the distributed result bit-for-bit... up to summation order:
// the master adds partial sums in map order, so equality holds to 1e-12.
func ReferencePi(intervals int) float64 {
	return PartialSum(1, intervals+1, intervals)
}

// Error returns |estimate − π| for convenience in experiments.
func Error(estimate float64) float64 { return math.Abs(estimate - math.Pi) }
