// Package trace collects and renders the protocol events emitted by the
// simulation engine (core.Config.OnEvent): per-message lifecycle
// timelines and aggregate per-round activity. It exists for debugging
// NoC applications and for asserting engine-level lifecycle invariants
// in tests (a delivery must be preceded by a transmission toward that
// tile; nothing happens to a message before it is created; and so on).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/packet"
)

// Collector accumulates events. Attach with Collector.Hook as the
// network's OnEvent. Not safe for concurrent use (the round engine is
// single-threaded).
type Collector struct {
	events []core.Event
	// Cap bounds memory (0 = unlimited); beyond it, new events are
	// dropped and Truncated is set.
	Cap int
	// Truncated reports that Cap was hit and the timeline is incomplete.
	Truncated bool
}

// Hook returns the function to install as core.Config.OnEvent.
func (c *Collector) Hook() func(core.Event) {
	return func(ev core.Event) {
		if c.Cap > 0 && len(c.events) >= c.Cap {
			c.Truncated = true
			return
		}
		c.events = append(c.events, ev)
	}
}

// Len returns the number of collected events.
func (c *Collector) Len() int { return len(c.events) }

// Events returns all events in emission order.
func (c *Collector) Events() []core.Event { return c.events }

// Of returns the events of one message, in emission order.
func (c *Collector) Of(id packet.MsgID) []core.Event {
	var out []core.Event
	for _, ev := range c.events {
		if ev.Msg == id {
			out = append(out, ev)
		}
	}
	return out
}

// CountByKind tallies events per kind.
func (c *Collector) CountByKind() map[core.EventKind]int {
	out := map[core.EventKind]int{}
	for _, ev := range c.events {
		out[ev.Kind]++
	}
	return out
}

// Delivered reports whether msg was delivered to tile.
func (c *Collector) Delivered(id packet.MsgID, tile packet.TileID) bool {
	for _, ev := range c.events {
		if ev.Kind == core.EvDeliver && ev.Msg == id && ev.Tile == tile {
			return true
		}
	}
	return false
}

// Timeline renders a message's lifecycle as one line per event.
func (c *Collector) Timeline(id packet.MsgID) string {
	var b strings.Builder
	fmt.Fprintf(&b, "message %d:\n", id)
	for _, ev := range c.Of(id) {
		switch ev.Kind {
		case core.EvTransmit:
			fmt.Fprintf(&b, "  round %3d  %-8s tile %d -> tile %d\n", ev.Round, ev.Kind, ev.Tile, ev.Peer)
		case core.EvDeliver:
			fmt.Fprintf(&b, "  round %3d  %-8s at tile %d (from tile %d)\n", ev.Round, ev.Kind, ev.Tile, ev.Peer)
		default:
			fmt.Fprintf(&b, "  round %3d  %-8s at tile %d\n", ev.Round, ev.Kind, ev.Tile)
		}
	}
	return b.String()
}

// RoundActivity returns (round, transmissions in that round) pairs,
// sorted by round — a quick congestion profile.
func (c *Collector) RoundActivity() [][2]int {
	counts := map[int]int{}
	for _, ev := range c.events {
		if ev.Kind == core.EvTransmit {
			counts[ev.Round]++
		}
	}
	out := make([][2]int, 0, len(counts))
	for round, n := range counts {
		out = append(out, [2]int{round, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// CheckInvariants validates engine-level lifecycle ordering over the
// collected events and returns the violations found (empty = clean):
//
//  1. every message's first event is its creation;
//  2. a delivery at tile T is preceded by a transmission toward T of the
//     same message;
//  3. rounds are non-decreasing in emission order.
func (c *Collector) CheckInvariants() []string {
	var violations []string
	born := map[packet.MsgID]bool{}
	inbound := map[packet.MsgID]map[packet.TileID]bool{}
	lastRound := 0
	for i, ev := range c.events {
		if ev.Round < lastRound {
			violations = append(violations,
				fmt.Sprintf("event %d: round went backwards (%d after %d)", i, ev.Round, lastRound))
		}
		lastRound = ev.Round
		switch ev.Kind {
		case core.EvCreated:
			born[ev.Msg] = true
		case core.EvTransmit:
			if !born[ev.Msg] {
				violations = append(violations,
					fmt.Sprintf("event %d: message %d transmitted before creation", i, ev.Msg))
			}
			if inbound[ev.Msg] == nil {
				inbound[ev.Msg] = map[packet.TileID]bool{}
			}
			inbound[ev.Msg][ev.Peer] = true
		case core.EvDeliver:
			if !inbound[ev.Msg][ev.Tile] {
				violations = append(violations,
					fmt.Sprintf("event %d: message %d delivered at tile %d without an inbound transmission",
						i, ev.Msg, ev.Tile))
			}
		case core.EvExpire, core.EvOverflow:
			if ev.Msg != 0 && !born[ev.Msg] {
				violations = append(violations,
					fmt.Sprintf("event %d: message %d %v before creation", i, ev.Msg, ev.Kind))
			}
		}
	}
	return violations
}
