package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/topology"
)

// traced runs a single unicast under the collector.
func traced(t *testing.T, cfg core.Config) (*Collector, packet.MsgID) {
	t.Helper()
	col := &Collector{}
	cfg.OnEvent = col.Hook()
	net, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := net.Inject(0, 15, 1, []byte("trace"))
	net.Drain(200)
	return col, id
}

func TestLifecycleEventsPresent(t *testing.T) {
	col, id := traced(t, core.Config{
		Topo: topology.NewGrid(4, 4), P: 1, TTL: 10, MaxRounds: 100, Seed: 1,
	})
	evs := col.Of(id)
	if len(evs) == 0 {
		t.Fatal("no events for the message")
	}
	if evs[0].Kind != core.EvCreated {
		t.Fatalf("first event = %v, want created", evs[0].Kind)
	}
	counts := col.CountByKind()
	for _, k := range []core.EventKind{core.EvCreated, core.EvTransmit, core.EvDeliver, core.EvExpire} {
		if counts[k] == 0 {
			t.Fatalf("no %v events", k)
		}
	}
	if !col.Delivered(id, 15) {
		t.Fatal("Delivered(id, 15) false")
	}
	if col.Delivered(id, 3) {
		t.Fatal("Delivered reported an unaddressed tile")
	}
}

func TestInvariantsCleanRun(t *testing.T) {
	col, _ := traced(t, core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.6, TTL: 12, MaxRounds: 100, Seed: 2,
	})
	if v := col.CheckInvariants(); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
}

func TestInvariantsUnderFaults(t *testing.T) {
	col, _ := traced(t, core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.75, TTL: 12, MaxRounds: 150, Seed: 3,
		Fault: fault.Model{PUpset: 0.3, POverflow: 0.2, SigmaSync: 0.5,
			DeadTiles: 2, Protect: []packet.TileID{0, 15}},
	})
	if v := col.CheckInvariants(); len(v) != 0 {
		t.Fatalf("invariant violations under faults: %v", v)
	}
	if col.CountByKind()[core.EvUpset] == 0 {
		t.Fatal("no upset events recorded")
	}
}

func TestTimelineRendering(t *testing.T) {
	col, id := traced(t, core.Config{
		Topo: topology.NewGrid(2, 2), P: 1, TTL: 5, MaxRounds: 30, Seed: 4,
	})
	tl := col.Timeline(id)
	for _, want := range []string{"message 1:", "created", "transmit", "expire"} {
		if !strings.Contains(tl, want) {
			t.Fatalf("timeline missing %q:\n%s", want, tl)
		}
	}
}

func TestRoundActivityProfile(t *testing.T) {
	col, _ := traced(t, core.Config{
		Topo: topology.NewGrid(4, 4), P: 1, TTL: 8, MaxRounds: 60, Seed: 5,
	})
	act := col.RoundActivity()
	if len(act) == 0 {
		t.Fatal("no activity profile")
	}
	for i := 1; i < len(act); i++ {
		if act[i][0] <= act[i-1][0] {
			t.Fatal("rounds not strictly increasing")
		}
	}
	total := 0
	for _, a := range act {
		total += a[1]
	}
	if total != col.CountByKind()[core.EvTransmit] {
		t.Fatal("activity total does not match transmit count")
	}
}

func TestCapTruncates(t *testing.T) {
	col := &Collector{Cap: 10}
	cfg := core.Config{
		Topo: topology.NewGrid(4, 4), P: 1, TTL: 10, MaxRounds: 60, Seed: 6,
		OnEvent: col.Hook(),
	}
	net, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.Inject(0, packet.Broadcast, 0, nil)
	net.Drain(100)
	if col.Len() != 10 || !col.Truncated {
		t.Fatalf("cap not enforced: len=%d truncated=%v", col.Len(), col.Truncated)
	}
}

// Sweep several fault mixes and seeds: the lifecycle invariants must hold
// everywhere — this is a fuzz of the engine itself.
func TestInvariantsFuzz(t *testing.T) {
	models := []fault.Model{
		{},
		{PUpset: 0.5},
		{POverflow: 0.5},
		{SigmaSync: 1.5},
		{PUpset: 0.4, POverflow: 0.3, SigmaSync: 1, LiteralUpsets: true},
	}
	for mi, m := range models {
		for seed := uint64(0); seed < 5; seed++ {
			m.Protect = []packet.TileID{0, 15}
			col, _ := traced(t, core.Config{
				Topo: topology.NewGrid(4, 4), P: 0.6, TTL: 10, MaxRounds: 120,
				Seed: seed, Fault: m,
			})
			if v := col.CheckInvariants(); len(v) != 0 {
				t.Fatalf("model %d seed %d: %v", mi, seed, v)
			}
		}
	}
}
