package crc

import (
	"hash/crc32"
	"testing"
)

// Fuzz targets pinning the equivalence of each CRC's two implementations
// on arbitrary byte strings. The table-driven path is what the simulator
// runs; the bit-serial shift register is the hardware-faithful reference
// (Fig. 3-5). testing/quick covers the same property with its own small
// generator; the fuzz targets add coverage-guided input generation and a
// persistent corpus, and run as a smoke pass in CI.

func FuzzSerialEquivalence16(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("123456789"))
	f.Add([]byte{0xff, 0x00, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		want := Checksum16(data)
		if got := ChecksumSerial16(data); got != want {
			t.Fatalf("serial CRC-16 %#04x != table %#04x", got, want)
		}
		// The register must also be position-independent: clocking the
		// same bytes through a reused (Reset) engine gives the same sum.
		s := NewShiftRegister16()
		s.ClockByte(0xa5)
		s.Reset()
		for _, b := range data {
			s.ClockByte(b)
		}
		if got := s.Sum(); got != want {
			t.Fatalf("reset+reuse CRC-16 %#04x != table %#04x", got, want)
		}
	})
}

func FuzzSerialEquivalence32(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("123456789"))
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		want := crc32.ChecksumIEEE(data)
		if got := Checksum32(data); got != want {
			t.Fatalf("table CRC-32 %#08x != stdlib %#08x", got, want)
		}
		if got := ChecksumSerial32(data); got != want {
			t.Fatalf("serial CRC-32 %#08x != stdlib %#08x", got, want)
		}
	})
}
