package crc

import (
	"hash/crc32"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestChecksum16KnownVector(t *testing.T) {
	// "123456789" is the standard CRC check string; CRC-16/CCITT-FALSE
	// of it is 0x29B1.
	if got := Checksum16([]byte("123456789")); got != 0x29b1 {
		t.Fatalf("Checksum16(check string) = %#04x, want 0x29b1", got)
	}
}

func TestChecksum16Empty(t *testing.T) {
	if got := Checksum16(nil); got != 0xffff {
		t.Fatalf("Checksum16(nil) = %#04x, want 0xffff (initial state)", got)
	}
}

func TestChecksum32MatchesStdlib(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		[]byte("123456789"),
		[]byte("on-chip stochastic communication"),
		make([]byte, 1024),
	}
	for _, c := range cases {
		if got, want := Checksum32(c), crc32.ChecksumIEEE(c); got != want {
			t.Errorf("Checksum32(%q) = %#08x, want %#08x", c, got, want)
		}
	}
}

func TestSerialMatchesTable16(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 200; i++ {
		n := r.Intn(64)
		data := make([]byte, n)
		for j := range data {
			data[j] = byte(r.Uint64())
		}
		if got, want := ChecksumSerial16(data), Checksum16(data); got != want {
			t.Fatalf("serial %#04x != table %#04x for %v", got, want, data)
		}
	}
}

func TestSerialMatchesTable32(t *testing.T) {
	r := rng.New(2)
	for i := 0; i < 200; i++ {
		n := r.Intn(64)
		data := make([]byte, n)
		for j := range data {
			data[j] = byte(r.Uint64())
		}
		if got, want := ChecksumSerial32(data), Checksum32(data); got != want {
			t.Fatalf("serial %#08x != table %#08x for %v", got, want, data)
		}
	}
}

func TestShiftRegisterReset(t *testing.T) {
	s := NewShiftRegister16()
	s.ClockByte(0xa5)
	s.Reset()
	if s.Sum() != 0xffff {
		t.Fatalf("after Reset, Sum = %#04x", s.Sum())
	}
}

// Property: the table-driven and bit-serial CRC-16 agree on arbitrary input.
func TestQuickSerialEquivalence16(t *testing.T) {
	f := func(data []byte) bool {
		return Checksum16(data) == ChecksumSerial16(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CRC-32 agrees with the stdlib on arbitrary input.
func TestQuickStdlibEquivalence32(t *testing.T) {
	f := func(data []byte) bool {
		return Checksum32(data) == crc32.ChecksumIEEE(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: any single-bit error is detected by CRC-16.
func TestSingleBitErrorsDetected(t *testing.T) {
	data := []byte("stochastic communication packet payload")
	want := Checksum16(data)
	for i := range data {
		for b := 0; b < 8; b++ {
			corrupted := make([]byte, len(data))
			copy(corrupted, data)
			corrupted[i] ^= 1 << uint(b)
			if Checksum16(corrupted) == want {
				t.Fatalf("single-bit error at byte %d bit %d undetected", i, b)
			}
		}
	}
}

// Property: any burst error up to 16 bits is detected by CRC-16 (a
// guarantee of any degree-16 generator polynomial with a nonzero constant
// term).
func TestBurstErrorsDetected16(t *testing.T) {
	r := rng.New(3)
	data := make([]byte, 32)
	for i := range data {
		data[i] = byte(r.Uint64())
	}
	want := Checksum16(data)
	for trial := 0; trial < 500; trial++ {
		burstLen := 1 + r.Intn(16) // bits
		start := r.Intn(len(data)*8 - burstLen)
		corrupted := make([]byte, len(data))
		copy(corrupted, data)
		// Flip the first and last bits of the burst so the burst length
		// is exactly burstLen, and random bits in between.
		flip := func(bit int) { corrupted[bit/8] ^= 1 << uint(7-bit%8) }
		flip(start)
		if burstLen > 1 {
			flip(start + burstLen - 1)
			for b := start + 1; b < start+burstLen-1; b++ {
				if r.Bool(0.5) {
					flip(b)
				}
			}
		}
		if Checksum16(corrupted) == want {
			t.Fatalf("burst error (len %d at %d) undetected", burstLen, start)
		}
	}
}

func TestRandomErrorsDetectionRate(t *testing.T) {
	// Random corruption should evade CRC-16 with probability ~2^-16;
	// in 20000 trials we expect ~0.3 misses, so >5 means a broken code.
	r := rng.New(4)
	data := make([]byte, 24)
	for i := range data {
		data[i] = byte(r.Uint64())
	}
	want := Checksum16(data)
	misses := 0
	for trial := 0; trial < 20000; trial++ {
		corrupted := make([]byte, len(data))
		for i := range corrupted {
			corrupted[i] = byte(r.Uint64())
		}
		if Checksum16(corrupted) == want {
			misses++
		}
	}
	if misses > 5 {
		t.Fatalf("random corruption evaded CRC-16 %d/20000 times", misses)
	}
}

func BenchmarkChecksum16(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		_ = Checksum16(data)
	}
}

func BenchmarkChecksumSerial16(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		_ = ChecksumSerial16(data)
	}
}

func BenchmarkChecksum32(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		_ = Checksum32(data)
	}
}
