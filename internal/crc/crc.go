// Package crc implements the cyclic redundancy checks used to detect data
// upsets in stochastic NoC packets (thesis §3.2.2).
//
// Two codes are provided: CRC-16-CCITT, the cheap code the thesis argues a
// tile would realistically implement ("CRC encoders and decoders are easy
// to implement in hardware, as they only require one shift register"), and
// CRC-32 (IEEE 802.3) for the wider headers used by larger payloads.
//
// Each code comes in two functionally identical implementations:
//
//   - a table-driven fast path used by the simulator's inner loop, and
//   - a bit-serial "shift register" model (one bit per step) that mirrors
//     the hardware structure of Fig. 3-5 and is used in tests to validate
//     the fast path against a literal reading of the hardware.
package crc

// CCITT polynomial x^16 + x^12 + x^5 + 1, MSB-first convention.
const ccittPoly = 0x1021

// IEEE 802.3 polynomial, reflected (LSB-first) convention, as used by
// Ethernet and hash/crc32.
const ieeePoly = 0xedb88320

var (
	ccittTable [256]uint16
	ieeeTable  [256]uint32
)

func init() {
	for i := 0; i < 256; i++ {
		c16 := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if c16&0x8000 != 0 {
				c16 = c16<<1 ^ ccittPoly
			} else {
				c16 <<= 1
			}
		}
		ccittTable[i] = c16

		c32 := uint32(i)
		for b := 0; b < 8; b++ {
			if c32&1 != 0 {
				c32 = c32>>1 ^ ieeePoly
			} else {
				c32 >>= 1
			}
		}
		ieeeTable[i] = c32
	}
}

// Checksum16 returns the CRC-16-CCITT checksum of data with initial value
// 0xffff (the "CCITT-FALSE" variant common in hardware link layers).
func Checksum16(data []byte) uint16 {
	crc := uint16(0xffff)
	for _, b := range data {
		crc = crc<<8 ^ ccittTable[byte(crc>>8)^b]
	}
	return crc
}

// Checksum32 returns the CRC-32 (IEEE 802.3) checksum of data.
func Checksum32(data []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range data {
		crc = crc>>8 ^ ieeeTable[byte(crc)^b]
	}
	return ^crc
}

// ShiftRegister16 is a bit-serial CRC-16-CCITT engine modeling the single
// 16-bit linear-feedback shift register a tile's CRC circuit consists of.
// Bits are clocked in MSB-first, one per ClockBit call, exactly as they
// would arrive on a serial link.
type ShiftRegister16 struct {
	reg uint16
}

// NewShiftRegister16 returns an engine preset to the 0xffff initial state.
func NewShiftRegister16() *ShiftRegister16 {
	return &ShiftRegister16{reg: 0xffff}
}

// Reset returns the register to its initial state.
func (s *ShiftRegister16) Reset() { s.reg = 0xffff }

// ClockBit shifts one input bit into the register.
func (s *ShiftRegister16) ClockBit(bit uint8) {
	feedback := (s.reg>>15)&1 ^ uint16(bit&1)
	s.reg <<= 1
	if feedback != 0 {
		s.reg ^= ccittPoly
	}
}

// ClockByte shifts the eight bits of b into the register, MSB first.
func (s *ShiftRegister16) ClockByte(b byte) {
	for i := 7; i >= 0; i-- {
		s.ClockBit(b >> uint(i))
	}
}

// Sum returns the current register contents (the checksum after all data
// bits have been clocked in).
func (s *ShiftRegister16) Sum() uint16 { return s.reg }

// ChecksumSerial16 computes the CRC-16-CCITT of data via the bit-serial
// engine. It is the hardware-faithful reference for Checksum16.
func ChecksumSerial16(data []byte) uint16 {
	s := NewShiftRegister16()
	for _, b := range data {
		s.ClockByte(b)
	}
	return s.Sum()
}

// ChecksumSerial32 computes the CRC-32 of data bit-serially (LSB-first,
// reflected), as the reference for Checksum32.
func ChecksumSerial32(data []byte) uint32 {
	crc := ^uint32(0)
	for _, b := range data {
		for i := 0; i < 8; i++ {
			bit := (uint32(b)>>uint(i))&1 ^ crc&1
			crc >>= 1
			if bit != 0 {
				crc ^= ieeePoly
			}
		}
	}
	return ^crc
}
