package snapshot_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/topology"
)

// FuzzRestore feeds arbitrary bytes through every checkpoint decode
// surface. The contract under fuzzing is narrow and absolute: corrupt,
// truncated or hostile input must come back as an error — never a panic,
// never an input-controlled huge allocation. Three surfaces are
// exercised, in increasing depth:
//
//  1. the container codec (snapshot.Decode + section walk),
//  2. the full checkpoint-file reader (sim.ReadCheckpoint), whose CRC
//     turns almost all mutants into early ErrCorrupt,
//  3. the post-CRC payload decoders (core.RestoreSection and
//     metrics.RestoreState) fed the raw bytes directly — this is the
//     path the CRC cannot shield, where the bounds checks and
//     cross-field validation of the decoders themselves must hold.
//
// The seed corpus is built from REAL checkpoints (a mid-run faulty
// broadcast, a fresh network, a recorder-less file), so the fuzzer
// starts at the deep end of the decoders instead of spending its budget
// getting past the magic number.

// fuzzCfg is the configuration every decode attempt restores against.
// Must be deterministic and cheap: it is rebuilt for every fuzz input.
func fuzzCfg() core.Config {
	return core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.6, TTL: 6, MaxRounds: 100, Seed: 42,
	}
}

// realCheckpoint serializes an actual mid-run simulation — in-flight
// arrivals, partial series and all — as seed-corpus material.
func realCheckpoint(tb testing.TB, rounds int, withRecorder bool) []byte {
	tb.Helper()
	cfg := fuzzCfg()
	cfg.Fault.PUpset = 0.2
	cfg.Fault.SigmaSync = 0.7
	var rec *metrics.Recorder
	if withRecorder {
		rec = metrics.NewRecorder(metrics.Config{Rounds: 64})
		rec.Install(&cfg)
	}
	net, err := core.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	id, err := net.Inject(0, packet.Broadcast, 0, []byte("fuzz seed"))
	if err != nil {
		tb.Fatal(err)
	}
	if rec != nil {
		rec.Watch(id)
	}
	for i := 0; i < rounds; i++ {
		net.Step()
	}
	var buf bytes.Buffer
	if err := sim.WriteCheckpoint(&buf, sim.CheckpointMeta{Replica: 1, Seed: 42}, net, rec); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// recycledCheckpoint serializes a churned recycling network: retired
// slots, a populated free list and awareness ledger, and reissued
// generations — the v2 payload sections a dense checkpoint never has.
func recycledCheckpoint(tb testing.TB) []byte {
	tb.Helper()
	cfg := fuzzCfg()
	cfg.Recycle = true
	cfg.TTL = 3
	net, err := core.New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	// Enough churn rounds for slots to expire, retire and be reissued
	// with bumped generations.
	for round := 0; round < 12; round++ {
		if _, err := net.Inject(packet.TileID(round%16), packet.Broadcast, 0, nil); err != nil {
			tb.Fatal(err)
		}
		net.Step()
	}
	var buf bytes.Buffer
	if err := sim.WriteCheckpoint(&buf, sim.CheckpointMeta{Replica: 1, Seed: 42}, net, nil); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzRestore(f *testing.F) {
	f.Add(realCheckpoint(f, 4, true))  // mid-run, skewed arrivals in flight
	f.Add(realCheckpoint(f, 0, true))  // fresh network, empty series
	f.Add(realCheckpoint(f, 7, false)) // no metrics section
	f.Add(recycledCheckpoint(f))       // v2: free list, ledger, generations
	f.Add([]byte("SNOC"))              // magic alone
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Surface 1: the container codec. A container that decodes must
		// also survive a full section walk.
		if dec, err := snapshot.Decode(data); err == nil {
			for _, id := range []snapshot.SectionID{snapshot.SecCore, snapshot.SecMetrics, snapshot.SecSim} {
				if !dec.Has(id) {
					continue
				}
				r, err := dec.Section(id)
				if err != nil {
					t.Fatalf("Has(%d) true but Section failed: %v", id, err)
				}
				for r.Err() == nil && r.Remaining() > 0 {
					_ = r.ReadBytes() // arbitrary typed walk; must stay in bounds
				}
			}
		}

		// Surface 2: the checkpoint-file reader, recorder attached.
		rec := metrics.NewRecorder(metrics.Config{Rounds: 64})
		cfg := fuzzCfg()
		rec.Install(&cfg)
		_, _, _ = sim.ReadCheckpoint(bytes.NewReader(data), cfg, rec)

		// Surface 3: raw payload decoders, no CRC shield. Errors are the
		// expected outcome; only panics and runaway allocations can fail
		// this fuzz target.
		_, _ = core.RestoreSection(snapshot.NewReader(data), fuzzCfg())
		// Same surface with recycling on: only this config reaches the
		// free-list, ledger and generation validation of the v2 decoder.
		rcfg := fuzzCfg()
		rcfg.Recycle = true
		rcfg.TTL = 3
		_, _ = core.RestoreSection(snapshot.NewReader(data), rcfg)
		rec2 := metrics.NewRecorder(metrics.Config{Rounds: 64})
		_ = rec2.RestoreState(snapshot.NewReader(data))
	})
}
