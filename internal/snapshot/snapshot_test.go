package snapshot

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"repro/internal/crc"
)

// encode builds a small two-section container used across the tests.
func encode(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	a := enc.Section(SecCore)
	a.U8(7)
	a.U16(0xbeef)
	a.U32(0xdeadbeef)
	a.U64(1 << 60)
	a.Uvarint(300)
	a.Int(42)
	a.F64(math.Pi)
	a.Bool(true)
	a.WriteBytes([]byte("payload"))
	b := enc.Section(SecMetrics)
	b.WriteBytes(nil)
	if err := enc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	dec, err := NewDecoder(bytes.NewReader(encode(t)))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if !dec.Has(SecCore) || !dec.Has(SecMetrics) || dec.Has(SecSim) {
		t.Fatal("section index wrong")
	}
	r, err := dec.Section(SecCore)
	if err != nil {
		t.Fatalf("Section: %v", err)
	}
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U16(); got != 0xbeef {
		t.Errorf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xdeadbeef {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.Uvarint(); got != 300 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.Int(); got != 42 {
		t.Errorf("Int = %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Errorf("F64 = %v", got)
	}
	if got := r.Bool(); !got {
		t.Error("Bool = false")
	}
	if got := r.ReadBytes(); string(got) != "payload" {
		t.Errorf("ReadBytes = %q", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	m, err := dec.Section(SecMetrics)
	if err != nil {
		t.Fatalf("Section(metrics): %v", err)
	}
	if got := m.ReadBytes(); len(got) != 0 {
		t.Errorf("empty bytes decoded to %q", got)
	}
	if err := m.Finish(); err != nil {
		t.Fatalf("Finish(metrics): %v", err)
	}
}

func TestEveryBitFlipIsDetected(t *testing.T) {
	good := encode(t)
	for i := range good {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte(nil), good...)
			bad[i] ^= 1 << bit
			if _, err := Decode(bad); err == nil {
				t.Fatalf("flipping byte %d bit %d went undetected", i, bit)
			}
		}
	}
}

func TestEveryTruncationIsDetected(t *testing.T) {
	good := encode(t)
	for n := 0; n < len(good); n++ {
		if _, err := Decode(good[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
}

func TestUnknownVersionRejected(t *testing.T) {
	good := encode(t)
	bad := append([]byte(nil), good...)
	bad[4], bad[5] = 0x7f, 0xff // bump the version field...
	// ...and re-seal the CRC so only the version mismatch remains.
	var buf bytes.Buffer
	body := bad[:len(bad)-4]
	w := NewWriter()
	w.buf = append(w.buf, body...)
	w.U32(crc.Checksum32(body))
	buf.Write(w.Bytes())
	_, err := Decode(buf.Bytes())
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

func TestMissingSection(t *testing.T) {
	dec, err := Decode(encode(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Section(SecSim); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing section: err = %v, want ErrCorrupt", err)
	}
}

func TestReaderGuards(t *testing.T) {
	// A huge declared count must fail before any allocation is sized
	// from it.
	w := NewWriter()
	w.Uvarint(1 << 40)
	r := NewReader(w.Bytes())
	if n := r.Count(1); n != 0 || r.Err() == nil {
		t.Fatalf("Count accepted an impossible element count (n=%d err=%v)", n, r.Err())
	}

	// Int overflow guard.
	w = NewWriter()
	w.Uvarint(math.MaxUint64)
	r = NewReader(w.Bytes())
	if r.Int(); r.Err() == nil {
		t.Fatal("Int accepted a value exceeding MaxInt")
	}

	// Bool byte other than 0/1.
	r = NewReader([]byte{2})
	if r.Bool(); r.Err() == nil {
		t.Fatal("Bool accepted byte 2")
	}

	// Sticky error: reads after a failure return zero values, and Finish
	// reports the original failure.
	r = NewReader([]byte{0xff}) // truncated uvarint continuation
	_ = r.Uvarint()
	first := r.Err()
	if first == nil {
		t.Fatal("truncated uvarint not detected")
	}
	if got := r.U64(); got != 0 {
		t.Fatalf("read after failure returned %d", got)
	}
	if err := r.Finish(); !errors.Is(err, ErrCorrupt) || err != first {
		t.Fatalf("Finish = %v, want the first error", err)
	}
}

func TestFinishRejectsTrailingBytes(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	_ = r.U8()
	if err := r.Finish(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Finish with trailing bytes = %v, want ErrCorrupt", err)
	}
}

func TestOversizedContainerRejected(t *testing.T) {
	if _, err := Decode(make([]byte, MaxLen+1)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized container: err = %v, want ErrCorrupt", err)
	}
}
