// Package snapshot defines the checkpoint container format of the
// simulator: a versioned, CRC-guarded binary envelope that carries the
// complete state of an interrupted run so it can be resumed
// bit-identically (see DESIGN.md, "Checkpoint format & invariants").
//
// The container is a flat sequence of sections:
//
//	magic "SNOC" (4) | version u16 BE (2) | sections... | CRC-32 BE (4)
//	section: id uvarint | length uvarint | payload
//
// Each subsystem owns one section and encodes its payload with the
// primitive codec below: the round engine (core), the metrics recorder
// (metrics) and the Monte Carlo runner's replica metadata (sim). The
// trailing CRC-32 — the repository's own internal/crc implementation, the
// same code that guards packets on the wire — covers every preceding byte,
// so a truncated or bit-flipped checkpoint is rejected before any section
// is interpreted.
//
// Decoding is hardened against hostile input (FuzzRestore): every length
// and count field is validated against the bytes actually present before
// any allocation is sized from it, so corrupt data yields an error
// wrapping ErrCorrupt — never a panic or an attacker-chosen allocation.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/crc"
)

// Version is the container format version this package writes. Decoders
// reject versions they do not know (there is no cross-version migration:
// a checkpoint is a short-lived artifact of one simulator build).
const Version = 1

// MaxLen bounds the size of a container a Decoder will read (256 MiB —
// far below an OOM, but with room for mega-mesh state: a churning
// 1024×1024 fabric serializes to ~52 MiB of per-tile RNG and traffic
// state).
const MaxLen = 256 << 20

// magic identifies a stochastic-NoC checkpoint container.
var magic = [4]byte{'S', 'N', 'O', 'C'}

// SectionID names one section of a container. IDs are a closed registry
// (this package's constants) so independently developed sections cannot
// collide; 0 is reserved.
type SectionID uint64

// The registered sections.
const (
	// SecCore is the round engine's complete state (internal/core).
	SecCore SectionID = 1
	// SecMetrics is the metrics recorder's partial per-round series
	// (internal/metrics).
	SecMetrics SectionID = 2
	// SecSim is the Monte Carlo runner's replica metadata (internal/sim).
	SecSim SectionID = 3
)

// ErrCorrupt is wrapped by every decoding error caused by malformed,
// truncated or checksum-failing input. Callers that only need "is this
// checkpoint usable" can errors.Is against it.
var ErrCorrupt = errors.New("snapshot: corrupt or truncated data")

// ErrVersion is wrapped by decoding errors caused by an unknown container
// version — the data may be perfectly intact, just written by a different
// simulator build.
var ErrVersion = errors.New("snapshot: unsupported container version")

// corruptf builds an ErrCorrupt-wrapping error.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Writer accumulates one section's payload. The zero value is ready to
// use; all methods append to an internal buffer, so encoding never fails
// mid-way — errors surface only at Encoder.Close, when the container is
// flushed to the underlying io.Writer.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty standalone Writer, for callers that need a
// raw payload outside a container (digest computation, tests).
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the accumulated payload. The slice aliases the Writer's
// buffer and is invalidated by further writes.
func (w *Writer) Bytes() []byte { return w.buf }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.BigEndian.AppendUint16(w.buf, v) }

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// Int appends a non-negative int as a uvarint. Negative values are a
// programming error in the encoder and panic rather than corrupting the
// stream silently.
func (w *Writer) Int(v int) {
	if v < 0 {
		panic(fmt.Sprintf("snapshot: Writer.Int(%d) negative", v))
	}
	w.Uvarint(uint64(v))
}

// F64 appends a float64 as its IEEE 754 bit pattern (big-endian), which
// round-trips every value including NaNs bit-exactly.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends a boolean as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// WriteBytes appends a length-prefixed byte string.
func (w *Writer) WriteBytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// WriteRaw appends b verbatim, with no length prefix. It exists for
// callers that splice an already-encoded payload into a section (tests,
// checkpoint repair tools); normal encoding should use WriteBytes.
func (w *Writer) WriteRaw(b []byte) { w.buf = append(w.buf, b...) }

// Encoder writes one container to an io.Writer. Sections are appended
// with Section and the container — header, sections, trailing CRC — is
// flushed by Close.
type Encoder struct {
	w        io.Writer
	sections []encSection
}

type encSection struct {
	id SectionID
	sw *Writer
}

// NewEncoder returns an Encoder that will flush a container to w on
// Close.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// Section starts a new section and returns the Writer for its payload.
// The payload may be written until Close; sections are laid out in the
// order they were started. Starting two sections with the same id is a
// programming error and panics.
func (e *Encoder) Section(id SectionID) *Writer {
	if id == 0 {
		panic("snapshot: SectionID 0 is reserved")
	}
	for _, s := range e.sections {
		if s.id == id {
			panic(fmt.Sprintf("snapshot: duplicate section id %d", id))
		}
	}
	sw := NewWriter()
	e.sections = append(e.sections, encSection{id: id, sw: sw})
	return sw
}

// Close assembles the container and writes it to the underlying
// io.Writer in one call.
func (e *Encoder) Close() error {
	body := NewWriter()
	body.buf = append(body.buf, magic[:]...)
	body.U16(Version)
	for _, s := range e.sections {
		body.Uvarint(uint64(s.id))
		body.WriteBytes(s.sw.Bytes())
	}
	body.U32(crc.Checksum32(body.Bytes()))
	_, err := e.w.Write(body.Bytes())
	return err
}

// Decoder parses one container: it reads the input fully (bounded by
// MaxLen), verifies the magic, version and trailing CRC-32, and indexes
// the sections. Individual sections are then read with Section.
type Decoder struct {
	sections map[SectionID][]byte
}

// NewDecoder reads a complete container from r and validates its
// envelope. All returned errors wrap ErrCorrupt (malformed data) or
// ErrVersion (intact data from an unknown format version).
func NewDecoder(r io.Reader) (*Decoder, error) {
	data, err := io.ReadAll(io.LimitReader(r, MaxLen+1))
	if err != nil {
		return nil, fmt.Errorf("snapshot: read: %w", err)
	}
	return Decode(data)
}

// Decode parses a complete in-memory container (the io.Reader-free form
// NewDecoder and the fuzz harness share).
func Decode(data []byte) (*Decoder, error) {
	if len(data) > MaxLen {
		return nil, corruptf("container exceeds MaxLen (%d bytes)", len(data))
	}
	const headerLen = len(magic) + 2
	const crcLen = 4
	if len(data) < headerLen+crcLen {
		return nil, corruptf("container too short (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != magic {
		return nil, corruptf("bad magic %q", data[:4])
	}
	body, tail := data[:len(data)-crcLen], data[len(data)-crcLen:]
	if got, want := crc.Checksum32(body), binary.BigEndian.Uint32(tail); got != want {
		return nil, corruptf("CRC mismatch: computed %08x, stored %08x", got, want)
	}
	// The CRC passed, so the version field is trustworthy: an unknown
	// version is a build mismatch, not corruption.
	if v := binary.BigEndian.Uint16(data[4:6]); v != Version {
		return nil, fmt.Errorf("%w: got %d, this build reads %d", ErrVersion, v, Version)
	}
	d := &Decoder{sections: map[SectionID][]byte{}}
	rest := body[headerLen:]
	for len(rest) > 0 {
		id, n := binary.Uvarint(rest)
		if n <= 0 || id == 0 {
			return nil, corruptf("bad section id")
		}
		rest = rest[n:]
		length, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, corruptf("bad section length")
		}
		rest = rest[n:]
		if length > uint64(len(rest)) {
			return nil, corruptf("section %d declares %d bytes, %d remain", id, length, len(rest))
		}
		if _, dup := d.sections[SectionID(id)]; dup {
			return nil, corruptf("duplicate section %d", id)
		}
		d.sections[SectionID(id)] = rest[:length]
		rest = rest[length:]
	}
	return d, nil
}

// Has reports whether the container carries section id.
func (d *Decoder) Has(id SectionID) bool {
	_, ok := d.sections[id]
	return ok
}

// Section returns a Reader over section id's payload, or an
// ErrCorrupt-wrapping error if the container does not carry it.
func (d *Decoder) Section(id SectionID) (*Reader, error) {
	payload, ok := d.sections[id]
	if !ok {
		return nil, corruptf("missing section %d", id)
	}
	return NewReader(payload), nil
}

// Reader decodes one section payload. Errors are sticky: the first
// malformed field poisons the Reader, every subsequent read returns a
// zero value, and Err (or Finish) reports the failure — so decoders can
// read a whole struct linearly and check once. All reads are
// bounds-checked against the bytes actually present; no count or length
// field can drive an allocation larger than the input itself.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader returns a Reader over a raw payload (the standalone form
// used for digests, tests and the fuzz harness).
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// fail records the first error.
func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = corruptf(format, args...)
	}
}

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread payload bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// Finish returns the first decoding error, or an error if unread bytes
// remain — a strict decoder calls it after the last field so that
// trailing garbage (a sign of a format mismatch) cannot pass silently.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return corruptf("%d trailing bytes after last field", len(r.data)-r.off)
	}
	return nil
}

// take consumes n bytes, or poisons the reader.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.Remaining() {
		r.fail("need %d bytes, %d remain", n, r.Remaining())
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("bad uvarint")
		return 0
	}
	r.off += n
	return v
}

// Int reads a non-negative int encoded by Writer.Int, rejecting values
// that overflow int.
func (r *Reader) Int() int {
	v := r.Uvarint()
	if v > math.MaxInt {
		r.fail("int field %d overflows", v)
		return 0
	}
	return int(v)
}

// Count reads an element count whose elements each occupy at least
// elemMin encoded bytes, rejecting counts the remaining input cannot
// possibly hold — the guard that keeps a corrupt count from sizing a
// huge allocation.
func (r *Reader) Count(elemMin int) int {
	if elemMin < 1 {
		elemMin = 1
	}
	v := r.Uvarint()
	if v > uint64(r.Remaining()/elemMin) {
		r.fail("count %d exceeds remaining input (%d bytes, >=%d each)", v, r.Remaining(), elemMin)
		return 0
	}
	return int(v)
}

// F64 reads a float64 written by Writer.F64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a boolean, rejecting bytes other than 0 and 1 (a corrupt
// flag byte should fail loudly, not truthy-convert).
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("bad bool byte")
		return false
	}
}

// ReadBytes reads a length-prefixed byte string written by WriteBytes,
// returning a copy that does not alias the container buffer.
func (r *Reader) ReadBytes() []byte {
	n := r.Count(1)
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
