// Package directed implements destination-biased stochastic communication,
// a natural extension the thesis leaves open: keep the gossip protocol —
// probabilistic, replicated, CRC-guarded — but skew the per-port
// forwarding probability toward the destination. It interpolates between
// pure gossip (bias 0: uniform ports, maximal robustness, maximal
// redundancy) and XY-like directionality (high bias: near-minimal paths,
// but sideways probability stays nonzero, so crashes are still routed
// around — unlike the brittle deterministic baseline in package
// xyrouting).
//
// The bias is expressed through core.Config.PortWeight: a port that
// reduces the Manhattan distance to the packet's destination gets weight
// 1+bias; one that increases it gets weight max(0, 1−bias); neutral ports
// (equal distance, broadcasts) keep weight 1.
package directed

import (
	"errors"

	"repro/internal/packet"
	"repro/internal/topology"
)

// ErrBadBias is returned for bias outside [0, 1].
var ErrBadBias = errors.New("directed: bias must be in [0, 1]")

// GridBias returns a core.Config.PortWeight for grid g with the given
// bias in [0, 1].
func GridBias(g *topology.Grid, bias float64) (func(from, to packet.TileID, p *packet.Packet) float64, error) {
	if bias < 0 || bias > 1 {
		return nil, ErrBadBias
	}
	return func(from, to packet.TileID, p *packet.Packet) float64 {
		if p.Dst == packet.Broadcast {
			return 1
		}
		dFrom := g.Manhattan(from, p.Dst)
		dTo := g.Manhattan(to, p.Dst)
		switch {
		case dTo < dFrom:
			return 1 + bias
		case dTo > dFrom:
			return 1 - bias
		default:
			return 1
		}
	}, nil
}
