package directed

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/stats"
	"repro/internal/topology"
)

type dirSink struct {
	got      bool
	gotRound int
}

func (s *dirSink) Init(*core.Ctx)  {}
func (s *dirSink) Round(*core.Ctx) {}
func (s *dirSink) Done() bool      { return s.got }
func (s *dirSink) Receive(ctx *core.Ctx, _ *packet.Packet) {
	if !s.got {
		s.got = true
		s.gotRound = ctx.Round()
	}
}

func TestGridBiasValidation(t *testing.T) {
	g := topology.NewGrid(4, 4)
	if _, err := GridBias(g, -0.1); err != ErrBadBias {
		t.Fatalf("err = %v", err)
	}
	if _, err := GridBias(g, 1.5); err != ErrBadBias {
		t.Fatalf("err = %v", err)
	}
	if _, err := GridBias(g, 0.5); err != nil {
		t.Fatal(err)
	}
}

func TestGridBiasWeights(t *testing.T) {
	g := topology.NewGrid(4, 4)
	w, err := GridBias(g, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	pkt := &packet.Packet{Dst: g.ID(3, 0)}
	// From (1,0): toward (2,0) decreases distance, toward (0,0) increases.
	if got := w(g.ID(1, 0), g.ID(2, 0), pkt); got != 1.6 {
		t.Fatalf("forward weight = %v", got)
	}
	if got := w(g.ID(1, 0), g.ID(0, 0), pkt); got != 0.4 {
		t.Fatalf("backward weight = %v", got)
	}
	// Broadcast: neutral everywhere.
	b := &packet.Packet{Dst: packet.Broadcast}
	if got := w(g.ID(1, 0), g.ID(0, 0), b); got != 1 {
		t.Fatalf("broadcast weight = %v", got)
	}
}

// run measures (mean latency, mean transmissions, completion rate) over
// seeds for a (1,1)->(6,6) unicast on an 8x8 grid.
func run(t *testing.T, bias float64, deadTiles int, runs int, stopSpread bool) (lat, tx stats.Summary, completion float64) {
	t.Helper()
	g := topology.NewGrid(8, 8)
	src, dst := g.ID(1, 1), g.ID(6, 6)
	var latAcc, txAcc stats.Online
	completed := 0
	for seed := uint64(0); seed < uint64(runs); seed++ {
		cfg := core.Config{
			Topo: g, P: 0.5, TTL: 24, MaxRounds: 120, Seed: seed,
			StopSpreadOnDelivery: stopSpread,
			Fault:                fault.Model{DeadTiles: deadTiles, Protect: []packet.TileID{src, dst}},
		}
		if bias > 0 {
			w, err := GridBias(g, bias)
			if err != nil {
				t.Fatal(err)
			}
			cfg.PortWeight = w
		}
		net, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sink := &dirSink{}
		net.Attach(dst, sink)
		net.Inject(src, dst, 1, []byte("d"))
		res := net.RunWhile(func(*core.Network) bool { return !sink.got })
		if !res.Completed {
			continue
		}
		completed++
		latAcc.Add(float64(sink.gotRound))
		net.Drain(64)
		txAcc.Add(float64(net.Counters().Energy.Transmissions))
	}
	return stats.Summarize(&latAcc), stats.Summarize(&txAcc), float64(completed) / float64(runs)
}

func TestBiasImprovesLatency(t *testing.T) {
	pureLat, _, pureOK := run(t, 0, 0, 20, false)
	biasLat, _, biasOK := run(t, 0.8, 0, 20, false)
	if pureOK < 0.9 || biasOK < 0.9 {
		t.Fatalf("completion: pure %v, biased %v", pureOK, biasOK)
	}
	if biasLat.Mean >= pureLat.Mean {
		t.Fatalf("bias did not cut latency: %v vs %v rounds", biasLat.Mean, pureLat.Mean)
	}
}

func TestBiasCutsTrafficWithSpreadTermination(t *testing.T) {
	// Bias alone does not cut bandwidth — the broadcast still diffuses
	// for the full TTL. Combined with spread termination on delivery
	// (§3.2.2's early stop), reaching the destination sooner directly
	// translates into fewer transmissions.
	_, pureTx, _ := run(t, 0, 0, 20, true)
	_, biasTx, _ := run(t, 0.8, 0, 20, true)
	if biasTx.Mean >= pureTx.Mean {
		t.Fatalf("bias+stop did not cut traffic: %v vs %v transmissions", biasTx.Mean, pureTx.Mean)
	}
}

func TestBiasKeepsCrashTolerance(t *testing.T) {
	// Unlike XY routing, a strongly biased gossip still finds its way
	// around crashed tiles because sideways probability stays nonzero.
	_, _, ok := run(t, 0.8, 4, 30, false)
	if ok < 0.8 {
		t.Fatalf("biased gossip completion with 4 dead tiles = %v", ok)
	}
}
