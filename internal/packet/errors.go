package packet

// Error models for arbitrary link failures, thesis Chapter 2.
//
// If a message contains n bits, the error vector is e = (e1, ..., en) with
// ei = 1 iff bit i is corrupted. Two stochastic models are defined:
//
//   - Random error vector: all 2^n - 1 non-null vectors are equally likely,
//     so p_upset = (2^n - 1) p_v ≈ 2^n p_v  =>  p_v ≈ p_upset / 2^n.
//   - Random bit error: bits fail independently with probability p_b, so
//     p_upset = 1 - (1 - p_b)^n ≈ n p_b     =>  p_b ≈ p_upset / n.
//
// Both models are implemented as in-place corruptors of an encoded frame.

import (
	"math"

	"repro/internal/rng"
)

// ErrorModel selects how a data upset scrambles a frame.
type ErrorModel int

const (
	// RandomErrorVector flips a uniformly random non-empty subset of the
	// frame's bits (Chapter 2's random error vector model).
	RandomErrorVector ErrorModel = iota
	// RandomBitError flips each bit independently with probability
	// p_b = p_upset / n, conditioned on at least one flip so that the
	// upset is never a no-op.
	RandomBitError
	// SingleBitError flips exactly one uniformly random bit — the classic
	// SEU (single-event upset) caused by a particle strike.
	SingleBitError
)

// Corrupt applies the model's error vector to frame in place, using r for
// randomness. pupset parameterizes RandomBitError's per-bit probability;
// the other models ignore it. Corrupt guarantees at least one bit flips,
// so a frame passed through Corrupt always differs from the original.
func Corrupt(model ErrorModel, frame []byte, pupset float64, r *rng.Stream) {
	if len(frame) == 0 {
		return
	}
	nbits := len(frame) * 8
	switch model {
	case SingleBitError:
		flipBit(frame, r.Intn(nbits))
	case RandomBitError:
		pb := PbFromUpset(pupset, nbits)
		flipped := false
		for bit := 0; bit < nbits; bit++ {
			if r.Bool(pb) {
				flipBit(frame, bit)
				flipped = true
			}
		}
		if !flipped {
			flipBit(frame, r.Intn(nbits))
		}
	default: // RandomErrorVector
		// A uniformly random non-null error vector: flip each bit with
		// probability 1/2, rejecting the all-zero outcome. For frames of
		// realistic size the rejection probability is negligible, but we
		// still guarantee progress for tiny frames.
		flipped := false
		for bit := 0; bit < nbits; bit++ {
			if r.Bool(0.5) {
				flipBit(frame, bit)
				flipped = true
			}
		}
		if !flipped {
			flipBit(frame, r.Intn(nbits))
		}
	}
}

func flipBit(frame []byte, bit int) {
	frame[bit/8] ^= 1 << uint(7-bit%8)
}

// PvFromUpset converts a packet-level upset probability into the
// per-error-vector probability p_v ≈ p_upset / 2^n of the random error
// vector model. nbits is the frame size in bits.
func PvFromUpset(pupset float64, nbits int) float64 {
	if nbits >= 1024 {
		// 2^n overflows float64 well before 1024 bits; the probability of
		// any individual vector is effectively zero.
		return 0
	}
	return pupset / math.Exp2(float64(nbits))
}

// PbFromUpset converts a packet-level upset probability into the per-bit
// probability p_b ≈ p_upset / n of the random bit error model.
func PbFromUpset(pupset float64, nbits int) float64 {
	if nbits <= 0 {
		return 0
	}
	// Exact inversion of p_upset = 1 - (1-p_b)^n; falls back to the
	// thesis' linear approximation for tiny p where the exact form loses
	// precision.
	if pupset <= 0 {
		return 0
	}
	if pupset >= 1 {
		return 1
	}
	pb := 1 - math.Pow(1-pupset, 1/float64(nbits))
	if pb <= 0 {
		pb = pupset / float64(nbits)
	}
	return pb
}

// UpsetFromPb is the forward direction p_upset = 1 - (1 - p_b)^n, used by
// tests to validate the inversion.
func UpsetFromPb(pb float64, nbits int) float64 {
	return 1 - math.Pow(1-pb, float64(nbits))
}
