// Package packet defines the wire format of stochastic-NoC packets and the
// data-upset error models of thesis Chapter 2.
//
// A packet carries a globally unique message ID (used by tiles to
// deduplicate the many gossip copies in flight), source and destination
// tile IDs, an application-defined kind tag, a TTL, an opaque payload and a
// CRC-16 over all immutable fields. The TTL is deliberately excluded from
// CRC coverage: it is decremented at every hop, and covering it would force
// every router to re-encode the checksum, which the Fig. 3-5 tile does not
// do.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/crc"
)

// TileID identifies a tile in the network. The value Broadcast addresses
// every tile (used by pure-dissemination workloads such as Fig. 3-1).
//
// TileID is 32 bits in memory so that mega-meshes (512×512 and beyond)
// are addressable, but the wire format of Chapter 2 carries 16-bit tile
// addresses: frames can only name tiles up to MaxWireTile, and Encode
// rejects packets beyond it. Fabrics larger than the wire address space
// run on the analytic transmission path, which never serializes a frame.
type TileID uint32

// Broadcast is the destination value meaning "every tile". On the wire it
// is carried as wireBroadcast (the all-ones 16-bit address).
const Broadcast TileID = 0xffffffff

// MaxWireTile is the largest tile ID a wire frame can address: the
// 16-bit address space minus the broadcast sentinel.
const MaxWireTile TileID = 0xfffe

// wireBroadcast is the on-wire encoding of Broadcast.
const wireBroadcast uint16 = 0xffff

// MsgID is a network-unique message identity. Tiles deduplicate on it, so
// two packets with equal MsgID must be copies of the same logical message.
type MsgID uint64

// Kind tags a packet with an application-defined message class (e.g. "work
// request", "partial sum", "MDCT frame").
type Kind uint8

// Packet is one logical message as it travels through the NoC.
type Packet struct {
	ID      MsgID
	Src     TileID
	Dst     TileID
	Kind    Kind
	TTL     uint8
	Payload []byte
}

// headerLen is the encoded size of the fixed header:
// ID(8) + Src(2) + Dst(2) + Kind(1) + TTL(1) + payload length(2).
const headerLen = 16

// crcLen is the trailing checksum size.
const crcLen = 2

// MaxPayload is the largest payload Encode accepts.
const MaxPayload = 0xffff

// ErrTooLarge is returned by Encode for oversized payloads.
var ErrTooLarge = errors.New("packet: payload exceeds MaxPayload")

// ErrTruncated is returned by Decode for inputs shorter than a header.
var ErrTruncated = errors.New("packet: truncated frame")

// ErrTileUnaddressable is returned by Encode when a packet's source or
// destination exceeds the 16-bit wire address space (MaxWireTile).
var ErrTileUnaddressable = errors.New("packet: tile ID exceeds the 16-bit wire address space")

// ErrCRC is returned by Decode when the checksum does not match; this is
// how a tile observes a data upset.
var ErrCRC = errors.New("packet: CRC mismatch (data upset)")

// EncodedLen returns the wire size in bytes of a packet with the given
// payload length.
func EncodedLen(payloadLen int) int { return headerLen + payloadLen + crcLen }

// SizeBits returns the wire size in bits of p, the S term of the energy
// model E = N_packets * S * E_bit (thesis Eq. 3).
func (p *Packet) SizeBits() int { return 8 * EncodedLen(len(p.Payload)) }

// ShallowClone returns a copy of p sharing the payload slice. Forwarding
// engines use it for in-flight copies: the header (notably the TTL) is
// copied by value, and payloads are immutable once a packet is created,
// so sharing is safe and avoids copying kilobyte payloads per hop.
func (p *Packet) ShallowClone() *Packet {
	q := *p
	return &q
}

// Clone returns a deep copy of p, for callers that intend to mutate the
// payload.
func (p *Packet) Clone() *Packet {
	q := *p
	if p.Payload != nil {
		q.Payload = make([]byte, len(p.Payload))
		copy(q.Payload, p.Payload)
	}
	return &q
}

// String implements fmt.Stringer for debugging and traces.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt{id=%d %d->%d kind=%d ttl=%d len=%d}",
		p.ID, p.Src, p.Dst, p.Kind, p.TTL, len(p.Payload))
}

// Encode serializes p into a wire frame: header, payload, CRC-16 computed
// over everything except the TTL byte.
func Encode(p *Packet) ([]byte, error) {
	if len(p.Payload) > MaxPayload {
		return nil, ErrTooLarge
	}
	buf := make([]byte, EncodedLen(len(p.Payload)))
	if err := EncodeTo(buf, p); err != nil {
		return nil, err
	}
	return buf, nil
}

// ErrBadFrameLen is returned by EncodeTo when dst is not exactly
// EncodedLen(len(p.Payload)) bytes.
var ErrBadFrameLen = errors.New("packet: destination length != EncodedLen")

// EncodeTo serializes p into dst, which must be exactly
// EncodedLen(len(p.Payload)) bytes. It is the allocation-free form of
// Encode, used by forwarding engines that recycle frame buffers.
func EncodeTo(dst []byte, p *Packet) error {
	if len(p.Payload) > MaxPayload {
		return ErrTooLarge
	}
	if len(dst) != EncodedLen(len(p.Payload)) {
		return ErrBadFrameLen
	}
	src, err := wireTile(p.Src)
	if err != nil {
		return err
	}
	dstAddr, err := wireTile(p.Dst)
	if err != nil {
		return err
	}
	buf := dst
	binary.BigEndian.PutUint64(buf[0:8], uint64(p.ID))
	binary.BigEndian.PutUint16(buf[8:10], src)
	binary.BigEndian.PutUint16(buf[10:12], dstAddr)
	buf[12] = byte(p.Kind)
	buf[13] = p.TTL
	binary.BigEndian.PutUint16(buf[14:16], uint16(len(p.Payload)))
	copy(buf[headerLen:], p.Payload)
	sum := frameCRC(buf)
	binary.BigEndian.PutUint16(buf[len(buf)-crcLen:], sum)
	return nil
}

// wireTile converts a tile ID to its 16-bit wire address.
func wireTile(t TileID) (uint16, error) {
	if t == Broadcast {
		return wireBroadcast, nil
	}
	if t > MaxWireTile {
		return 0, ErrTileUnaddressable
	}
	return uint16(t), nil
}

// frameCRC computes the CRC-16 over a frame, skipping the mutable TTL byte
// and the checksum slot itself.
func frameCRC(frame []byte) uint16 {
	body := frame[:len(frame)-crcLen]
	s := crc.NewShiftRegister16()
	// Cheaper than allocating a TTL-less copy: clock the bytes around it.
	for i, b := range body {
		if i == 13 { // TTL byte
			continue
		}
		s.ClockByte(b)
	}
	return s.Sum()
}

// memTile converts a 16-bit wire address back to a tile ID.
func memTile(w uint16) TileID {
	if w == wireBroadcast {
		return Broadcast
	}
	return TileID(w)
}

// Decode parses a wire frame, verifying the CRC. A CRC failure returns
// (nil, ErrCRC): the caller (tile) silently discards the frame — the core
// behaviour of the error-detection/multiple-transmission scheme.
func Decode(frame []byte) (*Packet, error) {
	p := &Packet{}
	if err := DecodeInto(p, frame); err != nil {
		return nil, err
	}
	if p.Payload != nil {
		owned := make([]byte, len(p.Payload))
		copy(owned, p.Payload)
		p.Payload = owned
	}
	return p, nil
}

// DecodeInto parses a wire frame into dst without allocating, with the
// same validation as Decode. dst.Payload ALIASES the frame's payload
// bytes (nil for an empty payload): the caller must copy it before the
// frame is mutated or reused. Forwarding engines that pool frame buffers
// use this to defer the payload copy until a packet is actually kept.
func DecodeInto(dst *Packet, frame []byte) error {
	if len(frame) < headerLen+crcLen {
		return ErrTruncated
	}
	payloadLen := int(binary.BigEndian.Uint16(frame[14:16]))
	if len(frame) != EncodedLen(payloadLen) {
		return ErrTruncated
	}
	want := binary.BigEndian.Uint16(frame[len(frame)-crcLen:])
	if frameCRC(frame) != want {
		return ErrCRC
	}
	dst.ID = MsgID(binary.BigEndian.Uint64(frame[0:8]))
	dst.Src = memTile(binary.BigEndian.Uint16(frame[8:10]))
	dst.Dst = memTile(binary.BigEndian.Uint16(frame[10:12]))
	dst.Kind = Kind(frame[12])
	dst.TTL = frame[13]
	if payloadLen > 0 {
		dst.Payload = frame[headerLen : headerLen+payloadLen : headerLen+payloadLen]
	} else {
		dst.Payload = nil
	}
	return nil
}
