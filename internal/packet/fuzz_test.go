package packet

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the frame decoder: it must never
// panic, and any frame it accepts must re-encode to an equivalent frame
// (decoder outputs are always canonical).
func FuzzDecode(f *testing.F) {
	good, _ := Encode(&Packet{ID: 7, Src: 1, Dst: 2, Kind: 3, TTL: 4, Payload: []byte("seed")})
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, headerLen+crcLen))
	corrupted := append([]byte(nil), good...)
	corrupted[0] ^= 0xff
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		re, err := Encode(p)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		q, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if q.ID != p.ID || q.Src != p.Src || q.Dst != p.Dst ||
			q.Kind != p.Kind || q.TTL != p.TTL || !bytes.Equal(q.Payload, p.Payload) {
			t.Fatal("decode/encode/decode not idempotent")
		}
	})
}
