package packet

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func samplePacket() *Packet {
	return &Packet{
		ID:      12345,
		Src:     3,
		Dst:     12,
		Kind:    7,
		TTL:     9,
		Payload: []byte("partial sum P3"),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := samplePacket()
	frame, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if q.ID != p.ID || q.Src != p.Src || q.Dst != p.Dst || q.Kind != p.Kind || q.TTL != p.TTL {
		t.Fatalf("header mismatch: %+v vs %+v", q, p)
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("payload mismatch: %q vs %q", q.Payload, p.Payload)
	}
}

func TestEncodeDecodeEmptyPayload(t *testing.T) {
	p := &Packet{ID: 1, Src: 0, Dst: Broadcast, TTL: 1}
	frame, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	if q.Dst != Broadcast || len(q.Payload) != 0 {
		t.Fatalf("bad decode: %+v", q)
	}
}

func TestEncodedLen(t *testing.T) {
	p := samplePacket()
	frame, _ := Encode(p)
	if len(frame) != EncodedLen(len(p.Payload)) {
		t.Fatalf("frame len %d, EncodedLen %d", len(frame), EncodedLen(len(p.Payload)))
	}
	if p.SizeBits() != 8*len(frame) {
		t.Fatalf("SizeBits %d, want %d", p.SizeBits(), 8*len(frame))
	}
}

func TestEncodeTooLarge(t *testing.T) {
	p := &Packet{Payload: make([]byte, MaxPayload+1)}
	if _, err := Encode(p); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	for _, n := range []int{0, 1, headerLen - 1, headerLen, headerLen + 1} {
		if _, err := Decode(make([]byte, n)); !errors.Is(err, ErrTruncated) {
			// headerLen bytes + CRC of an empty-payload frame may decode
			// if its length field matches; build deliberately short input.
			if n < headerLen+crcLen {
				t.Fatalf("Decode(%d bytes) err = %v, want ErrTruncated", n, err)
			}
		}
	}
}

func TestDecodeLengthFieldMismatch(t *testing.T) {
	p := samplePacket()
	frame, _ := Encode(p)
	if _, err := Decode(frame[:len(frame)-3]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestTTLMutationPreservesCRC(t *testing.T) {
	// The whole point of excluding TTL from the checksum: a router may
	// decrement the TTL byte in place without re-encoding.
	p := samplePacket()
	frame, _ := Encode(p)
	frame[13]-- // decrement TTL in place
	q, err := Decode(frame)
	if err != nil {
		t.Fatalf("decode after TTL decrement: %v", err)
	}
	if q.TTL != p.TTL-1 {
		t.Fatalf("TTL = %d, want %d", q.TTL, p.TTL-1)
	}
}

func TestCorruptionDetected(t *testing.T) {
	p := samplePacket()
	frame, _ := Encode(p)
	for i := range frame {
		if i == 13 {
			continue // TTL is not covered by the CRC by design
		}
		bad := make([]byte, len(frame))
		copy(bad, frame)
		bad[i] ^= 0x01
		q, err := Decode(bad)
		if err == nil && i != 14 && i != 15 {
			t.Fatalf("corruption at byte %d undetected: %+v", i, q)
		}
		// Bytes 14-15 are the length field; corrupting them may also
		// surface as ErrTruncated, which is fine — the frame is dropped
		// either way.
	}
}

func TestClone(t *testing.T) {
	p := samplePacket()
	q := p.Clone()
	q.TTL = 1
	q.Payload[0] = 'X'
	if p.TTL == 1 || p.Payload[0] == 'X' {
		t.Fatal("Clone aliased the original")
	}
}

func TestCloneNilPayload(t *testing.T) {
	p := &Packet{ID: 1}
	q := p.Clone()
	if q.Payload != nil {
		t.Fatal("Clone invented a payload")
	}
}

func TestString(t *testing.T) {
	s := samplePacket().String()
	if !strings.Contains(s, "3->12") {
		t.Fatalf("String() = %q", s)
	}
}

// Property: Encode/Decode round-trips arbitrary packets.
func TestQuickRoundTrip(t *testing.T) {
	f := func(id uint64, src, dst uint16, kind, ttl uint8, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		p := &Packet{ID: MsgID(id), Src: TileID(src), Dst: TileID(dst), Kind: Kind(kind), TTL: ttl, Payload: payload}
		frame, err := Encode(p)
		if err != nil {
			return false
		}
		q, err := Decode(frame)
		if err != nil {
			return false
		}
		return q.ID == p.ID && q.Src == p.Src && q.Dst == p.Dst &&
			q.Kind == p.Kind && q.TTL == p.TTL && bytes.Equal(q.Payload, p.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Corrupt always changes the frame.
func TestQuickCorruptChangesFrame(t *testing.T) {
	r := rng.New(99)
	f := func(payload []byte, modelSel uint8) bool {
		p := &Packet{ID: 1, Payload: payload}
		frame, err := Encode(p)
		if err != nil {
			return true // oversized payloads are not Corrupt's problem
		}
		orig := make([]byte, len(frame))
		copy(orig, frame)
		model := ErrorModel(int(modelSel) % 3)
		Corrupt(model, frame, 0.5, r)
		return !bytes.Equal(orig, frame)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCorruptedFrameRejectedByCRC(t *testing.T) {
	r := rng.New(7)
	rejected := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		p := &Packet{ID: MsgID(i), Src: 1, Dst: 2, TTL: 5, Payload: []byte("abcdefgh")}
		frame, _ := Encode(p)
		Corrupt(RandomErrorVector, frame, 1, r)
		if _, err := Decode(frame); err != nil {
			rejected++
		}
	}
	// CRC-16 misses a random error vector with probability ~2^-16.
	if rejected < trials-3 {
		t.Fatalf("only %d/%d corrupted frames rejected", rejected, trials)
	}
}

func TestSingleBitUpsetAlwaysRejected(t *testing.T) {
	r := rng.New(8)
	for i := 0; i < 2000; i++ {
		p := &Packet{ID: MsgID(i), Payload: []byte{1, 2, 3, 4}}
		frame, _ := Encode(p)
		Corrupt(SingleBitError, frame, 0, r)
		_, err := Decode(frame)
		if err == nil {
			// The flipped bit may be the TTL byte, which is legitimately
			// not covered. Verify that's the only escape hatch.
			q, _ := Decode(frame)
			if q != nil && q.TTL == p.TTL {
				t.Fatal("single-bit upset outside TTL escaped the CRC")
			}
		}
	}
}

func TestPbFromUpsetInversion(t *testing.T) {
	for _, pupset := range []float64{0.01, 0.1, 0.5, 0.9} {
		for _, nbits := range []int{8, 64, 256, 1024} {
			pb := PbFromUpset(pupset, nbits)
			back := UpsetFromPb(pb, nbits)
			if math.Abs(back-pupset) > 1e-9 {
				t.Errorf("PbFromUpset(%v,%d): round-trip %v", pupset, nbits, back)
			}
		}
	}
}

func TestPbFromUpsetEdges(t *testing.T) {
	if PbFromUpset(0, 64) != 0 {
		t.Error("PbFromUpset(0) != 0")
	}
	if PbFromUpset(1, 64) != 1 {
		t.Error("PbFromUpset(1) != 1")
	}
	if PbFromUpset(0.5, 0) != 0 {
		t.Error("PbFromUpset with 0 bits != 0")
	}
}

func TestPvFromUpset(t *testing.T) {
	if got := PvFromUpset(0.5, 4); math.Abs(got-0.5/16) > 1e-12 {
		t.Errorf("PvFromUpset(0.5, 4) = %v", got)
	}
	if got := PvFromUpset(0.5, 4096); got != 0 {
		t.Errorf("PvFromUpset huge frame = %v, want 0", got)
	}
}

func TestCorruptEmptyFrameNoop(t *testing.T) {
	r := rng.New(1)
	Corrupt(RandomErrorVector, nil, 0.5, r) // must not panic
}

func BenchmarkEncode(b *testing.B) {
	p := samplePacket()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	frame, _ := Encode(samplePacket())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEncodeToMatchesEncode(t *testing.T) {
	p := samplePacket()
	want, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, EncodedLen(len(p.Payload)))
	if err := EncodeTo(dst, p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, want) {
		t.Fatalf("EncodeTo produced a different frame:\n  %x\n  %x", dst, want)
	}
}

func TestEncodeToBadBuffer(t *testing.T) {
	p := samplePacket()
	for _, n := range []int{0, EncodedLen(len(p.Payload)) - 1, EncodedLen(len(p.Payload)) + 1} {
		if err := EncodeTo(make([]byte, n), p); !errors.Is(err, ErrBadFrameLen) {
			t.Fatalf("EncodeTo(len %d) = %v, want ErrBadFrameLen", n, err)
		}
	}
	big := &Packet{ID: 1, Payload: make([]byte, MaxPayload+1)}
	if err := EncodeTo(make([]byte, 8), big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized payload: %v, want ErrTooLarge", err)
	}
}

func TestDecodeIntoAliasesFrame(t *testing.T) {
	p := samplePacket()
	frame, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Packet
	if err := DecodeInto(&q, frame); err != nil {
		t.Fatal(err)
	}
	if q.ID != p.ID || q.Src != p.Src || q.Dst != p.Dst || q.Kind != p.Kind || q.TTL != p.TTL {
		t.Fatalf("header mismatch: %+v vs %+v", q, p)
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Fatalf("payload mismatch: %q vs %q", q.Payload, p.Payload)
	}
	// The zero-copy contract: the payload aliases the frame's bytes.
	frame[headerLen] ^= 0xff
	if bytes.Equal(q.Payload, p.Payload) {
		t.Fatal("DecodeInto copied the payload; it must alias the frame")
	}
	// And appending to it must not clobber the frame's CRC bytes.
	if cap(q.Payload) != len(q.Payload) {
		t.Fatalf("aliased payload has spare capacity %d past len %d",
			cap(q.Payload), len(q.Payload))
	}
}

func TestDecodeIntoEmptyPayload(t *testing.T) {
	frame, err := Encode(&Packet{ID: 1, Dst: Broadcast, TTL: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := Packet{Payload: []byte("stale")}
	if err := DecodeInto(&q, frame); err != nil {
		t.Fatal(err)
	}
	if q.Payload != nil {
		t.Fatalf("Payload = %q, want nil (stale value must be cleared)", q.Payload)
	}
}

func TestDecodeIntoRejectsCorruption(t *testing.T) {
	frame, err := Encode(samplePacket())
	if err != nil {
		t.Fatal(err)
	}
	frame[2] ^= 0x40
	var q Packet
	if err := DecodeInto(&q, frame); !errors.Is(err, ErrCRC) {
		t.Fatalf("corrupted frame: %v, want ErrCRC", err)
	}
	if err := DecodeInto(&q, frame[:headerLen]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated frame: %v, want ErrTruncated", err)
	}
}
