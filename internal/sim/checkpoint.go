package sim

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/snapshot"
)

// Checkpoint files let a Monte Carlo campaign survive interruption: each
// replica periodically serializes its complete state — engine and
// metrics recorder — to its own file, and a later run resumes every
// replica from its file instead of from round 0. Because the engine's
// checkpoint/resume is bit-identical (see internal/core/snapshot.go),
// a resumed campaign produces byte-for-byte the figures and series an
// uninterrupted one would have.
//
// One container file holds three sections: SecSim (replica index and
// derived seed, so a file cannot silently be fed to the wrong replica),
// SecCore (the engine) and, when a recorder is attached, SecMetrics (the
// partial per-round series).

// CheckpointMeta identifies which replica of which campaign a checkpoint
// belongs to.
type CheckpointMeta struct {
	// Replica is the replica index within the campaign.
	Replica int
	// Seed is the replica's derived seed (Seeds(master, n)[Replica]).
	Seed uint64
}

// WriteCheckpoint serializes one replica's state to w. rec may be nil
// for uninstrumented replicas.
func WriteCheckpoint(w io.Writer, meta CheckpointMeta, net *core.Network, rec *metrics.Recorder) error {
	enc := snapshot.NewEncoder(w)
	sw := enc.Section(snapshot.SecSim)
	sw.Int(meta.Replica)
	sw.U64(meta.Seed)
	net.EncodeState(enc.Section(snapshot.SecCore))
	if rec != nil {
		rec.EncodeState(enc.Section(snapshot.SecMetrics))
	}
	return enc.Close()
}

// ReadCheckpoint rebuilds a replica's state from r. cfg must be the
// replica's configuration (same rules as core.Restore: digest-checked,
// hooks re-supplied by the caller). rec, if non-nil, must be a fresh
// recorder built from the same metrics configuration; it is overwritten
// with the checkpointed series. A checkpoint written without a recorder
// cannot satisfy a non-nil rec and is rejected rather than silently
// losing the already-recorded rounds.
func ReadCheckpoint(r io.Reader, cfg core.Config, rec *metrics.Recorder) (*core.Network, CheckpointMeta, error) {
	var meta CheckpointMeta
	dec, err := snapshot.NewDecoder(r)
	if err != nil {
		return nil, meta, err
	}
	ms, err := dec.Section(snapshot.SecSim)
	if err != nil {
		return nil, meta, err
	}
	meta.Replica = ms.Int()
	meta.Seed = ms.U64()
	if err := ms.Finish(); err != nil {
		return nil, meta, err
	}
	cs, err := dec.Section(snapshot.SecCore)
	if err != nil {
		return nil, meta, err
	}
	net, err := core.RestoreSection(cs, cfg)
	if err != nil {
		return nil, meta, err
	}
	if rec != nil {
		if !dec.Has(snapshot.SecMetrics) {
			return nil, meta, errors.New("sim: checkpoint has no metrics section but a recorder was supplied")
		}
		rs, err := dec.Section(snapshot.SecMetrics)
		if err != nil {
			return nil, meta, err
		}
		if err := rec.RestoreState(rs); err != nil {
			return nil, meta, err
		}
	}
	return net, meta, nil
}

// Checkpointer writes periodic per-replica checkpoint files into a
// directory. The zero value is inert: Active reports false and MaybeSave
// does nothing, so run loops can call it unconditionally.
type Checkpointer struct {
	// Dir is the checkpoint directory (created on first save).
	Dir string
	// Every is the round interval between saves; <= 0 disables saving.
	Every int
	// Retain is the garbage-collection retention window: Sweep removes
	// checkpoint files whose modification time is older than Retain.
	// <= 0 disables sweeping (files live until Remove). Size it well
	// above the longest expected gap between a replica's saves — a file
	// is refreshed on every save, so only replicas that stopped saving
	// (crashed campaigns, abandoned preempted jobs) age out.
	Retain time.Duration
}

// Active reports whether this checkpointer will ever save.
func (c *Checkpointer) Active() bool { return c != nil && c.Dir != "" && c.Every > 0 }

// CheckpointPath names replica's checkpoint file under dir. All
// checkpoint-aware tools agree on this layout, so a campaign can be
// resumed by pointing -resume-from at a former -checkpoint-dir.
func CheckpointPath(dir string, replica int) string {
	return filepath.Join(dir, fmt.Sprintf("replica-%04d.ckpt", replica))
}

// MaybeSave writes a checkpoint if the checkpointer is active and net
// sits on a multiple of the save interval. Call it after every Step, at
// the round barrier.
func (c *Checkpointer) MaybeSave(meta CheckpointMeta, net *core.Network, rec *metrics.Recorder) error {
	if !c.Active() || net.Round() == 0 || net.Round()%c.Every != 0 {
		return nil
	}
	return c.Save(meta, net, rec)
}

// Save unconditionally writes replica's checkpoint file. The write is
// atomic — a temporary file renamed into place — so an interruption
// mid-save leaves the previous checkpoint intact, never a torn file.
func (c *Checkpointer) Save(meta CheckpointMeta, net *core.Network, rec *metrics.Recorder) error {
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return fmt.Errorf("sim: checkpoint dir: %w", err)
	}
	path := CheckpointPath(c.Dir, meta.Replica)
	tmp, err := os.CreateTemp(c.Dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("sim: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	err = WriteCheckpoint(tmp, meta, net, rec)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("sim: checkpoint %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("sim: checkpoint: %w", err)
	}
	return nil
}

// Remove deletes replica's checkpoint file, if any. Call it when the
// replica completes: a finished run's checkpoint is dead weight, and
// removing it is what lets a resumed-then-completed campaign leave the
// checkpoint directory empty. A missing file is not an error.
func (c *Checkpointer) Remove(replica int) error {
	err := os.Remove(CheckpointPath(c.Dir, replica))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("sim: checkpoint remove: %w", err)
	}
	return nil
}

// Sweep garbage-collects stale checkpoint files: every replica-*.ckpt
// in Dir whose modification time is older than now minus Retain is
// deleted, and the number removed is reported. Saves refresh a file's
// mtime, so live replicas are never swept — only files nothing has
// touched for a full retention window (interrupted campaigns that were
// never resumed, preempted jobs whose owner vanished). A nil sweep —
// no Dir, Retain <= 0, or the directory absent — removes nothing.
func (c *Checkpointer) Sweep(now time.Time) (int, error) {
	if c == nil || c.Dir == "" || c.Retain <= 0 {
		return 0, nil
	}
	entries, err := os.ReadDir(c.Dir)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("sim: checkpoint sweep: %w", err)
	}
	cutoff := now.Add(-c.Retain)
	removed := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "replica-") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // raced with a concurrent remove
		}
		if info.ModTime().After(cutoff) {
			continue
		}
		if err := os.Remove(filepath.Join(c.Dir, name)); err == nil {
			removed++
		}
	}
	return removed, nil
}

// LoadReplica restores one replica from dir's checkpoint file. A missing
// file is not an error — it reports ok=false and the caller starts the
// replica from round 0 (replicas checkpoint independently, so a campaign
// interrupted mid-save resumes some replicas from files and runs the
// rest fresh). A present-but-unreadable file IS an error: silently
// restarting would discard completed work. The loaded meta is verified
// against the expected identity.
func LoadReplica(dir string, want CheckpointMeta, cfg core.Config, rec *metrics.Recorder) (*core.Network, bool, error) {
	path := CheckpointPath(dir, want.Replica)
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("sim: resume: %w", err)
	}
	defer f.Close()
	net, meta, err := ReadCheckpoint(f, cfg, rec)
	if err != nil {
		return nil, false, fmt.Errorf("sim: resume %s: %w", path, err)
	}
	if meta != want {
		return nil, false, fmt.Errorf("sim: resume %s: checkpoint is replica %d seed %#x, expected replica %d seed %#x",
			path, meta.Replica, meta.Seed, want.Replica, want.Seed)
	}
	return net, true, nil
}
