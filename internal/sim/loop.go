package sim

import (
	"repro/internal/core"
)

// This file is the controlled run loop the simulation service is built
// on: a replica that can be cancelled or preempted, but only at round
// barriers — the one place the engine's state is snapshot-consistent
// (core.Snapshot's own precondition). A long job driven through Loop
// yields to interactive traffic by checkpointing at a barrier and
// resuming later, bit-identically, from the file (see sim.Checkpointer
// and docs/SERVICE.md, "Preemption semantics").

// BarrierOp is a control decision taken at a round barrier, before the
// next round executes.
type BarrierOp int

// The barrier decisions, in escalating order of disruption.
const (
	// OpContinue lets the next round execute.
	OpContinue BarrierOp = iota
	// OpYield stops the loop so the caller can checkpoint and requeue;
	// the network is at a round barrier, exactly where core.Snapshot is
	// legal, so a resumed run continues bit-identically.
	OpYield
	// OpCancel abandons the run; the caller discards the network.
	OpCancel
)

// LoopStatus reports why a Loop stopped.
type LoopStatus int

// The loop outcomes. The first three are terminal run outcomes; the
// last two are control outcomes requested by the Barrier hook.
const (
	// LoopDone: the Done predicate reported completion.
	LoopDone LoopStatus = iota
	// LoopBudget: the round budget was exhausted before completion (the
	// MaxRounds guillotine).
	LoopBudget
	// LoopQuiescent: the network drained — no live or in-flight copies
	// remain — with Done still false (every copy was lost or expired).
	LoopQuiescent
	// LoopYielded: the Barrier hook requested a yield; the network sits
	// at a round barrier, ready to checkpoint.
	LoopYielded
	// LoopCanceled: the Barrier hook requested cancellation.
	LoopCanceled
)

// String implements fmt.Stringer.
func (s LoopStatus) String() string {
	switch s {
	case LoopDone:
		return "done"
	case LoopBudget:
		return "budget"
	case LoopQuiescent:
		return "quiescent"
	case LoopYielded:
		return "yielded"
	case LoopCanceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// Terminal reports whether the status is a run outcome (done, budget,
// quiescent) rather than a control outcome (yielded, canceled).
func (s LoopStatus) Terminal() bool {
	return s == LoopDone || s == LoopBudget || s == LoopQuiescent
}

// Loop drives one network round by round with a control check at every
// round barrier. The hooks run on the calling goroutine, strictly
// between rounds, so they may checkpoint, record, or stream without any
// synchronization against the engine. Control never changes the
// simulation: a run that is yielded, checkpointed, and resumed executes
// exactly the rounds — and consumes exactly the random draws — an
// uninterrupted run would have.
type Loop struct {
	// Net is the network to drive (required, positioned at any barrier —
	// round 0 for a fresh run, later for a checkpoint-resumed one).
	Net *core.Network
	// MaxRounds is the round budget: the loop stops with LoopBudget once
	// Net.Round() reaches it.
	MaxRounds int
	// Done, if set, is the completion predicate, evaluated at every
	// barrier before anything else; true stops the loop with LoopDone.
	Done func(n *core.Network) bool
	// Barrier, if set, is the control check, evaluated at every barrier
	// after Done and quiescence: its BarrierOp decides whether the next
	// round executes. Nil means OpContinue forever.
	Barrier func(n *core.Network) BarrierOp
	// OnRound, if set, observes the network right after every executed
	// round, at the barrier — the streaming hook (append the round's
	// metric line, notify subscribers).
	OnRound func(n *core.Network)
}

// Run executes rounds until a terminal outcome or a control request and
// reports why it stopped. The check order at each barrier — Done, then
// budget, then quiescence, then Barrier — means a run that completes is
// never also yielded: a checkpoint written on LoopYielded always holds
// an unfinished run.
func (l *Loop) Run() LoopStatus {
	for {
		if l.Done != nil && l.Done(l.Net) {
			return LoopDone
		}
		if l.Net.Round() >= l.MaxRounds {
			return LoopBudget
		}
		if l.Net.Round() > 0 && l.Net.Quiescent() {
			return LoopQuiescent
		}
		if l.Barrier != nil {
			switch l.Barrier(l.Net) {
			case OpYield:
				return LoopYielded
			case OpCancel:
				return LoopCanceled
			}
		}
		l.Net.Step()
		if l.OnRound != nil {
			l.OnRound(l.Net)
		}
	}
}
