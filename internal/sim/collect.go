package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/stats"
)

// Counts tallies the protocol events of one replica, one field per
// core.EventKind. All fields are event counts over the whole run.
type Counts struct {
	// Created counts messages entering a send buffer (EvCreated).
	Created int
	// Transmissions counts copies driven onto links (EvTransmit).
	Transmissions int
	// CRCRejects counts receptions discarded as scrambled (EvUpset).
	CRCRejects int
	// OverflowDrops counts messages lost to buffer overflow (EvOverflow).
	OverflowDrops int
	// Deliveries counts first-time deliveries to addressed tiles
	// (EvDeliver).
	Deliveries int
	// TTLExpiries counts buffered copies garbage-collected at TTL zero
	// (EvExpire).
	TTLExpiries int
}

// Collector is a reusable core.Config.OnEvent hook that feeds Counts.
// Attach one Collector per network (replicas must not share one):
//
//	var col sim.Collector
//	cfg.OnEvent = col.OnEvent
type Collector struct {
	// Counts is the running tally, valid at any point during the run.
	Counts Counts
}

// OnEvent counts one protocol event. It has the core.Config.OnEvent
// signature. The switch is exhaustive over the core.EventKind values;
// an unknown kind means a new event kind was added to the engine
// without a Counts field, and silently ignoring it would undercount —
// so it panics instead (guarded by TestMetricsCountsExhaustive).
func (c *Collector) OnEvent(e core.Event) {
	switch e.Kind {
	case core.EvCreated:
		c.Counts.Created++
	case core.EvTransmit:
		c.Counts.Transmissions++
	case core.EvUpset:
		c.Counts.CRCRejects++
	case core.EvOverflow:
		c.Counts.OverflowDrops++
	case core.EvDeliver:
		c.Counts.Deliveries++
	case core.EvExpire:
		c.Counts.TTLExpiries++
	default:
		panic(fmt.Sprintf("sim: Collector.OnEvent: unhandled core.EventKind %v", e.Kind))
	}
}

// Metrics is one replica's outcome in the units the figures report.
type Metrics struct {
	// Completed reports whether the application-level run finished
	// (false = the MaxRounds guillotine fired).
	Completed bool
	// Rounds is the completion round (the latency the thesis reports).
	Rounds int
	// EnergyJ is the replica's total communication energy.
	EnergyJ float64
	// EnergyPerBitJ is energy per useful delivered payload bit (Eq. 3).
	EnergyPerBitJ float64
	// Counts are the replica's protocol event tallies.
	Counts Counts
}

// Measure extracts Metrics from a finished run: the result, the
// network's energy accounting under tech, and col's event counts (col
// may be nil when no collector was attached).
func Measure(net *core.Network, res core.Result, tech energy.Technology, col *Collector) Metrics {
	c := net.Counters()
	m := Metrics{
		Completed:     res.Completed,
		Rounds:        res.Rounds,
		EnergyJ:       c.Energy.EnergyJ(tech),
		EnergyPerBitJ: c.Energy.EnergyPerBitJ(tech, c.DeliveredPayloadBits),
	}
	if col != nil {
		m.Counts = col.Counts
	}
	return m
}

// Aggregate summarizes per-replica Metrics. Rounds and the energy
// figures are aggregated over completed replicas only — a DNF has no
// meaningful completion round — while the event counters cover every
// replica.
type Aggregate struct {
	// Replicas is the number of replicas executed.
	Replicas int
	// Completed is how many of them finished.
	Completed int
	// CompletionRate is Completed / Replicas.
	CompletionRate float64

	// Rounds summarizes completion latency in rounds, over completed
	// replicas only.
	Rounds stats.Summary
	// EnergyJ summarizes total communication energy in joules, over
	// completed replicas only.
	EnergyJ stats.Summary
	// EnergyPerBit summarizes joules per useful delivered payload bit
	// (Eq. 3), over completed replicas only.
	EnergyPerBit stats.Summary

	// Transmissions summarizes link transmissions per replica, over all
	// replicas.
	Transmissions stats.Summary
	// Deliveries summarizes first-time deliveries per replica, over all
	// replicas.
	Deliveries stats.Summary
	// CRCRejects summarizes CRC-rejected receptions per replica, over
	// all replicas.
	CRCRejects stats.Summary
	// OverflowDrops summarizes overflow losses per replica, over all
	// replicas.
	OverflowDrops stats.Summary
	// TTLExpiries summarizes TTL garbage collections per replica, over
	// all replicas.
	TTLExpiries stats.Summary
}

// Summarize aggregates ms into summary statistics with mean, stddev and
// the 95% confidence half-width.
func Summarize(ms []Metrics) Aggregate {
	var rounds, energyJ, energyPB stats.Online
	var tx, del, crc, ovf, exp stats.Online
	completed := 0
	for _, m := range ms {
		if m.Completed {
			completed++
			rounds.Add(float64(m.Rounds))
			energyJ.Add(m.EnergyJ)
			energyPB.Add(m.EnergyPerBitJ)
		}
		tx.Add(float64(m.Counts.Transmissions))
		del.Add(float64(m.Counts.Deliveries))
		crc.Add(float64(m.Counts.CRCRejects))
		ovf.Add(float64(m.Counts.OverflowDrops))
		exp.Add(float64(m.Counts.TTLExpiries))
	}
	agg := Aggregate{
		Replicas:      len(ms),
		Completed:     completed,
		Rounds:        stats.Summarize(&rounds),
		EnergyJ:       stats.Summarize(&energyJ),
		EnergyPerBit:  stats.Summarize(&energyPB),
		Transmissions: stats.Summarize(&tx),
		Deliveries:    stats.Summarize(&del),
		CRCRejects:    stats.Summarize(&crc),
		OverflowDrops: stats.Summarize(&ovf),
		TTLExpiries:   stats.Summarize(&exp),
	}
	if len(ms) > 0 {
		agg.CompletionRate = float64(completed) / float64(len(ms))
	}
	return agg
}
