package sim_test

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/diversity"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/topology"
)

var errFail = errors.New("replica failure")

func TestSeedsPrefixStable(t *testing.T) {
	long := sim.Seeds(7, 8)
	short := sim.Seeds(7, 5)
	if !reflect.DeepEqual(long[:5], short) {
		t.Fatalf("growing a study changed earlier seeds:\n %v\n %v", long[:5], short)
	}
	seen := map[uint64]bool{}
	for _, s := range long {
		if seen[s] {
			t.Fatalf("duplicate replica seed %#x", s)
		}
		seen[s] = true
	}
}

// coreReplica is one full round-engine run — broadcast over a faulty
// 4x4 grid with the event collector attached — returning the standard
// metrics record. This is the body shape every figure runner uses.
func coreReplica(_ int, seed uint64) (sim.Metrics, error) {
	var col sim.Collector
	net, err := core.New(core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.6, TTL: 10, MaxRounds: 60,
		Seed:    seed,
		Fault:   fault.Model{PUpset: 0.2, POverflow: 0.1},
		OnEvent: col.OnEvent,
	})
	if err != nil {
		return sim.Metrics{}, err
	}
	net.Inject(0, packet.Broadcast, 0, make([]byte, 16))
	for r := 0; r < 40 && !net.Quiescent(); r++ {
		net.Step()
	}
	res := core.Result{Completed: true, Rounds: net.Round()}
	return sim.Measure(net, res, energy.NoCLink025, &col), nil
}

// TestRunDeterministicAcrossWorkers is the regression gate for the
// runner's core guarantee: workers=1, workers=4 and the GOMAXPROCS
// default produce byte-identical results, because the replica index —
// not scheduling — picks each replica's seed and result slot.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	const replicas, seed = 12, 42
	run := func(workers int) sim.Aggregate {
		agg, err := sim.RunMetrics(
			sim.Config{Replicas: replicas, Workers: workers, Seed: seed}, coreReplica)
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}
	sequential := run(1)
	for _, w := range []int{4, 0} { // 0 = GOMAXPROCS default
		if got := run(w); !reflect.DeepEqual(got, sequential) {
			t.Fatalf("workers=%d diverged from sequential:\n%+v\nvs\n%+v", w, got, sequential)
		}
	}
	if sequential.Transmissions.Mean == 0 {
		t.Fatal("replicas did not actually run (no transmissions)")
	}
	if sequential.CRCRejects.Mean == 0 {
		t.Fatal("fault model inactive (no CRC rejects at PUpset=0.2)")
	}
}

// TestRunDeterministicAcrossWorkersWithSlip repeats the worker-count
// invariance with synchronization skew active (σ_synchr > 0), so copies
// cross round boundaries through the engine's per-tile arrival rings:
// multi-round in-flight state must not perturb seeding or determinism.
func TestRunDeterministicAcrossWorkersWithSlip(t *testing.T) {
	const replicas, seed = 12, 42
	var slipped atomic.Int64 // summed across replicas: order-independent
	slipReplica := func(_ int, s uint64) (sim.Metrics, error) {
		var col sim.Collector
		net, err := core.New(core.Config{
			Topo: topology.NewGrid(4, 4), P: 0.6, TTL: 10, MaxRounds: 80,
			Seed:    s,
			Fault:   fault.Model{SigmaSync: 1.5, PUpset: 0.1},
			OnEvent: col.OnEvent,
		})
		if err != nil {
			return sim.Metrics{}, err
		}
		net.Inject(0, packet.Broadcast, 0, make([]byte, 16))
		for r := 0; r < 60 && !net.Quiescent(); r++ {
			net.Step()
		}
		slipped.Add(int64(net.Counters().SlippedDeliveries))
		res := core.Result{Completed: true, Rounds: net.Round()}
		return sim.Measure(net, res, energy.NoCLink025, &col), nil
	}
	run := func(workers int) sim.Aggregate {
		agg, err := sim.RunMetrics(
			sim.Config{Replicas: replicas, Workers: workers, Seed: seed}, slipReplica)
		if err != nil {
			t.Fatal(err)
		}
		return agg
	}
	sequential := run(1)
	for _, w := range []int{4, 0} {
		if got := run(w); !reflect.DeepEqual(got, sequential) {
			t.Fatalf("workers=%d diverged from sequential:\n%+v\nvs\n%+v", w, got, sequential)
		}
	}
	if slipped.Load() == 0 {
		t.Fatal("fault model inactive (no slipped receptions at σ=1.5)")
	}
}

// TestRunDeterministicDiversity repeats the worker-count invariance on a
// second, structurally different workload: the Chapter 5 beamforming
// comparison from internal/diversity.
func TestRunDeterministicDiversity(t *testing.T) {
	const replicas, seed = 4, 7
	run := func(workers int) []*diversity.Result {
		out, err := sim.Run(sim.Config{Replicas: replicas, Workers: workers, Seed: seed},
			func(_ int, seed uint64) (*diversity.Result, error) {
				return diversity.RunBeamforming(diversity.Build(diversity.FlatNoC),
					diversity.CompareConfig{Seed: seed, Blocks: 1})
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	sequential := run(1)
	for _, w := range []int{4, 0} {
		if got := run(w); !reflect.DeepEqual(got, sequential) {
			t.Fatalf("workers=%d diverged from sequential", w)
		}
	}
	for r, res := range sequential {
		if res.Transmissions == 0 {
			t.Fatalf("replica %d ran no traffic", r)
		}
	}
}

// TestRunErrorDeterministic: with several failing replicas, the reported
// error is the lowest-indexed one no matter how replicas were scheduled.
func TestRunErrorDeterministic(t *testing.T) {
	for _, w := range []int{1, 4} {
		_, err := sim.Run(sim.Config{Replicas: 8, Workers: w, Seed: 1},
			func(r int, _ uint64) (int, error) {
				if r == 2 || r == 6 {
					return 0, errFail
				}
				return r, nil
			})
		if err == nil {
			t.Fatalf("workers=%d: failing replicas not reported", w)
		}
		if !strings.Contains(err.Error(), "replica 2") {
			t.Fatalf("workers=%d: got %q, want lowest failing replica 2", w, err)
		}
	}
}

func TestRunRejectsNonPositiveReplicas(t *testing.T) {
	if _, err := sim.Run(sim.Config{}, func(int, uint64) (int, error) { return 0, nil }); err == nil {
		t.Fatal("Replicas=0 accepted")
	}
}

// TestCollectorAgreesWithCounters cross-checks the event stream against
// the engine's own counters on the quantities both observe.
func TestCollectorAgreesWithCounters(t *testing.T) {
	var col sim.Collector
	net, err := core.New(core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.75, TTL: 10, MaxRounds: 60,
		Seed:    3,
		Fault:   fault.Model{PUpset: 0.25},
		OnEvent: col.OnEvent,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Inject(0, packet.Broadcast, 0, make([]byte, 16))
	for r := 0; r < 40 && !net.Quiescent(); r++ {
		net.Step()
	}
	c := net.Counters()
	if col.Counts.Transmissions != c.Energy.Transmissions {
		t.Fatalf("collector tx %d vs counters %d", col.Counts.Transmissions, c.Energy.Transmissions)
	}
	if col.Counts.Deliveries != c.Deliveries {
		t.Fatalf("collector deliveries %d vs counters %d", col.Counts.Deliveries, c.Deliveries)
	}
	if col.Counts.Transmissions == 0 || col.Counts.Deliveries == 0 {
		t.Fatal("broadcast produced no observable events")
	}
}

func TestSummarizeSplitsCompletedFromEventStats(t *testing.T) {
	agg := sim.Summarize([]sim.Metrics{
		{Completed: true, Rounds: 10, Counts: sim.Counts{Transmissions: 100}},
		{Completed: true, Rounds: 20, Counts: sim.Counts{Transmissions: 200}},
		{Completed: false, Rounds: 60, Counts: sim.Counts{Transmissions: 300}},
	})
	if agg.Replicas != 3 || agg.Completed != 2 {
		t.Fatalf("replicas/completed = %d/%d", agg.Replicas, agg.Completed)
	}
	// Rounds averages completed replicas only; the DNF's MaxRounds value
	// must not leak in.
	if agg.Rounds.Mean != 15 {
		t.Fatalf("rounds mean %v, want 15 (completed only)", agg.Rounds.Mean)
	}
	// Event counters cover every replica.
	if agg.Transmissions.Mean != 200 {
		t.Fatalf("tx mean %v, want 200 (all replicas)", agg.Transmissions.Mean)
	}
	if agg.CompletionRate != 2.0/3.0 {
		t.Fatalf("completion rate %v", agg.CompletionRate)
	}
}

func TestAutoShards(t *testing.T) {
	cases := []struct {
		name  string
		cfg   sim.Config
		tiles int
		want  int
	}{
		// Replicas saturate the pool: stay sequential.
		{"saturated", sim.Config{Replicas: 8, Workers: 8}, 16384, 1},
		{"oversubscribed", sim.Config{Replicas: 100, Workers: 4}, 16384, 1},
		// One replica on an 8-core pool, mesh above the shard floor: all
		// spare cores go to sharding.
		{"single-replica", sim.Config{Replicas: 1, Workers: 8}, 16384, 8},
		// Spare cores split across the running replicas.
		{"split", sim.Config{Replicas: 2, Workers: 8}, 16384, 4},
		// Meshes below the measured shard floor never shard, no matter how
		// many cores are idle: the barriers cost more than the lanes gain.
		{"small-mesh", sim.Config{Replicas: 1, Workers: 16}, 64, 1},
		{"below-floor", sim.Config{Replicas: 1, Workers: 16}, 4096, 1},
		{"floor-boundary", sim.Config{Replicas: 1, Workers: 16}, 16384 - 1, 1},
		// At the floor the tiles/64 cap still applies above it.
		{"floor-capped", sim.Config{Replicas: 1, Workers: 512}, 16384, 256},
		// Mega-meshes shard with the whole pool even when replicas
		// saturate it: concurrent mega-replicas would multiply peak
		// memory by the pool size.
		{"mega-saturated", sim.Config{Replicas: 8, Workers: 8}, 512 * 512, 8},
		{"mega-boundary", sim.Config{Replicas: 100, Workers: 4}, 1 << 16, 4},
		{"below-mega", sim.Config{Replicas: 100, Workers: 4}, 1<<16 - 64, 1},
	}
	for _, c := range cases {
		if got := c.cfg.AutoShards(c.tiles); got != c.want {
			t.Errorf("%s: AutoShards(%d) = %d, want %d", c.name, c.tiles, got, c.want)
		}
	}
}

// TestAutoShardsZeroWorkersPositive pins the default-pool path: whatever
// GOMAXPROCS is, the result is at least 1 (a valid core.Config.Shards).
func TestAutoShardsZeroWorkersPositive(t *testing.T) {
	if got := (sim.Config{Replicas: 1}).AutoShards(1 << 20); got < 1 {
		t.Fatalf("AutoShards = %d, want >= 1", got)
	}
}

// RunOffset's contract: the seed a replica sees depends only on its
// absolute index, never on how the sequence is sliced into windows.
func TestRunOffsetSeedsArePrefixStable(t *testing.T) {
	const master, total = 0xfeed, 24
	want := sim.Seeds(master, total)

	collect := func(windows [][2]int, workers int) []uint64 {
		got := make([]uint64, total)
		for _, w := range windows {
			cfg := sim.Config{Replicas: w[1], Workers: workers, Seed: master}
			_, err := sim.RunOffset(cfg, w[0], func(replica int, seed uint64) (struct{}, error) {
				got[replica] = seed
				return struct{}{}, nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		return got
	}

	for _, tc := range []struct {
		name    string
		windows [][2]int
		workers int
	}{
		{"oneWindow", [][2]int{{0, 24}}, 1},
		{"threeWindows", [][2]int{{0, 8}, {8, 8}, {16, 8}}, 4},
		{"unevenWindows", [][2]int{{0, 5}, {5, 13}, {18, 6}}, 3},
	} {
		got := collect(tc.windows, tc.workers)
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("%s: replica %d saw seed %#x, Seeds gives %#x", tc.name, r, got[r], want[r])
			}
		}
	}
}

func TestRunOffsetRejectsNegativeOffset(t *testing.T) {
	_, err := sim.RunOffset(sim.Config{Replicas: 1}, -1, func(int, uint64) (int, error) { return 0, nil })
	if err == nil {
		t.Fatal("negative offset accepted")
	}
}
