package sim_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// TestMetricsCountsExhaustive guards the Collector's exhaustive-switch
// contract: every core.EventKind lands in its Counts field, and an
// unknown kind (a new engine event with no Counts field) panics instead
// of being silently dropped from the tally.
func TestMetricsCountsExhaustive(t *testing.T) {
	var c sim.Collector
	for _, kind := range []core.EventKind{
		core.EvCreated, core.EvTransmit, core.EvUpset,
		core.EvOverflow, core.EvDeliver, core.EvExpire,
	} {
		c.OnEvent(core.Event{Kind: kind})
	}
	want := sim.Counts{
		Created: 1, Transmissions: 1, CRCRejects: 1,
		OverflowDrops: 1, Deliveries: 1, TTLExpiries: 1,
	}
	if c.Counts != want {
		t.Fatalf("Counts after one event of each kind = %+v, want %+v", c.Counts, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Collector.OnEvent swallowed an unknown core.EventKind")
		}
	}()
	c.OnEvent(core.Event{Kind: core.EventKind(250)})
}
