// Package sim is the Monte Carlo replica runner every figure of the
// evaluation sits on. Each figure is a statistic over N independent
// stochastic runs ("all of the results presented ... are averages
// obtained after several repeated simulations", §4.1); sim executes
// those replicas across a bounded worker pool and aggregates their
// metrics into package stats summaries.
//
// Determinism is the design constraint: the replica *index*, never the
// scheduling order, decides both the replica's seed and its slot in the
// result slice, so a run's aggregate output is bit-identical whether it
// executed on 1 worker or 64. Per-replica seeds derive from package
// rng's splittable streams — not from additive prime-multiplier offsets,
// whose arithmetic collisions across concurrently swept parameters this
// package exists to retire.
package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// Config parameterizes one Monte Carlo run.
type Config struct {
	// Replicas is the number of independent replicas to execute (> 0).
	Replicas int
	// Workers bounds the worker pool; 0 defaults to runtime.GOMAXPROCS(0)
	// and 1 forces fully sequential in-goroutine execution.
	Workers int
	// Seed is the master seed. Per-replica seeds are derived from it by
	// stream splitting (see Seeds); replica r always sees the same seed
	// regardless of Workers.
	Seed uint64
}

// workers resolves the effective pool size.
func (c Config) workers() int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > c.Replicas {
		w = c.Replicas
	}
	return w
}

// megaShardTiles is the fabric size at which AutoShards stops trading
// shards against replica parallelism and simply uses the whole pool.
// At 65536+ tiles one replica's state tables are tens of megabytes, so
// running Workers mega-replicas side by side multiplies peak memory by
// the pool size, and a single sequential round is long enough that the
// shard barrier overhead is noise. Better to run replicas one at a time,
// each sharded across every core.
const megaShardTiles = 1 << 16

// shardFloorTiles is the fabric size below which AutoShards never shards
// at all. The break-even is measured, not guessed: in the steady-state
// broadcast benchmarks (internal/core/bench_test.go) a 32×32 mesh steps
// in ~138µs sequentially but ~162µs with 2 shards, and even a 64×64 mesh
// (~876µs sequential) loses to the barrier and occupancy-merge overhead
// at 4 and 8 shards unless the machine really runs the lanes in parallel.
// Below this floor the sequential engine is never the slower choice, and
// it is the zero-allocation one.
const shardFloorTiles = 1 << 14

// AutoShards picks a core.Config.Shards value for replicas of a
// tiles-tile network run under this configuration: the cores the replica
// pool leaves idle, so Monte Carlo parallelism and intra-run sharding
// share the machine instead of oversubscribing it. With at least as many
// replicas as workers every core is already busy and AutoShards returns 1
// (sequential — the zero-allocation path). Meshes under shardFloorTiles
// tiles are never sharded — the measured per-round barrier overhead
// exceeds the parallelism below that size — and above the floor shards
// are still capped at one per 64 tiles so lanes stay coarse. Mega-meshes
// (megaShardTiles tiles and up) ignore the replica count and shard with
// the full pool — see megaShardTiles for why.
func (c Config) AutoShards(tiles int) int {
	if tiles < shardFloorTiles {
		return 1
	}
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	maxUseful := tiles / 64
	spare := w
	if tiles < megaShardTiles {
		busy := c.Replicas
		if busy < 1 {
			busy = 1
		}
		spare = w / busy
	}
	if spare > maxUseful {
		spare = maxUseful
	}
	if spare < 1 {
		spare = 1
	}
	return spare
}

// Seeds returns the n per-replica seeds derived from the master seed.
// The sequence is prefix-stable: Seeds(m, n)[r] depends only on m and r,
// so growing a study keeps every already-run replica's seed.
func Seeds(master uint64, n int) []uint64 {
	root := rng.New(master)
	out := make([]uint64, n)
	for r := range out {
		out[r] = root.Split(uint64(r)).Uint64()
	}
	return out
}

// RunOffset executes one window [offset, offset+cfg.Replicas) of a
// conceptually unbounded replica sequence across the worker pool: body
// receives global replica indices, and replica r's seed is the one
// Seeds(cfg.Seed, r+1)[r] would return — derivation is by absolute
// index, so the seed sequence is identical no matter how the caller
// slices the sequence into windows. Sequential verdict engines
// (smc.Check) are built on this: they consume replicas wave by wave,
// stopping as soon as a verdict settles, yet every replica they ever
// schedule has the same seed a single monolithic Run would have given
// it. Results arrive in window order with Run's determinism contract.
func RunOffset[T any](cfg Config, offset int, body func(replica int, seed uint64) (T, error)) ([]T, error) {
	if offset < 0 {
		return nil, fmt.Errorf("sim: RunOffset offset = %d, need >= 0", offset)
	}
	root := rng.New(cfg.Seed)
	return Run(cfg, func(r int, _ uint64) (T, error) {
		g := offset + r
		return body(g, root.Split(uint64(g)).Uint64())
	})
}

// Run executes cfg.Replicas independent calls of body across the worker
// pool and returns their results in replica order. body receives the
// replica index and that replica's derived seed; it must not share
// mutable state with other replicas.
//
// Results are deterministic in (cfg.Replicas, cfg.Seed) alone: worker
// count and scheduling cannot change them. If any replica fails, Run
// reports the error of the lowest-indexed failing replica — again
// independent of scheduling — and discards the results.
func Run[T any](cfg Config, body func(replica int, seed uint64) (T, error)) ([]T, error) {
	n := cfg.Replicas
	if n <= 0 {
		return nil, fmt.Errorf("sim: Config.Replicas = %d, need > 0", n)
	}
	seeds := Seeds(cfg.Seed, n)
	results := make([]T, n)
	errs := make([]error, n)

	if w := cfg.workers(); w == 1 {
		for r := 0; r < n; r++ {
			results[r], errs[r] = body(r, seeds[r])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					r := int(next.Add(1)) - 1
					if r >= n {
						return
					}
					results[r], errs[r] = body(r, seeds[r])
				}
			}()
		}
		wg.Wait()
	}

	for r, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: replica %d: %w", r, err)
		}
	}
	return results, nil
}

// RunMetrics runs a Metrics-producing body and aggregates the replicas'
// outcomes into summary statistics.
func RunMetrics(cfg Config, body func(replica int, seed uint64) (Metrics, error)) (Aggregate, error) {
	ms, err := Run(cfg, body)
	if err != nil {
		return Aggregate{}, err
	}
	return Summarize(ms), nil
}
