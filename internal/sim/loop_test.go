package sim

import (
	"bytes"
	"os"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/topology"
)

// loopFixture builds an instrumented 4x4 broadcast positioned at round 0.
func loopFixture(t *testing.T, seed uint64) (*core.Network, *metrics.Recorder, core.Config) {
	t.Helper()
	rec := metrics.NewRecorder(metrics.Config{Rounds: 64})
	base := core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.6, TTL: 8, MaxRounds: 100, Seed: seed,
	}
	cfg := base
	rec.Install(&cfg)
	net, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := net.Inject(0, packet.Broadcast, 0, []byte("loop"))
	if err != nil {
		t.Fatal(err)
	}
	rec.Watch(id)
	return net, rec, base
}

func TestLoopRunsToQuiescence(t *testing.T) {
	net, _, _ := loopFixture(t, 11)
	rounds := 0
	l := Loop{
		Net: net, MaxRounds: 100,
		OnRound: func(n *core.Network) { rounds++ },
	}
	st := l.Run()
	if st != LoopQuiescent {
		t.Fatalf("status = %v, want quiescent", st)
	}
	if !st.Terminal() {
		t.Fatal("quiescent must be terminal")
	}
	if rounds != net.Round() {
		t.Fatalf("OnRound fired %d times over %d rounds", rounds, net.Round())
	}
}

func TestLoopDoneBeatsBarrier(t *testing.T) {
	// The Done predicate is checked before the Barrier: a run that
	// completed at round k must never also be yielded at round k, so a
	// checkpoint written on LoopYielded always holds an unfinished run.
	net, _, _ := loopFixture(t, 5)
	l := Loop{
		Net: net, MaxRounds: 100,
		Done:    func(n *core.Network) bool { return n.Round() >= 3 },
		Barrier: func(n *core.Network) BarrierOp { return OpYield },
	}
	// Barrier yields immediately at round 0: the run never advances.
	if st := l.Run(); st != LoopYielded || net.Round() != 0 {
		t.Fatalf("status=%v round=%d, want yielded at round 0", st, net.Round())
	}
	// With the barrier permissive until round 3, Done wins there.
	l.Barrier = func(n *core.Network) BarrierOp {
		if n.Round() >= 3 {
			return OpYield
		}
		return OpContinue
	}
	if st := l.Run(); st != LoopDone || net.Round() != 3 {
		t.Fatalf("status=%v round=%d, want done at round 3", st, net.Round())
	}
}

func TestLoopBudgetAndCancel(t *testing.T) {
	net, _, _ := loopFixture(t, 7)
	l := Loop{Net: net, MaxRounds: 2}
	if st := l.Run(); st != LoopBudget || net.Round() != 2 {
		t.Fatalf("status=%v round=%d, want budget at round 2", st, net.Round())
	}
	l.MaxRounds = 100
	l.Barrier = func(n *core.Network) BarrierOp { return OpCancel }
	if st := l.Run(); st != LoopCanceled {
		t.Fatalf("status=%v, want canceled", st)
	}
}

// TestLoopYieldResumeBitIdentical is the loop-level preemption
// guarantee: a run yielded at a barrier, checkpointed to a file, and
// resumed into a fresh engine finishes with byte-identical metric
// series (and equal counters) to the uninterrupted run.
func TestLoopYieldResumeBitIdentical(t *testing.T) {
	const seed = 42
	finish := func(net *core.Network, rec *metrics.Recorder) ([]byte, core.Counters) {
		l := Loop{Net: net, MaxRounds: 100}
		if st := l.Run(); !st.Terminal() {
			t.Fatalf("finish stopped with %v", st)
		}
		str := metrics.NewStreamer(rec)
		var buf bytes.Buffer
		for r := 0; r <= rec.Rounds(); r++ {
			buf.Write(str.RoundLine(r))
		}
		return buf.Bytes(), net.Counters()
	}

	// Uninterrupted reference.
	netU, recU, _ := loopFixture(t, seed)
	wantBytes, wantCnt := finish(netU, recU)

	// Preempted twin: yield at round 3, checkpoint, resume, finish.
	netP, recP, base := loopFixture(t, seed)
	l := Loop{
		Net: netP, MaxRounds: 100,
		Barrier: func(n *core.Network) BarrierOp {
			if n.Round() == 3 {
				return OpYield
			}
			return OpContinue
		},
	}
	if st := l.Run(); st != LoopYielded {
		t.Fatalf("status=%v, want yielded", st)
	}
	meta := CheckpointMeta{Replica: 0, Seed: seed}
	ck := Checkpointer{Dir: t.TempDir(), Every: 1}
	if err := ck.Save(meta, netP, recP); err != nil {
		t.Fatal(err)
	}
	rec2 := metrics.NewRecorder(metrics.Config{Rounds: 64})
	cfg2 := base
	rec2.Install(&cfg2)
	net2, ok, err := LoadReplica(ck.Dir, meta, cfg2, rec2)
	if err != nil || !ok {
		t.Fatalf("LoadReplica: ok=%v err=%v", ok, err)
	}
	gotBytes, gotCnt := finish(net2, rec2)

	if gotCnt != wantCnt {
		t.Fatalf("counters diverged:\nresumed %+v\nuninterrupted %+v", gotCnt, wantCnt)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatal("resumed run's streamed series is not byte-identical to the uninterrupted run")
	}
}

func TestCheckpointerRemove(t *testing.T) {
	dir := t.TempDir()
	net, rec, meta, _ := ckptFixture(t, 2)
	ck := Checkpointer{Dir: dir, Every: 1}
	if err := ck.Save(meta, net, rec); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(CheckpointPath(dir, meta.Replica)); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	if err := ck.Remove(meta.Replica); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	// The directory must be empty: a resumed-then-completed job leaves
	// nothing behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("checkpoint dir still holds %d entries after Remove", len(ents))
	}
	// Removing an already-removed replica is not an error.
	if err := ck.Remove(meta.Replica); err != nil {
		t.Fatalf("second Remove: %v", err)
	}
}

func TestCheckpointerSweep(t *testing.T) {
	dir := t.TempDir()
	net, rec, meta, _ := ckptFixture(t, 2)
	ck := Checkpointer{Dir: dir, Every: 1, Retain: time.Hour}
	stale, fresh := meta, meta
	fresh.Replica = 4
	for _, m := range []CheckpointMeta{stale, fresh} {
		if err := ck.Save(m, net, rec); err != nil {
			t.Fatal(err)
		}
	}
	// An unrelated file must survive the sweep.
	other := dir + "/notes.txt"
	if err := os.WriteFile(other, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Age the stale replica's file past the retention window.
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(CheckpointPath(dir, stale.Replica), old, old); err != nil {
		t.Fatal(err)
	}

	removed, err := ck.Sweep(time.Now())
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	if removed != 1 {
		t.Fatalf("Sweep removed %d files, want 1", removed)
	}
	if _, err := os.Stat(CheckpointPath(dir, stale.Replica)); !os.IsNotExist(err) {
		t.Fatal("stale checkpoint survived the sweep")
	}
	if _, err := os.Stat(CheckpointPath(dir, fresh.Replica)); err != nil {
		t.Fatal("fresh checkpoint was swept")
	}
	if _, err := os.Stat(other); err != nil {
		t.Fatal("non-checkpoint file was swept")
	}

	// Inert sweeps: no retention, nil receiver, missing directory.
	ck.Retain = 0
	if n, err := ck.Sweep(time.Now()); n != 0 || err != nil {
		t.Fatalf("retention-less Sweep: n=%d err=%v", n, err)
	}
	var nilCk *Checkpointer
	if n, err := nilCk.Sweep(time.Now()); n != 0 || err != nil {
		t.Fatalf("nil Sweep: n=%d err=%v", n, err)
	}
	gone := Checkpointer{Dir: dir + "/absent", Retain: time.Hour}
	if n, err := gone.Sweep(time.Now()); n != 0 || err != nil {
		t.Fatalf("missing-dir Sweep: n=%d err=%v", n, err)
	}
}
