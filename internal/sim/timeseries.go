package sim

import (
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/metrics"
)

// RunSeries executes cfg.Replicas independent replicas that each record
// a metrics.TimeSeries and merges them into per-round cross-replica
// statistics (mean/min/max/95%-CI per round per series). The merge
// inherits Run's determinism contract: replicas land in index order
// before metrics.Merge folds them, so the aggregate — and any JSONL/CSV
// artifact exported from it — is bit-identical whether the batch ran on
// 1 worker or 64.
func RunSeries(cfg Config, body func(replica int, seed uint64) (*metrics.TimeSeries, error)) (*metrics.Aggregate, error) {
	runs, err := Run(cfg, body)
	if err != nil {
		return nil, err
	}
	return metrics.Merge(runs)
}

// MeasureSeries is Measure for replicas instrumented with a
// metrics.Recorder instead of a Collector: it extracts the standard
// per-replica Metrics (completion, rounds, joules) and fills Counts from
// the recorder's cumulative event totals. rec may be nil when no
// recorder was attached.
func MeasureSeries(net *core.Network, res core.Result, tech energy.Technology, rec *metrics.Recorder) Metrics {
	m := Measure(net, res, tech, nil)
	if rec != nil {
		m.Counts = Counts{
			Created:       int(rec.Total(metrics.Created)),
			Transmissions: int(rec.Total(metrics.Transmissions)),
			CRCRejects:    int(rec.Total(metrics.CRCRejects)),
			OverflowDrops: int(rec.Total(metrics.OverflowDrops)),
			Deliveries:    int(rec.Total(metrics.Deliveries)),
			TTLExpiries:   int(rec.Total(metrics.TTLExpiries)),
		}
	}
	return m
}
