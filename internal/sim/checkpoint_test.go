package sim

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/topology"
)

// ckptFixture runs a small instrumented broadcast to round k and returns
// the network, its recorder, and the replica identity.
func ckptFixture(t *testing.T, k int) (*core.Network, *metrics.Recorder, CheckpointMeta, core.Config) {
	t.Helper()
	rec := metrics.NewRecorder(metrics.Config{Rounds: 64})
	base := core.Config{
		Topo: topology.NewGrid(4, 4), P: 0.6, TTL: 8, MaxRounds: 100, Seed: 77,
	}
	cfg := base
	rec.Install(&cfg)
	net, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id, err := net.Inject(0, packet.Broadcast, 0, []byte("ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	rec.Watch(id)
	for i := 0; i < k; i++ {
		net.Step()
	}
	// The returned config is the hook-free base: resume-side callers
	// install their own recorder, not a chain including the original's.
	return net, rec, CheckpointMeta{Replica: 3, Seed: 77}, base
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	net, rec, meta, cfg := ckptFixture(t, 5)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, meta, net, rec); err != nil {
		t.Fatalf("WriteCheckpoint: %v", err)
	}

	rec2 := metrics.NewRecorder(metrics.Config{Rounds: 64})
	cfg2 := cfg
	rec2.Install(&cfg2)
	net2, meta2, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()), cfg2, rec2)
	if err != nil {
		t.Fatalf("ReadCheckpoint: %v", err)
	}
	if meta2 != meta {
		t.Fatalf("meta = %+v, want %+v", meta2, meta)
	}
	if net2.Round() != net.Round() || net2.Counters() != net.Counters() {
		t.Fatal("engine state did not round-trip through the checkpoint file")
	}

	// Both sides finish the run; the final series must agree exactly.
	for !net.Quiescent() {
		net.Step()
	}
	for !net2.Quiescent() {
		net2.Step()
	}
	a, b := rec.Series(), rec2.Series()
	if a.Rounds != b.Rounds {
		t.Fatalf("rounds %d != %d", a.Rounds, b.Rounds)
	}
	for i := range a.Ints {
		for r := range a.Ints[i] {
			if a.Ints[i][r] != b.Ints[i][r] {
				t.Fatalf("int series %d diverged at round %d: %d != %d", i, r, a.Ints[i][r], b.Ints[i][r])
			}
		}
	}
}

func TestReadCheckpointRejectsMissingMetrics(t *testing.T) {
	net, _, meta, cfg := ckptFixture(t, 3)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, meta, net, nil); err != nil { // no recorder
		t.Fatal(err)
	}
	rec := metrics.NewRecorder(metrics.Config{Rounds: 64})
	if _, _, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()), cfg, rec); err == nil {
		t.Fatal("recorder-less checkpoint satisfied a non-nil recorder")
	}
	// Without a recorder it reads fine.
	if _, _, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()), cfg, nil); err != nil {
		t.Fatalf("recorder-less read failed: %v", err)
	}
}

func TestCheckpointerSaveAndLoadReplica(t *testing.T) {
	dir := t.TempDir()
	net, rec, meta, cfg := ckptFixture(t, 4)
	ck := Checkpointer{Dir: filepath.Join(dir, "ckpts"), Every: 2}
	if !ck.Active() {
		t.Fatal("configured checkpointer reports inactive")
	}
	if err := ck.Save(meta, net, rec); err != nil {
		t.Fatalf("Save: %v", err)
	}

	rec2 := metrics.NewRecorder(metrics.Config{Rounds: 64})
	cfg2 := cfg
	rec2.Install(&cfg2)
	got, ok, err := LoadReplica(ck.Dir, meta, cfg2, rec2)
	if err != nil || !ok {
		t.Fatalf("LoadReplica: ok=%v err=%v", ok, err)
	}
	if got.Round() != net.Round() {
		t.Fatalf("restored round %d, want %d", got.Round(), net.Round())
	}

	// Identity mismatch: right file shape, wrong expected replica/seed.
	bad := meta
	bad.Seed++
	if _, _, err := LoadReplica(ck.Dir, bad, cfg2, nil); err == nil {
		t.Fatal("seed mismatch accepted")
	}

	// Missing file: ok=false, no error.
	missing := meta
	missing.Replica = 99
	if _, ok, err := LoadReplica(ck.Dir, missing, cfg2, nil); ok || err != nil {
		t.Fatalf("missing file: ok=%v err=%v, want false,nil", ok, err)
	}
}

func TestCheckpointerInertZeroValue(t *testing.T) {
	var ck *Checkpointer
	if ck.Active() {
		t.Fatal("nil checkpointer active")
	}
	zero := &Checkpointer{}
	net, rec, meta, _ := ckptFixture(t, 1)
	if err := zero.MaybeSave(meta, net, rec); err != nil {
		t.Fatalf("inert MaybeSave errored: %v", err)
	}
}
