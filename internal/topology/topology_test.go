package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
)

func TestGridStructure(t *testing.T) {
	g := NewGrid(4, 4)
	if g.Tiles() != 16 {
		t.Fatalf("Tiles = %d", g.Tiles())
	}
	// Corner tile 0 has exactly 2 neighbors.
	if n := len(g.Neighbors(0)); n != 2 {
		t.Fatalf("corner degree = %d", n)
	}
	// Edge tile 1 has 3 neighbors.
	if n := len(g.Neighbors(1)); n != 3 {
		t.Fatalf("edge degree = %d", n)
	}
	// Interior tile 5 has 4 neighbors.
	if n := len(g.Neighbors(5)); n != 4 {
		t.Fatalf("interior degree = %d", n)
	}
}

func TestGridLinkCount(t *testing.T) {
	// A W x H mesh has W(H-1) + H(W-1) links.
	g := NewGrid(5, 5)
	if got, want := len(g.Links()), 5*4+5*4; got != want {
		t.Fatalf("links = %d, want %d", got, want)
	}
}

func TestGridCoordRoundTrip(t *testing.T) {
	g := NewGrid(7, 3)
	for id := 0; id < g.Tiles(); id++ {
		x, y := g.Coord(packet.TileID(id))
		if g.ID(x, y) != packet.TileID(id) {
			t.Fatalf("coord round trip failed for %d", id)
		}
		if x < 0 || x >= 7 || y < 0 || y >= 3 {
			t.Fatalf("coord out of range for %d: (%d,%d)", id, x, y)
		}
	}
}

func TestGridManhattan(t *testing.T) {
	g := NewGrid(4, 4)
	// The thesis example: Producer at tile 6 (paper's tile numbering is
	// 1-based; ours is 0-based, so tile 5), Consumer at tile 12 -> 11.
	if d := g.Manhattan(5, 11); d != 3 {
		t.Fatalf("Manhattan(5,11) = %d, want 3", d)
	}
	if d := g.Manhattan(0, 15); d != 6 {
		t.Fatalf("Manhattan(0,15) = %d, want 6", d)
	}
	if d := g.Manhattan(7, 7); d != 0 {
		t.Fatalf("Manhattan(x,x) = %d", d)
	}
}

func TestGridManhattanMatchesBFS(t *testing.T) {
	g := NewGrid(5, 4)
	for s := 0; s < g.Tiles(); s++ {
		dist := BFSDistances(g, packet.TileID(s), AllAlive, AllLinksAlive)
		for d := 0; d < g.Tiles(); d++ {
			if dist[d] != g.Manhattan(packet.TileID(s), packet.TileID(d)) {
				t.Fatalf("BFS %d->%d = %d, Manhattan = %d",
					s, d, dist[d], g.Manhattan(packet.TileID(s), packet.TileID(d)))
			}
		}
	}
}

func TestFullyConnected(t *testing.T) {
	g := NewFullyConnected(16)
	for i := 0; i < 16; i++ {
		if n := len(g.Neighbors(packet.TileID(i))); n != 15 {
			t.Fatalf("degree of %d = %d", i, n)
		}
	}
	if got, want := len(g.Links()), 16*15/2; got != want {
		t.Fatalf("links = %d, want %d", got, want)
	}
}

func TestRing(t *testing.T) {
	g := NewRing(8)
	for i := 0; i < 8; i++ {
		if n := len(g.Neighbors(packet.TileID(i))); n != 2 {
			t.Fatalf("ring degree = %d", n)
		}
	}
	if d := Diameter(g, AllAlive, AllLinksAlive); d != 4 {
		t.Fatalf("ring(8) diameter = %d, want 4", d)
	}
}

func TestTorus(t *testing.T) {
	g := NewTorus(4, 4)
	for i := 0; i < 16; i++ {
		if n := len(g.Neighbors(packet.TileID(i))); n != 4 {
			t.Fatalf("torus degree of %d = %d", i, n)
		}
	}
	// Torus diameter is floor(W/2)+floor(H/2).
	if d := Diameter(g, AllAlive, AllLinksAlive); d != 4 {
		t.Fatalf("torus(4,4) diameter = %d, want 4", d)
	}
}

func TestAddLinkErrors(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddLink(0, 0); err == nil {
		t.Error("self-link accepted")
	}
	if err := g.AddLink(0, 5); err == nil {
		t.Error("out-of-range link accepted")
	}
	if err := g.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLink(1, 0); err == nil {
		t.Error("duplicate link accepted")
	}
}

func TestHasLink(t *testing.T) {
	g := NewGrid(3, 3)
	if !g.HasLink(0, 1) || !g.HasLink(1, 0) {
		t.Error("adjacent link missing")
	}
	if g.HasLink(0, 8) {
		t.Error("phantom diagonal link")
	}
	if g.HasLink(200, 0) {
		t.Error("out-of-range HasLink true")
	}
}

func TestBFSWithDeadTile(t *testing.T) {
	// 3x1 line: killing the middle tile disconnects the ends.
	g := NewGrid(3, 1)
	alive := func(t packet.TileID) bool { return t != 1 }
	dist := BFSDistances(g, 0, alive, AllLinksAlive)
	if dist[2] != -1 {
		t.Fatalf("tile 2 reachable through dead tile: dist=%d", dist[2])
	}
	if Reachable(g, 0, 2, alive, AllLinksAlive) {
		t.Fatal("Reachable through dead tile")
	}
}

func TestBFSWithDeadLink(t *testing.T) {
	g := NewGrid(2, 1)
	deadLink := func(a, b packet.TileID) bool { return false }
	if Reachable(g, 0, 1, AllAlive, deadLink) {
		t.Fatal("Reachable through dead link")
	}
}

func TestBFSDeadSource(t *testing.T) {
	g := NewGrid(2, 2)
	alive := func(t packet.TileID) bool { return t != 0 }
	dist := BFSDistances(g, 0, alive, AllLinksAlive)
	for i, d := range dist {
		if d != -1 {
			t.Fatalf("dist[%d] = %d with dead source", i, d)
		}
	}
}

func TestReachableSelf(t *testing.T) {
	g := NewGrid(2, 2)
	if !Reachable(g, 1, 1, AllAlive, AllLinksAlive) {
		t.Fatal("tile not reachable from itself")
	}
	dead := func(t packet.TileID) bool { return t != 1 }
	if Reachable(g, 1, 1, dead, AllLinksAlive) {
		t.Fatal("dead tile reachable from itself")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewGrid(4, 1) // line 0-1-2-3
	alive := func(t packet.TileID) bool { return t != 1 }
	comp, n := ConnectedComponents(g, alive, AllLinksAlive)
	if n != 2 {
		t.Fatalf("components = %d, want 2", n)
	}
	if comp[1] != -1 {
		t.Fatalf("dead tile assigned component %d", comp[1])
	}
	if comp[0] == comp[2] || comp[2] != comp[3] {
		t.Fatalf("bad components: %v", comp)
	}
}

func TestDiameterGrid(t *testing.T) {
	if d := Diameter(NewGrid(4, 4), AllAlive, AllLinksAlive); d != 6 {
		t.Fatalf("grid(4,4) diameter = %d, want 6", d)
	}
	if d := Diameter(NewGrid(5, 5), AllAlive, AllLinksAlive); d != 8 {
		t.Fatalf("grid(5,5) diameter = %d, want 8", d)
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := NewGraph(4)
	if err := g.AddLink(0, 1); err != nil {
		t.Fatal(err)
	}
	if d := Diameter(g, AllAlive, AllLinksAlive); d != -1 {
		t.Fatalf("disconnected diameter = %d, want -1", d)
	}
}

func TestDiameterAllDead(t *testing.T) {
	g := NewGrid(2, 2)
	dead := func(packet.TileID) bool { return false }
	if d := Diameter(g, dead, AllLinksAlive); d != -1 {
		t.Fatalf("all-dead diameter = %d, want -1", d)
	}
}

func TestGridPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGrid(0, 3) did not panic")
		}
	}()
	NewGrid(0, 3)
}

// Property: in any grid, the neighbor relation is symmetric.
func TestQuickGridSymmetry(t *testing.T) {
	f := func(w, h uint8) bool {
		width, height := int(w%6)+1, int(h%6)+1
		g := NewGrid(width, height)
		for a := 0; a < g.Tiles(); a++ {
			for _, b := range g.Neighbors(packet.TileID(a)) {
				if !g.HasLink(b, packet.TileID(a)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a healthy grid is always a single connected component.
func TestQuickGridConnected(t *testing.T) {
	f := func(w, h uint8) bool {
		g := NewGrid(int(w%7)+1, int(h%7)+1)
		_, n := ConnectedComponents(g, AllAlive, AllLinksAlive)
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
