// Package topology models the interconnect fabrics studied in the thesis:
// the 2-D grid of tiles of Fig. 1-1 (the NoC proper), the fully connected
// network used for the gossip theory of §3.1/Fig. 3-1, and the generic
// adjacency graphs from which the Chapter 5 on-chip-diversity architectures
// (hierarchical NoC, bus-connected NoCs, central router) are assembled.
package topology

import (
	"fmt"

	"repro/internal/packet"
)

// Topology describes the static wiring of a network: which tiles exist and
// which are joined by links. Implementations must be immutable after
// construction; dynamic failures are layered on by package fault.
type Topology interface {
	// Tiles returns the number of tiles, identified as 0..Tiles()-1.
	Tiles() int
	// Neighbors returns the tiles directly linked to t, in a fixed,
	// deterministic order (for the grid: left, right, up, down).
	Neighbors(t packet.TileID) []packet.TileID
}

// Graph is a general undirected topology backed by adjacency lists.
type Graph struct {
	adj [][]packet.TileID
}

// NewGraph returns an empty graph with n isolated tiles.
func NewGraph(n int) *Graph {
	return &Graph{adj: make([][]packet.TileID, n)}
}

// Tiles implements Topology.
func (g *Graph) Tiles() int { return len(g.adj) }

// Neighbors implements Topology. The returned slice is owned by the graph
// and must not be mutated.
func (g *Graph) Neighbors(t packet.TileID) []packet.TileID { return g.adj[t] }

// AddLink joins tiles a and b with a bidirectional link. Self-links and
// duplicate links are rejected.
func (g *Graph) AddLink(a, b packet.TileID) error {
	if int(a) >= len(g.adj) || int(b) >= len(g.adj) {
		return fmt.Errorf("topology: link %d-%d out of range (n=%d)", a, b, len(g.adj))
	}
	if a == b {
		return fmt.Errorf("topology: self-link at tile %d", a)
	}
	for _, x := range g.adj[a] {
		if x == b {
			return fmt.Errorf("topology: duplicate link %d-%d", a, b)
		}
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	return nil
}

// HasLink reports whether a and b are directly connected.
func (g *Graph) HasLink(a, b packet.TileID) bool {
	if int(a) >= len(g.adj) {
		return false
	}
	for _, x := range g.adj[a] {
		if x == b {
			return true
		}
	}
	return false
}

// Links returns every undirected link exactly once, as (low, high) pairs
// in deterministic order.
func (g *Graph) Links() [][2]packet.TileID {
	var links [][2]packet.TileID
	for a := range g.adj {
		for _, b := range g.adj[a] {
			if packet.TileID(a) < b {
				links = append(links, [2]packet.TileID{packet.TileID(a), b})
			}
		}
	}
	return links
}

// Grid is the rectangular tile array of Fig. 1-1. Tile (x, y) has ID
// y*Width + x; each tile links to its four mesh neighbours.
type Grid struct {
	Graph
	Width, Height int
}

// NewGrid returns a Width x Height mesh. It panics on non-positive
// dimensions (a programming error, not a runtime condition).
func NewGrid(width, height int) *Grid {
	if width <= 0 || height <= 0 {
		panic("topology: non-positive grid dimension")
	}
	g := &Grid{Graph: *NewGraph(width * height), Width: width, Height: height}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			id := g.ID(x, y)
			if x+1 < width {
				mustLink(&g.Graph, id, g.ID(x+1, y))
			}
			if y+1 < height {
				mustLink(&g.Graph, id, g.ID(x, y+1))
			}
		}
	}
	return g
}

func mustLink(g *Graph, a, b packet.TileID) {
	if err := g.AddLink(a, b); err != nil {
		panic(err)
	}
}

// ID returns the tile ID at grid coordinate (x, y).
func (g *Grid) ID(x, y int) packet.TileID { return packet.TileID(y*g.Width + x) }

// Coord returns the grid coordinate of tile t.
func (g *Grid) Coord(t packet.TileID) (x, y int) {
	return int(t) % g.Width, int(t) / g.Width
}

// Manhattan returns the Manhattan (hop) distance between tiles a and b —
// the minimum latency of any routing, which flooding (p = 1) achieves.
func (g *Grid) Manhattan(a, b packet.TileID) int {
	ax, ay := g.Coord(a)
	bx, by := g.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// NewTorus returns a Width x Height mesh with wraparound links, an
// extension fabric for ablation studies.
func NewTorus(width, height int) *Grid {
	if width < 3 || height < 3 {
		panic("topology: torus requires dimensions >= 3 to avoid duplicate links")
	}
	g := NewGrid(width, height)
	for y := 0; y < height; y++ {
		mustLink(&g.Graph, g.ID(0, y), g.ID(width-1, y))
	}
	for x := 0; x < width; x++ {
		mustLink(&g.Graph, g.ID(x, 0), g.ID(x, height-1))
	}
	return g
}

// NewFullyConnected returns the complete graph on n tiles — the topology
// assumed by the rumor-spreading theory of §3.1 (Fig. 3-2a).
func NewFullyConnected(n int) *Graph {
	g := NewGraph(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			mustLink(g, packet.TileID(a), packet.TileID(b))
		}
	}
	return g
}

// NewRing returns a cycle on n >= 3 tiles, a worst-case-diameter fabric
// used in robustness tests.
func NewRing(n int) *Graph {
	if n < 3 {
		panic("topology: ring requires n >= 3")
	}
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		mustLink(g, packet.TileID(i), packet.TileID((i+1)%n))
	}
	return g
}
