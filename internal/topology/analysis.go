package topology

import "repro/internal/packet"

// Analysis helpers over topologies with failures overlaid. The fault
// injector marks tiles and links dead; these functions answer the
// questions the thesis raises in §4.1.3 — "entire regions of the NoC are
// isolated" — by computing reachability on the surviving subgraph.

// AliveFunc reports whether a tile is functional.
type AliveFunc func(packet.TileID) bool

// LinkAliveFunc reports whether the link between two adjacent tiles is
// functional.
type LinkAliveFunc func(a, b packet.TileID) bool

// AllAlive is the no-failure predicate.
func AllAlive(packet.TileID) bool { return true }

// AllLinksAlive is the no-failure link predicate.
func AllLinksAlive(a, b packet.TileID) bool { return true }

// BFSDistances returns the hop distance from src to every tile over the
// surviving subgraph, or -1 for unreachable tiles. If src itself is dead,
// every entry is -1.
func BFSDistances(t Topology, src packet.TileID, alive AliveFunc, linkAlive LinkAliveFunc) []int {
	n := t.Tiles()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	if !alive(src) {
		return dist
	}
	dist[src] = 0
	queue := []packet.TileID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range t.Neighbors(cur) {
			if dist[nb] >= 0 || !alive(nb) || !linkAlive(cur, nb) {
				continue
			}
			dist[nb] = dist[cur] + 1
			queue = append(queue, nb)
		}
	}
	return dist
}

// Reachable reports whether dst can be reached from src over the surviving
// subgraph. A gossip broadcast can only succeed if this holds; the
// experiment harness uses it to classify "application failed completely"
// outcomes.
func Reachable(t Topology, src, dst packet.TileID, alive AliveFunc, linkAlive LinkAliveFunc) bool {
	if src == dst {
		return alive(src)
	}
	return BFSDistances(t, src, alive, linkAlive)[dst] >= 0
}

// ConnectedComponents returns, for each tile, the component index of the
// surviving subgraph it belongs to, with dead tiles assigned -1, plus the
// number of components.
func ConnectedComponents(t Topology, alive AliveFunc, linkAlive LinkAliveFunc) (comp []int, count int) {
	n := t.Tiles()
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	for s := 0; s < n; s++ {
		src := packet.TileID(s)
		if comp[s] >= 0 || !alive(src) {
			continue
		}
		comp[s] = count
		queue := []packet.TileID{src}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range t.Neighbors(cur) {
				if comp[nb] >= 0 || !alive(nb) || !linkAlive(cur, nb) {
					continue
				}
				comp[nb] = count
				queue = append(queue, nb)
			}
		}
		count++
	}
	return comp, count
}

// Diameter returns the longest shortest-path distance over the surviving
// subgraph, or -1 if it is disconnected or empty. For gossip, the diameter
// lower-bounds broadcast latency in rounds.
func Diameter(t Topology, alive AliveFunc, linkAlive LinkAliveFunc) int {
	n := t.Tiles()
	max := -1
	anyAlive := false
	for s := 0; s < n; s++ {
		src := packet.TileID(s)
		if !alive(src) {
			continue
		}
		anyAlive = true
		dist := BFSDistances(t, src, alive, linkAlive)
		for d := 0; d < n; d++ {
			if !alive(packet.TileID(d)) {
				continue
			}
			if dist[d] < 0 {
				return -1 // disconnected
			}
			if dist[d] > max {
				max = dist[d]
			}
		}
	}
	if !anyAlive {
		return -1
	}
	return max
}
