package topology_test

import (
	"fmt"
	"testing"

	"repro/internal/diversity"
	"repro/internal/packet"
	"repro/internal/topology"
)

// Property tests over every fabric builder in the repository. The round
// engine's phase functions assume, without checking, that a topology is a
// simple undirected graph: every neighbor list names valid tiles, links
// are symmetric, no tile is its own neighbor, and no link appears twice.
// A builder that breaks one of those (say, a torus constructor that
// duplicates a wraparound link) would silently skew forwarding odds
// rather than fail loudly — exactly the kind of bug a property sweep over
// the whole builder family catches and a per-builder example test misses.

// fabric is one named topology instance plus the degree bounds its
// construction promises.
type fabric struct {
	name     string
	topo     topology.Topology
	minDeg   int
	maxDeg   int
	expected int // total links, -1 if not pinned
}

// allFabrics enumerates every builder across its parameter range: grids
// and tori of assorted shapes, complete graphs, rings, and the three
// Chapter 5 diversity architectures (flat mesh, hierarchical NoC with a
// central crossbar router, bus-connected NoCs).
func allFabrics() []fabric {
	var fs []fabric
	for w := 1; w <= 6; w++ {
		for h := 1; h <= 6; h++ {
			minDeg, maxDeg := 2, 4 // corner, interior
			if w == 1 || h == 1 {
				minDeg, maxDeg = 1, 2 // line ends
			}
			if w == 1 && h == 1 {
				minDeg, maxDeg = 0, 0
			}
			fs = append(fs, fabric{
				name:     fmt.Sprintf("grid-%dx%d", w, h),
				topo:     topology.NewGrid(w, h),
				minDeg:   minDeg,
				maxDeg:   maxDeg,
				expected: w*(h-1) + h*(w-1),
			})
		}
	}
	for w := 3; w <= 6; w++ {
		for h := 3; h <= 6; h++ {
			fs = append(fs, fabric{
				name:     fmt.Sprintf("torus-%dx%d", w, h),
				topo:     topology.NewTorus(w, h),
				minDeg:   4, // every torus tile is interior
				maxDeg:   4,
				expected: 2 * w * h,
			})
		}
	}
	for n := 2; n <= 16; n++ {
		fs = append(fs, fabric{
			name:     fmt.Sprintf("complete-%d", n),
			topo:     topology.NewFullyConnected(n),
			minDeg:   n - 1,
			maxDeg:   n - 1,
			expected: n * (n - 1) / 2,
		})
	}
	for n := 3; n <= 12; n++ {
		fs = append(fs, fabric{
			name:     fmt.Sprintf("ring-%d", n),
			topo:     topology.NewRing(n),
			minDeg:   2,
			maxDeg:   2,
			expected: n,
		})
	}
	// Diversity architectures. The flat mesh is an 8x8 grid (corner
	// degree 2). The bridged variants are four 4x4 clusters plus a hub:
	// cluster corners have degree 2, the gateway tiles gain a fifth
	// link, and the hub itself has exactly 4 (one per gateway).
	for _, kind := range []diversity.Kind{
		diversity.FlatNoC, diversity.HierarchicalNoC, diversity.BusConnectedNoCs,
	} {
		arch := diversity.Build(kind)
		maxDeg := 4
		if kind != diversity.FlatNoC {
			maxDeg = 5 // gateway: 4 mesh links + the bridge
		}
		fs = append(fs, fabric{
			name:     kind.String(),
			topo:     arch.Topo,
			minDeg:   2,
			maxDeg:   maxDeg,
			expected: -1,
		})
	}
	return fs
}

// TestFabricGraphInvariants checks the simple-undirected-graph contract
// on every fabric: in-range neighbor IDs, no self-loops, no duplicate
// entries, and symmetry (u lists v iff v lists u).
func TestFabricGraphInvariants(t *testing.T) {
	for _, f := range allFabrics() {
		t.Run(f.name, func(t *testing.T) {
			n := f.topo.Tiles()
			if n <= 0 {
				t.Fatalf("Tiles() = %d", n)
			}
			for u := 0; u < n; u++ {
				uid := packet.TileID(u)
				nbrs := f.topo.Neighbors(uid)
				seen := make(map[packet.TileID]bool, len(nbrs))
				for _, v := range nbrs {
					if int(v) < 0 || int(v) >= n {
						t.Fatalf("tile %d lists out-of-range neighbor %d (n=%d)", u, v, n)
					}
					if v == uid {
						t.Fatalf("tile %d is its own neighbor", u)
					}
					if seen[v] {
						t.Fatalf("tile %d lists neighbor %d twice", u, v)
					}
					seen[v] = true
					// Symmetry: v must list u back.
					back := false
					for _, w := range f.topo.Neighbors(v) {
						if w == uid {
							back = true
							break
						}
					}
					if !back {
						t.Fatalf("asymmetric link: %d lists %d but not vice versa", u, v)
					}
				}
			}
		})
	}
}

// TestFabricDegreeBounds checks each builder's promised degree envelope
// and, where the link count has a closed form, the exact total.
func TestFabricDegreeBounds(t *testing.T) {
	for _, f := range allFabrics() {
		t.Run(f.name, func(t *testing.T) {
			n := f.topo.Tiles()
			degSum := 0
			for u := 0; u < n; u++ {
				d := len(f.topo.Neighbors(packet.TileID(u)))
				degSum += d
				if d < f.minDeg || d > f.maxDeg {
					t.Fatalf("tile %d degree %d outside [%d, %d]", u, d, f.minDeg, f.maxDeg)
				}
			}
			if degSum%2 != 0 {
				t.Fatalf("odd degree sum %d: some link is one-directional", degSum)
			}
			if f.expected >= 0 && degSum/2 != f.expected {
				t.Fatalf("links = %d, want %d", degSum/2, f.expected)
			}
		})
	}
}

// TestFabricConnected checks that every builder yields one connected
// component — the baseline every reachability experiment assumes before
// faults start partitioning things.
func TestFabricConnected(t *testing.T) {
	for _, f := range allFabrics() {
		t.Run(f.name, func(t *testing.T) {
			_, n := topology.ConnectedComponents(f.topo, topology.AllAlive, topology.AllLinksAlive)
			if n != 1 {
				t.Fatalf("components = %d, want 1", n)
			}
		})
	}
}

// TestDiversityClusterStructure pins the placement metadata the Chapter 5
// comparison depends on: clusters tile the fabric exactly, the bridge is
// not a member of any cluster, and in the bridged architectures each
// cluster reaches the bridge through exactly one gateway.
func TestDiversityClusterStructure(t *testing.T) {
	for _, kind := range []diversity.Kind{
		diversity.FlatNoC, diversity.HierarchicalNoC, diversity.BusConnectedNoCs,
	} {
		arch := diversity.Build(kind)
		t.Run(kind.String(), func(t *testing.T) {
			seen := make(map[packet.TileID]bool)
			for c, tiles := range arch.Clusters {
				if len(tiles) != 16 {
					t.Fatalf("cluster %d has %d tiles, want 16", c, len(tiles))
				}
				for _, tile := range tiles {
					if seen[tile] {
						t.Fatalf("tile %d appears in two clusters", tile)
					}
					if tile == arch.Bridge {
						t.Fatalf("bridge %d listed as a compute tile", tile)
					}
					seen[tile] = true
				}
			}
			want := arch.Topo.Tiles()
			if arch.Bridge != diversity.NoBridge {
				want--
			}
			if len(seen) != want {
				t.Fatalf("clusters cover %d tiles, fabric has %d compute tiles", len(seen), want)
			}
			if arch.Bridge == diversity.NoBridge {
				return
			}
			// The hub must link to exactly one gateway per cluster.
			hubNbrs := arch.Topo.Neighbors(arch.Bridge)
			if len(hubNbrs) != len(arch.Clusters) {
				t.Fatalf("bridge degree %d, want %d", len(hubNbrs), len(arch.Clusters))
			}
			perCluster := make(map[int]int)
			for _, g := range hubNbrs {
				perCluster[int(g)/16]++
			}
			for c := range arch.Clusters {
				if perCluster[c] != 1 {
					t.Fatalf("cluster %d has %d gateways, want 1", c, perCluster[c])
				}
			}
		})
	}
}
