// Package fault implements the NoC failure model of thesis Chapter 2.
//
// The model has five parameters:
//
//   - PTileCrash / PLinkCrash (or exact counts DeadTiles / DeadLinks):
//     permanent crash failures, injected before the simulation starts —
//     the thesis notes permanent failures are infrequent and treats them
//     as initial defects swept by Fig. 4-4/4-5;
//   - PUpset: probability that a packet transmission is scrambled by a
//     data upset (detected and discarded via CRC at the receiver);
//   - POverflow: probability that a received packet is lost to buffer
//     overflow (oldest messages dropped first, §4.2);
//   - SigmaSync: standard deviation of the round duration relative to T_R,
//     modeling mixed-clock (GALS) synchronization errors as extra delivery
//     delay.
//
// Upsets can be modeled two ways, selectable with LiteralUpsets: either
// the frame's bits are literally flipped per an error-vector model of
// Chapter 2 and the receiving tile's CRC does the discarding (the faithful
// path), or the transmission is analytically dropped with probability
// PUpset (the fast path — equivalent up to CRC's ~2^-16 undetected-error
// probability).
package fault

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Model is the Chapter 2 failure model configuration. The zero value is a
// fault-free network.
type Model struct {
	// PTileCrash is the independent probability that each tile is dead.
	// Ignored if DeadTiles > 0.
	PTileCrash float64
	// DeadTiles, if positive, kills exactly this many unprotected tiles,
	// chosen uniformly at random (the Fig. 4-4 sweep variable).
	DeadTiles int
	// PLinkCrash is the independent probability that each link is dead.
	// Ignored if DeadLinks > 0.
	PLinkCrash float64
	// DeadLinks, if positive, kills exactly this many links.
	DeadLinks int
	// PUpset is the per-transmission data upset probability.
	PUpset float64
	// POverflow is the per-reception buffer overflow drop probability.
	POverflow float64
	// SigmaSync is the relative (σ/T_R) standard deviation of round
	// duration; Fig. 4-10's x-axis expresses it in percent.
	SigmaSync float64
	// LiteralUpsets selects literal bit-flips + CRC detection instead of
	// analytic transmission drops.
	LiteralUpsets bool
	// ErrorModel selects the bit-flip pattern for literal upsets.
	ErrorModel packet.ErrorModel
	// Protect lists tiles that crash injection must never kill (e.g. the
	// tile hosting a non-replicated master IP).
	Protect []packet.TileID
}

// Validate reports a configuration error, if any.
func (m *Model) Validate() error {
	for name, p := range map[string]float64{
		"PTileCrash": m.PTileCrash, "PLinkCrash": m.PLinkCrash,
		"PUpset": m.PUpset, "POverflow": m.POverflow,
	} {
		if p < 0 || p > 1 {
			return fmt.Errorf("fault: %s = %v out of [0,1]", name, p)
		}
	}
	if m.SigmaSync < 0 {
		return fmt.Errorf("fault: SigmaSync = %v negative", m.SigmaSync)
	}
	if m.DeadTiles < 0 || m.DeadLinks < 0 {
		return fmt.Errorf("fault: negative crash count")
	}
	return nil
}

// Injector is the runtime fault state for one simulation: the sampled set
// of permanent crash failures plus the transient-fault parameters. Methods
// that consume randomness take an explicit stream so the caller controls
// determinism. Injector is safe for concurrent readers once built.
type Injector struct {
	model     Model
	tileAlive []bool
	linkDead  map[uint64]bool
	// upsetT/overflowT are PUpset/POverflow in 53-bit fixed point,
	// precomputed once so the per-transmission and per-reception draws are
	// single integer compares (decision-identical to the float path; see
	// rng.MakeThreshold).
	upsetT    rng.Threshold
	overflowT rng.Threshold
}

func linkKey(a, b packet.TileID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// NewInjector samples the permanent failures of model over topo using r.
// It returns an error for invalid configurations or if the requested crash
// counts exceed the available tiles/links.
func NewInjector(topo topology.Topology, model Model, r *rng.Stream) (*Injector, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{
		model:     model,
		tileAlive: make([]bool, topo.Tiles()),
		linkDead:  map[uint64]bool{},
		upsetT:    rng.MakeThreshold(model.PUpset),
		overflowT: rng.MakeThreshold(model.POverflow),
	}
	for i := range inj.tileAlive {
		inj.tileAlive[i] = true
	}
	protected := map[packet.TileID]bool{}
	for _, t := range model.Protect {
		protected[t] = true
	}

	// Tile crashes.
	if model.DeadTiles > 0 {
		var candidates []packet.TileID
		for i := 0; i < topo.Tiles(); i++ {
			if !protected[packet.TileID(i)] {
				candidates = append(candidates, packet.TileID(i))
			}
		}
		if model.DeadTiles > len(candidates) {
			return nil, fmt.Errorf("fault: DeadTiles=%d exceeds %d unprotected tiles",
				model.DeadTiles, len(candidates))
		}
		for _, idx := range r.Sample(len(candidates), model.DeadTiles) {
			inj.tileAlive[candidates[idx]] = false
		}
	} else if model.PTileCrash > 0 {
		for i := 0; i < topo.Tiles(); i++ {
			if !protected[packet.TileID(i)] && r.Bool(model.PTileCrash) {
				inj.tileAlive[i] = false
			}
		}
	}

	// Link crashes.
	links := allLinks(topo)
	if model.DeadLinks > 0 {
		if model.DeadLinks > len(links) {
			return nil, fmt.Errorf("fault: DeadLinks=%d exceeds %d links", model.DeadLinks, len(links))
		}
		for _, idx := range r.Sample(len(links), model.DeadLinks) {
			inj.linkDead[linkKey(links[idx][0], links[idx][1])] = true
		}
	} else if model.PLinkCrash > 0 {
		for _, l := range links {
			if r.Bool(model.PLinkCrash) {
				inj.linkDead[linkKey(l[0], l[1])] = true
			}
		}
	}
	return inj, nil
}

func allLinks(topo topology.Topology) [][2]packet.TileID {
	var links [][2]packet.TileID
	for a := 0; a < topo.Tiles(); a++ {
		for _, b := range topo.Neighbors(packet.TileID(a)) {
			if packet.TileID(a) < b {
				links = append(links, [2]packet.TileID{packet.TileID(a), b})
			}
		}
	}
	return links
}

// Model returns the injector's configuration.
func (inj *Injector) Model() Model { return inj.model }

// TileAlive reports whether tile t escaped crash injection.
func (inj *Injector) TileAlive(t packet.TileID) bool {
	if int(t) >= len(inj.tileAlive) {
		return false
	}
	return inj.tileAlive[t]
}

// LinkAlive reports whether the link a-b escaped crash injection. A link
// with a dead endpoint is also dead.
func (inj *Injector) LinkAlive(a, b packet.TileID) bool {
	return inj.TileAlive(a) && inj.TileAlive(b) && !inj.linkDead[linkKey(a, b)]
}

// DeadTileCount returns the number of crashed tiles.
func (inj *Injector) DeadTileCount() int {
	n := 0
	for _, alive := range inj.tileAlive {
		if !alive {
			n++
		}
	}
	return n
}

// UpsetHappens samples whether one transmission suffers a data upset.
// The draw is a precomputed fixed-point threshold compare; PUpset = 0
// consumes no randomness (as the float path never did).
func (inj *Injector) UpsetHappens(r *rng.Stream) bool {
	return r.BoolT(inj.upsetT)
}

// UpsetThreshold exposes the fixed-point PUpset threshold so per-round
// engines can cache it and draw with rng.Stream.BoolT inline —
// UpsetHappens(r) ≡ r.BoolT(UpsetThreshold()), draw for draw.
func (inj *Injector) UpsetThreshold() rng.Threshold { return inj.upsetT }

// OverflowThreshold is the POverflow counterpart of UpsetThreshold.
func (inj *Injector) OverflowThreshold() rng.Threshold { return inj.overflowT }

// OverflowHappens samples whether one reception is lost to buffer overflow.
// Same fixed-point draw discipline as UpsetHappens.
func (inj *Injector) OverflowHappens(r *rng.Stream) bool {
	return r.BoolT(inj.overflowT)
}

// SyncSlip samples the extra delivery delay, in whole rounds, caused by
// mixed-clock skew: ⌊|N(0, σ_rel)|⌋. With σ = 0 it is always 0; at σ = 100%
// of T_R the mean slip is ≈0.6 rounds — latency jitter grows but delivery
// still happens, matching the Fig. 4-10/4-11 observations.
func (inj *Injector) SyncSlip(r *rng.Stream) int {
	if inj.model.SigmaSync <= 0 {
		return 0
	}
	v := r.Normal(0, inj.model.SigmaSync)
	if v < 0 {
		v = -v
	}
	return int(v)
}

// CorruptFrame applies the configured error model to a wire frame in
// place. Only used on the literal-upsets path.
func (inj *Injector) CorruptFrame(frame []byte, r *rng.Stream) {
	packet.Corrupt(inj.model.ErrorModel, frame, inj.model.PUpset, r)
}

// AliveFuncs adapts the injector to the topology analysis predicates.
func (inj *Injector) AliveFuncs() (topology.AliveFunc, topology.LinkAliveFunc) {
	return inj.TileAlive, inj.LinkAlive
}
