package fault

import (
	"math"
	"testing"

	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

func TestZeroModelIsFaultFree(t *testing.T) {
	topo := topology.NewGrid(4, 4)
	inj, err := NewInjector(topo, Model{}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < topo.Tiles(); i++ {
		if !inj.TileAlive(packet.TileID(i)) {
			t.Fatalf("tile %d dead under zero model", i)
		}
	}
	for _, l := range topo.Links() {
		if !inj.LinkAlive(l[0], l[1]) {
			t.Fatalf("link %v dead under zero model", l)
		}
	}
	r := rng.New(2)
	for i := 0; i < 100; i++ {
		if inj.UpsetHappens(r) || inj.OverflowHappens(r) || inj.SyncSlip(r) != 0 {
			t.Fatal("transient fault under zero model")
		}
	}
}

func TestExactDeadTiles(t *testing.T) {
	topo := topology.NewGrid(5, 5)
	for _, n := range []int{0, 1, 3, 6} {
		inj, err := NewInjector(topo, Model{DeadTiles: n}, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if got := inj.DeadTileCount(); got != n {
			t.Fatalf("DeadTiles=%d produced %d dead tiles", n, got)
		}
	}
}

func TestProtectedTilesSurvive(t *testing.T) {
	topo := topology.NewGrid(4, 4)
	protect := []packet.TileID{0, 5, 15}
	for seed := uint64(0); seed < 50; seed++ {
		inj, err := NewInjector(topo, Model{DeadTiles: 10, Protect: protect}, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range protect {
			if !inj.TileAlive(p) {
				t.Fatalf("protected tile %d killed (seed %d)", p, seed)
			}
		}
		if inj.DeadTileCount() != 10 {
			t.Fatalf("dead count = %d", inj.DeadTileCount())
		}
	}
}

func TestDeadTilesExceedCapacity(t *testing.T) {
	topo := topology.NewGrid(2, 2)
	if _, err := NewInjector(topo, Model{DeadTiles: 3, Protect: []packet.TileID{0, 1}}, rng.New(1)); err == nil {
		t.Fatal("over-subscribed DeadTiles accepted")
	}
}

func TestDeadLinksExact(t *testing.T) {
	topo := topology.NewGrid(3, 3)
	inj, err := NewInjector(topo, Model{DeadLinks: 4}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	dead := 0
	for _, l := range topo.Links() {
		if !inj.LinkAlive(l[0], l[1]) {
			dead++
		}
	}
	if dead != 4 {
		t.Fatalf("dead links = %d, want 4", dead)
	}
}

func TestDeadLinksExceedCapacity(t *testing.T) {
	topo := topology.NewGrid(2, 1) // one link
	if _, err := NewInjector(topo, Model{DeadLinks: 2}, rng.New(1)); err == nil {
		t.Fatal("over-subscribed DeadLinks accepted")
	}
}

func TestLinkWithDeadEndpointIsDead(t *testing.T) {
	topo := topology.NewGrid(2, 1)
	inj, err := NewInjector(topo, Model{DeadTiles: 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if inj.LinkAlive(0, 1) {
		t.Fatal("link with a dead endpoint reported alive")
	}
}

func TestProbabilisticCrashRate(t *testing.T) {
	topo := topology.NewGrid(10, 10)
	dead := 0
	const runs = 200
	for seed := uint64(0); seed < runs; seed++ {
		inj, err := NewInjector(topo, Model{PTileCrash: 0.2}, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		dead += inj.DeadTileCount()
	}
	rate := float64(dead) / float64(runs*100)
	if math.Abs(rate-0.2) > 0.02 {
		t.Fatalf("empirical crash rate %v, want ~0.2", rate)
	}
}

func TestUpsetRate(t *testing.T) {
	topo := topology.NewGrid(2, 2)
	inj, err := NewInjector(topo, Model{PUpset: 0.3}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if inj.UpsetHappens(r) {
			hits++
		}
	}
	if rate := float64(hits) / n; math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("upset rate %v", rate)
	}
}

func TestSyncSlipDistribution(t *testing.T) {
	topo := topology.NewGrid(2, 2)
	inj, err := NewInjector(topo, Model{SigmaSync: 1.0}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	var sum, zero int
	const n = 100000
	for i := 0; i < n; i++ {
		s := inj.SyncSlip(r)
		if s < 0 {
			t.Fatal("negative slip")
		}
		if s == 0 {
			zero++
		}
		sum += s
	}
	// With σ=1, P(slip=0) = P(|N(0,1)| < 1) ≈ 0.683.
	if zr := float64(zero) / n; math.Abs(zr-0.683) > 0.01 {
		t.Fatalf("P(slip=0) = %v, want ~0.683", zr)
	}
	if mean := float64(sum) / n; mean < 0.2 || mean > 0.6 {
		t.Fatalf("mean slip = %v, want ~0.36", mean)
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	bad := []Model{
		{PUpset: -0.1},
		{PUpset: 1.1},
		{POverflow: 2},
		{PTileCrash: -1},
		{PLinkCrash: 7},
		{SigmaSync: -0.5},
		{DeadTiles: -1},
		{DeadLinks: -2},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted: %+v", i, m)
		}
	}
	if err := (&Model{PUpset: 0.5, SigmaSync: 2}).Validate(); err != nil {
		t.Errorf("good model rejected: %v", err)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	topo := topology.NewGrid(5, 5)
	m := Model{DeadTiles: 5, DeadLinks: 3}
	a, err := NewInjector(topo, m, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(topo, m, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < topo.Tiles(); i++ {
		if a.TileAlive(packet.TileID(i)) != b.TileAlive(packet.TileID(i)) {
			t.Fatal("same seed produced different crash sets")
		}
	}
	for _, l := range topo.Links() {
		if a.LinkAlive(l[0], l[1]) != b.LinkAlive(l[0], l[1]) {
			t.Fatal("same seed produced different link sets")
		}
	}
}

func TestTileAliveOutOfRange(t *testing.T) {
	topo := topology.NewGrid(2, 2)
	inj, _ := NewInjector(topo, Model{}, rng.New(1))
	if inj.TileAlive(100) {
		t.Fatal("out-of-range tile reported alive")
	}
}

func TestCorruptFrameChangesBytes(t *testing.T) {
	topo := topology.NewGrid(2, 2)
	inj, _ := NewInjector(topo, Model{PUpset: 1, LiteralUpsets: true}, rng.New(1))
	frame := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	orig := append([]byte(nil), frame...)
	inj.CorruptFrame(frame, rng.New(2))
	same := true
	for i := range frame {
		if frame[i] != orig[i] {
			same = false
		}
	}
	if same {
		t.Fatal("CorruptFrame left frame unchanged")
	}
}

func TestAliveFuncsAdapter(t *testing.T) {
	topo := topology.NewGrid(3, 1)
	inj, _ := NewInjector(topo, Model{DeadTiles: 1, Protect: []packet.TileID{0, 2}}, rng.New(1))
	alive, linkAlive := inj.AliveFuncs()
	if alive(1) {
		t.Fatal("tile 1 should be the dead one")
	}
	if linkAlive(0, 1) {
		t.Fatal("link to dead tile alive")
	}
	if !topology.Reachable(topo, 0, 0, alive, linkAlive) {
		t.Fatal("tile 0 unreachable from itself")
	}
}
