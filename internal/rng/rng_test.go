package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with distinct seeds collided %d/100 times", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 95 {
		t.Fatalf("zero-seeded stream produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitDeterministic(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(3)
	c2 := parent.Split(3)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("Split with same label diverged at %d", i)
		}
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split(1)
	_ = a.Split(2)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Split advanced the parent stream (step %d)", i)
		}
	}
}

func TestSplitLabelsIndependent(t *testing.T) {
	parent := New(11)
	c1 := parent.Split(0)
	c2 := parent.Split(1)
	same := 0
	for i := 0; i < 200; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling streams collided %d/200 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolEdgeCases(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if r.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !r.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := New(17)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		hits := 0
		const n = 100000
		for i := 0; i < n; i++ {
			if r.Bool(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bool(%v) frequency = %v", p, got)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(23)
	for _, n := range []int{1, 2, 3, 7, 100} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(29)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		got := float64(c) / draws
		if math.Abs(got-0.1) > 0.01 {
			t.Errorf("Intn(10) bucket %d frequency = %v", i, got)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(31)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormalScaling(t *testing.T) {
	r := New(37)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Normal(5, 2)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.05 {
		t.Errorf("Normal(5,2) mean = %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(41)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(43)
	s := r.Sample(20, 5)
	if len(s) != 5 {
		t.Fatalf("Sample returned %d values", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Sample invalid: %v", s)
		}
		seen[v] = true
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3, 5) did not panic")
		}
	}()
	New(1).Sample(3, 5)
}

func TestShuffleMatchesPermSemantics(t *testing.T) {
	r := New(47)
	vals := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, len(vals))
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("Shuffle duplicated value: %v", vals)
		}
		seen[v] = true
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(53)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(2)
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exponential(2) mean = %v, want ~0.5", mean)
	}
}

// Property: Split is a pure function of (parent state, label).
func TestQuickSplitPurity(t *testing.T) {
	f := func(seed, label uint64) bool {
		p := New(seed)
		a := p.Split(label)
		b := p.Split(label)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Intn stays within bounds for arbitrary positive n.
func TestQuickIntnBounds(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 32; i++ {
			if v := r.Intn(bound); v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}

func TestStateRoundTrip(t *testing.T) {
	src := New(99)
	for i := 0; i < 37; i++ { // advance off the seed state
		src.Uint64()
	}
	snap := src.State()
	restored := New(0)
	if err := restored.SetState(snap); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	for i := 0; i < 1000; i++ {
		if got, want := restored.Uint64(), src.Uint64(); got != want {
			t.Fatalf("restored stream diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestStateDoesNotAdvance(t *testing.T) {
	s := New(7)
	before := s.State()
	_ = s.State()
	if s.State() != before {
		t.Fatal("State() advanced the stream")
	}
	if s.Uint64() == 0 && s.State() == before {
		t.Fatal("stream did not advance after Uint64")
	}
}

func TestSetStateRejectsZero(t *testing.T) {
	s := New(1)
	before := s.State()
	if err := s.SetState([4]uint64{}); err == nil {
		t.Fatal("SetState accepted the all-zero state")
	}
	if s.State() != before {
		t.Fatal("rejected SetState mutated the stream")
	}
}
