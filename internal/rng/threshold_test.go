package rng

import (
	"math"
	"testing"
)

// The fixed-point hot path rests on two determinism subtleties nothing
// else guards: the p<=0 / p>=1 edges decide WITHOUT consuming a draw
// (so a degenerate probability in one consumer never shifts another
// consumer's stream), and MakeThreshold+BoolT reproduce Bool exactly —
// decisions and draws — for every representable p.

// TestBoolEdgesConsumeNoDraw pins that the never/always edges of Bool,
// BoolT and MakeThreshold leave the stream untouched, while an interior
// p consumes exactly one draw.
func TestBoolEdgesConsumeNoDraw(t *testing.T) {
	r := New(99)
	before := r.State()
	for _, p := range []float64{0, -0.25, math.Inf(-1)} {
		if r.Bool(p) || r.BoolT(MakeThreshold(p)) {
			t.Fatalf("Bool(%v) fired", p)
		}
	}
	for _, p := range []float64{1, 1.5, math.Inf(1)} {
		if !r.Bool(p) || !r.BoolT(MakeThreshold(p)) {
			t.Fatalf("Bool(%v) did not fire", p)
		}
	}
	if r.State() != before {
		t.Fatal("edge-probability draws advanced the stream")
	}
	// One interior draw advances the state exactly as one Uint64 does.
	ref := New(99)
	ref.Uint64()
	r.Bool(0.5)
	if r.State() != ref.State() {
		t.Fatal("Bool(0.5) did not consume exactly one draw")
	}
	r.BoolT(MakeThreshold(0.5))
	ref.Uint64()
	if r.State() != ref.State() {
		t.Fatal("BoolT(interior) did not consume exactly one draw")
	}
}

// TestMakeThresholdBoundaries pins the fixed-point conversion at the
// edges of the probability range and on exactly-representable points.
func TestMakeThresholdBoundaries(t *testing.T) {
	cases := []struct {
		p    float64
		want Threshold
	}{
		{0, 0},
		{-1, 0},
		{1, ThresholdAlways},
		{2, ThresholdAlways},
		{0.5, 1 << 52},
		{0.25, 1 << 51},
		// The smallest positive float must still be able to fire: ceil
		// rounds any p > 0 up to at least 1.
		{math.SmallestNonzeroFloat64, 1},
		// The largest p below 1 stays strictly below ThresholdAlways:
		// p·2^53 = 2^53 − 1 exactly.
		{1 - 0x1p-53, ThresholdAlways - 1},
	}
	for _, c := range cases {
		if got := MakeThreshold(c.p); got != c.want {
			t.Errorf("MakeThreshold(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	// NaN slips past both clamps (it compares false to everything) and
	// the float→uint conversion of Ceil(NaN) is platform-defined — but
	// whatever it converts to, Bool and BoolT must still agree in
	// decisions (both compare against the same converted value).
	r1, r2 := New(7), New(7)
	if r1.Bool(math.NaN()) != r2.BoolT(MakeThreshold(math.NaN())) {
		t.Fatal("Bool(NaN) and BoolT(MakeThreshold(NaN)) disagree")
	}
	// Ceil rounding: for p just above k/2^53 the threshold is k+1, so a
	// draw equal to k still fires — the exact semantics of u < p·2^53.
	p := math.Nextafter(0.5, 1) // 0.5 + 2^-53
	if got := MakeThreshold(p); got != (1<<52)+1 {
		t.Errorf("MakeThreshold(0.5+ulp) = %d, want %d", got, (1<<52)+1)
	}
}

// TestThresholdEquivalenceSweep holds BoolT(MakeThreshold(p)) to Bool(p)
// decision-for-decision and draw-for-draw across random probabilities —
// the provable-equivalence claim the fixed-point refactor rests on.
func TestThresholdEquivalenceSweep(t *testing.T) {
	g := New(0xABCDE)
	ps := []float64{0, 1, 0x1p-53, 1 - 0x1p-53, 0.1, 1.0 / 3}
	for i := 0; i < 200; i++ {
		ps = append(ps, g.Float64())
	}
	for _, p := range ps {
		a, b := New(42), New(42)
		th := MakeThreshold(p)
		for i := 0; i < 300; i++ {
			if a.Bool(p) != b.BoolT(th) {
				t.Fatalf("p=%v: decision %d diverged", p, i)
			}
		}
		if a.State() != b.State() {
			t.Fatalf("p=%v: draw consumption diverged", p)
		}
	}
}

// TestGeometricSkipDistribution checks the inverse-CDF geometric sampler
// against its law: mean (1−p)/p, P(skip = 0) = p, and the tail
// P(skip ≥ k) = (1−p)^k.
func TestGeometricSkipDistribution(t *testing.T) {
	for _, p := range []float64{0.02, 0.1, 0.4} {
		inv := 1 / math.Log1p(-p)
		r := New(0x5eed)
		const n = 200000
		var sum, zeros, tail float64
		k := int(3 / p) // a deep but well-populated tail point
		for i := 0; i < n; i++ {
			s := r.GeometricSkip(inv)
			if s < 0 {
				t.Fatalf("p=%v: negative skip %d", p, s)
			}
			sum += float64(s)
			if s == 0 {
				zeros++
			}
			if s >= k {
				tail++
			}
		}
		mean, wantMean := sum/n, (1-p)/p
		if math.Abs(mean-wantMean) > 0.03*wantMean+0.01 {
			t.Errorf("p=%v: mean skip = %v, want ~%v", p, mean, wantMean)
		}
		if got := zeros / n; math.Abs(got-p) > 0.01 {
			t.Errorf("p=%v: P(skip=0) = %v", p, got)
		}
		want := math.Pow(1-p, float64(k))
		if got := tail / n; math.Abs(got-want) > 0.005+0.1*want {
			t.Errorf("p=%v: P(skip>=%d) = %v, want ~%v", p, k, got, want)
		}
	}
}

// TestGeometricSkipConsumesOneDraw pins the draw discipline the batch
// kernel's shard invariance relies on.
func TestGeometricSkipConsumesOneDraw(t *testing.T) {
	r, ref := New(3), New(3)
	inv := 1 / math.Log1p(-0.3)
	for i := 0; i < 50; i++ {
		r.GeometricSkip(inv)
		ref.Uint64()
	}
	if r.State() != ref.State() {
		t.Fatal("GeometricSkip consumed != 1 draw")
	}
}
