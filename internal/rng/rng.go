// Package rng provides a deterministic, splittable pseudo-random number
// generator for reproducible NoC simulation.
//
// The generator is xoshiro256** seeded through SplitMix64, following the
// reference constructions by Blackman & Vigna. Every simulation entity
// (tile, link, fault injector) derives its own independent stream with
// Split, so adding or removing one consumer never perturbs the random
// sequence observed by the others — a property the experiment harness
// relies on when sweeping a single parameter.
package rng

import (
	"errors"
	"math"
)

// Stream is a deterministic pseudo-random stream. It is NOT safe for
// concurrent use; derive one Stream per goroutine with Split.
type Stream struct {
	s [4]uint64
}

// splitmix64 advances x and returns the next SplitMix64 output. It is used
// only for seeding, as recommended by the xoshiro authors.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Stream seeded from seed. Distinct seeds give streams that
// are, for simulation purposes, statistically independent.
func New(seed uint64) *Stream {
	var st Stream
	x := seed
	for i := range st.s {
		st.s[i] = splitmix64(&x)
	}
	// xoshiro256** must not start from the all-zero state.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return &st
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// State exports the stream's internal xoshiro256** state. Together with
// SetState it forms the checkpoint surface of the simulator: a Stream
// restored from a captured state produces exactly the sequence the
// original would have produced from that point on. The state is never
// all-zero (New, Split and SetState all exclude it).
func (r *Stream) State() [4]uint64 { return r.s }

// SetState overwrites the stream's state with one previously captured by
// State. The all-zero state is not a valid xoshiro256** state (the
// generator would emit zeros forever) and is rejected, which also makes
// SetState safe on unvalidated checkpoint data.
func (r *Stream) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return errors.New("rng: SetState with all-zero state")
	}
	r.s = s
	return nil
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Stream) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives a new independent Stream identified by label. Splitting is
// deterministic: the same parent state and label always yield the same
// child, and the parent's own sequence is not advanced.
func (r *Stream) Split(label uint64) *Stream {
	// Mix the parent state with the label through SplitMix64 so that
	// nearby labels (0, 1, 2, ...) still produce well-separated seeds.
	x := r.s[0] ^ rotl(r.s[2], 29) ^ (label * 0xd1342543de82ef95)
	var st Stream
	for i := range st.s {
		st.s[i] = splitmix64(&x)
	}
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 1
	}
	return &st
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Stream) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Threshold is a Bernoulli probability in 53-bit fixed point: the integer
// ceil(p·2^53), against which a 53-bit uniform draw is compared. Zero
// means "never" and ThresholdAlways means "always"; both are decided
// without consuming a draw, exactly like Bool's p <= 0 / p >= 1 early
// returns (a determinism property pinned by tests). Precompute thresholds
// once per configuration with MakeThreshold and hand them to BoolT in hot
// loops: the per-draw cost drops to one integer compare, with zero change
// in the decisions made.
type Threshold uint64

// ThresholdAlways is the Threshold for p >= 1. Any value > 2^53-1 would
// do (a 53-bit draw can never reach it); the distinguished constant also
// lets BoolT skip the draw, mirroring Bool(p >= 1).
const ThresholdAlways Threshold = 1 << 53

// MakeThreshold converts a probability to its fixed-point threshold.
// p outside [0, 1] is clamped, like Bool. The conversion is exact: for
// p in (0, 1), p·2^53 only shifts the float's exponent (no rounding), and
// Ceil of an exactly-represented value is exact, so
//
//	BoolT(MakeThreshold(p)) ≡ Bool(p)   for every float64 p and
//	                                    every stream state,
//
// including the draws consumed. The equivalence argument, in full: Bool
// tests float64(u)/2^53 < p with u = Uint64()>>11 < 2^53. Both sides are
// exact (u fits a float64 mantissa; /2^53 shifts the exponent), so the
// comparison equals the real-number comparison u < p·2^53, and for
// integer u that is u < ceil(p·2^53). BoolT tests exactly that.
func MakeThreshold(p float64) Threshold {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return ThresholdAlways
	}
	return Threshold(math.Ceil(p * (1 << 53)))
}

// BoolT returns true with the probability t encodes, consuming one draw —
// except for the never/always thresholds, which (like Bool at p <= 0 and
// p >= 1) are decided without touching the stream.
func (r *Stream) BoolT(t Threshold) bool {
	if t == 0 {
		return false
	}
	if t >= ThresholdAlways {
		return true
	}
	return r.Uint64()>>11 < uint64(t)
}

// Bool returns true with probability p. p outside [0, 1] is clamped.
// It is exactly BoolT(MakeThreshold(p)); callers that test the same p
// repeatedly should precompute the threshold.
func (r *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Uint64()>>11 < uint64(MakeThreshold(p))
}

// GeometricSkip returns the number of consecutive failures preceding the
// next success in an implicit sequence of independent Bernoulli(p)
// trials, consuming exactly one draw. invLn1mP must be 1/ln(1−p) for a p
// strictly inside (0, 1), precomputed once per configuration. It is the
// inverse-CDF geometric sampler: with U uniform on (0, 1],
//
//	⌊ln(U)/ln(1−p)⌋ ≥ k  ⟺  U ≤ (1−p)^k,
//
// so the returned count satisfies P(skip ≥ k) = (1−p)^k — exactly the
// law of a failure run, up to float rounding in the logarithm (≲1 ulp,
// against Bool's exact 2^-53 grid). Jumping straight to the next success
// replaces one draw per trial with one draw per success — the standard
// sparse Bernoulli subset-sampling trick the batch forwarding kernel
// uses when p·trials is small.
func (r *Stream) GeometricSkip(invLn1mP float64) int {
	u := 1 - r.Float64() // (0, 1]: ln stays finite
	return int(math.Log(u) * invLn1mP)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	for {
		x := r.Uint64()
		hi, lo := mul64(x, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box–Muller transform.
func (r *Stream) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Normal returns a normally distributed float64 with the given mean and
// standard deviation.
func (r *Stream) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n elements using the provided swap
// function, matching the contract of math/rand.Shuffle.
func (r *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *Stream) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample with k out of range")
	}
	p := r.Perm(n)
	return p[:k]
}

// Exponential returns an exponentially distributed float64 with the given
// rate parameter lambda (> 0).
func (r *Stream) Exponential(lambda float64) float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u) / lambda
	}
}
