package energy

import (
	"math"
	"strings"
	"testing"
)

func TestAccountingBasics(t *testing.T) {
	var a Accounting
	a.AddTransmission(128)
	a.AddTransmission(256)
	if a.Transmissions != 2 || a.Bits != 384 {
		t.Fatalf("accounting: %+v", a)
	}
	if got := a.AvgPacketBits(); got != 192 {
		t.Fatalf("AvgPacketBits = %v", got)
	}
}

func TestAccountingEmpty(t *testing.T) {
	var a Accounting
	if a.AvgPacketBits() != 0 || a.EnergyJ(NoCLink025) != 0 {
		t.Fatal("empty accounting non-zero")
	}
	if a.EnergyPerBitJ(NoCLink025, 0) != 0 {
		t.Fatal("EnergyPerBitJ with zero delivered bits should be 0")
	}
}

func TestMerge(t *testing.T) {
	a := Accounting{Transmissions: 2, Bits: 100}
	a.Merge(Accounting{Transmissions: 3, Bits: 50})
	if a.Transmissions != 5 || a.Bits != 150 {
		t.Fatalf("Merge: %+v", a)
	}
}

func TestEnergyEq3(t *testing.T) {
	// E = N * S * Ebit: 1000 packets of 512 bits on a 2.4e-10 J/bit link.
	var a Accounting
	for i := 0; i < 1000; i++ {
		a.AddTransmission(512)
	}
	want := 1000 * 512 * 2.4e-10
	if got := a.EnergyJ(NoCLink025); math.Abs(got-want) > 1e-18 {
		t.Fatalf("EnergyJ = %v, want %v", got, want)
	}
}

func TestBusEnergyRatio(t *testing.T) {
	// §4.1.4: the bus spends 21.6/2.4 = 9x more energy per bit.
	ratio := Bus025.JoulePerBit / NoCLink025.JoulePerBit
	if math.Abs(ratio-9) > 1e-9 {
		t.Fatalf("bus/link energy ratio = %v, want 9", ratio)
	}
}

func TestFrequencyRatio(t *testing.T) {
	// §4.1.4: links are 381/43 ≈ 8.86x faster than the bus.
	ratio := NoCLink025.LinkHz / Bus025.LinkHz
	if ratio < 8.5 || ratio > 9.2 {
		t.Fatalf("link/bus frequency ratio = %v", ratio)
	}
}

func TestRoundDurationEq2(t *testing.T) {
	// T_R = Npackets/round * S / f: 4 packets of 256 bits at 381 MHz.
	want := 4.0 * 256 / 381e6
	if got := RoundDuration(4, 256, NoCLink025); math.Abs(got-want) > 1e-15 {
		t.Fatalf("RoundDuration = %v, want %v", got, want)
	}
	if RoundDuration(4, 256, Technology{}) != 0 {
		t.Fatal("zero-frequency technology should yield 0")
	}
}

func TestLatencySeconds(t *testing.T) {
	if got := LatencySeconds(10, 2e-6); math.Abs(got-2e-5) > 1e-12 {
		t.Fatalf("LatencySeconds = %v", got)
	}
}

func TestEnergyDelayProduct(t *testing.T) {
	// The thesis quotes 7e-12 J·s/bit for the NoC vs 133e-12 for the bus.
	got := EnergyDelayProduct(2.4e-10, 0.0292)
	if got <= 0 {
		t.Fatalf("EDP = %v", got)
	}
	if EnergyDelayProduct(0, 5) != 0 {
		t.Fatal("EDP with zero energy should be 0")
	}
}

func TestEnergyPerBit(t *testing.T) {
	a := Accounting{Transmissions: 10, Bits: 10000}
	// 10000 bits transmitted to deliver 1000 useful bits.
	got := a.EnergyPerBitJ(NoCLink025, 1000)
	want := 10000 * 2.4e-10 / 1000
	if math.Abs(got-want) > 1e-18 {
		t.Fatalf("EnergyPerBitJ = %v, want %v", got, want)
	}
}

func TestString(t *testing.T) {
	a := Accounting{Transmissions: 3, Bits: 300}
	if s := a.String(); !strings.Contains(s, "transmissions=3") {
		t.Fatalf("String() = %q", s)
	}
}
