// Package energy implements the performance and energy metrics of thesis
// §3.3 and the 0.25 µm technology parameters of §4.1.4.
//
// The communication energy is Eq. 3,
//
//	E_communication = N_packets · S · E_bit,
//
// with N_packets the total number of packet transmissions in the network,
// S the average packet size in bits, and E_bit the per-bit link energy
// from the technology library. The round duration is Eq. 2,
//
//	T_R = N_packets/round · S / f,
//
// with f the link frequency. Computation energy is explicitly out of scope
// (§3.3.2): the thesis compares communication schemes.
package energy

import "fmt"

// Technology holds the electrical parameters of one interconnect
// implementation.
type Technology struct {
	Name string
	// LinkHz is the maximum working frequency of one link (or of the bus).
	LinkHz float64
	// JoulePerBit is the energy dissipated per transmitted bit.
	JoulePerBit float64
}

// The 0.25 µm parameters reported in §4.1.4 for the M320C50-based chip.
var (
	// NoCLink025 is a tile-to-tile link: 381 MHz, 2.4e-10 J/bit.
	NoCLink025 = Technology{Name: "noc-link-0.25um", LinkHz: 381e6, JoulePerBit: 2.4e-10}
	// Bus025 is the chip-length shared bus: 43 MHz, 21.6e-10 J/bit.
	Bus025 = Technology{Name: "bus-0.25um", LinkHz: 43e6, JoulePerBit: 21.6e-10}
)

// Accounting accumulates the traffic of one simulation run.
type Accounting struct {
	// Transmissions is N_packets: every copy of every message placed on
	// any link, including copies that are later upset or dropped — the
	// energy was spent regardless.
	Transmissions int
	// Bits is the total number of bits those transmissions carried.
	Bits int
}

// AddTransmission records one packet copy of sizeBits placed on a link.
func (a *Accounting) AddTransmission(sizeBits int) {
	a.Transmissions++
	a.Bits += sizeBits
}

// Merge adds the counters of b into a.
func (a *Accounting) Merge(b Accounting) {
	a.Transmissions += b.Transmissions
	a.Bits += b.Bits
}

// AvgPacketBits returns S, the average packet size in bits.
func (a Accounting) AvgPacketBits() float64 {
	if a.Transmissions == 0 {
		return 0
	}
	return float64(a.Bits) / float64(a.Transmissions)
}

// EnergyJ returns E_communication in joules under tech (Eq. 3). Using the
// exact bit count is equivalent to N_packets·S with S the empirical mean.
func (a Accounting) EnergyJ(tech Technology) float64 {
	return float64(a.Bits) * tech.JoulePerBit
}

// EnergyPerBitJ returns joules per *useful* payload bit delivered, the
// Fig. 4-4/4-6 y-axis. deliveredBits is the application-level payload
// successfully received.
func (a Accounting) EnergyPerBitJ(tech Technology, deliveredBits int) float64 {
	if deliveredBits <= 0 {
		return 0
	}
	return a.EnergyJ(tech) / float64(deliveredBits)
}

// RoundDuration returns T_R in seconds (Eq. 2) for a run averaging
// packetsPerRound transmissions per link round of avgPacketBits bits each.
func RoundDuration(packetsPerRound, avgPacketBits float64, tech Technology) float64 {
	if tech.LinkHz <= 0 {
		return 0
	}
	return packetsPerRound * avgPacketBits / tech.LinkHz
}

// LatencySeconds converts a latency in rounds to seconds given the round
// duration.
func LatencySeconds(rounds float64, roundDuration float64) float64 {
	return rounds * roundDuration
}

// EnergyDelayProduct returns the energy×delay figure of merit the thesis
// quotes in §4.1.4 (J·s per bit): energy per bit times transfer latency.
func EnergyDelayProduct(energyPerBitJ, latencySeconds float64) float64 {
	return energyPerBitJ * latencySeconds
}

// String implements fmt.Stringer.
func (a Accounting) String() string {
	return fmt.Sprintf("transmissions=%d bits=%d (S=%.1f b/pkt)",
		a.Transmissions, a.Bits, a.AvgPacketBits())
}
