package gossip

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestTheoreticalSpreadMonotone(t *testing.T) {
	curve := TheoreticalSpread(1000, 30)
	if curve[0] != 1 {
		t.Fatalf("I(0) = %v", curve[0])
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] <= curve[i-1] && curve[i-1] < 999.9999 {
			t.Fatalf("I not strictly increasing at %d: %v -> %v", i, curve[i-1], curve[i])
		}
		if curve[i] > 1000 {
			t.Fatalf("I(%d) = %v exceeds n", i, curve[i])
		}
	}
}

func TestTheoreticalSpreadSaturates(t *testing.T) {
	// Fig. 3-1: in a 1000-node network, fewer than 20 rounds reach
	// everyone.
	curve := TheoreticalSpread(1000, 20)
	if last := curve[20]; last < 999 {
		t.Fatalf("I(20) = %v, want > 999 (Fig. 3-1 shape)", last)
	}
}

func TestTheoreticalSpreadExponentialPhase(t *testing.T) {
	// Early rounds nearly double the informed set: I(t+1)/I(t) ≈ 2 while
	// I << n.
	curve := TheoreticalSpread(100000, 10)
	for i := 0; i < 8; i++ {
		ratio := curve[i+1] / curve[i]
		if ratio < 1.9 || ratio > 2.0 {
			t.Fatalf("growth ratio at round %d = %v, want ~2", i, ratio)
		}
	}
}

func TestExpectedRounds(t *testing.T) {
	// log2(1000) + ln(1000) ≈ 9.97 + 6.91 ≈ 16.87.
	got := ExpectedRounds(1000)
	if math.Abs(got-16.87) > 0.05 {
		t.Fatalf("ExpectedRounds(1000) = %v", got)
	}
	if ExpectedRounds(1) != 0 || ExpectedRounds(0) != 0 {
		t.Fatal("degenerate n should give 0")
	}
}

func TestSimulateSpreadCompletes(t *testing.T) {
	r := rng.New(1)
	curve := SimulateSpread(1000, 50, r)
	if curve[len(curve)-1] != 1000 {
		t.Fatalf("spread did not complete: %v", curve[len(curve)-1])
	}
	// Fig. 3-1: under 20 rounds for n=1000 is typical; allow slack but
	// catch gross breakage.
	if len(curve)-1 > 30 {
		t.Fatalf("spread took %d rounds", len(curve)-1)
	}
}

func TestSimulateSpreadMonotone(t *testing.T) {
	r := rng.New(2)
	curve := SimulateSpread(500, 100, r)
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("informed count decreased at round %d", i)
		}
		if curve[i] > 2*curve[i-1] {
			t.Fatalf("informed more than doubled at round %d: %d -> %d (push gossip can at most double)",
				i, curve[i-1], curve[i])
		}
	}
}

func TestSimulateMatchesTheory(t *testing.T) {
	// Average simulated curves should track the deterministic
	// approximation (Eq. 1) closely — "I(t) is very close to its
	// deterministic approximation ... with probability 1".
	const n, rounds, runs = 1000, 20, 100
	theory := TheoreticalSpread(n, rounds)
	sums := make([]float64, rounds+1)
	for seed := uint64(0); seed < runs; seed++ {
		curve := SimulateSpread(n, rounds, rng.New(seed))
		for i := range sums {
			if i < len(curve) {
				sums[i] += float64(curve[i])
			} else {
				sums[i] += float64(n)
			}
		}
	}
	for i := range sums {
		mean := sums[i] / runs
		// Within 10% of theory (or 10 nodes for the tiny early rounds).
		tol := math.Max(0.10*theory[i], 10)
		if math.Abs(mean-theory[i]) > tol {
			t.Fatalf("round %d: simulated mean %.1f vs theory %.1f", i, mean, theory[i])
		}
	}
}

func TestRoundsToInformNearPittel(t *testing.T) {
	const n = 1000
	var o stats.Online
	for seed := uint64(0); seed < 50; seed++ {
		rounds := RoundsToInform(n, 100, rng.New(seed))
		if rounds < 0 {
			t.Fatal("spread failed in 100 rounds")
		}
		o.Add(float64(rounds))
	}
	want := ExpectedRounds(n)
	if math.Abs(o.Mean()-want) > 3 {
		t.Fatalf("mean rounds %.2f vs Pittel estimate %.2f", o.Mean(), want)
	}
}

func TestRoundsToInformInsufficientBudget(t *testing.T) {
	if got := RoundsToInform(1000, 2, rng.New(1)); got != -1 {
		t.Fatalf("RoundsToInform with tiny budget = %d, want -1", got)
	}
}

func TestSimulateSpreadSingleNode(t *testing.T) {
	curve := SimulateSpread(1, 10, rng.New(1))
	if len(curve) != 1 || curve[0] != 1 {
		t.Fatalf("n=1 curve: %v", curve)
	}
}

func BenchmarkSimulateSpread1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SimulateSpread(1000, 50, rng.New(uint64(i)))
	}
}

func TestPushPullCompletes(t *testing.T) {
	curve := SimulateSpreadPushPull(1000, 50, rng.New(21))
	if curve[len(curve)-1] != 1000 {
		t.Fatalf("push-pull incomplete: %d", curve[len(curve)-1])
	}
}

func TestPushPullBeatsPushOnly(t *testing.T) {
	// Averaged over seeds, push-pull needs strictly fewer rounds than
	// push-only on the same population.
	const n, runs = 1000, 30
	var pushSum, ppSum float64
	for seed := uint64(0); seed < runs; seed++ {
		push := SimulateSpread(n, 100, rng.New(seed))
		pp := SimulateSpreadPushPull(n, 100, rng.New(seed+1000))
		pushSum += float64(len(push) - 1)
		ppSum += float64(len(pp) - 1)
	}
	if ppSum >= pushSum {
		t.Fatalf("push-pull mean %.1f rounds not below push-only %.1f",
			ppSum/runs, pushSum/runs)
	}
}

func TestPushPullMonotone(t *testing.T) {
	curve := SimulateSpreadPushPull(300, 100, rng.New(5))
	for i := 1; i < len(curve); i++ {
		if curve[i] < curve[i-1] {
			t.Fatalf("informed count decreased at round %d", i)
		}
	}
}

func TestFloodSpreadDistIsDistribution(t *testing.T) {
	for _, tc := range []struct {
		n, rounds int
		p         float64
	}{
		{16, 0, 0.3}, {16, 3, 0.3}, {12, 5, 0.05}, {8, 4, 0.9}, {20, 2, 0.5},
	} {
		dist := FloodSpreadDist(tc.n, tc.p, tc.rounds)
		if len(dist) != tc.n+1 {
			t.Fatalf("n=%d: len %d", tc.n, len(dist))
		}
		if dist[0] != 0 {
			t.Errorf("n=%d p=%v T=%d: P[I=0] = %v, the initiator always knows", tc.n, tc.p, tc.rounds, dist[0])
		}
		var sum float64
		for k, v := range dist {
			if v < 0 {
				t.Errorf("n=%d p=%v T=%d: P[I=%d] = %v negative", tc.n, tc.p, tc.rounds, k, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("n=%d p=%v T=%d: distribution sums to %v", tc.n, tc.p, tc.rounds, sum)
		}
	}
}

// The mean of the exact chain must track the mean-field recursion: the
// recursion is the chain's conditional expectation iterated with the
// fluctuations dropped, so for small fabrics they agree to a few
// percent (exactly at round 0 and in the p→1 limit).
func TestFloodSpreadDistMeanNearMeanField(t *testing.T) {
	const n, p, rounds = 16, 0.3, 5
	mf := TheoreticalFloodSpread(n, p, rounds)
	for T := 0; T <= rounds; T++ {
		dist := FloodSpreadDist(n, p, T)
		var mean float64
		for k, v := range dist {
			mean += float64(k) * v
		}
		if rel := math.Abs(mean-mf[T]) / mf[T]; rel > 0.08 {
			t.Errorf("T=%d: exact mean %v vs mean-field %v (rel %v)", T, mean, mf[T], rel)
		}
	}
}

func TestFloodSpreadDistDegenerateP(t *testing.T) {
	// p = 1: one round floods everything.
	dist := FloodSpreadDist(10, 1, 1)
	if dist[10] != 1 {
		t.Errorf("p=1 after one round: P[I=10] = %v, want 1", dist[10])
	}
	// p = 0: the rumor never moves.
	dist = FloodSpreadDist(10, 0, 7)
	if dist[1] != 1 {
		t.Errorf("p=0: P[I=1] = %v, want 1", dist[1])
	}
}

// One analytic point: after one round from a single initiator the
// increment is Binomial(n−1, p), so P[I(1) ≥ 1+j] is a binomial tail.
func TestFloodReachProbOneRoundBinomial(t *testing.T) {
	const n, p = 8, 0.3
	// P[I(1) >= 3] = P[Bin(7, 0.3) >= 2]
	var want float64
	for j := 2; j <= 7; j++ {
		want += binomCoeff(7, j) * math.Pow(p, float64(j)) * math.Pow(1-p, float64(7-j))
	}
	got := FloodReachProb(n, p, 3, 1)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("P[I(1) >= 3] = %v, want %v", got, want)
	}
	// Monotonicity and the trivial tails.
	if FloodReachProb(n, p, 0, 1) != 1 || FloodReachProb(n, p, 1, 0) != 1 {
		t.Error("reaching the initiator itself must be certain")
	}
	if FloodReachProb(n, p, n, 1) >= FloodReachProb(n, p, n, 4) {
		t.Error("reach probability must grow with the horizon")
	}
}

func binomCoeff(n, k int) float64 {
	c := 1.0
	for j := 0; j < k; j++ {
		c *= float64(n-j) / float64(j+1)
	}
	return c
}
