// Package gossip implements the randomized rumor-spreading theory of
// thesis §3.1 (after Pittel, "On spreading a rumor", and Demers et al.).
//
// In a fully connected network of n nodes, one initiator knows a rumor at
// round 0. Every informed node passes the rumor to one uniformly random
// other node per round. The number of informed nodes I(t) is tightly
// approximated by the deterministic recursion
//
//	I(t+1) = n − (n − I(t))·e^(−I(t)/n),     I(0) = 1,       (Eq. 1)
//
// and the number of rounds to inform everyone is
//
//	S_n = log2 n + ln n + O(1)  as n → ∞,
//
// so a broadcast completes in O(log n) rounds w.h.p. — the foundation for
// stopping the on-chip spread after O(ln n) rounds via the TTL.
package gossip

import (
	"math"

	"repro/internal/rng"
)

// TheoreticalSpread evaluates the Eq. 1 recursion, returning I(0..rounds)
// (length rounds+1). n must be >= 1.
func TheoreticalSpread(n, rounds int) []float64 {
	out := make([]float64, rounds+1)
	out[0] = 1
	nf := float64(n)
	for t := 0; t < rounds; t++ {
		i := out[t]
		out[t+1] = nf - (nf-i)*math.Exp(-i/nf)
	}
	return out
}

// TheoreticalFloodSpread evaluates the probabilistic-flooding analogue
// of Eq. 1 for the fabric protocol itself on a fully connected mesh:
// every informed tile forwards the rumor on each of its n−1 ports
// independently with probability p per round, so an uninformed tile
// stays uninformed with probability (1−p)^I(t) and
//
//	I(t+1) = n − (n − I(t))·(1 − p)^I(t),    I(0) = 1.
//
// (Eq. 1 is the one-confidant limit: choosing a single uniform target
// gives (1−1/(n−1))^I ≈ e^(−I/n) in place of (1−p)^I.) The recursion is
// mean-field — exact in expectation conditioned on I(t), with the
// fluctuation terms dropped — and is the reference curve the
// batch-kernel statistical cross-check holds the engine against: both
// forwarding kernels must track it within Monte Carlo noise. It assumes
// every informed tile still buffers the rumor (TTL longer than the
// horizon) and a fault-free fabric.
func TheoreticalFloodSpread(n int, p float64, rounds int) []float64 {
	out := make([]float64, rounds+1)
	out[0] = 1
	nf := float64(n)
	for t := 0; t < rounds; t++ {
		i := out[t]
		out[t+1] = nf - (nf-i)*math.Pow(1-p, i)
	}
	return out
}

// FloodSpreadDist returns the exact probability distribution of the
// informed-tile count after `rounds` rounds of probabilistic flooding on
// a fully connected fault-free n-tile fabric: out[k] = P[I(rounds) = k]
// (length n+1; out[0] is always 0 — the initiator knows the rumor).
//
// On a complete graph the informed count is a Markov chain: by symmetry,
// given I(t) = i every one of the n−i uninformed tiles independently
// receives at least one copy during round t+1 with probability
// q_i = 1 − (1−p)^i (each of the i informed tiles forwards on the port
// toward it independently with probability p), so
//
//	I(t+1) − i  ~  Binomial(n−i, 1 − (1−p)^i).
//
// This is the exact law whose conditional expectation, iterated with the
// fluctuations dropped, is the TheoreticalFloodSpread mean-field
// recursion. It matches the engine's dynamics on a fully connected
// topology exactly — fault free, dedup on, TTL longer than the horizon —
// because a tile informed during round t (phase 4) starts forwarding in
// round t+1 (phase 3), which is the statistical-model-checking ground
// truth internal/smc cross-validates SPRT verdicts against. O(rounds·n²).
func FloodSpreadDist(n int, p float64, rounds int) []float64 {
	dist := make([]float64, n+1)
	dist[1] = 1
	next := make([]float64, n+1)
	for t := 0; t < rounds; t++ {
		for k := range next {
			next[k] = 0
		}
		for i := 1; i <= n; i++ {
			if dist[i] == 0 {
				continue
			}
			q := 1 - math.Pow(1-p, float64(i))
			// Binomial(n−i, q) pmf, computed incrementally from j = 0.
			m := n - i
			pmf := math.Pow(1-q, float64(m))
			for j := 0; ; j++ {
				next[i+j] += dist[i] * pmf
				if j >= m {
					break
				}
				if q >= 1 {
					// Degenerate flood step: everyone is informed at once.
					pmf = 0
					if j+1 == m {
						pmf = 1
					}
					continue
				}
				pmf *= float64(m-j) / float64(j+1) * q / (1 - q)
			}
		}
		dist, next = next, dist
	}
	return dist
}

// FloodReachProb returns the exact probability that probabilistic
// flooding on a fully connected fault-free n-tile fabric informs at
// least k tiles within `rounds` rounds. Because awareness is monotone
// (an informed tile never forgets), "within" equals "at": the result is
// P[I(rounds) ≥ k] summed from FloodSpreadDist.
func FloodReachProb(n int, p float64, k, rounds int) float64 {
	dist := FloodSpreadDist(n, p, rounds)
	if k < 0 {
		k = 0
	}
	var sum float64
	for j := len(dist) - 1; j >= k; j-- {
		sum += dist[j]
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// ExpectedRounds returns the Pittel estimate S_n ≈ log2 n + ln n of the
// number of rounds until all n nodes are informed.
func ExpectedRounds(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log2(float64(n)) + math.Log(float64(n))
}

// SimulateSpread runs one push-gossip epidemic over a fully connected
// network of n nodes and returns the informed count after each round,
// starting with I(0) = 1, until everyone is informed or maxRounds passes.
func SimulateSpread(n, maxRounds int, r *rng.Stream) []int {
	informed := make([]bool, n)
	informed[0] = true
	count := 1
	curve := []int{1}
	for t := 0; t < maxRounds && count < n; t++ {
		// All informed nodes choose their targets simultaneously (the
		// round-synchronous model of §3.1): snapshot first.
		var snapshot []int
		for i, in := range informed {
			if in {
				snapshot = append(snapshot, i)
			}
		}
		for _, i := range snapshot {
			// Choose a confidant uniformly among the other n-1 nodes.
			j := r.Intn(n - 1)
			if j >= i {
				j++
			}
			if !informed[j] {
				informed[j] = true
				count++
			}
		}
		curve = append(curve, count)
	}
	return curve
}

// RoundsToInform runs SimulateSpread and returns the number of rounds
// needed to inform all n nodes, or -1 if maxRounds was insufficient.
func RoundsToInform(n, maxRounds int, r *rng.Stream) int {
	curve := SimulateSpread(n, maxRounds, r)
	if curve[len(curve)-1] < n {
		return -1
	}
	return len(curve) - 1
}

// SimulateSpreadPushPull runs the push–pull variant (Karp et al.,
// "Randomized rumor spreading" [26]): per round, every informed node
// pushes to a random partner AND every uninformed node pulls from a
// random partner. The pull phase collapses the tail of the epidemic —
// the last stragglers find the rumor themselves — cutting total rounds
// to ≈ log₃n + O(log log n), noticeably below push-only's
// log₂n + ln n. It is the natural upgrade path for an on-chip gossip
// fabric whose links are bidirectional anyway.
func SimulateSpreadPushPull(n, maxRounds int, r *rng.Stream) []int {
	informed := make([]bool, n)
	informed[0] = true
	count := 1
	curve := []int{1}
	for t := 0; t < maxRounds && count < n; t++ {
		next := make([]bool, n)
		copy(next, informed)
		for i := 0; i < n; i++ {
			// Choose a partner uniformly among the other nodes.
			j := r.Intn(n - 1)
			if j >= i {
				j++
			}
			if informed[i] && !informed[j] {
				next[j] = true // push
			}
			if !informed[i] && informed[j] {
				next[i] = true // pull
			}
		}
		count = 0
		for _, in := range next {
			if in {
				count++
			}
		}
		informed = next
		curve = append(curve, count)
	}
	return curve
}
