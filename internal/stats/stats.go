// Package stats provides the descriptive statistics used to aggregate
// repeated stochastic-simulation runs ("all of the results presented ...
// are averages obtained after several repeated simulations", §4.1).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates moments incrementally using Welford's algorithm, so
// long simulations never hold their samples in memory.
type Online struct {
	n          int
	mean, m2   float64
	min, max   float64
	hasSamples bool
}

// Add incorporates one sample.
func (o *Online) Add(x float64) {
	o.n++
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
	if !o.hasSamples || x < o.min {
		o.min = x
	}
	if !o.hasSamples || x > o.max {
		o.max = x
	}
	o.hasSamples = true
}

// N returns the number of samples.
func (o *Online) N() int { return o.n }

// Mean returns the sample mean, or 0 with no samples.
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the unbiased sample variance (n-1 denominator).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest sample, or 0 with no samples.
func (o *Online) Min() float64 { return o.min }

// Max returns the largest sample, or 0 with no samples.
func (o *Online) Max() float64 { return o.max }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval on the mean.
func (o *Online) CI95() float64 {
	if o.n < 2 {
		return 0
	}
	return 1.96 * o.StdDev() / math.Sqrt(float64(o.n))
}

// Summary is a value snapshot of an Online accumulator, convenient for
// experiment result tables.
type Summary struct {
	// N is the number of accumulated samples.
	N int
	// Mean is the sample mean.
	Mean float64
	// StdDev is the sample standard deviation (n−1 denominator).
	StdDev float64
	// Min and Max bound the accumulated samples.
	Min, Max float64
	// CI95Width is the half-width of the normal-approximation 95%
	// confidence interval on the mean.
	CI95Width float64
}

// Summarize snapshots o.
func Summarize(o *Online) Summary {
	return Summary{
		N: o.N(), Mean: o.Mean(), StdDev: o.StdDev(),
		Min: o.Min(), Max: o.Max(), CI95Width: o.CI95(),
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g ±%.3g",
		s.N, s.Mean, s.StdDev, s.Min, s.Max, s.CI95Width)
}

// OfSlice computes a Summary of xs directly.
func OfSlice(xs []float64) Summary {
	var o Online
	for _, x := range xs {
		o.Add(x)
	}
	return Summarize(&o)
}

// Median returns the median of xs (the average of the two middle elements
// for even lengths). It returns 0 for empty input.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th quantile of xs by linear interpolation between
// closest ranks. q is clamped to [0, 1]; empty input yields 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram counts samples into uniform-width bins over [lo, hi]. Samples
// outside the range are clamped into the edge bins, which is what the
// latency-distribution plots want.
type Histogram struct {
	// Lo and Hi bound the binned range; samples outside are clamped
	// into the edge bins.
	Lo, Hi float64
	// Bins holds the per-bin sample counts, uniform width over [Lo, Hi].
	Bins  []int
	total int
}

// NewHistogram returns a histogram with the given range and bin count.
// It panics for bins <= 0 or hi <= lo (programming errors).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, bins)}
}

// Add counts one sample.
func (h *Histogram) Add(x float64) {
	idx := int(float64(len(h.Bins)) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Bins) {
		idx = len(h.Bins) - 1
	}
	h.Bins[idx]++
	h.total++
}

// Total returns the number of samples counted.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of samples in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Bins[i]) / float64(h.total)
}

// NormalQuantile returns the p-th quantile of the standard normal
// distribution (the z-value with Φ(z) = p), via the error-function
// inverse: z = √2·erfinv(2p−1). It is the z_α ingredient of fixed-N
// sample-size planning (smc.FixedN). p outside (0, 1) yields ±Inf.
func NormalQuantile(p float64) float64 {
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// LinReg fits y = a + b·x by ordinary least squares and returns the
// intercept, slope and coefficient of determination R². It needs at
// least two distinct x values; otherwise it returns zeros.
func LinReg(xs, ys []float64) (a, b, r2 float64) {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0, 0, 0
	}
	var sx, sy float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, 0, 0
	}
	b = sxy / sxx
	a = my - b*mx
	if syy == 0 {
		return a, b, 1 // constant y: the fit is exact
	}
	r2 = sxy * sxy / (sxx * syy)
	return a, b, r2
}
