package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestOnlineBasics(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("N = %d", o.N())
	}
	if !almostEq(o.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", o.Mean())
	}
	// Population variance of this classic set is 4; sample variance is
	// 32/7.
	if !almostEq(o.Variance(), 32.0/7, 1e-12) {
		t.Fatalf("Variance = %v", o.Variance())
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", o.Min(), o.Max())
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.StdDev() != 0 || o.CI95() != 0 {
		t.Fatal("empty accumulator non-zero")
	}
}

func TestOnlineSingleSample(t *testing.T) {
	var o Online
	o.Add(3.5)
	if o.Mean() != 3.5 || o.Variance() != 0 || o.CI95() != 0 {
		t.Fatalf("single sample: mean=%v var=%v", o.Mean(), o.Variance())
	}
	if o.Min() != 3.5 || o.Max() != 3.5 {
		t.Fatal("single-sample min/max wrong")
	}
}

func TestOnlineNegativeValues(t *testing.T) {
	var o Online
	o.Add(-5)
	o.Add(5)
	if o.Mean() != 0 || o.Min() != -5 || o.Max() != 5 {
		t.Fatalf("negative handling: %+v", Summarize(&o))
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	var small, large Online
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 2))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 2))
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink: %v vs %v", large.CI95(), small.CI95())
	}
}

func TestSummaryString(t *testing.T) {
	var o Online
	o.Add(1)
	o.Add(2)
	s := Summarize(&o).String()
	if !strings.Contains(s, "n=2") {
		t.Fatalf("Summary.String() = %q", s)
	}
}

func TestOfSlice(t *testing.T) {
	s := OfSlice([]float64{1, 2, 3})
	if s.N != 3 || !almostEq(s.Mean, 2, 1e-12) {
		t.Fatalf("OfSlice: %+v", s)
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("Median(nil) != 0")
	}
	if Median([]float64{3}) != 3 {
		t.Error("Median single")
	}
	if got := Median([]float64{1, 3, 2}); got != 2 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("Median even = %v", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Median mutated its input")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Quantile(xs, 0); got != 0 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 10 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.9); !almostEq(got, 9, 1e-12) {
		t.Errorf("q0.9 = %v", got)
	}
	if got := Quantile(xs, -2); got != 0 {
		t.Errorf("q<0 = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0.5, 1, 3, 5, 7, 9, 9.9} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Bins[0] != 2 { // 0.5 and 1 land in [0,2)
		t.Fatalf("bin 0 = %d", h.Bins[0])
	}
	if h.Bins[4] != 2 { // 9 and 9.9
		t.Fatalf("bin 4 = %d", h.Bins[4])
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(-5)
	h.Add(42)
	if h.Bins[0] != 1 || h.Bins[1] != 1 {
		t.Fatalf("outliers not clamped: %v", h.Bins)
	}
}

func TestHistogramFraction(t *testing.T) {
	h := NewHistogram(0, 4, 2)
	if h.Fraction(0) != 0 {
		t.Error("empty histogram Fraction != 0")
	}
	h.Add(1)
	h.Add(1)
	h.Add(3)
	if !almostEq(h.Fraction(0), 2.0/3, 1e-12) {
		t.Errorf("Fraction(0) = %v", h.Fraction(0))
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram accepted")
		}
	}()
	NewHistogram(5, 5, 3)
}

// Property: Online matches a direct two-pass computation.
func TestQuickOnlineMatchesDirect(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var o Online
		sum := 0.0
		for _, x := range clean {
			o.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		var ss float64
		for _, x := range clean {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(len(clean)-1)
		scale := math.Max(1, math.Abs(mean))
		return almostEq(o.Mean(), mean, 1e-6*scale) &&
			almostEq(o.Variance(), variance, 1e-4*math.Max(1, variance))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(clean, qa) <= Quantile(clean, qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinRegExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 1 + 2x
	a, b, r2 := LinReg(xs, ys)
	if !almostEq(a, 1, 1e-12) || !almostEq(b, 2, 1e-12) || !almostEq(r2, 1, 1e-12) {
		t.Fatalf("a=%v b=%v r2=%v", a, b, r2)
	}
}

func TestLinRegNoisy(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := []float64{0.1, 0.9, 2.2, 2.8, 4.1, 4.9}
	_, b, r2 := LinReg(xs, ys)
	if b < 0.9 || b > 1.1 {
		t.Fatalf("slope = %v", b)
	}
	if r2 < 0.98 {
		t.Fatalf("r2 = %v", r2)
	}
}

func TestLinRegDegenerate(t *testing.T) {
	if _, _, r2 := LinReg([]float64{1}, []float64{2}); r2 != 0 {
		t.Fatal("single point fit")
	}
	if _, _, r2 := LinReg([]float64{2, 2, 2}, []float64{1, 2, 3}); r2 != 0 {
		t.Fatal("vertical data fit")
	}
	a, b, r2 := LinReg([]float64{1, 2, 3}, []float64{5, 5, 5})
	if a != 5 || b != 0 || r2 != 1 {
		t.Fatalf("constant y: a=%v b=%v r2=%v", a, b, r2)
	}
	if _, _, r2 := LinReg([]float64{1, 2}, []float64{1}); r2 != 0 {
		t.Fatal("length mismatch fit")
	}
}

func TestNormalQuantile(t *testing.T) {
	// Textbook z-values.
	for _, tc := range []struct{ p, z float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.99, 2.326348},
		{0.025, -1.959964},
	} {
		if got := NormalQuantile(tc.p); !almostEq(got, tc.z, 1e-5) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", tc.p, got, tc.z)
		}
	}
	// Symmetry: Φ⁻¹(p) = −Φ⁻¹(1−p).
	for _, p := range []float64{0.6, 0.9, 0.999} {
		if got, want := NormalQuantile(p), -NormalQuantile(1-p); !almostEq(got, want, 1e-12) {
			t.Errorf("NormalQuantile not symmetric at %v: %v vs %v", p, got, want)
		}
	}
	if !math.IsInf(NormalQuantile(1), 1) || !math.IsInf(NormalQuantile(0), -1) {
		t.Error("NormalQuantile endpoints must be ±Inf")
	}
}
