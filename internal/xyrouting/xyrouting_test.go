package xyrouting

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/topology"
)

func TestNextHopXThenY(t *testing.T) {
	g := topology.NewGrid(4, 4)
	// From (0,0) to (2,3): X first.
	cur := g.ID(0, 0)
	dst := g.ID(2, 3)
	var hops []packet.TileID
	for cur != dst {
		cur = NextHop(g, cur, dst)
		hops = append(hops, cur)
	}
	want := []packet.TileID{g.ID(1, 0), g.ID(2, 0), g.ID(2, 1), g.ID(2, 2), g.ID(2, 3)}
	if len(hops) != len(want) {
		t.Fatalf("path %v, want %v", hops, want)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("hop %d = %d, want %d", i, hops[i], want[i])
		}
	}
}

func TestNextHopSelf(t *testing.T) {
	g := topology.NewGrid(3, 3)
	if NextHop(g, 4, 4) != 4 {
		t.Fatal("self next-hop moved")
	}
}

func TestPathThroughLength(t *testing.T) {
	g := topology.NewGrid(5, 5)
	for src := 0; src < g.Tiles(); src++ {
		for dst := 0; dst < g.Tiles(); dst++ {
			path := PathThrough(g, packet.TileID(src), packet.TileID(dst))
			want := g.Manhattan(packet.TileID(src), packet.TileID(dst)) + 1
			if len(path) != want {
				t.Fatalf("path %d->%d has %d tiles, want %d", src, dst, len(path), want)
			}
		}
	}
}

type xySender struct {
	dst  packet.TileID
	sent bool
}

func (s *xySender) Init(*core.Ctx) {}
func (s *xySender) Round(ctx *core.Ctx) {
	if !s.sent {
		ctx.Send(s.dst, 1, []byte("xy"))
		s.sent = true
	}
}

type xySink struct {
	got      bool
	gotRound int
}

func (s *xySink) Init(*core.Ctx)  {}
func (s *xySink) Round(*core.Ctx) {}
func (s *xySink) Done() bool      { return s.got }
func (s *xySink) Receive(ctx *core.Ctx, _ *packet.Packet) {
	if !s.got {
		s.got = true
		s.gotRound = ctx.Round()
	}
}

func TestXYDeliversAtManhattanDistance(t *testing.T) {
	g := topology.NewGrid(4, 4)
	net, err := core.New(core.Config{Topo: g, P: 0, TTL: 20, MaxRounds: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Install(net); err != nil {
		t.Fatal(err)
	}
	sink := &xySink{}
	net.Attach(g.ID(0, 0), &xySender{dst: g.ID(3, 2)})
	net.Attach(g.ID(3, 2), sink)
	res := net.Run()
	if !res.Completed {
		t.Fatal("XY routing failed on a healthy grid")
	}
	if want := g.Manhattan(g.ID(0, 0), g.ID(3, 2)); sink.gotRound != want {
		t.Fatalf("XY delivery round %d, want %d", sink.gotRound, want)
	}
}

func TestXYMinimalTraffic(t *testing.T) {
	// XY transmits ~one copy per hop per round of lifetime — orders of
	// magnitude below gossip.
	g := topology.NewGrid(4, 4)
	net, err := core.New(core.Config{Topo: g, P: 0, TTL: 8, MaxRounds: 50, Seed: 1,
		StopSpreadOnDelivery: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := Install(net); err != nil {
		t.Fatal(err)
	}
	sink := &xySink{}
	net.Attach(g.ID(0, 0), &xySender{dst: g.ID(3, 3)})
	net.Attach(g.ID(3, 3), sink)
	if !net.Run().Completed {
		t.Fatal("incomplete")
	}
	// 6 hops; each intermediate buffer retransmits its copy each round
	// until global TTL/stop kills it; with stop-on-delivery the total
	// stays within a small multiple of the hop count.
	if tx := net.Counters().Energy.Transmissions; tx > 40 {
		t.Fatalf("XY transmitted %d copies for a 6-hop route", tx)
	}
}

func TestXYFailsAcrossDeadTileOnPath(t *testing.T) {
	// Kill the single tile at (1,0): the XY route (0,0)->(3,0) dies —
	// the thesis' static-routing fragility.
	g := topology.NewGrid(4, 4)
	protect := []packet.TileID{}
	for i := 0; i < g.Tiles(); i++ {
		if packet.TileID(i) != g.ID(1, 0) {
			protect = append(protect, packet.TileID(i))
		}
	}
	net, err := core.New(core.Config{Topo: g, P: 0, TTL: 20, MaxRounds: 60, Seed: 1,
		Fault: fault.Model{DeadTiles: 1, Protect: protect}})
	if err != nil {
		t.Fatal(err)
	}
	if !net.Injector().TileAlive(g.ID(1, 0)) {
		// Good: (1,0) is the dead one.
	} else {
		t.Fatal("wrong tile crashed")
	}
	if err := Install(net); err != nil {
		t.Fatal(err)
	}
	sink := &xySink{}
	net.Attach(g.ID(0, 0), &xySender{dst: g.ID(3, 0)})
	net.Attach(g.ID(3, 0), sink)
	if net.Run().Completed {
		t.Fatal("XY routed around a dead tile on its fixed path")
	}
}

func TestGossipSurvivesSameCrash(t *testing.T) {
	// The same scenario with gossip (no routers): delivered.
	g := topology.NewGrid(4, 4)
	protect := []packet.TileID{}
	for i := 0; i < g.Tiles(); i++ {
		if packet.TileID(i) != g.ID(1, 0) {
			protect = append(protect, packet.TileID(i))
		}
	}
	net, err := core.New(core.Config{Topo: g, P: 0.75, TTL: 20, MaxRounds: 60, Seed: 1,
		Fault: fault.Model{DeadTiles: 1, Protect: protect}})
	if err != nil {
		t.Fatal(err)
	}
	sink := &xySink{}
	net.Attach(g.ID(0, 0), &xySender{dst: g.ID(3, 0)})
	net.Attach(g.ID(3, 0), sink)
	if !net.Run().Completed {
		t.Fatal("gossip failed where it should route around the crash")
	}
}

func TestInstallRejectsNonGrid(t *testing.T) {
	net, err := core.New(core.Config{Topo: topology.NewRing(6), P: 0.5, TTL: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Install(net); err != ErrNotGrid {
		t.Fatalf("err = %v, want ErrNotGrid", err)
	}
}
