// Package xyrouting implements classic deterministic dimension-ordered
// (XY) routing on a grid NoC — the static-routing strawman of the thesis'
// introduction: "A static routing approach involving the transmission of
// messages along a fixed path from source to destination would fail if
// even a single tile or a link on the path is faulty."
//
// It is built on the same engine as the gossip protocol, using the
// per-tile deterministic router hook: every tile forwards a unicast
// message one hop along X first, then along Y. The comparison experiment
// (internal/experiments.RobustnessStudy) puts numbers behind the thesis'
// claim by sweeping crash failures against both protocols.
package xyrouting

import (
	"errors"

	"repro/internal/core"
	"repro/internal/packet"
	"repro/internal/topology"
)

// ErrNotGrid is returned when the network's fabric is not a *topology.Grid.
var ErrNotGrid = errors.New("xyrouting: XY routing requires a grid topology")

// NextHop returns the XY next hop from cur toward dst on g: move along X
// until the columns match, then along Y. cur == dst returns cur.
func NextHop(g *topology.Grid, cur, dst packet.TileID) packet.TileID {
	cx, cy := g.Coord(cur)
	dx, dy := g.Coord(dst)
	switch {
	case cx < dx:
		return g.ID(cx+1, cy)
	case cx > dx:
		return g.ID(cx-1, cy)
	case cy < dy:
		return g.ID(cx, cy+1)
	case cy > dy:
		return g.ID(cx, cy-1)
	default:
		return cur
	}
}

// Install configures every tile of net as a deterministic XY router. The
// network's gossip probability is bypassed entirely: each unicast message
// is forwarded exactly one copy per round toward its destination.
// Broadcasts degenerate to flooding (XY has no broadcast tree; the thesis
// never gives the bus/static baselines one either).
func Install(net *core.Network) error {
	g, ok := net.Topology().(*topology.Grid)
	if !ok {
		return ErrNotGrid
	}
	for i := 0; i < g.Tiles(); i++ {
		cur := packet.TileID(i)
		net.SetRouter(cur, func(p *packet.Packet) []packet.TileID {
			if p.Dst == packet.Broadcast {
				return g.Neighbors(cur)
			}
			next := NextHop(g, cur, p.Dst)
			if next == cur {
				return nil // we are the destination; nothing to forward
			}
			return []packet.TileID{next}
		})
	}
	return nil
}

// PathThrough returns the XY path from src to dst, inclusive. The
// robustness experiment uses it to classify which crash sets must break a
// static route.
func PathThrough(g *topology.Grid, src, dst packet.TileID) []packet.TileID {
	path := []packet.TileID{src}
	cur := src
	for cur != dst {
		cur = NextHop(g, cur, dst)
		path = append(path, cur)
	}
	return path
}
