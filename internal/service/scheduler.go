package service

import (
	"context"
	"sync"
)

// scheduler is the admission-controlled two-class job queue feeding the
// bounded worker fleet. Interactive jobs always dequeue before batch
// jobs, and when every worker is busy while an interactive job waits,
// one running batch job is asked to yield at its next round barrier
// (preemption); requeued preempted jobs go to the front of the batch
// queue so they resume before fresh batch work. Admission control is a
// hard bound on the number of waiting jobs: past it, submissions are
// rejected with ErrSaturated rather than queued without bound.
type scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond

	interactive []*Job
	batch       []*Job
	queueCap    int

	running    map[string]*Job // by job ID
	workers    int
	maxRunning int // high-water mark of concurrently running jobs

	draining bool
	closed   bool
}

// newScheduler builds a scheduler for a fleet of workers with at most
// queueCap waiting jobs.
func newScheduler(workers, queueCap int) *scheduler {
	s := &scheduler{
		queueCap: queueCap,
		workers:  workers,
		running:  map[string]*Job{},
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueue admits j, or reports the admission error (saturated,
// draining, closed). admitted=true bypasses the queue cap and the
// draining check: a preempted job being requeued was already admitted,
// and refusing it would lose an accepted job.
func (s *scheduler) enqueue(j *Job, admitted bool) *APIError {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return apiErrorf(ErrDraining, "server is shut down")
	}
	if !admitted {
		if s.draining {
			return apiErrorf(ErrDraining, "server is draining; not accepting jobs")
		}
		if len(s.interactive)+len(s.batch) >= s.queueCap {
			return apiErrorf(ErrSaturated, "job queue is full (%d waiting)", s.queueCap)
		}
	}
	if j.Req.Priority == PriorityInteractive {
		s.interactive = append(s.interactive, j)
		s.maybePreemptLocked()
	} else if admitted {
		// Requeued preempted job: resume before fresh batch work.
		s.batch = append([]*Job{j}, s.batch...)
	} else {
		s.batch = append(s.batch, j)
	}
	s.cond.Broadcast()
	return nil
}

// maybePreemptLocked asks one running batch job to yield when every
// worker is busy and interactive work is waiting. Callers hold mu.
func (s *scheduler) maybePreemptLocked() {
	if len(s.running) < s.workers || len(s.interactive) == 0 {
		return
	}
	for _, j := range s.running {
		if j.Req.Priority == PriorityBatch && j.requestPreempt() {
			return
		}
	}
}

// next blocks until a job is claimable and returns it with its resume
// flag, or returns nil when the scheduler is closed. Jobs canceled
// while waiting are claimed, reported via the canceled return, and
// finalized by the caller — never run.
func (s *scheduler) next() (j *Job, resume, canceled bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, false, false
		}
		if j := s.popLocked(); j != nil {
			resume, ok := j.claimRun()
			if !ok {
				// Canceled while waiting; hand it back for finalization.
				return j, false, true
			}
			s.running[j.ID] = j
			if len(s.running) > s.maxRunning {
				s.maxRunning = len(s.running)
			}
			return j, resume, false
		}
		s.cond.Wait()
	}
}

// popLocked removes and returns the next waiting job (interactive
// first), or nil. Callers hold mu.
func (s *scheduler) popLocked() *Job {
	if len(s.interactive) > 0 {
		j := s.interactive[0]
		s.interactive = s.interactive[1:]
		return j
	}
	if len(s.batch) > 0 {
		j := s.batch[0]
		s.batch = s.batch[1:]
		return j
	}
	return nil
}

// release returns j's worker slot to the pool after the job ran (to
// completion, preemption, cancellation, or failure).
func (s *scheduler) release(j *Job) {
	s.mu.Lock()
	delete(s.running, j.ID)
	s.cond.Broadcast()
	s.mu.Unlock()
}

// queued returns the number of waiting jobs.
func (s *scheduler) queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.interactive) + len(s.batch)
}

// snapshot returns (running, queued, maxRunning, draining).
func (s *scheduler) snapshot() (running, queued, maxRunning int, draining bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.running), len(s.interactive) + len(s.batch), s.maxRunning, s.draining
}

// drain stops admission; already-accepted jobs (queued, running,
// preempted) still run to completion.
func (s *scheduler) drain() {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// awaitIdle blocks until no job is waiting or running, or ctx expires.
func (s *scheduler) awaitIdle(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for (len(s.interactive)+len(s.batch) > 0 || len(s.running) > 0) && !s.closed {
			s.cond.Wait()
		}
		s.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Wake the waiter goroutine so it can observe closed later; it
		// holds no resources beyond the cond wait.
		s.cond.Broadcast()
		return ctx.Err()
	}
}

// close stops the workers: next returns nil once the queues drain of
// claimable work. Idempotent.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}
