package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// End-to-end integration tests: a real Server behind httptest, driven
// over HTTP exactly as a client would. The suite runs under -race in
// the servicegate CI job.

// newTestServer builds a Server with opts plus an httptest front end.
// Cleanup stops both.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// smallJob is a quick deterministic request: ~10 hops on a 6x6 mesh.
func smallJob(seed uint64) JobRequest {
	return JobRequest{
		Width: 6, Height: 6, Src: 0, Dst: 35,
		P: 0.6, TTL: 64, Seed: seed, MaxRounds: 80,
	}
}

// longJob never delivers (p=0 keeps the message parked at the source)
// and never quiesces before its TTL, so it burns the full round budget —
// a deterministic long-running job.
func longJob(seed uint64) JobRequest {
	return JobRequest{
		Width: 6, Height: 6, Src: 0, Dst: 35,
		P: 0, TTL: 250, Seed: seed, MaxRounds: 150,
	}
}

// postJob submits req and decodes the response envelope.
func postJob(t *testing.T, base string, req JobRequest) (code int, sub SubmitResponse, aerr *APIError) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return postRaw(t, base, body)
}

// postRaw submits a raw body to POST /v1/jobs.
func postRaw(t *testing.T, base string, body []byte) (code int, sub SubmitResponse, aerr *APIError) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		var env struct {
			Error *APIError `json:"error"`
		}
		if err := json.Unmarshal(raw, &env); err != nil || env.Error == nil {
			t.Fatalf("status %d with unstructured error body %q", resp.StatusCode, raw)
		}
		return resp.StatusCode, sub, env.Error
	}
	if err := json.Unmarshal(raw, &sub); err != nil {
		t.Fatalf("decode submit response %q: %v", raw, err)
	}
	return resp.StatusCode, sub, nil
}

// getStatus fetches GET /v1/jobs/{id}.
func getStatus(t *testing.T, base, id string) Status {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

// waitState polls a job until want (or any terminal state if the job
// overshoots), failing the test on timeout.
func waitState(t *testing.T, base, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := getStatus(t, base, id)
		if st.State == want {
			return st
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s: state %s (want %s)", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// getResult fetches the finished job's JSONL artifact.
func getResult(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: status %d body %q", resp.StatusCode, raw)
	}
	return raw
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	event string
	data  string
}

// readStream consumes GET /v1/jobs/{id}/stream to EOF and parses the
// events.
func readStream(t *testing.T, base, id string) []sseEvent {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read stream: %v", err)
	}
	var events []sseEvent
	for _, block := range strings.Split(string(raw), "\n\n") {
		if strings.TrimSpace(block) == "" {
			continue
		}
		var ev sseEvent
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				ev.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ev.data = strings.TrimPrefix(line, "data: ")
			}
		}
		events = append(events, ev)
	}
	return events
}

// TestSubmitStreamComplete is the happy path: submit, stream the rounds
// live, and verify the concatenated stream is byte-identical to the
// result artifact and consistent with the final status.
func TestSubmitStreamComplete(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	code, sub, aerr := postJob(t, ts.URL, smallJob(7))
	if aerr != nil {
		t.Fatalf("submit: %v", aerr)
	}
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}

	events := readStream(t, ts.URL, sub.ID)
	if len(events) < 2 {
		t.Fatalf("stream produced %d events, want rounds + done", len(events))
	}
	last := events[len(events)-1]
	if last.event != "done" {
		t.Fatalf("final event = %q, want done", last.event)
	}
	var final Status
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatalf("decode done event: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("done event state = %s", final.State)
	}
	if final.DeliveredRound < 1 {
		t.Fatalf("delivered_round = %d, want >= 1", final.DeliveredRound)
	}
	if final.Transmissions <= 0 || final.EnergyJ <= 0 {
		t.Fatalf("final counters empty: %+v", final)
	}

	var streamed bytes.Buffer
	for _, ev := range events[:len(events)-1] {
		if ev.event != "round" {
			t.Fatalf("unexpected event %q before done", ev.event)
		}
		streamed.WriteString(ev.data)
		streamed.WriteByte('\n')
	}
	result := getResult(t, ts.URL, sub.ID)
	if !bytes.Equal(streamed.Bytes(), result) {
		t.Fatalf("streamed series differs from result artifact:\nstream:\n%s\nresult:\n%s", streamed.Bytes(), result)
	}
	// rounds+1 lines: line 0 is round 0 (the pre-run injection).
	if got := bytes.Count(result, []byte("\n")); got != final.Rounds+1 {
		t.Fatalf("result has %d lines, status says %d rounds", got, final.Rounds)
	}
	if st := getStatus(t, ts.URL, sub.ID); st.State != StateDone || st.DeliveredRound != final.DeliveredRound {
		t.Fatalf("status after done = %+v, stream said %+v", st, final)
	}
}

// TestCancelMidRun cancels a running job at a round barrier and
// verifies it lands in canceled, not done.
func TestCancelMidRun(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	opts := Options{Workers: 1}
	opts.roundHook = func(id string, round int) {
		if round == 1 {
			select {
			case entered <- struct{}{}:
			default:
			}
			<-release
		}
	}
	_, ts := newTestServer(t, opts)
	t.Cleanup(func() { close(release) })

	_, sub, aerr := postJob(t, ts.URL, longJob(3))
	if aerr != nil {
		t.Fatalf("submit: %v", aerr)
	}
	<-entered // the worker is parked inside round 1

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	release <- struct{}{} // let the worker reach the barrier

	st := waitState(t, ts.URL, sub.ID, StateCanceled)
	if st.Rounds >= longJob(3).MaxRounds {
		t.Fatalf("canceled job ran its full %d-round budget", st.Rounds)
	}
	// The result of a canceled job is a conflict, not a partial series.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of canceled job: status %d, want 409", resp.StatusCode)
	}
}

// TestCancelQueuedJob cancels a job that never got a worker.
func TestCancelQueuedJob(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	opts := Options{Workers: 1, QueueCap: 4}
	opts.roundHook = func(id string, round int) {
		if round == 1 {
			select {
			case entered <- struct{}{}:
			default:
			}
			<-release
		}
	}
	_, ts := newTestServer(t, opts)
	t.Cleanup(func() { close(release) })

	_, running, _ := postJob(t, ts.URL, longJob(1))
	<-entered
	_, queued, aerr := postJob(t, ts.URL, longJob(2))
	if aerr != nil {
		t.Fatalf("second submit: %v", aerr)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	release <- struct{}{}

	if st := waitState(t, ts.URL, queued.ID, StateCanceled); st.Rounds != 0 {
		t.Fatalf("queued job executed %d rounds after cancel", st.Rounds)
	}
	waitState(t, ts.URL, running.ID, StateDone)
}

// TestPreemptResumeByteIdentical is the tentpole invariant: a job
// preempted at a round barrier, checkpointed, and resumed on a fresh
// engine produces a result byte-identical to the same job run
// uninterrupted — and the checkpoint directory is empty afterwards.
func TestPreemptResumeByteIdentical(t *testing.T) {
	req := JobRequest{
		Width: 6, Height: 6, Src: 0, Dst: 35,
		P: 0.45, TTL: 64, Seed: 42, MaxRounds: 100,
		Priority: PriorityBatch,
	}

	// Reference: the same request, never preempted.
	_, ref := newTestServer(t, Options{Workers: 1})
	_, refSub, aerr := postJob(t, ref.URL, req)
	if aerr != nil {
		t.Fatalf("reference submit: %v", aerr)
	}
	refDone := waitState(t, ref.URL, refSub.ID, StateDone)
	want := getResult(t, ref.URL, refSub.ID)

	// Preempted: park the worker inside round 3, land the preempt, then
	// let it reach the barrier and yield.
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	ckdir := t.TempDir()
	opts := Options{Workers: 1, CheckpointDir: ckdir}
	opts.roundHook = func(id string, round int) {
		if round == 3 {
			select {
			case entered <- struct{}{}:
			default:
			}
			<-release
		}
	}
	srv, ts := newTestServer(t, opts)
	t.Cleanup(func() { close(release) })
	_, sub, aerr := postJob(t, ts.URL, req)
	if aerr != nil {
		t.Fatalf("submit: %v", aerr)
	}
	<-entered

	resp, err := http.Post(ts.URL+"/v1/jobs/"+sub.ID+"/preempt", "", nil)
	if err != nil {
		t.Fatalf("POST preempt: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("preempt status = %d", resp.StatusCode)
	}
	release <- struct{}{}

	done := waitState(t, ts.URL, sub.ID, StateDone)
	if done.Preempts != 1 {
		t.Fatalf("preempts = %d, want 1", done.Preempts)
	}
	got := getResult(t, ts.URL, sub.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("preempted+resumed result differs from uninterrupted run:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if done.DeliveredRound != refDone.DeliveredRound || done.Transmissions != refDone.Transmissions || done.EnergyJ != refDone.EnergyJ {
		t.Fatalf("final status diverged: got %+v want %+v", done, refDone)
	}

	st := srv.Stats()
	if st.Simulations != 1 || st.Resumes != 1 || st.Preemptions != 1 {
		t.Fatalf("stats = %+v, want simulations=1 resumes=1 preemptions=1", st)
	}

	// Satellite: a resumed-then-completed job deletes its checkpoint —
	// the directory holds no .ckpt files afterwards.
	left, err := filepath.Glob(filepath.Join(ckdir, "*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("checkpoint files left after completion: %v", left)
	}
}

// TestInteractivePreemptsBatch verifies the scheduler policy: with the
// fleet saturated by a batch job, an interactive submission forces a
// yield and finishes first.
func TestInteractivePreemptsBatch(t *testing.T) {
	release := make(chan struct{})
	gate := make(chan struct{}, 1)
	var parkMu sync.Mutex
	var parked string
	opts := Options{Workers: 1}
	opts.roundHook = func(id string, round int) {
		if round != 2 {
			return
		}
		// Only the first job to reach round 2 — the batch job, submitted
		// while the fleet was empty — parks; the interactive job that
		// preempts it must run through freely.
		parkMu.Lock()
		if parked == "" {
			parked = id
		}
		mine := parked == id
		parkMu.Unlock()
		if mine {
			select {
			case gate <- struct{}{}:
			default:
			}
			<-release
		}
	}
	srv, ts := newTestServer(t, opts)
	t.Cleanup(func() { close(release) })

	batch := longJob(11)
	batch.Priority = PriorityBatch
	_, bsub, aerr := postJob(t, ts.URL, batch)
	if aerr != nil {
		t.Fatalf("batch submit: %v", aerr)
	}
	<-gate // batch job is parked mid-round-2 on the only worker

	inter := smallJob(12)
	_, isub, aerr := postJob(t, ts.URL, inter)
	if aerr != nil {
		t.Fatalf("interactive submit: %v", aerr)
	}
	release <- struct{}{} // batch reaches its barrier and yields

	waitState(t, ts.URL, isub.ID, StateDone)
	bdone := waitState(t, ts.URL, bsub.ID, StateDone)
	if bdone.Preempts < 1 {
		t.Fatalf("batch job preempts = %d, want >= 1", bdone.Preempts)
	}
	if st := srv.Stats(); st.Preemptions < 1 || st.Resumes < 1 {
		t.Fatalf("stats = %+v, want a preemption and a resume", st)
	}
}

// TestAdmissionControl fills the queue and verifies the structured 429.
func TestAdmissionControl(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	opts := Options{Workers: 1, QueueCap: 1}
	opts.roundHook = func(id string, round int) {
		if round == 1 {
			select {
			case entered <- struct{}{}:
			default:
			}
			<-release
		}
	}
	srv, ts := newTestServer(t, opts)
	t.Cleanup(func() { close(release) })

	_, _, aerr := postJob(t, ts.URL, longJob(21)) // occupies the worker
	if aerr != nil {
		t.Fatalf("first submit: %v", aerr)
	}
	<-entered
	_, _, aerr = postJob(t, ts.URL, longJob(22)) // fills the queue
	if aerr != nil {
		t.Fatalf("second submit: %v", aerr)
	}
	code, _, aerr := postJob(t, ts.URL, longJob(23)) // rejected
	if aerr == nil {
		t.Fatal("third submit admitted past the queue cap")
	}
	if code != http.StatusTooManyRequests || aerr.Code != ErrSaturated {
		t.Fatalf("rejection = %d %q, want 429 %q", code, aerr.Code, ErrSaturated)
	}
	if st := srv.Stats(); st.Rejected != 1 {
		t.Fatalf("stats.Rejected = %d, want 1", st.Rejected)
	}
}

// TestMalformedConfigsRejected pins the structured error surface:
// syntactically broken and semantically invalid submissions get typed,
// machine-readable rejections — never a 500, never an accepted job.
func TestMalformedConfigsRejected(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1, MaxJobRounds: 500, MaxTiles: 1024})
	valid := func(mut func(*JobRequest)) []byte {
		r := smallJob(1)
		mut(&r)
		b, _ := json.Marshal(r)
		return b
	}
	cases := []struct {
		name     string
		body     []byte
		wantCode int
		wantErr  string
	}{
		{"truncated json", []byte(`{"width": 4,`), http.StatusBadRequest, ErrBadJSON},
		{"wrong type", []byte(`{"width": "four"}`), http.StatusBadRequest, ErrBadJSON},
		{"unknown field", []byte(`{"width": 4, "height": 4, "warp": 9}`), http.StatusBadRequest, ErrBadJSON},
		{"zero size", valid(func(r *JobRequest) { r.Width = 0 }), http.StatusBadRequest, ErrInvalidConfig},
		{"too many tiles", valid(func(r *JobRequest) { r.Width, r.Height = 64, 64 }), http.StatusBadRequest, ErrInvalidConfig},
		{"src out of range", valid(func(r *JobRequest) { r.Src = 99 }), http.StatusBadRequest, ErrInvalidConfig},
		{"p out of range", valid(func(r *JobRequest) { r.P = 1.5 }), http.StatusBadRequest, ErrInvalidConfig},
		{"round budget over cap", valid(func(r *JobRequest) { r.MaxRounds = 100000 }), http.StatusBadRequest, ErrInvalidConfig},
		{"bogus priority", valid(func(r *JobRequest) { r.Priority = "urgent" }), http.StatusBadRequest, ErrInvalidConfig},
		{"fault upset over 1", valid(func(r *JobRequest) { r.Fault.Upset = 2 }), http.StatusBadRequest, ErrInvalidConfig},
		{"negative dead tiles", valid(func(r *JobRequest) { r.Fault.DeadTiles = -1 }), http.StatusBadRequest, ErrInvalidConfig},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, aerr := postRaw(t, ts.URL, tc.body)
			if aerr == nil {
				t.Fatalf("body %s was accepted", tc.body)
			}
			if code != tc.wantCode || aerr.Code != tc.wantErr {
				t.Fatalf("got %d %q, want %d %q (message: %s)", code, aerr.Code, tc.wantCode, tc.wantErr, aerr.Message)
			}
		})
	}
	if st := srv.Stats(); st.Accepted != 0 || st.Simulations != 0 {
		t.Fatalf("malformed submissions reached the fleet: %+v", st)
	}
}

// TestUnknownJob404s pins the not_found surface across all job routes.
func TestUnknownJob404s(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	for _, route := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/j-999999"},
		{http.MethodGet, "/v1/jobs/j-999999/stream"},
		{http.MethodGet, "/v1/jobs/j-999999/result"},
		{http.MethodPost, "/v1/jobs/j-999999/preempt"},
		{http.MethodDelete, "/v1/jobs/j-999999"},
	} {
		req, _ := http.NewRequest(route.method, ts.URL+route.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", route.method, route.path, err)
		}
		var env struct {
			Error *APIError `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || err != nil || env.Error == nil || env.Error.Code != ErrNotFound {
			t.Fatalf("%s %s: status %d, error %+v", route.method, route.path, resp.StatusCode, env.Error)
		}
	}
}

// TestStreamReplayAfterCompletion verifies a late subscriber to a
// finished job replays the full series immediately.
func TestStreamReplayAfterCompletion(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	_, sub, aerr := postJob(t, ts.URL, smallJob(9))
	if aerr != nil {
		t.Fatalf("submit: %v", aerr)
	}
	waitState(t, ts.URL, sub.ID, StateDone)
	result := getResult(t, ts.URL, sub.ID)

	events := readStream(t, ts.URL, sub.ID)
	var replay bytes.Buffer
	for _, ev := range events {
		if ev.event == "round" {
			replay.WriteString(ev.data)
			replay.WriteByte('\n')
		}
	}
	if !bytes.Equal(replay.Bytes(), result) {
		t.Fatal("late stream replay differs from the result artifact")
	}
}

// TestHealthzFlipsOnDrain pins the load-balancer contract.
func TestHealthzFlipsOnDrain(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain = %d", resp.StatusCode)
	}
	if err := srv.Drain(testCtx(t)); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after drain = %d, want 503", resp.StatusCode)
	}
	code, _, aerr := postJob(t, ts.URL, smallJob(5))
	if aerr == nil || code != http.StatusServiceUnavailable || aerr.Code != ErrDraining {
		t.Fatalf("submit after drain = %d %+v, want 503 %q", code, aerr, ErrDraining)
	}
}

// testCtx returns a context bounded well under the suite's timeout.
func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}
