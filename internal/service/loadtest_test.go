package service

import (
	"net/http"
	"testing"
	"time"
)

// TestLoadMixedTraffic is the race-gated load test: mixed
// interactive+batch traffic against a deliberately small fleet with a
// tiny admission queue, then a graceful drain. It asserts the three
// service invariants — bounded fleet, admission control engaged under
// saturation, zero accepted jobs lost — plus a sustained submission
// floor (the control plane must stay responsive while the fleet is
// saturated).
func TestLoadMixedTraffic(t *testing.T) {
	opts := Options{Workers: 2, QueueCap: 4, CacheDir: t.TempDir()}
	// Slow-motion fleet: ~50µs per round makes each ~100-round job take
	// a few milliseconds, so clients submitting in a tight loop outrun
	// the fleet and admission control must engage.
	opts.roundHook = func(string, int) { time.Sleep(50 * time.Microsecond) }
	srv, ts := newTestServer(t, opts)

	rep, err := RunLoad(srv, ts.URL, LoadConfig{
		Duration:      400 * time.Millisecond,
		Clients:       6,
		BatchFraction: 0.5,
		SeedSpread:    64,
		DrainTimeout:  30 * time.Second,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	t.Logf("\n%s", rep)

	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("invariant violations: %v", v)
	}
	if rep.Lost != 0 {
		t.Fatalf("drain lost %d accepted jobs", rep.Lost)
	}
	if rep.MaxRunning > rep.Workers {
		t.Fatalf("fleet peaked at %d concurrent jobs, bound is %d", rep.MaxRunning, rep.Workers)
	}
	if rep.Rejected == 0 {
		t.Fatal("admission control never engaged despite a saturated 2-worker fleet")
	}
	if rep.Accepted == 0 {
		t.Fatal("no job accepted")
	}
	if rep.SubmitPerSec < 10 {
		t.Fatalf("sustained submission rate %.1f/s below the 10/s floor", rep.SubmitPerSec)
	}
	// Accounting closes: every accepted job is in exactly one terminal
	// bucket. (Cache-born jobs also count as completed, so completed may
	// exceed accepted; it can never undershoot it.)
	if rep.Completed+rep.Canceled+rep.Failed < rep.Accepted {
		t.Fatalf("terminal states (%d+%d+%d) do not cover %d accepted jobs",
			rep.Completed, rep.Canceled, rep.Failed, rep.Accepted)
	}

	// The drain left the server refusing work.
	st := srv.Stats()
	if !st.Draining {
		t.Fatal("server not draining after RunLoad")
	}
	if st.Running != 0 || st.Queued != 0 {
		t.Fatalf("drain returned with %d running / %d queued", st.Running, st.Queued)
	}
	code, _, aerr := postJob(t, ts.URL, smallJob(999))
	if aerr == nil || code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit = %d %+v, want 503", code, aerr)
	}
}

// TestLoadDefaultsValidate pins that the zero-value LoadConfig expands
// to a runnable template (guards the CLI's bare `-loadtest`).
func TestLoadDefaultsValidate(t *testing.T) {
	var cfg LoadConfig
	cfg.fill()
	cfg.Request.normalize()
	if aerr := cfg.Request.validate(1<<16, 1<<20); aerr != nil {
		t.Fatalf("default load template invalid: %v", aerr)
	}
	if cfg.Clients <= 0 || cfg.Duration <= 0 || cfg.SeedSpread <= 0 {
		t.Fatalf("defaults not filled: %+v", cfg)
	}
}
