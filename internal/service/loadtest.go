package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The load-test harness drives a Server with mixed interactive+batch
// traffic over its real HTTP surface, then drains it and audits the
// invariants a multi-tenant daemon must hold under saturation:
//
//   - the worker fleet never exceeds its configured bound;
//   - admission control rejects (with 429), it does not queue without
//     bound or fall over;
//   - a graceful drain finishes every accepted job — zero loss.
//
// It is used by `nocsimd -loadtest` (which prints the report as JSON
// and exits non-zero on violations) and by the race-gated
// servicegate CI job via TestLoadMixedTraffic.

// LoadConfig parameterizes a load run. Zero fields take the defaults
// noted on each.
type LoadConfig struct {
	// Duration is the traffic phase length (default 2s).
	Duration time.Duration
	// Clients is the number of concurrent submitting clients (default 4).
	Clients int
	// BatchFraction is the fraction of submissions sent at batch
	// priority, in [0, 1] (default 0.25).
	BatchFraction float64
	// SeedSpread is the number of distinct seeds each client cycles
	// through; repeats exercise the result cache and singleflight
	// (default 16).
	SeedSpread int
	// Request is the job template; Seed and Priority are overwritten per
	// submission. The zero value defaults to an 8x8 mesh corner-to-corner
	// gossip at p=0.5 with a 100-round budget.
	Request JobRequest
	// DrainTimeout bounds the post-traffic graceful drain (default 60s).
	DrainTimeout time.Duration
}

// fill applies the documented defaults.
func (c *LoadConfig) fill() {
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.BatchFraction < 0 {
		c.BatchFraction = 0
	}
	if c.BatchFraction == 0 {
		c.BatchFraction = 0.25
	}
	if c.SeedSpread <= 0 {
		c.SeedSpread = 16
	}
	if c.Request.Width == 0 {
		c.Request = JobRequest{Width: 8, Height: 8, Src: 0, Dst: 63, P: 0.5, TTL: 64, MaxRounds: 100}
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 60 * time.Second
	}
}

// LoadReport is a load run's outcome: client-observed traffic counts,
// the server's own counters, and the audited invariants.
type LoadReport struct {
	// Elapsed is the traffic phase's wall-clock length.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Submitted counts POSTs issued by the load clients.
	Submitted int64 `json:"submitted"`
	// Accepted counts submissions admitted (fresh jobs).
	Accepted int64 `json:"accepted"`
	// Deduped counts submissions folded into in-flight identical jobs.
	Deduped int64 `json:"deduped"`
	// CacheHits counts submissions served from the result cache.
	CacheHits int64 `json:"cache_hits"`
	// Rejected counts 429 admission rejections.
	Rejected int64 `json:"rejected"`
	// TransportErrors counts submissions that failed below HTTP or with
	// an unexpected status.
	TransportErrors int64 `json:"transport_errors"`
	// SubmitPerSec is the sustained client-observed submission rate.
	SubmitPerSec float64 `json:"submit_per_sec"`
	// Completed counts jobs the server finished (server counter).
	Completed int64 `json:"completed"`
	// Canceled counts jobs canceled before finishing (server counter).
	Canceled int64 `json:"canceled"`
	// Failed counts jobs that errored server-side (server counter).
	Failed int64 `json:"failed"`
	// Simulations is the server's fresh-engine-run count.
	Simulations int64 `json:"simulations"`
	// Preemptions counts round-barrier yields (server counter).
	Preemptions int64 `json:"preemptions"`
	// Resumes counts checkpoint-resumed continuations (server counter).
	Resumes int64 `json:"resumes"`
	// Workers is the configured fleet bound.
	Workers int `json:"workers"`
	// MaxRunning is the observed concurrency high-water mark.
	MaxRunning int `json:"max_running"`
	// Lost counts accepted jobs that were not in a terminal state after
	// the graceful drain — any non-zero value is a correctness failure.
	Lost int64 `json:"lost"`
}

// Violations returns the invariant breaches the run observed, empty
// when the server behaved. `nocsimd -loadtest` exits non-zero when any
// are present.
func (r *LoadReport) Violations() []string {
	var v []string
	if r.Lost > 0 {
		v = append(v, fmt.Sprintf("%d accepted jobs lost across the drain", r.Lost))
	}
	if r.MaxRunning > r.Workers {
		v = append(v, fmt.Sprintf("fleet ran %d concurrent jobs, bound is %d", r.MaxRunning, r.Workers))
	}
	if r.Accepted == 0 {
		v = append(v, "no job was ever accepted")
	}
	if r.TransportErrors > 0 {
		v = append(v, fmt.Sprintf("%d transport errors", r.TransportErrors))
	}
	if r.Failed > 0 {
		v = append(v, fmt.Sprintf("%d jobs failed server-side", r.Failed))
	}
	return v
}

// String renders the report for the terminal.
func (r *LoadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "load: %d submitted in %v (%.0f/s): %d accepted, %d deduped, %d cache hits, %d rejected\n",
		r.Submitted, r.Elapsed.Round(time.Millisecond), r.SubmitPerSec, r.Accepted, r.Deduped, r.CacheHits, r.Rejected)
	fmt.Fprintf(&b, "fleet: %d/%d workers peak, %d simulations, %d preemptions, %d resumes\n",
		r.MaxRunning, r.Workers, r.Simulations, r.Preemptions, r.Resumes)
	fmt.Fprintf(&b, "drain: %d completed, %d canceled, %d failed, %d lost\n",
		r.Completed, r.Canceled, r.Failed, r.Lost)
	if v := r.Violations(); len(v) > 0 {
		fmt.Fprintf(&b, "VIOLATIONS: %s\n", strings.Join(v, "; "))
	} else {
		b.WriteString("invariants: fleet bounded, admission controlled, zero loss\n")
	}
	return b.String()
}

// RunLoad drives srv (reachable at base, e.g. an httptest URL or the
// daemon's own listen address) with cfg's traffic mix, drains it, and
// audits every accepted job for loss. The server is left drained —
// rejecting new work — when RunLoad returns.
func RunLoad(srv *Server, base string, cfg LoadConfig) (*LoadReport, error) {
	cfg.fill()
	if aerr := func() *APIError { r := cfg.Request; r.normalize(); return r.validate(1<<31-1, 1<<31-1) }(); aerr != nil {
		return nil, fmt.Errorf("service: load template: %w", aerr)
	}

	var (
		submitted, accepted, deduped, cacheHits atomic.Int64
		rejected, transportErrs                 atomic.Int64
		mu                                      sync.Mutex
		acceptedIDs                             []string
	)
	client := &http.Client{Timeout: 30 * time.Second}
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; time.Now().Before(deadline); i++ {
				req := cfg.Request
				req.Seed = uint64(c*cfg.SeedSpread + i%cfg.SeedSpread + 1)
				req.Priority = PriorityInteractive
				// Deterministic class mix: client i's submissions cycle
				// through the batch fraction without shared state.
				if float64(i%100)/100 < cfg.BatchFraction {
					req.Priority = PriorityBatch
				}
				body, _ := json.Marshal(req)
				submitted.Add(1)
				resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					transportErrs.Add(1)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusAccepted, http.StatusOK:
					var sub SubmitResponse
					if err := json.Unmarshal(raw, &sub); err != nil {
						transportErrs.Add(1)
						continue
					}
					switch {
					case sub.Deduped:
						deduped.Add(1)
					case sub.CacheHit:
						cacheHits.Add(1)
					default:
						accepted.Add(1)
						mu.Lock()
						acceptedIDs = append(acceptedIDs, sub.ID)
						mu.Unlock()
					}
				case http.StatusTooManyRequests:
					rejected.Add(1)
				default:
					transportErrs.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Graceful drain: every accepted job must reach a terminal state.
	ctx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return nil, fmt.Errorf("service: load drain: %w", err)
	}

	var lost int64
	for _, id := range acceptedIDs {
		resp, err := client.Get(base + "/v1/jobs/" + id)
		if err != nil {
			lost++
			continue
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil || !st.State.Terminal() {
			lost++
		}
	}

	stats := srv.Stats()
	rep := &LoadReport{
		Elapsed:         elapsed,
		Submitted:       submitted.Load(),
		Accepted:        accepted.Load(),
		Deduped:         deduped.Load(),
		CacheHits:       cacheHits.Load(),
		Rejected:        rejected.Load(),
		TransportErrors: transportErrs.Load(),
		SubmitPerSec:    float64(submitted.Load()) / elapsed.Seconds(),
		Completed:       stats.Completed,
		Canceled:        stats.Canceled,
		Failed:          stats.Failed,
		Simulations:     stats.Simulations,
		Preemptions:     stats.Preemptions,
		Resumes:         stats.Resumes,
		Workers:         stats.Workers,
		MaxRunning:      stats.MaxRunning,
		Lost:            lost,
	}
	return rep, nil
}
