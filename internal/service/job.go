package service

import (
	"bytes"
	"sync"
)

// State is a job's position in its lifecycle state machine:
//
//	queued ──▶ running ──▶ done
//	  ▲           │  │
//	  │(requeue)  │  └──▶ failed
//	preempted ◀───┤
//	  │           └──▶ canceled
//	  └──▶ running (resumed from checkpoint) / canceled
//
// queued and preempted jobs wait in the scheduler; running jobs own a
// worker; done, failed and canceled are terminal. A cache hit skips the
// machine entirely: the job is born done.
type State string

// The job states.
const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: executing on a worker.
	StateRunning State = "running"
	// StatePreempted: checkpointed at a round barrier and requeued; a
	// worker will resume it bit-identically from the checkpoint file.
	StatePreempted State = "preempted"
	// StateDone: finished; the result is available.
	StateDone State = "done"
	// StateFailed: the simulation errored server-side.
	StateFailed State = "failed"
	// StateCanceled: canceled by the client before finishing.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Status is a job's externally visible condition, returned by
// GET /v1/jobs/{id} and carried in the SSE "done" event.
type Status struct {
	// ID is the job's identifier.
	ID string `json:"id"`
	// State is the lifecycle state.
	State State `json:"state"`
	// Priority is the job's scheduling class.
	Priority string `json:"priority"`
	// Rounds is the number of simulation rounds executed (and streamed)
	// so far; final once State is done.
	Rounds int `json:"rounds"`
	// DeliveredRound is the round the destination first received the
	// message, or -1 if (not yet) delivered.
	DeliveredRound int `json:"delivered_round"`
	// Transmissions is the run's total link transmissions (final states
	// only; 0 while running).
	Transmissions int `json:"transmissions"`
	// EnergyJ is the run's total communication energy in joules on the
	// 0.25um link technology (final states only; 0 while running).
	EnergyJ float64 `json:"energy_j"`
	// CacheHit reports whether the result was served from the on-disk
	// result cache instead of simulated.
	CacheHit bool `json:"cache_hit"`
	// Preempts counts how many times the job was checkpointed at a
	// round barrier and requeued.
	Preempts int `json:"preempts"`
	// Error carries the failure detail when State is failed.
	Error *APIError `json:"error,omitempty"`
}

// Job is one accepted simulation. The immutable identity fields are set
// at submission; everything else is guarded by mu. Result bytes
// accumulate as newline-terminated JSONL round lines in lines, which
// only ever grows — an appended line is immutable, so subscribers may
// retain references without copies.
type Job struct {
	// ID is the job's external identifier ("j-<n>").
	ID string
	// Req is the normalized request.
	Req JobRequest

	num   int    // numeric id: the checkpoint file's replica index
	key   string // content-addressed result identity (JobRequest.Key)
	canon []byte // canonical request JSON (cache cross-serve guard)

	mu       sync.Mutex
	state    State
	lines    [][]byte // per-round JSONL, lines[r] = round r
	status   Status   // terminal summary, valid once state.Terminal()
	preempts int      // times preempted so far
	cacheHit bool
	cancelRq bool          // cancellation requested
	yieldRq  bool          // preemption requested
	updated  chan struct{} // closed and replaced on every state/line change
}

// newJob builds an accepted job in StateQueued.
func newJob(id string, num int, req JobRequest, key string, canon []byte) *Job {
	return &Job{
		ID: id, Req: req, num: num, key: key, canon: canon,
		state:   StateQueued,
		updated: make(chan struct{}),
	}
}

// broadcast wakes every subscriber. Callers hold mu.
func (j *Job) broadcast() {
	close(j.updated)
	j.updated = make(chan struct{})
}

// appendLine appends one immutable JSONL round line (copied) and wakes
// subscribers.
func (j *Job) appendLine(line []byte) {
	cp := append([]byte(nil), line...)
	j.mu.Lock()
	j.lines = append(j.lines, cp)
	j.broadcast()
	j.mu.Unlock()
}

// setLines replaces the job's result lines wholesale (cache-hit
// replay). payload is split on newlines; callers pass well-formed JSONL.
func (j *Job) setLines(payload []byte) {
	var lines [][]byte
	for len(payload) > 0 {
		i := bytes.IndexByte(payload, '\n')
		if i < 0 {
			lines = append(lines, append(append([]byte(nil), payload...), '\n'))
			break
		}
		lines = append(lines, append([]byte(nil), payload[:i+1]...))
		payload = payload[i+1:]
	}
	j.mu.Lock()
	j.lines = lines
	j.mu.Unlock()
}

// snapshot returns the lines appended since from, the current state,
// and the channel that will close on the next change — the SSE tail
// loop's read.
func (j *Job) snapshot(from int) (lines [][]byte, state State, updated chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.lines) {
		lines = j.lines[from:]
	}
	return lines, j.state, j.updated
}

// result concatenates the job's JSONL lines.
func (j *Job) result() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	var n int
	for _, l := range j.lines {
		n += len(l)
	}
	out := make([]byte, 0, n)
	for _, l := range j.lines {
		out = append(out, l...)
	}
	return out
}

// currentStatus renders the job's externally visible condition now.
func (j *Job) currentStatus() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return j.status
	}
	rounds := len(j.lines) - 1 // line 0 is round 0 (pre-run injections)
	if rounds < 0 {
		rounds = 0
	}
	return Status{
		ID: j.ID, State: j.state, Priority: j.Req.Priority,
		Rounds: rounds, DeliveredRound: -1,
		CacheHit: j.cacheHit, Preempts: j.preempts,
	}
}

// finish moves the job into terminal state st with summary status.
func (j *Job) finish(st Status) {
	j.mu.Lock()
	j.state = st.State
	j.status = st
	j.broadcast()
	j.mu.Unlock()
}

// requestCancel flags the job for cancellation. A queued or preempted
// job cannot cancel itself (no worker owns it), so the flag is applied
// either by the owning worker at the next round barrier or by the
// scheduler when it would next claim the job.
func (j *Job) requestCancel() {
	j.mu.Lock()
	j.cancelRq = true
	j.broadcast()
	j.mu.Unlock()
}

// requestPreempt flags a running job to yield at its next round
// barrier. Reports false if the job already has a pending preempt or
// is not running.
func (j *Job) requestPreempt() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning || j.yieldRq || j.cancelRq {
		return false
	}
	j.yieldRq = true
	return true
}

// ctl reads the pending control flags — the worker's round-barrier
// check.
func (j *Job) ctl() (cancel, yield bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelRq, j.yieldRq
}

// claimRun transitions queued/preempted → running for a worker that
// just dequeued the job. It reports resume=true when the job was
// preempted (a checkpoint file holds its state) and ok=false when the
// job is not claimable — canceled while waiting, in which case the
// scheduler finalizes the cancellation instead of running it.
func (j *Job) claimRun() (resume, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelRq || (j.state != StateQueued && j.state != StatePreempted) {
		return false, false
	}
	resume = j.state == StatePreempted
	j.state = StateRunning
	j.yieldRq = false
	j.broadcast()
	return resume, true
}

// markPreempted transitions running → preempted after the worker wrote
// the checkpoint file.
func (j *Job) markPreempted() {
	j.mu.Lock()
	j.state = StatePreempted
	j.yieldRq = false
	j.preempts++
	j.broadcast()
	j.mu.Unlock()
}
