package service

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/crc"
)

// The on-disk result cache. Every completed simulation is stored under
// its content-addressed key (JobRequest.Key: config digest + seed +
// round budget), so a repeated identical submission is served from disk
// instead of re-simulated — the amortization a verification workload
// issuing many identical queries against one fabric lives on.
//
// Entry file layout (little-endian, one file per key):
//
//	magic "NSR1" | u32 len(canon) | canon | u32 len(status) | status |
//	u32 len(payload) | payload | u32 CRC-32C(everything before)
//
// canon is the canonical request JSON: Get compares it byte for byte
// against the requester's, so a digest collision can only cause a miss
// (and a re-simulation), never a cross-served result. The trailing CRC
// covers the whole entry; a torn or bit-rotted file is detected,
// deleted, and treated as a miss — corrupt bytes are never served.

// cacheMagic introduces every result-cache entry file.
var cacheMagic = []byte("NSR1")

// Cache is the on-disk content-addressed result store. A nil *Cache is
// an always-miss cache: every method is nil-receiver safe, so the
// server runs identically (minus the caching) with caching disabled.
type Cache struct {
	dir string

	hits    atomic.Int64
	misses  atomic.Int64
	corrupt atomic.Int64
}

// OpenCache opens (creating if needed) the result cache rooted at dir.
// An empty dir returns a nil cache — caching disabled.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// path names key's entry file.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".res")
}

// Hits returns the number of Get calls served from disk.
func (c *Cache) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Misses returns the number of Get calls that found no servable entry
// (absent, corrupt, or canon-mismatched).
func (c *Cache) Misses() int64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

// Corrupt returns the number of entries rejected (and deleted) because
// their CRC or framing did not verify.
func (c *Cache) Corrupt() int64 {
	if c == nil {
		return 0
	}
	return c.corrupt.Load()
}

// Get looks key up. canon is the requester's canonical request JSON; an
// entry whose stored canon differs — a digest collision — is a miss,
// never a cross-serve. A corrupt entry (bad magic, framing, or CRC) is
// deleted and reported as a miss, so at worst the simulation runs
// again. On a hit it returns the result payload (JSONL) and the
// terminal status stored with it.
func (c *Cache) Get(key string, canon []byte) (payload []byte, status Status, ok bool) {
	if c == nil {
		return nil, Status{}, false
	}
	raw, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return nil, Status{}, false
	}
	entry, ok := decodeEntry(raw)
	if !ok {
		c.corrupt.Add(1)
		c.misses.Add(1)
		os.Remove(c.path(key)) // quarantine: never serve, re-simulate
		return nil, Status{}, false
	}
	if !bytes.Equal(entry.canon, canon) {
		// Same key, different request: a config-digest collision. Do not
		// cross-serve; the caller re-simulates (and overwrites the entry).
		c.misses.Add(1)
		return nil, Status{}, false
	}
	if err := json.Unmarshal(entry.status, &status); err != nil {
		c.corrupt.Add(1)
		c.misses.Add(1)
		os.Remove(c.path(key))
		return nil, Status{}, false
	}
	c.hits.Add(1)
	return entry.payload, status, true
}

// Put stores payload and status under key, atomically (temp file +
// rename): a crash mid-write leaves either the old entry or none, never
// a torn file — and torn files are caught by the CRC anyway.
func (c *Cache) Put(key string, canon, payload []byte, status Status) error {
	if c == nil {
		return nil
	}
	statusJSON, err := json.Marshal(status)
	if err != nil {
		return fmt.Errorf("service: cache status: %w", err)
	}
	raw := encodeEntry(canon, statusJSON, payload)
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("service: cache put: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_, werr := tmp.Write(raw)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("service: cache put %s: %w", key, werr)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		return fmt.Errorf("service: cache put: %w", err)
	}
	return nil
}

// cacheEntry is a decoded entry file.
type cacheEntry struct {
	canon, status, payload []byte
}

// encodeEntry renders one entry file.
func encodeEntry(canon, status, payload []byte) []byte {
	n := len(cacheMagic) + 3*4 + len(canon) + len(status) + len(payload) + 4
	out := make([]byte, 0, n)
	out = append(out, cacheMagic...)
	for _, sec := range [][]byte{canon, status, payload} {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(sec)))
		out = append(out, sec...)
	}
	return binary.LittleEndian.AppendUint32(out, crc.Checksum32(out))
}

// decodeEntry parses and verifies one entry file; ok=false means the
// file is corrupt (truncated, overlong, bad magic, or CRC mismatch).
func decodeEntry(raw []byte) (e cacheEntry, ok bool) {
	if len(raw) < len(cacheMagic)+4 || !bytes.Equal(raw[:len(cacheMagic)], cacheMagic) {
		return e, false
	}
	body, sum := raw[:len(raw)-4], binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc.Checksum32(body) != sum {
		return e, false
	}
	rest := body[len(cacheMagic):]
	secs := make([][]byte, 3)
	for i := range secs {
		if len(rest) < 4 {
			return e, false
		}
		n := int(binary.LittleEndian.Uint32(rest))
		rest = rest[4:]
		if n < 0 || n > len(rest) {
			return e, false
		}
		secs[i] = rest[:n]
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return e, false
	}
	return cacheEntry{canon: secs[0], status: secs[1], payload: secs[2]}, true
}
