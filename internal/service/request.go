package service

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/topology"
)

// APIError is the structured error body every non-2xx response
// carries, wrapped as {"error": {...}}. Code is a stable
// machine-readable discriminator (see the constants below); Message is
// human-readable detail.
type APIError struct {
	// Code is the stable error discriminator clients switch on.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// Error implements error.
func (e *APIError) Error() string { return e.Code + ": " + e.Message }

// The stable error codes. Clients switch on these, never on Message.
const (
	// ErrBadJSON: the request body was not syntactically valid JSON for
	// the expected shape (HTTP 400).
	ErrBadJSON = "bad_json"
	// ErrInvalidConfig: the job config parsed but names an invalid or
	// out-of-policy simulation (HTTP 400).
	ErrInvalidConfig = "invalid_config"
	// ErrSaturated: admission control rejected the job — the queue is
	// full (HTTP 429). Retry with backoff.
	ErrSaturated = "saturated"
	// ErrDraining: the server is draining toward shutdown and accepts
	// no new jobs (HTTP 503).
	ErrDraining = "draining"
	// ErrNotFound: no such job (HTTP 404).
	ErrNotFound = "not_found"
	// ErrConflict: the operation does not apply to the job's current
	// state, e.g. fetching the result of an unfinished job (HTTP 409).
	ErrConflict = "conflict"
	// ErrInternal: the simulation failed server-side (HTTP 500).
	ErrInternal = "internal"
)

// apiErrorf builds an APIError.
func apiErrorf(code, format string, args ...any) *APIError {
	return &APIError{Code: code, Message: fmt.Sprintf(format, args...)}
}

// httpStatus maps an error code onto its HTTP status.
func httpStatus(code string) int {
	switch code {
	case ErrBadJSON, ErrInvalidConfig:
		return http.StatusBadRequest
	case ErrSaturated:
		return http.StatusTooManyRequests
	case ErrDraining:
		return http.StatusServiceUnavailable
	case ErrNotFound:
		return http.StatusNotFound
	case ErrConflict:
		return http.StatusConflict
	default:
		return http.StatusInternalServerError
	}
}

// FaultSpec is the JSON shape of a job's fault model — the Chapter 2
// knobs a client may set.
type FaultSpec struct {
	// DeadTiles is the number of tiles to crash before round 0.
	DeadTiles int `json:"dead_tiles,omitempty"`
	// DeadLinks is the number of links to crash before round 0.
	DeadLinks int `json:"dead_links,omitempty"`
	// Upset is the per-transmission data-upset probability in [0, 1].
	Upset float64 `json:"upset,omitempty"`
	// Overflow is the per-reception buffer-overflow probability in [0, 1].
	Overflow float64 `json:"overflow,omitempty"`
	// Sigma is the synchronization error σ/T_R, >= 0.
	Sigma float64 `json:"sigma,omitempty"`
}

// The job priorities. Interactive jobs preempt batch jobs: when every
// worker is busy and an interactive job waits, one running batch job is
// asked to yield at its next round barrier.
const (
	// PriorityInteractive is the default: small, latency-sensitive jobs.
	PriorityInteractive = "interactive"
	// PriorityBatch marks long jobs that may be preempted at round
	// barriers to make room for interactive traffic.
	PriorityBatch = "batch"
)

// JobRequest is the JSON body of POST /v1/jobs: one src→dst gossip
// simulation on a W×H mesh, the same experiment cmd/nocsim runs once
// from the command line. Zero-valued optional fields take the
// documented defaults during normalization.
type JobRequest struct {
	// Width is the mesh width in tiles (required, >= 1).
	Width int `json:"width"`
	// Height is the mesh height in tiles (required, >= 1).
	Height int `json:"height"`
	// Src is the source tile (0-based, row-major).
	Src int `json:"src"`
	// Dst is the destination tile (0-based, row-major).
	Dst int `json:"dst"`
	// P is the per-port forwarding probability in [0, 1].
	P float64 `json:"p"`
	// TTL is the message time-to-live in rounds (default core.DefaultTTL).
	TTL int `json:"ttl,omitempty"`
	// Seed makes the run reproducible (part of the cache key).
	Seed uint64 `json:"seed"`
	// MaxRounds is the per-job round budget (default 200, capped by the
	// server's Options.MaxJobRounds).
	MaxRounds int `json:"max_rounds,omitempty"`
	// Payload is the message payload size in bytes (default 16).
	Payload int `json:"payload,omitempty"`
	// Priority is "interactive" (default) or "batch".
	Priority string `json:"priority,omitempty"`
	// Fault is the fault model (zero value = fault free).
	Fault FaultSpec `json:"fault,omitempty"`
}

// normalize fills the documented defaults in place.
func (r *JobRequest) normalize() {
	if r.TTL <= 0 {
		r.TTL = core.DefaultTTL
	}
	if r.MaxRounds <= 0 {
		r.MaxRounds = 200
	}
	if r.Payload <= 0 {
		r.Payload = 16
	}
	if r.Priority == "" {
		r.Priority = PriorityInteractive
	}
}

// validate checks the normalized request against the engine's rules and
// the server's admission policy (maxTiles fabric bound, maxRounds
// per-job round-budget cap). It returns nil or an invalid_config error.
func (r *JobRequest) validate(maxTiles, maxRounds int) *APIError {
	if r.Width < 1 || r.Height < 1 {
		return apiErrorf(ErrInvalidConfig, "width/height must be >= 1, got %dx%d", r.Width, r.Height)
	}
	tiles := r.Width * r.Height
	if tiles > maxTiles {
		return apiErrorf(ErrInvalidConfig, "%dx%d = %d tiles exceeds the server's %d-tile bound", r.Width, r.Height, tiles, maxTiles)
	}
	if r.Src < 0 || r.Src >= tiles || r.Dst < 0 || r.Dst >= tiles {
		return apiErrorf(ErrInvalidConfig, "src/dst out of range for a %dx%d grid", r.Width, r.Height)
	}
	if r.P < 0 || r.P > 1 {
		return apiErrorf(ErrInvalidConfig, "p = %v out of [0,1]", r.P)
	}
	if r.TTL > 255 {
		return apiErrorf(ErrInvalidConfig, "ttl = %d exceeds 255", r.TTL)
	}
	if r.MaxRounds > maxRounds {
		return apiErrorf(ErrInvalidConfig, "max_rounds = %d exceeds the server's per-job budget %d", r.MaxRounds, maxRounds)
	}
	if r.Payload > packet.MaxPayload {
		return apiErrorf(ErrInvalidConfig, "payload = %d exceeds %d bytes", r.Payload, packet.MaxPayload)
	}
	if r.Priority != PriorityInteractive && r.Priority != PriorityBatch {
		return apiErrorf(ErrInvalidConfig, "priority must be %q or %q", PriorityInteractive, PriorityBatch)
	}
	f := r.Fault
	if f.Upset < 0 || f.Upset > 1 || f.Overflow < 0 || f.Overflow > 1 || f.Sigma < 0 {
		return apiErrorf(ErrInvalidConfig, "fault probabilities out of range")
	}
	if f.DeadTiles < 0 || f.DeadLinks < 0 {
		return apiErrorf(ErrInvalidConfig, "negative fault counts")
	}
	cfg, _ := r.coreConfig()
	if err := cfg.Validate(); err != nil {
		return apiErrorf(ErrInvalidConfig, "%v", err)
	}
	return nil
}

// coreConfig builds the engine configuration the request names. Hooks
// are left nil — each run (and each resume) installs fresh ones.
func (r *JobRequest) coreConfig() (core.Config, *topology.Grid) {
	grid := topology.NewGrid(r.Width, r.Height)
	return core.Config{
		Topo: grid, P: r.P, TTL: uint8(r.TTL), MaxRounds: r.MaxRounds, Seed: r.Seed,
		Fault: fault.Model{
			DeadTiles: r.Fault.DeadTiles, DeadLinks: r.Fault.DeadLinks,
			PUpset: r.Fault.Upset, POverflow: r.Fault.Overflow, SigmaSync: r.Fault.Sigma,
			Protect: []packet.TileID{packet.TileID(r.Src), packet.TileID(r.Dst)},
		},
	}, grid
}

// Key derives the request's content-addressed result identity:
// core.ConfigDigest over the full engine configuration (topology
// wiring, protocol knobs, fault model — seed and round budget
// included), restated with the seed and round budget in the clear so a
// cache directory is inspectable. Two requests with equal keys name the
// same simulation; the canonical request JSON is stored alongside each
// cache entry to rule out serving across a digest collision (see
// Cache.Get).
func (r *JobRequest) Key() string {
	cfg, _ := r.coreConfig()
	return fmt.Sprintf("%08x-%016x-r%d", core.ConfigDigest(&cfg), r.Seed, r.MaxRounds)
}

// canonical renders the normalized request as its canonical JSON — the
// byte identity used by the cache's anti-cross-serve guard.
// encoding/json renders struct fields in declaration order, so equal
// requests render equal bytes. Priority is excluded: it is a
// scheduling class, not part of the simulation's identity, and a
// result computed for a batch submission is exactly the result an
// interactive submission of the same config would compute.
func (r *JobRequest) canonical() []byte {
	c := *r
	c.Priority = ""
	b, err := json.Marshal(&c)
	if err != nil {
		// A JobRequest holds only scalars; Marshal cannot fail.
		panic(fmt.Sprintf("service: canonical marshal: %v", err))
	}
	return b
}
