package service

import (
	"bytes"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// Cache-correctness tests: byte-identical replay from disk, the
// simulation-invocation counter staying flat on hits, singleflight
// dedup of concurrent identical submissions, the digest-collision
// guard, and CRC detection of corrupt entries.

// TestCacheHitByteIdentical proves the caching contract end to end: a
// repeated identical submission is served from disk — the Simulations
// counter does not move — and its result is byte-identical to the
// first run's.
func TestCacheHitByteIdentical(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, Options{Workers: 1, CacheDir: dir})
	req := smallJob(17)

	_, first, aerr := postJob(t, ts.URL, req)
	if aerr != nil {
		t.Fatalf("submit: %v", aerr)
	}
	firstDone := waitState(t, ts.URL, first.ID, StateDone)
	want := getResult(t, ts.URL, first.ID)
	if st := srv.Stats(); st.Simulations != 1 || st.CacheHits != 0 {
		t.Fatalf("after first run: %+v", st)
	}

	code, second, aerr := postJob(t, ts.URL, req)
	if aerr != nil {
		t.Fatalf("resubmit: %v", aerr)
	}
	if code != http.StatusOK || !second.CacheHit || second.State != StateDone {
		t.Fatalf("resubmit = %d %+v, want 200 cache_hit done", code, second)
	}
	if second.ID == first.ID {
		t.Fatal("cache hit reused the first job's ID")
	}
	got := getResult(t, ts.URL, second.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("cached result differs from original:\ngot:\n%s\nwant:\n%s", got, want)
	}
	secondDone := getStatus(t, ts.URL, second.ID)
	if !secondDone.CacheHit {
		t.Fatal("status of cache-born job does not report cache_hit")
	}
	if secondDone.DeliveredRound != firstDone.DeliveredRound ||
		secondDone.Transmissions != firstDone.Transmissions ||
		secondDone.EnergyJ != firstDone.EnergyJ {
		t.Fatalf("cached status %+v differs from original %+v", secondDone, firstDone)
	}
	st := srv.Stats()
	if st.Simulations != 1 {
		t.Fatalf("cache hit re-simulated: Simulations = %d", st.Simulations)
	}
	if st.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1", st.CacheHits)
	}

	// The cache outlives the server: a fresh instance over the same
	// directory serves the result without ever simulating.
	srv2, ts2 := newTestServer(t, Options{Workers: 1, CacheDir: dir})
	code, sub, aerr := postJob(t, ts2.URL, req)
	if aerr != nil || code != http.StatusOK || !sub.CacheHit {
		t.Fatalf("fresh server over warm cache: %d %+v %v", code, sub, aerr)
	}
	if !bytes.Equal(getResult(t, ts2.URL, sub.ID), want) {
		t.Fatal("fresh server served different bytes from the same cache entry")
	}
	if st := srv2.Stats(); st.Simulations != 0 {
		t.Fatalf("fresh server simulated despite warm cache: %+v", st)
	}
}

// TestCacheKeySeparatesConfigs verifies nearby configs never share an
// entry: tweaking any identity field (seed, p, budget, fault model)
// changes the key and forces a fresh simulation.
func TestCacheKeySeparatesConfigs(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2, CacheDir: t.TempDir()})
	base := smallJob(23)
	variants := []JobRequest{base, base, base, base}
	variants[1].Seed = 24
	variants[2].P = 0.61
	variants[3].Fault.Upset = 0.05

	results := make([][]byte, len(variants))
	for i, v := range variants {
		_, sub, aerr := postJob(t, ts.URL, v)
		if aerr != nil {
			t.Fatalf("variant %d: %v", i, aerr)
		}
		waitState(t, ts.URL, sub.ID, StateDone)
		results[i] = getResult(t, ts.URL, sub.ID)
	}
	if st := srv.Stats(); st.Simulations != int64(len(variants)) || st.CacheHits != 0 {
		t.Fatalf("distinct configs shared cache entries: %+v", st)
	}
	if bytes.Equal(results[0], results[1]) {
		t.Fatal("different seeds produced identical series (suspicious cross-serve)")
	}
}

// TestSingleflightDedup submits the same config many times while the
// first submission is still running: every duplicate folds into the
// in-flight job — same ID, deduped flag — and the simulation runs
// exactly once.
func TestSingleflightDedup(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	opts := Options{Workers: 1, CacheDir: t.TempDir()}
	opts.roundHook = func(id string, round int) {
		if round == 1 {
			select {
			case entered <- struct{}{}:
			default:
			}
			<-release
		}
	}
	srv, ts := newTestServer(t, opts)
	t.Cleanup(func() { close(release) })
	req := smallJob(31)

	_, first, aerr := postJob(t, ts.URL, req)
	if aerr != nil {
		t.Fatalf("submit: %v", aerr)
	}
	<-entered // the job is running and parked

	const dups = 8
	var wg sync.WaitGroup
	ids := make([]string, dups)
	dedup := make([]bool, dups)
	for i := 0; i < dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sub, aerr := postJob(t, ts.URL, req)
			if aerr != nil {
				t.Errorf("dup %d: %v", i, aerr)
				return
			}
			ids[i], dedup[i] = sub.ID, sub.Deduped
		}(i)
	}
	wg.Wait()
	release <- struct{}{}

	for i := 0; i < dups; i++ {
		if ids[i] != first.ID {
			t.Fatalf("dup %d got job %s, want the in-flight %s", i, ids[i], first.ID)
		}
		if !dedup[i] {
			t.Fatalf("dup %d not marked deduped", i)
		}
	}
	waitState(t, ts.URL, first.ID, StateDone)
	st := srv.Stats()
	if st.Simulations != 1 {
		t.Fatalf("%d concurrent identical submissions ran %d simulations, want exactly 1", dups+1, st.Simulations)
	}
	if st.Deduped != dups {
		t.Fatalf("Deduped = %d, want %d", st.Deduped, dups)
	}
	if st.Accepted != 1 {
		t.Fatalf("Accepted = %d, want 1", st.Accepted)
	}
}

// TestCorruptEntryResimulated flips bits in a cache entry on disk and
// verifies the CRC catches it: the entry is quarantined, the job
// re-simulates, and the (identical) result repopulates the cache.
func TestCorruptEntryResimulated(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, Options{Workers: 1, CacheDir: dir})
	req := smallJob(47)

	_, first, aerr := postJob(t, ts.URL, req)
	if aerr != nil {
		t.Fatalf("submit: %v", aerr)
	}
	waitState(t, ts.URL, first.ID, StateDone)
	want := getResult(t, ts.URL, first.ID)

	entries, err := filepath.Glob(filepath.Join(dir, "*.res"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries = %v (err %v), want exactly 1", entries, err)
	}
	raw, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff // bit-rot in the middle of the payload
	if err := os.WriteFile(entries[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, second, aerr := postJob(t, ts.URL, req)
	if aerr != nil {
		t.Fatalf("resubmit: %v", aerr)
	}
	if second.CacheHit {
		t.Fatal("corrupt entry was served as a cache hit")
	}
	waitState(t, ts.URL, second.ID, StateDone)
	if got := getResult(t, ts.URL, second.ID); !bytes.Equal(got, want) {
		t.Fatal("re-simulated result differs from the original")
	}
	st := srv.Stats()
	if st.Simulations != 2 {
		t.Fatalf("Simulations = %d, want 2 (corrupt entry must re-simulate)", st.Simulations)
	}

	// The re-simulation healed the entry: a third submission hits.
	code, third, aerr := postJob(t, ts.URL, req)
	if aerr != nil || code != http.StatusOK || !third.CacheHit {
		t.Fatalf("post-heal submit = %d %+v %v, want a cache hit", code, third, aerr)
	}
	if st := srv.Stats(); st.Simulations != 2 {
		t.Fatalf("healed entry re-simulated again: %+v", st)
	}
}

// TestCacheNeverCrossServesOnDigestCollision exercises the canon guard
// directly: two different requests stored under the same key (a forced
// digest collision) must never serve each other's bytes.
func TestCacheNeverCrossServesOnDigestCollision(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := smallJob(1)
	b := smallJob(2)
	const key = "deadbeef-0000000000000001-r80" // same key for both: a collision
	if err := c.Put(key, a.canonical(), []byte("series-A\n"), Status{State: StateDone}); err != nil {
		t.Fatal(err)
	}

	if payload, _, ok := c.Get(key, a.canonical()); !ok || string(payload) != "series-A\n" {
		t.Fatalf("matching canon missed: ok=%v payload=%q", ok, payload)
	}
	if _, _, ok := c.Get(key, b.canonical()); ok {
		t.Fatal("cache served request A's result to request B across a digest collision")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", c.Hits(), c.Misses())
	}

	// The collided writer overwrites; now B hits and A must miss.
	if err := c.Put(key, b.canonical(), []byte("series-B\n"), Status{State: StateDone}); err != nil {
		t.Fatal(err)
	}
	if payload, _, ok := c.Get(key, b.canonical()); !ok || string(payload) != "series-B\n" {
		t.Fatalf("overwritten entry: ok=%v payload=%q", ok, payload)
	}
	if _, _, ok := c.Get(key, a.canonical()); ok {
		t.Fatal("stale canon served after overwrite")
	}
}

// TestCacheEntryCRC exercises decode directly: truncation, trailing
// garbage, bad magic, and flipped bits all fail closed.
func TestCacheEntryCRC(t *testing.T) {
	entry := encodeEntry([]byte("canon"), []byte(`{"state":"done"}`), []byte("payload\n"))
	if e, ok := decodeEntry(entry); !ok || string(e.canon) != "canon" || string(e.payload) != "payload\n" {
		t.Fatalf("round trip failed: ok=%v entry=%+v", ok, e)
	}
	for name, mut := range map[string]func([]byte) []byte{
		"truncated":        func(b []byte) []byte { return b[:len(b)-3] },
		"trailing garbage": func(b []byte) []byte { return append(append([]byte(nil), b...), 0xaa) },
		"bad magic":        func(b []byte) []byte { b = append([]byte(nil), b...); b[0] ^= 0xff; return b },
		"flipped bit":      func(b []byte) []byte { b = append([]byte(nil), b...); b[len(b)/2] ^= 1; return b },
		"empty":            func([]byte) []byte { return nil },
	} {
		if _, ok := decodeEntry(mut(append([]byte(nil), entry...))); ok {
			t.Errorf("%s entry decoded as valid", name)
		}
	}
}

// TestCorruptEntryQuarantined verifies Get deletes a corrupt file so a
// healthy rewrite is not racing bad bytes.
func TestCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	canon := []byte("canon")
	if err := c.Put("k", canon, []byte("ok\n"), Status{State: StateDone}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "k.res")
	if err := os.WriteFile(path, []byte("NSR1 not a real entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get("k", canon); ok {
		t.Fatal("corrupt entry served")
	}
	if c.Corrupt() != 1 {
		t.Fatalf("Corrupt() = %d, want 1", c.Corrupt())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry not quarantined: stat err = %v", err)
	}
}

// TestNilCacheIsAlwaysMiss pins the disabled-cache mode.
func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache
	if err := c.Put("k", nil, []byte("x"), Status{}); err != nil {
		t.Fatalf("nil cache Put: %v", err)
	}
	if _, _, ok := c.Get("k", nil); ok {
		t.Fatal("nil cache hit")
	}
	if c.Hits() != 0 || c.Misses() != 0 || c.Corrupt() != 0 {
		t.Fatal("nil cache counted")
	}
}
