// Package service is the simulation-as-a-service layer: a long-running
// HTTP/JSON job server over the stochastic-communication engine. It
// turns the library's single-shot experiment stack (internal/core,
// internal/sim, internal/metrics) into a served system for heavy
// multi-tenant traffic:
//
//   - POST /v1/jobs accepts experiment configs and runs them on a
//     bounded worker fleet with admission control and per-job round
//     budgets;
//   - GET /v1/jobs/{id}/stream streams the per-round metric series as
//     server-sent events while the run executes, byte-identical to the
//     finished JSONL artifact (metrics.Streamer);
//   - long batch jobs yield to interactive traffic at round barriers
//     via sim.Checkpointer and resume bit-identically (sim.Loop);
//   - results are stored in an on-disk cache keyed by
//     core.ConfigDigest + seed + round budget, so identical requests
//     are served from disk instead of re-simulated, with singleflight
//     deduplication of concurrent identical submissions.
//
// docs/SERVICE.md is the full API reference, lifecycle state machine,
// cache-key derivation and preemption semantics.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Options configures a Server. The zero value is serviceable: defaults
// are filled by New.
type Options struct {
	// Workers bounds the simulation worker fleet; 0 defaults to
	// runtime.GOMAXPROCS(0). The server never runs more than Workers
	// simulations concurrently.
	Workers int
	// QueueCap is the admission bound: the maximum number of accepted
	// jobs waiting for a worker. Submissions past it are rejected with
	// HTTP 429 / ErrSaturated. 0 defaults to 64.
	QueueCap int
	// CacheDir roots the on-disk result cache; "" disables caching.
	CacheDir string
	// CheckpointDir holds preemption checkpoints; "" uses a fresh
	// temporary directory.
	CheckpointDir string
	// CheckpointRetain is the stale-checkpoint GC retention window
	// (sim.Checkpointer.Retain); 0 defaults to one hour. Completed and
	// canceled jobs delete their checkpoints eagerly — the sweep only
	// collects files orphaned by a crash.
	CheckpointRetain time.Duration
	// MaxJobRounds caps any single job's round budget; 0 defaults to
	// 100000.
	MaxJobRounds int
	// MaxTiles caps the accepted fabric size in tiles; 0 defaults to
	// 65536 (the mega-mesh shard threshold; larger fabrics belong in
	// offline campaigns, not a shared daemon).
	MaxTiles int

	// roundHook, if set, observes every executed round of every job
	// (after the round's line is streamed). Test seam: e2e tests use it
	// to hold a job at a barrier while control requests land.
	roundHook func(jobID string, round int)
}

// Stats is the server's cumulative counter snapshot (GET /v1/stats).
type Stats struct {
	// Submitted counts POST /v1/jobs requests that parsed and validated.
	Submitted int64 `json:"submitted"`
	// Accepted counts submissions admitted as new jobs.
	Accepted int64 `json:"accepted"`
	// Rejected counts submissions refused by admission control
	// (saturated or draining).
	Rejected int64 `json:"rejected"`
	// Deduped counts submissions folded into an in-flight identical job
	// (singleflight).
	Deduped int64 `json:"deduped"`
	// CacheHits counts submissions served from the result cache.
	CacheHits int64 `json:"cache_hits"`
	// CacheMisses counts cache lookups that found no servable entry.
	CacheMisses int64 `json:"cache_misses"`
	// Simulations counts fresh engine runs started — the
	// re-simulation detector: a cache hit or dedup leaves it unchanged.
	Simulations int64 `json:"simulations"`
	// Resumes counts checkpoint-resumed continuations of preempted jobs.
	Resumes int64 `json:"resumes"`
	// Preemptions counts jobs checkpointed at a barrier and requeued.
	Preemptions int64 `json:"preemptions"`
	// Completed counts jobs that reached StateDone.
	Completed int64 `json:"completed"`
	// Canceled counts jobs that reached StateCanceled.
	Canceled int64 `json:"canceled"`
	// Failed counts jobs that reached StateFailed.
	Failed int64 `json:"failed"`
	// Running is the number of jobs executing right now.
	Running int `json:"running"`
	// Queued is the number of accepted jobs waiting for a worker.
	Queued int `json:"queued"`
	// MaxRunning is the high-water mark of concurrent running jobs —
	// never exceeds Workers.
	MaxRunning int `json:"max_running"`
	// Workers is the configured fleet bound.
	Workers int `json:"workers"`
	// Draining reports whether the server has stopped accepting jobs.
	Draining bool `json:"draining"`
}

// Server is the simulation-as-a-service daemon: job store, scheduler,
// worker fleet, result cache, and HTTP surface. Build with New, expose
// via Handler, stop with Drain (graceful) and/or Close.
type Server struct {
	opts  Options
	cache *Cache
	sched *scheduler
	ck    sim.Checkpointer
	mux   *http.ServeMux
	wg    sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*Job
	byKey  map[string]*Job // singleflight index: live job per result key
	nextID int
	ckTmp  bool // CheckpointDir was created by us; Close removes it

	submitted, accepted, rejected, deduped   atomic.Int64
	simulations, resumes, preemptions        atomic.Int64
	completed, canceled, failed, cacheMisses atomic.Int64
	cacheHits                                atomic.Int64
}

// New builds a Server and starts its worker fleet.
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 64
	}
	if opts.MaxJobRounds <= 0 {
		opts.MaxJobRounds = 100000
	}
	if opts.MaxTiles <= 0 {
		opts.MaxTiles = 1 << 16
	}
	if opts.CheckpointRetain <= 0 {
		opts.CheckpointRetain = time.Hour
	}
	cache, err := OpenCache(opts.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:  opts,
		cache: cache,
		sched: newScheduler(opts.Workers, opts.QueueCap),
		jobs:  map[string]*Job{},
		byKey: map[string]*Job{},
	}
	if opts.CheckpointDir == "" {
		dir, err := os.MkdirTemp("", "nocsimd-ckpt-*")
		if err != nil {
			return nil, fmt.Errorf("service: checkpoint dir: %w", err)
		}
		opts.CheckpointDir = dir
		s.ckTmp = true
	}
	s.opts.CheckpointDir = opts.CheckpointDir
	s.ck = sim.Checkpointer{Dir: opts.CheckpointDir, Every: 1, Retain: opts.CheckpointRetain}
	s.mux = http.NewServeMux()
	s.routes()
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Stats snapshots the cumulative counters.
func (s *Server) Stats() Stats {
	running, queued, maxRunning, draining := s.sched.snapshot()
	return Stats{
		Submitted:   s.submitted.Load(),
		Accepted:    s.accepted.Load(),
		Rejected:    s.rejected.Load(),
		Deduped:     s.deduped.Load(),
		CacheHits:   s.cacheHits.Load(),
		CacheMisses: s.cacheMisses.Load(),
		Simulations: s.simulations.Load(),
		Resumes:     s.resumes.Load(),
		Preemptions: s.preemptions.Load(),
		Completed:   s.completed.Load(),
		Canceled:    s.canceled.Load(),
		Failed:      s.failed.Load(),
		Running:     running,
		Queued:      queued,
		MaxRunning:  maxRunning,
		Workers:     s.opts.Workers,
		Draining:    draining,
	}
}

// Drain gracefully shuts the server down: new submissions are rejected
// with ErrDraining, every already-accepted job (queued, running, or
// preempted) runs to a terminal state, and then the workers stop. It
// returns nil once the fleet is idle, or ctx's error if the deadline
// expires first — accepted jobs are never abandoned by a successful
// drain.
func (s *Server) Drain(ctx context.Context) error {
	s.sched.drain()
	if err := s.sched.awaitIdle(ctx); err != nil {
		return err
	}
	s.sched.close()
	s.wg.Wait()
	return nil
}

// Close stops the server immediately: pending jobs are canceled, the
// workers exit, and the temporary checkpoint directory (if the server
// created one) is removed. Safe after Drain; tests defer it.
func (s *Server) Close() {
	s.mu.Lock()
	for _, j := range s.jobs {
		j.requestCancel()
	}
	s.mu.Unlock()
	s.sched.close()
	s.wg.Wait()
	if s.ckTmp {
		os.RemoveAll(s.opts.CheckpointDir)
	}
}

// worker is one fleet goroutine: claim the next job, run it until a
// terminal state or a yield, repeat.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, resume, canceled := s.sched.next()
		if j == nil {
			return
		}
		if canceled {
			// Canceled while waiting: finalize without running.
			s.ck.Remove(j.num)
			s.finishCanceled(j)
			continue
		}
		s.runJob(j, resume)
		s.sched.release(j)
	}
}

// finishCanceled moves j to StateCanceled and unregisters its
// singleflight entry.
func (s *Server) finishCanceled(j *Job) {
	st := j.currentStatus()
	st.State = StateCanceled
	j.finish(st)
	s.canceled.Add(1)
	s.unindex(j)
	s.sched.release(j)
}

// unindex removes j from the singleflight index if it is still the
// key's live job.
func (s *Server) unindex(j *Job) {
	s.mu.Lock()
	if s.byKey[j.key] == j {
		delete(s.byKey, j.key)
	}
	s.mu.Unlock()
}

// runJob executes (or resumes) one job on the calling worker until it
// completes, is canceled, or yields to preemption.
func (s *Server) runJob(j *Job, resume bool) {
	req := j.Req
	cfg, _ := req.coreConfig()
	delivered := -1
	cfg.OnDeliver = func(t packet.TileID, p *packet.Packet, round int) {
		if t == packet.TileID(req.Dst) && delivered < 0 {
			delivered = round
		}
	}
	rec := metrics.NewRecorder(metrics.Config{Rounds: req.MaxRounds, Tech: energy.NoCLink025})
	rec.Install(&cfg)
	meta := sim.CheckpointMeta{Replica: j.num, Seed: req.Seed}

	var net *core.Network
	if resume {
		n, ok, err := sim.LoadReplica(s.ck.Dir, meta, cfg, rec)
		if err != nil {
			s.fail(j, apiErrorf(ErrInternal, "resume: %v", err))
			return
		}
		if ok {
			net = n
			s.resumes.Add(1)
			// The watched message is always ID 1 (one Inject before round
			// 1). Its delivery cannot predate the checkpoint — the loop
			// checks completion before it ever yields — but guard anyway.
			if net.AwareAt(1, packet.TileID(req.Dst)) {
				delivered = net.Round()
			}
		}
	}
	if net == nil {
		n, err := core.New(cfg)
		if err != nil {
			s.fail(j, apiErrorf(ErrInternal, "engine: %v", err))
			return
		}
		id, err := n.Inject(packet.TileID(req.Src), packet.TileID(req.Dst), 1, make([]byte, req.Payload))
		if err != nil {
			s.fail(j, apiErrorf(ErrInternal, "inject: %v", err))
			return
		}
		rec.Watch(id)
		net = n
		s.simulations.Add(1)
	}

	str := metrics.NewStreamer(rec)
	if !resume {
		j.appendLine(str.RoundLine(0)) // round 0: the pre-run injection
	}
	loop := sim.Loop{
		Net: net, MaxRounds: req.MaxRounds,
		Done: func(*core.Network) bool { return delivered >= 0 },
		Barrier: func(*core.Network) sim.BarrierOp {
			cancel, yield := j.ctl()
			switch {
			case cancel:
				return sim.OpCancel
			case yield:
				return sim.OpYield
			}
			return sim.OpContinue
		},
		OnRound: func(n *core.Network) {
			j.appendLine(str.RoundLine(n.Round()))
			if h := s.opts.roundHook; h != nil {
				h(j.ID, n.Round())
			}
		},
	}

	switch st := loop.Run(); st {
	case sim.LoopYielded:
		if err := s.ck.Save(meta, net, rec); err != nil {
			s.fail(j, apiErrorf(ErrInternal, "preempt checkpoint: %v", err))
			return
		}
		j.markPreempted()
		s.preemptions.Add(1)
		if err := s.sched.enqueue(j, true); err != nil {
			// Only possible after close; the job is lost with the server.
			s.fail(j, err)
		}
	case sim.LoopCanceled:
		s.ck.Remove(j.num)
		s.finishCanceled(j)
	default: // LoopDone, LoopBudget, LoopQuiescent: a terminal run outcome
		c := net.Counters()
		status := Status{
			ID: j.ID, State: StateDone, Priority: req.Priority,
			Rounds: net.Round(), DeliveredRound: delivered,
			Transmissions: c.Energy.Transmissions,
			EnergyJ:       c.Energy.EnergyJ(energy.NoCLink025),
			Preempts:      j.currentStatus().Preempts,
		}
		// A failed cache write is not a failed job; the result is still
		// served from memory, so the error is deliberately dropped.
		s.cache.Put(j.key, j.canon, j.result(), status)
		s.ck.Remove(j.num)
		j.finish(status)
		s.completed.Add(1)
		s.unindex(j)
		s.ck.Sweep(time.Now())
	}
}

// fail moves j into StateFailed with err.
func (s *Server) fail(j *Job, err *APIError) {
	st := j.currentStatus()
	st.State = StateFailed
	st.Error = err
	j.finish(st)
	s.failed.Add(1)
	s.unindex(j)
	s.ck.Remove(j.num)
}

// submit admits one parsed, validated request and returns the job that
// serves it (which may be a pre-existing in-flight job — singleflight —
// or a cache-born completed one) plus how it was satisfied.
func (s *Server) submit(req JobRequest) (j *Job, how string, err *APIError) {
	key := req.Key()
	canon := req.canonical()

	s.mu.Lock()
	if live, ok := s.byKey[key]; ok {
		s.mu.Unlock()
		s.deduped.Add(1)
		return live, "deduped", nil
	}
	s.mu.Unlock()

	if payload, status, ok := s.cache.Get(key, canon); ok {
		s.cacheHits.Add(1)
		j := s.register(req, key, canon)
		j.setLines(payload)
		status.ID = j.ID
		status.CacheHit = true
		status.Priority = req.Priority
		j.mu.Lock()
		j.cacheHit = true
		j.mu.Unlock()
		j.finish(status)
		s.completed.Add(1)
		s.unindex(j)
		return j, "cache", nil
	}
	s.cacheMisses.Add(1)

	j = s.register(req, key, canon)
	s.mu.Lock()
	s.byKey[key] = j
	s.mu.Unlock()
	if err := s.sched.enqueue(j, false); err != nil {
		s.unindex(j)
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, "", err
	}
	s.accepted.Add(1)
	return j, "accepted", nil
}

// register allocates a job ID and stores the job.
func (s *Server) register(req JobRequest, key string, canon []byte) *Job {
	s.mu.Lock()
	s.nextID++
	num := s.nextID
	j := newJob(fmt.Sprintf("j-%06d", num), num, req, key, canon)
	s.jobs[j.ID] = j
	s.mu.Unlock()
	return j
}

// lookup resolves a job ID.
func (s *Server) lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// routes wires the HTTP surface.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("POST /v1/jobs/{id}/preempt", s.handlePreempt)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError writes err as the structured {"error": {...}} body.
func writeError(w http.ResponseWriter, err *APIError) {
	writeJSON(w, httpStatus(err.Code), struct {
		Error *APIError `json:"error"`
	}{err})
}

// SubmitResponse is the body of a successful POST /v1/jobs.
type SubmitResponse struct {
	// ID is the job serving this submission (an existing job when the
	// submission was deduplicated).
	ID string `json:"id"`
	// State is the job's state at admission (queued, or done for a
	// cache hit).
	State State `json:"state"`
	// Deduped reports singleflight folding into an in-flight identical
	// job.
	Deduped bool `json:"deduped,omitempty"`
	// CacheHit reports the result was served from the on-disk cache.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// handleSubmit is POST /v1/jobs.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, apiErrorf(ErrBadJSON, "read body: %v", err))
		return
	}
	var req JobRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, apiErrorf(ErrBadJSON, "decode job request: %v", err))
		return
	}
	req.normalize()
	if aerr := req.validate(s.opts.MaxTiles, s.opts.MaxJobRounds); aerr != nil {
		writeError(w, aerr)
		return
	}
	s.submitted.Add(1)
	j, how, aerr := s.submit(req)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	st := j.currentStatus()
	code := http.StatusAccepted
	if st.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, SubmitResponse{
		ID: j.ID, State: st.State,
		Deduped: how == "deduped", CacheHit: how == "cache",
	})
}

// handleStatus is GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, apiErrorf(ErrNotFound, "no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.currentStatus())
}

// handleStream is GET /v1/jobs/{id}/stream: the job's per-round metric
// series as server-sent events. Each executed round is one
// "event: round" whose data line is exactly the round's JSONL record —
// concatenating the data payloads reproduces GET /v1/jobs/{id}/result
// byte for byte. A terminal "event: done" carries the final Status and
// closes the stream. For finished jobs (including cache hits) the whole
// series replays immediately.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, apiErrorf(ErrNotFound, "no job %q", r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, apiErrorf(ErrInternal, "response writer cannot stream"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	sent := 0
	for {
		lines, state, updated := j.snapshot(sent)
		for _, line := range lines {
			// line carries its trailing newline; SSE data is the line body.
			io.WriteString(w, "event: round\ndata: ")
			w.Write(bytes.TrimSuffix(line, []byte("\n")))
			io.WriteString(w, "\n\n")
		}
		sent += len(lines)
		if len(lines) > 0 {
			fl.Flush()
		}
		if state.Terminal() {
			st, _ := json.Marshal(j.currentStatus())
			io.WriteString(w, "event: done\ndata: ")
			w.Write(st)
			io.WriteString(w, "\n\n")
			fl.Flush()
			return
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		}
	}
}

// handleResult is GET /v1/jobs/{id}/result: the full JSONL series of a
// finished job — byte-identical to the concatenated stream, and to the
// cached artifact identical future submissions are served from.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, apiErrorf(ErrNotFound, "no job %q", r.PathValue("id")))
		return
	}
	st := j.currentStatus()
	if st.State != StateDone {
		writeError(w, apiErrorf(ErrConflict, "job %s is %s, result requires done", j.ID, st.State))
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	w.Write(j.result())
}

// handleCancel is DELETE /v1/jobs/{id}.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, apiErrorf(ErrNotFound, "no job %q", r.PathValue("id")))
		return
	}
	if st := j.currentStatus(); st.State.Terminal() {
		writeError(w, apiErrorf(ErrConflict, "job %s already %s", j.ID, st.State))
		return
	}
	j.requestCancel()
	s.sched.cond.Broadcast() // waiting workers re-examine queues
	writeJSON(w, http.StatusOK, j.currentStatus())
}

// handlePreempt is POST /v1/jobs/{id}/preempt: ask a running job to
// yield at its next round barrier (checkpoint + requeue). The scheduler
// preempts batch jobs automatically when interactive work waits; the
// endpoint exposes the same lever to operators and tests.
func (s *Server) handlePreempt(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, apiErrorf(ErrNotFound, "no job %q", r.PathValue("id")))
		return
	}
	if !j.requestPreempt() {
		writeError(w, apiErrorf(ErrConflict, "job %s is not preemptible right now", j.ID))
		return
	}
	writeJSON(w, http.StatusOK, j.currentStatus())
}

// handleStats is GET /v1/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleHealthz is GET /healthz: 200 "ok" while accepting, 503
// "draining" afterwards (load balancers drop a draining instance).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	_, _, _, draining := s.sched.snapshot()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok")
}
