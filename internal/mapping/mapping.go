// Package mapping assigns application task graphs to NoC tiles.
//
// The thesis relies on two mapping-level mechanisms: IP duplication
// ("each slave can be duplicated, such that if one of the IPs ... is
// located on a dysfunctional tile, the remaining one will still be able to
// provide the partial result", §4.1.1) and communication-aware placement
// ("the mapping phase of the system-level design has to take into account
// the communication performance", §4.1.3, citing Hu & Mărculescu's
// energy-aware mapping [21]).
//
// This package provides both: task graphs with per-task replica counts,
// and three placement strategies — row-major, random, and a greedy
// energy-aware heuristic minimizing Σ volume×distance.
package mapping

import (
	"fmt"
	"sort"

	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

// Task is one application module.
type Task struct {
	// Name identifies the task in traces.
	Name string
	// Replicas is the number of copies to place (>= 1); replicas compute
	// identical results, so duplication buys crash tolerance without
	// extra unique traffic (§4.1.3).
	Replicas int
}

// Edge is a producer-consumer communication with an estimated volume in
// bits (per execution), used by the energy-aware mapper.
type Edge struct {
	From, To int
	Volume   int
}

// Graph is an application task graph.
type Graph struct {
	Tasks []Task
	Edges []Edge
}

// Validate reports structural errors.
func (g *Graph) Validate() error {
	for i, t := range g.Tasks {
		if t.Replicas < 1 {
			return fmt.Errorf("mapping: task %d (%s) has %d replicas", i, t.Name, t.Replicas)
		}
	}
	for _, e := range g.Edges {
		if e.From < 0 || e.From >= len(g.Tasks) || e.To < 0 || e.To >= len(g.Tasks) {
			return fmt.Errorf("mapping: edge %d->%d out of range", e.From, e.To)
		}
		if e.Volume < 0 {
			return fmt.Errorf("mapping: negative volume on edge %d->%d", e.From, e.To)
		}
	}
	return nil
}

// TotalInstances returns the number of tiles the graph needs.
func (g *Graph) TotalInstances() int {
	n := 0
	for _, t := range g.Tasks {
		n += t.Replicas
	}
	return n
}

// Placement maps each task to the tiles hosting its replicas.
type Placement struct {
	TilesOf [][]packet.TileID
}

// AllTiles returns every occupied tile.
func (p *Placement) AllTiles() []packet.TileID {
	var out []packet.TileID
	for _, ts := range p.TilesOf {
		out = append(out, ts...)
	}
	return out
}

// Primary returns the first replica's tile for task i.
func (p *Placement) Primary(i int) packet.TileID { return p.TilesOf[i][0] }

// RowMajor places replicas on tiles 0, 1, 2, ... in task order.
func RowMajor(g *Graph, topo topology.Topology) (*Placement, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	need := g.TotalInstances()
	if need > topo.Tiles() {
		return nil, fmt.Errorf("mapping: %d instances exceed %d tiles", need, topo.Tiles())
	}
	p := &Placement{TilesOf: make([][]packet.TileID, len(g.Tasks))}
	next := packet.TileID(0)
	for i, t := range g.Tasks {
		for r := 0; r < t.Replicas; r++ {
			p.TilesOf[i] = append(p.TilesOf[i], next)
			next++
		}
	}
	return p, nil
}

// Random places replicas on uniformly random distinct tiles.
func Random(g *Graph, topo topology.Topology, r *rng.Stream) (*Placement, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	need := g.TotalInstances()
	if need > topo.Tiles() {
		return nil, fmt.Errorf("mapping: %d instances exceed %d tiles", need, topo.Tiles())
	}
	perm := r.Sample(topo.Tiles(), need)
	p := &Placement{TilesOf: make([][]packet.TileID, len(g.Tasks))}
	k := 0
	for i, t := range g.Tasks {
		for rep := 0; rep < t.Replicas; rep++ {
			p.TilesOf[i] = append(p.TilesOf[i], packet.TileID(perm[k]))
			k++
		}
	}
	return p, nil
}

// GreedyEnergyAware is a constructive heuristic in the spirit of [21]:
// tasks are placed in decreasing order of communication volume; each
// replica goes to the free tile minimizing the added Σ volume×hop-distance
// to already-placed communication partners. Grid topologies use Manhattan
// distance; general graphs use BFS hops.
func GreedyEnergyAware(g *Graph, topo topology.Topology) (*Placement, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	need := g.TotalInstances()
	if need > topo.Tiles() {
		return nil, fmt.Errorf("mapping: %d instances exceed %d tiles", need, topo.Tiles())
	}

	// Task order: decreasing total adjacent volume, ties by index.
	vol := make([]int, len(g.Tasks))
	for _, e := range g.Edges {
		vol[e.From] += e.Volume
		vol[e.To] += e.Volume
	}
	order := make([]int, len(g.Tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return vol[order[a]] > vol[order[b]] })

	dist := hopMatrix(topo)
	free := make([]bool, topo.Tiles())
	for i := range free {
		free[i] = true
	}
	p := &Placement{TilesOf: make([][]packet.TileID, len(g.Tasks))}

	for _, ti := range order {
		for rep := 0; rep < g.Tasks[ti].Replicas; rep++ {
			best, bestCost := -1, -1
			for tile := 0; tile < topo.Tiles(); tile++ {
				if !free[tile] {
					continue
				}
				cost := 0
				for _, e := range g.Edges {
					other := -1
					switch ti {
					case e.From:
						other = e.To
					case e.To:
						other = e.From
					default:
						continue
					}
					for _, ot := range p.TilesOf[other] {
						cost += e.Volume * dist[tile][ot]
					}
				}
				// Spread replicas of the same task apart so one crash
				// region cannot take out all copies: penalize adjacency
				// to sibling replicas.
				for _, sib := range p.TilesOf[ti] {
					if dist[tile][sib] <= 1 {
						cost += vol[ti] + 1
					}
				}
				if best < 0 || cost < bestCost {
					best, bestCost = tile, cost
				}
			}
			free[best] = false
			p.TilesOf[ti] = append(p.TilesOf[ti], packet.TileID(best))
		}
	}
	return p, nil
}

// hopMatrix precomputes all-pairs hop distances.
func hopMatrix(topo topology.Topology) [][]int {
	n := topo.Tiles()
	m := make([][]int, n)
	for s := 0; s < n; s++ {
		m[s] = topology.BFSDistances(topo, packet.TileID(s), topology.AllAlive, topology.AllLinksAlive)
	}
	return m
}

// CommCost returns the Σ volume×distance objective of a placement — the
// quantity the energy-aware mapper minimizes, proportional to the minimum
// achievable switching energy for the traffic pattern. For replicated
// tasks the nearest replica pair carries the edge.
func CommCost(g *Graph, topo topology.Topology, p *Placement) int {
	dist := hopMatrix(topo)
	total := 0
	for _, e := range g.Edges {
		best := -1
		for _, a := range p.TilesOf[e.From] {
			for _, b := range p.TilesOf[e.To] {
				if d := dist[a][b]; best < 0 || d < best {
					best = d
				}
			}
		}
		if best > 0 {
			total += e.Volume * best
		}
	}
	return total
}
