package mapping

import (
	"fmt"
	"math"

	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

// AnnealConfig parameterizes the simulated-annealing mapper.
type AnnealConfig struct {
	// Iterations is the number of proposed swaps (default 20000).
	Iterations int
	// StartTemp and EndTemp bound the geometric cooling schedule,
	// expressed in units of communication cost (defaults 1/4 and 1/1000
	// of the initial cost).
	StartTemp, EndTemp float64
}

// Anneal improves a placement by simulated annealing over tile swaps,
// minimizing the Σ volume×distance objective — the optimization the
// energy-aware mapping literature [21] formulates, here as the global
// refinement pass on top of the greedy constructor. It is deterministic
// in r and returns a new placement (the input is not mutated).
func Anneal(g *Graph, topo topology.Topology, start *Placement, cfg AnnealConfig, r *rng.Stream) (*Placement, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if cfg.Iterations == 0 {
		cfg.Iterations = 20000
	}
	dist := hopMatrix(topo)

	// Flatten the placement into instance -> tile, remembering which task
	// each instance belongs to.
	type inst struct {
		task int
		tile packet.TileID
	}
	var insts []inst
	for task, tiles := range start.TilesOf {
		for _, tl := range tiles {
			insts = append(insts, inst{task: task, tile: tl})
		}
	}
	if len(insts) == 0 {
		return nil, fmt.Errorf("mapping: empty placement")
	}
	occupied := map[packet.TileID]int{} // tile -> instance index (-1 free)
	for i, in := range insts {
		occupied[in.tile] = i
	}
	var freeTiles []packet.TileID
	for t := 0; t < topo.Tiles(); t++ {
		if _, ok := occupied[packet.TileID(t)]; !ok {
			freeTiles = append(freeTiles, packet.TileID(t))
		}
	}

	rebuild := func() *Placement {
		p := &Placement{TilesOf: make([][]packet.TileID, len(g.Tasks))}
		for _, in := range insts {
			p.TilesOf[in.task] = append(p.TilesOf[in.task], in.tile)
		}
		return p
	}
	// cost evaluates Σ volume × nearest-replica-pair distance against the
	// precomputed hop matrix (CommCost would re-run all-pairs BFS on
	// every call, far too slow inside the annealing loop).
	taskTiles := func(task int) []packet.TileID {
		var out []packet.TileID
		for _, in := range insts {
			if in.task == task {
				out = append(out, in.tile)
			}
		}
		return out
	}
	cost := func() int {
		total := 0
		for _, e := range g.Edges {
			bestD := -1
			for _, a := range taskTiles(e.From) {
				for _, b := range taskTiles(e.To) {
					if d := dist[a][b]; bestD < 0 || d < bestD {
						bestD = d
					}
				}
			}
			if bestD > 0 {
				total += e.Volume * bestD
			}
		}
		return total
	}

	cur := cost()
	best := cur
	bestInsts := append([]inst(nil), insts...)

	startTemp := cfg.StartTemp
	if startTemp == 0 {
		startTemp = math.Max(1, float64(cur)/4)
	}
	endTemp := cfg.EndTemp
	if endTemp == 0 {
		endTemp = math.Max(0.01, float64(cur)/1000)
	}
	cooling := math.Pow(endTemp/startTemp, 1/float64(cfg.Iterations))
	temp := startTemp

	for it := 0; it < cfg.Iterations; it++ {
		// Propose: either swap two instances, or move one instance to a
		// free tile.
		i := r.Intn(len(insts))
		var undo func()
		if len(freeTiles) > 0 && r.Bool(0.5) {
			fi := r.Intn(len(freeTiles))
			oldTile := insts[i].tile
			newTile := freeTiles[fi]
			insts[i].tile = newTile
			freeTiles[fi] = oldTile
			undo = func() {
				insts[i].tile = oldTile
				freeTiles[fi] = newTile
			}
		} else {
			j := r.Intn(len(insts))
			if i == j {
				temp *= cooling
				continue
			}
			insts[i].tile, insts[j].tile = insts[j].tile, insts[i].tile
			undo = func() {
				insts[i].tile, insts[j].tile = insts[j].tile, insts[i].tile
			}
		}
		next := cost()
		delta := float64(next - cur)
		if delta <= 0 || r.Float64() < math.Exp(-delta/temp) {
			cur = next
			if cur < best {
				best = cur
				bestInsts = append(bestInsts[:0], insts...)
			}
		} else {
			undo()
		}
		temp *= cooling
	}

	insts = bestInsts
	return rebuild(), nil
}
