package mapping

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/rng"
	"repro/internal/topology"
)

func starGraph() *Graph {
	// A master talking to 4 slaves, heavy traffic to slave 0.
	return &Graph{
		Tasks: []Task{
			{Name: "master", Replicas: 1},
			{Name: "s0", Replicas: 1},
			{Name: "s1", Replicas: 1},
			{Name: "s2", Replicas: 1},
			{Name: "s3", Replicas: 1},
		},
		Edges: []Edge{
			{From: 0, To: 1, Volume: 1000},
			{From: 0, To: 2, Volume: 100},
			{From: 0, To: 3, Volume: 100},
			{From: 0, To: 4, Volume: 100},
		},
	}
}

func noDuplicateTiles(t *testing.T, p *Placement) {
	t.Helper()
	seen := map[packet.TileID]bool{}
	for _, tile := range p.AllTiles() {
		if seen[tile] {
			t.Fatalf("tile %d hosts two instances", tile)
		}
		seen[tile] = true
	}
}

func TestRowMajor(t *testing.T) {
	g := starGraph()
	grid := topology.NewGrid(3, 3)
	p, err := RowMajor(g, grid)
	if err != nil {
		t.Fatal(err)
	}
	noDuplicateTiles(t, p)
	if p.Primary(0) != 0 || p.Primary(1) != 1 {
		t.Fatalf("row-major order broken: %v", p.TilesOf)
	}
}

func TestRowMajorWithReplicas(t *testing.T) {
	g := &Graph{Tasks: []Task{{Name: "a", Replicas: 3}, {Name: "b", Replicas: 2}}}
	grid := topology.NewGrid(3, 2)
	p, err := RowMajor(g, grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.TilesOf[0]) != 3 || len(p.TilesOf[1]) != 2 {
		t.Fatalf("replica counts wrong: %v", p.TilesOf)
	}
	noDuplicateTiles(t, p)
}

func TestCapacityExceeded(t *testing.T) {
	g := &Graph{Tasks: []Task{{Name: "a", Replicas: 5}}}
	grid := topology.NewGrid(2, 2)
	if _, err := RowMajor(g, grid); err == nil {
		t.Fatal("overfull mapping accepted")
	}
	if _, err := Random(g, grid, rng.New(1)); err == nil {
		t.Fatal("overfull random mapping accepted")
	}
	if _, err := GreedyEnergyAware(g, grid); err == nil {
		t.Fatal("overfull greedy mapping accepted")
	}
}

func TestValidateRejectsBadGraphs(t *testing.T) {
	bad := []*Graph{
		{Tasks: []Task{{Name: "a", Replicas: 0}}},
		{Tasks: []Task{{Name: "a", Replicas: 1}}, Edges: []Edge{{From: 0, To: 5}}},
		{Tasks: []Task{{Name: "a", Replicas: 1}}, Edges: []Edge{{From: -1, To: 0}}},
		{Tasks: []Task{{Name: "a", Replicas: 1}, {Name: "b", Replicas: 1}},
			Edges: []Edge{{From: 0, To: 1, Volume: -5}}},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad graph %d accepted", i)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	g := starGraph()
	grid := topology.NewGrid(4, 4)
	a, err := Random(g, grid, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(g, grid, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.TilesOf {
		for j := range a.TilesOf[i] {
			if a.TilesOf[i][j] != b.TilesOf[i][j] {
				t.Fatal("same seed, different random placement")
			}
		}
	}
	noDuplicateTiles(t, a)
}

func TestGreedyBeatsRandomOnAverage(t *testing.T) {
	g := starGraph()
	grid := topology.NewGrid(5, 5)
	greedy, err := GreedyEnergyAware(g, grid)
	if err != nil {
		t.Fatal(err)
	}
	gc := CommCost(g, grid, greedy)

	worse := 0
	const runs = 30
	for seed := uint64(0); seed < runs; seed++ {
		rp, err := Random(g, grid, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if CommCost(g, grid, rp) >= gc {
			worse++
		}
	}
	if worse < runs*3/4 {
		t.Fatalf("greedy cost %d beaten by random too often (%d/%d worse)", gc, worse, runs)
	}
}

func TestGreedyKeepsHeavyEdgeShort(t *testing.T) {
	g := starGraph()
	grid := topology.NewGrid(5, 5)
	p, err := GreedyEnergyAware(g, grid)
	if err != nil {
		t.Fatal(err)
	}
	noDuplicateTiles(t, p)
	// The 1000-volume edge (master-s0) must be mapped adjacent.
	if d := grid.Manhattan(p.Primary(0), p.Primary(1)); d != 1 {
		t.Fatalf("heavy edge mapped %d hops apart", d)
	}
}

func TestGreedySpreadsReplicas(t *testing.T) {
	g := &Graph{
		Tasks: []Task{{Name: "m", Replicas: 1}, {Name: "s", Replicas: 2}},
		Edges: []Edge{{From: 0, To: 1, Volume: 10}},
	}
	grid := topology.NewGrid(4, 4)
	p, err := GreedyEnergyAware(g, grid)
	if err != nil {
		t.Fatal(err)
	}
	reps := p.TilesOf[1]
	if grid.Manhattan(reps[0], reps[1]) <= 1 {
		t.Fatalf("replicas placed adjacent: %v", reps)
	}
}

func TestCommCostZeroForColocatedReplicaPair(t *testing.T) {
	g := &Graph{
		Tasks: []Task{{Name: "a", Replicas: 1}, {Name: "b", Replicas: 1}},
		Edges: []Edge{{From: 0, To: 1, Volume: 7}},
	}
	grid := topology.NewGrid(2, 2)
	p := &Placement{TilesOf: [][]packet.TileID{{0}, {1}}}
	if got := CommCost(g, grid, p); got != 7 {
		t.Fatalf("CommCost = %d, want 7 (volume × 1 hop)", got)
	}
	far := &Placement{TilesOf: [][]packet.TileID{{0}, {3}}}
	if got := CommCost(g, grid, far); got != 14 {
		t.Fatalf("CommCost = %d, want 14 (volume × 2 hops)", got)
	}
}

func TestTotalInstances(t *testing.T) {
	g := &Graph{Tasks: []Task{{Replicas: 2}, {Replicas: 3}}}
	if g.TotalInstances() != 5 {
		t.Fatalf("TotalInstances = %d", g.TotalInstances())
	}
}

func TestAnnealImprovesRandomPlacement(t *testing.T) {
	g := starGraph()
	grid := topology.NewGrid(6, 6)
	r := rng.New(3)
	start, err := Random(g, grid, r)
	if err != nil {
		t.Fatal(err)
	}
	startCost := CommCost(g, grid, start)
	out, err := Anneal(g, grid, start, AnnealConfig{Iterations: 5000}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	outCost := CommCost(g, grid, out)
	if outCost > startCost {
		t.Fatalf("annealing worsened the placement: %d -> %d", startCost, outCost)
	}
	// The star graph's optimum places everything adjacent: total cost
	// 1000+3*100 = 1300 at distance 1 each.
	if outCost > 2*1300 {
		t.Fatalf("annealed cost %d far from optimum 1300", outCost)
	}
	noDuplicateTiles(t, out)
}

func TestAnnealMatchesOrBeatsGreedy(t *testing.T) {
	// On random communication graphs, SA refinement starting from the
	// greedy construction never loses to greedy alone.
	r := rng.New(9)
	for trial := 0; trial < 5; trial++ {
		g := &Graph{}
		const tasks = 8
		for i := 0; i < tasks; i++ {
			g.Tasks = append(g.Tasks, Task{Name: "t", Replicas: 1})
		}
		for i := 0; i < tasks; i++ {
			for j := i + 1; j < tasks; j++ {
				if r.Bool(0.4) {
					g.Edges = append(g.Edges, Edge{From: i, To: j, Volume: 1 + r.Intn(20)})
				}
			}
		}
		if len(g.Edges) == 0 {
			continue
		}
		grid := topology.NewGrid(5, 5)
		greedy, err := GreedyEnergyAware(g, grid)
		if err != nil {
			t.Fatal(err)
		}
		gc := CommCost(g, grid, greedy)
		annealed, err := Anneal(g, grid, greedy, AnnealConfig{Iterations: 8000}, rng.New(uint64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		ac := CommCost(g, grid, annealed)
		if ac > gc {
			t.Fatalf("trial %d: annealing worsened greedy: %d -> %d", trial, gc, ac)
		}
		noDuplicateTiles(t, annealed)
	}
}

func TestAnnealPreservesReplicaCounts(t *testing.T) {
	g := &Graph{
		Tasks: []Task{{Name: "a", Replicas: 2}, {Name: "b", Replicas: 3}},
		Edges: []Edge{{From: 0, To: 1, Volume: 5}},
	}
	grid := topology.NewGrid(4, 4)
	start, err := RowMajor(g, grid)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Anneal(g, grid, start, AnnealConfig{Iterations: 2000}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.TilesOf[0]) != 2 || len(out.TilesOf[1]) != 3 {
		t.Fatalf("replica counts changed: %v", out.TilesOf)
	}
}

func TestAnnealValidation(t *testing.T) {
	bad := &Graph{Tasks: []Task{{Replicas: 0}}}
	grid := topology.NewGrid(2, 2)
	if _, err := Anneal(bad, grid, &Placement{}, AnnealConfig{}, rng.New(1)); err == nil {
		t.Fatal("invalid graph accepted")
	}
	good := &Graph{Tasks: []Task{{Name: "a", Replicas: 1}}}
	if _, err := Anneal(good, grid, &Placement{TilesOf: [][]packet.TileID{}}, AnnealConfig{}, rng.New(1)); err == nil {
		t.Fatal("empty placement accepted")
	}
}
