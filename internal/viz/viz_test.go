package viz

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/packet"
	"repro/internal/topology"
)

func TestFrameGlyphs(t *testing.T) {
	grid := topology.NewGrid(3, 3)
	var protect []packet.TileID
	for i := 0; i < grid.Tiles(); i++ {
		if packet.TileID(i) != 4 {
			protect = append(protect, packet.TileID(i))
		}
	}
	net, err := core.New(core.Config{
		Topo: grid, P: 1, TTL: 10, MaxRounds: 50, Seed: 1,
		Fault: fault.Model{DeadTiles: 1, Protect: protect}, // kill the center
	})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := net.Inject(0, 8, 1, nil)

	// Before any round: only the source knows.
	f := Frame(net, grid, id, 0, 8)
	lines := strings.Split(strings.TrimRight(f, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("frame has %d lines:\n%s", len(lines), f)
	}
	if lines[0][0] != byte(GlyphSrcHit) {
		t.Fatalf("source glyph = %c", lines[0][0])
	}
	if lines[1][2] != byte(GlyphDead) { // tile 4 at (1,1)
		t.Fatalf("dead glyph = %c\n%s", lines[1][2], f)
	}
	if lines[2][4] != byte(GlyphDst) {
		t.Fatalf("destination glyph = %c", lines[2][4])
	}

	// Flood until the destination is reached (the message is still
	// live, so every surviving tile holds a copy; after TTL expiry the
	// fabric legitimately forgets).
	for i := 0; i < 6; i++ {
		net.Step()
	}
	f = Frame(net, grid, id, 0, 8)
	if !strings.ContainsRune(f, GlyphDstHit) {
		t.Fatalf("destination never marked reached:\n%s", f)
	}
	if strings.ContainsRune(f, GlyphBlank) {
		t.Fatalf("unaware tiles remain after flooding:\n%s", f)
	}
	if !strings.ContainsRune(f, GlyphDead) {
		t.Fatal("dead tile glyph vanished")
	}
}

func TestLegendMentionsAllGlyphs(t *testing.T) {
	l := Legend()
	for _, g := range []rune{GlyphSrc, GlyphDst, GlyphDstHit, GlyphAware, GlyphBlank, GlyphDead} {
		if !strings.ContainsRune(l, g) {
			t.Fatalf("legend missing %c: %s", g, l)
		}
	}
}
